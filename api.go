package fpga3d

import (
	"context"
	"fmt"
	"io"
	"time"

	"fpga3d/internal/model"
	"fpga3d/internal/solver"
)

// TaskID identifies a task within its Instance.
type TaskID int

// Task describes one hardware module: a W×H block of cells that executes
// for Dur clock cycles.
type Task = model.Task

// Chip is the available resource: a W×H cell array and a time budget of
// T clock cycles.
type Chip = model.Container

// Placement assigns every task its cell position (X, Y) and start time S.
type Placement = model.Placement

// Instance is a module placement problem: tasks plus temporal precedence
// constraints. Build it with NewInstance / AddTask / AddPrecedence, or
// load it from JSON with LoadInstance.
type Instance struct {
	m *model.Instance
}

// NewInstance returns an empty named instance.
func NewInstance(name string) *Instance {
	return &Instance{m: &model.Instance{Name: name}}
}

// AddTask appends a module with the given cell footprint and duration
// and returns its ID.
func (in *Instance) AddTask(name string, w, h, dur int) TaskID {
	in.m.Tasks = append(in.m.Tasks, model.Task{Name: name, W: w, H: h, Dur: dur})
	return TaskID(len(in.m.Tasks) - 1)
}

// AddPrecedence requires task from to finish before task to starts.
func (in *Instance) AddPrecedence(from, to TaskID) {
	in.m.Prec = append(in.m.Prec, model.Arc{From: int(from), To: int(to)})
}

// Name returns the instance name.
func (in *Instance) Name() string { return in.m.Name }

// Tasks returns the task list (a copy).
func (in *Instance) Tasks() []Task { return append([]Task(nil), in.m.Tasks...) }

// NumTasks returns the number of tasks.
func (in *Instance) NumTasks() int { return in.m.N() }

// Precedences returns the precedence arcs as (from, to) ID pairs.
func (in *Instance) Precedences() [][2]TaskID {
	out := make([][2]TaskID, 0, len(in.m.Prec))
	for _, a := range in.m.Prec {
		out = append(out, [2]TaskID{TaskID(a.From), TaskID(a.To)})
	}
	return out
}

// Validate checks the instance for structural errors (empty task set,
// non-positive dimensions, dangling or cyclic precedence constraints).
func (in *Instance) Validate() error { return in.m.Validate() }

// CanonicalHash returns a hex SHA-256 digest of the instance's
// canonical form: invariant under task and precedence insertion order
// (and JSON round trips), sensitive to any change of a task footprint,
// duration, name, or precedence edge. The instance Name is excluded.
// fpgad keys its result cache on it.
func (in *Instance) CanonicalHash() string { return in.m.CanonicalHash() }

// WithoutPrecedence returns a copy of the instance with every precedence
// constraint removed — the unconstrained baseline of Figure 7(b).
func (in *Instance) WithoutPrecedence() *Instance {
	return &Instance{m: in.m.WithoutPrec()}
}

// CriticalPath returns the total duration of the longest dependency
// chain — a lower bound on any feasible execution time.
func (in *Instance) CriticalPath() (int, error) {
	o, err := in.m.Order()
	if err != nil {
		return 0, err
	}
	return o.CriticalPath(), nil
}

// Model exposes the underlying model instance. Most callers do not need
// it; it exists for integration with the internal packages in tests and
// benchmarks.
func (in *Instance) Model() *model.Instance { return in.m }

// WrapInstance adopts an existing model instance (shared, not copied).
func WrapInstance(m *model.Instance) *Instance { return &Instance{m: m} }

// LoadInstance reads an instance from a JSON file (see WriteJSON for the
// format).
func LoadInstance(path string) (*Instance, error) {
	m, err := model.LoadInstance(path)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m}, nil
}

// ReadInstance decodes an instance from JSON.
func ReadInstance(r io.Reader) (*Instance, error) {
	m, err := model.ReadInstance(r)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m}, nil
}

// WriteJSON encodes the instance as indented JSON.
func (in *Instance) WriteJSON(w io.Writer) error { return model.WriteInstance(w, in.m) }

// VerifyPlacement checks a placement against the instance, the chip and
// the precedence constraints. A nil error means the placement is
// feasible.
func (in *Instance) VerifyPlacement(p *Placement, c Chip) error {
	o, err := in.m.Order()
	if err != nil {
		return err
	}
	return p.Verify(in.m, c, o)
}

// Decision is the three-valued outcome of a decision problem.
type Decision = solver.Decision

// Decision values.
const (
	Unknown    = solver.Unknown
	Feasible   = solver.Feasible
	Infeasible = solver.Infeasible
)

// Options tunes the solver; nil means defaults (every stage enabled, no
// limits). See the solver package for the ablation switches.
type Options = solver.Options

// Strategy names accepted by Options.Strategy; the empty string selects
// the default staged pipeline. Every strategy returns the same answers
// — they differ in how the work is scheduled and therefore in effort
// statistics and witness provenance.
const (
	// StrategyStaged runs the paper's three stages — bounds, greedy
	// heuristic, exact search — sequentially with short-circuiting.
	// This is the default and is bit-identical to the historical
	// pipeline.
	StrategyStaged = "staged"
	// StrategyPortfolio shares incumbents across the probes of an
	// optimization sweep (a stored witness answers dominated probes
	// outright, and feasible witnesses tighten upper bounds) and, with
	// Workers > 1, races the cheap prover against the exact search
	// inside each probe.
	StrategyPortfolio = "portfolio"
	// StrategyAnneal extends the staged pipeline with a randomized
	// annealing placer between the greedy heuristic and the exact
	// search: when greedy misses the budget, a seeded simulated-
	// annealing walk over task priorities tries to close the gap before
	// any branch-and-bound node is expanded. Deterministic per
	// Options.AnnealSeed; decisions always agree with the staged
	// pipeline.
	StrategyAnneal = "anneal"
)

// AnytimeUpdate is one improvement notification of an anytime
// MinimizeTime run (Options.Anytime with Options.OnImprovement): a new
// best incumbent, a raised proven lower bound, or the final proof of
// optimality. Best only decreases and LowerBound only increases across
// a run, so Gap is non-increasing and the Final update carries Gap 0.
type AnytimeUpdate = solver.AnytimeUpdate

// Result is the outcome of a feasibility question.
type Result struct {
	Decision  Decision
	Placement *Placement // non-nil iff Decision == Feasible
	DecidedBy string     // "bound: …", "heuristic", or "search"
	Nodes     int64      // branch-and-bound nodes expended
	Stats     Stats      // full engine statistics
	Stages    StageTimings
	Elapsed   time.Duration
}

// OptimizeResult is the outcome of an optimization question.
type OptimizeResult struct {
	Decision   Decision
	Value      int // the optimal T (MinimizeTime) or chip side h (MinimizeChip)
	Placement  *Placement
	LowerBound int
	// BestBound is the best proven lower bound at exit: equal to Value
	// on a completed run, and the refined bound (≥ LowerBound) on a
	// partial MinimizeTime run.
	BestBound int
	// Gap is the relative optimality gap (Value−BestBound)/Value: 0 on
	// a completed run, positive on a partial MinimizeTime run. Only
	// MinimizeTime refines it; other modes report 0.
	Gap     float64
	Nodes   int64
	Stats   Stats // engine statistics summed over all probes
	Stages  StageTimings
	Elapsed time.Duration
}

func opts(o *Options) Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// Solve decides whether the instance fits the chip within its time
// budget while meeting every precedence constraint (FeasAT&FindS).
func Solve(in *Instance, c Chip, o *Options) (*Result, error) {
	return SolveCtx(context.Background(), in, c, o)
}

// SolveCtx is Solve under a context. The search polls ctx on its node
// cadence (every 256 branch-and-bound nodes); once ctx is done it
// returns promptly with Decision Unknown, DecidedBy "canceled" and the
// partial statistics gathered so far. The error stays nil for a
// canceled single decision — check ctx.Err to distinguish cancellation
// from a node/time limit.
func SolveCtx(ctx context.Context, in *Instance, c Chip, o *Options) (*Result, error) {
	r, err := solver.SolveOPPCtx(ctx, in.m, c, opts(o))
	if err != nil {
		return nil, err
	}
	return convertFeas(r), nil
}

// MinimizeTime computes the smallest execution time on a fixed W×H chip
// (MinT&FindS).
func MinimizeTime(in *Instance, w, h int, o *Options) (*OptimizeResult, error) {
	return MinimizeTimeCtx(context.Background(), in, w, h, o)
}

// MinimizeTimeCtx is MinimizeTime under a context. The binary search's
// independent OPP decisions race on Options.Workers goroutines (the
// optimum and its witness stay bit-identical to the sequential sweep);
// cancellation aborts the run promptly and returns the partial result —
// with the merged statistics of every probe, including canceled ones —
// together with ctx.Err().
func MinimizeTimeCtx(ctx context.Context, in *Instance, w, h int, o *Options) (*OptimizeResult, error) {
	r, err := solver.MinTimeCtx(ctx, in.m, w, h, opts(o))
	return convertOptErr(r, err)
}

// MinimizeChip computes the smallest square chip side h such that the
// instance completes within T cycles (MinA&FindS).
func MinimizeChip(in *Instance, t int, o *Options) (*OptimizeResult, error) {
	return MinimizeChipCtx(context.Background(), in, t, o)
}

// MinimizeChipCtx is MinimizeChip under a context. The h-ascent's OPP
// decisions race on Options.Workers goroutines with first-useful-answer
// pruning; cancellation semantics match MinimizeTimeCtx.
func MinimizeChipCtx(ctx context.Context, in *Instance, t int, o *Options) (*OptimizeResult, error) {
	r, err := solver.MinBaseCtx(ctx, in.m, t, opts(o))
	return convertOptErr(r, err)
}

// FixedSchedule decides whether a spatial placement exists for
// prescribed start times (FeasA&FixedS).
func FixedSchedule(in *Instance, c Chip, starts []int, o *Options) (*Result, error) {
	return FixedScheduleCtx(context.Background(), in, c, starts, o)
}

// FixedScheduleCtx is FixedSchedule under a context; cancellation
// semantics match SolveCtx.
func FixedScheduleCtx(ctx context.Context, in *Instance, c Chip, starts []int, o *Options) (*Result, error) {
	if len(starts) != in.NumTasks() {
		return nil, fmt.Errorf("fpga3d: %d start times for %d tasks", len(starts), in.NumTasks())
	}
	r, err := solver.FeasibleFixedScheduleCtx(ctx, in.m, c, starts, opts(o))
	if err != nil {
		return nil, err
	}
	return convertFeas(r), nil
}

// MinimizeChipFixedSchedule computes the smallest square chip that
// admits a spatial placement for prescribed start times (MinA&FixedS).
func MinimizeChipFixedSchedule(in *Instance, starts []int, o *Options) (*OptimizeResult, error) {
	return MinimizeChipFixedScheduleCtx(context.Background(), in, starts, o)
}

// MinimizeChipFixedScheduleCtx is MinimizeChipFixedSchedule under a
// context; the h-ascent races like MinimizeChipCtx and cancellation
// returns the partial result together with ctx.Err().
func MinimizeChipFixedScheduleCtx(ctx context.Context, in *Instance, starts []int, o *Options) (*OptimizeResult, error) {
	if len(starts) != in.NumTasks() {
		return nil, fmt.Errorf("fpga3d: %d start times for %d tasks", len(starts), in.NumTasks())
	}
	r, err := solver.MinBaseFixedScheduleCtx(ctx, in.m, starts, opts(o))
	return convertOptErr(r, err)
}

func convertFeas(r *solver.OPPResult) *Result {
	return &Result{
		Decision:  r.Decision,
		Placement: r.Placement,
		DecidedBy: r.DecidedBy,
		Nodes:     r.Stats.Nodes,
		Stats:     r.Stats,
		Stages:    r.Stages,
		Elapsed:   r.Elapsed,
	}
}

// convertOptErr converts an optimization result while preserving the
// partial result the Ctx drivers return alongside a cancellation error.
func convertOptErr(r *solver.OptResult, err error) (*OptimizeResult, error) {
	var out *OptimizeResult
	if r != nil {
		out = convertOpt(r)
	}
	return out, err
}

func convertOpt(r *solver.OptResult) *OptimizeResult {
	return &OptimizeResult{
		Decision:   r.Decision,
		Value:      r.Value,
		Placement:  r.Placement,
		LowerBound: r.LowerBound,
		BestBound:  r.BestBound,
		Gap:        r.Gap,
		Nodes:      r.Stats.Nodes,
		Stats:      r.Stats,
		Stages:     r.Stages,
		Elapsed:    r.Elapsed,
	}
}

// ParetoPoint is one point of the (time, chip side) trade-off curve.
type ParetoPoint = solver.ParetoPoint

// Pareto computes the Pareto-optimal (execution time, square chip side)
// pairs for the instance, as in Figure 7 of the paper. For the
// unconstrained curve use in.WithoutPrecedence().
func Pareto(in *Instance, o *Options) ([]ParetoPoint, error) {
	return ParetoCtx(context.Background(), in, o)
}

// ParetoCtx is Pareto under a context. The T-walk is sequential (each
// point seeds the next), but every chip minimization inside it races
// its probes on Options.Workers goroutines; cancellation aborts the
// walk promptly and returns the partial front together with ctx.Err().
func ParetoCtx(ctx context.Context, in *Instance, o *Options) ([]ParetoPoint, error) {
	r, err := solver.ParetoFrontCtx(ctx, in.m, opts(o))
	if err != nil {
		if r != nil {
			return r.Points, err
		}
		return nil, err
	}
	return r.Points, nil
}
