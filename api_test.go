package fpga3d

import (
	"bytes"
	"testing"
	"time"
)

func buildQuickstart() *Instance {
	in := NewInstance("api-test")
	m1 := in.AddTask("mul1", 16, 16, 2)
	m2 := in.AddTask("mul2", 16, 16, 2)
	add := in.AddTask("add", 16, 1, 1)
	cmp := in.AddTask("cmp", 16, 1, 1)
	in.AddPrecedence(m1, add)
	in.AddPrecedence(m2, add)
	in.AddPrecedence(add, cmp)
	return in
}

func TestBuilderAccessors(t *testing.T) {
	in := buildQuickstart()
	if in.Name() != "api-test" || in.NumTasks() != 4 {
		t.Fatalf("name/count wrong: %q %d", in.Name(), in.NumTasks())
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	tasks := in.Tasks()
	if tasks[0].Name != "mul1" || tasks[3].Name != "cmp" {
		t.Fatalf("Tasks() = %+v", tasks)
	}
	tasks[0].W = 99 // copy, not shared
	if in.Tasks()[0].W == 99 {
		t.Fatal("Tasks() shares storage")
	}
	prec := in.Precedences()
	if len(prec) != 3 || prec[0] != [2]TaskID{0, 2} {
		t.Fatalf("Precedences() = %v", prec)
	}
	cp, err := in.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 4 {
		t.Fatalf("critical path = %d, want 4", cp)
	}
	if got, _ := in.WithoutPrecedence().CriticalPath(); got != 2 {
		t.Fatalf("unconstrained critical path = %d, want 2", got)
	}
}

func TestSolveAndOptimize(t *testing.T) {
	in := buildQuickstart()
	opt := &Options{TimeLimit: 60 * time.Second}

	res, err := Solve(in, Chip{W: 32, H: 32, T: 4}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Feasible {
		t.Fatalf("32x32x4: %v", res.Decision)
	}
	if err := in.VerifyPlacement(res.Placement, Chip{W: 32, H: 32, T: 4}); err != nil {
		t.Fatal(err)
	}

	minT, err := MinimizeTime(in, 32, 32, opt)
	if err != nil {
		t.Fatal(err)
	}
	if minT.Decision != Feasible || minT.Value != 4 {
		t.Fatalf("MinimizeTime = %d (%v), want 4", minT.Value, minT.Decision)
	}
	minH, err := MinimizeChip(in, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if minH.Decision != Feasible || minH.Value != 32 {
		t.Fatalf("MinimizeChip = %d (%v), want 32", minH.Value, minH.Decision)
	}
	// With 6 cycles the multipliers can serialize on a 16×16 chip.
	minH6, err := MinimizeChip(in, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if minH6.Value != 16 {
		t.Fatalf("MinimizeChip(T=6) = %d, want 16", minH6.Value)
	}
}

func TestFixedScheduleAPI(t *testing.T) {
	in := buildQuickstart()
	starts := []int{0, 0, 2, 3}
	res, err := FixedSchedule(in, Chip{W: 32, H: 32, T: 4}, starts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Feasible {
		t.Fatalf("fixed schedule: %v", res.Decision)
	}
	opt, err := MinimizeChipFixedSchedule(in, starts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Decision != Feasible || opt.Value != 32 {
		t.Fatalf("MinimizeChipFixedSchedule = %d (%v), want 32", opt.Value, opt.Decision)
	}
	// Length mismatches are rejected before solving.
	if _, err := FixedSchedule(in, Chip{W: 32, H: 32, T: 4}, []int{0}, nil); err == nil {
		t.Fatal("short schedule accepted")
	}
	if _, err := MinimizeChipFixedSchedule(in, []int{0}, nil); err == nil {
		t.Fatal("short schedule accepted")
	}
}

func TestParetoAPI(t *testing.T) {
	pts, err := Pareto(BenchmarkDE(), &Options{TimeLimit: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := []ParetoPoint{{T: 6, H: 32}, {T: 13, H: 17}, {T: 14, H: 16}}
	if len(pts) != len(want) {
		t.Fatalf("Pareto = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("Pareto = %v, want %v", pts, want)
		}
	}
}

func TestJSONRoundTripAPI(t *testing.T) {
	in := buildQuickstart()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != in.NumTasks() || len(back.Precedences()) != len(in.Precedences()) {
		t.Fatal("round trip mismatch")
	}
}

func TestBenchmarkConstructors(t *testing.T) {
	de := BenchmarkDE()
	if err := de.Validate(); err != nil {
		t.Fatal(err)
	}
	if de.NumTasks() != 11 {
		t.Fatalf("DE tasks = %d", de.NumTasks())
	}
	vc := BenchmarkVideoCodec()
	if err := vc.Validate(); err != nil {
		t.Fatal(err)
	}
	if cp, _ := vc.CriticalPath(); cp != 59 {
		t.Fatalf("codec critical path = %d", cp)
	}
}

func TestInvalidInstanceErrors(t *testing.T) {
	in := NewInstance("bad")
	if _, err := Solve(in, Chip{W: 4, H: 4, T: 4}, nil); err == nil {
		t.Fatal("empty instance accepted by Solve")
	}
	if _, err := MinimizeTime(in, 4, 4, nil); err == nil {
		t.Fatal("empty instance accepted by MinimizeTime")
	}
	if _, err := MinimizeChip(in, 4, nil); err == nil {
		t.Fatal("empty instance accepted by MinimizeChip")
	}
	if _, err := Pareto(in, nil); err == nil {
		t.Fatal("empty instance accepted by Pareto")
	}
	a := in.AddTask("a", 1, 1, 1)
	b := in.AddTask("b", 1, 1, 1)
	in.AddPrecedence(a, b)
	in.AddPrecedence(b, a)
	if _, err := Solve(in, Chip{W: 4, H: 4, T: 4}, nil); err == nil {
		t.Fatal("cyclic precedence accepted")
	}
}

func TestLoadAndWrapInstance(t *testing.T) {
	in, err := LoadInstance("instances/de.json")
	if err != nil {
		t.Fatal(err)
	}
	if in.NumTasks() != 11 || in.Name() != "DE" {
		t.Fatalf("loaded %q with %d tasks", in.Name(), in.NumTasks())
	}
	if _, err := LoadInstance("instances/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	m := in.Model()
	if m.N() != 11 {
		t.Fatalf("Model() has %d tasks", m.N())
	}
	wrapped := WrapInstance(m)
	if wrapped.NumTasks() != 11 {
		t.Fatal("WrapInstance lost tasks")
	}
}

func TestSimulateAPI(t *testing.T) {
	de := BenchmarkDE()
	res, err := MinimizeChip(de, 14, nil)
	if err != nil {
		t.Fatal(err)
	}
	chip := Chip{W: res.Value, H: res.Value, T: 14}
	tr, err := de.Simulate(res.Placement, chip)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BusyCellCycles != de.Model().Volume() {
		t.Fatalf("busy cell-cycles %d != volume %d", tr.BusyCellCycles, de.Model().Volume())
	}
	if _, err := de.Simulate(nil, chip); err == nil {
		t.Fatal("nil placement accepted")
	}
}
