package fpga3d

import (
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/geomsearch"
	"fpga3d/internal/model"
	"fpga3d/internal/solver"
)

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (Section 5) and the ablation studies of
// DESIGN.md §6. Run them with
//
//	go test -bench=. -benchmem
//
// Wall-clock values are not compared against the paper's 2000-era Sun
// Ultra 30 CPU seconds; the shape of the results (which case is hard,
// which configuration collapses) is what matters. EXPERIMENTS.md records
// a full run.

// --- Table 1: BMP (MinA&FindS) on the DE benchmark --------------------

func benchTable1(b *testing.B, T, wantH int) {
	de := BenchmarkDE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := MinimizeChip(de, T, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != Feasible || r.Value != wantH {
			b.Fatalf("T=%d: chip %d (%v), want %d", T, r.Value, r.Decision, wantH)
		}
	}
}

func BenchmarkTable1_T6(b *testing.B)  { benchTable1(b, 6, 32) }
func BenchmarkTable1_T13(b *testing.B) { benchTable1(b, 13, 17) }
func BenchmarkTable1_T14(b *testing.B) { benchTable1(b, 14, 16) }

// BenchmarkTable1_T6_SearchOnly forces the hardest Table-1 row through
// the raw packing-class branch and bound (no bounds, no heuristic) —
// the configuration whose 55.76 s the paper reports.
func BenchmarkTable1_T6_SearchOnly(b *testing.B) {
	de := bench.DE()
	opt := solver.Options{SkipBounds: true, SkipHeuristic: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.MinBase(de, 6, opt)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.Value != 32 {
			b.Fatalf("got %d (%v)", r.Value, r.Decision)
		}
	}
}

// --- Table 2: the video codec -----------------------------------------

func BenchmarkTable2_VideoCodec_MinLatency(b *testing.B) {
	vc := BenchmarkVideoCodec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := MinimizeTime(vc, 64, 64, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != Feasible || r.Value != 59 {
			b.Fatalf("latency %d (%v), want 59", r.Value, r.Decision)
		}
	}
}

func BenchmarkTable2_VideoCodec_MinChip(b *testing.B) {
	vc := BenchmarkVideoCodec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := MinimizeChip(vc, 59, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != Feasible || r.Value != 64 {
			b.Fatalf("chip %d (%v), want 64", r.Value, r.Decision)
		}
	}
}

// --- Figure 7: the Pareto fronts ---------------------------------------

func BenchmarkFig7_WithPrecedence(b *testing.B) {
	de := BenchmarkDE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := Pareto(de, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatalf("points = %v", pts)
		}
	}
}

func BenchmarkFig7_NoPrecedence(b *testing.B) {
	de := BenchmarkDE().WithoutPrecedence()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := Pareto(de, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatalf("points = %v", pts)
		}
	}
}

// --- Ablations (DESIGN.md §6) ------------------------------------------

// ablationCases is the four-case DE workload used for rule ablations:
// two feasible and two infeasible decisions.
var ablationCases = []model.Container{
	{W: 32, H: 32, T: 6},
	{W: 17, H: 17, T: 13},
	{W: 16, H: 16, T: 13},
	{W: 31, H: 31, T: 12},
}

func benchAblation(b *testing.B, opt solver.Options, requireDecided bool) {
	de := bench.DE()
	opt.NodeLimit = 200_000 // keeps crippled configurations bounded
	opt.TimeLimit = 30 * time.Second
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		for _, c := range ablationCases {
			r, err := solver.SolveOPP(de, c, opt)
			if err != nil {
				b.Fatal(err)
			}
			nodes += r.Stats.Nodes
			if requireDecided && r.Decision == solver.Unknown {
				b.Fatalf("%v undecided", c)
			}
		}
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

func BenchmarkAblation_FullFramework(b *testing.B) {
	benchAblation(b, solver.Options{}, true)
}

func BenchmarkAblation_SearchOnly(b *testing.B) {
	benchAblation(b, solver.Options{SkipBounds: true, SkipHeuristic: true}, true)
}

func BenchmarkAblation_NoC4Rule(b *testing.B) {
	benchAblation(b, solver.Options{SkipBounds: true, SkipHeuristic: true,
		DisableC4Rule: true}, false)
}

func BenchmarkAblation_NoHoleRule(b *testing.B) {
	benchAblation(b, solver.Options{SkipBounds: true, SkipHeuristic: true,
		DisableHoleRule: true}, true)
}

func BenchmarkAblation_NoCliqueRules(b *testing.B) {
	benchAblation(b, solver.Options{SkipBounds: true, SkipHeuristic: true,
		DisableCliqueRule: true, DisableCliqueForce: true}, false)
}

// BenchmarkAblation_NoOrientRules is the Section 4.2 strawman: the
// D1/D2 implication closure is switched off during the search and
// orientation consistency is only tested at the leaves ("Korte–Möhring
// as a black box"), which the paper predicts to be hopeless.
func BenchmarkAblation_NoOrientRules(b *testing.B) {
	benchAblation(b, solver.Options{SkipBounds: true, SkipHeuristic: true,
		DisableOrientRules: true}, false)
}

// --- Baseline: packing classes vs geometric enumeration ----------------

// The geometric baseline (the [2]/[15]-style position tree search the
// paper argues against) is compared on the two easy Table-1 rows.
// It is node-capped: without the cap it does not finish the T=6 row at
// all, which is the paper's point.
func BenchmarkBaseline_Geometric_T14(b *testing.B) {
	de := bench.DE()
	o, err := de.Order()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := geomsearch.Solve(de, model.Container{W: 16, H: 16, T: 14}, o,
			geomsearch.Options{NodeLimit: 10_000_000})
		if r.Status != geomsearch.Feasible {
			b.Fatalf("status %v", r.Status)
		}
	}
}

func BenchmarkBaseline_PackingClass_T14(b *testing.B) {
	de := bench.DE()
	opt := solver.Options{SkipBounds: true, SkipHeuristic: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.SolveOPP(de, model.Container{W: 16, H: 16, T: 14}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible {
			b.Fatalf("decision %v", r.Decision)
		}
	}
}

// The infeasibility proof at 17×17×12 is where the gap opens: the
// geometric search needs ~10.4 M nodes, the packing-class cascade
// settles it at the root. (At 31×31×12 the baseline does not terminate
// within a minute at all; that case is documented in EXPERIMENTS.md and
// kept out of the benchmark loop.)
func BenchmarkBaseline_Geometric_T12Infeasible(b *testing.B) {
	de := bench.DE()
	o, err := de.Order()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := geomsearch.Solve(de, model.Container{W: 17, H: 17, T: 12}, o,
			geomsearch.Options{NodeLimit: 20_000_000})
		if r.Status != geomsearch.Infeasible {
			b.Fatalf("status %v", r.Status)
		}
	}
}

func BenchmarkBaseline_PackingClass_T12Infeasible(b *testing.B) {
	de := bench.DE()
	opt := solver.Options{SkipBounds: true, SkipHeuristic: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.SolveOPP(de, model.Container{W: 17, H: 17, T: 12}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Infeasible {
			b.Fatalf("decision %v", r.Decision)
		}
	}
}

// --- Micro-benchmarks of the engine stages ------------------------------

func BenchmarkStage1_Bounds(b *testing.B) {
	de := bench.DE()
	o, err := de.Order()
	if err != nil {
		b.Fatal(err)
	}
	_ = o
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.SolveOPP(de, model.Container{W: 16, H: 16, T: 12},
			solver.Options{SkipHeuristic: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Infeasible {
			b.Fatalf("decision %v", r.Decision)
		}
	}
}

func BenchmarkStage2_Heuristic(b *testing.B) {
	de := bench.DE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.SolveOPP(de, model.Container{W: 32, H: 32, T: 6},
			solver.Options{SkipBounds: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.DecidedBy != "heuristic" {
			b.Fatalf("decided by %s (%v)", r.DecidedBy, r.Decision)
		}
	}
}

// --- Extension experiments (beyond the paper's evaluation) -------------

// Scalable HLS workload families on the DE module library.
func benchHLSMinTime(b *testing.B, in *model.Instance, w, h, wantT int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.MinTime(in, w, h, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.Value != wantT {
			b.Fatalf("T = %d (%v), want %d", r.Value, r.Decision, wantT)
		}
	}
}

func BenchmarkHLS_FIR8_Serialized(b *testing.B) { benchHLSMinTime(b, bench.FIR(8), 16, 16, 19) }
func BenchmarkHLS_FIR8_Parallel(b *testing.B)   { benchHLSMinTime(b, bench.FIR(8), 32, 32, 7) }
func BenchmarkHLS_FIR16(b *testing.B)           { benchHLSMinTime(b, bench.FIR(16), 48, 48, 8) }
func BenchmarkHLS_Biquad3_Tight(b *testing.B)   { benchHLSMinTime(b, bench.Biquad(3), 17, 17, 31) }
func BenchmarkHLS_Biquad3_Relaxed(b *testing.B) { benchHLSMinTime(b, bench.Biquad(3), 32, 32, 20) }
func BenchmarkHLS_FFT8(b *testing.B)            { benchHLSMinTime(b, bench.FFT(8), 32, 32, 9) }

// Rectangular chip minimization (MinimizeChipArea): the DE benchmark at
// T=6 fits 768 cells although the smallest square needs 1024.
func BenchmarkExtension_MinArea_DE_T6(b *testing.B) {
	de := bench.DE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.MinArea(de, 6, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.Area != 768 {
			b.Fatalf("area = %d (%v)", r.Area, r.Decision)
		}
	}
}

// Rotation enumeration over the DE ALU modules (2^5 orientations, all
// refuted or confirmed exactly).
func BenchmarkExtension_Rotation_DE(b *testing.B) {
	de := bench.DE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.SolveOPPWithRotation(de, model.Container{W: 32, H: 32, T: 6}, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible {
			b.Fatalf("decision %v", r.Decision)
		}
	}
}

// Scaling of the full framework with instance size (layered random
// DAGs at a moderately tight horizon: critical path + 2).
func benchScaling(b *testing.B, layers int) {
	rng := rand.New(rand.NewSource(42))
	in := bench.RandomLayered(rng, layers, 4, 6, 3, 0.4)
	order, err := in.Order()
	if err != nil {
		b.Fatal(err)
	}
	c := model.Container{W: 10, H: 10, T: order.CriticalPath() + 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.SolveOPP(in, c, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision == solver.Unknown {
			b.Fatal("undecided")
		}
	}
}

func BenchmarkScaling_Layered3(b *testing.B) { benchScaling(b, 3) }
func BenchmarkScaling_Layered5(b *testing.B) { benchScaling(b, 5) }
func BenchmarkScaling_Layered7(b *testing.B) { benchScaling(b, 7) }
func BenchmarkScaling_Layered9(b *testing.B) { benchScaling(b, 9) }

// Multi-FPGA partitioning: minimal number of 16x16 chips for the DE
// benchmark at the critical-path latency (the chip index is a fourth
// packing dimension).
func BenchmarkExtension_MinChips_DE_T6(b *testing.B) {
	de := bench.DE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.MinChips(de, 16, 16, 6, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.Chips != 3 {
			b.Fatalf("chips = %d (%v)", r.Chips, r.Decision)
		}
	}
}

func BenchmarkFixedSchedule_DE(b *testing.B) {
	de := bench.DE()
	starts := []int{0, 0, 2, 4, 5, 0, 2, 0, 2, 0, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.MinBaseFixedSchedule(de, starts, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.Value != 33 {
			b.Fatalf("chip %d (%v)", r.Value, r.Decision)
		}
	}
}

// --- Parallel sweeps (Options.Workers racing, BENCH_parallel.json) ----

// benchParallelBMP runs the hardest Table-1 row search-only — the one
// configuration on the shipped benchmarks where the raced probes expend
// real branch-and-bound effort — with a given pool size. Workers > 1
// must reproduce the sequential optimum bit for bit; wall-clock gains
// require actual spare cores (see EXPERIMENTS.md).
func benchParallelBMP(b *testing.B, workers int) {
	de := bench.DE()
	opt := solver.Options{SkipBounds: true, SkipHeuristic: true, Workers: workers}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := solver.MinBase(de, 6, opt)
		if err != nil {
			b.Fatal(err)
		}
		if r.Decision != solver.Feasible || r.Value != 32 {
			b.Fatalf("got %d (%v)", r.Value, r.Decision)
		}
	}
}

func BenchmarkParallel_BMP_DE_T6_Workers1(b *testing.B) { benchParallelBMP(b, 1) }
func BenchmarkParallel_BMP_DE_T6_Workers4(b *testing.B) { benchParallelBMP(b, 4) }
func BenchmarkParallel_BMP_DE_T6_Workers8(b *testing.B) { benchParallelBMP(b, 8) }

// BenchmarkParallel_Pareto_DE races the whole Figure-7 Pareto walk.
func BenchmarkParallel_Pareto_DE(b *testing.B) {
	de := BenchmarkDE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := Pareto(de, &Options{Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatalf("front has %d points, want 3", len(pts))
		}
	}
}
