package fpga3d

import "fpga3d/internal/bench"

// BenchmarkDE returns the paper's DE benchmark (Section 5.1): the
// 11-node differential-equation dataflow graph with 16×16×2 multiplier
// modules and 16×1×1 ALU modules.
func BenchmarkDE() *Instance { return &Instance{m: bench.DE()} }

// BenchmarkVideoCodec returns the paper's H.261 video-codec benchmark
// (Section 5.2): a coder/decoder task graph over the module library
// PUM (25×25), BMM (64×64) and DCTM (16×16). Task durations are a
// reconstruction calibrated to the paper's reported optimum; see
// DESIGN.md §5.
func BenchmarkVideoCodec() *Instance { return &Instance{m: bench.VideoCodec()} }

// BenchmarkFIR returns the dataflow graph of an n-tap FIR filter over
// the DE module library (multiplier 16×16×2, ALU 16×1×1): n coefficient
// products feeding a balanced adder tree. A scalable workload family
// beyond the paper's evaluation.
func BenchmarkFIR(taps int) *Instance { return &Instance{m: bench.FIR(taps)} }

// BenchmarkBiquad returns a cascade of k direct-form-II biquad IIR
// sections (5 multiplications, 4 additions per section) over the DE
// module library.
func BenchmarkBiquad(sections int) *Instance { return &Instance{m: bench.Biquad(sections)} }

// BenchmarkFFT returns the dataflow graph of an n-point radix-2 FFT
// (n must be a power of two) over the DE module library.
func BenchmarkFFT(points int) *Instance { return &Instance{m: bench.FFT(points)} }
