package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
	"fpga3d/internal/solver"
)

// AnytimeReportSchema identifies the anytime quality-vs-time report
// format; bump it on incompatible changes so a stale committed
// baseline fails loudly.
const AnytimeReportSchema = "fpgabench/anytime/v1"

// anytimeDeadlines are the curve sample points: how good is the
// incumbent this long after the solve started? They match the serving
// tiers the anytime mode exists for — interactive (10ms), online
// admission (100ms), batch planning (1s).
var anytimeDeadlines = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second}

// gapSlack is the absolute slack on gap-at-deadline comparisons
// against the baseline. The improvement timeline is wall-clock
// sampled, so where a deadline falls in it shifts with machine load;
// a gap only counts as regressed when it worsens past this slack.
const gapSlack = 0.25

// anytimeCase is one minimize-time question measured in anytime mode.
type anytimeCase struct {
	name  string
	quick bool
	mk    func() *model.Instance
	w, h  int
}

// anytimeSuite returns the quality-vs-time cases: the paper's
// evaluation instances on their benchmark chips. Every case must run
// to proven optimality (final gap 0), so only tractable minimize-time
// sweeps belong here.
func anytimeSuite() []anytimeCase {
	return []anytimeCase{
		{name: "de/anytime/17x17", quick: true, mk: bench.DE, w: 17, h: 17},
		{name: "de/anytime/33x16", mk: bench.DE, w: 33, h: 16},
		{name: "codec/anytime/64x64", mk: bench.VideoCodec, w: 64, h: 64},
		{name: "hls/biquad3/17x17", quick: true, mk: func() *model.Instance { return bench.Biquad(3) }, w: 17, h: 17},
	}
}

// AnytimeEntry is the measured quality-vs-time curve of one case.
type AnytimeEntry struct {
	Name string `json:"name"`
	// Status, Value and LowerBound are deterministic (the anytime
	// refinement is gated to land on the staged answer) and diffed
	// exactly against the baseline. FinalGap must be 0 — a completed
	// anytime run proves its incumbent — and is checked at measurement
	// time, before any baseline enters the picture.
	Status     string  `json:"status"`
	Value      int     `json:"value"`
	LowerBound int     `json:"lower_bound"`
	FinalGap   float64 `json:"final_gap"`
	// GapAt and BestAt sample the improvement timeline at the curve
	// deadlines (index-aligned with anytimeDeadlines): the incumbent's
	// optimality gap and makespan as of that much wall time into the
	// run. A deadline that falls before the first incumbent records
	// gap 1 and makespan 0. Best over -runs repetitions; gaps are
	// diffed with absolute slack, makespans recorded for inspection.
	GapAt  []float64 `json:"gap_at"`
	BestAt []int     `json:"best_at"`
	// TimeToOptNS is the elapsed wall time at which the incumbent
	// first reached the optimum (not yet proven); TimeToProofNS the
	// full run wall time, proof included. Both are best-of -runs and
	// tolerance-gated like every other wall time.
	TimeToOptNS   int64 `json:"time_to_opt_ns"`
	TimeToProofNS int64 `json:"time_to_proof_ns"`
	// Updates counts improvement notifications of the best run —
	// recorded for inspection, never diffed (the annealer's
	// notification points are timing-dependent).
	Updates int `json:"updates,omitempty"`
}

// AnytimeReport is the machine-readable output of fpgabench -anytime.
type AnytimeReport struct {
	Schema    string         `json:"schema"`
	Generated string         `json:"generated"`
	Env       Env            `json:"env"`
	Runs      int            `json:"runs"`
	Quick     bool           `json:"quick,omitempty"`
	Deadlines []string       `json:"deadlines"`
	Entries   []AnytimeEntry `json:"entries"`
}

// runAnytime is the -anytime entry point: solve every suite case in
// anytime mode, sample its quality-vs-time curve, gate the final
// answer's determinism and proven gap, and optionally diff against a
// committed baseline.
func runAnytime(stdout, stderr io.Writer, quick, list bool, runs int, out, baseline string, tol float64, floor time.Duration) int {
	cases := anytimeSuite()
	if list {
		for _, c := range cases {
			tag := ""
			if c.quick {
				tag = " [quick]"
			}
			fmt.Fprintf(stdout, "%-24s anytime%s\n", c.name, tag)
		}
		return 0
	}
	rep := &AnytimeReport{
		Schema:    AnytimeReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env:       envStamp(),
		Runs:      runs,
		Quick:     quick,
	}
	for _, d := range anytimeDeadlines {
		rep.Deadlines = append(rep.Deadlines, d.String())
	}
	for _, c := range cases {
		if quick && !c.quick {
			continue
		}
		e, err := measureAnytimeCase(c, runs)
		if err != nil {
			fmt.Fprintf(stderr, "fpgabench: %s: %v\n", c.name, err)
			return 1
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(stdout, "%-24s opt %3d  lb %3d  gap@10ms %.3f  @100ms %.3f  @1s %.3f  opt in %10v  proof %10v\n",
			e.Name, e.Value, e.LowerBound, e.GapAt[0], e.GapAt[1], e.GapAt[2],
			time.Duration(e.TimeToOptNS).Round(time.Microsecond),
			time.Duration(e.TimeToProofNS).Round(time.Microsecond))
	}

	if out != "" {
		if err := writeAnytimeReport(rep, out); err != nil {
			fmt.Fprintf(stderr, "fpgabench: write report: %v\n", err)
			return 1
		}
	}
	if baseline != "" {
		base, err := readAnytimeReport(baseline)
		if err != nil {
			fmt.Fprintf(stderr, "fpgabench: baseline: %v\n", err)
			return 1
		}
		msgs := diffAnytimeReports(base, rep, tol, floor)
		for _, m := range msgs {
			fmt.Fprintf(stderr, "fpgabench: REGRESSION: %s\n", m)
		}
		if len(msgs) > 0 {
			return 2
		}
		fmt.Fprintf(stdout, "baseline %s: %d anytime cases compared, no regressions\n", baseline, len(rep.Entries))
	}
	return 0
}

// anytimeSample is one point of the improvement timeline.
type anytimeSample struct {
	best, lower int
	gap         float64
	at          time.Duration
}

// measureAnytimeCase solves one case `runs` times in anytime mode and
// folds the repetitions: the final answer must agree across all of
// them (determinism gate) and must be proven (gap 0); per-deadline
// gaps and the wall times keep their best observation, so the curve
// reflects what the machine can do rather than its worst hiccup.
func measureAnytimeCase(c anytimeCase, runs int) (AnytimeEntry, error) {
	e := AnytimeEntry{Name: c.name}
	for r := 0; r < runs; r++ {
		var timeline []anytimeSample
		opt := solver.Options{
			Workers: 1,
			Anytime: true,
			OnImprovement: func(u solver.AnytimeUpdate) {
				timeline = append(timeline, anytimeSample{best: u.Best, lower: u.LowerBound, gap: u.Gap, at: u.Elapsed})
			},
		}
		start := time.Now()
		res, err := solver.MinTime(c.mk(), c.w, c.h, opt)
		wall := time.Since(start)
		if err != nil {
			return e, err
		}
		if res.Gap != 0 || res.BestBound != res.Value {
			return e, fmt.Errorf("completed anytime run not proven: gap %v, best bound %d, value %d",
				res.Gap, res.BestBound, res.Value)
		}
		gapAt := make([]float64, len(anytimeDeadlines))
		bestAt := make([]int, len(anytimeDeadlines))
		for i, d := range anytimeDeadlines {
			gapAt[i] = 1 // no incumbent yet
			for _, s := range timeline {
				if s.at > d {
					break
				}
				gapAt[i], bestAt[i] = s.gap, s.best
			}
			// The whole run may beat the deadline: then the curve is
			// flat at the proven optimum from the finish onward.
			if wall <= d {
				gapAt[i], bestAt[i] = 0, res.Value
			}
		}
		toOpt := wall
		for _, s := range timeline {
			if s.best == res.Value {
				toOpt = s.at
				break
			}
		}
		if r == 0 {
			e.Status = res.Decision.String()
			e.Value = res.Value
			e.LowerBound = res.LowerBound
			e.FinalGap = res.Gap
			e.GapAt, e.BestAt = gapAt, bestAt
			e.TimeToOptNS = int64(toOpt)
			e.TimeToProofNS = int64(wall)
			e.Updates = len(timeline)
			continue
		}
		if res.Decision.String() != e.Status || res.Value != e.Value || res.LowerBound != e.LowerBound {
			return e, fmt.Errorf("nondeterministic answer: run %d %s/%d (lb %d), run 0 %s/%d (lb %d)",
				r, res.Decision, res.Value, res.LowerBound, e.Status, e.Value, e.LowerBound)
		}
		for i := range gapAt {
			if gapAt[i] < e.GapAt[i] {
				e.GapAt[i], e.BestAt[i] = gapAt[i], bestAt[i]
			}
		}
		if int64(toOpt) < e.TimeToOptNS {
			e.TimeToOptNS = int64(toOpt)
		}
		if int64(wall) < e.TimeToProofNS {
			e.TimeToProofNS = int64(wall)
			e.Updates = len(timeline)
		}
	}
	return e, nil
}

// writeAnytimeReport marshals the report to path (or stdout for "-").
func writeAnytimeReport(r *AnytimeReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// readAnytimeReport loads a committed anytime report, checking its
// schema.
func readAnytimeReport(path string) (*AnytimeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r AnytimeReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != AnytimeReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, AnytimeReportSchema)
	}
	return &r, nil
}

// diffAnytimeReports compares a run against the committed baseline.
// The answer (status, optimum, stage-1 bound) matches exactly; each
// gap-at-deadline may not worsen past gapSlack; the wall times regress
// only past the relative tolerance and the absolute floor, like the
// core suite.
func diffAnytimeReports(base, cur *AnytimeReport, tol float64, floor time.Duration) []string {
	baseByName := make(map[string]AnytimeEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	var msgs []string
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		b, ok := baseByName[e.Name]
		if !ok {
			continue // new case, nothing to compare yet
		}
		seen[e.Name] = true
		if e.Status != b.Status || e.Value != b.Value || e.LowerBound != b.LowerBound {
			msgs = append(msgs, fmt.Sprintf("%s: answer changed: %s/%d (lb %d), baseline %s/%d (lb %d)",
				e.Name, e.Status, e.Value, e.LowerBound, b.Status, b.Value, b.LowerBound))
			continue
		}
		for i := range e.GapAt {
			if i >= len(b.GapAt) {
				break
			}
			if e.GapAt[i] > b.GapAt[i]+gapSlack {
				msgs = append(msgs, fmt.Sprintf("%s: gap at %s worsened: %.3f, baseline %.3f (+%.2f slack)",
					e.Name, cur.Deadlines[i], e.GapAt[i], b.GapAt[i], gapSlack))
			}
		}
		for _, tc := range []struct {
			what      string
			cur, base int64
		}{
			{"time to optimum", e.TimeToOptNS, b.TimeToOptNS},
			{"time to proof", e.TimeToProofNS, b.TimeToProofNS},
		} {
			slack := int64(float64(tc.base) * tol)
			if s := int64(floor); s > slack {
				slack = s
			}
			if tc.cur > tc.base+slack {
				msgs = append(msgs, fmt.Sprintf("%s: %s regressed: %v, baseline %v (tolerance %.0f%%, floor %v)",
					e.Name, tc.what, time.Duration(tc.cur), time.Duration(tc.base), tol*100, floor))
			}
		}
	}
	if !cur.Quick {
		for _, b := range base.Entries {
			if !seen[b.Name] {
				msgs = append(msgs, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			}
		}
	}
	return msgs
}
