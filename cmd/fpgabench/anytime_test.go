package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleAnytimeReport() *AnytimeReport {
	return &AnytimeReport{
		Schema:    AnytimeReportSchema,
		Generated: "2026-08-08T00:00:00Z",
		Env:       envStamp(),
		Runs:      3,
		Deadlines: []string{"10ms", "100ms", "1s"},
		Entries: []AnytimeEntry{
			{Name: "de/anytime/17x17", Status: "feasible", Value: 13, LowerBound: 13,
				GapAt: []float64{0, 0, 0}, BestAt: []int{13, 13, 13},
				TimeToOptNS: 80_000, TimeToProofNS: 180_000, Updates: 2},
			{Name: "de/anytime/33x16", Status: "feasible", Value: 8, LowerBound: 7,
				GapAt: []float64{0.125, 0.125, 0}, BestAt: []int{8, 8, 8},
				TimeToOptNS: 100_000, TimeToProofNS: 230_000_000, Updates: 3},
		},
	}
}

func TestAnytimeReportRoundTrip(t *testing.T) {
	r := sampleAnytimeReport()
	path := filepath.Join(t.TempDir(), "anytime.json")
	if err := writeAnytimeReport(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := readAnytimeReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", r, got)
	}
	if msgs := diffAnytimeReports(r, got, 0, 0); len(msgs) != 0 {
		t.Fatalf("self-diff not clean: %v", msgs)
	}

	r.Schema = "fpgabench/anytime/v0"
	if err := writeAnytimeReport(r, path); err != nil {
		t.Fatal(err)
	}
	if _, err := readAnytimeReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestDiffAnytimeRegressions exercises each class the anytime gate can
// raise: answer drift, gap-at-deadline regressions past the slack, wall
// regressions past the floor, and vanished cases.
func TestDiffAnytimeRegressions(t *testing.T) {
	base := sampleAnytimeReport()

	t.Run("answer drift", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries[0].Value++
		msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "answer changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("lower bound drift", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries[1].LowerBound--
		msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "answer changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("gap regression past slack", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries[1].GapAt[2] = gapSlack + 0.01
		msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "gap at 1s worsened") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("gap noise under slack ignored", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries[0].GapAt[0] = gapSlack - 0.01
		if msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("sub-slack gap noise flagged: %v", msgs)
		}
	})
	t.Run("proof wall regression past floor", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries[1].TimeToProofNS *= 3
		msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "time to proof regressed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("micro wall noise under floor ignored", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries[0].TimeToOptNS *= 10
		cur.Entries[0].TimeToProofNS *= 10
		if msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("micro-case noise flagged: %v", msgs)
		}
	})
	t.Run("missing case in full run", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries = cur.Entries[:1]
		msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "not measured") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("missing case tolerated in quick run", func(t *testing.T) {
		cur := sampleAnytimeReport()
		cur.Entries = cur.Entries[:1]
		cur.Quick = true
		if msgs := diffAnytimeReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("quick run flagged for subsetting: %v", msgs)
		}
	})
}

// TestRunAnytimeQuick runs the real quick subset end to end: every
// case must prove its optimum (final gap 0) and the report must be
// parseable with curve samples for every deadline.
func TestRunAnytimeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real instances")
	}
	var stdout, stderr bytes.Buffer
	path := filepath.Join(t.TempDir(), "anytime.json")
	if code := run([]string{"-anytime", "-quick", "-runs", "1", "-out", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	rep, err := readAnytimeReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 {
		t.Fatal("quick run measured no cases")
	}
	for _, e := range rep.Entries {
		if e.FinalGap != 0 {
			t.Errorf("%s: final gap %v, want proven 0", e.Name, e.FinalGap)
		}
		if len(e.GapAt) != len(anytimeDeadlines) || len(e.BestAt) != len(anytimeDeadlines) {
			t.Errorf("%s: curve has %d/%d samples, want %d", e.Name, len(e.GapAt), len(e.BestAt), len(anytimeDeadlines))
		}
		for i := 1; i < len(e.GapAt); i++ {
			if e.GapAt[i] > e.GapAt[i-1] {
				t.Errorf("%s: gap increased along the curve: %v", e.Name, e.GapAt)
			}
		}
	}
	// Diffing a run against its own report is clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-anytime", "-quick", "-runs", "1", "-baseline", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-baseline exit %d\nstderr: %s", code, stderr.String())
	}
}

func TestAnytimeAndOnlineExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-anytime", "-online"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestCommittedAnytimeBaseline keeps the committed BENCH_anytime.json
// honest: right schema, all suite cases present, every entry proven.
func TestCommittedAnytimeBaseline(t *testing.T) {
	rep, err := readAnytimeReport("../../BENCH_anytime.json")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AnytimeEntry{}
	for _, e := range rep.Entries {
		byName[e.Name] = e
		if e.FinalGap != 0 {
			t.Errorf("%s: committed final gap %v, want 0", e.Name, e.FinalGap)
		}
	}
	for _, c := range anytimeSuite() {
		if _, ok := byName[c.name]; !ok {
			t.Errorf("suite case %s missing from committed baseline", c.name)
		}
	}
	var raw map[string]json.RawMessage
	data, _ := json.Marshal(rep)
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
}
