package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Schema:    ReportSchema,
		Generated: "2026-08-06T00:00:00Z",
		Env:       envStamp(),
		Runs:      3,
		Entries: []Entry{
			{Name: "de/opp/32x32x6", Kind: "opp", Status: "feasible", Nodes: 85, Propagations: 253, WallNS: 1_000_000},
			{Name: "hls/biquad3/17x17", Kind: "mintime", Status: "feasible", Value: 31, Nodes: 1595, Propagations: 13270, WallNS: 60_000_000},
		},
	}
}

// TestReportRoundTrip: a report written to disk reloads identically and
// diffs clean against itself.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := writeReport(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", r, got)
	}
	if msgs := diffReports(r, got, 0, 0); len(msgs) != 0 {
		t.Fatalf("self-diff not clean: %v", msgs)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := sampleReport()
	r.Schema = "fpgabench/v0"
	if err := writeReport(r, path); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestDiffReportsRegressions exercises every regression class the gate
// can raise: wall-time slowdowns past tolerance and floor, node- and
// propagation-count drift, changed answers, and vanished cases.
func TestDiffReportsRegressions(t *testing.T) {
	base := sampleReport()

	t.Run("injected slowdown", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries[1].WallNS *= 3
		msgs := diffReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "wall time regressed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("slowdown under floor ignored", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries[0].WallNS *= 3 // 1ms → 3ms, below the 25ms floor
		if msgs := diffReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("micro-case slowdown flagged: %v", msgs)
		}
	})
	t.Run("node drift", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries[0].Nodes++
		msgs := diffReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "node count changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("propagation drift", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries[0].Propagations--
		msgs := diffReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "propagation count changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("changed answer", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries[0].Status = "infeasible"
		msgs := diffReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "answer changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("missing case in full run", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries = cur.Entries[:1]
		msgs := diffReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "not in this run") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("missing case tolerated in quick run", func(t *testing.T) {
		cur := sampleReport()
		cur.Entries = cur.Entries[:1]
		cur.Quick = true
		if msgs := diffReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("quick run flagged for subsetting: %v", msgs)
		}
	})
}

// TestRunQuickEndToEnd drives the real binary entry point over the
// quick subset: the report must be written and well-formed, a self
// baseline must pass, and a baseline with tampered wall times must trip
// exit code 2.
func TestRunQuickEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick benchmark subset")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quick", "-runs", "1", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	rep, err := readReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 || !rep.Quick {
		t.Fatalf("bad report: %+v", rep)
	}
	for _, e := range rep.Entries {
		if e.WallNS <= 0 {
			t.Fatalf("%s: no wall time recorded", e.Name)
		}
	}

	// Self-comparison passes.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-quick", "-runs", "1", "-baseline", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("self baseline: exit %d, stderr: %s", code, stderr.String())
	}

	// A baseline claiming near-zero wall times makes every case an
	// injected slowdown once the floor is removed: exit code 2.
	tampered := filepath.Join(dir, "tampered.json")
	bad := *rep
	bad.Entries = append([]Entry(nil), rep.Entries...)
	for i := range bad.Entries {
		bad.Entries[i].WallNS = 1
	}
	if err := writeReport(&bad, tampered); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-quick", "-runs", "1", "-baseline", tampered, "-floor", "0s"}, &stdout, &stderr); code != 2 {
		t.Fatalf("tampered baseline: exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wall time regressed") {
		t.Fatalf("stderr missing regression message: %s", stderr.String())
	}
}

// TestSuiteNamesUniqueAndListed guards the case table: names must be
// unique (they key the baseline diff) and -list must print each one.
func TestSuiteNamesUniqueAndListed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range suite() {
		if seen[c.name] {
			t.Fatalf("duplicate case name %q", c.name)
		}
		seen[c.name] = true
		if c.kind != "opp" && c.kind != "mintime" && c.kind != "minbase" {
			t.Fatalf("%s: unknown kind %q", c.name, c.kind)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for name := range seen {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list missing %q", name)
		}
	}
}

// TestCommittedBaselineParses keeps the committed BENCH_core.json
// loadable and schema-current, with every suite case present — the
// contract the CI bench gate depends on.
func TestCommittedBaselineParses(t *testing.T) {
	rep, err := readReport("../../BENCH_core.json")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{}
	for _, e := range rep.Entries {
		byName[e.Name] = e
	}
	var wall, refWall int64
	for _, c := range suite() {
		e, ok := byName[c.name]
		if !ok {
			t.Errorf("baseline missing case %q — refresh BENCH_core.json (see BENCHMARKS.md)", c.name)
			continue
		}
		if e.RefWallNS > 0 {
			wall += e.WallNS
			refWall += e.RefWallNS
		}
	}
	// The committed baseline must document the optimization win: at
	// least a 20% aggregate wall-time reduction over the reference rule
	// paths, at identical node counts (identity is enforced at record
	// time by -compare-ref).
	if refWall > 0 && float64(wall) > 0.8*float64(refWall) {
		t.Errorf("committed baseline shows only %.1f%% aggregate reduction over reference rules (want ≥ 20%%)",
			100*(1-float64(wall)/float64(refWall)))
	}
	var marshaled bytes.Buffer
	if err := json.NewEncoder(&marshaled).Encode(rep); err != nil {
		t.Fatal(err)
	}
}
