// Command fpgabench runs the engine's regression benchmark suite: the
// paper's evaluation instances plus seeded random ones, measuring
// branch-and-bound nodes, constraint propagations and wall time per
// case. Reports are machine-readable JSON (see BENCHMARKS.md); with
// -baseline the run is diffed against a committed report and the
// process exits non-zero on regression, which is how CI gates engine
// changes. Node and propagation counts are deterministic and diffed
// exactly; wall times carry a relative tolerance and an absolute noise
// floor.
//
// Usage:
//
//	fpgabench [-quick] [-runs N] [-out report.json]
//	          [-baseline BENCH_core.json] [-tolerance 0.5] [-floor 25ms]
//	          [-compare-ref] [-compare-strategy] [-compare-parallel N]
//	          [-workers N] [-list]
//
// With -online, fpgabench instead replays the seeded online placement
// scripts (module arrivals, departures, defrags) against fresh
// internal/online sessions, reporting admissions per second, defrag
// move counts and p50/p99 admission latency per script into a
// schema-stamped report (fpgabench/online/v1, committed as
// BENCH_online.json). Decision counts and probe nodes are deterministic
// and diffed exactly; latencies are tolerance-gated:
//
//	fpgabench -online [-quick] [-runs N] [-out BENCH_online.json]
//	          [-baseline BENCH_online.json] [-tolerance 0.5] [-floor 25ms]
//
// With -anytime, fpgabench measures the anytime tier's quality-vs-time
// curves: every paper instance is minimized in anytime mode and the
// incumbent's optimality gap is sampled 10ms, 100ms and 1s into the
// run, alongside the time to reach and to prove the optimum
// (fpgabench/anytime/v1, committed as BENCH_anytime.json). The final
// answer is diffed exactly — a completed anytime run must land on the
// staged optimum at gap 0 — while the per-deadline gaps carry an
// absolute slack and the wall times the usual tolerance:
//
//	fpgabench -anytime [-quick] [-runs N] [-out BENCH_anytime.json]
//	          [-baseline BENCH_anytime.json] [-tolerance 0.5] [-floor 25ms]
//
// Exit codes: 0 success, 1 usage or solver error, 2 regression against
// the baseline (or determinism violation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/solver"
	"fpga3d/internal/strategy"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpgabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list            = fs.Bool("list", false, "list benchmark cases and exit")
		quick           = fs.Bool("quick", false, "run only the quick subset (CI gate)")
		runs            = fs.Int("runs", 3, "repetitions per case; the minimum wall time is reported")
		out             = fs.String("out", "", "write the JSON report to this path ('-' for stdout)")
		baseline        = fs.String("baseline", "", "diff against this committed report; exit 2 on regression")
		tolerance       = fs.Float64("tolerance", 0.5, "relative wall-time slack before a case counts as regressed")
		floor           = fs.Duration("floor", 25*time.Millisecond, "absolute wall-time slack; micro-cases under this never regress")
		compareRef      = fs.Bool("compare-ref", false, "also time the reference rule paths and record the speedup")
		workers         = fs.Int("workers", 0, "additionally time optimization sweeps with this worker pool")
		compareStrategy = fs.Bool("compare-strategy", false, "also run every case under the portfolio strategy; exit 2 if it changes an answer, or increases a node count on a paper instance")
		compareParallel = fs.Int("compare-parallel", 0, "also run single-decision (opp) cases with an intra-probe work-stealing pool of this size; exit 2 if any answer changes")
		onlineMode      = fs.Bool("online", false, "replay the online placement scripts instead of the core solver suite")
		anytimeMode     = fs.Bool("anytime", false, "measure anytime quality-vs-time curves instead of the core solver suite")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *runs < 1 {
		*runs = 1
	}
	if *onlineMode && *anytimeMode {
		fmt.Fprintln(stderr, "fpgabench: -online and -anytime are mutually exclusive")
		return 1
	}
	if *onlineMode {
		return runOnline(stdout, stderr, *quick, *list, *runs, *out, *baseline, *tolerance, *floor)
	}
	if *anytimeMode {
		return runAnytime(stdout, stderr, *quick, *list, *runs, *out, *baseline, *tolerance, *floor)
	}
	cases := suite()
	if *list {
		for _, c := range cases {
			tag := ""
			if c.quick {
				tag = " [quick]"
			}
			fmt.Fprintf(stdout, "%-24s %s%s\n", c.name, c.kind, tag)
		}
		return 0
	}

	rep := &Report{
		Schema:    ReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env:       envStamp(),
		Runs:      *runs,
		Quick:     *quick,
		Workers:   *workers,
	}
	exit := 0
	for _, c := range cases {
		if *quick && !c.quick {
			continue
		}
		// Sequential, search-only unless the case opts into the full
		// framework: wall time is engine time and the node count is
		// the deterministic single-probe sequence.
		opt := solver.Options{SkipBounds: !c.full, SkipHeuristic: !c.full, Workers: 1, NodeLimit: c.nodeLimit}
		e, err := measureCase(c, opt, *runs)
		if err != nil {
			fmt.Fprintf(stderr, "fpgabench: %s: %v\n", c.name, err)
			return 1
		}
		if *compareRef {
			refOpt := opt
			refOpt.ReferenceRules = true
			ref, err := measureCase(c, refOpt, *runs)
			if err != nil {
				fmt.Fprintf(stderr, "fpgabench: %s (reference): %v\n", c.name, err)
				return 1
			}
			if ref.Status != e.Status || ref.Value != e.Value || ref.Nodes != e.Nodes || ref.Propagations != e.Propagations {
				fmt.Fprintf(stderr, "fpgabench: %s: reference rules diverge: %s/%d %d nodes %d props, fast %s/%d %d nodes %d props\n",
					c.name, ref.Status, ref.Value, ref.Nodes, ref.Propagations, e.Status, e.Value, e.Nodes, e.Propagations)
				exit = 2
			}
			e.RefWallNS = ref.WallNS
		}
		if *compareStrategy {
			pOpt := opt
			pOpt.Strategy = strategy.NamePortfolio
			p, err := measureCase(c, pOpt, *runs)
			if err != nil {
				fmt.Fprintf(stderr, "fpgabench: %s (portfolio): %v\n", c.name, err)
				return 1
			}
			if p.Status != e.Status || p.Value != e.Value {
				fmt.Fprintf(stderr, "fpgabench: %s: portfolio changed the answer: %s/%d, staged %s/%d\n",
					c.name, p.Status, p.Value, e.Status, e.Value)
				exit = 2
			}
			// Node counts are gated only on the paper's instances: there
			// the portfolio's incumbent sharing is pure pruning (see
			// TestPortfolioNeverIncreasesNodesOnPaperInstances). On other
			// optimization sweeps the portfolio re-sequences probes
			// (frontier-first, witness tightening), which can trade a
			// cheap probe for a costlier one, so those counts are
			// recorded but not enforced.
			if paperInstance(c.name) && p.Nodes > e.Nodes {
				fmt.Fprintf(stderr, "fpgabench: %s: portfolio expanded %d nodes, staged %d — incumbent sharing may only prune on paper instances\n",
					c.name, p.Nodes, e.Nodes)
				exit = 2
			}
			e.PortfolioNodes = &p.Nodes
			e.PortfolioWallNS = p.WallNS
		}
		if *compareParallel > 1 && c.kind == "opp" {
			// Intra-probe work stealing: the same single decision on a
			// shared-tree pool. Answer equality is the gate; nodes and
			// steals are sum-of-shards, recorded but never diffed.
			pOpt := opt
			pOpt.Workers = *compareParallel
			p, err := measureCase(c, pOpt, *runs)
			if err != nil {
				fmt.Fprintf(stderr, "fpgabench: %s (parallel): %v\n", c.name, err)
				return 1
			}
			if p.Status != e.Status || p.Value != e.Value {
				fmt.Fprintf(stderr, "fpgabench: %s: parallel search changed the answer: %s/%d, sequential %s/%d\n",
					c.name, p.Status, p.Value, e.Status, e.Value)
				exit = 2
			}
			e.ParallelWorkers = *compareParallel
			e.ParallelNodes = p.Nodes
			e.ParallelSteals = p.Steals
			e.ParallelWallNS = p.WallNS
			if p.WallNS > 0 {
				e.ParallelSpeedup = float64(e.WallNS) / float64(p.WallNS)
			}
		}
		if *workers > 1 && c.kind != "opp" {
			// Racing probes cancel each other, so stats are not
			// deterministic here; record wall time only.
			wOpt := opt
			wOpt.Workers = *workers
			w, err := measureCase(c, wOpt, *runs)
			if err != nil {
				fmt.Fprintf(stderr, "fpgabench: %s (workers): %v\n", c.name, err)
				return 1
			}
			if w.Status != e.Status || w.Value != e.Value {
				fmt.Fprintf(stderr, "fpgabench: %s: parallel sweep changed the answer: %s/%d, sequential %s/%d\n",
					c.name, w.Status, w.Value, e.Status, e.Value)
				return 1
			}
			e.WorkersWallNS = w.WallNS
		}
		rep.Entries = append(rep.Entries, e)
		printEntry(stdout, e)
	}

	if *out != "" {
		if err := writeReport(rep, *out); err != nil {
			fmt.Fprintf(stderr, "fpgabench: write report: %v\n", err)
			return 1
		}
	}
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "fpgabench: baseline: %v\n", err)
			return 1
		}
		msgs := diffReports(base, rep, *tolerance, *floor)
		for _, m := range msgs {
			fmt.Fprintf(stderr, "fpgabench: REGRESSION: %s\n", m)
		}
		if len(msgs) > 0 {
			return 2
		}
		fmt.Fprintf(stdout, "baseline %s: %d cases compared, no regressions\n", *baseline, len(rep.Entries))
	}
	return exit
}

// measureCase runs one case `runs` times under the given options and
// returns an entry with the minimum wall time. Sequential runs must
// agree on node and propagation counts across repetitions — a mismatch
// means the engine lost determinism, which the harness treats as a hard
// error. With Workers > 1 racing probes cancel each other at
// timing-dependent points, so only the answer is checked there.
func measureCase(c benchCase, opt solver.Options, runs int) (Entry, error) {
	e := Entry{Name: c.name, Kind: c.kind, GoMaxProcs: runtime.GOMAXPROCS(0)}
	var first core.Stats
	for r := 0; r < runs; r++ {
		start := time.Now()
		status, value, stats, err := c.run(opt)
		wall := time.Since(start)
		if err != nil {
			return e, err
		}
		if r == 0 {
			first = stats
			e.Status, e.Value = status, value
			e.Nodes, e.Propagations = stats.Nodes, stats.Propagations
			e.Steals = stats.Steals
			e.WallNS = int64(wall)
			continue
		}
		if status != e.Status || value != e.Value {
			return e, fmt.Errorf("nondeterministic answer: run %d gave %s/%d, run 0 gave %s/%d",
				r, status, value, e.Status, e.Value)
		}
		if opt.Workers == 1 && (stats.Nodes != first.Nodes || stats.Propagations != first.Propagations) {
			return e, fmt.Errorf("nondeterministic: run %d did %d nodes %d props, run 0 did %d nodes %d props",
				r, stats.Nodes, stats.Propagations, first.Nodes, first.Propagations)
		}
		if int64(wall) < e.WallNS {
			e.WallNS = int64(wall)
		}
	}
	return e, nil
}

// paperInstance reports whether a case name denotes one of the paper's
// evaluation designs (the Spartan DE reconfiguration or the H.261 video
// codec) as opposed to the HLS and seeded random additions.
func paperInstance(name string) bool {
	return strings.HasPrefix(name, "de/") || strings.HasPrefix(name, "codec/")
}

// printEntry renders one human-readable result line.
func printEntry(w io.Writer, e Entry) {
	line := fmt.Sprintf("%-24s %-10s nodes %8d  props %9d  %10v",
		e.Name, statusLabel(e), e.Nodes, e.Propagations, time.Duration(e.WallNS).Round(time.Microsecond))
	if e.RefWallNS > 0 && e.WallNS > 0 {
		line += fmt.Sprintf("  ref %10v  speedup %.2fx",
			time.Duration(e.RefWallNS).Round(time.Microsecond), float64(e.RefWallNS)/float64(e.WallNS))
	}
	if e.PortfolioNodes != nil {
		line += fmt.Sprintf("  portfolio %8d", *e.PortfolioNodes)
	}
	if e.ParallelWorkers > 0 {
		line += fmt.Sprintf("  par(%d) %10v  steals %4d  speedup %.2fx",
			e.ParallelWorkers, time.Duration(e.ParallelWallNS).Round(time.Microsecond), e.ParallelSteals, e.ParallelSpeedup)
	}
	if e.WorkersWallNS > 0 {
		line += fmt.Sprintf("  workers %10v", time.Duration(e.WorkersWallNS).Round(time.Microsecond))
	}
	fmt.Fprintln(w, line)
}

// statusLabel folds the optimum into the status column for
// optimization cases.
func statusLabel(e Entry) string {
	if e.Kind == "opp" {
		return e.Status
	}
	return fmt.Sprintf("%s=%d", e.Kind, e.Value)
}
