package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fpga3d/internal/online"
)

// OnlineReportSchema identifies the online replay report format; bump
// it on incompatible changes so a stale committed baseline fails loudly.
const OnlineReportSchema = "fpgabench/online/v1"

// onlineCase is one seeded event script replayed against a fresh
// session. Everything the generator samples is pinned here, so the
// workload — and therefore every admission decision the deterministic
// engine takes — is identical on every machine.
type onlineCase struct {
	name   string
	params online.GenParams
	quick  bool
}

// onlineSuite returns the online replay cases. Counts (admissions,
// rejections, defrag moves, probe nodes) are deterministic and diffed
// exactly against the baseline; latencies are tolerance-gated.
func onlineSuite() []onlineCase {
	return []onlineCase{
		{name: "online/steady/8x8", quick: true, params: online.GenParams{
			Seed: 1, W: 8, H: 8, Events: 48, MaxSize: 3, MaxDur: 8, DepartFrac: 0.3}},
		{name: "online/churn/10x10", quick: true, params: online.GenParams{
			Seed: 11, W: 10, H: 10, Events: 80, MaxSize: 4, MaxDur: 16, DepartFrac: 0.5, DefragEvery: 6}},
		{name: "online/defrag/12x12", params: online.GenParams{
			Seed: 7, W: 12, H: 12, Events: 64, MaxSize: 4, MaxDur: 12, DepartFrac: 0.4, DefragEvery: 8}},
		{name: "online/deadline/10x10", params: online.GenParams{
			Seed: 3, W: 10, H: 10, Events: 64, MaxSize: 4, MaxDur: 10, DepartFrac: 0.3, DeadlineSlack: 6}},
		{name: "online/tight/6x6", params: online.GenParams{
			Seed: 5, W: 6, H: 6, Events: 56, MaxSize: 4, MaxDur: 20, DepartFrac: 0.2, DefragEvery: 10}},
	}
}

// OnlineEntry is the measured outcome of one script replay.
type OnlineEntry struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Events through DefragMoves are workload counts: deterministic per
	// case (the engine is deterministic and the script is seeded), so
	// the baseline diff matches them exactly.
	Events      int   `json:"events"`
	Admitted    int   `json:"admitted"`
	Rejected    int   `json:"rejected"`
	Unknown     int   `json:"unknown,omitempty"`
	Departed    int   `json:"departed"`
	Defrags     int   `json:"defrags"`
	DefragMoves int   `json:"defrag_moves"`
	ProbeNodes  int64 `json:"probe_nodes"`
	// WallNS is the best (minimum) whole-replay wall time over -runs
	// repetitions; AdmitP50NS/AdmitP99NS the matching admission latency
	// percentiles of that best run. AdmissionsPerSec is arrivals decided
	// per second of replay wall time. All timing fields are
	// tolerance-gated, never diffed exactly.
	WallNS           int64   `json:"wall_ns"`
	AdmitP50NS       int64   `json:"admit_p50_ns"`
	AdmitP99NS       int64   `json:"admit_p99_ns"`
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
}

// OnlineReport is the machine-readable output of fpgabench -online.
type OnlineReport struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated"`
	Env       Env           `json:"env"`
	Runs      int           `json:"runs"`
	Quick     bool          `json:"quick,omitempty"`
	Entries   []OnlineEntry `json:"entries"`
}

// runOnline is the -online entry point: replay every suite script
// against a fresh session per repetition, gate determinism across
// repetitions, and optionally diff against a committed baseline.
func runOnline(stdout, stderr io.Writer, quick, list bool, runs int, out, baseline string, tol float64, floor time.Duration) int {
	cases := onlineSuite()
	if list {
		for _, c := range cases {
			tag := ""
			if c.quick {
				tag = " [quick]"
			}
			fmt.Fprintf(stdout, "%-24s online%s\n", c.name, tag)
		}
		return 0
	}
	rep := &OnlineReport{
		Schema:    OnlineReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env:       envStamp(),
		Runs:      runs,
		Quick:     quick,
	}
	for _, c := range cases {
		if quick && !c.quick {
			continue
		}
		e, err := measureOnlineCase(c, runs)
		if err != nil {
			fmt.Fprintf(stderr, "fpgabench: %s: %v\n", c.name, err)
			return 1
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(stdout, "%-24s admitted %3d  rejected %3d  moves %3d  nodes %8d  %10v  p99 %10v  %8.0f adm/s\n",
			e.Name, e.Admitted, e.Rejected, e.DefragMoves, e.ProbeNodes,
			time.Duration(e.WallNS).Round(time.Microsecond),
			time.Duration(e.AdmitP99NS).Round(time.Microsecond), e.AdmissionsPerSec)
	}

	if out != "" {
		if err := writeOnlineReport(rep, out); err != nil {
			fmt.Fprintf(stderr, "fpgabench: write report: %v\n", err)
			return 1
		}
	}
	if baseline != "" {
		base, err := readOnlineReport(baseline)
		if err != nil {
			fmt.Fprintf(stderr, "fpgabench: baseline: %v\n", err)
			return 1
		}
		msgs := diffOnlineReports(base, rep, tol, floor)
		for _, m := range msgs {
			fmt.Fprintf(stderr, "fpgabench: REGRESSION: %s\n", m)
		}
		if len(msgs) > 0 {
			return 2
		}
		fmt.Fprintf(stdout, "baseline %s: %d online cases compared, no regressions\n", baseline, len(rep.Entries))
	}
	return 0
}

// measureOnlineCase replays one script `runs` times, each against a
// fresh session, and returns the entry with the minimum wall time. The
// decision counts must agree across repetitions — the engine is
// deterministic, so any drift is a hard error.
func measureOnlineCase(c onlineCase, runs int) (OnlineEntry, error) {
	e := OnlineEntry{Name: c.name, Seed: c.params.Seed}
	sc := online.Generate(c.params)
	for r := 0; r < runs; r++ {
		sess, err := online.NewSession(online.Config{W: sc.Device.W, H: sc.Device.H})
		if err != nil {
			return e, err
		}
		start := time.Now()
		stats, err := online.Replay(context.Background(), sess, sc, nil)
		wall := time.Since(start)
		if err != nil {
			return e, err
		}
		nodes := sess.Counters().ProbeNodes
		if r == 0 {
			e.Events = stats.Events
			e.Admitted, e.Rejected, e.Unknown = stats.Admitted, stats.Rejected, stats.Unknown
			e.Departed, e.Defrags, e.DefragMoves = stats.Departed, stats.Defrags, stats.DefragMoves
			e.ProbeNodes = nodes
			e.WallNS = int64(wall)
			e.AdmitP50NS, e.AdmitP99NS = latencyPercentiles(stats.AdmitLatency)
			e.AdmissionsPerSec = admissionsPerSec(stats, wall)
			continue
		}
		if stats.Admitted != e.Admitted || stats.Rejected != e.Rejected || stats.Unknown != e.Unknown ||
			stats.DefragMoves != e.DefragMoves || nodes != e.ProbeNodes {
			return e, fmt.Errorf("nondeterministic replay: run %d admitted %d/rejected %d/unknown %d/moves %d/nodes %d, run 0 %d/%d/%d/%d/%d",
				r, stats.Admitted, stats.Rejected, stats.Unknown, stats.DefragMoves, nodes,
				e.Admitted, e.Rejected, e.Unknown, e.DefragMoves, e.ProbeNodes)
		}
		if int64(wall) < e.WallNS {
			e.WallNS = int64(wall)
			e.AdmitP50NS, e.AdmitP99NS = latencyPercentiles(stats.AdmitLatency)
			e.AdmissionsPerSec = admissionsPerSec(stats, wall)
		}
	}
	return e, nil
}

// latencyPercentiles returns the p50 and p99 of the sample set (zeros
// when empty). Percentiles use the nearest-rank method.
func latencyPercentiles(samples []time.Duration) (p50, p99 int64) {
	if len(samples) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return int64(rank(0.50)), int64(rank(0.99))
}

// admissionsPerSec is decided arrivals per second of replay wall time.
func admissionsPerSec(stats *online.ReplayStats, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(len(stats.AdmitLatency)) / wall.Seconds()
}

// writeOnlineReport marshals the report to path (or stdout for "-").
func writeOnlineReport(r *OnlineReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// readOnlineReport loads a committed online report, checking its schema.
func readOnlineReport(path string) (*OnlineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r OnlineReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != OnlineReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, OnlineReportSchema)
	}
	return &r, nil
}

// diffOnlineReports compares a run against the committed baseline.
// Decision counts and probe nodes match exactly (determinism gate);
// replay wall time and p99 admission latency regress only past the
// relative tolerance and the absolute floor, like the core suite.
func diffOnlineReports(base, cur *OnlineReport, tol float64, floor time.Duration) []string {
	baseByName := make(map[string]OnlineEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	var msgs []string
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		b, ok := baseByName[e.Name]
		if !ok {
			continue // new case, nothing to compare yet
		}
		seen[e.Name] = true
		if e.Admitted != b.Admitted || e.Rejected != b.Rejected || e.Unknown != b.Unknown ||
			e.Departed != b.Departed || e.Defrags != b.Defrags || e.DefragMoves != b.DefragMoves {
			msgs = append(msgs, fmt.Sprintf("%s: decisions changed: admitted %d rejected %d unknown %d departed %d defrags %d moves %d, baseline %d/%d/%d/%d/%d/%d",
				e.Name, e.Admitted, e.Rejected, e.Unknown, e.Departed, e.Defrags, e.DefragMoves,
				b.Admitted, b.Rejected, b.Unknown, b.Departed, b.Defrags, b.DefragMoves))
			continue
		}
		if e.ProbeNodes != b.ProbeNodes {
			msgs = append(msgs, fmt.Sprintf("%s: probe node count changed: %d, baseline %d (determinism gate)",
				e.Name, e.ProbeNodes, b.ProbeNodes))
		}
		for _, tc := range []struct {
			what      string
			cur, base int64
		}{
			{"replay wall time", e.WallNS, b.WallNS},
			{"p99 admit latency", e.AdmitP99NS, b.AdmitP99NS},
		} {
			slack := int64(float64(tc.base) * tol)
			if d := tc.cur - tc.base; d > slack && d > int64(floor) {
				msgs = append(msgs, fmt.Sprintf("%s: %s regressed: %v, baseline %v (tolerance %.0f%% + %v floor)",
					e.Name, tc.what, time.Duration(tc.cur), time.Duration(tc.base), tol*100, floor))
			}
		}
	}
	if !cur.Quick {
		for _, b := range base.Entries {
			if !seen[b.Name] {
				msgs = append(msgs, fmt.Sprintf("%s: case present in baseline but not in this run", b.Name))
			}
		}
	}
	return msgs
}
