package main

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleOnlineReport() *OnlineReport {
	return &OnlineReport{
		Schema:    OnlineReportSchema,
		Generated: "2026-08-06T00:00:00Z",
		Env:       envStamp(),
		Runs:      3,
		Entries: []OnlineEntry{
			{Name: "online/steady/8x8", Seed: 1, Events: 62, Admitted: 48, Departed: 14,
				WallNS: 1_000_000, AdmitP50NS: 10_000, AdmitP99NS: 40_000, AdmissionsPerSec: 48000},
			{Name: "online/tight/6x6", Seed: 5, Events: 70, Admitted: 48, Rejected: 8, Departed: 9,
				Defrags: 4, DefragMoves: 21, ProbeNodes: 6,
				WallNS: 60_000_000, AdmitP50NS: 20_000, AdmitP99NS: 90_000, AdmissionsPerSec: 900},
		},
	}
}

func TestOnlineReportRoundTrip(t *testing.T) {
	r := sampleOnlineReport()
	path := filepath.Join(t.TempDir(), "online.json")
	if err := writeOnlineReport(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := readOnlineReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", r, got)
	}
	if msgs := diffOnlineReports(r, got, 0, 0); len(msgs) != 0 {
		t.Fatalf("self-diff not clean: %v", msgs)
	}

	r.Schema = "fpgabench/online/v0"
	if err := writeOnlineReport(r, path); err != nil {
		t.Fatal(err)
	}
	if _, err := readOnlineReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestDiffOnlineRegressions exercises each class the online gate can
// raise: decision drift, probe-node drift, latency regressions past the
// floor, and vanished cases.
func TestDiffOnlineRegressions(t *testing.T) {
	base := sampleOnlineReport()

	t.Run("decision drift", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries[0].Admitted--
		cur.Entries[0].Rejected++
		msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "decisions changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("defrag move drift", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries[1].DefragMoves++
		msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "decisions changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("probe node drift", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries[1].ProbeNodes++
		msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "probe node count changed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("wall regression past floor", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries[1].WallNS *= 3
		msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "replay wall time regressed") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("micro latency noise under floor ignored", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries[0].WallNS *= 3
		cur.Entries[0].AdmitP99NS *= 5
		if msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("micro-case noise flagged: %v", msgs)
		}
	})
	t.Run("missing case in full run", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries = cur.Entries[:1]
		msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "not in this run") {
			t.Fatalf("msgs = %v", msgs)
		}
	})
	t.Run("missing case tolerated in quick run", func(t *testing.T) {
		cur := sampleOnlineReport()
		cur.Entries = cur.Entries[:1]
		cur.Quick = true
		if msgs := diffOnlineReports(base, cur, 0.5, 25*time.Millisecond); len(msgs) != 0 {
			t.Fatalf("quick run flagged for subsetting: %v", msgs)
		}
	})
}

func TestLatencyPercentiles(t *testing.T) {
	if p50, p99 := latencyPercentiles(nil); p50 != 0 || p99 != 0 {
		t.Fatalf("empty samples: p50=%d p99=%d", p50, p99)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	p50, p99 := latencyPercentiles(samples)
	if p50 != int64(50*time.Microsecond) || p99 != int64(99*time.Microsecond) {
		t.Fatalf("p50=%v p99=%v, want 50µs/99µs", time.Duration(p50), time.Duration(p99))
	}
}

// TestRunOnlineEndToEnd drives fpgabench -online over the quick subset:
// report written and well-formed, self-baseline clean, tampered
// baseline trips exit 2.
func TestRunOnlineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "online.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-online", "-quick", "-runs", "2", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	rep, err := readOnlineReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 || !rep.Quick {
		t.Fatalf("bad report: %+v", rep)
	}
	for _, e := range rep.Entries {
		if e.WallNS <= 0 || e.AdmitP99NS <= 0 || e.AdmissionsPerSec <= 0 {
			t.Fatalf("%s: missing timing fields: %+v", e.Name, e)
		}
		if e.Admitted == 0 {
			t.Fatalf("%s: script admitted nothing", e.Name)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-online", "-quick", "-runs", "1", "-baseline", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("self baseline: exit %d, stderr: %s", code, stderr.String())
	}

	tampered := filepath.Join(dir, "tampered.json")
	bad := *rep
	bad.Entries = append([]OnlineEntry(nil), rep.Entries...)
	for i := range bad.Entries {
		bad.Entries[i].Admitted++
	}
	if err := writeOnlineReport(&bad, tampered); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-online", "-quick", "-runs", "1", "-baseline", tampered}, &stdout, &stderr); code != 2 {
		t.Fatalf("tampered baseline: exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "decisions changed") {
		t.Fatalf("stderr missing regression message: %s", stderr.String())
	}
}

// TestCommittedOnlineBaselineMatches replays every suite script and
// checks the deterministic fields against the committed
// BENCH_online.json — the replay analogue of TestCommittedBaselineParses,
// but strong enough to re-derive the counts because each script runs in
// well under a second.
func TestCommittedOnlineBaselineMatches(t *testing.T) {
	rep, err := readOnlineReport("../../BENCH_online.json")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OnlineEntry{}
	for _, e := range rep.Entries {
		byName[e.Name] = e
	}
	for _, c := range onlineSuite() {
		b, ok := byName[c.name]
		if !ok {
			t.Errorf("baseline missing case %q — refresh BENCH_online.json (fpgabench -online -out BENCH_online.json)", c.name)
			continue
		}
		e, err := measureOnlineCase(c, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if e.Admitted != b.Admitted || e.Rejected != b.Rejected || e.Unknown != b.Unknown ||
			e.Departed != b.Departed || e.Defrags != b.Defrags || e.DefragMoves != b.DefragMoves ||
			e.ProbeNodes != b.ProbeNodes {
			t.Errorf("%s: replay disagrees with committed baseline:\nnow      %+v\nbaseline %+v", c.name, e, b)
		}
	}
}
