package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// ReportSchema identifies the on-disk report format; bump it on
// incompatible changes so a stale committed baseline fails loudly
// instead of diffing garbage.
const ReportSchema = "fpgabench/v1"

// Env stamps the machine a report was recorded on. Wall times are only
// comparable within the same environment; node counts are comparable
// everywhere.
type Env struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	CPU        string `json:"cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// Entry is the measured outcome of one benchmark case.
type Entry struct {
	// Name identifies the case ("de/opp/32x32x6", "rand/layered/42", …).
	Name string `json:"name"`
	// Kind is the decision flavour: "opp", "mintime" or "minbase".
	Kind string `json:"kind"`
	// Status is the solver outcome ("feasible", "infeasible", or the
	// optimum's decision for optimization cases).
	Status string `json:"status"`
	// Value is the optimum (minimal T or h) for optimization cases.
	Value int `json:"value,omitempty"`
	// Nodes is the branch-and-bound node count — deterministic per
	// case, diffed exactly against the baseline.
	Nodes int64 `json:"nodes"`
	// Propagations counts constraint-propagation events — also
	// deterministic.
	Propagations int64 `json:"propagations"`
	// WallNS is the best (minimum) wall time over -runs repetitions of
	// the optimized engine, in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// RefWallNS is the best wall time of the reference rule paths
	// (present only in -compare-ref reports).
	RefWallNS int64 `json:"ref_wall_ns,omitempty"`
	// WorkersWallNS is the best wall time of the optimization sweep
	// with a -workers pool (present only for optimization cases when
	// -workers > 1 was given).
	WorkersWallNS int64 `json:"workers_wall_ns,omitempty"`
	// PortfolioNodes is the node count of the same case under the
	// portfolio strategy (present only in -compare-strategy reports; a
	// pointer so a pruned-to-zero count still serializes). The harness
	// enforces PortfolioNodes ≤ Nodes: incumbent sharing may only prune.
	PortfolioNodes *int64 `json:"portfolio_nodes,omitempty"`
	// PortfolioWallNS is the best wall time under the portfolio
	// strategy (present only in -compare-strategy reports).
	PortfolioWallNS int64 `json:"portfolio_wall_ns,omitempty"`
	// GoMaxProcs is the scheduler width actually in effect while this
	// case was measured. The env block records the global value, but a
	// per-case stamp keeps single-core-container runs honest: a
	// parallel column measured at gomaxprocs 1 is time-slicing, not
	// speedup.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Steals counts work-stealing subtree hand-offs during the measured
	// run (run 0 of the repetitions; scheduling-dependent). Zero — and
	// omitted — for sequential measurements.
	Steals int64 `json:"steals,omitempty"`
	// ParallelWorkers, ParallelNodes, ParallelSteals, ParallelWallNS
	// and ParallelSpeedup describe the same decision re-run with an
	// intra-probe work-stealing pool (-compare-parallel N; opp cases
	// only). The answer is gated equal to the sequential run; nodes and
	// steals are sum-of-shards and scheduling-dependent, recorded for
	// inspection, never diffed. ParallelSpeedup is sequential wall over
	// parallel wall.
	ParallelWorkers int     `json:"parallel_workers,omitempty"`
	ParallelNodes   int64   `json:"parallel_nodes,omitempty"`
	ParallelSteals  int64   `json:"parallel_steals,omitempty"`
	ParallelWallNS  int64   `json:"parallel_wall_ns,omitempty"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
}

// Report is the machine-readable output of a fpgabench run.
type Report struct {
	Schema    string  `json:"schema"`
	Generated string  `json:"generated"`
	Env       Env     `json:"env"`
	Runs      int     `json:"runs"`
	Quick     bool    `json:"quick,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Entries   []Entry `json:"entries"`
}

// envStamp collects the environment fingerprint for a report.
func envStamp() Env {
	return Env{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		CPU:        cpuModel(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// cpuModel extracts the CPU model name from /proc/cpuinfo, falling back
// to the architecture string on other platforms.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, after, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(after)
				}
			}
		}
	}
	return runtime.GOARCH
}

// writeReport marshals the report to path (or stdout for "-").
func writeReport(r *Report, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// readReport loads a previously written report and checks its schema.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// diffReports compares the current run against a baseline and returns
// one message per regression. Node and propagation counts must match
// exactly — they are deterministic, so any drift means the engine's
// search behaviour changed. Wall times regress only when slower than
// baseline by more than tol (relative) and by more than floor
// (absolute), so micro-cases under scheduler noise cannot flap the
// gate. Cases present only on one side are compared over the
// intersection; in full (non-quick) runs a baseline case missing from
// the current run is itself a regression.
func diffReports(base, cur *Report, tol float64, floor time.Duration) []string {
	baseByName := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	var msgs []string
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		b, ok := baseByName[e.Name]
		if !ok {
			continue // new case, nothing to compare yet
		}
		seen[e.Name] = true
		if e.Status != b.Status || e.Value != b.Value {
			msgs = append(msgs, fmt.Sprintf("%s: answer changed: %s/%d, baseline %s/%d",
				e.Name, e.Status, e.Value, b.Status, b.Value))
			continue
		}
		if e.Nodes != b.Nodes {
			msgs = append(msgs, fmt.Sprintf("%s: node count changed: %d, baseline %d (determinism gate)",
				e.Name, e.Nodes, b.Nodes))
		}
		if e.Propagations != b.Propagations {
			msgs = append(msgs, fmt.Sprintf("%s: propagation count changed: %d, baseline %d (determinism gate)",
				e.Name, e.Propagations, b.Propagations))
		}
		slack := int64(float64(b.WallNS) * tol)
		if d := e.WallNS - b.WallNS; d > slack && d > int64(floor) {
			msgs = append(msgs, fmt.Sprintf("%s: wall time regressed: %v, baseline %v (tolerance %.0f%% + %v floor)",
				e.Name, time.Duration(e.WallNS), time.Duration(b.WallNS), tol*100, floor))
		}
	}
	if !cur.Quick {
		for _, b := range base.Entries {
			if !seen[b.Name] {
				msgs = append(msgs, fmt.Sprintf("%s: case present in baseline but not in this run", b.Name))
			}
		}
	}
	return msgs
}
