package main

import (
	"math/rand"

	"fpga3d/internal/bench"
	"fpga3d/internal/core"
	"fpga3d/internal/model"
	"fpga3d/internal/solver"
)

// benchCase is one suite member: a closure over an instance and a
// decision (or optimization) question. Instances are rebuilt per run so
// no state leaks between repetitions.
type benchCase struct {
	name  string
	kind  string // "opp", "mintime" or "minbase"
	quick bool   // member of the -quick subset
	// nodeLimit caps the per-decision node budget: throughput cases
	// measure engine speed over a fixed amount of search work on
	// instances whose full decision would be intractable.
	nodeLimit int64
	// full runs all three framework stages instead of search-only;
	// bounds and heuristic are deterministic too, so such cases gate
	// the whole pipeline.
	full bool
	run  func(opt solver.Options) (status string, value int, stats core.Stats, err error)
}

// capped returns the case with a per-decision node budget.
func capped(c benchCase, n int64) benchCase { c.nodeLimit = n; return c }

// fullStages returns the case with bounds and heuristic enabled.
func fullStages(c benchCase) benchCase { c.full = true; return c }

// oppCase wraps a single orthogonal packing decision.
func oppCase(name string, quick bool, mk func() *model.Instance, c model.Container) benchCase {
	return benchCase{name: name, kind: "opp", quick: quick,
		run: func(opt solver.Options) (string, int, core.Stats, error) {
			r, err := solver.SolveOPP(mk(), c, opt)
			if err != nil {
				return "", 0, core.Stats{}, err
			}
			return r.Decision.String(), 0, r.Stats, nil
		}}
}

// minTimeCase wraps a MinT&FindS sweep on a fixed chip.
func minTimeCase(name string, quick bool, mk func() *model.Instance, w, h int) benchCase {
	return benchCase{name: name, kind: "mintime", quick: quick,
		run: func(opt solver.Options) (string, int, core.Stats, error) {
			r, err := solver.MinTime(mk(), w, h, opt)
			if err != nil {
				return "", 0, core.Stats{}, err
			}
			return r.Decision.String(), r.Value, r.Stats, nil
		}}
}

// minBaseCase wraps a MinA&FindS sweep (minimal square chip) at a fixed
// latency bound.
func minBaseCase(name string, quick bool, mk func() *model.Instance, t int) benchCase {
	return benchCase{name: name, kind: "minbase", quick: quick,
		run: func(opt solver.Options) (string, int, core.Stats, error) {
			r, err := solver.MinBase(mk(), t, opt)
			if err != nil {
				return "", 0, core.Stats{}, err
			}
			return r.Decision.String(), r.Value, r.Stats, nil
		}}
}

// criticalPath returns the longest chain of task durations through the
// precedence DAG — the smallest horizon any schedule can meet.
func criticalPath(in *model.Instance) int {
	n := in.N()
	finish := make([]int, n)
	// Arcs are generated with From < To, so one index-order pass is a
	// topological relaxation.
	for v := 0; v < n; v++ {
		start := 0
		for _, a := range in.Prec {
			if a.To == v && finish[a.From] > start {
				start = finish[a.From]
			}
		}
		finish[v] = start + in.Tasks[v].Dur
	}
	best := 0
	for _, f := range finish {
		if f > best {
			best = f
		}
	}
	return best
}

// randomCase builds a seeded random instance and decides it in a
// container scaled so the search does real work: the chip holds a few
// of the largest modules side by side and the horizon sits between the
// critical path (num/den = 0/1) and the fully serialized schedule
// (num/den = 1/1).
func randomCase(name string, quick bool, mk func(rng *rand.Rand) *model.Instance, seed int64, wScale, tNum, tDen int) benchCase {
	build := func() (*model.Instance, model.Container) {
		in := mk(rand.New(rand.NewSource(seed)))
		side := in.MaxW()
		if h := in.MaxH(); h > side {
			side = h
		}
		cp := criticalPath(in)
		c := model.Container{
			W: side * wScale / 2,
			H: side * wScale / 2,
			T: cp + (in.TotalDuration()-cp)*tNum/tDen,
		}
		return in, c
	}
	return benchCase{name: name, kind: "opp", quick: quick,
		run: func(opt solver.Options) (string, int, core.Stats, error) {
			in, c := build()
			r, err := solver.SolveOPP(in, c, opt)
			if err != nil {
				return "", 0, core.Stats{}, err
			}
			return r.Decision.String(), 0, r.Stats, nil
		}}
}

// suite returns the full benchmark suite: the paper's evaluation
// instances (Section 5) pinned at their decisive containers, the HLS
// Biquad sweep, and seeded random instances that exercise the engine
// well past the paper's scale. Every case is deterministic: node and
// propagation counts depend only on the instance and the engine, never
// on timing.
func suite() []benchCase {
	cnt := func(w, h, t int) model.Container { return model.Container{W: w, H: h, T: t} }
	return []benchCase{
		// DE benchmark, Table 1 rows: the decisions that carry the
		// BMP sweeps, feasible and infeasible sides.
		oppCase("de/opp/16x16x14", true, bench.DE, cnt(16, 16, 14)),
		oppCase("de/opp/16x16x13", true, bench.DE, cnt(16, 16, 13)),
		oppCase("de/opp/17x17x13", true, bench.DE, cnt(17, 17, 13)),
		oppCase("de/opp/17x17x12", true, bench.DE, cnt(17, 17, 12)),
		oppCase("de/opp/31x31x12", false, bench.DE, cnt(31, 31, 12)),
		oppCase("de/opp/32x32x6", true, bench.DE, cnt(32, 32, 6)),

		// DE optimization sweeps (Table 1 / Figure 7 anchors).
		minBaseCase("de/minbase/t6", false, bench.DE, 6),
		minBaseCase("de/minbase/t13", false, bench.DE, 13),

		// H.261 video codec, Table 2. The full feasible-side decision
		// is intractable search-only, so the engine's throughput on it
		// is measured over a fixed node budget; the paper's Table 2
		// optimum itself is gated through the full framework.
		capped(oppCase("codec/opp/64x64x59", true, bench.VideoCodec, cnt(64, 64, 59)), 50_000),
		capped(oppCase("codec/opp/64x64x58", false, bench.VideoCodec, cnt(64, 64, 58)), 50_000),
		fullStages(minTimeCase("codec/mintime/64x64", false, bench.VideoCodec, 64, 64)),

		// HLS benchmark: three cascaded biquad sections on the minimal
		// DE chip.
		minTimeCase("hls/biquad3/17x17", false, func() *model.Instance { return bench.Biquad(3) }, 17, 17),

		// Seeded random instances, three generator families. These are
		// the search-heavy cases: more tasks than the paper's designs,
		// containers tight enough that the engine branches in anger.
		randomCase("rand/flat/n12", false, func(rng *rand.Rand) *model.Instance {
			return bench.Random(rng, 12, 10, 4, 0.25)
		}, 1001, 3, 1, 6),
		randomCase("rand/flat/n14", false, func(rng *rand.Rand) *model.Instance {
			return bench.Random(rng, 14, 10, 4, 0.2)
		}, 1002, 3, 1, 6),
		randomCase("rand/layered/l4", true, func(rng *rand.Rand) *model.Instance {
			return bench.RandomLayered(rng, 4, 3, 10, 4, 0.4)
		}, 2001, 3, 1, 6),
		randomCase("rand/layered/l5", false, func(rng *rand.Rand) *model.Instance {
			return bench.RandomLayered(rng, 5, 3, 10, 4, 0.35)
		}, 2002, 3, 1, 6),
		randomCase("rand/sp/n12", false, func(rng *rand.Rand) *model.Instance {
			return bench.RandomSeriesParallel(rng, 12, 10, 4)
		}, 3001, 3, 1, 6),
		randomCase("rand/sp/n14", false, func(rng *rand.Rand) *model.Instance {
			return bench.RandomSeriesParallel(rng, 14, 10, 4)
		}, 3002, 3, 1, 6),

		// Throughput cases: instances past the tractable frontier,
		// measured over a fixed node budget.
		capped(randomCase("rand/flat/n18/cap25k", false, func(rng *rand.Rand) *model.Instance {
			return bench.Random(rng, 18, 10, 4, 0.2)
		}, 1003, 3, 1, 6), 25_000),
		capped(randomCase("rand/flat/n16/cap25k", false, func(rng *rand.Rand) *model.Instance {
			return bench.Random(rng, 16, 10, 4, 0.3)
		}, 1004, 2, 1, 4), 25_000),
	}
}
