// Command fpgad is the FPGA placement daemon: a long-lived HTTP
// service answering placement questions with the exact packing-class
// solver, built for online reconfigurable-device management where
// placement requests arrive continuously and must be answered under
// deadlines.
//
// Usage:
//
//	fpgad -addr :8080 -max-concurrent 4 -queue-depth 64 \
//	      -default-timeout 30s -cache-size 256
//
// API (JSON over HTTP; see README.md for a curl quickstart):
//
//	POST /v1/solve          {"instance": …, "chip": {"w":64,"h":64,"t":80}}
//	POST /v1/minimize-time  {"instance": …, "w": 64, "h": 64}
//	POST /v1/minimize-chip  {"instance": …, "t": 59}
//	GET  /healthz           liveness + occupancy (503 while draining)
//	GET  /metrics           serving + solver counters as JSON
//
// Every solve endpoint accepts "timeout_ms" (overriding
// -default-timeout; expiry answers 504 with the partial result) and
// "no_cache". At most -max-concurrent solves run at once; up to
// -queue-depth more wait in line, and anything beyond that is
// rejected with 429 and a Retry-After header. Identical questions
// about canonically identical instances are answered from an LRU
// result cache (flagged "cached": true in the response).
//
// On SIGTERM or SIGINT the daemon stops accepting connections, lets
// in-flight solves finish (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fpga3d/internal/server"
	"fpga3d/internal/strategy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgad: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until a fatal serve error or until
// ctx is done (main wires ctx to SIGTERM/SIGINT), at which point it
// drains in-flight solves and returns. ready, when non-nil, receives
// the bound address once the listener is up (tests use -addr :0).
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("fpgad", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":8080", "listen address")
		maxConcurrent  = fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "solves running at once")
		queueDepth     = fs.Int("queue-depth", 64, "admitted requests waiting for a slot; beyond this requests get 429")
		defaultTimeout = fs.Duration("default-timeout", 30*time.Second, "per-request solve deadline unless the request sets timeout_ms")
		cacheSize      = fs.Int("cache-size", 256, "canonical-instance result cache entries (negative disables)")
		workers        = fs.Int("workers", 1, "solver probe goroutines per solve (0 = GOMAXPROCS); keep 1 when -max-concurrent already saturates the cores")
		strategyName   = fs.String("strategy", "", "default solve strategy: staged | portfolio (requests may override per call)")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight solves")
		enablePprof    = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (exposes internals; keep off untrusted networks)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if !strategy.Valid(*strategyName) {
		return fmt.Errorf("unknown -strategy %q (valid: %s)", *strategyName, strings.Join(strategy.Names(), ", "))
	}

	s := server.New(server.Config{
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *defaultTimeout,
		CacheSize:      *cacheSize,
		Workers:        *workers,
		Strategy:       *strategyName,
		Logf:           log.Printf,
		EnablePprof:    *enablePprof,
	})

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.ListenAndServe(*addr, func(bound string) {
			log.Printf("listening on %s (max-concurrent %d, queue-depth %d, default-timeout %s, cache %d)",
				bound, *maxConcurrent, *queueDepth, *defaultTimeout, *cacheSize)
			if ready != nil {
				ready(bound)
			}
		})
	}()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		log.Printf("shutdown requested; draining (timeout %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(dctx); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		log.Printf("drained; bye")
		return nil
	}
}
