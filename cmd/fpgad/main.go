// Command fpgad is the FPGA placement daemon: a long-lived HTTP
// service answering placement questions with the exact packing-class
// solver, built for online reconfigurable-device management where
// placement requests arrive continuously and must be answered under
// deadlines.
//
// Usage:
//
//	fpgad -addr :8080 -max-concurrent 4 -queue-depth 64 \
//	      -default-timeout 30s -cache-size 256 -log-format json
//
// API (JSON over HTTP; full reference in API.md, operator runbook in
// OPERATIONS.md):
//
//	POST /v1/solve          {"instance": …, "chip": {"w":64,"h":64,"t":80}}
//	POST /v1/minimize-time  {"instance": …, "w": 64, "h": 64}
//	POST /v1/minimize-chip  {"instance": …, "t": 59}
//	POST /v1/solve-batch    {"requests": [{"mode":"solve", …}, …]} — up to
//	                        -max-batch instances in one round trip,
//	                        results keyed by canonical hash,
//	                        per-entry partial-failure semantics
//	POST /v1/jobs           async solve → 202 + job id; progress over
//	                        SSE at /v1/progress/{job_id}
//	GET  /v1/jobs[/{id}]    job list / snapshot (result once done)
//	DELETE /v1/jobs/{id}    cancel an active job; remove a finished one
//	GET  /v1/progress/{id}  live solve progress as Server-Sent Events
//	GET  /healthz           liveness + occupancy (503 while draining)
//	GET  /metrics           serving + solver counters as JSON, or
//	                        Prometheus exposition with ?format=prom
//	                        (or Accept: text/plain)
//
// Async jobs are bounded three ways: -max-jobs caps the job table
// (429 when full of active jobs), -jobs-per-client caps one
// submitter's active jobs (429 for that client), and -job-ttl evicts
// finished jobs that were never collected.
//
// Anytime jobs: a minimize-time request (synchronous or async) may set
// "anytime": true. The solve then keeps a best-known schedule at all
// times — greedy incumbent, randomized annealing improvements, exact
// refinement to proven optimality — and every job snapshot and SSE
// progress frame carries best_makespan, lower_bound and gap (their
// relative optimality gap, non-increasing over the run, 0 exactly when
// the incumbent is proven optimal). A deadline-expired anytime solve
// answers with the best-known schedule and its gap instead of nothing;
// the fully refined answer always equals the plain solve's. "anytime"
// on any other question is a 400.
//
// Online placement sessions (long-lived device state; see
// ARCHITECTURE.md, "Online placement"):
//
//	POST   /v1/sessions               {"w":16,"h":16} → 201 + session id
//	GET    /v1/sessions/{id}          layout snapshot + counters
//	DELETE /v1/sessions/{id}          drop the session
//	POST   /v1/sessions/{id}/admit    {"name":"m0","w":4,"h":3,"dur":20,
//	                                   "at":0,"deadline":0}
//	POST   /v1/sessions/{id}/depart   {"id":3,"at":9}
//	POST   /v1/sessions/{id}/defrag   {"at":12} → validated move plan
//	GET    /v1/sessions/{id}/events   session events as SSE
//
// Sessions idle longer than -session-ttl are evicted lazily; at most
// -max-sessions are resident at once (429 beyond).
//
// Every solve endpoint accepts "timeout_ms" (overriding
// -default-timeout; expiry answers 504 with the partial result) and
// "no_cache". At most -max-concurrent solves run at once; up to
// -queue-depth more wait in line, and anything beyond that is
// rejected with 429 and a Retry-After header. Identical questions
// about canonically identical instances are answered from an LRU
// result cache (flagged "cached": true in the response).
//
// Every response carries an X-Request-Id header (echoing the client's
// own, if it sent a well-formed one). Subscribing to
// GET /v1/progress/{id} with that ID while the solve is in flight
// streams its search progress live. One structured log line is
// emitted per request — text by default, JSON with -log-format json —
// carrying the request ID, endpoint, strategy, cache outcome, status
// and latency. -trace appends solver trace and span events as JSON
// lines to a file, connected to the log by the same request IDs.
//
// On SIGTERM or SIGINT the daemon stops accepting connections, lets
// in-flight solves finish (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fpga3d/internal/obs"
	"fpga3d/internal/server"
	"fpga3d/internal/strategy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgad: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		log.Fatal(err)
	}
}

// newLogger builds the daemon's structured logger; format is "text"
// or "json".
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}

// run starts the daemon and blocks until a fatal serve error or until
// ctx is done (main wires ctx to SIGTERM/SIGINT), at which point it
// drains in-flight solves and returns. ready, when non-nil, receives
// the bound address once the listener is up (tests use -addr :0).
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("fpgad", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", ":8080", "listen address")
		maxConcurrent   = fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "solves running at once")
		queueDepth      = fs.Int("queue-depth", 64, "admitted requests waiting for a slot; beyond this requests get 429")
		defaultTimeout  = fs.Duration("default-timeout", 30*time.Second, "per-request solve deadline unless the request sets timeout_ms")
		cacheSize       = fs.Int("cache-size", 256, "canonical-instance result cache entries (negative disables)")
		workers         = fs.Int("workers", 1, "per-solve parallelism: sweeps race probes (bit-identical), single decisions steal subtrees when >1 (answer-equal); 0 = GOMAXPROCS for sweeps only; keep 1 when -max-concurrent already saturates the cores")
		strategyName    = fs.String("strategy", "", "default solve strategy: staged | portfolio | anneal (requests may override per call)")
		drainTimeout    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight solves")
		logFormat       = fs.String("log-format", "text", "structured log output: text | json")
		traceFile       = fs.String("trace", "", "append solver trace and span events (JSON lines) to this file")
		progressStreams = fs.Int("progress-streams", 64, "live progress streams tracked for GET /v1/progress/{id} (negative disables)")
		enablePprof     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (exposes internals; keep off untrusted networks)")
		sessionTTL      = fs.Duration("session-ttl", 15*time.Minute, "evict online placement sessions idle longer than this")
		maxSessions     = fs.Int("max-sessions", 64, "online placement sessions resident at once; beyond this POST /v1/sessions gets 429")
		maxBatch        = fs.Int("max-batch", 64, "instances accepted per /v1/solve-batch request")
		maxJobs         = fs.Int("max-jobs", 256, "async jobs resident at once; a table full of active jobs answers POST /v1/jobs with 429")
		jobsPerClient   = fs.Int("jobs-per-client", 16, "active async jobs per client identity; beyond this POST /v1/jobs gets 429")
		jobTTL          = fs.Duration("job-ttl", 10*time.Minute, "retain finished async jobs this long for collection before lazy eviction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if !strategy.Valid(*strategyName) {
		return fmt.Errorf("unknown -strategy %q (valid: %s)", *strategyName, strings.Join(strategy.Names(), ", "))
	}
	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -trace file: %w", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f)
	}

	s := server.New(server.Config{
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		DefaultTimeout:  *defaultTimeout,
		CacheSize:       *cacheSize,
		Workers:         *workers,
		Strategy:        *strategyName,
		Logger:          logger,
		Tracer:          tracer,
		ProgressStreams: *progressStreams,
		EnablePprof:     *enablePprof,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		MaxBatch:        *maxBatch,
		MaxJobs:         *maxJobs,
		JobsPerClient:   *jobsPerClient,
		JobTTL:          *jobTTL,
	})

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.ListenAndServe(*addr, func(bound string) {
			// The bound address stays inside the message (not an attr):
			// operators and the CI smoke scrape it as "listening on X".
			logger.Info("listening on "+bound,
				"max_concurrent", *maxConcurrent,
				"queue_depth", *queueDepth,
				"default_timeout", defaultTimeout.String(),
				"cache_size", *cacheSize,
				"log_format", *logFormat)
			if ready != nil {
				ready(bound)
			}
		})
	}()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		logger.Info("shutdown requested; draining", "drain_timeout", drainTimeout.String())
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(dctx); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		logger.Info("drained; bye")
		return nil
	}
}
