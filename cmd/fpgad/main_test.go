package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on a kernel-assigned port and returns
// its base URL plus a stop function that triggers the drain path (the
// same code path a SIGTERM takes through main's NotifyContext).
func startDaemon(t *testing.T, extraArgs ...string) (url string, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() {
		runErr <- run(ctx, args, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		url = "http://" + addr
	case err := <-runErr:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never bound its listener")
	}
	var once bool
	return url, func() error {
		if once {
			return nil
		}
		once = true
		cancel()
		select {
		case err := <-runErr:
			return err
		case <-time.After(30 * time.Second):
			return fmt.Errorf("daemon did not exit after shutdown")
		}
	}
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestDaemonEndToEnd drives the daemon exactly like the CI smoke job:
// solve the shipped videocodec instance over HTTP, require a cache hit
// on the identical resubmission, check the metrics export, and drain.
func TestDaemonEndToEnd(t *testing.T) {
	raw, err := os.ReadFile("../../instances/videocodec.json")
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t)
	defer stop() //nolint:errcheck // asserted explicitly below

	// Liveness first.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// The paper's minimal latency on 64×64 is 59 cycles, so T=80 is
	// comfortably feasible and the heuristic answers quickly.
	body := fmt.Sprintf(`{"instance": %s, "chip": {"w":64,"h":64,"t":80}}`, raw)
	code, first := post(t, url+"/v1/solve", body)
	if code != http.StatusOK || first["decision"] != "feasible" {
		t.Fatalf("solve: code=%d resp=%v", code, first)
	}
	if first["cached"] != false {
		t.Fatalf("first response cached=%v", first["cached"])
	}
	if first["placement"] == nil {
		t.Fatal("feasible response lacks a placement")
	}

	code, second := post(t, url+"/v1/solve", body)
	if code != http.StatusOK || second["cached"] != true {
		t.Fatalf("identical resubmission not served from cache: code=%d cached=%v", code, second["cached"])
	}

	// The serving counters are visible on /metrics.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, k := range []string{"server.cache.hits", "server.cache.misses", "server.requests.solve"} {
		if metrics[k] < 1 {
			t.Errorf("metric %s = %v, want >= 1", k, metrics[k])
		}
	}
	if metrics["server.inflight"] != 0 {
		t.Errorf("inflight = %v at rest", metrics["server.inflight"])
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}

// TestDaemonDrainsInflightSolve submits a solve that outlives the
// shutdown signal and checks the daemon holds the door open until the
// response is delivered.
func TestDaemonDrainsInflightSolve(t *testing.T) {
	url, stop := startDaemon(t, "-max-concurrent", "1", "-queue-depth", "1")

	// A volume-tight 14-task instance the exact search cannot settle
	// within its 700ms deadline (same shape as the server tests).
	var b strings.Builder
	b.WriteString(`{"instance": {"tasks": [`)
	for i, d := range [][3]int{
		{2, 4, 4}, {4, 2, 3}, {2, 1, 1}, {1, 3, 4}, {3, 2, 1}, {3, 4, 2}, {2, 3, 4},
		{3, 1, 3}, {4, 4, 4}, {1, 3, 4}, {2, 1, 4}, {4, 2, 1}, {2, 4, 2}, {3, 2, 3},
	} {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"w":%d,"h":%d,"dur":%d}`, d[0], d[1], d[2])
	}
	b.WriteString(`]}, "chip": {"w":6,"h":6,"t":8}, "timeout_ms": 700, "no_cache": true}`)

	type answer struct {
		code int
		body map[string]any
	}
	got := make(chan answer, 1)
	go func() {
		code, body := post(t, url+"/v1/solve", b.String())
		got <- answer{code, body}
	}()
	// Give the request time to enter the solve, then pull the plug.
	time.Sleep(200 * time.Millisecond)
	stopped := make(chan error, 1)
	go func() { stopped <- stop() }()

	select {
	case a := <-got:
		if a.code != http.StatusGatewayTimeout || a.body["decision"] != "unknown" {
			t.Fatalf("drained solve: code=%d body=%v", a.code, a.body)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight solve never answered during drain")
	}
	if err := <-stopped; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
