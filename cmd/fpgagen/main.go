// Command fpgagen emits FPGA placement problem instances as JSON for
// the fpgaplace solver: the paper's benchmarks, the scalable HLS
// workload families, and random instance families used by the test
// suite.
//
// Usage:
//
//	fpgagen -family de                        > de.json
//	fpgagen -family fir -size 8               > fir8.json
//	fpgagen -family fft -size 16              > fft16.json
//	fpgagen -family random -n 12 -seed 7      > random.json
//	fpgagen -family layered -n 4 -seed 1      > layered.json
//	fpgagen -family dot -from de.json         # DOT graph to stdout
//
// With -online, fpgagen instead emits an event script for the online
// placement subsystem (schema fpga3d/online-script/v1; see
// internal/online.ScriptSchema for the format): a timed sequence of
// module arrivals, early departures, and defrag requests to replay
// against a session via fpgabench -online or the fpgad session API:
//
//	fpgagen -online -w 10 -h 10 -n 64 -seed 7 \
//	        -depart-frac 0.4 -defrag-every 8  > script.json
//
// In online mode -n counts arrival events and -max-size/-max-dur bound
// module shapes, mirroring their instance-family meanings.
//
// Generation is reproducible: the random families (random, layered,
// sp) and the online script generator draw every sample from a
// math/rand source seeded with -seed, so the same flags always emit
// byte-identical JSON — cite the seed and anyone can regenerate the
// exact instance. Vary -seed to sample new instances from the same
// family.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
	"fpga3d/internal/online"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgagen: ")
	var (
		family  = flag.String("family", "", "de | videocodec | fir | biquad | fft | random | layered | sp | dot")
		size    = flag.Int("size", 8, "family size parameter (FIR taps, biquad sections, FFT points)")
		n       = flag.Int("n", 8, "task count (random, sp) or layer count (layered)")
		seed    = flag.Int64("seed", 1, "random seed (random, layered, sp); the same seed reproduces the same instance")
		maxSize = flag.Int("max-size", 8, "maximum spatial extent (random families)")
		maxDur  = flag.Int("max-dur", 4, "maximum duration (random families)")
		pArc    = flag.Float64("p-arc", 0.3, "precedence arc probability (random, layered)")
		from    = flag.String("from", "", "input JSON instance (dot)")

		onlineMode    = flag.Bool("online", false, "emit an online placement event script instead of an instance")
		devW          = flag.Int("w", 10, "device width (online)")
		devH          = flag.Int("h", 10, "device height (online)")
		maxGap        = flag.Int("max-gap", 4, "max cycles between consecutive arrivals (online)")
		departFrac    = flag.Float64("depart-frac", 0.3, "fraction of arrivals that also depart early (online)")
		defragEvery   = flag.Int("defrag-every", 0, "insert a defrag event after every n-th arrival (online; 0 disables)")
		deadlineSlack = flag.Int("deadline-slack", 0, "max extra cycles granted past arrival for the admission deadline (online; 0 = admit-now)")
		name          = flag.String("name", "", "script name (online; default online-<seed>)")
	)
	flag.Parse()

	if *onlineMode {
		sc := online.Generate(online.GenParams{
			Name: *name, Seed: *seed,
			W: *devW, H: *devH,
			Events: *n, MaxSize: *maxSize, MaxDur: *maxDur, MaxGap: *maxGap,
			DepartFrac: *departFrac, DefragEvery: *defragEvery, DeadlineSlack: *deadlineSlack,
		})
		if err := sc.Validate(); err != nil {
			log.Fatalf("generated script invalid: %v", err)
		}
		if err := online.WriteScript(os.Stdout, sc); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpgagen: %s — %d events on a %dx%d device\n",
			sc.Name, len(sc.Events), sc.Device.W, sc.Device.H)
		return
	}
	if *family == "dot" {
		if *from == "" {
			log.Fatal("-family dot needs -from instance.json")
		}
		loaded, err := model.LoadInstance(*from)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.WriteDOT(os.Stdout, loaded); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *family == "" {
		flag.Usage()
		os.Exit(2)
	}
	in, err := buildInstance(*family, *size, *n, *seed, *maxSize, *maxDur, *pArc)
	if err != nil {
		log.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		log.Fatalf("generated instance invalid: %v", err)
	}
	if err := model.WriteInstance(os.Stdout, in); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fpgagen: %s — %d tasks, %d arcs\n", in.Name, in.N(), len(in.Prec))
}

// buildInstance constructs the requested family. The random families
// draw every sample from a fresh source seeded with seed, so the same
// parameters deterministically rebuild the same instance.
func buildInstance(family string, size, n int, seed int64, maxSize, maxDur int, pArc float64) (*model.Instance, error) {
	switch family {
	case "de":
		return bench.DE(), nil
	case "videocodec":
		return bench.VideoCodec(), nil
	case "fir":
		return bench.FIR(size), nil
	case "biquad":
		return bench.Biquad(size), nil
	case "fft":
		return bench.FFT(size), nil
	case "random":
		return bench.Random(rand.New(rand.NewSource(seed)), n, maxSize, maxDur, pArc), nil
	case "layered":
		return bench.RandomLayered(rand.New(rand.NewSource(seed)), n, 4, maxSize, maxDur, pArc), nil
	case "sp":
		return bench.RandomSeriesParallel(rand.New(rand.NewSource(seed)), n, maxSize, maxDur), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
