package main

import (
	"bytes"
	"testing"

	"fpga3d/internal/model"
	"fpga3d/internal/online"
)

// TestSeedReproducibility: the same -seed must regenerate the exact
// same instance (byte-identical JSON), and a different seed must not.
func TestSeedReproducibility(t *testing.T) {
	for _, family := range []string{"random", "layered", "sp"} {
		t.Run(family, func(t *testing.T) {
			a, err := buildInstance(family, 8, 10, 7, 8, 4, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			b, err := buildInstance(family, 8, 10, 7, 8, 4, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if ja, jb := asJSON(t, a), asJSON(t, b); ja != jb {
				t.Fatalf("seed 7 generated two different instances:\n%s\nvs\n%s", ja, jb)
			}
			if a.CanonicalHash() != b.CanonicalHash() {
				t.Fatal("same seed, different canonical hash")
			}

			c, err := buildInstance(family, 8, 10, 8, 8, 4, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if a.CanonicalHash() == c.CanonicalHash() {
				t.Fatalf("seeds 7 and 8 generated the same %s instance", family)
			}
		})
	}
}

// TestDeterministicFamiliesIgnoreSeed: the named benchmarks are fixed
// regardless of seed.
func TestDeterministicFamiliesIgnoreSeed(t *testing.T) {
	a, err := buildInstance("de", 8, 10, 1, 8, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildInstance("de", 8, 10, 99, 8, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, a) != asJSON(t, b) {
		t.Fatal("de family varies with seed")
	}
}

func TestUnknownFamilyErrors(t *testing.T) {
	if _, err := buildInstance("nope", 8, 10, 1, 8, 4, 0.3); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestGeneratedInstancesValidate: every generated family passes the
// model validator across a few seeds.
func TestGeneratedInstancesValidate(t *testing.T) {
	for _, family := range []string{"de", "videocodec", "fir", "biquad", "fft", "random", "layered", "sp"} {
		for seed := int64(1); seed <= 3; seed++ {
			in, err := buildInstance(family, 4, 8, seed, 6, 4, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Validate(); err != nil {
				t.Errorf("%s seed %d: %v", family, seed, err)
			}
		}
	}
}

// TestOnlineScriptRoundTrip: the -online path emits a valid script that
// ReadScript accepts byte-identically, reproducible per seed.
func TestOnlineScriptRoundTrip(t *testing.T) {
	p := online.GenParams{Seed: 7, W: 10, H: 10, Events: 16, MaxSize: 4, MaxDur: 6, DepartFrac: 0.4, DefragEvery: 5}
	a, b := online.Generate(p), online.Generate(p)
	var ja, jb bytes.Buffer
	if err := online.WriteScript(&ja, a); err != nil {
		t.Fatal(err)
	}
	if err := online.WriteScript(&jb, b); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatal("seed 7 generated two different scripts")
	}
	back, err := online.ReadScript(&ja)
	if err != nil {
		t.Fatalf("emitted script does not round-trip: %v", err)
	}
	if len(back.Events) != len(a.Events) {
		t.Fatalf("round-trip lost events: %d vs %d", len(back.Events), len(a.Events))
	}
}

func asJSON(t *testing.T, in *model.Instance) string {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
