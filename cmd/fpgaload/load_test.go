package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"fpga3d/internal/server"
)

// startDaemon brings up an in-process serving stack, so the load
// generator is tested end to end without a network or a binary.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{MaxConcurrent: 4, QueueDepth: 64, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestLoadReplayCleanAndDeterministic(t *testing.T) {
	ts := startDaemon(t)
	cfg := loadConfig{baseURL: ts.URL, seed: 7, clients: 3, requests: 12, timeout: 10 * time.Second}

	rep, opErrs, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(opErrs) > 0 {
		t.Fatalf("replay had client-visible errors: %v", opErrs)
	}
	total := 0
	counts := map[string]int{}
	for _, e := range rep.Entries {
		if e.Errors != 0 {
			t.Errorf("%s: %d errors", e.Name, e.Errors)
		}
		total += e.Count
		counts[e.Name] = e.Count
	}
	if want := cfg.clients * cfg.requests; total != want {
		t.Fatalf("op total %d, want %d", total, want)
	}
	if len(rep.Entries) != len(kinds) {
		t.Fatalf("entries: %d, want one per kind (%d)", len(rep.Entries), len(kinds))
	}
	if rep.CacheHitRate <= 0 {
		t.Errorf("duplicate-heavy mix should produce cache hits, rate %v", rep.CacheHitRate)
	}

	// Same seed → same mix, even against a fresh daemon.
	ts2 := startDaemon(t)
	cfg.baseURL = ts2.URL
	rep2, _, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep2.Entries {
		if counts[e.Name] != e.Count {
			t.Errorf("%s: count %d differs from first replay's %d (seeded mix must be deterministic)",
				e.Name, e.Count, counts[e.Name])
		}
	}

	// The gating pattern: a run diffs clean against itself, and the
	// diff refuses cross-workload comparisons.
	if msgs := diffReports(rep, rep2, 1.0, 50*time.Millisecond); len(msgs) != 0 {
		t.Errorf("self-diff reported regressions: %v", msgs)
	}
	other := *rep2
	other.Seed++
	if msgs := diffReports(rep, &other, 1.0, 50*time.Millisecond); len(msgs) != 1 {
		t.Errorf("workload mismatch must be exactly one gate message, got %v", msgs)
	}
}

func TestDiffCatchesRegressions(t *testing.T) {
	base := &ServeReport{
		Schema: ServeReportSchema, Seed: 1, Clients: 2, Requests: 10,
		Entries: []ServeEntry{
			{Name: "serve/solve", Count: 12, P99NS: int64(time.Millisecond)},
			{Name: "serve/job", Count: 8, P99NS: int64(time.Millisecond)},
		},
	}
	cur := &ServeReport{
		Schema: ServeReportSchema, Seed: 1, Clients: 2, Requests: 10,
		Entries: []ServeEntry{
			{Name: "serve/solve", Count: 11, P99NS: int64(time.Millisecond)},    // count drift
			{Name: "serve/job", Count: 8, Errors: 1, P99NS: int64(time.Second)}, // errors + latency
		},
	}
	msgs := diffReports(base, cur, 0.5, 10*time.Millisecond)
	if len(msgs) != 3 {
		t.Fatalf("want 3 regressions (count, errors, p99), got %d: %v", len(msgs), msgs)
	}
}

// TestCommittedServeBaselineParses keeps the committed baseline honest:
// it must stay schema-compatible with the reader the gate uses.
func TestCommittedServeBaselineParses(t *testing.T) {
	rep, err := readReport("../../BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 {
		t.Fatal("committed baseline has no entries")
	}
	for _, e := range rep.Entries {
		if e.Errors != 0 {
			t.Errorf("committed baseline records errors in %s — regenerate it from a clean run", e.Name)
		}
	}
}
