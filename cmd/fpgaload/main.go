// Command fpgaload is the serving-layer load generator: it replays a
// seeded mix of synchronous solves, optimizations, batches and async
// jobs against a live fpgad daemon and reports client-side latency
// percentiles, throughput, cache hit rate and queue wait as a
// schema-stamped JSON report, gated against a committed baseline in the
// same way fpgabench gates the solver (BENCHMARKS.md, "Serving load").
//
// Usage:
//
//	fpgad -addr :8080 &
//	fpgaload -addr localhost:8080 -seed 1 -clients 4 -requests 25 \
//	         -out BENCH_serve.json -baseline BENCH_serve.json
//
// The op mix is a pure function of (-seed, -clients, -requests): client
// i draws from its own rand.NewSource(seed+i), so per-kind operation
// counts are identical on every machine and diffed exactly, while
// latencies are tolerance-gated. Exit status: 0 ok, 1 usage or I/O
// error, 2 gate failure (client-visible errors or a latency
// regression).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// kinds lists the operation kinds in report order.
var kinds = []string{"serve/solve", "serve/mintime", "serve/minchip", "serve/batch", "serve/job"}

// loadConfig pins one replay: everything the generator samples derives
// from Seed, so the mix is reproducible.
type loadConfig struct {
	baseURL  string
	seed     int64
	clients  int
	requests int // per client
	timeout  time.Duration
}

// workload is the shared, pre-rendered instance pool: a handful of
// small seeded instances (JSON-encoded once) that the solver answers in
// well under a millisecond, so the replay measures the serving layer,
// not search.
type workload struct {
	instances [][]byte
}

// chip dimensions every pooled instance is asked about. Small tasks in
// a roomy 6×6×16 container keep each solve trivial.
const (
	chipW, chipH, chipT = 6, 6, 16
)

// buildWorkload renders the seeded instance pool.
func buildWorkload(seed int64) (*workload, error) {
	rng := rand.New(rand.NewSource(seed))
	w := &workload{}
	for i := 0; i < 8; i++ {
		in := bench.Random(rng, 4+rng.Intn(2), 3, 5, 0.3)
		in.Name = fmt.Sprintf("load-%d", i)
		var buf bytes.Buffer
		if err := model.WriteInstance(&buf, in); err != nil {
			return nil, err
		}
		w.instances = append(w.instances, buf.Bytes())
	}
	return w, nil
}

// tally accumulates one client's outcomes per kind.
type tally struct {
	samples map[string][]time.Duration
	errors  map[string]int
}

func newTally() *tally {
	return &tally{samples: make(map[string][]time.Duration), errors: make(map[string]int)}
}

// record stores one operation's outcome.
func (t *tally) record(kind string, d time.Duration, err error) {
	t.samples[kind] = append(t.samples[kind], d)
	if err != nil {
		t.errors[kind]++
	}
}

// runLoad executes the whole replay and assembles the report (metrics
// scrape included). It is the programmatic core behind the CLI, called
// directly by the in-process tests.
func runLoad(cfg loadConfig) (*ServeReport, []string, error) {
	w, err := buildWorkload(cfg.seed)
	if err != nil {
		return nil, nil, err
	}
	client := &http.Client{Timeout: cfg.timeout + 5*time.Second}

	tallies := make([]*tally, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tallies[c] = runClient(cfg, w, client, c)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &ServeReport{
		Schema:    ServeReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env:       envStamp(),
		Seed:      cfg.seed,
		Clients:   cfg.clients,
		Requests:  cfg.requests,
		WallNS:    int64(wall),
	}
	total := 0
	var sampleErrs []string
	for _, kind := range kinds {
		var all []time.Duration
		errs := 0
		for _, t := range tallies {
			all = append(all, t.samples[kind]...)
			errs += t.errors[kind]
		}
		p50, p99 := percentiles(all)
		rep.Entries = append(rep.Entries, ServeEntry{
			Name: kind, Count: len(all), Errors: errs, P50NS: p50, P99NS: p99,
		})
		total += len(all)
		if errs > 0 {
			sampleErrs = append(sampleErrs, fmt.Sprintf("%s: %d of %d operations failed", kind, errs, len(all)))
		}
	}
	if wall > 0 {
		rep.RequestsPerSec = float64(total) / wall.Seconds()
	}
	scrapeMetrics(client, cfg.baseURL, rep)
	return rep, sampleErrs, nil
}

// runClient replays one client's seeded op stream. Every random draw
// happens unconditionally, so the mix never depends on server
// responses and stays identical across machines and runs.
func runClient(cfg loadConfig, w *workload, client *http.Client, idx int) *tally {
	rng := rand.New(rand.NewSource(cfg.seed + int64(idx)))
	t := newTally()
	name := fmt.Sprintf("load-client-%d", idx)
	for i := 0; i < cfg.requests; i++ {
		pick := rng.Intn(100)
		inst := w.instances[rng.Intn(len(w.instances))]
		alt := w.instances[rng.Intn(len(w.instances))]
		start := time.Now()
		var kind string
		var err error
		switch {
		case pick < 40:
			kind = "serve/solve"
			err = postExpect(client, cfg.baseURL+"/v1/solve", solveBody(inst, cfg.timeout), http.StatusOK)
		case pick < 55:
			kind = "serve/mintime"
			err = postExpect(client, cfg.baseURL+"/v1/minimize-time",
				fmt.Sprintf(`{"instance": %s, "w": %d, "h": %d, "timeout_ms": %d}`, inst, chipW, chipH, cfg.timeout.Milliseconds()), http.StatusOK)
		case pick < 70:
			kind = "serve/minchip"
			err = postExpect(client, cfg.baseURL+"/v1/minimize-chip",
				fmt.Sprintf(`{"instance": %s, "t": %d, "timeout_ms": %d}`, inst, chipT, cfg.timeout.Milliseconds()), http.StatusOK)
		case pick < 85:
			kind = "serve/batch"
			err = runBatch(client, cfg, inst, alt)
		default:
			kind = "serve/job"
			err = runJob(client, cfg, inst, name)
		}
		t.record(kind, time.Since(start), err)
	}
	return t
}

// solveBody renders a /v1/solve request for one pooled instance.
func solveBody(inst []byte, timeout time.Duration) string {
	return fmt.Sprintf(`{"instance": %s, "chip": {"w":%d,"h":%d,"t":%d}, "timeout_ms": %d}`,
		inst, chipW, chipH, chipT, timeout.Milliseconds())
}

// postExpect POSTs a JSON body and fails unless the response has the
// expected status.
func postExpect(client *http.Client, url, body string, want int) error {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != want {
		return fmt.Errorf("%s: status %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}

// runBatch issues one three-entry batch with a deliberate duplicate
// (exercising canonical-hash dedup) and requires every entry to
// succeed.
func runBatch(client *http.Client, cfg loadConfig, inst, alt []byte) error {
	e := solveBody(inst, cfg.timeout)
	body := fmt.Sprintf(`{"requests": [%s, %s, %s]}`, e, e, solveBody(alt, cfg.timeout))
	resp, err := client.Post(cfg.baseURL+"/v1/solve-batch", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("batch: status %d", resp.StatusCode)
	}
	var out struct {
		Failed int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("batch: decoding: %w", err)
	}
	if out.Failed > 0 {
		return fmt.Errorf("batch: %d entries failed", out.Failed)
	}
	return nil
}

// runJob drives one async job end to end: submit (202), poll until
// terminal, require "done", and collect it with DELETE.
func runJob(client *http.Client, cfg loadConfig, inst []byte, clientName string) error {
	body := fmt.Sprintf(`{"mode":"solve", "client": %q, "instance": %s, "chip": {"w":%d,"h":%d,"t":%d}, "timeout_ms": %d}`,
		clientName, inst, chipW, chipH, chipT, cfg.timeout.Milliseconds())
	resp, err := client.Post(cfg.baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("job submit: decoding: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("job submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(cfg.timeout + 5*time.Second)
	state := submitted.State
	for state == "queued" || state == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s: still %s at deadline", submitted.ID, state)
		}
		time.Sleep(2 * time.Millisecond)
		r, err := client.Get(cfg.baseURL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			return err
		}
		var snap struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(r.Body).Decode(&snap)
		r.Body.Close()
		if err != nil || r.StatusCode != http.StatusOK {
			return fmt.Errorf("job %s: poll status %d err %v", submitted.ID, r.StatusCode, err)
		}
		state = snap.State
	}
	if state != "done" {
		return fmt.Errorf("job %s: terminal state %q, want done", submitted.ID, state)
	}
	req, err := http.NewRequest(http.MethodDelete, cfg.baseURL+"/v1/jobs/"+submitted.ID, nil)
	if err != nil {
		return err
	}
	dr, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, dr.Body)
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		return fmt.Errorf("job %s: delete status %d", submitted.ID, dr.StatusCode)
	}
	return nil
}

// scrapeMetrics annotates the report with the daemon's own view of the
// run: result-cache hit rate and p99 admission queue wait. Failures are
// ignored — these fields are informational.
func scrapeMetrics(client *http.Client, baseURL string, rep *ServeReport) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return
	}
	hits, misses := m["server.cache.hits"], m["server.cache.misses"]
	if hits+misses > 0 {
		rep.CacheHitRate = hits / (hits + misses)
	}
	rep.QueueWaitP99MS = m["server.queue.wait.p99_ms"]
}

// percentiles returns the nearest-rank p50 and p99 of the sample set
// (zeros when empty).
func percentiles(samples []time.Duration) (p50, p99 int64) {
	if len(samples) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return int64(rank(0.50)), int64(rank(0.99))
}

// newFlagSet builds the CLI flag set, reporting usage to stderr.
func newFlagSet(stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("fpgaload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// run is the testable CLI entry point: parse flags, replay, write the
// report, gate against the baseline.
func run(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet(stderr)
	var (
		addr     = fs.String("addr", "", "daemon address (host:port or http URL); required")
		seed     = fs.Int64("seed", 1, "workload seed; with -clients and -requests it pins the op mix exactly")
		clients  = fs.Int("clients", 4, "concurrent load clients")
		requests = fs.Int("requests", 25, "operations per client")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-operation solve deadline (timeout_ms on every request)")
		out      = fs.String("out", "", "write the JSON report here (\"-\" for stdout)")
		baseline = fs.String("baseline", "", "gate against this committed report")
		tol      = fs.Float64("tolerance", 1.0, "relative p99 latency slack against the baseline (1.0 = 100%)")
		floor    = fs.Duration("floor", 50*time.Millisecond, "absolute p99 latency slack; regressions must exceed both")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *addr == "" || fs.NArg() > 0 {
		fmt.Fprintln(stderr, "fpgaload: -addr is required; try: fpgaload -addr localhost:8080 -out -")
		return 1
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	if *clients < 1 || *requests < 1 {
		fmt.Fprintln(stderr, "fpgaload: -clients and -requests must be positive")
		return 1
	}

	rep, opErrs, err := runLoad(loadConfig{
		baseURL: base, seed: *seed, clients: *clients, requests: *requests, timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "fpgaload: %v\n", err)
		return 1
	}
	for _, e := range rep.Entries {
		fmt.Fprintf(stdout, "%-14s count %4d  errors %d  p50 %10v  p99 %10v\n",
			e.Name, e.Count, e.Errors, time.Duration(e.P50NS).Round(time.Microsecond), time.Duration(e.P99NS).Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "%d ops in %v (%.0f op/s), cache hit rate %.2f, queue wait p99 %.2fms\n",
		*clients**requests, time.Duration(rep.WallNS).Round(time.Millisecond),
		rep.RequestsPerSec, rep.CacheHitRate, rep.QueueWaitP99MS)

	if *out != "" {
		if err := writeReport(rep, *out); err != nil {
			fmt.Fprintf(stderr, "fpgaload: write report: %v\n", err)
			return 1
		}
	}
	if len(opErrs) > 0 {
		for _, m := range opErrs {
			fmt.Fprintf(stderr, "fpgaload: FAILED: %s\n", m)
		}
		return 2
	}
	if *baseline != "" {
		baseRep, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "fpgaload: baseline: %v\n", err)
			return 1
		}
		msgs := diffReports(baseRep, rep, *tol, *floor)
		for _, m := range msgs {
			fmt.Fprintf(stderr, "fpgaload: REGRESSION: %s\n", m)
		}
		if len(msgs) > 0 {
			return 2
		}
		fmt.Fprintf(stdout, "baseline %s: %d kinds compared, no regressions\n", *baseline, len(rep.Entries))
	}
	return 0
}
