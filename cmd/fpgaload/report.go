package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// ServeReportSchema identifies the on-disk serving-load report format;
// bump it on incompatible changes so a stale committed baseline fails
// loudly instead of diffing garbage.
const ServeReportSchema = "fpgaload/serve/v1"

// Env stamps the machine a report was recorded on. Latencies and
// throughput are only comparable within the same environment; request
// counts are comparable everywhere.
type Env struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	CPU        string `json:"cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// ServeEntry is the measured outcome of one request kind across the
// whole replay.
type ServeEntry struct {
	// Name identifies the kind ("serve/solve", "serve/batch", …).
	Name string `json:"name"`
	// Count is how many operations of this kind the seeded mix issued —
	// deterministic per (seed, clients, requests), diffed exactly
	// against the baseline.
	Count int `json:"count"`
	// Errors counts operations that did not complete as expected
	// (network failure, unexpected status, failed batch entries, jobs
	// not reaching "done"). The gate requires zero.
	Errors int `json:"errors"`
	// P50NS and P99NS are end-to-end client-side latency percentiles of
	// the kind, in nanoseconds (a job's latency spans submit → terminal
	// → collect). P99 is tolerance-gated against the baseline; p50 is
	// recorded for inspection.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
}

// ServeReport is the machine-readable output of one fpgaload run.
type ServeReport struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	Env       Env    `json:"env"`
	// Seed, Clients and Requests pin the workload: the per-client op
	// mix is a pure function of them, so baseline counts diff exactly.
	Seed     int64 `json:"seed"`
	Clients  int   `json:"clients"`
	Requests int   `json:"requests"`
	// WallNS is the whole-replay wall time; RequestsPerSec the total
	// operation throughput over it. Informational (machine-dependent).
	WallNS         int64   `json:"wall_ns"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// CacheHitRate and QueueWaitP99MS are scraped from the daemon's
	// /metrics after the replay: hits/(hits+misses) of the result
	// cache, and the p99 admission queue wait. Informational.
	CacheHitRate   float64      `json:"cache_hit_rate"`
	QueueWaitP99MS float64      `json:"queue_wait_p99_ms"`
	Entries        []ServeEntry `json:"entries"`
}

// envStamp collects the environment fingerprint for a report.
func envStamp() Env {
	return Env{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		CPU:        cpuModel(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// cpuModel extracts the CPU model name from /proc/cpuinfo, falling back
// to the architecture string on other platforms.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, after, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(after)
				}
			}
		}
	}
	return runtime.GOARCH
}

// writeReport marshals the report to path (or stdout for "-").
func writeReport(r *ServeReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// readReport loads a previously written report and checks its schema.
func readReport(path string) (*ServeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ServeReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ServeReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ServeReportSchema)
	}
	return &r, nil
}

// diffReports compares the current run against a baseline and returns
// one message per regression, following the fpgabench gating pattern:
// operation counts are a pure function of the seeded mix and must match
// exactly; any client-visible error is a regression outright; p99
// latency regresses only when slower than baseline by more than tol
// (relative) and floor (absolute), so scheduler noise cannot flap the
// gate. Throughput, cache hit rate and queue wait are informational.
func diffReports(base, cur *ServeReport, tol float64, floor time.Duration) []string {
	if base.Seed != cur.Seed || base.Clients != cur.Clients || base.Requests != cur.Requests {
		return []string{fmt.Sprintf(
			"workload mismatch: run seed=%d clients=%d requests=%d, baseline %d/%d/%d — counts are not comparable",
			cur.Seed, cur.Clients, cur.Requests, base.Seed, base.Clients, base.Requests)}
	}
	baseByName := make(map[string]ServeEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	var msgs []string
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		if e.Errors > 0 {
			msgs = append(msgs, fmt.Sprintf("%s: %d of %d operations failed", e.Name, e.Errors, e.Count))
		}
		b, ok := baseByName[e.Name]
		if !ok {
			continue // new kind, nothing to compare yet
		}
		seen[e.Name] = true
		if e.Count != b.Count {
			msgs = append(msgs, fmt.Sprintf("%s: operation count changed: %d, baseline %d (seeded mix gate)",
				e.Name, e.Count, b.Count))
		}
		slack := int64(float64(b.P99NS) * tol)
		if d := e.P99NS - b.P99NS; d > slack && d > int64(floor) {
			msgs = append(msgs, fmt.Sprintf("%s: p99 latency regressed: %v, baseline %v (tolerance %.0f%% + %v floor)",
				e.Name, time.Duration(e.P99NS), time.Duration(b.P99NS), tol*100, floor))
		}
	}
	for _, b := range base.Entries {
		if !seen[b.Name] {
			msgs = append(msgs, fmt.Sprintf("%s: kind present in baseline but not in this run", b.Name))
		}
	}
	return msgs
}
