package main

import (
	"encoding/json"
	"testing"
)

// TestAnytimeCLIProvesOptimal: -anytime on a completed spp run reports
// the same optimum as a plain run, with gap 0 and best_bound == value
// in the JSON output, and exit status 0.
func TestAnytimeCLIProvesOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	type sppJSON struct {
		Decision  string  `json:"decision"`
		Value     int     `json:"value"`
		BestBound int     `json:"best_bound"`
		Gap       float64 `json:"gap"`
	}
	run := func(args ...string) sppJSON {
		t.Helper()
		out, code := runCLI(t, append(args, "-json", "-placement=false")...)
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stdout:\n%s", code, out)
		}
		var res sppJSON
		if err := json.Unmarshal([]byte(out), &res); err != nil {
			t.Fatalf("not JSON: %v\n%s", err, out)
		}
		return res
	}
	plain := run("-builtin", "de", "-mode", "spp", "-W", "17", "-H", "17")
	any := run("-builtin", "de", "-mode", "spp", "-W", "17", "-H", "17", "-anytime")
	if any.Decision != "feasible" || any.Value != plain.Value {
		t.Fatalf("anytime (%s, %d) ≠ plain (%s, %d)", any.Decision, any.Value, plain.Decision, plain.Value)
	}
	if any.Gap != 0 || any.BestBound != any.Value {
		t.Fatalf("completed anytime run: gap %v, best_bound %d, value %d", any.Gap, any.BestBound, any.Value)
	}
}

// TestAnytimeCLIPartialCarriesGap: an expired -timeout in anytime mode
// still delivers the best-known value and a coherent gap in the
// partial JSON, at exit status 3.
func TestAnytimeCLIPartialCarriesGap(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	// spp_hard packs 14 random-shaped tasks volume-tight on a 6×6 chip:
	// the exact refinement probes an exponential region, so a short
	// deadline reliably expires with the gap still open.
	out, code := runCLI(t, "-instance", "testdata/spp_hard.json", "-mode", "spp",
		"-W", "6", "-H", "6", "-anytime", "-timeout", "300ms", "-placement=false")
	if code != exitDeadline {
		t.Fatalf("exit code %d, want %d; stdout:\n%s", code, exitDeadline, out)
	}
	var p struct {
		Decision  string  `json:"decision"`
		Value     int     `json:"value"`
		BestBound int     `json:"best_bound"`
		Gap       float64 `json:"gap"`
		TimedOut  bool    `json:"timed_out"`
	}
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatalf("partial result is not JSON: %v\n%s", err, out)
	}
	if !p.TimedOut || p.Decision != "unknown" {
		t.Fatalf("partial result not marked timed out/unknown: %s", out)
	}
	if p.Value <= 0 {
		t.Fatalf("partial anytime result carries no incumbent: %s", out)
	}
	if p.Gap <= 0 || p.Gap > 1 || p.BestBound <= 0 {
		t.Fatalf("partial anytime gap/bound incoherent (gap %v, bound %d): %s", p.Gap, p.BestBound, out)
	}
}

// TestAnytimeRejectedOutsideSPP: -anytime is an spp refinement; other
// modes reject it up front.
func TestAnytimeRejectedOutsideSPP(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	_, code := runCLI(t, "-builtin", "de", "-mode", "opp",
		"-W", "32", "-H", "32", "-T", "6", "-anytime")
	if code == 0 {
		t.Fatal("-anytime in mode=opp should be rejected")
	}
}
