package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpga3d"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		mode string
		set  []string
		ok   bool
	}{
		{"opp", []string{"builtin", "W", "H", "T"}, true},
		{"spp", []string{"builtin", "W", "H", "trace", "json"}, true},
		{"spp", []string{"builtin", "W", "H", "starts"}, false},
		{"spp", []string{"builtin", "W", "H", "T"}, false}, // T is derived in spp
		{"bmp", []string{"builtin", "T", "progress"}, true},
		{"bmp", []string{"builtin", "T", "W"}, false},
		{"fixed", []string{"builtin", "W", "H", "T", "starts"}, true},
		{"pareto", []string{"builtin", "metrics"}, true},
		{"pareto", []string{"builtin", "chips"}, false},
		{"multichip", []string{"builtin", "W", "H", "T", "chips"}, true},
		{"rotate", []string{"builtin", "W", "H", "T", "chips"}, false},
		{"tracestats", []string{"mode", "trace", "json"}, true},
		{"tracestats", []string{"mode", "trace", "builtin"}, false},
		{"nonsense", []string{"chips"}, true}, // unknown mode errors later, not here
	}
	for _, tc := range cases {
		set := make(map[string]bool)
		for _, f := range tc.set {
			set[f] = true
		}
		err := validateFlags(tc.mode, set)
		if (err == nil) != tc.ok {
			t.Errorf("validateFlags(%q, %v) = %v, want ok=%v", tc.mode, tc.set, err, tc.ok)
		}
	}
}

// TestTraceStatsRoundTrip records a real solver trace and summarizes it
// with the tracestats aggregator, in both output formats.
func TestTraceStatsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := &fpga3d.Options{Trace: fpga3d.NewTracer(f), SkipBounds: true, SkipHeuristic: true}
	in := fpga3d.NewInstance("cli")
	in.AddTask("a", 2, 2, 1)
	in.AddTask("b", 2, 2, 1)
	if _, err := fpga3d.Solve(in, fpga3d.Chip{W: 2, H: 2, T: 2}, opt); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var human bytes.Buffer
	if err := traceStats(&human, path, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events by type", "opp_end", "search effort by rule", "c3"} {
		if !strings.Contains(human.String(), want) {
			t.Errorf("human summary missing %q:\n%s", want, human.String())
		}
	}

	var js bytes.Buffer
	if err := traceStats(&js, path, true); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Events        map[string]int   `json:"events"`
		DecidedBy     map[string]int   `json:"opp_decided_by"`
		Conflicts     map[string]int64 `json:"conflicts_by_rule"`
		Forced        map[string]int64 `json:"forced_by_rule"`
		SearchedCalls int              `json:"searched_calls"`
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, js.String())
	}
	if rep.Events["opp_end"] != 1 || rep.SearchedCalls != 1 {
		t.Errorf("summary events %v, searched %d", rep.Events, rep.SearchedCalls)
	}
	if rep.DecidedBy["search"] != 1 {
		t.Errorf("decided_by %v", rep.DecidedBy)
	}
	// Both modules overlap in x and y, so C3 must have forced the time
	// disjointness at least once on the searched call.
	if rep.Forced["c3"] == 0 {
		t.Errorf("forced_by_rule %v has no c3 entry", rep.Forced)
	}
	if _, ok := rep.Conflicts["c3"]; !ok {
		t.Errorf("conflicts_by_rule %v missing the c3 rule row", rep.Conflicts)
	}
}

func TestTraceStatsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"ev\":\"x\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := traceStats(&bytes.Buffer{}, path, false); err == nil {
		t.Fatal("malformed line not reported")
	}
	if err := traceStats(&bytes.Buffer{}, filepath.Join(t.TempDir(), "missing.jsonl"), false); err == nil {
		t.Fatal("missing file not reported")
	}
}
