// Command fpgaplace solves FPGA module placement problems from JSON
// instance files with the exact packing-class solver.
//
// Usage:
//
//	fpgaplace -instance de.json -mode opp  -W 32 -H 32 -T 6
//	fpgaplace -instance de.json -mode spp  -W 17 -H 17
//	fpgaplace -instance de.json -mode bmp  -T 13
//	fpgaplace -instance de.json -mode fixed -W 33 -H 33 -T 6 -starts 0,0,2,4,5,0,2,0,2,0,1
//	fpgaplace -instance de.json -mode pareto
//	fpgaplace -builtin de -mode bmp -T 6
//
// Modes follow the paper's problem names: opp = FeasAT&FindS,
// spp = MinT&FindS, bmp = MinA&FindS, fixed = FeasA&FixedS,
// pareto = the Figure-7 trade-off curve.
//
// Observability:
//
//	fpgaplace -builtin de -mode spp -W 17 -H 17 -progress          # live status line on stderr
//	fpgaplace -builtin de -mode spp -W 17 -H 17 -trace run.jsonl   # JSONL event trace + span tree
//	fpgaplace -builtin de -mode spp -W 17 -H 17 -json              # machine-readable result
//	fpgaplace -builtin de -mode spp -W 17 -H 17 -log-format json   # structured diagnostics on stderr
//	fpgaplace -builtin de -mode spp -W 17 -H 17 -metrics :8123     # live metrics endpoint
//	fpgaplace -mode tracestats -trace run.jsonl                    # summarize a recorded trace
//
// A -trace file carries, besides the solver's event stream, a span
// tree rooted at a "run" span: every optimization driver, OPP probe
// and stage emits a "span" event on completion, all stamped with one
// request ID, mirroring what fpgad emits per HTTP request.
//
// Parallelism and deadlines:
//
//	fpgaplace -builtin de -mode bmp -T 6 -workers 4     # sweeps race whole probes
//	                                                    # (bit-identical); single
//	                                                    # decisions steal subtrees
//	                                                    # (answer-equal)
//	fpgaplace -builtin de -mode bmp -T 6 -timeout 30s   # whole-run deadline
//
// -workers buys parallelism at two levels (README.md, "Parallelism &
// deadlines"): optimization sweeps race independent feasibility probes
// and stay bit-identical to sequential runs, while a single decision
// runs its branch-and-bound tree on a work-stealing pool — same
// verdict and optimum, possibly a different (always valid) witness.
// 0 means GOMAXPROCS for sweep racing but keeps single decisions
// sequential; intra-probe stealing is opt-in via an explicit value
// above 1.
//
// A run cut off by -timeout prints the partial result as JSON and
// exits with status 3 (exitDeadline), so scripts can distinguish
// "ran out of time" from a solver error (status 1) and a proven
// answer (status 0).
//
// Anytime mode (spp only):
//
//	fpgaplace -builtin de -mode spp -W 17 -H 17 -anytime -timeout 100ms
//
// -anytime runs the minimization as an anytime solve: a greedy
// incumbent lands immediately, a randomized annealing placer tightens
// it, and the exact search refines to proven optimality — each
// improvement printed to stderr with the current optimality gap. The
// final answer equals the plain run's; a -timeout that expires midway
// still yields the best-known schedule, its best_bound and its gap in
// the JSON partial result (gap 0 means proven optimal).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"fpga3d"
)

// exitDeadline is the exit status of a run whose -timeout expired
// before the answer was proven (the partial result goes to stdout as
// JSON). Distinct from 0 (answer proven) and 1 (error).
const exitDeadline = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgaplace: ")

	var (
		instancePath = flag.String("instance", "", "JSON instance file")
		builtin      = flag.String("builtin", "", "built-in benchmark instead of a file: de, videocodec")
		mode         = flag.String("mode", "opp", "opp | spp | bmp | fixed | pareto | minarea | multichip | rotate | tracestats")
		w            = flag.Int("W", 0, "chip width in cells (opp, spp, fixed)")
		h            = flag.Int("H", 0, "chip height in cells (opp, spp, fixed)")
		tBudget      = flag.Int("T", 0, "time budget in cycles (opp, bmp, fixed)")
		startsArg    = flag.String("starts", "", "comma-separated start times (fixed)")
		chips        = flag.Int("chips", 0, "number of identical chips (multichip; 0 = minimize)")
		noPrec       = flag.Bool("no-prec", false, "drop all precedence constraints")
		showPlace    = flag.Bool("placement", true, "print the witness placement")
		showGantt    = flag.Bool("gantt", false, "print an ASCII schedule chart")
		svgPath      = flag.String("svg", "", "write the witness placement as SVG to this file")
		reconfig     = flag.Int("reconfig", 0, "per-task reconfiguration overhead folded into durations")
		nodeLimit    = flag.Int64("node-limit", 0, "branch-and-bound node budget (0 = unlimited)")
		timeLimit    = flag.Duration("time-limit", 5*time.Minute, "wall-clock budget per decision")
		workers      = flag.Int("workers", 0, "parallelism for sweeps (probe racing, bit-identical) and, when >1, single decisions (work stealing, answer-equal); 0 = GOMAXPROCS for sweeps only, 1 = fully sequential")
		strategyName = flag.String("strategy", "", "solve strategy: staged (default; bounds, heuristic, search in order) | portfolio (incumbent sharing, prover-vs-search racing) | anneal (staged plus a randomized annealing stage before the exact search)")
		anytime      = flag.Bool("anytime", false, "anytime minimization (spp only): stream improvements with optimality gaps to stderr; a partial result keeps the best-known schedule and its gap")
		annealSeed   = flag.Int64("anneal-seed", 0, "seed for the randomized annealing placer (0 = default seed; runs are deterministic per seed)")
		timeout      = flag.Duration("timeout", 0, "whole-run deadline; on expiry the partial result is printed as JSON and the exit status is 3 (0 = none)")
		progress     = flag.Bool("progress", false, "print a live search status line to stderr")
		logFormat    = flag.String("log-format", "text", "diagnostic log output: text | json")
		tracePath    = flag.String("trace", "", "write a JSONL event trace (including the run's span tree) to this file (input file for mode=tracestats)")
		metricsAddr  = flag.String("metrics", "", "serve live solver metrics as JSON on this address (e.g. :8123)")
		jsonOut      = flag.Bool("json", false, "print the result as JSON instead of text")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if err := applyLogFormat(*logFormat); err != nil {
		log.Fatal(err)
	}
	if err := validateFlags(*mode, setFlags()); err != nil {
		log.Fatal(err)
	}

	if *mode == "tracestats" {
		if *tracePath == "" {
			log.Fatal("mode=tracestats needs -trace with the JSONL file to summarize")
		}
		if err := traceStats(os.Stdout, *tracePath, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	in, err := loadInstance(*instancePath, *builtin)
	if err != nil {
		log.Fatal(err)
	}
	if *noPrec {
		in = in.WithoutPrecedence()
	}
	if *reconfig > 0 {
		in, err = in.WithUniformReconfigOverhead(*reconfig)
		if err != nil {
			log.Fatal(err)
		}
	}
	opt := &fpga3d.Options{NodeLimit: *nodeLimit, TimeLimit: *timeLimit, Workers: *workers, Strategy: *strategyName, AnnealSeed: *annealSeed}
	if *anytime {
		opt.Anytime = true
		opt.OnImprovement = func(u fpga3d.AnytimeUpdate) {
			status := "gap"
			if u.Final {
				status = "proved optimal, gap"
			}
			fmt.Fprintf(os.Stderr, "anytime: best %d, lower bound %d (%s %.3f, %s, %v)\n",
				u.Best, u.LowerBound, status, u.Gap, u.Source, u.Elapsed.Round(time.Millisecond))
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, finishObs, err := setupObs(ctx, opt, *mode, *progress, *tracePath, *metricsAddr, *cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer finishObs()
	// exitPartial ends a run whose deadline expired: the partial result
	// goes to stdout as JSON (regardless of -json, so scripts always get
	// something parseable) and the process exits with exitDeadline.
	exitPartial := func(payload map[string]any, cause error) {
		finishObs()
		payload["timed_out"] = true
		emitJSON(payload)
		log.Printf("timeout after %v: %v", *timeout, cause)
		os.Exit(exitDeadline)
	}
	// With -json the human placement table is off unless asked for.
	if *jsonOut && !flagWasSet("placement") {
		*showPlace = false
	}
	svgOut := func(p *fpga3d.Placement, c fpga3d.Chip) {
		if *svgPath == "" || p == nil {
			return
		}
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := in.WriteSVG(f, p, c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}

	switch *mode {
	case "opp":
		requireFlags(*w > 0 && *h > 0 && *tBudget > 0, "-W, -H and -T")
		chip := fpga3d.Chip{W: *w, H: *h, T: *tBudget}
		res, err := fpga3d.SolveCtx(ctx, in, chip, opt)
		if err != nil {
			log.Fatal(err)
		}
		if res.DecidedBy == "canceled" && ctx.Err() != nil {
			exitPartial(feasJSON(in, "opp", chip, res), ctx.Err())
		}
		finishObs()
		if *jsonOut {
			emitJSON(feasJSON(in, "opp", chip, res))
			break
		}
		fmt.Printf("%s on %v: %v (decided by %s, %d nodes, %v)\n",
			in.Name(), chip, res.Decision, res.DecidedBy, res.Nodes, res.Elapsed.Round(time.Microsecond))
		fmt.Printf("stages: %v\n", res.Stages)
		printPlacement(in, res.Placement, *showPlace, *showGantt)
		svgOut(res.Placement, chip)

	case "spp":
		requireFlags(*w > 0 && *h > 0, "-W and -H")
		res, err := fpga3d.MinimizeTimeCtx(ctx, in, *w, *h, opt)
		if err != nil {
			if isCtxErr(err) {
				exitPartial(optJSON(in, "spp", res), err)
			}
			log.Fatal(err)
		}
		finishObs()
		if *jsonOut {
			emitJSON(optJSON(in, "spp", res))
			break
		}
		fmt.Printf("%s on %dx%d: minimal time %d cycles (%v, lower bound %d, %d nodes, %v)\n",
			in.Name(), *w, *h, res.Value, res.Decision, res.LowerBound, res.Nodes,
			res.Elapsed.Round(time.Microsecond))
		if *anytime {
			fmt.Printf("anytime: best bound %d, gap %.3f\n", res.BestBound, res.Gap)
		}
		fmt.Printf("stages: %v\n", res.Stages)
		printPlacement(in, res.Placement, *showPlace, *showGantt)
		svgOut(res.Placement, fpga3d.Chip{W: *w, H: *h, T: res.Value})

	case "bmp":
		requireFlags(*tBudget > 0, "-T")
		res, err := fpga3d.MinimizeChipCtx(ctx, in, *tBudget, opt)
		if err != nil {
			if isCtxErr(err) {
				exitPartial(optJSON(in, "bmp", res), err)
			}
			log.Fatal(err)
		}
		finishObs()
		if *jsonOut {
			emitJSON(optJSON(in, "bmp", res))
			break
		}
		fmt.Printf("%s within T=%d: minimal chip %dx%d (%v, lower bound %d, %d nodes, %v)\n",
			in.Name(), *tBudget, res.Value, res.Value, res.Decision, res.LowerBound, res.Nodes,
			res.Elapsed.Round(time.Microsecond))
		fmt.Printf("stages: %v\n", res.Stages)
		printPlacement(in, res.Placement, *showPlace, *showGantt)
		svgOut(res.Placement, fpga3d.Chip{W: res.Value, H: res.Value, T: *tBudget})

	case "fixed":
		requireFlags(*w > 0 && *h > 0 && *tBudget > 0 && *startsArg != "", "-W, -H, -T and -starts")
		starts, err := parseStarts(*startsArg)
		if err != nil {
			log.Fatal(err)
		}
		chip := fpga3d.Chip{W: *w, H: *h, T: *tBudget}
		res, err := fpga3d.FixedScheduleCtx(ctx, in, chip, starts, opt)
		if err != nil {
			log.Fatal(err)
		}
		if res.DecidedBy == "canceled" && ctx.Err() != nil {
			exitPartial(feasJSON(in, "fixed", chip, res), ctx.Err())
		}
		finishObs()
		if *jsonOut {
			emitJSON(feasJSON(in, "fixed", chip, res))
			break
		}
		fmt.Printf("%s with fixed schedule on %v: %v (%d nodes, %v)\n",
			in.Name(), chip, res.Decision, res.Nodes, res.Elapsed.Round(time.Microsecond))
		printPlacement(in, res.Placement, *showPlace, *showGantt)
		svgOut(res.Placement, chip)

	case "pareto":
		pts, err := fpga3d.ParetoCtx(ctx, in, opt)
		if err != nil {
			if isCtxErr(err) {
				exitPartial(map[string]any{
					"instance": in.Name(), "mode": "pareto", "points": pts,
				}, err)
			}
			log.Fatal(err)
		}
		finishObs()
		if *jsonOut {
			emitJSON(map[string]any{"instance": in.Name(), "mode": "pareto", "points": pts})
			break
		}
		fmt.Printf("%s: Pareto-optimal (time, chip) points:\n", in.Name())
		for _, p := range pts {
			fmt.Printf("  T=%4d  chip %dx%d\n", p.T, p.H, p.H)
		}

	case "minarea":
		requireFlags(*tBudget > 0, "-T")
		res, err := fpga3d.MinimizeChipAreaCtx(ctx, in, *tBudget, opt)
		if err != nil {
			if isCtxErr(err) {
				exitPartial(map[string]any{
					"instance": in.Name(), "mode": "minarea",
					"decision": fpga3d.Unknown.String(),
				}, err)
			}
			log.Fatal(err)
		}
		finishObs()
		if *jsonOut {
			emitJSON(map[string]any{
				"instance": in.Name(), "mode": "minarea",
				"decision": res.Decision.String(), "W": res.W, "H": res.H, "area": res.Area,
				"stats": res.Stats, "placement": res.Placement,
			})
			break
		}
		fmt.Printf("%s within T=%d: minimal rectangle %dx%d (%d cells, %v)\n",
			in.Name(), *tBudget, res.W, res.H, res.Area, res.Decision)
		printPlacement(in, res.Placement, *showPlace, *showGantt)
		svgOut(res.Placement, fpga3d.Chip{W: res.W, H: res.H, T: *tBudget})

	case "multichip":
		requireFlags(*w > 0 && *h > 0 && *tBudget > 0, "-W, -H and -T")
		var res *fpga3d.MultiChipResult
		var err error
		if *chips > 0 {
			res, err = fpga3d.SolveMultiChipCtx(ctx, in, *w, *h, *tBudget, *chips, opt)
		} else {
			res, err = fpga3d.MinimizeChipsCtx(ctx, in, *w, *h, *tBudget, opt)
		}
		if err != nil {
			if isCtxErr(err) {
				exitPartial(map[string]any{
					"instance": in.Name(), "mode": "multichip",
					"decision": fpga3d.Unknown.String(),
				}, err)
			}
			log.Fatal(err)
		}
		if res.Decision == fpga3d.Unknown && ctx.Err() != nil {
			exitPartial(map[string]any{
				"instance": in.Name(), "mode": "multichip",
				"decision": res.Decision.String(), "chips": res.Chips, "stats": res.Stats,
			}, ctx.Err())
		}
		finishObs()
		if *jsonOut {
			emitJSON(map[string]any{
				"instance": in.Name(), "mode": "multichip",
				"decision": res.Decision.String(), "chips": res.Chips,
				"stats": res.Stats, "placement": res.Placement, "chip_of_task": res.Chip,
			})
			break
		}
		fmt.Printf("%s on %dx%d chips within T=%d: %v with %d chips\n",
			in.Name(), *w, *h, *tBudget, res.Decision, res.Chips)
		if res.Decision == fpga3d.Feasible {
			m := in.Model()
			for c := 0; c < res.Chips; c++ {
				fmt.Printf("  chip %d:", c)
				for i := range m.Tasks {
					if res.Chip[i] == c {
						fmt.Printf(" %s@(%d,%d)t%d", taskLabel(m.Tasks[i].Name, i),
							res.Placement.X[i], res.Placement.Y[i], res.Placement.S[i])
					}
				}
				fmt.Println()
			}
		}

	case "rotate":
		requireFlags(*w > 0 && *h > 0 && *tBudget > 0, "-W, -H and -T")
		chip := fpga3d.Chip{W: *w, H: *h, T: *tBudget}
		res, err := fpga3d.SolveWithRotationCtx(ctx, in, chip, opt)
		if err != nil {
			log.Fatal(err)
		}
		if res.DecidedBy == "canceled" && ctx.Err() != nil {
			exitPartial(map[string]any{
				"instance": in.Name(), "mode": "rotate",
				"decision": res.Decision.String(), "stats": res.Stats,
			}, ctx.Err())
		}
		finishObs()
		if *jsonOut {
			emitJSON(map[string]any{
				"instance": in.Name(), "mode": "rotate",
				"decision": res.Decision.String(), "rotations": res.Rotations,
				"stats": res.Stats, "placement": res.Placement,
			})
			break
		}
		fmt.Printf("%s on %v with rotation: %v\n", in.Name(), chip, res.Decision)
		if res.Decision == fpga3d.Feasible {
			rotated := 0
			for _, r := range res.Rotations {
				if r {
					rotated++
				}
			}
			fmt.Printf("rotated modules: %d\n", rotated)
			printPlacement(res.Oriented, res.Placement, *showPlace, *showGantt)
		}

	default:
		log.Fatalf("unknown mode %q (want opp, spp, bmp, fixed, pareto, minarea, multichip, rotate or tracestats)", *mode)
	}
}

// isCtxErr reports whether err stems from the -timeout context rather
// than from the solver itself.
func isCtxErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// setFlags returns the names of the flags explicitly set on the
// command line.
func setFlags() map[string]bool {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

func flagWasSet(name string) bool { return setFlags()[name] }

// commonFlags are meaningful in every solving mode.
var commonFlags = map[string]bool{
	"instance": true, "builtin": true, "mode": true, "no-prec": true,
	"placement": true, "gantt": true, "svg": true, "reconfig": true,
	"node-limit": true, "time-limit": true, "workers": true, "timeout": true, "strategy": true, "anneal-seed": true,
	"progress": true, "trace": true, "metrics": true, "json": true, "log-format": true,
	"cpuprofile": true, "memprofile": true,
}

// modeFlags lists the mode-specific flags each mode accepts.
var modeFlags = map[string]map[string]bool{
	"opp":        {"W": true, "H": true, "T": true},
	"spp":        {"W": true, "H": true, "anytime": true},
	"bmp":        {"T": true},
	"fixed":      {"W": true, "H": true, "T": true, "starts": true},
	"pareto":     {},
	"minarea":    {"T": true},
	"multichip":  {"W": true, "H": true, "T": true, "chips": true},
	"rotate":     {"W": true, "H": true, "T": true},
	"tracestats": {"mode": true, "trace": true, "json": true},
}

// validateFlags rejects flag combinations that the chosen mode would
// silently ignore, before any solving starts.
func validateFlags(mode string, set map[string]bool) error {
	allowed, ok := modeFlags[mode]
	if !ok {
		return nil // unknown mode is reported by the main switch
	}
	var bad []string
	for name := range set {
		if mode == "tracestats" {
			if !allowed[name] {
				bad = append(bad, "-"+name)
			}
			continue
		}
		if !commonFlags[name] && !allowed[name] {
			bad = append(bad, "-"+name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("%s not valid in mode=%s (run -help for per-mode flags)",
		strings.Join(bad, ", "), mode)
}

// applyLogFormat switches the diagnostic log output; "json" routes the
// log package's lines through a JSON slog handler on stderr so scripts
// capture structured diagnostics, "text" keeps the plain default.
func applyLogFormat(format string) error {
	switch format {
	case "", "text":
		return nil
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
		return nil
	}
	return fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}

// setupObs wires the -progress, -trace, -metrics, -cpuprofile and
// -memprofile flags into the solver options and opens the run's root
// span when tracing (every driver and stage span of the solve nests
// under it, connected by a fresh request ID). The returned context
// carries that span; the returned function flushes and closes the
// sinks. It is idempotent so it can run both before result printing
// (to get the progress line off the screen) and on the deferred path —
// and because exitPartial leaves via os.Exit, which skips defers, the
// profile writers hang off this hook rather than their own defer
// statements.
func setupObs(ctx context.Context, opt *fpga3d.Options, mode string, progress bool, tracePath, metricsAddr, cpuProfile, memProfile string) (context.Context, func(), error) {
	var done []func()
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return nil, nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, err
		}
		done = append(done, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return nil, nil, err
		}
		done = append(done, func() {
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			f.Close()
		})
	}
	if progress {
		opt.Progress = fpga3d.ProgressPrinter(os.Stderr, 0)
		done = append(done, func() { fmt.Fprintln(os.Stderr) })
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		tr := fpga3d.NewTracer(f)
		opt.Trace = tr
		ctx = fpga3d.ContextWithRequestID(ctx, fpga3d.NewRequestID())
		var runSpan *fpga3d.Span
		ctx, runSpan = fpga3d.StartSpan(ctx, tr, "run")
		runSpan.SetAttr("mode", mode)
		done = append(done, func() {
			runSpan.End()
			if err := tr.Err(); err != nil {
				log.Printf("trace: %v", err)
			}
			f.Close()
		})
	}
	if metricsAddr != "" {
		reg := fpga3d.NewMetrics()
		opt.Metrics = reg
		go func() {
			if err := http.ListenAndServe(metricsAddr, reg); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	ran := false
	return ctx, func() {
		if ran {
			return
		}
		ran = true
		for _, f := range done {
			f()
		}
	}, nil
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

func feasJSON(in *fpga3d.Instance, mode string, chip fpga3d.Chip, res *fpga3d.Result) map[string]any {
	return map[string]any{
		"instance":   in.Name(),
		"mode":       mode,
		"chip":       map[string]int{"W": chip.W, "H": chip.H, "T": chip.T},
		"decision":   res.Decision.String(),
		"decided_by": res.DecidedBy,
		"nodes":      res.Nodes,
		"elapsed_ms": float64(res.Elapsed) / float64(time.Millisecond),
		"stages_ms":  stagesMSJSON(res.Stages),
		"stats":      res.Stats,
		"placement":  res.Placement,
	}
}

func optJSON(in *fpga3d.Instance, mode string, res *fpga3d.OptimizeResult) map[string]any {
	out := map[string]any{
		"instance":    in.Name(),
		"mode":        mode,
		"decision":    res.Decision.String(),
		"value":       res.Value,
		"lower_bound": res.LowerBound,
		"nodes":       res.Nodes,
		"elapsed_ms":  float64(res.Elapsed) / float64(time.Millisecond),
		"stages_ms":   stagesMSJSON(res.Stages),
		"stats":       res.Stats,
		"placement":   res.Placement,
	}
	if mode == "spp" {
		// Only MinimizeTime refines a (best_bound, gap) pair; gap 0 means
		// the value is proven optimal, positive means a partial result.
		out["best_bound"] = res.BestBound
		out["gap"] = res.Gap
	}
	return out
}

func stagesMSJSON(s fpga3d.StageTimings) map[string]float64 {
	out := map[string]float64{
		"bounds":    float64(s.Bounds) / float64(time.Millisecond),
		"heuristic": float64(s.Heuristic) / float64(time.Millisecond),
		"search":    float64(s.Search) / float64(time.Millisecond),
	}
	if s.Anneal > 0 {
		out["anneal"] = float64(s.Anneal) / float64(time.Millisecond)
	}
	return out
}

func taskLabel(name string, i int) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("task%d", i)
}

func loadInstance(path, builtin string) (*fpga3d.Instance, error) {
	switch {
	case path != "" && builtin != "":
		return nil, fmt.Errorf("use either -instance or -builtin, not both")
	case path != "":
		return fpga3d.LoadInstance(path)
	case builtin == "de":
		return fpga3d.BenchmarkDE(), nil
	case builtin == "videocodec":
		return fpga3d.BenchmarkVideoCodec(), nil
	case builtin != "":
		return nil, fmt.Errorf("unknown builtin %q (want de or videocodec)", builtin)
	default:
		return nil, fmt.Errorf("missing -instance file or -builtin name")
	}
}

func requireFlags(ok bool, what string) {
	if !ok {
		log.Fatalf("this mode needs %s", what)
	}
}

func parseStarts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad start time %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func printPlacement(in *fpga3d.Instance, p *fpga3d.Placement, table, gantt bool) {
	if p == nil {
		return
	}
	if table {
		fmt.Println()
		fmt.Print(p.Table(in.Model()))
	}
	if gantt {
		fmt.Println()
		fmt.Print(p.Gantt(in.Model()))
	}
	if !table && !gantt {
		return
	}
	os.Stdout.Sync()
}
