package main

import "testing"

func TestParseStarts(t *testing.T) {
	got, err := parseStarts("0, 3,7,12")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 7, 12}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseStarts("1,x,3"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseStarts(""); err == nil {
		t.Fatal("empty string accepted")
	}
}

func TestLoadInstanceBuiltins(t *testing.T) {
	de, err := loadInstance("", "de")
	if err != nil {
		t.Fatal(err)
	}
	if de.NumTasks() != 11 {
		t.Fatalf("de has %d tasks", de.NumTasks())
	}
	vc, err := loadInstance("", "videocodec")
	if err != nil {
		t.Fatal(err)
	}
	if vc.NumTasks() != 16 {
		t.Fatalf("videocodec has %d tasks", vc.NumTasks())
	}
	if _, err := loadInstance("", "nope"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	if _, err := loadInstance("", ""); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := loadInstance("x.json", "de"); err == nil {
		t.Fatal("both sources accepted")
	}
}

func TestLoadInstanceFromFile(t *testing.T) {
	in, err := loadInstance("../../instances/de.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if in.NumTasks() != 11 || in.Name() != "DE" {
		t.Fatalf("parsed %q with %d tasks", in.Name(), in.NumTasks())
	}
	if _, err := loadInstance("../../instances/missing.json", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
