package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"testing"
)

// TestMain lets timeout tests re-exec the test binary as the real CLI:
// with FPGAPLACE_RUN_MAIN set, the process runs main() on its own
// arguments instead of the test suite, so exit statuses and the
// partial-result JSON can be observed end to end.
func TestMain(m *testing.M) {
	if os.Getenv("FPGAPLACE_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as fpgaplace with the given
// arguments and returns stdout and the exit code.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FPGAPLACE_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	t.Logf("args=%v exit=%d stderr=%s", args, code, stderr.String())
	return stdout.String(), code
}

type partialJSON struct {
	Mode     string `json:"mode"`
	Decision string `json:"decision"`
	TimedOut bool   `json:"timed_out"`
}

// TestTimeoutExitStatus checks the CLI deadline contract in every mode
// that must run probes on the DE benchmark: an expired -timeout yields
// exit status 3 and a partial result as JSON with timed_out set.
func TestTimeoutExitStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	cases := []struct {
		name string
		args []string
	}{
		{"opp", []string{"-builtin", "de", "-mode", "opp", "-W", "32", "-H", "32", "-T", "6"}},
		// The DE heuristic is makespan-optimal on its benchmark chips,
		// so spp uses a testdata instance whose greedy bound is loose —
		// otherwise no probe runs and the answer is proven before the
		// deadline is ever consulted.
		{"spp", []string{"-instance", "testdata/spp_probe.json", "-mode", "spp", "-W", "4", "-H", "4"}},
		{"bmp", []string{"-builtin", "de", "-mode", "bmp", "-T", "6"}},
		{"fixed", []string{"-builtin", "de", "-mode", "fixed", "-W", "33", "-H", "33", "-T", "6",
			"-starts", "0,0,2,4,5,0,2,0,2,0,1"}},
		{"pareto", []string{"-builtin", "de", "-mode", "pareto"}},
		{"minarea", []string{"-builtin", "de", "-mode", "minarea", "-T", "6"}},
		{"multichip", []string{"-builtin", "de", "-mode", "multichip", "-W", "20", "-H", "20", "-T", "8"}},
		{"rotate", []string{"-builtin", "de", "-mode", "rotate", "-W", "32", "-H", "32", "-T", "6"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runCLI(t, append(tc.args, "-timeout", "1ns", "-placement=false")...)
			if code != exitDeadline {
				t.Fatalf("exit code %d, want %d; stdout:\n%s", code, exitDeadline, out)
			}
			var p partialJSON
			if err := json.Unmarshal([]byte(out), &p); err != nil {
				t.Fatalf("partial result is not JSON: %v\n%s", err, out)
			}
			if !p.TimedOut {
				t.Fatalf("timed_out missing in partial result: %s", out)
			}
			if p.Decision != "" && p.Decision != "unknown" {
				t.Fatalf("partial result claims decision %q: %s", p.Decision, out)
			}
		})
	}
}

// TestTimeoutGenerousStillProves checks that a deadline long enough for
// the whole run leaves the answer and exit status untouched, with
// workers racing.
func TestTimeoutGenerousStillProves(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	out, code := runCLI(t, "-builtin", "de", "-mode", "bmp", "-T", "13",
		"-timeout", "5m", "-workers", "4", "-json", "-placement=false")
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stdout:\n%s", code, out)
	}
	var res struct {
		Decision string  `json:"decision"`
		Value    float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if res.Decision != "feasible" || res.Value != 17 {
		t.Fatalf("got (%s, %v), want (feasible, 17)", res.Decision, res.Value)
	}
}
