package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// traceStats summarizes a JSONL trace written by -trace into per-rule
// effort tables: how often each propagation rule fired and each pruning
// rule rejected, summed over the OPP calls of the run — the raw
// material for the Section 6 effort tables in EXPERIMENTS.md.
func traceStats(w io.Writer, path string, asJSON bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	agg := newTraceAgg()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("%s:%d: %v", path, line, err)
		}
		agg.add(ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if agg.events == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(agg.report())
	}
	agg.print(w, path)
	return nil
}

// traceAgg accumulates the per-event and per-rule tallies of one trace.
type traceAgg struct {
	events    int
	byType    map[string]int
	decidedBy map[string]int
	outcomes  map[string]int // opp_end decisions
	nodes     int64
	elapsedMS float64
	stagesMS  map[string]float64
	stats     map[string]int64 // summed engine stats over opp_end events
	statCalls int
}

func newTraceAgg() *traceAgg {
	return &traceAgg{
		byType:    make(map[string]int),
		decidedBy: make(map[string]int),
		outcomes:  make(map[string]int),
		stagesMS:  make(map[string]float64),
		stats:     make(map[string]int64),
	}
}

func (a *traceAgg) add(ev map[string]any) {
	a.events++
	kind, _ := ev["ev"].(string)
	a.byType[kind]++
	switch kind {
	case "opp_end":
		if d, ok := ev["decided_by"].(string); ok {
			// Bound refutations carry the binding bound name after a
			// colon; fold them into one row.
			if i := strings.IndexByte(d, ':'); i > 0 {
				d = d[:i]
			}
			a.decidedBy[d]++
		}
		if d, ok := ev["decision"].(string); ok {
			a.outcomes[d]++
		}
		if n, ok := ev["nodes"].(float64); ok {
			a.nodes += int64(n)
		}
		if e, ok := ev["elapsed_ms"].(float64); ok {
			a.elapsedMS += e
		}
		if sm, ok := ev["stages_ms"].(map[string]any); ok {
			for k, v := range sm {
				if f, ok := v.(float64); ok {
					a.stagesMS[k] += f
				}
			}
		}
		if st, ok := ev["stats"].(map[string]any); ok {
			a.statCalls++
			for k, v := range st {
				if f, ok := v.(float64); ok {
					a.stats[k] += int64(f)
				}
			}
		}
	}
}

// byPrefix extracts the summed stats fields with the given name prefix
// into a rule-name → count table (e.g. ConflictC3 → c3).
func (a *traceAgg) byPrefix(prefix string) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range a.stats {
		if len(k) > len(prefix) && strings.HasPrefix(k, prefix) {
			out[strings.ToLower(k[len(prefix):])] = v
		}
	}
	return out
}

func (a *traceAgg) report() map[string]any {
	return map[string]any{
		"events":            a.byType,
		"opp_decided_by":    a.decidedBy,
		"opp_outcomes":      a.outcomes,
		"nodes":             a.nodes,
		"opp_elapsed_ms":    a.elapsedMS,
		"stages_ms":         a.stagesMS,
		"searched_calls":    a.statCalls,
		"conflicts_by_rule": a.byPrefix("Conflict"),
		"forced_by_rule":    a.byPrefix("Forced"),
		"rejects_by_reason": a.byPrefix("Reject"),
	}
}

func (a *traceAgg) print(w io.Writer, path string) {
	fmt.Fprintf(w, "%s: %d events\n", path, a.events)
	fmt.Fprintln(w, "\nevents by type:")
	printCountTable(w, a.byType)
	if n := a.byType["opp_end"]; n > 0 {
		fmt.Fprintf(w, "\nOPP calls: %d (", n)
		first := true
		for _, k := range sortedKeys(a.decidedBy) {
			if !first {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s %d", k, a.decidedBy[k])
			first = false
		}
		fmt.Fprintf(w, "), %d nodes, %v engine time\n",
			a.nodes, (time.Duration(a.elapsedMS * float64(time.Millisecond))).Round(time.Microsecond))
	}
	if len(a.stagesMS) > 0 {
		fmt.Fprintln(w, "\nstage time (summed over OPP calls):")
		for _, k := range sortedKeys(a.stagesMS) {
			fmt.Fprintf(w, "  %-12s %10.3f ms\n", k, a.stagesMS[k])
		}
	}
	if a.statCalls > 0 {
		conflicts, forced := a.byPrefix("Conflict"), a.byPrefix("Forced")
		fmt.Fprintf(w, "\nsearch effort by rule (%d searched calls):\n", a.statCalls)
		fmt.Fprintf(w, "  %-10s %12s %12s\n", "rule", "conflicts", "forced")
		for _, rule := range sortedKeys(conflicts) {
			fmt.Fprintf(w, "  %-10s %12d %12d\n", rule, conflicts[rule], forced[rule])
		}
		fmt.Fprintln(w, "\nleaf rejects by reason:")
		printCountTable(w, a.byPrefix("Reject"))
	}
}

func printCountTable[V int | int64](w io.Writer, m map[string]V) {
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(w, "  %-14s %10d\n", k, m[k])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
