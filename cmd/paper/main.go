// Command paper regenerates every table and figure of the paper's
// evaluation section (Section 5) with the exact solver and prints them
// next to the published values:
//
//	paper -table1    Table 1: BMP on the DE benchmark
//	paper -table2    Table 2: the video codec
//	paper -fig7      Figure 7: the Pareto fronts with/without precedence
//	paper -ablation  the rule/stage ablation study of DESIGN.md §6
//	paper -parallel  sequential vs. racing-worker-pool comparison
//	paper -all       everything
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"fpga3d"
	"fpga3d/internal/bench"
	"fpga3d/internal/model"
	"fpga3d/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	var (
		t1         = flag.Bool("table1", false, "regenerate Table 1 (DE benchmark)")
		t2         = flag.Bool("table2", false, "regenerate Table 2 (video codec)")
		f7         = flag.Bool("fig7", false, "regenerate Figure 7 (Pareto fronts)")
		ablation   = flag.Bool("ablation", false, "run the ablation study")
		extensions = flag.Bool("extensions", false, "run the beyond-the-paper experiments")
		par        = flag.Bool("parallel", false, "compare sequential vs. racing-worker-pool sweeps")
		all        = flag.Bool("all", false, "everything")
	)
	flag.Parse()
	if *all {
		*t1, *t2, *f7, *ablation, *extensions, *par = true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f7 && !*ablation && !*extensions && !*par {
		flag.Usage()
		return
	}
	if *t1 {
		table1()
	}
	if *t2 {
		table2()
	}
	if *f7 {
		fig7()
	}
	if *ablation {
		ablationStudy()
	}
	if *extensions {
		extensionStudy()
	}
	if *par {
		parallelStudy()
	}
}

// parallelStudy compares the sequential optimization sweeps against the
// racing worker pool (Options.Workers) on workloads where the probes
// expend real search effort, and checks that the optima agree. Node
// counts grow under racing (speculative probes); wall-clock shrinks
// only when the host actually has spare cores.
func parallelStudy() {
	fmt.Printf("Parallel sweeps — sequential vs. %d racing workers (GOMAXPROCS=%d)\n",
		parallelWorkers, runtime.GOMAXPROCS(0))
	de := bench.DE()
	vc := bench.VideoCodec()
	searchOnly := solver.Options{SkipBounds: true, SkipHeuristic: true}
	rows := []struct {
		name string
		opt  solver.Options
		run  func(opt solver.Options) (*solver.OptResult, error)
	}{
		// Search-only makes every probe a real branch-and-bound run, so
		// the speculative-node overhead of racing becomes visible.
		{"DE BMP T=6 (search only)", searchOnly, func(o solver.Options) (*solver.OptResult, error) {
			return solver.MinBase(de, 6, o)
		}},
		{"DE BMP T=6 (full framework)", solver.Options{}, func(o solver.Options) (*solver.OptResult, error) {
			return solver.MinBase(de, 6, o)
		}},
		{"DE BMP T=13 (full framework)", solver.Options{}, func(o solver.Options) (*solver.OptResult, error) {
			return solver.MinBase(de, 13, o)
		}},
		{"codec BMP T=59 (full framework)", solver.Options{}, func(o solver.Options) (*solver.OptResult, error) {
			return solver.MinBase(vc, 59, o)
		}},
	}
	fmt.Printf("  %-34s %8s %6s %7s %7s %12s\n", "workload", "workers", "value", "probes", "nodes", "time")
	for _, row := range rows {
		var seqValue int
		for _, workers := range []int{1, parallelWorkers} {
			opt := row.opt
			opt.Workers = workers
			r, err := row.run(opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-34s %8d %6d %7d %7d %12v\n",
				row.name, workers, r.Value, r.Probes, r.Stats.Nodes, r.Elapsed.Round(time.Microsecond))
			if workers == 1 {
				seqValue = r.Value
			} else if r.Value != seqValue {
				log.Fatalf("%s: parallel optimum %d != sequential %d", row.name, r.Value, seqValue)
			}
		}
	}
	fmt.Println()
}

// parallelWorkers is the pool size used by -parallel; fixed rather than
// GOMAXPROCS so the reported numbers are comparable across hosts.
const parallelWorkers = 8

// extensionStudy regenerates the beyond-the-paper experiment tables of
// EXPERIMENTS.md: rectangular chips, multi-FPGA partitioning, and the
// HLS workload families.
func extensionStudy() {
	fmt.Println("Extensions — rectangular chips (BMP without the square restriction)")
	de := bench.DE()
	for _, T := range []int{6, 13} {
		sq, err := solver.MinBase(de, T, solver.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rect, err := solver.MinArea(de, T, solver.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  DE T=%-3d square %dx%d = %d cells   rectangle %dx%d = %d cells\n",
			T, sq.Value, sq.Value, sq.Value*sq.Value, rect.W, rect.H, rect.Area)
	}

	fmt.Println("\nExtensions — multi-FPGA partitioning (16x16 chips)")
	fmt.Println("  minimal fleet per latency bound:")
	for _, T := range []int{6, 8, 10, 12, 14} {
		r, err := solver.MinChips(de, 16, 16, T, solver.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    T=%-3d → %d chips\n", T, r.Chips)
	}
	fmt.Println("  minimal latency per fleet size:")
	for k := 1; k <= 3; k++ {
		mt, err := solver.MinTimeMultiChip(de, 16, 16, k, solver.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    k=%d → T=%d\n", k, mt.MinTime)
	}

	fmt.Println("\nExtensions — HLS workload families (minimal latency, exact)")
	for _, w := range []struct {
		in   *model.Instance
		side int
	}{
		{bench.FIR(8), 16}, {bench.FIR(8), 32}, {bench.FIR(16), 48},
		{bench.Biquad(3), 17}, {bench.Biquad(3), 32},
		{bench.FFT(8), 32},
	} {
		r, err := solver.MinTime(w.in, w.side, w.side, solver.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s on %2dx%-2d  T = %d\n", w.in.Name, w.side, w.side, r.Value)
	}
	fmt.Println()
}

func table1() {
	fmt.Println("Table 1 — DE benchmark, minimal square chip per latency bound")
	fmt.Println("  (paper: T=6 → 32x32 in 55.76s; T=13 → 17x17 in 0.04s; T=14 → 16x16 in 0.03s, Sun Ultra 30)")
	fmt.Printf("  %4s  %10s  %10s  %8s  %12s\n", "T", "chip", "paper", "nodes", "time")
	de := fpga3d.BenchmarkDE()
	paper := map[int]string{6: "32x32", 13: "17x17", 14: "16x16"}
	for _, T := range []int{6, 13, 14} {
		r, err := fpga3d.MinimizeChip(de, T, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d  %7dx%-3d %10s  %8d  %12v\n",
			T, r.Value, r.Value, paper[T], r.Nodes, r.Elapsed.Round(time.Microsecond))
	}
	fmt.Println()
}

func table2() {
	fmt.Println("Table 2 — video codec (H.261)")
	fmt.Println("  (paper: latency 59 on the minimal chip 64x64 in 24.87s, Sun Ultra 30)")
	vc := fpga3d.BenchmarkVideoCodec()
	start := time.Now()
	minH, err := fpga3d.MinimizeChip(vc, 59, nil)
	if err != nil {
		log.Fatal(err)
	}
	minT, err := fpga3d.MinimizeTime(vc, 64, 64, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  minimal chip for T=59:     %dx%d   (paper: 64x64)\n", minH.Value, minH.Value)
	fmt.Printf("  minimal latency on 64x64:  %d      (paper: 59)\n", minT.Value)
	fmt.Printf("  total time: %v\n\n", time.Since(start).Round(time.Microsecond))
}

func fig7() {
	fmt.Println("Figure 7 — Pareto-optimal chip/time points for the DE benchmark")
	de := fpga3d.BenchmarkDE()
	solid, err := fpga3d.Pareto(de, nil)
	if err != nil {
		log.Fatal(err)
	}
	dashed, err := fpga3d.Pareto(de.WithoutPrecedence(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  (a) with precedence constraints (paper: h=32 for T∈[6,12], 17 for T=13, 16 for T≥14):")
	for _, p := range solid {
		fmt.Printf("      T=%3d → %dx%d\n", p.T, p.H, p.H)
	}
	fmt.Println("  (b) without precedence constraints (dashed in the paper):")
	for _, p := range dashed {
		fmt.Printf("      T=%3d → %dx%d\n", p.T, p.H, p.H)
	}
	fmt.Println()
}

// ablationStudy measures search effort on the DE and codec workloads
// with individual stages and rules disabled (DESIGN.md §6).
func ablationStudy() {
	fmt.Println("Ablation — search nodes to decide DE cases with stages/rules disabled")
	fmt.Println("  (cases: 32x32x6 feasible, 17x17x13 feasible, 16x16x13 infeasible, 31x31x12 infeasible)")
	de := bench.DE()
	cases := []model.Container{
		{W: 32, H: 32, T: 6},
		{W: 17, H: 17, T: 13},
		{W: 16, H: 16, T: 13},
		{W: 31, H: 31, T: 12},
	}
	variants := []struct {
		name string
		opt  solver.Options
	}{
		{"full framework", solver.Options{}},
		{"search only (no bounds/heuristic)", solver.Options{SkipBounds: true, SkipHeuristic: true}},
		{"search, no C4 rule", solver.Options{SkipBounds: true, SkipHeuristic: true, DisableC4Rule: true}},
		{"search, no hole rule", solver.Options{SkipBounds: true, SkipHeuristic: true, DisableHoleRule: true}},
		{"search, no clique rules", solver.Options{SkipBounds: true, SkipHeuristic: true, DisableCliqueRule: true, DisableCliqueForce: true}},
		{"search, no D1/D2 closure", solver.Options{SkipBounds: true, SkipHeuristic: true, DisableOrientRules: true}},
	}
	for _, v := range variants {
		v.opt.NodeLimit = 2_000_000
		v.opt.TimeLimit = 60 * time.Second
		var nodes int64
		var elapsed time.Duration
		undecided := 0
		for _, c := range cases {
			r, err := solver.SolveOPP(de, c, v.opt)
			if err != nil {
				log.Fatal(err)
			}
			nodes += r.Stats.Nodes
			elapsed += r.Elapsed
			if r.Decision == solver.Unknown {
				undecided++
			}
		}
		status := ""
		if undecided > 0 {
			status = fmt.Sprintf("  (%d cases hit the limit!)", undecided)
		}
		fmt.Printf("  %-36s %9d nodes  %12v%s\n", v.name, nodes, elapsed.Round(time.Microsecond), status)
	}
	fmt.Println()
}
