// Package fpga3d solves optimal FPGA module placement with temporal
// precedence constraints, reproducing the exact algorithms of
//
//	S. P. Fekete, E. Köhler, J. Teich:
//	"Optimal FPGA Module Placement with Temporal Precedence Constraints",
//	DATE 2001 (TU Berlin Report 696/2000).
//
// Hardware modules on a partially reconfigurable FPGA are modeled as
// three-dimensional boxes — two spatial dimensions (cells on the chip)
// and one temporal dimension (execution time). A feasible placement puts
// every module inside the W×H chip and the time horizon T such that
// simultaneously executing modules occupy disjoint cells, and such that
// every precedence constraint u ≺ v (module v consumes the output of
// module u) is met: u finishes before v starts.
//
// The solver is exact. Instead of enumerating geometric coordinates it
// searches over packing classes — triples of interval graphs recording,
// per dimension, which pairs of modules overlap — with constraint
// propagation, and handles precedence constraints by orienting the
// time-axis comparability edges under the paper's path (D1) and
// transitivity (D2) implication rules.
//
// # Problems
//
//   - Solve          — feasibility for a fixed chip and time budget
//     (FeasAT&FindS; the orthogonal packing problem OPP).
//   - MinimizeTime   — minimal execution time on a fixed chip
//     (MinT&FindS; the strip packing problem SPP).
//   - MinimizeChip   — minimal square chip for a fixed time budget
//     (MinA&FindS; the base minimization problem BMP).
//   - FixedSchedule  — feasibility and chip minimization when all start
//     times are prescribed (FeasA&FixedS, MinA&FixedS).
//   - Pareto         — the full (time, chip size) trade-off curve
//     (Figure 7 of the paper).
//
// # Quick start
//
//	in := fpga3d.NewInstance("demo")
//	mul := in.AddTask("mul", 16, 16, 2) // 16×16 cells, 2 cycles
//	alu := in.AddTask("alu", 16, 1, 1)
//	in.AddPrecedence(mul, alu) // the ALU consumes the product
//
//	res, err := fpga3d.Solve(in, fpga3d.Chip{W: 32, H: 32, T: 4}, nil)
//	if err != nil { ... }
//	if res.Decision == fpga3d.Feasible {
//	    fmt.Print(res.Placement.Table(in))
//	}
//
// See the examples directory for complete programs, including the
// paper's two benchmarks (the differential-equation dataflow graph and
// the H.261 video codec).
package fpga3d
