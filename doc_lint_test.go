package fpga3d

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestGodocCoverage enforces the public-surface documentation contract:
// every exported top-level identifier (functions, methods, types,
// constants, variables) in the public packages carries a doc comment.
// CI runs this test, so an undocumented export fails the build.
func TestGodocCoverage(t *testing.T) {
	files := []string{
		"api.go",
		"observe.go",
		"extensions.go",
		"benchmarks.go",
		"pack/pack.go",
		// The engine's exported surface is the contract the solver and
		// the differential/benchmark harnesses program against.
		"internal/core/problem.go",
		"internal/core/stats.go",
		"internal/core/search.go",
		// The work-stealing pool and engine clone carry the parallel
		// determinism contract (answer-equal, sum-of-shards stats) in
		// their doc comments; keep them held to the same bar.
		"internal/core/steal.go",
		"internal/core/clone.go",
		// The obs metric-name constants are part of the monitoring API.
		"internal/obs/engine.go",
		"internal/obs/strategy.go",
		// The strategy layer is the pluggable contract every optimization
		// entry point is built on; its exported surface must stay
		// documented for strategy authors.
		"internal/strategy/strategy.go",
		"internal/strategy/staged.go",
		"internal/strategy/portfolio.go",
		"internal/strategy/incumbents.go",
		"internal/strategy/problem.go",
		"internal/strategy/timings.go",
		"internal/strategy/anneal.go",
		// The annealing placer's exported surface (priority-rule table,
		// annealing options) is the anytime tier's tuning contract.
		"internal/heur/rules.go",
		"internal/heur/anneal.go",
		// The anytime update stream is public API (re-exported from
		// api.go); its field semantics are the serving contract.
		"internal/solver/anytime.go",
		// fpgabench's report types are the on-disk baseline format.
		"cmd/fpgabench/report.go",
		"cmd/fpgabench/main.go",
		"cmd/fpgabench/suite.go",
		"cmd/fpgabench/anytime.go",
		// The async job store's exported surface is the lifecycle
		// contract the serving layer and its tests program against.
		"internal/server/jobs/jobs.go",
		// fpgaload's report types are the BENCH_serve.json baseline
		// format the serve-gate CI job diffs.
		"cmd/fpgaload/main.go",
		"cmd/fpgaload/report.go",
	}
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc.Text() == "" {
					t.Errorf("%s: exported %s %s has no doc comment",
						path, kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(t, path, d)
			}
		}
	}
}

// kindOf names a function declaration for the error message.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl requires a doc comment on every exported const, var and
// type. The comment may sit on the grouped declaration (covering a
// const block) or on the individual spec.
func checkGenDecl(t *testing.T, path string, d *ast.GenDecl) {
	t.Helper()
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" {
				t.Errorf("%s: exported type %s has no doc comment", path, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
					t.Errorf("%s: exported %s %s has no doc comment", path, d.Tok, name.Name)
				}
			}
		}
	}
}
