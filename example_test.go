package fpga3d_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"fpga3d"
)

// ExampleSolve decides whether a small task graph fits a chip within a
// time budget.
func ExampleSolve() {
	in := fpga3d.NewInstance("example")
	m1 := in.AddTask("mul1", 16, 16, 2)
	m2 := in.AddTask("mul2", 16, 16, 2)
	add := in.AddTask("add", 16, 1, 1)
	in.AddPrecedence(m1, add)
	in.AddPrecedence(m2, add)

	res, err := fpga3d.Solve(in, fpga3d.Chip{W: 32, H: 32, T: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Decision)
	// Output: feasible
}

// ExampleMinimizeChip reproduces a row of the paper's Table 1: the
// smallest square chip that completes the DE benchmark in 13 cycles.
func ExampleMinimizeChip() {
	res, err := fpga3d.MinimizeChip(fpga3d.BenchmarkDE(), 13, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d\n", res.Value, res.Value)
	// Output: 17x17
}

// ExampleMinimizeTime reproduces the paper's Table 2: the minimal
// latency of the H.261 video codec on the 64×64 chip.
func ExampleMinimizeTime() {
	res, err := fpga3d.MinimizeTime(fpga3d.BenchmarkVideoCodec(), 64, 64, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Value)
	// Output: 59
}

// ExamplePareto computes the trade-off curve of Figure 7(a).
func ExamplePareto() {
	pts, err := fpga3d.Pareto(fpga3d.BenchmarkDE(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("T=%d h=%d\n", p.T, p.H)
	}
	// Output:
	// T=6 h=32
	// T=13 h=17
	// T=14 h=16
}

// ExampleInstance_WithoutPrecedence contrasts the constrained and
// unconstrained optima (the two curves of Figure 7).
func ExampleInstance_WithoutPrecedence() {
	de := fpga3d.BenchmarkDE()
	with, _ := fpga3d.MinimizeTime(de, 32, 32, nil)
	without, _ := fpga3d.MinimizeTime(de.WithoutPrecedence(), 32, 32, nil)
	fmt.Printf("with=%d without=%d\n", with.Value, without.Value)
	// Output: with=6 without=4
}

// ExampleSolveWithRotation shows the rotation extension: two tall
// modules fit a flat chip only when rotated.
func ExampleSolveWithRotation() {
	in := fpga3d.NewInstance("rot")
	in.AddTask("a", 1, 4, 1)
	in.AddTask("b", 1, 4, 1)
	chip := fpga3d.Chip{W: 4, H: 2, T: 1}

	plain, _ := fpga3d.Solve(in, chip, nil)
	rotated, _ := fpga3d.SolveWithRotation(in, chip, nil)
	fmt.Printf("fixed=%v rotated=%v\n", plain.Decision, rotated.Decision)
	// Output: fixed=infeasible rotated=feasible
}

// ExampleMinimizeChipCtx runs the chip minimization with a pool of
// workers racing independent feasibility probes under a deadline. The
// answer is bit-identical to the sequential sweep; if the deadline
// expired first, the error would be context.DeadlineExceeded and the
// returned result would carry the partial statistics gathered so far.
func ExampleMinimizeChipCtx() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	opt := &fpga3d.Options{Workers: 4} // 0 means GOMAXPROCS
	res, err := fpga3d.MinimizeChipCtx(ctx, fpga3d.BenchmarkDE(), 13, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v %dx%d\n", res.Decision, res.Value, res.Value)
	// Output: feasible 17x17
}

// ExampleSolve_workers answers a single feasibility question with an
// intra-probe work-stealing pool: Workers > 1 on a plain Solve shares
// one branch-and-bound tree across workers instead of racing sweep
// probes (there is no sweep to race). The decision is always equal to
// the sequential run's; the witness placement and node counts may
// differ between runs, which is why only the decision is printed here.
func ExampleSolve_workers() {
	de := fpga3d.BenchmarkDE()
	chip := fpga3d.Chip{W: 17, H: 17, T: 13}

	// Skipping the bound/heuristic stages forces the exact search, so
	// the pool actually runs; real callers keep the stages on.
	opt := &fpga3d.Options{Workers: 4, SkipBounds: true, SkipHeuristic: true}
	res, err := fpga3d.Solve(de, chip, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Decision)
	// Output: feasible
}

// ExampleFixedSchedule checks a prescribed schedule for spatial
// feasibility (the paper's FeasA&FixedS problem).
func ExampleFixedSchedule() {
	in := fpga3d.NewInstance("fixed")
	a := in.AddTask("a", 2, 2, 2)
	b := in.AddTask("b", 2, 2, 1)
	in.AddPrecedence(a, b)

	res, err := fpga3d.FixedSchedule(in, fpga3d.Chip{W: 2, H: 2, T: 3}, []int{0, 2}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Decision)
	// Output: feasible
}
