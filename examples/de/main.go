// Command de reproduces Table 1 of the paper on the differential-
// equation (DE) benchmark: for each allowed latency T the minimal square
// chip is computed, and for the tightest case (T = 6, the critical path)
// the resulting space-time placement is rendered cycle by cycle.
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	de := fpga3d.BenchmarkDE()
	fmt.Printf("DE benchmark: %d tasks, %d precedence arcs\n", de.NumTasks(), len(de.Precedences()))
	cp, err := de.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path: %d cycles (no faster schedule exists)\n\n", cp)

	fmt.Println("Table 1 — minimal square chip per latency bound:")
	fmt.Printf("%6s %12s %10s %12s\n", "T", "chip", "nodes", "time")
	for _, T := range []int{6, 13, 14} {
		r, err := fpga3d.MinimizeChip(de, T, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %9dx%-3d %10d %12v\n", T, r.Value, r.Value, r.Nodes, r.Elapsed.Round(1000))
	}

	// Show the T=6 placement on the 32×32 chip: four multipliers run in
	// parallel, exactly as the chip area dictates.
	r, err := fpga3d.MinimizeChip(de, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	chip := fpga3d.Chip{W: r.Value, H: r.Value, T: 6}
	fmt.Printf("\nT=6 placement on %v:\n\n", chip)
	fmt.Println(r.Placement.Table(de.Model()))
	fmt.Println(r.Placement.Gantt(de.Model()))
	for t := 0; t < 6; t += 2 {
		fmt.Println(r.Placement.FrameAt(de.Model(), chip, t))
	}
}
