// Command fixedschedule demonstrates the FixedS problem variants of the
// paper: when the start time of every module is already prescribed (for
// example by an upstream scheduler), the time dimension of the packing
// class is fully determined and only the two spatial dimensions remain —
// the solver decides whether a non-overlapping spatial placement exists
// (FeasA&FixedS) and finds the smallest square chip that admits one
// (MinA&FixedS).
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	de := fpga3d.BenchmarkDE()

	// A hand-written schedule for the DE benchmark with latency 6:
	// the six multipliers run in two waves of three, ALU operations
	// follow their producers.
	//          v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 v11
	starts := []int{0, 0, 2, 4, 5, 0, 2, 0, 2, 0, 1}

	// Which chips can realize it? Four multipliers run concurrently in
	// the first wave and tile a full 32×32 chip, leaving no cells for
	// the concurrently scheduled ALU ops — so this schedule needs more
	// than the free-schedule optimum of 32×32. The exact solver answers.
	r, err := fpga3d.MinimizeChipFixedSchedule(de, starts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed schedule %v\n", starts)
	fmt.Printf("minimal square chip: %dx%d\n\n", r.Value, r.Value)
	fmt.Println(r.Placement.Table(de.Model()))

	// Compare: the free-schedule optimum for the same latency.
	free, err := fpga3d.MinimizeChip(de, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free-schedule optimum for T=6: %dx%d\n", free.Value, free.Value)
	fmt.Println("fixing the schedule can only cost chip area, never save it.")

	// FeasA&FixedS: a direct yes/no question for a concrete chip.
	chip := fpga3d.Chip{W: free.Value, H: free.Value, T: 6}
	fr, err := fpga3d.FixedSchedule(de, chip, starts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndoes the fixed schedule fit %v? %v\n", chip, fr.Decision)
}
