// Command multichip partitions the DE benchmark across multiple small
// FPGAs: instead of one 32×32 chip, how many 16×16 chips does the
// critical-path schedule need? The chip index is just a fourth packing
// dimension for the exact solver.
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	de := fpga3d.BenchmarkDE()
	fmt.Println("DE benchmark across identical 16x16 chips:")
	fmt.Printf("%8s %8s\n", "T", "chips")
	for _, T := range []int{6, 8, 10, 12, 14} {
		r, err := fpga3d.MinimizeChips(de, 16, 16, T, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8d\n", T, r.Chips)
	}

	r, err := fpga3d.MinimizeChips(de, 16, 16, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassignment at T=6 (%d chips):\n", r.Chips)
	m := de.Model()
	for chip := 0; chip < r.Chips; chip++ {
		fmt.Printf("  chip %d:", chip)
		for i := range m.Tasks {
			if r.Chip[i] == chip {
				fmt.Printf(" %s[%d,%d)", m.Tasks[i].Name, r.Placement.S[i], r.Placement.S[i]+m.Tasks[i].Dur)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nfor comparison: a single chip at T=6 needs 32x32 cells (Table 1) —")
	fmt.Println("three 16x16 chips provide 768 cells, 25% less silicon.")
}
