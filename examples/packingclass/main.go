// Command packingclass makes the paper's central abstraction visible:
// it solves the DE benchmark at the critical-path latency, extracts the
// packing class of the optimal placement — the three component graphs
// G_x, G_y, G_t of Section 3.2 — and verifies the three defining
// conditions C1, C2 and C3 on it.
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	de := fpga3d.BenchmarkDE()
	res, err := fpga3d.MinimizeChip(de, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	chip := fpga3d.Chip{W: res.Value, H: res.Value, T: 6}
	fmt.Printf("DE benchmark at T=6 on %v\n\n", chip)

	m := de.Model()
	graphs := res.Placement.ComponentGraphs(m)
	names := []string{"G_x", "G_y", "G_t"}
	caps := []int{chip.W, chip.H, chip.T}
	sizes := func(d, i int) int {
		t := m.Tasks[i]
		switch d {
		case 0:
			return t.W
		case 1:
			return t.H
		default:
			return t.Dur
		}
	}

	for d, g := range graphs {
		fmt.Printf("%s (edge = projections overlap, capacity %d):\n    ", names[d], caps[d])
		for i := range m.Tasks {
			fmt.Printf("%-4s", m.Tasks[i].Name)
		}
		fmt.Println()
		for i := range g {
			fmt.Printf("%-4s", m.Tasks[i].Name)
			for j := range g[i] {
				switch {
				case i == j:
					fmt.Print("·   ")
				case g[i][j]:
					fmt.Print("1   ")
				default:
					fmt.Print(".   ")
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// C3: no pair overlaps in all three dimensions.
	c3 := true
	n := de.NumTasks()
	for u := 0; u < n && c3; u++ {
		for v := u + 1; v < n; v++ {
			if graphs[0][u][v] && graphs[1][u][v] && graphs[2][u][v] {
				c3 = false
				break
			}
		}
	}
	fmt.Printf("C3 (E_x ∩ E_y ∩ E_t = ∅): %v\n", c3)

	// C2: greedy check that no stable set exceeds the capacity — here
	// via the realized coordinates: the span of every dimension stays
	// within the chip.
	for d := 0; d < 3; d++ {
		maxEnd := 0
		for i := 0; i < n; i++ {
			var pos int
			switch d {
			case 0:
				pos = res.Placement.X[i]
			case 1:
				pos = res.Placement.Y[i]
			default:
				pos = res.Placement.S[i]
			}
			if e := pos + sizes(d, i); e > maxEnd {
				maxEnd = e
			}
		}
		fmt.Printf("C2 span check %s: max endpoint %d ≤ capacity %d\n", names[d], maxEnd, caps[d])
	}

	// The time-axis interval order extends the precedence constraints.
	before := res.Placement.IntervalOrder(m, 2)
	ok := true
	for _, arc := range de.Precedences() {
		if !before[arc[0]][arc[1]] {
			ok = false
		}
	}
	fmt.Printf("interval order on t extends the precedence order: %v\n", ok)
}
