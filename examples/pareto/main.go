// Command pareto reproduces Figure 7 of the paper: the Pareto-optimal
// trade-off between chip area and processing time for the DE benchmark,
// (a) with the dataflow precedence constraints and (b) without them.
package main

import (
	"fmt"
	"log"
	"strings"

	"fpga3d"
)

func main() {
	de := fpga3d.BenchmarkDE()

	withPrec, err := fpga3d.Pareto(de, nil)
	if err != nil {
		log.Fatal(err)
	}
	noPrec, err := fpga3d.Pareto(de.WithoutPrecedence(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 7 — Pareto-optimal points (chip side h vs. time T):")
	fmt.Println("\n(a) with precedence constraints (solid):")
	printPoints(withPrec)
	fmt.Println("\n(b) without precedence constraints (dashed):")
	printPoints(noPrec)

	fmt.Println("\nstaircase plot (s = solid/with, d = dashed/without, b = both):")
	plot(withPrec, noPrec)
}

func printPoints(pts []fpga3d.ParetoPoint) {
	for _, p := range pts {
		fmt.Printf("  T=%3d → chip %dx%d\n", p.T, p.H, p.H)
	}
}

// plot renders both staircases on a shared (T, h) grid.
func plot(a, b []fpga3d.ParetoPoint) {
	heightAt := func(pts []fpga3d.ParetoPoint, t int) int {
		h := -1
		for _, p := range pts {
			if p.T <= t {
				h = p.H
			}
		}
		return h
	}
	maxT := 16
	hs := map[int]bool{}
	for t := 0; t <= maxT; t++ {
		if h := heightAt(a, t); h > 0 {
			hs[h] = true
		}
		if h := heightAt(b, t); h > 0 {
			hs[h] = true
		}
	}
	var levels []int
	for h := range hs {
		levels = append(levels, h)
	}
	// Insertion sort descending (few levels).
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] > levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	for _, h := range levels {
		row := make([]byte, maxT+1)
		for t := 0; t <= maxT; t++ {
			ha, hb := heightAt(a, t), heightAt(b, t)
			switch {
			case ha == h && hb == h:
				row[t] = 'b'
			case ha == h:
				row[t] = 's'
			case hb == h:
				row[t] = 'd'
			default:
				row[t] = ' '
			}
		}
		fmt.Printf("h=%3d |%s\n", h, string(row))
	}
	fmt.Printf("       %s\n", strings.Repeat("-", maxT+1))
	fmt.Printf("       0123456789012345 (T)\n")
}
