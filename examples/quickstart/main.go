// Command quickstart shows the fpga3d public API on a small hand-built
// instance: two multipliers feeding an adder chain on a reconfigurable
// 32×32 chip.
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	in := fpga3d.NewInstance("quickstart")

	// Two 16×16 multipliers (2 cycles each) computing partial products,
	// an adder combining them, and a comparator on the sum. ALU-style
	// modules occupy one 16×1 row of cells for one cycle.
	m1 := in.AddTask("mul1", 16, 16, 2)
	m2 := in.AddTask("mul2", 16, 16, 2)
	add := in.AddTask("add", 16, 1, 1)
	cmp := in.AddTask("cmp", 16, 1, 1)
	in.AddPrecedence(m1, add)
	in.AddPrecedence(m2, add)
	in.AddPrecedence(add, cmp)

	cp, err := in.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path: %d cycles\n\n", cp)

	// Is a 32×32 chip with a 4-cycle budget enough?
	chip := fpga3d.Chip{W: 32, H: 32, T: 4}
	res, err := fpga3d.Solve(in, chip, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fits %v within T=%d? %v (decided by %s)\n\n", chip, chip.T, res.Decision, res.DecidedBy)
	if res.Decision == fpga3d.Feasible {
		fmt.Println(res.Placement.Table(in.Model()))
		fmt.Println(res.Placement.Gantt(in.Model()))
	}

	// What is the fastest schedule this chip supports?
	minT, err := fpga3d.MinimizeTime(in, 32, 32, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal execution time on 32x32: %d cycles\n", minT.Value)

	// And the smallest square chip that still meets T = 4?
	minH, err := fpga3d.MinimizeChip(in, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal square chip for T=4: %dx%d cells\n", minH.Value, minH.Value)
}
