// Command simulate solves the DE benchmark at two different latency
// bounds, replays both optimal placements on the cycle-accurate array
// simulator, and contrasts their resource profiles: the fast schedule
// buys its latency with a four-times-larger chip running at lower
// average utilization.
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	de := fpga3d.BenchmarkDE()
	for _, T := range []int{6, 14} {
		res, err := fpga3d.MinimizeChip(de, T, nil)
		if err != nil {
			log.Fatal(err)
		}
		chip := fpga3d.Chip{W: res.Value, H: res.Value, T: T}
		tr, err := de.Simulate(res.Placement, chip)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("T=%d on %dx%d:\n", T, chip.W, chip.H)
		fmt.Printf("  makespan            %d cycles\n", tr.Makespan)
		fmt.Printf("  utilization         %.1f%% (%d busy cell-cycles)\n",
			100*tr.Utilization, tr.BusyCellCycles)
		fmt.Printf("  peak concurrency    %d cells, %d modules\n", tr.PeakCells, tr.PeakTasks)
		fmt.Printf("  reconfigurations    %d column writes over %d module loads\n",
			tr.Reconfigurations(), len(tr.Events)/2)
		fmt.Printf("  cells busy per cycle: %v\n\n", tr.CellsPerCycle)
	}
	fmt.Println("the busy cell-cycles are identical — the same work — but the")
	fmt.Println("T=6 schedule needs 4x the area to buy 2.3x the speed.")
}
