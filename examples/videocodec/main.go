// Command videocodec reproduces Table 2 of the paper on the H.261
// video-codec benchmark: the minimal chip is 64×64 (the block-matching
// module for motion estimation fills it completely) and the minimal
// latency on that chip is 59 cycles, limited by the data dependencies of
// the coder pipeline.
package main

import (
	"fmt"
	"log"

	"fpga3d"
)

func main() {
	vc := fpga3d.BenchmarkVideoCodec()
	fmt.Printf("video codec: %d tasks, %d precedence arcs\n", vc.NumTasks(), len(vc.Precedences()))
	cp, err := vc.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path: %d cycles\n\n", cp)

	// No chip smaller than 64×64 can host the benchmark: the BMM module
	// alone needs 64×64 cells. Confirm by asking for the minimal chip.
	minH, err := fpga3d.MinimizeChip(vc, 59, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal square chip for T=59: %dx%d\n", minH.Value, minH.Value)

	// Table 2: minimal latency on the 64×64 chip.
	minT, err := fpga3d.MinimizeTime(vc, 64, 64, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal latency on 64x64:    %d cycles (lower bound %d)\n\n", minT.Value, minT.LowerBound)

	fmt.Println(minT.Placement.Table(vc.Model()))
	fmt.Println(minT.Placement.Gantt(vc.Model()))

	// A latency below the dependency critical path is impossible.
	r, err := fpga3d.Solve(vc, fpga3d.Chip{W: 64, H: 64, T: minT.Value - 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T=%d on 64x64: %v (%s)\n", minT.Value-1, r.Decision, r.DecidedBy)
}
