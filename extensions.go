package fpga3d

import (
	"context"
	"fmt"
	"io"

	"fpga3d/internal/fpga"
	"fpga3d/internal/solver"
)

// This file holds extensions beyond the paper's evaluation: 90° module
// rotation, reconfiguration-overhead modeling (Section 2.1 of the paper
// describes the model; folding it into durations is exactly what the
// paper prescribes), and SVG rendering of placements.

// RotationResult is the outcome of a rotation-aware feasibility
// question.
type RotationResult struct {
	Result
	// Rotations[i] reports whether task i was rotated by 90° in the
	// witness (meaningful only when feasible).
	Rotations []bool
	// Oriented is the instance with the witness orientations applied;
	// the placement's footprints refer to it.
	Oriented *Instance
}

// SolveWithRotation decides feasibility when every module may be
// rotated by 90° (footprint w×h becomes h×w). Exact: the instance is
// reported feasible iff some orientation assignment admits a placement.
func SolveWithRotation(in *Instance, c Chip, o *Options) (*RotationResult, error) {
	return SolveWithRotationCtx(context.Background(), in, c, o)
}

// SolveWithRotationCtx is SolveWithRotation under a context; once ctx
// is done the orientation enumeration stops and the aggregate comes
// back with Decision Unknown and DecidedBy "canceled" (nil error),
// matching SolveCtx.
func SolveWithRotationCtx(ctx context.Context, in *Instance, c Chip, o *Options) (*RotationResult, error) {
	r, err := solver.SolveOPPWithRotationCtx(ctx, in.m, c, opts(o))
	if err != nil {
		return nil, err
	}
	out := &RotationResult{
		Result: Result{
			Decision:  r.Decision,
			Placement: r.Placement,
			DecidedBy: r.DecidedBy,
			Nodes:     r.Stats.Nodes,
			Elapsed:   r.Elapsed,
		},
		Rotations: r.Rotations,
	}
	if r.Oriented != nil {
		out.Oriented = &Instance{m: r.Oriented}
	}
	return out, nil
}

// MinimizeChipWithRotation computes the smallest square chip for time
// budget T when modules may rotate.
func MinimizeChipWithRotation(in *Instance, t int, o *Options) (*OptimizeResult, []bool, error) {
	r, rots, err := solver.MinBaseWithRotation(in.m, t, opts(o))
	if err != nil {
		return nil, nil, err
	}
	return convertOpt(r), rots, nil
}

// WithReconfigOverhead returns a copy of the instance with task i's
// duration extended by overhead[i] cycles of reconfiguration time.
func (in *Instance) WithReconfigOverhead(overhead []int) (*Instance, error) {
	m, err := in.m.WithReconfigOverhead(overhead)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m}, nil
}

// WithUniformReconfigOverhead extends every task duration by the same
// reconfiguration constant.
func (in *Instance) WithUniformReconfigOverhead(delta int) (*Instance, error) {
	m, err := in.m.WithUniformReconfigOverhead(delta)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m}, nil
}

// WriteSVG renders a placement for this instance as an SVG document:
// one chip frame per event time plus a Gantt strip.
func (in *Instance) WriteSVG(w io.Writer, p *Placement, c Chip) error {
	if p == nil {
		return fmt.Errorf("fpga3d: nil placement")
	}
	return p.WriteSVG(w, in.m, c)
}

// Trace is the result of replaying a placement on the cycle-accurate
// array simulator: reconfiguration events, utilization and per-column
// configuration-write counts (the XC6200-style read-in model of the
// paper's Section 2.1).
type Trace = fpga.Trace

// Simulate replays a placement on an explicit cell-occupancy model of
// the chip — an independent checker of the solver's output — and
// reports utilization statistics.
func (in *Instance) Simulate(p *Placement, c Chip) (*Trace, error) {
	if p == nil {
		return nil, fmt.Errorf("fpga3d: nil placement")
	}
	o, err := in.m.Order()
	if err != nil {
		return nil, err
	}
	return fpga.Simulate(in.m, c, p, o)
}

// MultiChipResult reports a multi-FPGA feasibility or minimization
// outcome: the chip assignment of every task plus its per-chip
// coordinates.
type MultiChipResult struct {
	Decision  Decision
	Chips     int
	Chip      []int
	Placement *Placement
	Stats     Stats
	Stages    StageTimings
}

// SolveMultiChip decides whether the instance fits k identical W×H
// chips within T cycles. The chip index is modeled as a fourth packing
// dimension (every module has extent 1 there), so the exact
// packing-class machinery applies unchanged — a direct payoff of the
// Fekete–Schepers theory being dimension-generic.
func SolveMultiChip(in *Instance, chipW, chipH, t, k int, o *Options) (*MultiChipResult, error) {
	return SolveMultiChipCtx(context.Background(), in, chipW, chipH, t, k, o)
}

// SolveMultiChipCtx is SolveMultiChip under a context; cancellation
// semantics match SolveCtx.
func SolveMultiChipCtx(ctx context.Context, in *Instance, chipW, chipH, t, k int, o *Options) (*MultiChipResult, error) {
	r, err := solver.SolveMultiChipCtx(ctx, in.m, chipW, chipH, t, k, opts(o))
	if err != nil {
		return nil, err
	}
	return convertMultiChip(r), nil
}

// MinimizeChips finds the minimal number of identical W×H chips on
// which the instance completes within T cycles.
func MinimizeChips(in *Instance, chipW, chipH, t int, o *Options) (*MultiChipResult, error) {
	return MinimizeChipsCtx(context.Background(), in, chipW, chipH, t, o)
}

// MinimizeChipsCtx is MinimizeChips under a context; cancellation
// aborts the chip-count ascent promptly and returns the partial
// aggregate together with ctx.Err().
func MinimizeChipsCtx(ctx context.Context, in *Instance, chipW, chipH, t int, o *Options) (*MultiChipResult, error) {
	r, err := solver.MinChipsCtx(ctx, in.m, chipW, chipH, t, opts(o))
	var out *MultiChipResult
	if r != nil {
		out = convertMultiChip(r)
	}
	return out, err
}

func convertMultiChip(r *solver.MultiChipResult) *MultiChipResult {
	return &MultiChipResult{Decision: r.Decision, Chips: r.Chips, Chip: r.Chip,
		Placement: r.Placement, Stats: r.Stats, Stages: r.Stages}
}

// RectResult is the outcome of a rectangular chip minimization.
type RectResult struct {
	Decision  Decision
	W, H      int
	Area      int
	Placement *Placement
	Stats     Stats
	Stages    StageTimings
}

// MinimizeChipArea generalizes MinimizeChip to rectangular chips: it
// finds a W×H chip of minimal area (ties broken towards the squarer
// shape) on which the instance completes within T cycles. Rectangles
// can beat the paper's square BMP optimum substantially — the DE
// benchmark at T=6 fits a 16×48 chip (768 cells) although the smallest
// square is 32×32 (1024 cells).
func MinimizeChipArea(in *Instance, t int, o *Options) (*RectResult, error) {
	return MinimizeChipAreaCtx(context.Background(), in, t, o)
}

// MinimizeChipAreaCtx is MinimizeChipArea under a context; cancellation
// aborts the width sweep promptly and returns the partial result
// together with ctx.Err().
func MinimizeChipAreaCtx(ctx context.Context, in *Instance, t int, o *Options) (*RectResult, error) {
	r, err := solver.MinAreaCtx(ctx, in.m, t, opts(o))
	if r == nil {
		return nil, err
	}
	return &RectResult{
		Decision:  r.Decision,
		W:         r.W,
		H:         r.H,
		Area:      r.Area,
		Placement: r.Placement,
		Stats:     r.Stats,
		Stages:    r.Stages,
	}, err
}

// MinimizeTimeWithRotation computes the smallest execution time on a
// W×H chip when modules may rotate by 90°; the returned slice records
// the witness orientation.
func MinimizeTimeWithRotation(in *Instance, w, h int, o *Options) (*OptimizeResult, []bool, error) {
	r, rots, err := solver.MinTimeWithRotation(in.m, w, h, opts(o))
	if err != nil {
		return nil, nil, err
	}
	return convertOpt(r), rots, nil
}

// MinimizeTimeMultiChip computes the smallest execution time on k
// identical W×H chips.
func MinimizeTimeMultiChip(in *Instance, chipW, chipH, k int, o *Options) (*MultiChipResult, int, error) {
	r, err := solver.MinTimeMultiChip(in.m, chipW, chipH, k, opts(o))
	if err != nil {
		return nil, 0, err
	}
	return &MultiChipResult{Decision: r.Decision, Chips: r.Chips, Chip: r.Chip, Placement: r.Placement},
		r.MinTime, nil
}
