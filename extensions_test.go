package fpga3d

import (
	"strings"
	"testing"
	"time"
)

func TestSolveWithRotationAPI(t *testing.T) {
	in := NewInstance("rot")
	in.AddTask("a", 1, 4, 1)
	in.AddTask("b", 1, 4, 1)
	chip := Chip{W: 4, H: 2, T: 1}
	r, err := SolveWithRotation(in, chip, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	if r.Oriented == nil {
		t.Fatal("no oriented instance")
	}
	// The placement must verify against the oriented instance.
	if err := r.Oriented.VerifyPlacement(r.Placement, chip); err != nil {
		t.Fatal(err)
	}
	tasks := r.Oriented.Tasks()
	if tasks[0].W != 4 || tasks[0].H != 1 {
		t.Fatalf("orientation not applied: %+v", tasks[0])
	}
}

func TestMinimizeChipWithRotationAPI(t *testing.T) {
	in := NewInstance("strips")
	for i := 0; i < 3; i++ {
		in.AddTask("s", 1, 5, 1)
	}
	in.AddTask("t", 5, 1, 1)
	r, rots, err := MinimizeChipWithRotation(in, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Value != 5 {
		t.Fatalf("h = %d (%v), want 5", r.Value, r.Decision)
	}
	if len(rots) != 4 {
		t.Fatalf("rotations = %v", rots)
	}
}

func TestReconfigOverheadAPI(t *testing.T) {
	de := BenchmarkDE()
	loaded, err := de.WithUniformReconfigOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := loaded.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// Longest chain v1→v3→v4→v5 gains 4 cycles of overhead.
	if cp != 10 {
		t.Fatalf("critical path = %d, want 10", cp)
	}
	perTask := make([]int, de.NumTasks())
	perTask[0] = 7
	l2, err := de.WithReconfigOverhead(perTask)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Tasks()[0].Dur; got != 9 {
		t.Fatalf("task 0 duration = %d, want 9", got)
	}
	if _, err := de.WithReconfigOverhead([]int{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWriteSVGAPI(t *testing.T) {
	de := BenchmarkDE()
	res, err := MinimizeChip(de, 14, &Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	chip := Chip{W: res.Value, H: res.Value, T: 14}
	if err := de.WriteSVG(&b, res.Placement, chip); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") || !strings.Contains(b.String(), "v1*") {
		t.Fatal("SVG content wrong")
	}
	if err := de.WriteSVG(&b, nil, chip); err == nil {
		t.Fatal("nil placement accepted")
	}
}

func TestMinimizeChipAreaAPI(t *testing.T) {
	de := BenchmarkDE()
	opt := &Options{TimeLimit: 120 * time.Second}
	r, err := MinimizeChipArea(de, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Area != 768 {
		t.Fatalf("area = %d (%v), want 768", r.Area, r.Decision)
	}
	if r.W*r.H != r.Area {
		t.Fatalf("W×H = %d×%d ≠ area %d", r.W, r.H, r.Area)
	}
	if err := de.VerifyPlacement(r.Placement, Chip{W: r.W, H: r.H, T: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestHLSConstructorsAPI(t *testing.T) {
	if got := BenchmarkFIR(8).NumTasks(); got != 15 {
		t.Fatalf("FIR-8 tasks = %d", got)
	}
	if got := BenchmarkBiquad(2).NumTasks(); got != 18 {
		t.Fatalf("Biquad-2 tasks = %d", got)
	}
	if got := BenchmarkFFT(8).NumTasks(); got != 36 {
		t.Fatalf("FFT-8 tasks = %d", got)
	}
	for _, in := range []*Instance{BenchmarkFIR(4), BenchmarkBiquad(1), BenchmarkFFT(4)} {
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultiChipAPI(t *testing.T) {
	de := BenchmarkDE()
	opt := &Options{TimeLimit: 120 * time.Second}
	r, err := MinimizeChips(de, 16, 16, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Chips != 3 {
		t.Fatalf("MinimizeChips = %d (%v), want 3", r.Chips, r.Decision)
	}
	if len(r.Chip) != de.NumTasks() {
		t.Fatalf("chip assignment length %d", len(r.Chip))
	}
	s, err := SolveMultiChip(de, 16, 16, 6, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.Decision != Infeasible {
		t.Fatalf("two chips at T=6: %v, want infeasible", s.Decision)
	}
}

func TestMinTimeExtensionsAPI(t *testing.T) {
	de := BenchmarkDE()
	opt := &Options{TimeLimit: 120 * time.Second}
	r, mt, err := MinimizeTimeMultiChip(de, 16, 16, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || mt != 8 {
		t.Fatalf("k=2 latency = %d (%v), want 8", mt, r.Decision)
	}
	rr, rots, err := MinimizeTimeWithRotation(de, 32, 32, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Decision != Feasible || rr.Value != 6 || len(rots) != de.NumTasks() {
		t.Fatalf("rotation latency = %d (%v)", rr.Value, rr.Decision)
	}
}
