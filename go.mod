module fpga3d

go 1.22
