package bench

import (
	"fmt"

	"fpga3d/internal/model"
)

// This file provides scalable HLS-style workload families in the spirit
// of the paper's DE benchmark: dataflow graphs of classic signal
// processing kernels mapped onto the same two-module library
// (16×16-cell multiplier, 2 cycles; 16×1-cell ALU, 1 cycle). They are
// structurally faithful kernels (FIR tap-and-tree, direct-form-II
// biquad cascade, radix-2 FFT butterflies) used for scalability
// experiments beyond the paper's evaluation.

func hlsMul(name string) model.Task { return model.Task{Name: name, W: 16, H: 16, Dur: 2} }
func hlsALU(name string) model.Task { return model.Task{Name: name, W: 16, H: 1, Dur: 1} }

// FIR returns the dataflow graph of an n-tap FIR filter: n coefficient
// multiplications feeding a balanced binary adder tree (n−1 additions).
// n must be at least 2.
func FIR(taps int) *model.Instance {
	if taps < 2 {
		panic(fmt.Sprintf("bench: FIR needs at least 2 taps, got %d", taps))
	}
	in := &model.Instance{Name: fmt.Sprintf("FIR-%d", taps)}
	// Layer 0: the tap products.
	level := make([]int, 0, taps)
	for i := 0; i < taps; i++ {
		in.Tasks = append(in.Tasks, hlsMul(fmt.Sprintf("m%d", i)))
		level = append(level, len(in.Tasks)-1)
	}
	// Adder tree, pairing neighbors until one value remains.
	adders := 0
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			in.Tasks = append(in.Tasks, hlsALU(fmt.Sprintf("a%d", adders)))
			adders++
			sum := len(in.Tasks) - 1
			in.Prec = append(in.Prec,
				model.Arc{From: level[i], To: sum},
				model.Arc{From: level[i+1], To: sum})
			next = append(next, sum)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return in
}

// Biquad returns a cascade of k direct-form-II biquad IIR sections.
// Each section computes
//
//	w = x + a1·w1 + a2·w2     (2 multiplications, 2 additions)
//	y = b0·w + b1·w1 + b2·w2  (3 multiplications, 2 additions)
//
// and the section output y feeds the next section's input addition.
// k must be at least 1.
func Biquad(sections int) *model.Instance {
	if sections < 1 {
		panic(fmt.Sprintf("bench: Biquad needs at least 1 section, got %d", sections))
	}
	in := &model.Instance{Name: fmt.Sprintf("Biquad-%d", sections)}
	add := func(t model.Task) int {
		in.Tasks = append(in.Tasks, t)
		return len(in.Tasks) - 1
	}
	arc := func(from, to int) { in.Prec = append(in.Prec, model.Arc{From: from, To: to}) }

	prevOut := -1
	for s := 0; s < sections; s++ {
		p := func(op string) string { return fmt.Sprintf("s%d.%s", s, op) }
		// Feedback path: w = x + a1·w1 + a2·w2. The delayed values w1,
		// w2 are registers, not tasks.
		ma1 := add(hlsMul(p("a1*")))
		ma2 := add(hlsMul(p("a2*")))
		s1 := add(hlsALU(p("+fb1")))
		s2 := add(hlsALU(p("+fb2")))
		arc(ma1, s1)
		if prevOut >= 0 {
			arc(prevOut, s1) // x of this section is the previous y
		}
		arc(s1, s2)
		arc(ma2, s2)
		// Forward path: y = b0·w + b1·w1 + b2·w2.
		mb0 := add(hlsMul(p("b0*")))
		arc(s2, mb0)
		mb1 := add(hlsMul(p("b1*")))
		mb2 := add(hlsMul(p("b2*")))
		f1 := add(hlsALU(p("+fw1")))
		f2 := add(hlsALU(p("+fw2")))
		arc(mb0, f1)
		arc(mb1, f1)
		arc(f1, f2)
		arc(mb2, f2)
		prevOut = f2
	}
	return in
}

// FFT returns the dataflow graph of an n-point radix-2
// decimation-in-time FFT: log2(n) stages of n/2 butterflies. Each
// butterfly multiplies one input by a twiddle factor (1 multiplication)
// and produces a sum and a difference (2 ALU operations); its outputs
// feed the butterflies of the next stage with the standard wiring.
// n must be a power of two, at least 2.
func FFT(points int) *model.Instance {
	if points < 2 || points&(points-1) != 0 {
		panic(fmt.Sprintf("bench: FFT needs a power-of-two size ≥ 2, got %d", points))
	}
	in := &model.Instance{Name: fmt.Sprintf("FFT-%d", points)}
	add := func(t model.Task) int {
		in.Tasks = append(in.Tasks, t)
		return len(in.Tasks) - 1
	}
	arc := func(from, to int) { in.Prec = append(in.Prec, model.Arc{From: from, To: to}) }

	// producer[i] is the task index that produced signal line i in the
	// previous stage (-1 for primary inputs).
	producer := make([]int, points)
	for i := range producer {
		producer[i] = -1
	}
	for stage, span := 0, 1; span < points; stage, span = stage+1, span*2 {
		next := make([]int, points)
		for group := 0; group < points; group += 2 * span {
			for k := 0; k < span; k++ {
				lo, hi := group+k, group+k+span
				name := fmt.Sprintf("st%d.b%d", stage, lo)
				tw := add(hlsMul(name + "*"))
				if producer[hi] >= 0 {
					arc(producer[hi], tw)
				}
				sum := add(hlsALU(name + "+"))
				diff := add(hlsALU(name + "-"))
				arc(tw, sum)
				arc(tw, diff)
				if producer[lo] >= 0 {
					arc(producer[lo], sum)
					arc(producer[lo], diff)
				}
				next[lo], next[hi] = sum, diff
			}
		}
		producer = next
	}
	return in
}
