package bench

import "testing"

func TestFIRStructure(t *testing.T) {
	for _, taps := range []int{2, 3, 4, 8, 16} {
		in := FIR(taps)
		if err := in.Validate(); err != nil {
			t.Fatalf("FIR(%d): %v", taps, err)
		}
		if in.N() != 2*taps-1 {
			t.Fatalf("FIR(%d) has %d tasks, want %d", taps, in.N(), 2*taps-1)
		}
		muls := 0
		for _, task := range in.Tasks {
			if task.W == 16 && task.H == 16 {
				muls++
			}
		}
		if muls != taps {
			t.Fatalf("FIR(%d) has %d multipliers", taps, muls)
		}
		o, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		// Multiplier (2 cycles) plus ⌈log2(taps)⌉ tree levels.
		depth := 0
		for 1<<depth < taps {
			depth++
		}
		if want := 2 + depth; o.CriticalPath() != want {
			t.Fatalf("FIR(%d) critical path = %d, want %d", taps, o.CriticalPath(), want)
		}
	}
}

func TestFIRPanicsOnTinyTaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FIR(1) did not panic")
		}
	}()
	FIR(1)
}

func TestBiquadStructure(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		in := Biquad(k)
		if err := in.Validate(); err != nil {
			t.Fatalf("Biquad(%d): %v", k, err)
		}
		if in.N() != 9*k {
			t.Fatalf("Biquad(%d) has %d tasks, want %d", k, in.N(), 9*k)
		}
		o, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		// First section: a1* (2) → +fb1 (1) → +fb2 (1) → b0* (2) →
		// +fw1 (1) → +fw2 (1) = 8 cycles. Each further section appends
		// +fb1 → +fb2 → b0* → +fw1 → +fw2 = 6 cycles (its a1*
		// multiplies a register value and runs off the critical path).
		if want := 6*k + 2; o.CriticalPath() != want {
			t.Fatalf("Biquad(%d) critical path = %d, want %d", k, o.CriticalPath(), want)
		}
	}
}

func TestBiquadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Biquad(0) did not panic")
		}
	}()
	Biquad(0)
}

func TestFFTStructure(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		in := FFT(n)
		if err := in.Validate(); err != nil {
			t.Fatalf("FFT(%d): %v", n, err)
		}
		// log2(n) stages × n/2 butterflies × 3 ops.
		stages := 0
		for 1<<stages < n {
			stages++
		}
		if want := stages * (n / 2) * 3; in.N() != want {
			t.Fatalf("FFT(%d) has %d tasks, want %d", n, in.N(), want)
		}
		o, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		// Each stage adds twiddle (2) + add (1); stages chain.
		if want := 3 * stages; o.CriticalPath() != want {
			t.Fatalf("FFT(%d) critical path = %d, want %d", n, o.CriticalPath(), want)
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d) did not panic", n)
				}
			}()
			FFT(n)
		}()
	}
}
