// Package bench defines the two benchmark instances of the paper's
// evaluation (Section 5) — the DE differential-equation benchmark and
// the H.261 video-codec benchmark — plus a random instance generator
// used by the test suite.
package bench

import (
	"math/rand"

	"fpga3d/internal/model"
)

// DE returns the differential-equation benchmark of Section 5.1: the
// 11-node HAL dataflow graph (Figure 2) with two module types for a
// 16-bit word length:
//
//	multiplier  16×16 cells, 2 clock cycles (v1, v2, v3, v6, v7, v8)
//	ALU         16×1 cells,  1 clock cycle  (v4, v5 SUB; v9, v10 ADD; v11 COMP)
//
// The dependency arcs follow the classic diffeq dataflow:
// v1,v2 → v3 → v4 → v5, v6 → v7 → v5, v8 → v9, v10 → v11.
// The longest path is v1→v3→v4→v5 with 2+2+1+1 = 6 cycles, matching the
// paper's statement that no schedule faster than 6 exists.
func DE() *model.Instance {
	mul := func(name string) model.Task { return model.Task{Name: name, W: 16, H: 16, Dur: 2} }
	alu := func(name string) model.Task { return model.Task{Name: name, W: 16, H: 1, Dur: 1} }
	in := &model.Instance{
		Name: "DE",
		Tasks: []model.Task{
			mul("v1*"),  // 0: 3*x
			mul("v2*"),  // 1: u*dx
			mul("v3*"),  // 2: v1*v2
			alu("v4-"),  // 3: u - v3
			alu("v5-"),  // 4: v4 - v7
			mul("v6*"),  // 5: 3*y
			mul("v7*"),  // 6: dx*v6
			mul("v8*"),  // 7: u*dx
			alu("v9+"),  // 8: y + v8
			alu("v10+"), // 9: x + dx
			alu("v11<"), // 10: v10 < a
		},
		Prec: []model.Arc{
			{From: 0, To: 2},  // v1 → v3
			{From: 1, To: 2},  // v2 → v3
			{From: 2, To: 3},  // v3 → v4
			{From: 3, To: 4},  // v4 → v5
			{From: 5, To: 6},  // v6 → v7
			{From: 6, To: 4},  // v7 → v5
			{From: 7, To: 8},  // v8 → v9
			{From: 9, To: 10}, // v10 → v11
		},
	}
	return in
}

// VideoCodec returns the H.261 hybrid coder/decoder benchmark of
// Section 5.2 (Figures 8 and 9). The module library is the paper's:
//
//	PUM  (processor core)        25×25 cells
//	BMM  (block matching)        64×64 cells
//	DCTM (DCT/IDCT)              16×16 cells
//
// The paper does not list the individual task durations of its problem
// graph; this reconstruction follows the coder/decoder structure of
// Figure 8 with durations chosen so that the dependency critical path is
// 59 cycles — the paper's optimum, which it attributes to the data
// dependencies ("for this value, 59 is the smallest latency possible due
// to the data dependencies"). The minimal chip of 64×64 is forced by the
// BMM either way. See DESIGN.md §5 for the substitution rationale.
func VideoCodec() *model.Instance {
	pum := func(name string, dur int) model.Task { return model.Task{Name: name, W: 25, H: 25, Dur: dur} }
	bmm := func(name string, dur int) model.Task { return model.Task{Name: name, W: 64, H: 64, Dur: dur} }
	dctm := func(name string, dur int) model.Task { return model.Task{Name: name, W: 16, H: 16, Dur: dur} }
	in := &model.Instance{
		Name: "VideoCodec",
		Tasks: []model.Task{
			// Coder.
			bmm("ME", 21),   // 0: motion estimation (block matching)
			pum("MC", 6),    // 1: motion compensation
			pum("LF", 5),    // 2: loop filter
			pum("DIFF", 2),  // 3: prediction error a[i]-h[i]
			dctm("DCT", 8),  // 4: forward DCT
			pum("Q", 2),     // 5: quantizer
			pum("RLC", 4),   // 6: run-length coder
			pum("IQ", 2),    // 7: inverse quantizer
			dctm("IDCT", 8), // 8: inverse DCT
			pum("REC", 5),   // 9: reconstruction (+, frame memory)
			// Decoder.
			pum("RLD", 3),    // 10: run-length decoder
			pum("IQD", 2),    // 11: inverse quantizer
			dctm("IDCTD", 8), // 12: inverse DCT
			pum("RECD", 4),   // 13: reconstruction
			pum("MCD", 6),    // 14: motion compensation
			pum("LFD", 5),    // 15: loop filter
		},
		Prec: []model.Arc{
			// Coder chain: ME → MC → LF → DIFF → DCT → Q → {RLC, IQ};
			// reconstruction path IQ → IDCT → REC, with MC feeding REC.
			{From: 0, To: 1},
			{From: 1, To: 2},
			{From: 2, To: 3},
			{From: 3, To: 4},
			{From: 4, To: 5},
			{From: 5, To: 6},
			{From: 5, To: 7},
			{From: 7, To: 8},
			{From: 8, To: 9},
			{From: 1, To: 9},
			// Decoder chain: RLD → IQD → IDCTD → RECD; MCD → LFD → RECD.
			{From: 10, To: 11},
			{From: 11, To: 12},
			{From: 12, To: 13},
			{From: 14, To: 15},
			{From: 15, To: 13},
		},
	}
	return in
}

// Random generates a reproducible random instance for property tests:
// n tasks with spatial extents in [1, maxSize], durations in [1, maxDur],
// and each forward pair (u < v) becoming a precedence arc with
// probability pArc.
func Random(rng *rand.Rand, n, maxSize, maxDur int, pArc float64) *model.Instance {
	in := &model.Instance{Name: "random"}
	for i := 0; i < n; i++ {
		in.Tasks = append(in.Tasks, model.Task{
			W:   1 + rng.Intn(maxSize),
			H:   1 + rng.Intn(maxSize),
			Dur: 1 + rng.Intn(maxDur),
		})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < pArc {
				in.Prec = append(in.Prec, model.Arc{From: u, To: v})
			}
		}
	}
	return in
}
