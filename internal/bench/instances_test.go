package bench

import (
	"math/rand"
	"testing"
)

func TestDEStructure(t *testing.T) {
	de := DE()
	if err := de.Validate(); err != nil {
		t.Fatal(err)
	}
	if de.N() != 11 {
		t.Fatalf("DE has %d tasks, want 11", de.N())
	}
	muls, alus := 0, 0
	for _, task := range de.Tasks {
		switch {
		case task.W == 16 && task.H == 16 && task.Dur == 2:
			muls++
		case task.W == 16 && task.H == 1 && task.Dur == 1:
			alus++
		default:
			t.Fatalf("unexpected module geometry %+v", task)
		}
	}
	if muls != 6 || alus != 5 {
		t.Fatalf("DE has %d multipliers and %d ALUs, want 6 and 5", muls, alus)
	}
	o, err := de.Order()
	if err != nil {
		t.Fatal(err)
	}
	// "As the longest path in the graph has length 6, there does not
	// exist any faster schedule."
	if o.CriticalPath() != 6 {
		t.Fatalf("DE critical path = %d, want 6", o.CriticalPath())
	}
}

func TestVideoCodecStructure(t *testing.T) {
	vc := VideoCodec()
	if err := vc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Module library of the paper: PUM 25×25, BMM 64×64, DCTM 16×16.
	counts := map[[2]int]int{}
	for _, task := range vc.Tasks {
		counts[[2]int{task.W, task.H}]++
	}
	if counts[[2]int{64, 64}] != 1 {
		t.Fatalf("want exactly one BMM, got %d", counts[[2]int{64, 64}])
	}
	if counts[[2]int{16, 16}] != 3 {
		t.Fatalf("want three DCTM instances, got %d", counts[[2]int{16, 16}])
	}
	if counts[[2]int{25, 25}] != 12 {
		t.Fatalf("want twelve PUM instances, got %d", counts[[2]int{25, 25}])
	}
	o, err := vc.Order()
	if err != nil {
		t.Fatal(err)
	}
	// The reconstruction pins the dependency critical path to the
	// paper's optimal latency.
	if o.CriticalPath() != 59 {
		t.Fatalf("codec critical path = %d, want 59", o.CriticalPath())
	}
}

func TestRandomGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := Random(rng, 6, 4, 5, 0.5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.N() != 6 {
		t.Fatalf("n = %d", in.N())
	}
	for _, task := range in.Tasks {
		if task.W < 1 || task.W > 4 || task.H < 1 || task.H > 4 || task.Dur < 1 || task.Dur > 5 {
			t.Fatalf("task out of range: %+v", task)
		}
	}
	// Same seed → same instance.
	rng2 := rand.New(rand.NewSource(7))
	in2 := Random(rng2, 6, 4, 5, 0.5)
	for i := range in.Tasks {
		if in.Tasks[i] != in2.Tasks[i] {
			t.Fatal("generator not reproducible")
		}
	}
	if len(in.Prec) != len(in2.Prec) {
		t.Fatal("generator not reproducible (arcs)")
	}
	// Arc probability 0 → no arcs.
	if got := Random(rng, 5, 3, 3, 0); len(got.Prec) != 0 {
		t.Fatal("pArc=0 produced arcs")
	}
}

func TestRandomLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		in := RandomLayered(rng, 1+rng.Intn(4), 3, 3, 3, 0.4)
		if err := in.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	// Structure: with ≥2 layers every non-first-layer node has a
	// predecessor.
	in := RandomLayered(rand.New(rand.NewSource(3)), 3, 3, 2, 2, 0.0)
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	// The forced connectivity arcs mean at least one chain spans all
	// three layers: the critical path covers ≥ 3 cycles.
	if o.CriticalPath() < 3 {
		t.Fatalf("critical path = %d, want ≥ 3", o.CriticalPath())
	}
}

func TestRandomSeriesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(8)
		in := RandomSeriesParallel(rng, n, 3, 3)
		if err := in.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if in.N() != n {
			t.Fatalf("n = %d, want %d", in.N(), n)
		}
	}
}
