package bench

import (
	"math/rand"

	"fpga3d/internal/model"
)

// Additional random instance families for the test suite: layered DAGs
// (the shape of synthesis dataflow graphs) and series-parallel DAGs
// (the shape of structured task graphs). Both produce more realistic
// precedence structure than the uniform pair sampling of Random.

// RandomLayered generates a layered DAG instance: tasks are arranged in
// layers of random width, and every arc connects consecutive layers.
func RandomLayered(rng *rand.Rand, layers, maxWidth, maxSize, maxDur int, pArc float64) *model.Instance {
	in := &model.Instance{Name: "layered"}
	var prev []int
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(maxWidth)
		cur := make([]int, 0, width)
		for i := 0; i < width; i++ {
			in.Tasks = append(in.Tasks, model.Task{
				W:   1 + rng.Intn(maxSize),
				H:   1 + rng.Intn(maxSize),
				Dur: 1 + rng.Intn(maxDur),
			})
			cur = append(cur, len(in.Tasks)-1)
		}
		for _, u := range prev {
			for _, v := range cur {
				if rng.Float64() < pArc {
					in.Prec = append(in.Prec, model.Arc{From: u, To: v})
				}
			}
		}
		// Guarantee connectivity between layers: every node of the new
		// layer gets at least one predecessor from the previous layer.
		if len(prev) > 0 {
			for _, v := range cur {
				has := false
				for _, a := range in.Prec {
					if a.To == v {
						has = true
						break
					}
				}
				if !has {
					in.Prec = append(in.Prec, model.Arc{From: prev[rng.Intn(len(prev))], To: v})
				}
			}
		}
		prev = cur
	}
	return in
}

// RandomSeriesParallel generates a series-parallel precedence structure
// over n tasks by recursive decomposition: a block is either a single
// task, a series composition (all of the first part before all sources
// of the second), or a parallel composition (no relation).
func RandomSeriesParallel(rng *rand.Rand, n, maxSize, maxDur int) *model.Instance {
	in := &model.Instance{Name: "series-parallel"}
	for i := 0; i < n; i++ {
		in.Tasks = append(in.Tasks, model.Task{
			W:   1 + rng.Intn(maxSize),
			H:   1 + rng.Intn(maxSize),
			Dur: 1 + rng.Intn(maxDur),
		})
	}
	// build returns the sinks and sources of the block over tasks
	// [lo, hi).
	var build func(lo, hi int) (sources, sinks []int)
	build = func(lo, hi int) ([]int, []int) {
		if hi-lo == 1 {
			return []int{lo}, []int{lo}
		}
		mid := lo + 1 + rng.Intn(hi-lo-1)
		s1, k1 := build(lo, mid)
		s2, k2 := build(mid, hi)
		if rng.Intn(2) == 0 {
			// Series: sinks of the first block before sources of the
			// second.
			for _, u := range k1 {
				for _, v := range s2 {
					in.Prec = append(in.Prec, model.Arc{From: u, To: v})
				}
			}
			return s1, k2
		}
		// Parallel.
		return append(append([]int{}, s1...), s2...), append(append([]int{}, k1...), k2...)
	}
	build(0, n)
	return in
}
