package bounds

import (
	"fpga3d/internal/graph"
	"fpga3d/internal/model"
)

// ceilDiv returns ⌈a / b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// OPPInfeasible tries the paper's stage-1 bounds to disprove the
// existence of a feasible packing of in inside c under order o. When it
// returns true the instance is provably infeasible and the returned
// string names the certifying bound. A false result is inconclusive.
func OPPInfeasible(in *model.Instance, c model.Container, o *model.Order) (bool, string) {
	if !c.Fits(in) {
		return true, "task exceeds container"
	}
	if o.CriticalPath() > c.T {
		return true, "critical path"
	}
	if in.Volume() > c.Volume() {
		return true, "volume"
	}
	if t := SerializationMinT(in, c.W, c.H, o); t > c.T {
		return true, "serialization clique"
	}
	if energeticInfeasible(in, c.W, c.H, c.T, o) {
		return true, "energetic reasoning"
	}
	sizes := [][]int{make([]int, in.N()), make([]int, in.N()), make([]int, in.N())}
	for b, t := range in.Tasks {
		sizes[0][b], sizes[1][b], sizes[2][b] = t.W, t.H, t.Dur
	}
	if dffInfeasible([]int{c.W, c.H, c.T}, sizes, 4096) {
		return true, "dual feasible functions"
	}
	return false, ""
}

// MinTimeLB returns a lower bound on the minimum makespan (SPP) of in on
// a W×H chip under order o.
func MinTimeLB(in *model.Instance, W, H int, o *model.Order) int {
	lb := o.CriticalPath()
	for _, t := range in.Tasks {
		if t.Dur > lb {
			lb = t.Dur
		}
	}
	if v := ceilDiv(in.Volume(), W*H); v > lb {
		lb = v
	}
	if s := SerializationMinT(in, W, H, o); s > lb {
		lb = s
	}
	// Energetic reasoning: find the largest T that it refutes.
	// Feasibility of the energetic test is monotone in T (windows only
	// loosen), so binary search applies.
	lo, hi := lb, lb+in.TotalDuration()+1
	if energeticInfeasible(in, W, H, lo, o) {
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if energeticInfeasible(in, W, H, mid, o) {
				lo = mid
			} else {
				hi = mid
			}
		}
		lb = lo + 1
	}
	return lb
}

// MinBaseLB returns a lower bound on the minimum square chip side h for
// packing in within time T under order o.
func MinBaseLB(in *model.Instance, T int, o *model.Order) int {
	lb := in.MaxW()
	if h := in.MaxH(); h > lb {
		lb = h
	}
	// Area bound: h² · T must cover the volume.
	vol := in.Volume()
	for lb*lb*T < vol {
		lb++
	}
	// Forced-concurrency bound: a pair that cannot be sequenced within T
	// in either direction must coexist, so it must fit side by side in x
	// or in y.
	n := in.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if o.Comparable(u, v) {
				continue
			}
			tu, tv := in.Tasks[u], in.Tasks[v]
			uThenV := o.EST(u)+tu.Dur+tv.Dur+o.Tail(v) <= T
			vThenU := o.EST(v)+tv.Dur+tu.Dur+o.Tail(u) <= T
			if uThenV || vThenU {
				continue
			}
			need := tu.W + tv.W
			if alt := tu.H + tv.H; alt < need {
				need = alt
			}
			if need > lb {
				lb = need
			}
		}
	}
	return lb
}

// SerializationMinT computes a makespan lower bound from spatial
// incompatibility: two modules that fit side by side in neither spatial
// dimension can never run concurrently, so any clique C of such pairs is
// totally ordered in time and forces
//
//	T ≥ Σ_{v∈C} dur(v) + min_{v∈C} EST(v) + min_{v∈C} tail(v).
//
// The bound maximizes this expression over the maximal cliques of the
// conflict graph (plus greedy shrinkings, since dropping a member can
// raise the min head/tail).
func SerializationMinT(in *model.Instance, W, H int, o *model.Order) int {
	n := in.N()
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			tu, tv := in.Tasks[u], in.Tasks[v]
			if tu.W+tv.W > W && tu.H+tv.H > H {
				g.AddEdge(u, v)
			}
		}
	}
	best := 0
	evaluate := func(c graph.Set) int {
		sum, minHead, minTail := 0, int(^uint(0)>>1), int(^uint(0)>>1)
		c.ForEach(func(v int) {
			sum += in.Tasks[v].Dur
			if h := o.EST(v); h < minHead {
				minHead = h
			}
			if t := o.Tail(v); t < minTail {
				minTail = t
			}
		})
		if c.Empty() {
			return 0
		}
		return sum + minHead + minTail
	}
	maximalCliques(g, func(c graph.Set) {
		cur := c.Clone()
		for {
			val := evaluate(cur)
			if val > best {
				best = val
			}
			// Greedy shrink: try removing one member to raise the bound.
			improvedBy, improvedVal := -1, val
			cur.ForEach(func(v int) {
				cur.Remove(v)
				if nv := evaluate(cur); nv > improvedVal {
					improvedBy, improvedVal = v, nv
				}
				cur.Add(v)
			})
			if improvedBy < 0 {
				break
			}
			cur.Remove(improvedBy)
		}
	})
	return best
}

// maximalCliques runs Bron–Kerbosch with pivoting, calling emit for each
// maximal clique. Intended for the tiny conflict graphs of module sets.
func maximalCliques(g *graph.Undirected, emit func(graph.Set)) {
	n := g.N()
	r := graph.NewSet(n)
	p := graph.NewSet(n)
	x := graph.NewSet(n)
	for v := 0; v < n; v++ {
		p.Add(v)
	}
	var bk func(r, p, x graph.Set)
	bk = func(r, p, x graph.Set) {
		if p.Empty() && x.Empty() {
			emit(r)
			return
		}
		// Pivot: vertex of p ∪ x with most neighbors in p.
		pivot, bestDeg := -1, -1
		consider := func(v int) {
			tmp := g.Neighbors(v).Clone()
			tmp.IntersectWith(p)
			if d := tmp.Count(); d > bestDeg {
				pivot, bestDeg = v, d
			}
		}
		p.ForEach(consider)
		x.ForEach(consider)
		cand := p.Clone()
		if pivot >= 0 {
			cand.SubtractWith(g.Neighbors(pivot))
		}
		cand.ForEach(func(v int) {
			nr := r.Clone()
			nr.Add(v)
			np := p.Clone()
			np.IntersectWith(g.Neighbors(v))
			nx := x.Clone()
			nx.IntersectWith(g.Neighbors(v))
			bk(nr, np, nx)
			p.Remove(v)
			x.Add(v)
		})
	}
	bk(r, p, x)
}
