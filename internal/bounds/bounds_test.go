package bounds

import (
	"math/rand"
	"strings"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/geomsearch"
	"fpga3d/internal/model"
)

func mustOrder(t *testing.T, in *model.Instance) *model.Order {
	t.Helper()
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestBoundsSoundOnFeasible: none of the stage-1 bounds may refute an
// instance the exhaustive oracle proves feasible.
func TestBoundsSoundOnFeasible(t *testing.T) {
	for seed := int64(0); seed < 2500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(4), 3, 3, 0.3)
		c := model.Container{W: 2 + rng.Intn(3), H: 2 + rng.Intn(3), T: 2 + rng.Intn(4)}
		if !c.Fits(in) {
			continue
		}
		o := mustOrder(t, in)
		res := geomsearch.Solve(in, c, o, geomsearch.Options{NodeLimit: 2_000_000})
		if res.Status != geomsearch.Feasible {
			continue
		}
		if bad, why := OPPInfeasible(in, c, o); bad {
			t.Fatalf("seed %d: bound %q refuted a feasible instance %+v in %v", seed, why, in, c)
		}
	}
}

// TestMinTimeLBSound: the makespan lower bound never exceeds the true
// optimum (established by ascending oracle probes).
func TestMinTimeLBSound(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.4)
		W, H := 3, 3
		if in.MaxW() > W || in.MaxH() > H {
			continue
		}
		o := mustOrder(t, in)
		lb := MinTimeLB(in, W, H, o)
		// Find the true optimum with the oracle.
		opt := -1
		for T := o.CriticalPath(); T <= in.TotalDuration(); T++ {
			res := geomsearch.Solve(in, model.Container{W: W, H: H, T: T}, o,
				geomsearch.Options{NodeLimit: 2_000_000})
			if res.Status == geomsearch.Feasible {
				opt = T
				break
			}
			if res.Status != geomsearch.Infeasible {
				opt = -1
				break
			}
		}
		if opt < 0 {
			continue
		}
		if lb > opt {
			t.Fatalf("seed %d: MinTimeLB %d exceeds optimum %d for %+v", seed, lb, opt, in)
		}
	}
}

func TestMinTimeLBOnDE(t *testing.T) {
	de := bench.DE()
	o := mustOrder(t, de)
	// h ≤ 31: multipliers serialize (12 cycles) and each has an ALU
	// successor: at least 13. On 16×16 even the SUB chain serializes
	// against the multipliers: at least 14.
	if lb := MinTimeLB(de, 17, 17, o); lb < 13 {
		t.Errorf("MinTimeLB(17x17) = %d, want ≥ 13", lb)
	}
	if lb := MinTimeLB(de, 16, 16, o); lb < 14 {
		t.Errorf("MinTimeLB(16x16) = %d, want ≥ 14", lb)
	}
	if lb := MinTimeLB(de, 32, 32, o); lb < 6 || lb > 6 {
		t.Errorf("MinTimeLB(32x32) = %d, want 6 (critical path)", lb)
	}
}

func TestSerializationMinTOnDE(t *testing.T) {
	de := bench.DE()
	o := mustOrder(t, de)
	// At 17×17 the six multipliers pairwise conflict: 12 cycles plus the
	// shortest successor tail of 1.
	if got := SerializationMinT(de, 17, 17, o); got != 13 {
		t.Errorf("SerializationMinT(17x17) = %d, want 13", got)
	}
	// At 32×32 multipliers pair up: no conflict clique beyond single
	// tasks; the bound cannot exceed the critical path.
	if got := SerializationMinT(de, 32, 32, o); got > 6 {
		t.Errorf("SerializationMinT(32x32) = %d, want ≤ 6", got)
	}
}

func TestMinBaseLBOnDE(t *testing.T) {
	de := bench.DE()
	o := mustOrder(t, de)
	// At T = 6 two multipliers can never be sequenced (2+2+tails > 6):
	// they must coexist, forcing 32 cells in some direction.
	if got := MinBaseLB(de, 6, o); got != 32 {
		t.Errorf("MinBaseLB(T=6) = %d, want 32", got)
	}
	// At T = 14 everything serializes: only the largest module counts.
	if got := MinBaseLB(de, 14, o); got != 16 {
		t.Errorf("MinBaseLB(T=14) = %d, want 16", got)
	}
}

func TestOPPInfeasibleReasons(t *testing.T) {
	de := bench.DE()
	o := mustOrder(t, de)
	cases := []struct {
		c model.Container
	}{
		{model.Container{W: 15, H: 15, T: 100}}, // multiplier does not fit
		{model.Container{W: 32, H: 32, T: 5}},   // below critical path
		{model.Container{W: 16, H: 16, T: 13}},  // serialization
	}
	for _, tc := range cases {
		bad, why := OPPInfeasible(de, tc.c, o)
		if !bad {
			t.Errorf("%v not refuted", tc.c)
		} else if why == "" {
			t.Errorf("%v refuted without a reason", tc.c)
		}
	}
	if bad, why := OPPInfeasible(de, model.Container{W: 32, H: 32, T: 6}, o); bad {
		t.Errorf("feasible Table-1 case refuted by %q", why)
	}
}

func TestEnergeticWindows(t *testing.T) {
	// Chain of two tasks with durations 3 and 3 on a 1×1 chip: horizon 5
	// is refuted by the window test inside energetic reasoning.
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 3}, {W: 1, H: 1, Dur: 3}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	o := mustOrder(t, in)
	if !energeticInfeasible(in, 1, 1, 5, o) {
		t.Fatal("T=5 not refuted")
	}
	if energeticInfeasible(in, 1, 1, 6, o) {
		t.Fatal("T=6 wrongly refuted")
	}
}

func TestEnergeticParallelDemand(t *testing.T) {
	// Two incomparable 2×2×2 tasks forced concurrent in a tight horizon
	// on a 2×2 chip: total energy 16 exceeds 2·2·2 = 8 at T=2… they
	// cannot both run. With T=2 both windows are [0,2].
	in := &model.Instance{
		Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}},
	}
	o := mustOrder(t, in)
	if !energeticInfeasible(in, 2, 2, 2, o) {
		t.Fatal("over-demand not refuted")
	}
	if energeticInfeasible(in, 2, 2, 4, o) {
		t.Fatal("sequential arrangement wrongly refuted")
	}
}

// TestEnergeticMonotone: once feasible for some T, the energetic test
// stays feasible for larger T (the property the binary search in
// MinTimeLB relies on).
func TestEnergeticMonotone(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(4), 3, 4, 0.4)
		o := mustOrder(t, in)
		prevInfeasible := true
		for T := 1; T <= in.TotalDuration()+2; T++ {
			inf := energeticInfeasible(in, 3, 3, T, o)
			if inf && !prevInfeasible {
				t.Fatalf("seed %d: energetic test not monotone at T=%d", seed, T)
			}
			prevInfeasible = inf
		}
		if prevInfeasible {
			t.Fatalf("seed %d: serialized horizon still refuted", seed)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	for _, tc := range [][3]int{{7, 2, 4}, {8, 2, 4}, {1, 3, 1}, {0, 5, 0}} {
		if got := ceilDiv(tc[0], tc[1]); got != tc[2] {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", tc[0], tc[1], got, tc[2])
		}
	}
}

func TestMinTimeReport(t *testing.T) {
	de := bench.DE()
	o := mustOrder(t, de)
	r := MinTimeReport(de, 17, 17, o)
	if r.Best < 13 || r.Serialization != 13 || r.CriticalPath != 6 {
		t.Fatalf("report = %+v", r)
	}
	// Best must agree with MinTimeLB.
	if lb := MinTimeLB(de, 17, 17, o); r.Best != lb {
		t.Fatalf("report best %d != MinTimeLB %d", r.Best, lb)
	}
	s := r.String()
	for _, want := range []string{"critical-path 6", "serialization 13*", "T ≥ 13"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string %q missing %q", s, want)
		}
	}
	// On the big chip the critical path is binding.
	r32 := MinTimeReport(de, 32, 32, o)
	if r32.Best != 6 || !strings.Contains(r32.String(), "critical-path 6*") {
		t.Fatalf("report(32) = %v", r32.String())
	}
}

func TestMinTimeReportConsistency(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(4), 3, 4, 0.4)
		o := mustOrder(t, in)
		rep := MinTimeReport(in, 4, 4, o)
		if lb := MinTimeLB(in, 4, 4, o); rep.Best != lb {
			t.Fatalf("seed %d: report %d vs MinTimeLB %d", seed, rep.Best, lb)
		}
	}
}
