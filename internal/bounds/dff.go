// Package bounds implements the "fast and good classes of lower bounds"
// of stage 1 of the paper's framework (Section 3.1): volume and
// dual-feasible-function (conservative scale) bounds in the style of
// Fekete–Schepers, energetic reasoning over precedence-induced time
// windows, the dependency critical path, and a serialization bound from
// cliques of spatially incompatible modules.
package bounds

// A dual feasible function (DFF) maps item sizes w ∈ [0, W] to scaled
// sizes f(w) ∈ [0, F] such that Σ f(w_i) ≤ F whenever Σ w_i ≤ W.
// If a set of d-dimensional boxes packs into a container, then for any
// choice of one DFF per dimension the scaled volumes still satisfy
//
//	Σ_b Π_d f_d(w_d(b)) ≤ Π_d F_d
//
// (conservative scales, Fekete–Schepers). Violation proves infeasibility.
//
// dff represents one integer DFF together with its scaled capacity.
type dff struct {
	name  string
	scale func(w int) int
	cap   int
}

// identityDFF keeps sizes unchanged. Using it in every dimension yields
// the plain volume bound.
func identityDFF(W int) dff {
	return dff{name: "id", scale: func(w int) int { return w }, cap: W}
}

// thresholdDFF is the classic "push the big items to full size, drop the
// small ones" function with parameter t ≤ W/2:
//
//	f(w) = W  if w > W−t,   f(w) = w  if t ≤ w ≤ W−t,   f(w) = 0  if w < t.
//
// Validity: if Σ w_i ≤ W, at most one item has w > W−t (two would exceed
// W since 2(W−t) ≥ W). If one does, every other item is < t (else the
// total exceeds W), so they scale to 0 and the sum is exactly W.
// Otherwise f(w) ≤ w everywhere.
func thresholdDFF(W, t int) dff {
	return dff{
		name: "thr",
		scale: func(w int) int {
			switch {
			case w > W-t:
				return W
			case w >= t:
				return w
			default:
				return 0
			}
		},
		cap: W,
	}
}

// countingDFF counts items of size ≥ t against the capacity ⌊W/t⌋:
//
//	f(w) = 1 if w ≥ t else 0,   F = ⌊W/t⌋.
//
// Validity: at most ⌊W/t⌋ disjoint intervals of length ≥ t fit in W.
func countingDFF(W, t int) dff {
	return dff{
		name: "cnt",
		scale: func(w int) int {
			if w >= t {
				return 1
			}
			return 0
		},
		cap: W / t,
	}
}

// roundingDFF is the classical Fekete–Schepers rounding function
// u^(k) for integer parameter k ≥ 1, here in integer arithmetic for
// items of size w in a container of size W (normalized x = w/W):
//
//	u(x) = x               if (k+1)·x is integral,
//	u(x) = ⌊(k+1)·x⌋ / k   otherwise,
//
// scaled by k·W so that all values are integers: the scaled capacity is
// k·W. Validity: for Σ x_i ≤ 1, writing (k+1)x_i = a_i + r_i with
// integer a_i and remainder r_i ∈ [0,1), non-integral items contribute
// a_i/k while Σ a_i ≤ (k+1)Σx_i < … — the standard argument; the
// property test in dff_test.go exercises it on thousands of multisets.
func roundingDFF(W, k int) dff {
	return dff{
		name: "rnd",
		scale: func(w int) int {
			num := (k + 1) * w
			if num%W == 0 {
				return k * w
			}
			return (num / W) * W
		},
		cap: k * W,
	}
}

// dffCandidates returns a useful family of DFFs for a dimension with
// capacity W holding items of the given sizes: the identity, threshold
// functions for the distinct item sizes up to W/2 (the validity proof
// of thresholdDFF needs t ≤ W/2), counting functions for every distinct
// item size (valid for any t ≤ W), and the rounding functions u^(1),
// u^(2), u^(3).
func dffCandidates(W int, sizes []int) []dff {
	out := []dff{identityDFF(W)}
	seen := map[int]bool{}
	for _, s := range sizes {
		if s < 1 || s > W || seen[s] {
			continue
		}
		seen[s] = true
		if s <= W/2 {
			out = append(out, thresholdDFF(W, s))
		}
		out = append(out, countingDFF(W, s))
	}
	for k := 1; k <= 3; k++ {
		out = append(out, roundingDFF(W, k))
	}
	return out
}

// dffInfeasible reports whether some combination of one DFF per
// dimension proves that the boxes (sizes[d][b]) cannot pack into the
// container (caps[d]). maxCombos bounds the number of combinations
// tried; 0 means no limit.
func dffInfeasible(caps []int, sizes [][]int, maxCombos int) bool {
	nd := len(caps)
	cands := make([][]dff, nd)
	for d := 0; d < nd; d++ {
		cands[d] = dffCandidates(caps[d], sizes[d])
	}
	pick := make([]int, nd)
	combos := 0
	for {
		if maxCombos > 0 && combos >= maxCombos {
			return false
		}
		combos++
		// Evaluate current combination.
		var capProd int64 = 1
		for d := 0; d < nd; d++ {
			capProd *= int64(cands[d][pick[d]].cap)
		}
		var total int64
		n := len(sizes[0])
		for b := 0; b < n; b++ {
			var v int64 = 1
			for d := 0; d < nd; d++ {
				v *= int64(cands[d][pick[d]].scale(sizes[d][b]))
			}
			total += v
		}
		if total > capProd {
			return true
		}
		// Advance the odometer.
		d := 0
		for d < nd {
			pick[d]++
			if pick[d] < len(cands[d]) {
				break
			}
			pick[d] = 0
			d++
		}
		if d == nd {
			return false
		}
	}
}
