package bounds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDFFProperty checks the defining inequality of every generated
// dual feasible function: whenever a multiset of sizes fits the
// capacity, the scaled sizes fit the scaled capacity.
func TestDFFProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		W := 2 + rng.Intn(30)
		// Random multiset with Σw ≤ W.
		var items []int
		remaining := W
		for remaining > 0 && rng.Intn(4) != 0 {
			w := 1 + rng.Intn(remaining)
			items = append(items, w)
			remaining -= w
		}
		sizes := append([]int(nil), items...)
		for _, d := range dffCandidates(W, sizes) {
			sum := 0
			for _, w := range items {
				v := d.scale(w)
				if v < 0 {
					return false
				}
				sum += v
			}
			if sum > d.cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdDFFShape(t *testing.T) {
	d := thresholdDFF(10, 3)
	cases := map[int]int{0: 0, 1: 0, 2: 0, 3: 3, 5: 5, 7: 7, 8: 10, 10: 10}
	for w, want := range cases {
		if got := d.scale(w); got != want {
			t.Errorf("threshold(10,3)(%d) = %d, want %d", w, got, want)
		}
	}
	if d.cap != 10 {
		t.Errorf("cap = %d", d.cap)
	}
}

func TestCountingDFFShape(t *testing.T) {
	d := countingDFF(10, 3)
	if d.cap != 3 {
		t.Errorf("cap = %d, want 3", d.cap)
	}
	if d.scale(2) != 0 || d.scale(3) != 1 || d.scale(9) != 1 {
		t.Error("counting scale wrong")
	}
}

func TestDFFCandidatesRespectValidityRanges(t *testing.T) {
	// Threshold functions must only appear for t ≤ W/2; counting for any
	// size ≤ W. With a size above W/2 we must get a counting function
	// but no threshold function for it.
	cands := dffCandidates(10, []int{7})
	sawCounting := false
	for _, d := range cands {
		switch d.name {
		case "thr":
			// Only valid thresholds ≤ 5 may exist; with sizes {7} none.
			t.Errorf("threshold DFF generated for size 7 > W/2")
		case "cnt":
			sawCounting = true
			if d.cap != 10/7 {
				t.Errorf("counting cap = %d", d.cap)
			}
		}
	}
	if !sawCounting {
		t.Error("no counting DFF for size 7")
	}
}

func TestDFFInfeasibleDetectsCountingConflict(t *testing.T) {
	// Six 16×16×2 boxes in 47×47×3: at most 2×2×1 = 4 "big slots".
	caps := []int{47, 47, 3}
	sizes := [][]int{
		{16, 16, 16, 16, 16, 16},
		{16, 16, 16, 16, 16, 16},
		{2, 2, 2, 2, 2, 2},
	}
	if !dffInfeasible(caps, sizes, 0) {
		t.Fatal("counting DFF conflict not detected")
	}
	// The same boxes in 48×48×3 fit (3×2 grid): no refutation allowed.
	caps[0], caps[1] = 48, 48
	if dffInfeasible(caps, sizes, 0) {
		t.Fatal("feasible configuration refuted")
	}
}

func TestDFFVolumeBoundSubsumed(t *testing.T) {
	// Identity in every dimension is the plain volume bound.
	caps := []int{4, 4, 4}
	sizes := [][]int{{3, 3}, {3, 3}, {3, 3}} // 2 × 27 = 54 < 64: volume ok
	if dffInfeasible(caps, sizes, 0) == false {
		// But counting with t=3 gives 2 > 1·1·1: must be refuted.
		t.Fatal("two 3-cubes in a 4-cube not refuted")
	}
}

func TestDFFMaxCombos(t *testing.T) {
	caps := []int{47, 47, 3}
	sizes := [][]int{
		{16, 16, 16, 16, 16, 16},
		{16, 16, 16, 16, 16, 16},
		{2, 2, 2, 2, 2, 2},
	}
	// With a budget of a single combination (the identity triple = plain
	// volume bound) the conflict must go unnoticed.
	if dffInfeasible(caps, sizes, 1) {
		t.Fatal("refuted within one combination")
	}
}

// TestRoundingDFFExhaustive proves the DFF property of u^(k) for every
// multiset of item sizes with Σw ≤ W, for all W ≤ 14 and k ≤ 4 — an
// exhaustive check over all integer partitions, not a random sample.
func TestRoundingDFFExhaustive(t *testing.T) {
	for W := 1; W <= 14; W++ {
		for k := 1; k <= 4; k++ {
			d := roundingDFF(W, k)
			// Enumerate partitions of every total ≤ W with parts ≤ W,
			// non-increasing to avoid duplicates.
			var rec func(remaining, maxPart, scaledSum int) bool
			rec = func(remaining, maxPart, scaledSum int) bool {
				if scaledSum > d.cap {
					return false
				}
				for part := 1; part <= maxPart && part <= remaining; part++ {
					if !rec(remaining-part, part, scaledSum+d.scale(part)) {
						return false
					}
				}
				return true
			}
			if !rec(W, W, 0) {
				t.Fatalf("u^(%d) violates the DFF property for W=%d", k, W)
			}
		}
	}
}

func TestRoundingDFFShape(t *testing.T) {
	// W=6, k=1: u(x) = x when 2x integral (w=3, 6), else floor(2x).
	d := roundingDFF(6, 1)
	if d.cap != 6 {
		t.Fatalf("cap = %d", d.cap)
	}
	// w=3: 2·3=6 divisible by 6 → k·w = 3 (scaled: 3 of 6 = 1/2). ✓
	if d.scale(3) != 3 {
		t.Fatalf("scale(3) = %d", d.scale(3))
	}
	// w=4: 2·4=8, 8/6 = 1 → 1·6 = 6 (i.e. the full container: two
	// items of size 4 never coexist).
	if d.scale(4) != 6 {
		t.Fatalf("scale(4) = %d", d.scale(4))
	}
	// w=2: 2·2=4, 4/6 = 0 → 0: items of a third or less vanish at k=1.
	if d.scale(2) != 0 {
		t.Fatalf("scale(2) = %d", d.scale(2))
	}
}
