package bounds

import (
	"sort"

	"fpga3d/internal/model"
)

// energeticInfeasible applies energetic reasoning: every task v must run
// inside its precedence window [EST(v), LFT(v)] = [EST(v), T − tail(v)].
// For any time window [a, b), the minimum spatial area×time that v is
// forced to spend inside [a, b) — the smaller of its left-shifted and
// right-shifted overlaps — summed over all tasks must not exceed the
// chip capacity W·H·(b−a).
func energeticInfeasible(in *model.Instance, W, H, T int, o *model.Order) bool {
	n := in.N()
	type win struct{ est, lft, dur, area int }
	ws := make([]win, n)
	points := map[int]bool{0: true, T: true}
	for v := 0; v < n; v++ {
		t := in.Tasks[v]
		est, lft := o.EST(v), o.LFT(v, T)
		if est+t.Dur > lft {
			return true // the window itself is too tight
		}
		ws[v] = win{est: est, lft: lft, dur: t.Dur, area: t.W * t.H}
		points[est] = true
		points[est+t.Dur] = true
		points[lft] = true
		points[lft-t.Dur] = true
	}
	pts := make([]int, 0, len(points))
	for p := range points {
		if p >= 0 && p <= T {
			pts = append(pts, p)
		}
	}
	sort.Ints(pts)

	capArea := W * H
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			a, b := pts[i], pts[j]
			var demand int64
			for _, w := range ws {
				left := intersectLen(w.est, w.est+w.dur, a, b)
				right := intersectLen(w.lft-w.dur, w.lft, a, b)
				m := left
				if right < m {
					m = right
				}
				demand += int64(m) * int64(w.area)
			}
			if demand > int64(capArea)*int64(b-a) {
				return true
			}
		}
	}
	return false
}

// intersectLen returns the length of [s1, e1) ∩ [s2, e2).
func intersectLen(s1, e1, s2, e2 int) int {
	lo, hi := s1, e1
	if s2 > lo {
		lo = s2
	}
	if e2 < hi {
		hi = e2
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
