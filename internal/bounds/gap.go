package bounds

// Gap returns the relative optimality gap between an incumbent
// makespan and a proven lower bound: (incumbent − lb)/incumbent. It
// is the quantity the anytime tier reports alongside every witness:
// 0 means the incumbent is proven optimal (it meets or beats the
// bound), 1 means the bound says nothing yet. Non-positive incumbents
// (no witness, or the degenerate all-zero-duration makespan) report
// gap 0: there is nothing left to close.
//
// Monotonicity is part of the contract: incumbents only improve
// (decrease) and bounds only tighten (increase) during a run, so the
// gap a run streams is non-increasing and ends at 0 exactly when
// optimality is proven.
func Gap(incumbent, lb int) float64 {
	if incumbent <= 0 || incumbent <= lb {
		return 0
	}
	if lb < 0 {
		lb = 0
	}
	return float64(incumbent-lb) / float64(incumbent)
}

// Gap returns the relative optimality gap of an incumbent makespan
// against the report's best lower bound; see the package-level Gap.
func (r Report) Gap(incumbent int) float64 {
	return Gap(incumbent, r.Best)
}
