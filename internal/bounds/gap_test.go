package bounds

import (
	"math"
	"testing"

	"fpga3d/internal/model"
)

func TestGap(t *testing.T) {
	cases := []struct {
		incumbent, lb int
		want          float64
	}{
		{0, 0, 0},    // no witness yet
		{-1, 5, 0},   // defensive: nonsense incumbent
		{10, 10, 0},  // proven optimal
		{10, 12, 0},  // bound overtook a stale incumbent: still closed
		{10, 5, 0.5}, // halfway
		{10, 0, 1},   // bound says nothing
		{10, -3, 1},  // defensive: negative bound clamps to 0
		{59, 48, (59.0 - 48.0) / 59.0},
	}
	for _, c := range cases {
		if got := Gap(c.incumbent, c.lb); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gap(%d, %d) = %v, want %v", c.incumbent, c.lb, got, c.want)
		}
	}
}

// TestReportGap ties the method to the report's Best component and
// checks monotonicity along a typical refinement trajectory.
func TestReportGap(t *testing.T) {
	in := &model.Instance{
		Name: "gap",
		Tasks: []model.Task{
			{Name: "a", W: 2, H: 2, Dur: 4},
			{Name: "b", W: 2, H: 2, Dur: 3},
		},
		Prec: []model.Arc{{From: 0, To: 1}},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	r := MinTimeReport(in, 4, 4, o)
	if r.Best <= 0 {
		t.Fatalf("report has no bound: %+v", r)
	}
	if g := r.Gap(r.Best); g != 0 {
		t.Fatalf("Gap at the bound itself = %v, want 0", g)
	}
	// Tightening incumbents toward the bound never increases the gap.
	prev := math.Inf(1)
	for inc := r.Best + 5; inc >= r.Best; inc-- {
		g := r.Gap(inc)
		if g > prev {
			t.Fatalf("gap increased while the incumbent improved: %v → %v", prev, g)
		}
		prev = g
	}
	if prev != 0 {
		t.Fatalf("gap at optimum = %v, want 0", prev)
	}
}
