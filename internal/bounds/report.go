package bounds

import (
	"fmt"
	"strings"
	"time"

	"fpga3d/internal/model"
)

// Report breaks a makespan lower bound into its constituent bounds, for
// diagnostics and the experiment write-ups: which of the stage-1 bounds
// is binding for a given chip?
type Report struct {
	CriticalPath  int
	MaxDuration   int
	Volume        int // ⌈volume / (W·H)⌉
	Serialization int
	Energetic     int // largest T refuted, plus one (0 if nothing refuted)
	// Best is the maximum of the components — the value MinTimeLB
	// returns.
	Best int
	// Timings records the wall-clock cost of each component bound —
	// stage-1 effort data for the observability layer (the cheap
	// critical-path/max-duration/volume bounds are timed together).
	Timings ReportTimings
}

// ReportTimings is the per-bound wall-clock breakdown of a Report.
// Durations serialize as integer nanoseconds in JSON traces.
type ReportTimings struct {
	Simple        time.Duration `json:"simple_ns"`        // critical path, max duration, volume
	Serialization time.Duration `json:"serialization_ns"` // clique serialization bound
	Energetic     time.Duration `json:"energetic_ns"`     // energetic-reasoning binary search
	Total         time.Duration `json:"total_ns"`
}

// String renders the report as a one-line summary with the binding
// bound marked.
func (r Report) String() string {
	parts := []struct {
		name  string
		value int
	}{
		{"critical-path", r.CriticalPath},
		{"max-duration", r.MaxDuration},
		{"volume", r.Volume},
		{"serialization", r.Serialization},
		{"energetic", r.Energetic},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T ≥ %d (", r.Best)
	for i, p := range parts {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", p.name, p.value)
		if p.value == r.Best {
			b.WriteString("*")
		}
	}
	b.WriteString(")")
	return b.String()
}

// MinTimeReport computes the per-bound breakdown of the makespan lower
// bound for a W×H chip.
func MinTimeReport(in *model.Instance, W, H int, o *model.Order) Report {
	t0 := time.Now()
	r := Report{CriticalPath: o.CriticalPath()}
	for _, t := range in.Tasks {
		if t.Dur > r.MaxDuration {
			r.MaxDuration = t.Dur
		}
	}
	r.Volume = ceilDiv(in.Volume(), W*H)
	t1 := time.Now()
	r.Timings.Simple = t1.Sub(t0)
	r.Serialization = SerializationMinT(in, W, H, o)
	t2 := time.Now()
	r.Timings.Serialization = t2.Sub(t1)

	// Energetic component, isolated: binary search as in MinTimeLB but
	// starting from 1.
	lo, hi := 0, in.TotalDuration()+o.CriticalPath()+1
	if energeticInfeasible(in, W, H, lo+1, o) {
		lo++
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if energeticInfeasible(in, W, H, mid, o) {
				lo = mid
			} else {
				hi = mid
			}
		}
		r.Energetic = lo + 1
	}
	r.Timings.Energetic = time.Since(t2)
	r.Timings.Total = time.Since(t0)

	r.Best = r.CriticalPath
	for _, v := range []int{r.MaxDuration, r.Volume, r.Serialization, r.Energetic} {
		if v > r.Best {
			r.Best = v
		}
	}
	return r
}
