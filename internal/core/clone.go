package core

import "fpga3d/internal/graph"

// cloneForWorker deep-copies the engine's decision state so another
// worker can explore a subtree independently. The caller must be at a
// propagated, conflict-free node: the propagation queue is empty and no
// conflict is pending, so the clone starts from a clean frontier.
//
// Copied (trail-mutated) state: edge states, orientations, the
// per-dimension overlap/disjoint adjacency bitsets, unknown counts,
// per-pair undecided counts, and the clique-force memo with its version
// counters — the memo does not change which rules fire, but copying it
// keeps the clone's work profile identical to what the donor would have
// done in place. Shared (immutable after construction): the problem,
// options, pair index tables, volumes, co-areas and the symmetry marks.
// Fresh: trail, queue, statistics and all scratch buffers — a clone
// never undoes past its own root, and scratch is strictly per-worker.
func (e *engine) cloneForWorker() *engine {
	n, nd, np := e.n, e.nd, e.npairs
	c := &engine{
		p: e.p, opt: e.opt, n: n, nd: nd, npairs: np,
		pidx: e.pidx, pairU: e.pairU, pairV: e.pairV,
		vol: e.vol, minVol: e.minVol, coArea: e.coArea, coCap: e.coCap,
		sym:  e.sym,
		pool: e.pool, start: e.start,
		aborted:  StatusFeasible,
		conflict: noConflict,
	}
	c.state = make([][]EdgeState, nd)
	c.orient = make([][]OrientVal, nd)
	c.ovAdj = make([][]graph.Set, nd)
	c.disAdj = make([][]graph.Set, nd)
	c.unknown = append([]int(nil), e.unknown...)
	c.pairUndecided = append([]int32(nil), e.pairUndecided...)
	c.verDis = append([]int64(nil), e.verDis...)
	c.verOv = append([]int64(nil), e.verOv...)
	c.rowVerDis = make([][]int64, nd)
	c.rowVerOv = make([][]int64, nd)
	c.cfDisSeen = make([][]int64, nd)
	c.cfAreaSeen = make([][]int64, nd)
	for d := 0; d < nd; d++ {
		c.state[d] = append([]EdgeState(nil), e.state[d]...)
		if e.orient[d] != nil {
			c.orient[d] = append([]OrientVal(nil), e.orient[d]...)
		}
		c.ovAdj[d] = make([]graph.Set, n)
		c.disAdj[d] = make([]graph.Set, n)
		for v := 0; v < n; v++ {
			c.ovAdj[d][v] = e.ovAdj[d][v].Clone()
			c.disAdj[d][v] = e.disAdj[d][v].Clone()
		}
		c.rowVerDis[d] = append([]int64(nil), e.rowVerDis[d]...)
		c.rowVerOv[d] = append([]int64(nil), e.rowVerOv[d]...)
		c.cfDisSeen[d] = append([]int64(nil), e.cfDisSeen[d]...)
		c.cfAreaSeen[d] = append([]int64(nil), e.cfAreaSeen[d]...)
	}
	c.scratchSet = graph.NewSet(n)
	c.holeWeight = make([]int, n)
	c.holeVisited = make([]bool, n)
	c.holeMCS = make([]int, 0, n)
	c.holePos = make([]int, n)
	c.holePrev = make([]int, n)
	c.holeQueue = make([]int, 0, n)
	c.holeLater = graph.NewSet(n)
	c.holeBad = graph.NewSet(n)
	c.holeBanned = graph.NewSet(n)
	return c
}
