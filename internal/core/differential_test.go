package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProblem draws a 3-dimensional instance with an ordered time
// axis, a sprinkling of precedence seeds on a DAG order, and a few
// pre-fixed spatial edges. Sizes skew large relative to the capacities
// so the size rule and clique machinery fire often.
func randomProblem(rng *rand.Rand) *Problem {
	n := 4 + rng.Intn(5) // 4..8 boxes
	caps := [3]int{8 + rng.Intn(9), 8 + rng.Intn(9), 6 + rng.Intn(10)}
	p := &Problem{N: n}
	for d := 0; d < 3; d++ {
		dim := Dim{Cap: caps[d], Sizes: make([]int, n), Ordered: d == 2}
		for b := 0; b < n; b++ {
			dim.Sizes[b] = 1 + rng.Intn(caps[d]*3/4)
		}
		p.Dims = append(p.Dims, dim)
	}
	// Precedence arcs respecting box index order (always acyclic).
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.15 {
				p.Seeds = append(p.Seeds, SeedArc{Dim: 2, From: u, To: v})
			}
		}
	}
	// A couple of pre-fixed spatial edges, as the FixedS variants do.
	for k := 0; k < 2; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		st := Overlap
		if rng.Intn(2) == 0 {
			st = Disjoint
		}
		p.Fixed = append(p.Fixed, FixedEdge{Dim: rng.Intn(2), U: u, V: v, State: st})
	}
	return p
}

// checkSolution verifies a claimed placement geometrically: in-bounds
// intervals, no two boxes overlapping in every dimension at once, and
// every precedence seed realized on the time axis.
func checkSolution(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	if len(sol.Coords) != len(p.Dims) {
		t.Fatalf("solution has %d dims, want %d", len(sol.Coords), len(p.Dims))
	}
	for d, dim := range p.Dims {
		for b := 0; b < p.N; b++ {
			x := sol.Coords[d][b]
			if x < 0 || x+dim.Sizes[b] > dim.Cap {
				t.Fatalf("box %d out of bounds in dim %d: [%d,%d) cap %d", b, d, x, x+dim.Sizes[b], dim.Cap)
			}
		}
	}
	for u := 0; u < p.N; u++ {
		for v := u + 1; v < p.N; v++ {
			overlapAll := true
			for d, dim := range p.Dims {
				xu, xv := sol.Coords[d][u], sol.Coords[d][v]
				if xu+dim.Sizes[u] <= xv || xv+dim.Sizes[v] <= xu {
					overlapAll = false
					break
				}
			}
			if overlapAll {
				t.Fatalf("boxes %d and %d overlap in all dimensions", u, v)
			}
		}
	}
	for _, a := range p.Seeds {
		if sol.Coords[a.Dim][a.From]+p.Dims[a.Dim].Sizes[a.From] > sol.Coords[a.Dim][a.To] {
			t.Fatalf("precedence %d→%d violated on dim %d", a.From, a.To, a.Dim)
		}
	}
}

// TestDifferentialRulePaths is the exact-equivalence gate for the
// hot-path optimizations: on random instances, the optimized rule
// implementations and the reference ones (Options.ReferenceRules) must
// produce the same status, the same full statistics — Nodes and
// Propagations included — and the same witness placement, which must be
// geometrically valid.
func TestDifferentialRulePaths(t *testing.T) {
	const trials = 120
	rng := rand.New(rand.NewSource(20260806))
	feasible, infeasible := 0, 0
	for i := 0; i < trials; i++ {
		p := randomProblem(rng)
		opt := Options{NodeLimit: 200_000, TimeOverlapFirst: rng.Intn(2) == 0}
		fast := Solve(p, opt)
		optRef := opt
		optRef.ReferenceRules = true
		ref := Solve(p, optRef)

		if fast.Status != ref.Status {
			t.Fatalf("trial %d: status fast=%v ref=%v", i, fast.Status, ref.Status)
		}
		if !reflect.DeepEqual(fast.Stats, ref.Stats) {
			t.Fatalf("trial %d: stats diverge\nfast: %+v\nref:  %+v", i, fast.Stats, ref.Stats)
		}
		switch fast.Status {
		case StatusFeasible:
			feasible++
			checkSolution(t, p, fast.Solution)
			if !reflect.DeepEqual(fast.Solution, ref.Solution) {
				t.Fatalf("trial %d: witness placements diverge", i)
			}
		case StatusInfeasible:
			infeasible++
		}
	}
	// The generator must exercise both outcomes for the comparison to
	// mean anything.
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("degenerate instance mix: %d feasible, %d infeasible", feasible, infeasible)
	}
}

// TestDifferentialRulePathsAblations repeats the differential check
// with individual rules disabled, so the equivalence of each optimized
// rule is probed in isolation too (a bug masked by another rule firing
// first would otherwise hide).
func TestDifferentialRulePathsAblations(t *testing.T) {
	ablations := []struct {
		name string
		mut  func(*Options)
	}{
		{"no-clique-force", func(o *Options) { o.DisableCliqueForce = true }},
		{"no-c4", func(o *Options) { o.DisableC4Rule = true }},
		{"no-hole", func(o *Options) { o.DisableHoleRule = true }},
		{"no-clique", func(o *Options) { o.DisableCliqueRule = true }},
	}
	for _, ab := range ablations {
		ab := ab
		t.Run(ab.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(777))
			for i := 0; i < 40; i++ {
				p := randomProblem(rng)
				opt := Options{NodeLimit: 200_000}
				ab.mut(&opt)
				fast := Solve(p, opt)
				optRef := opt
				optRef.ReferenceRules = true
				ref := Solve(p, optRef)
				if fast.Status != ref.Status || !reflect.DeepEqual(fast.Stats, ref.Stats) {
					t.Fatalf("trial %d: diverge\nfast: %v %+v\nref:  %v %+v",
						i, fast.Status, fast.Stats, ref.Status, ref.Stats)
				}
			}
		})
	}
}
