package core

import (
	"time"

	"fpga3d/internal/graph"
	"fpga3d/internal/obs"
)

// changeKind discriminates trail entries.
type changeKind uint8

const (
	chState changeKind = iota
	chOrient
)

type change struct {
	kind changeKind
	dim  int16
	pair int32
	old  uint8
}

type eventKind uint8

const (
	evState eventKind = iota
	evOrient
)

type event struct {
	kind eventKind
	dim  int16
	pair int32
}

// conflictRule identifies which rule detected the current conflict, for
// statistics only.
type conflictRule uint8

const (
	noConflict conflictRule = iota
	confC3
	confSize
	confClique
	confArea
	confC4
	confHole
	confOrient
)

// engine holds the mutable search state for one Solve call.
type engine struct {
	p      *Problem
	opt    Options
	n      int // boxes
	nd     int // dimensions
	npairs int

	pidx  [][]int // pidx[u][v] = pair index, u != v
	pairU []int32
	pairV []int32

	state  [][]EdgeState // [dim][pair]
	orient [][]OrientVal // [dim][pair]; nil for unordered dims

	// Incremental adjacency of decided edges, per dimension.
	ovAdj   [][]graph.Set // Overlap adjacency
	disAdj  [][]graph.Set // Disjoint adjacency
	unknown []int         // count of Unknown states per dimension

	// pairUndecided[p] counts the dimensions in which pair p is still
	// Unknown — the quantity pickBranch otherwise recomputes with an
	// inner dimension loop at every node. Maintained by setState/undoTo.
	pairUndecided []int32

	// Versioned dirtiness tracking for the clique-force memo. verDis[d]
	// (verOv[d]) counts every edge insertion or removal in the disjoint
	// (overlap) adjacency of dimension d; rowVerDis[d][v] (rowVerOv) is
	// the version at which vertex v's row last changed. A clique bound
	// computed for pair p at version s stays valid while no row it read
	// has moved past s, so cliqueForcePass recomputes only pairs whose
	// candidate sets were actually dirtied. Versions only grow (undo
	// bumps them too), so stale memo entries can never false-match.
	verDis    []int64
	verOv     []int64
	rowVerDis [][]int64
	rowVerOv  [][]int64
	// cfDisSeen[d][p] (cfAreaSeen) is the verDis[d] (verOv[d]) value at
	// which the disjoint-clique (area-clique) force check for pair p
	// last computed "no forcing", or -1 if never computed.
	cfDisSeen  [][]int64
	cfAreaSeen [][]int64

	trail    []change
	queue    []event
	conflict conflictRule

	stats    Stats
	nodeTick int64
	start    time.Time // search start, for progress snapshots
	aborted  Status    // StatusFeasible (sentinel "not aborted") or a limit status

	// pool, when non-nil, is the work-stealing pool this engine's search
	// participates in (parallel solves only; nil on the sequential path,
	// which keeps dfs bit-identical). poolStopped records that the last
	// abort came from the pool's stop broadcast rather than a genuine
	// limit, so the shard's StatusCanceled is not mistaken for a
	// context cancellation when outcomes are merged.
	pool        *wspool
	poolStopped bool
	// nodesFlushed is the portion of stats.Nodes already added to the
	// pool's global node counter (parallel solves only).
	nodesFlushed int64

	solution *Solution

	// vol[b] is the product of box b's sizes over all dimensions;
	// minVol[p] the smaller volume of pair p's boxes (branch scoring).
	vol    []int
	minVol []int
	// coArea[d][b] is box b's cross-section perpendicular to dimension d
	// (its volume divided by its size in d); coCap[d] the corresponding
	// container cross-section. Used by the Helly area-clique rule.
	coArea [][]int
	coCap  []int
	// sym[p] marks pairs of interchangeable boxes (identical sizes in
	// every dimension, identical seed relations): orienting the
	// higher-index box before the lower one is pruned as symmetric.
	sym []bool

	// scratch buffers
	scratchSet graph.Set
	// cliqueStack holds one scratch set per recursion depth of the
	// weighted-clique bound, so the branch-and-bound inside
	// cliqueExceedsFast allocates nothing. Grown on demand.
	cliqueStack []graph.Set
	// Hole-detection scratch (findHoleInFast / shortestAvoidingFast):
	// reused across the per-node chordality sweeps.
	holeWeight  []int
	holeVisited []bool
	holeMCS     []int
	holePos     []int
	holePrev    []int
	holeQueue   []int
	holeLater   graph.Set
	holeBad     graph.Set
	holeBanned  graph.Set
}

func newEngine(p *Problem, opt Options) *engine {
	n := p.N
	nd := len(p.Dims)
	e := &engine{p: p, opt: opt, n: n, nd: nd, aborted: StatusFeasible, start: time.Now()}
	e.pidx = make([][]int, n)
	for u := 0; u < n; u++ {
		e.pidx[u] = make([]int, n)
	}
	idx := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			e.pidx[u][v] = idx
			e.pidx[v][u] = idx
			e.pairU = append(e.pairU, int32(u))
			e.pairV = append(e.pairV, int32(v))
			idx++
		}
	}
	e.npairs = idx
	e.state = make([][]EdgeState, nd)
	e.orient = make([][]OrientVal, nd)
	e.ovAdj = make([][]graph.Set, nd)
	e.disAdj = make([][]graph.Set, nd)
	e.unknown = make([]int, nd)
	for d := 0; d < nd; d++ {
		e.state[d] = make([]EdgeState, idx)
		if p.Dims[d].Ordered {
			e.orient[d] = make([]OrientVal, idx)
		}
		e.ovAdj[d] = make([]graph.Set, n)
		e.disAdj[d] = make([]graph.Set, n)
		for v := 0; v < n; v++ {
			e.ovAdj[d][v] = graph.NewSet(n)
			e.disAdj[d][v] = graph.NewSet(n)
		}
		e.unknown[d] = idx
	}
	e.scratchSet = graph.NewSet(n)

	e.pairUndecided = make([]int32, idx)
	for pr := range e.pairUndecided {
		e.pairUndecided[pr] = int32(nd)
	}
	e.verDis = make([]int64, nd)
	e.verOv = make([]int64, nd)
	e.rowVerDis = make([][]int64, nd)
	e.rowVerOv = make([][]int64, nd)
	e.cfDisSeen = make([][]int64, nd)
	e.cfAreaSeen = make([][]int64, nd)
	for d := 0; d < nd; d++ {
		e.rowVerDis[d] = make([]int64, n)
		e.rowVerOv[d] = make([]int64, n)
		e.cfDisSeen[d] = make([]int64, idx)
		e.cfAreaSeen[d] = make([]int64, idx)
		for pr := 0; pr < idx; pr++ {
			e.cfDisSeen[d][pr] = -1
			e.cfAreaSeen[d][pr] = -1
		}
	}
	e.holeWeight = make([]int, n)
	e.holeVisited = make([]bool, n)
	e.holeMCS = make([]int, 0, n)
	e.holePos = make([]int, n)
	e.holePrev = make([]int, n)
	e.holeQueue = make([]int, 0, n)
	e.holeLater = graph.NewSet(n)
	e.holeBad = graph.NewSet(n)
	e.holeBanned = graph.NewSet(n)

	e.vol = make([]int, n)
	for b := 0; b < n; b++ {
		v := 1
		for d := 0; d < nd; d++ {
			v *= p.Dims[d].Sizes[b]
		}
		e.vol[b] = v
	}
	e.minVol = make([]int, idx)
	for pr := 0; pr < idx; pr++ {
		u, v := int(e.pairU[pr]), int(e.pairV[pr])
		e.minVol[pr] = e.vol[u]
		if e.vol[v] < e.minVol[pr] {
			e.minVol[pr] = e.vol[v]
		}
	}
	e.coArea = make([][]int, nd)
	e.coCap = make([]int, nd)
	for d := 0; d < nd; d++ {
		e.coArea[d] = make([]int, n)
		for b := 0; b < n; b++ {
			e.coArea[d][b] = e.vol[b] / p.Dims[d].Sizes[b]
		}
		cc := 1
		for dd := 0; dd < nd; dd++ {
			if dd != d {
				cc *= p.Dims[dd].Cap
			}
		}
		e.coCap[d] = cc
	}
	e.computeSymmetry()
	return e
}

// computeSymmetry marks pairs of boxes that are interchangeable: equal
// sizes in every dimension and, on every ordered dimension, identical
// seed in/out sets and no seed between them. Any packing can reorder
// such boxes by start time, so forcing the lower-index box first on the
// time axis loses no solutions.
func (e *engine) computeSymmetry() {
	n, nd := e.n, e.nd
	e.sym = make([]bool, e.npairs)
	// Seed relation sets per ordered dimension.
	type rel struct{ in, out graph.Set }
	rels := make([]map[int]rel, nd)
	for d := 0; d < nd; d++ {
		if !e.p.Dims[d].Ordered {
			continue
		}
		rels[d] = make(map[int]rel, n)
		for v := 0; v < n; v++ {
			rels[d][v] = rel{in: graph.NewSet(n), out: graph.NewSet(n)}
		}
	}
	for _, a := range e.p.Seeds {
		rels[a.Dim][a.From].out.Add(a.To)
		rels[a.Dim][a.To].in.Add(a.From)
	}
	for pr := 0; pr < e.npairs; pr++ {
		u, v := int(e.pairU[pr]), int(e.pairV[pr])
		ok := true
		for d := 0; d < nd && ok; d++ {
			if e.p.Dims[d].Sizes[u] != e.p.Dims[d].Sizes[v] {
				ok = false
				break
			}
			if rels[d] == nil {
				continue
			}
			ru, rv := rels[d][u], rels[d][v]
			if ru.in.Has(v) || ru.out.Has(v) || rv.in.Has(u) || rv.out.Has(u) ||
				!ru.in.Equal(rv.in) || !ru.out.Equal(rv.out) {
				ok = false
			}
		}
		e.sym[pr] = ok
	}
}

// --- basic accessors -------------------------------------------------

func (e *engine) st(d, u, v int) EdgeState { return e.state[d][e.pidx[u][v]] }

// orientedBefore reports whether box u is fixed entirely before box v on
// ordered dimension d.
func (e *engine) orientedBefore(d, u, v int) bool {
	p := e.pidx[u][v]
	if e.orient[d] == nil || e.state[d][p] != Disjoint {
		return false
	}
	o := e.orient[d][p]
	if u < v {
		return o == OrientFwd
	}
	return o == OrientRev
}

// --- mutation with trail ----------------------------------------------

func (e *engine) fail(r conflictRule) {
	if e.conflict == noConflict {
		e.conflict = r
		switch r {
		case confC3:
			e.stats.ConflictC3++
		case confSize:
			e.stats.ConflictSize++
		case confClique:
			e.stats.ConflictClique++
		case confArea:
			e.stats.ConflictArea++
		case confC4:
			e.stats.ConflictC4++
		case confHole:
			e.stats.ConflictHole++
		case confOrient:
			e.stats.ConflictOrient++
		}
	}
}

// setState decides pair p in dimension d. Contradicting an existing
// decision raises a conflict attributed to rule r.
func (e *engine) setState(d int, p int, s EdgeState, r conflictRule) {
	if e.conflict != noConflict {
		return
	}
	cur := e.state[d][p]
	if cur == s {
		return
	}
	if cur != Unknown {
		e.fail(r)
		return
	}
	e.trail = append(e.trail, change{kind: chState, dim: int16(d), pair: int32(p), old: uint8(cur)})
	e.state[d][p] = s
	u, v := int(e.pairU[p]), int(e.pairV[p])
	if s == Overlap {
		e.ovAdj[d][u].Add(v)
		e.ovAdj[d][v].Add(u)
		e.touchOv(d, u, v)
	} else {
		e.disAdj[d][u].Add(v)
		e.disAdj[d][v].Add(u)
		e.touchDis(d, u, v)
	}
	e.unknown[d]--
	e.pairUndecided[p]--
	e.queue = append(e.queue, event{kind: evState, dim: int16(d), pair: int32(p)})
}

// setBefore fixes box u entirely before box v on ordered dimension d.
// The pair is first fixed Disjoint if still unknown.
func (e *engine) setBefore(d, u, v int, r conflictRule) {
	if e.conflict != noConflict {
		return
	}
	p := e.pidx[u][v]
	if e.state[d][p] == Overlap {
		e.fail(r)
		return
	}
	if e.state[d][p] == Unknown {
		e.setState(d, p, Disjoint, r)
		if e.conflict != noConflict {
			return
		}
	}
	want := OrientFwd
	if u > v {
		want = OrientRev
	}
	if want == OrientRev && e.sym[p] {
		// Symmetry break: interchangeable boxes run in index order when
		// sequential; the mirrored branch has an equivalent solution.
		e.fail(r)
		return
	}
	cur := e.orient[d][p]
	if cur == want {
		return
	}
	if cur != OrientNone {
		e.fail(r)
		return
	}
	e.trail = append(e.trail, change{kind: chOrient, dim: int16(d), pair: int32(p), old: uint8(cur)})
	e.orient[d][p] = want
	e.queue = append(e.queue, event{kind: evOrient, dim: int16(d), pair: int32(p)})
}

// touchDis records a change (insertion or removal) of the disjoint
// edge {u,v} in dimension d for the clique-force memo: the dimension
// version advances and both endpoint rows move to it.
func (e *engine) touchDis(d, u, v int) {
	e.verDis[d]++
	ver := e.verDis[d]
	e.rowVerDis[d][u] = ver
	e.rowVerDis[d][v] = ver
}

// touchOv is touchDis for the overlap adjacency.
func (e *engine) touchOv(d, u, v int) {
	e.verOv[d]++
	ver := e.verOv[d]
	e.rowVerOv[d][u] = ver
	e.rowVerOv[d][v] = ver
}

// cliqueScratch returns the per-depth scratch set for the weighted
// clique bound, growing the stack on first use of a depth.
func (e *engine) cliqueScratch(depth int) graph.Set {
	for len(e.cliqueStack) <= depth {
		e.cliqueStack = append(e.cliqueStack, graph.NewSet(e.n))
	}
	return e.cliqueStack[depth]
}

// mark returns the current trail position for later undo.
func (e *engine) mark() int { return len(e.trail) }

// undoTo rolls the trail back to a previous mark and clears conflicts
// and pending events.
func (e *engine) undoTo(m int) {
	for i := len(e.trail) - 1; i >= m; i-- {
		c := e.trail[i]
		d, p := int(c.dim), int(c.pair)
		switch c.kind {
		case chState:
			s := e.state[d][p]
			u, v := int(e.pairU[p]), int(e.pairV[p])
			if s == Overlap {
				e.ovAdj[d][u].Remove(v)
				e.ovAdj[d][v].Remove(u)
				e.touchOv(d, u, v)
			} else if s == Disjoint {
				e.disAdj[d][u].Remove(v)
				e.disAdj[d][v].Remove(u)
				e.touchDis(d, u, v)
			}
			e.state[d][p] = EdgeState(c.old)
			e.unknown[d]++
			e.pairUndecided[p]++
		case chOrient:
			e.orient[d][p] = OrientVal(c.old)
		}
	}
	e.trail = e.trail[:m]
	e.queue = e.queue[:0]
	e.conflict = noConflict
}

// checkLimits updates the abort status from node/time/context budgets
// and, on the same every-256-nodes cadence as the deadline and
// cancellation polls, delivers a progress snapshot to the Progress
// hook.
func (e *engine) checkLimits() bool {
	if e.aborted != StatusFeasible {
		return false
	}
	// In a parallel search the node budget is global across shards and
	// enforced by the pool on the polling cadence below; the per-engine
	// check here applies only to the sequential path.
	if e.pool == nil && e.opt.NodeLimit > 0 && e.stats.Nodes >= e.opt.NodeLimit {
		e.aborted = StatusNodeLimit
		return false
	}
	e.nodeTick++
	if e.nodeTick%256 != 0 {
		return true
	}
	if e.pool != nil && !e.pool.poll(e) {
		return false
	}
	if e.opt.Ctx != nil {
		select {
		case <-e.opt.Ctx.Done():
			e.aborted = StatusCanceled
			return false
		default:
		}
	}
	if !e.opt.Deadline.IsZero() && time.Now().After(e.opt.Deadline) {
		e.aborted = StatusTimeLimit
		return false
	}
	if e.opt.Progress != nil {
		e.emitProgress()
	}
	return true
}

// emitProgress builds a Snapshot from the current counters and hands
// it to the Progress hook.
func (e *engine) emitProgress() {
	elapsed := time.Since(e.start)
	nps := 0.0
	if s := elapsed.Seconds(); s > 0 {
		nps = float64(e.stats.Nodes) / s
	}
	phase := e.opt.ProgressPhase
	if phase == "" {
		phase = obs.PhaseSearch
	}
	e.opt.Progress(obs.Snapshot{
		Phase:       phase,
		Nodes:       e.stats.Nodes,
		NodesPerSec: nps,
		MaxDepth:    e.stats.MaxDepth,
		Elapsed:     elapsed,
		Conflicts:   e.stats.ConflictsByRule(),
	})
}
