package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// prob2D builds a simple 2-box problem for state-machinery tests.
func prob(n int, caps [3]int, sizes func(b int) [3]int, ordered bool) *Problem {
	p := &Problem{N: n}
	for d := 0; d < 3; d++ {
		dim := Dim{Cap: caps[d], Sizes: make([]int, n), Ordered: d == 2 && ordered}
		for b := 0; b < n; b++ {
			dim.Sizes[b] = sizes(b)[d]
		}
		p.Dims = append(p.Dims, dim)
	}
	return p
}

func uniformSizes(w, h, t int) func(int) [3]int {
	return func(int) [3]int { return [3]int{w, h, t} }
}

func TestProblemValidate(t *testing.T) {
	good := prob(2, [3]int{4, 4, 4}, uniformSizes(2, 2, 2), true)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Problem)
	}{
		{"no boxes", func(p *Problem) { p.N = 0 }},
		{"one dim", func(p *Problem) { p.Dims = p.Dims[:1] }},
		{"size count", func(p *Problem) { p.Dims[0].Sizes = p.Dims[0].Sizes[:1] }},
		{"zero cap", func(p *Problem) { p.Dims[1].Cap = 0 }},
		{"zero size", func(p *Problem) { p.Dims[0].Sizes[0] = 0 }},
		{"oversize box", func(p *Problem) { p.Dims[0].Sizes[0] = 9 }},
		{"seed on unordered dim", func(p *Problem) { p.Seeds = []SeedArc{{Dim: 0, From: 0, To: 1}} }},
		{"seed self", func(p *Problem) { p.Seeds = []SeedArc{{Dim: 2, From: 1, To: 1}} }},
		{"seed out of range", func(p *Problem) { p.Seeds = []SeedArc{{Dim: 2, From: 0, To: 5}} }},
		{"fixed unknown state", func(p *Problem) { p.Fixed = []FixedEdge{{Dim: 0, U: 0, V: 1, State: Unknown}} }},
		{"fixed self", func(p *Problem) { p.Fixed = []FixedEdge{{Dim: 0, U: 1, V: 1, State: Overlap}} }},
		{"fixed bad dim", func(p *Problem) { p.Fixed = []FixedEdge{{Dim: 7, U: 0, V: 1, State: Overlap}} }},
	}
	for _, tc := range cases {
		p := prob(2, [3]int{4, 4, 4}, uniformSizes(2, 2, 2), true)
		tc.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusFeasible:   "feasible",
		StatusInfeasible: "infeasible",
		StatusNodeLimit:  "node-limit",
		StatusTimeLimit:  "time-limit",
		Status(42):       "status(42)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q", int(s), s.String())
		}
	}
	if !StatusFeasible.Decided() || !StatusInfeasible.Decided() || StatusNodeLimit.Decided() {
		t.Fatal("Decided wrong")
	}
	for s, want := range map[EdgeState]string{Unknown: "unknown", Overlap: "overlap", Disjoint: "disjoint"} {
		if s.String() != want {
			t.Errorf("EdgeState %d = %q", s, s.String())
		}
	}
}

// TestTrailUndo: applying random decisions and undoing restores every
// piece of engine state exactly.
func TestTrailUndo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		p := prob(n, [3]int{10, 10, 10}, func(b int) [3]int {
			return [3]int{1 + b%3, 1 + b%2, 1 + b%4}
		}, true)
		e := newEngine(p, Options{})

		snapshot := func() ([]EdgeState, []OrientVal) {
			var st []EdgeState
			var or []OrientVal
			for d := 0; d < e.nd; d++ {
				st = append(st, e.state[d]...)
				if e.orient[d] != nil {
					or = append(or, e.orient[d]...)
				}
			}
			return st, or
		}
		st0, or0 := snapshot()
		unk0 := append([]int(nil), e.unknown...)

		m := e.mark()
		for i := 0; i < 10; i++ {
			d := rng.Intn(e.nd)
			pr := rng.Intn(e.npairs)
			if rng.Intn(2) == 0 {
				e.setState(d, pr, EdgeState(1+rng.Intn(2)), confSize)
			} else if e.orient[2] != nil {
				u, v := int(e.pairU[pr]), int(e.pairV[pr])
				e.setBefore(2, u, v, confOrient)
			}
			e.propagate()
			if e.conflict != noConflict {
				break
			}
		}
		e.undoTo(m)

		st1, or1 := snapshot()
		for i := range st0 {
			if st0[i] != st1[i] {
				return false
			}
		}
		for i := range or0 {
			if or0[i] != or1[i] {
				return false
			}
		}
		for d := range unk0 {
			if unk0[d] != e.unknown[d] {
				return false
			}
		}
		// Adjacency bitsets restored too.
		for d := 0; d < e.nd; d++ {
			for v := 0; v < e.n; v++ {
				if !e.ovAdj[d][v].Empty() || !e.disAdj[d][v].Empty() {
					return false
				}
			}
		}
		return e.conflict == noConflict && len(e.queue) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestC3Forcing(t *testing.T) {
	p := prob(2, [3]int{10, 10, 10}, uniformSizes(2, 2, 2), false)
	e := newEngine(p, Options{})
	pr := e.pidx[0][1]
	e.setState(0, pr, Overlap, confSize)
	e.setState(1, pr, Overlap, confSize)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatalf("unexpected conflict")
	}
	if e.state[2][pr] != Disjoint {
		t.Fatal("C3 did not force the time dimension disjoint")
	}
	if e.stats.ForcedC3 == 0 {
		t.Fatal("ForcedC3 not counted")
	}
}

func TestC3Conflict(t *testing.T) {
	p := prob(2, [3]int{10, 10, 10}, uniformSizes(2, 2, 2), false)
	e := newEngine(p, Options{})
	pr := e.pidx[0][1]
	e.setState(2, pr, Overlap, confSize)
	e.setState(0, pr, Overlap, confSize)
	e.setState(1, pr, Overlap, confSize)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("triple overlap not detected")
	}
}

func TestSetStateContradictionConflicts(t *testing.T) {
	p := prob(2, [3]int{10, 10, 10}, uniformSizes(2, 2, 2), false)
	e := newEngine(p, Options{})
	pr := e.pidx[0][1]
	e.setState(0, pr, Overlap, confSize)
	e.setState(0, pr, Overlap, confSize) // same value: no-op
	if e.conflict != noConflict {
		t.Fatal("idempotent set conflicted")
	}
	e.setState(0, pr, Disjoint, confClique)
	if e.conflict == noConflict {
		t.Fatal("contradictory set accepted")
	}
	if e.stats.ConflictClique != 1 {
		t.Fatal("conflict not attributed to the given rule")
	}
}

func TestSymmetryDetection(t *testing.T) {
	// Boxes 0 and 1 identical; box 2 differs in one dimension.
	p := prob(3, [3]int{10, 10, 10}, func(b int) [3]int {
		if b == 2 {
			return [3]int{2, 2, 3}
		}
		return [3]int{2, 2, 2}
	}, true)
	e := newEngine(p, Options{})
	if !e.sym[e.pidx[0][1]] {
		t.Fatal("identical boxes not marked symmetric")
	}
	if e.sym[e.pidx[0][2]] || e.sym[e.pidx[1][2]] {
		t.Fatal("distinct boxes marked symmetric")
	}

	// A seed between 0 and 1 breaks their interchangeability.
	p.Seeds = []SeedArc{{Dim: 2, From: 0, To: 1}}
	e = newEngine(p, Options{})
	if e.sym[e.pidx[0][1]] {
		t.Fatal("seed-related boxes marked symmetric")
	}

	// Different seed relations to a third box break it too.
	p.Seeds = []SeedArc{{Dim: 2, From: 0, To: 2}}
	e = newEngine(p, Options{})
	if e.sym[e.pidx[0][1]] {
		t.Fatal("boxes with different successor sets marked symmetric")
	}
}

func TestSymmetryBreakPrunesReverseOrder(t *testing.T) {
	p := prob(2, [3]int{10, 10, 10}, uniformSizes(2, 2, 2), true)
	e := newEngine(p, Options{})
	// Boxes are interchangeable; forcing 1 before 0 must conflict.
	e.setBefore(2, 1, 0, confOrient)
	if e.conflict == noConflict {
		t.Fatal("reverse orientation of a symmetric pair accepted")
	}
	e.undoTo(0)
	e.setBefore(2, 0, 1, confOrient)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("canonical orientation rejected")
	}
}

func TestNodeLimit(t *testing.T) {
	// A moderately hard infeasible instance with the strong rules off,
	// so the search must actually expand nodes.
	p := prob(6, [3]int{5, 5, 5}, func(b int) [3]int {
		return [3]int{2 + b%2, 2, 2}
	}, false)
	r := Solve(p, Options{
		NodeLimit:          3,
		DisableCliqueRule:  true,
		DisableCliqueForce: true,
		DisableHoleRule:    true,
		DisableC4Rule:      true,
	})
	if r.Status == StatusFeasible || r.Status == StatusInfeasible {
		// Either answer within 3 nodes is impossible for this instance…
		// unless propagation alone solves it; accept only an explicit
		// limit status when nodes were exhausted.
		if r.Stats.Nodes > 3 {
			t.Fatalf("node limit exceeded: %d nodes", r.Stats.Nodes)
		}
	} else if r.Status != StatusNodeLimit {
		t.Fatalf("status = %v", r.Status)
	}
}

func TestInvalidProblemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Solve accepted invalid problem")
		}
	}()
	Solve(&Problem{N: 0}, Options{})
}
