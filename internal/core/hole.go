package core

import "fpga3d/internal/graph"

// The hole rule generalizes the C4 propagation to chordless cycles of
// arbitrary length. A cycle of decided overlap edges that is induced in
// the decided overlap graph can only be chorded by pairs that are still
// Unknown; once all its chords are Disjoint the final component graph is
// guaranteed non-chordal (a C1 violation), and with exactly one Unknown
// chord left, that chord is forced to Overlap.
//
// Holes are located with a chordality certificate: if the reverse of a
// maximum-cardinality-search order fails the perfect-elimination check
// at a vertex v with two later non-adjacent neighbors p and w, then v
// together with a shortest p–w path in G − (N[v] ∖ {p, w}) forms an
// induced cycle of length ≥ 4 (shortest paths are induced, and v's other
// neighbors are excluded).

// holeCheck runs hole detection on every dimension until no further
// forcing applies. Called once per search node, after event propagation.
//
// Two forbidden structures are hunted:
//
//   - holes of the overlap graph (an induced cycle of length ≥ 4 whose
//     chords are all Disjoint can never become chordal — C1, chordality
//     half);
//   - odd antiholes: an induced odd cycle of length ≥ 5 in the disjoint
//     graph is an odd hole of the complement, and comparability graphs
//     are perfect — the paper's "2-chordless odd cycles in E_i^c"
//     exclusion (C1, comparability half).
func (e *engine) holeCheck() {
	if e.opt.DisableHoleRule {
		return
	}
	for d := 0; d < e.nd && e.conflict == noConflict; d++ {
		// Chordality holes in the overlap graph: break by making an
		// open chord Overlap.
		e.holeCheckDim(d, e.ovAdj[d], Overlap, false)
		if e.conflict != noConflict {
			return
		}
		// Odd antiholes in the disjoint graph: break by making an open
		// chord Disjoint.
		e.holeCheckDim(d, e.disAdj[d], Disjoint, true)
	}
}

// holeCheckDim repeatedly extracts holes of the given adjacency
// structure. A hole is conclusive when all of its chords are decided to
// the opposite state (the breaking value cannot appear anymore):
// conflict with zero open chords, forcing with exactly one. When oddOnly
// is set, even-length holes are ignored (even antiholes are harmless:
// even cycles are comparability graphs).
func (e *engine) holeCheckDim(d int, adj []graph.Set, breaking EdgeState, oddOnly bool) {
	for e.conflict == noConflict {
		hole := e.findHoleIn(adj)
		if hole == nil {
			return
		}
		if oddOnly && len(hole)%2 == 0 {
			return // inconclusive certificate; deeper search decides
		}
		unknownPair, unknowns := -1, 0
		k := len(hole)
		for i := 0; i < k && unknowns < 2; i++ {
			for j := i + 2; j < k; j++ {
				if i == 0 && j == k-1 {
					continue // cycle edge, not a chord
				}
				p := e.pidx[hole[i]][hole[j]]
				if e.state[d][p] == Unknown {
					unknowns++
					unknownPair = p
					if unknowns >= 2 {
						break
					}
				}
			}
		}
		switch unknowns {
		case 0:
			e.fail(confHole)
		case 1:
			e.stats.ForcedHole++
			e.setState(d, unknownPair, breaking, confHole)
			e.propagate()
		default:
			// Two or more open chords: no implication from this hole.
			return
		}
	}
}

// findHoleIn returns the vertices of an induced cycle of length ≥ 4 in
// the graph given by the adjacency rows, or nil if it is chordal (or no
// certificate could be extracted). The production path reuses the
// engine's hole scratch buffers (this runs once per dimension per
// search node); findHoleInRef is the allocating reference twin.
func (e *engine) findHoleIn(adj []graph.Set) []int {
	if e.opt.ReferenceRules {
		return e.findHoleInRef(adj)
	}
	n := e.n

	// Maximum cardinality search.
	weight := e.holeWeight
	visited := e.holeVisited
	for v := 0; v < n; v++ {
		weight[v] = 0
		visited[v] = false
	}
	mcs := e.holeMCS[:0]
	for len(mcs) < n {
		best, bestW := -1, -1
		for v := 0; v < n; v++ {
			if !visited[v] && weight[v] > bestW {
				best, bestW = v, weight[v]
			}
		}
		visited[best] = true
		mcs = append(mcs, best)
		adj[best].ForEach(func(u int) {
			if !visited[u] {
				weight[u]++
			}
		})
	}
	pos := e.holePos // position in elimination order = reverse MCS
	for i, v := range mcs {
		pos[v] = n - 1 - i
	}

	later := e.holeLater
	for v := 0; v < n; v++ {
		later.Clear()
		p, pPos := -1, n
		adj[v].ForEach(func(u int) {
			if pos[u] > pos[v] {
				later.Add(u)
				if pos[u] < pPos {
					p, pPos = u, pos[u]
				}
			}
		})
		if p < 0 {
			continue
		}
		later.Remove(p)
		bad := e.holeBad
		bad.CopyFrom(later)
		bad.SubtractWith(adj[p])
		if bad.Empty() {
			continue
		}
		// v has later non-adjacent neighbors p and w: close a hole
		// through v.
		var hole []int
		bad.Some(func(w int) bool {
			if path := e.shortestAvoidingFast(adj, p, w, v); path != nil {
				hole = append([]int{v}, path...)
				return true
			}
			return false
		})
		if hole != nil {
			return hole
		}
	}
	return nil
}

// shortestAvoidingFast is shortestAvoiding on the engine's scratch
// buffers: a BFS whose banned set, parent array and queue are reused
// across calls. Only the returned path is allocated.
func (e *engine) shortestAvoidingFast(adj []graph.Set, p, w, v int) []int {
	banned := e.holeBanned
	banned.CopyFrom(adj[v])
	banned.Add(v)
	banned.Remove(p)
	banned.Remove(w)

	prev := e.holePrev
	for i := 0; i < e.n; i++ {
		prev[i] = -1
	}
	prev[p] = p
	queue := append(e.holeQueue[:0], p)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		if x == w {
			// Reconstruct path p..w.
			var rev []int
			for c := w; c != p; c = prev[c] {
				rev = append(rev, c)
			}
			rev = append(rev, p)
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		adj[x].ForEach(func(y int) {
			if prev[y] < 0 && !banned.Has(y) {
				prev[y] = x
				queue = append(queue, y)
			}
		})
	}
	e.holeQueue = queue[:0]
	return nil
}
