package core

import "testing"

// buildAdj fixes the given pairs to the given state in dimension 0 and
// returns the engine (capacities are generous so no other rule fires).
func buildAdj(t *testing.T, n int, pairs [][2]int, s EdgeState) *engine {
	t.Helper()
	e := freshEngine(n, false)
	for _, pr := range pairs {
		e.setState(0, e.pidx[pr[0]][pr[1]], s, confSize)
	}
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("setup conflicted")
	}
	return e
}

func TestFindHoleInDetectsC4(t *testing.T) {
	e := buildAdj(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, Overlap)
	hole := e.findHoleIn(e.ovAdj[0])
	if hole == nil {
		t.Fatal("C4 not found")
	}
	if len(hole) != 4 {
		t.Fatalf("hole = %v", hole)
	}
	assertIsHole(t, e, hole)
}

func TestFindHoleInDetectsC6(t *testing.T) {
	e := buildAdj(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, Overlap)
	hole := e.findHoleIn(e.ovAdj[0])
	if hole == nil {
		t.Fatal("C6 not found")
	}
	if len(hole) != 6 {
		t.Fatalf("hole = %v", hole)
	}
	assertIsHole(t, e, hole)
}

func TestFindHoleInChordalGraphs(t *testing.T) {
	// A triangle fan is chordal: no hole may be reported.
	e := buildAdj(t, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {2, 3}, {3, 4}}, Overlap)
	if hole := e.findHoleIn(e.ovAdj[0]); hole != nil {
		t.Fatalf("hole %v reported in a chordal graph", hole)
	}
	// An empty graph.
	e2 := freshEngine(5, false)
	if hole := e2.findHoleIn(e2.ovAdj[0]); hole != nil {
		t.Fatalf("hole %v in an empty graph", hole)
	}
}

func TestFindHoleInCycleWithChord(t *testing.T) {
	// C5 plus one chord {0,2}: still contains the hole 0-2-3-4-0.
	e := buildAdj(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}, Overlap)
	hole := e.findHoleIn(e.ovAdj[0])
	if hole == nil {
		t.Fatal("hole hidden by a chord not found")
	}
	if len(hole) != 4 {
		t.Fatalf("hole = %v, want length 4", hole)
	}
	assertIsHole(t, e, hole)
}

// assertIsHole verifies the witness: consecutive vertices adjacent,
// non-consecutive pairs not adjacent (in the decided overlap graph).
func assertIsHole(t *testing.T, e *engine, hole []int) {
	t.Helper()
	k := len(hole)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			adjacent := e.ovAdj[0][hole[i]].Has(hole[j])
			consecutive := j == i+1 || (i == 0 && j == k-1)
			if adjacent != consecutive {
				t.Fatalf("witness %v is not an induced cycle (pair %d,%d adjacent=%v)",
					hole, hole[i], hole[j], adjacent)
			}
		}
	}
}

func TestShortestAvoiding(t *testing.T) {
	// Path 1-2-3 plus a long detour 1-4-5-3; vertex 0 adjacent to 1, 3.
	e := buildAdj(t, 6, [][2]int{{1, 2}, {2, 3}, {1, 4}, {4, 5}, {5, 3}, {0, 1}, {0, 3}}, Overlap)
	p := shortestAvoiding(e.ovAdj[0], 1, 3, 0)
	if p == nil {
		t.Fatal("no path found")
	}
	if len(p) != 3 || p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatalf("path = %v, want [1 2 3]", p)
	}
	// Ban the short route by making 2 a neighbor of 0: the detour wins.
	e2 := buildAdj(t, 6, [][2]int{{1, 2}, {2, 3}, {1, 4}, {4, 5}, {5, 3}, {0, 1}, {0, 3}, {0, 2}}, Overlap)
	p2 := shortestAvoiding(e2.ovAdj[0], 1, 3, 0)
	if p2 == nil {
		t.Fatal("detour not found")
	}
	if len(p2) != 4 || p2[1] != 4 || p2[2] != 5 {
		t.Fatalf("path = %v, want [1 4 5 3]", p2)
	}
	// No path at all when everything is banned.
	e3 := buildAdj(t, 4, [][2]int{{1, 2}, {2, 3}, {0, 2}}, Overlap)
	if p3 := shortestAvoiding(e3.ovAdj[0], 1, 3, 0); p3 != nil {
		t.Fatalf("phantom path %v", p3)
	}
}
