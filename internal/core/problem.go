// Package core implements the packing-class branch-and-bound engine —
// the primary contribution of the paper.
//
// A d-dimensional orthogonal packing is characterized (Fekete–Schepers)
// by its tuple of component graphs G_1..G_d: {u,v} ∈ E_i iff the
// projections of boxes u and v onto axis i overlap. The tuple is a
// *packing class* iff
//
//	C1: every G_i is an interval graph,
//	C2: every stable set S of G_i satisfies Σ_{v∈S} w_i(v) ≤ W_i,
//	C3: E_1 ∩ … ∩ E_d = ∅,
//
// and every packing class corresponds to at least one feasible packing
// (Theorem 1). The engine searches over the state of each (dimension,
// pair) — overlap / disjoint / undecided — with constraint propagation,
// instead of enumerating geometric coordinates.
//
// Temporal precedence constraints (the paper's extension) are handled on
// designated "ordered" dimensions: disjoint pairs there carry an
// orientation, seeded by the precedence arcs and closed under the path
// (D1) and transitivity (D2) implication rules of Section 4. Orientation
// conflicts prune the search; by Theorem 2 the closure is exact at the
// leaves.
package core

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/obs"
)

// EdgeState is the decision state of one (dimension, pair) variable.
type EdgeState uint8

const (
	// Unknown means the pair is not yet decided in this dimension.
	Unknown EdgeState = iota
	// Overlap means the two boxes' projections intersect in this
	// dimension (a component edge of G_i).
	Overlap
	// Disjoint means the projections do not intersect (an edge of the
	// complement — a comparability edge).
	Disjoint
)

// String renders the state for traces and error messages.
func (s EdgeState) String() string {
	switch s {
	case Overlap:
		return "overlap"
	case Disjoint:
		return "disjoint"
	default:
		return "unknown"
	}
}

// OrientVal is the orientation of a disjoint pair (u, v) with u < v on an
// ordered dimension.
type OrientVal uint8

const (
	// OrientNone means the disjoint pair is not yet oriented.
	OrientNone OrientVal = iota
	// OrientFwd means u's interval lies entirely before v's (u < v).
	OrientFwd
	// OrientRev means v's interval lies entirely before u's.
	OrientRev
)

// Dim describes one packing dimension.
type Dim struct {
	// Cap is the container extent in this dimension.
	Cap int
	// Sizes holds the box extents, indexed by box.
	Sizes []int
	// Ordered marks the dimension as carrying precedence constraints;
	// disjoint pairs on it are oriented and D1/D2 closure applies.
	Ordered bool
}

// SeedArc fixes, on an ordered dimension, box From entirely before box
// To. Precedence constraints translate to seed arcs on the time axis.
type SeedArc struct {
	Dim      int
	From, To int
}

// FixedEdge pre-decides the state of one pair in one dimension. The
// FixedS problem variants (start times given) fix the whole time
// dimension this way.
type FixedEdge struct {
	Dim   int
	U, V  int
	State EdgeState
}

// Problem is a d-dimensional orthogonal packing decision problem over n
// boxes, optionally with seed orientations and pre-fixed edges.
type Problem struct {
	N     int
	Dims  []Dim
	Seeds []SeedArc
	Fixed []FixedEdge
}

// Validate checks dimensional consistency of the problem.
func (p *Problem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("core: problem has %d boxes", p.N)
	}
	if len(p.Dims) < 2 {
		return fmt.Errorf("core: problem has %d dimensions; need at least 2", len(p.Dims))
	}
	for i, d := range p.Dims {
		if len(d.Sizes) != p.N {
			return fmt.Errorf("core: dim %d has %d sizes for %d boxes", i, len(d.Sizes), p.N)
		}
		if d.Cap <= 0 {
			return fmt.Errorf("core: dim %d has capacity %d", i, d.Cap)
		}
		for b, s := range d.Sizes {
			if s <= 0 {
				return fmt.Errorf("core: box %d has size %d in dim %d", b, s, i)
			}
			if s > d.Cap {
				return fmt.Errorf("core: box %d (size %d) exceeds capacity %d of dim %d", b, s, d.Cap, i)
			}
		}
	}
	for _, a := range p.Seeds {
		if a.Dim < 0 || a.Dim >= len(p.Dims) || !p.Dims[a.Dim].Ordered {
			return fmt.Errorf("core: seed arc on non-ordered dim %d", a.Dim)
		}
		if a.From < 0 || a.From >= p.N || a.To < 0 || a.To >= p.N || a.From == a.To {
			return fmt.Errorf("core: seed arc %d→%d out of range", a.From, a.To)
		}
	}
	for _, f := range p.Fixed {
		if f.Dim < 0 || f.Dim >= len(p.Dims) {
			return fmt.Errorf("core: fixed edge on dim %d out of range", f.Dim)
		}
		if f.U < 0 || f.U >= p.N || f.V < 0 || f.V >= p.N || f.U == f.V {
			return fmt.Errorf("core: fixed edge {%d,%d} out of range", f.U, f.V)
		}
		if f.State == Unknown {
			return fmt.Errorf("core: fixed edge {%d,%d} with unknown state", f.U, f.V)
		}
	}
	return nil
}

// Status is the outcome of a Solve call.
type Status int

const (
	// StatusFeasible means a packing class (hence a packing) was found.
	StatusFeasible Status = iota
	// StatusInfeasible means the search space was exhausted.
	StatusInfeasible
	// StatusNodeLimit means the node budget ran out before a decision.
	StatusNodeLimit
	// StatusTimeLimit means the deadline passed before a decision.
	StatusTimeLimit
	// StatusCanceled means Options.Ctx was canceled before a decision.
	StatusCanceled
)

// String renders the status for logs and CLI output.
func (s Status) String() string {
	switch s {
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusNodeLimit:
		return "node-limit"
	case StatusTimeLimit:
		return "time-limit"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Decided reports whether the status is a definite answer.
func (s Status) Decided() bool { return s == StatusFeasible || s == StatusInfeasible }

// Solution is a feasible packing extracted from a packing class:
// Coords[i][b] is the position of box b along dimension i.
type Solution struct {
	Coords [][]int
}

// Options tunes the engine. The Disable* switches exist for the ablation
// experiments in DESIGN.md §6; production callers leave them false.
type Options struct {
	// NodeLimit bounds the number of search nodes (0 = unlimited).
	NodeLimit int64
	// Deadline aborts the search after this instant (zero = none).
	Deadline time.Time
	// Ctx, when non-nil, is polled on the engine's node cadence (every
	// 256 nodes, alongside the deadline poll); once it is done the
	// search unwinds promptly and Solve returns StatusCanceled with the
	// partial statistics accumulated so far. This is the cancellation
	// path the concurrent optimization drivers use to abandon probes
	// whose answer another probe has made redundant.
	Ctx context.Context

	// Progress, when non-nil, receives a Snapshot of search effort on
	// the engine's node-count cadence — every 256 nodes, piggybacking
	// on the deadline poll, so the untraced hot path pays only a nil
	// check. Callbacks must be fast; they run inside the search loop.
	Progress obs.ProgressFunc
	// ProgressPhase labels emitted snapshots; empty means "search".
	// Callers embedding the engine in a larger pipeline (the solver's
	// three-stage framework) set it to distinguish stages.
	ProgressPhase string

	// DisableC4Rule turns off the induced-chordless-4-cycle propagation
	// (condition C1 during the search; leaves still verify chordality).
	DisableC4Rule bool
	// DisableHoleRule turns off the per-node chordless-cycle (hole)
	// detection that generalizes the C4 rule to longer cycles.
	DisableHoleRule bool
	// DisableCliqueRule turns off the C2 heavy-clique conflict check on
	// newly fixed disjoint edges.
	DisableCliqueRule bool
	// DisableCliqueForce turns off the per-node pass that fixes pairs to
	// Overlap when Disjoint would complete an overweight clique.
	DisableCliqueForce bool
	// DisableOrientRules turns off D1/D2 closure during the search;
	// orientation consistency is then only tested at the leaves
	// (the "black box at the leaves" strawman of Section 4.2).
	DisableOrientRules bool
	// TimeOverlapFirst controls value ordering on ordered dimensions:
	// when true (default behaviour is set by the solver), Overlap is
	// tried before Disjoint on the time axis.
	TimeOverlapFirst bool

	// ReferenceRules selects the pre-optimization straight-line rule
	// implementations (per-call allocation, no clique-force memo, no C4
	// viability filter, recomputed branch scores) in place of the
	// incremental fast paths. Both paths are bit-identical by contract:
	// same Status, same witness placement, and the same Stats — node
	// counts included. The knob exists for the differential tests and
	// for cmd/fpgabench's -compare-ref speedup measurement; production
	// callers leave it false.
	ReferenceRules bool

	// Workers, when greater than 1, explores the branch-and-bound tree
	// itself on a work-stealing pool of that many goroutines: idle
	// workers receive cloned engine states for not-yet-explored sibling
	// subtrees ("donations"), and the first definitive answer stops the
	// pool. The parallel path is answer-equal to the sequential one —
	// same Status and, when feasible, a valid witness — but not
	// bit-identical: Stats are the sum over all shards and depend on
	// scheduling (see Stats.Steals). Workers <= 1 (including 0) keeps
	// the fully deterministic sequential search. Incompatible with
	// ReferenceRules only in the sense that the reference path is never
	// parallelized; Workers is ignored when ReferenceRules is set.
	Workers int

	// OnSolution, when non-nil and Workers > 1, is invoked exactly once
	// with the winning solution of a parallel search, from the worker
	// goroutine that found it, before Solve returns. The strategy layer
	// uses it to broadcast the witness into its incumbent store so
	// concurrent sweep probes can prune. The hook must be fast and
	// concurrency-safe; the sequential path ignores it (callers see the
	// solution in the Result).
	OnSolution func(*Solution)
}

// Result bundles the outcome of a Solve call.
type Result struct {
	Status   Status
	Solution *Solution // non-nil iff Status == StatusFeasible
	Stats    Stats
}
