package core

import "fpga3d/internal/graph"

// propagate processes the event queue to a fixpoint or a conflict,
// applying the rules C3 (overlap counting), C2 (heavy cliques of
// disjoint edges), C1 (chordless 4-cycles) and, on ordered dimensions,
// the D1/D2 orientation implications of the paper.
func (e *engine) propagate() {
	for e.conflict == noConflict && len(e.queue) > 0 {
		ev := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.stats.Propagations++
		switch ev.kind {
		case evState:
			e.onState(int(ev.dim), int(ev.pair))
		case evOrient:
			e.onOrient(int(ev.dim), int(ev.pair))
		}
	}
	if e.conflict != noConflict {
		e.queue = e.queue[:0]
	}
}

func (e *engine) onState(d, p int) {
	s := e.state[d][p]
	u, v := int(e.pairU[p]), int(e.pairV[p])

	if s == Overlap {
		// C3: at least one dimension must be disjoint for every pair.
		cnt, unkDim := 0, -1
		for dd := 0; dd < e.nd; dd++ {
			switch e.state[dd][p] {
			case Overlap:
				cnt++
			case Unknown:
				unkDim = dd
			}
		}
		if cnt == e.nd {
			e.fail(confC3)
			return
		}
		if cnt == e.nd-1 && unkDim >= 0 {
			e.stats.ForcedC3++
			e.setState(unkDim, p, Disjoint, confC3)
			if e.conflict != noConflict {
				return
			}
		}
		if !e.opt.DisableCliqueRule && e.heavyAreaCliqueThrough(d, u, v) {
			e.fail(confArea)
			return
		}
		if e.orient[d] != nil && !e.opt.DisableOrientRules {
			e.orientRulesOnOverlap(d, u, v)
			if e.conflict != noConflict {
				return
			}
		}
	} else { // Disjoint
		if !e.opt.DisableCliqueRule && e.heavyCliqueThrough(d, u, v) {
			e.fail(confClique)
			return
		}
		if e.orient[d] != nil && !e.opt.DisableOrientRules {
			e.orientRulesOnDisjoint(d, u, v)
			if e.conflict != noConflict {
				return
			}
		}
	}
	if !e.opt.DisableC4Rule {
		e.c4Scan(d, u, v)
	}
}

// orientRulesOnOverlap handles D1/D2 consequences of pair {u,v} becoming
// a component (overlap) edge on ordered dimension d.
func (e *engine) orientRulesOnOverlap(d, u, v int) {
	for a := 0; a < e.n && e.conflict == noConflict; a++ {
		if a == u || a == v {
			continue
		}
		pau, pav := e.pidx[a][u], e.pidx[a][v]
		// D1: comparability edges {a,u}, {a,v} with component edge
		// {u,v} must point the same way relative to a.
		if e.state[d][pau] == Disjoint && e.state[d][pav] == Disjoint {
			auSet := e.orient[d][pau] != OrientNone
			avSet := e.orient[d][pav] != OrientNone
			switch {
			case auSet && !avSet:
				e.stats.ForcedOrient++
				if e.orientedBefore(d, a, u) {
					e.setBefore(d, a, v, confOrient)
				} else {
					e.setBefore(d, v, a, confOrient)
				}
			case avSet && !auSet:
				e.stats.ForcedOrient++
				if e.orientedBefore(d, a, v) {
					e.setBefore(d, a, u, confOrient)
				} else {
					e.setBefore(d, u, a, confOrient)
				}
			case auSet && avSet:
				if e.orientedBefore(d, a, u) != e.orientedBefore(d, a, v) {
					e.fail(confOrient)
				}
			}
		}
		// D2 violation: u→a→v or v→a→u would force {u,v} disjoint.
		if e.orientedBefore(d, u, a) && e.orientedBefore(d, a, v) {
			e.fail(confOrient)
			return
		}
		if e.orientedBefore(d, v, a) && e.orientedBefore(d, a, u) {
			e.fail(confOrient)
			return
		}
	}
}

// orientRulesOnDisjoint handles D1 consequences of pair {u,v} becoming a
// comparability (disjoint) edge on ordered dimension d: an already
// oriented comparability edge at either endpoint whose far end overlaps
// the other endpoint forces the orientation of {u,v}.
func (e *engine) orientRulesOnDisjoint(d, u, v int) {
	for a := 0; a < e.n && e.conflict == noConflict; a++ {
		if a == u || a == v {
			continue
		}
		pau, pav := e.pidx[a][u], e.pidx[a][v]
		// Shared vertex u: {u,a} oriented, {a,v} overlap.
		if e.state[d][pau] == Disjoint && e.orient[d][pau] != OrientNone && e.state[d][pav] == Overlap {
			e.stats.ForcedOrient++
			if e.orientedBefore(d, u, a) {
				e.setBefore(d, u, v, confOrient)
			} else {
				e.setBefore(d, v, u, confOrient)
			}
		}
		// Shared vertex v: {v,a} oriented, {a,u} overlap.
		if e.conflict == noConflict &&
			e.state[d][pav] == Disjoint && e.orient[d][pav] != OrientNone && e.state[d][pau] == Overlap {
			e.stats.ForcedOrient++
			if e.orientedBefore(d, v, a) {
				e.setBefore(d, v, u, confOrient)
			} else {
				e.setBefore(d, u, v, confOrient)
			}
		}
	}
}

// onOrient handles D1/D2 consequences of a newly oriented comparability
// edge on ordered dimension d.
func (e *engine) onOrient(d, p int) {
	if e.opt.DisableOrientRules {
		return
	}
	u, v := int(e.pairU[p]), int(e.pairV[p])
	from, to := u, v
	if e.orient[d][p] == OrientRev {
		from, to = v, u
	}
	for w := 0; w < e.n && e.conflict == noConflict; w++ {
		if w == from || w == to {
			continue
		}
		pfw, ptw := e.pidx[from][w], e.pidx[to][w]
		// D1 at from: {from,w} disjoint, {to,w} overlap ⇒ from→w.
		if e.state[d][pfw] == Disjoint && e.state[d][ptw] == Overlap {
			e.stats.ForcedOrient++
			e.setBefore(d, from, w, confOrient)
			if e.conflict != noConflict {
				return
			}
		}
		// D1 at to: {to,w} disjoint, {from,w} overlap ⇒ w→to.
		if e.state[d][ptw] == Disjoint && e.state[d][pfw] == Overlap {
			e.stats.ForcedOrient++
			e.setBefore(d, w, to, confOrient)
			if e.conflict != noConflict {
				return
			}
		}
		// D2: from→to plus to→w forces from→w (and fixes {from,w}
		// disjoint — a conflict if it is an overlap edge).
		if e.orientedBefore(d, to, w) {
			e.stats.ForcedOrient++
			e.setBefore(d, from, w, confOrient)
			if e.conflict != noConflict {
				return
			}
		}
		// D2: w→from plus from→to forces w→to.
		if e.orientedBefore(d, w, from) {
			e.stats.ForcedOrient++
			e.setBefore(d, w, to, confOrient)
			if e.conflict != noConflict {
				return
			}
		}
	}
}

// heavyCliqueThrough reports whether dimension d contains a set of
// pairwise-disjoint boxes including u and v whose total size exceeds the
// capacity — a violation of C2 that can never be repaired, since decided
// disjoint edges stay disjoint.
func (e *engine) heavyCliqueThrough(d, u, v int) bool {
	w := e.p.Dims[d].Sizes
	budget := e.p.Dims[d].Cap - w[u] - w[v]
	if budget < 0 {
		return true
	}
	if e.opt.ReferenceRules {
		cand := e.disAdj[d][u].Clone()
		cand.IntersectWith(e.disAdj[d][v])
		return cliqueExceeds(e.disAdj[d], w, cand, budget)
	}
	cand := e.cliqueScratch(0)
	cand.IntersectOf(e.disAdj[d][u], e.disAdj[d][v])
	return e.cliqueExceedsFast(e.disAdj[d], w, cand, budget, 1)
}

// heavyAreaCliqueThrough reports whether dimension d contains a set of
// pairwise-overlapping boxes including u and v whose cross-sections
// cannot coexist. By the Helly property of intervals, a clique of G_d
// shares a common coordinate, so its members exist simultaneously there
// and their projections onto the remaining dimensions must be pairwise
// disjoint — their total cross-area is bounded by the product of the
// other capacities.
func (e *engine) heavyAreaCliqueThrough(d, u, v int) bool {
	budget := e.coCap[d] - e.coArea[d][u] - e.coArea[d][v]
	if budget < 0 {
		return true
	}
	if e.opt.ReferenceRules {
		cand := e.ovAdj[d][u].Clone()
		cand.IntersectWith(e.ovAdj[d][v])
		return cliqueExceeds(e.ovAdj[d], e.coArea[d], cand, budget)
	}
	cand := e.cliqueScratch(0)
	cand.IntersectOf(e.ovAdj[d][u], e.ovAdj[d][v])
	return e.cliqueExceedsFast(e.ovAdj[d], e.coArea[d], cand, budget, 1)
}

// cliqueExceeds reports whether the graph given by the adjacency rows
// restricted to cand contains a clique with total weight strictly
// greater than budget. This is the reference implementation
// (Options.ReferenceRules): it clones the candidate set at every
// branch. cliqueExceedsFast is the allocation-free production twin;
// the two must stay decision-identical (TestDifferentialRulePaths).
func cliqueExceeds(adj []graph.Set, w []int, cand graph.Set, budget int) bool {
	if budget < 0 {
		return true
	}
	sum, pick, pickW := 0, -1, -1
	cand.ForEach(func(x int) {
		sum += w[x]
		if w[x] > pickW {
			pick, pickW = x, w[x]
		}
	})
	if sum <= budget {
		return false
	}
	// Branch on the heaviest candidate: include it, then exclude it.
	with := cand.Clone()
	with.IntersectWith(adj[pick])
	if cliqueExceeds(adj, w, with, budget-pickW) {
		return true
	}
	without := cand.Clone()
	without.Remove(pick)
	return cliqueExceeds(adj, w, without, budget)
}

// cliqueExceedsFast is cliqueExceeds on the engine's per-depth scratch
// sets: the same branch order (heaviest candidate first, ties to the
// smallest vertex) and the same pruning, but zero allocations. cand
// must live in cliqueScratch(depth-1) or caller-owned storage; the
// callee only writes scratch slots >= depth.
func (e *engine) cliqueExceedsFast(adj []graph.Set, w []int, cand graph.Set, budget, depth int) bool {
	if budget < 0 {
		return true
	}
	sum, pick, pickW := cand.SumAndMax(w)
	if sum <= budget {
		return false
	}
	s := e.cliqueScratch(depth)
	s.IntersectOf(cand, adj[pick])
	if e.cliqueExceedsFast(adj, w, s, budget-pickW, depth+1) {
		return true
	}
	s.CopyFrom(cand)
	s.Remove(pick)
	return e.cliqueExceedsFast(adj, w, s, budget, depth+1)
}

// cliqueForcePass fixes every still-unknown pair whose Disjoint decision
// would complete an overweight clique of disjoint edges (so it must be
// Overlap), and every pair whose Overlap decision would complete an
// overweight area clique of overlap edges (so it must be Disjoint).
// Runs to a fixpoint together with propagation.
//
// The production path memoizes "no forcing" answers against the
// per-dimension adjacency versions (see disCliqueForces), so the
// repeated fixpoint passes — and the per-node re-runs along a search
// branch — recompute the exponential clique bound only for pairs whose
// candidate neighborhoods were actually dirtied since the last check.
func (e *engine) cliqueForcePass() {
	for e.conflict == noConflict {
		changed := false
		for d := 0; d < e.nd && e.conflict == noConflict; d++ {
			if e.unknown[d] == 0 {
				continue
			}
			w := e.p.Dims[d].Sizes
			cap := e.p.Dims[d].Cap
			for p := 0; p < e.npairs && e.conflict == noConflict; p++ {
				if e.state[d][p] != Unknown {
					continue
				}
				u, v := int(e.pairU[p]), int(e.pairV[p])
				if e.disCliqueForces(d, p, u, v, w, cap) {
					e.stats.ForcedClique++
					e.setState(d, p, Overlap, confClique)
					changed = true
					continue
				}
				if e.areaCliqueForces(d, p, u, v) {
					e.stats.ForcedArea++
					e.setState(d, p, Disjoint, confArea)
					changed = true
				}
			}
		}
		e.propagate()
		if !changed {
			return
		}
	}
}

// disCliqueForces reports whether deciding pair p Disjoint in dimension
// d would complete an overweight clique of disjoint edges. A negative
// answer computed at disjoint-adjacency version s stays valid while the
// rows of u, v and of every candidate vertex are still at version <= s
// (the bound only reads those rows, and unchanged u/v rows pin the
// candidate set itself), so it is memoized and skipped until dirtied.
func (e *engine) disCliqueForces(d, p, u, v int, w []int, cap int) bool {
	budget := cap - w[u] - w[v]
	if budget < 0 {
		return true
	}
	if e.opt.ReferenceRules {
		cand := e.disAdj[d][u].Clone()
		cand.IntersectWith(e.disAdj[d][v])
		return cliqueExceeds(e.disAdj[d], w, cand, budget)
	}
	cand := e.cliqueScratch(0)
	cand.IntersectOf(e.disAdj[d][u], e.disAdj[d][v])
	rowVer := e.rowVerDis[d]
	if snap := e.cfDisSeen[d][p]; snap >= 0 && rowVer[u] <= snap && rowVer[v] <= snap &&
		!cand.Some(func(x int) bool { return rowVer[x] > snap }) {
		return false
	}
	if e.cliqueExceedsFast(e.disAdj[d], w, cand, budget, 1) {
		return true
	}
	e.cfDisSeen[d][p] = e.verDis[d]
	return false
}

// areaCliqueForces is disCliqueForces for the Helly area rule: would
// deciding pair p Overlap in dimension d complete an overlap clique
// whose cross-sections exceed the perpendicular capacity?
func (e *engine) areaCliqueForces(d, p, u, v int) bool {
	budget := e.coCap[d] - e.coArea[d][u] - e.coArea[d][v]
	if budget < 0 {
		return true
	}
	if e.opt.ReferenceRules {
		cand := e.ovAdj[d][u].Clone()
		cand.IntersectWith(e.ovAdj[d][v])
		return cliqueExceeds(e.ovAdj[d], e.coArea[d], cand, budget)
	}
	cand := e.cliqueScratch(0)
	cand.IntersectOf(e.ovAdj[d][u], e.ovAdj[d][v])
	rowVer := e.rowVerOv[d]
	if snap := e.cfAreaSeen[d][p]; snap >= 0 && rowVer[u] <= snap && rowVer[v] <= snap &&
		!cand.Some(func(x int) bool { return rowVer[x] > snap }) {
		return false
	}
	if e.cliqueExceedsFast(e.ovAdj[d], e.coArea[d], cand, budget, 1) {
		return true
	}
	e.cfAreaSeen[d][p] = e.verOv[d]
	return false
}

// c4Scan enforces C1's forbidden configuration: an induced chordless
// 4-cycle in a component graph (4 overlap edges around the cycle, both
// diagonals disjoint) cannot appear in an interval graph. A fully
// decided pattern is a conflict; a pattern with exactly one undecided
// pair forces that pair to the breaking value. Only quadruples containing
// the changed pair {u,v} are scanned.
//
// The production path prunes each configuration on the three slots
// that do not involve b: a configuration with a decided-wrong slot, or
// with two open slots, among {uv, ua, va} can neither fire nor
// conflict for any b, so its inner loop is skipped. Forcings during
// the scan refresh the cached slot states (c4Viability), keeping the
// visit sequence identical to the reference's fresh-read-per-check.
func (e *engine) c4Scan(d, u, v int) {
	if e.opt.ReferenceRules {
		e.c4ScanRef(d, u, v)
		return
	}
	row := e.state[d]
	pu, pv := e.pidx[u], e.pidx[v]
	puv := pu[v]
	for a := 0; a < e.n && e.conflict == noConflict; a++ {
		if a == u || a == v {
			continue
		}
		pa := e.pidx[a]
		pua, pva := pu[a], pv[a]
		v1, v2, v3 := e.c4Viability(row[puv], row[pua], row[pva])
		if !v1 && !v2 && !v3 {
			continue
		}
		depth := len(e.trail)
		for b := a + 1; b < e.n && e.conflict == noConflict; b++ {
			if b == u || b == v {
				continue
			}
			// Three configurations, named by their diagonal matching.
			if v1 {
				e.c4Check(d, puv, pa[b], pua, pva, pv[b], pu[b])
			}
			if len(e.trail) != depth {
				depth = len(e.trail)
				v1, v2, v3 = e.c4Viability(row[puv], row[pua], row[pva])
			}
			if v2 {
				e.c4Check(d, pua, pv[b], puv, pva, pa[b], pu[b])
			}
			if len(e.trail) != depth {
				depth = len(e.trail)
				v1, v2, v3 = e.c4Viability(row[puv], row[pua], row[pva])
			}
			if v3 {
				e.c4Check(d, pu[b], pva, puv, pv[b], pa[b], pua)
			}
			if len(e.trail) != depth {
				depth = len(e.trail)
				v1, v2, v3 = e.c4Viability(row[puv], row[pua], row[pva])
			}
			if !v1 && !v2 && !v3 {
				break
			}
		}
	}
}

// c4Viability classifies the three C4 configurations of c4Scan by
// their b-independent slots. Configuration k is viable when none of
// its three (uv, ua, va) slots is decided against the pattern and at
// most one of them is Unknown — otherwise c4Check would return early
// for every b, because the full pattern allows at most one open slot.
func (e *engine) c4Viability(suv, sua, sva EdgeState) (v1, v2, v3 bool) {
	// sDis is the slot that must end up Disjoint, sOv1/sOv2 the slots
	// that must end up Overlap.
	viable := func(sDis, sOv1, sOv2 EdgeState) bool {
		if sDis == Overlap || sOv1 == Disjoint || sOv2 == Disjoint {
			return false
		}
		unknowns := 0
		if sDis == Unknown {
			unknowns++
		}
		if sOv1 == Unknown {
			unknowns++
		}
		if sOv2 == Unknown {
			unknowns++
		}
		return unknowns <= 1
	}
	// Config 1: diagonal uv (Disjoint), cycle edges ua, va (Overlap).
	// Config 2: diagonal ua (Disjoint), cycle edges uv, va (Overlap).
	// Config 3: diagonal va (Disjoint), cycle edges uv, ua (Overlap).
	return viable(suv, sua, sva), viable(sua, suv, sva), viable(sva, suv, sua)
}

// c4Check tests one C4 configuration: diagonals d1, d2 must be Disjoint
// and the cycle pairs c1..c4 must be Overlap for the forbidden pattern.
func (e *engine) c4Check(d int, d1, d2, c1, c2, c3, c4 int) {
	pairs := [6]int{d1, d2, c1, c2, c3, c4}
	var want [6]EdgeState
	want[0], want[1] = Disjoint, Disjoint
	want[2], want[3], want[4], want[5] = Overlap, Overlap, Overlap, Overlap

	unknownSlot := -1
	for i := 0; i < 6; i++ {
		s := e.state[d][pairs[i]]
		if s == Unknown {
			if unknownSlot >= 0 {
				return // two or more open slots: no implication yet
			}
			unknownSlot = i
			continue
		}
		if s != want[i] {
			return // pattern already broken
		}
	}
	if unknownSlot < 0 {
		e.fail(confC4)
		return
	}
	// Exactly one open slot: force the value that breaks the pattern.
	e.stats.ForcedC4++
	breaking := Overlap
	if want[unknownSlot] == Overlap {
		breaking = Disjoint
	}
	e.setState(d, pairs[unknownSlot], breaking, confC4)
}
