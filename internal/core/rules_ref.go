package core

import "fpga3d/internal/graph"

// This file holds the pre-optimization ("reference") implementations of
// the hot-path rules, selected by Options.ReferenceRules. They are the
// straight-line scans the engine shipped with before the incremental
// bitset candidate sets, the clique-force memo and the C4 viability
// filter were introduced; the optimized twins in rules.go, hole.go and
// search.go must stay observationally identical — same statuses, same
// witness placements, same Stats (nodes, propagations, per-rule forced
// and conflict counters). TestDifferentialRulePaths enforces this on
// random instances, and cmd/fpgabench's -compare-ref mode enforces it
// on the full benchmark suite while measuring the speedup.

// c4ScanRef is c4Scan without the per-configuration viability filter:
// every quadruple through the changed pair {u,v} runs all three
// configuration checks with fresh state reads.
func (e *engine) c4ScanRef(d, u, v int) {
	for a := 0; a < e.n && e.conflict == noConflict; a++ {
		if a == u || a == v {
			continue
		}
		for b := a + 1; b < e.n && e.conflict == noConflict; b++ {
			if b == u || b == v {
				continue
			}
			// Three configurations, named by their diagonal matching.
			e.c4Check(d, e.pidx[u][v], e.pidx[a][b], e.pidx[u][a], e.pidx[a][v], e.pidx[v][b], e.pidx[b][u])
			e.c4Check(d, e.pidx[u][a], e.pidx[v][b], e.pidx[u][v], e.pidx[v][a], e.pidx[a][b], e.pidx[b][u])
			e.c4Check(d, e.pidx[u][b], e.pidx[v][a], e.pidx[u][v], e.pidx[v][b], e.pidx[b][a], e.pidx[a][u])
		}
	}
}

// pickBranchRef recomputes the per-pair undecided-dimension count with
// an inner loop instead of reading the maintained pairUndecided array.
func (e *engine) pickBranchRef() (int, int) {
	bestP, bestScore := -1, -1
	for p := 0; p < e.npairs; p++ {
		undecided := 0
		for d := 0; d < e.nd; d++ {
			if e.state[d][p] == Unknown {
				undecided++
			}
		}
		if undecided == 0 {
			continue
		}
		score := e.minVol[p]*4 + (e.nd-undecided)*e.minVol[p]
		if score > bestScore {
			bestP, bestScore = p, score
		}
	}
	if bestP < 0 {
		return -1, -1
	}
	return e.pickBranchDim(bestP), bestP
}

// findHoleInRef is findHoleIn allocating all of its working storage per
// call instead of reusing the engine's hole scratch buffers.
func (e *engine) findHoleInRef(adj []graph.Set) []int {
	n := e.n

	// Maximum cardinality search.
	weight := make([]int, n)
	visited := make([]bool, n)
	mcs := make([]int, 0, n)
	for len(mcs) < n {
		best, bestW := -1, -1
		for v := 0; v < n; v++ {
			if !visited[v] && weight[v] > bestW {
				best, bestW = v, weight[v]
			}
		}
		visited[best] = true
		mcs = append(mcs, best)
		adj[best].ForEach(func(u int) {
			if !visited[u] {
				weight[u]++
			}
		})
	}
	pos := make([]int, n) // position in elimination order = reverse MCS
	for i, v := range mcs {
		pos[v] = n - 1 - i
	}

	later := graph.NewSet(n)
	for v := 0; v < n; v++ {
		later.Clear()
		p, pPos := -1, n
		adj[v].ForEach(func(u int) {
			if pos[u] > pos[v] {
				later.Add(u)
				if pos[u] < pPos {
					p, pPos = u, pos[u]
				}
			}
		})
		if p < 0 {
			continue
		}
		later.Remove(p)
		bad := later.Clone()
		bad.SubtractWith(adj[p])
		if bad.Empty() {
			continue
		}
		// v has later non-adjacent neighbors p and w: close a hole
		// through v.
		var hole []int
		bad.ForEach(func(w int) {
			if hole == nil {
				if path := shortestAvoiding(adj, p, w, v); path != nil {
					hole = append([]int{v}, path...)
				}
			}
		})
		if hole != nil {
			return hole
		}
	}
	return nil
}

// shortestAvoiding returns a shortest p–w path in the given graph
// restricted to vertices outside N[v] (p and w excepted), or nil if
// none exists. Reference twin of shortestAvoidingFast.
func shortestAvoiding(adj []graph.Set, p, w, v int) []int {
	n := len(adj)
	banned := adj[v].Clone()
	banned.Add(v)
	banned.Remove(p)
	banned.Remove(w)

	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[p] = p
	queue := []int{p}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == w {
			// Reconstruct path p..w.
			var rev []int
			for c := w; c != p; c = prev[c] {
				rev = append(rev, c)
			}
			rev = append(rev, p)
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		adj[x].ForEach(func(y int) {
			if prev[y] < 0 && !banned.Has(y) {
				prev[y] = x
				queue = append(queue, y)
			}
		})
	}
	return nil
}
