package core

import "testing"

// freshEngine returns an engine over n equal boxes in a loose container,
// so no rule fires from sizes alone.
func freshEngine(n int, ordered bool) *engine {
	p := prob(n, [3]int{100, 100, 100}, uniformSizes(2, 2, 2), ordered)
	return newEngine(p, Options{})
}

// distinctEngine returns an engine over n pairwise distinct boxes, so
// the symmetry breaker stays out of orientation tests.
func distinctEngine(n int, ordered bool) *engine {
	p := prob(n, [3]int{100, 100, 100}, func(b int) [3]int {
		return [3]int{1 + b, 2, 2}
	}, ordered)
	return newEngine(p, Options{})
}

func TestSizeRuleAtRoot(t *testing.T) {
	// Two 3-wide boxes in a 5-wide container must overlap in x.
	p := prob(2, [3]int{5, 100, 100}, uniformSizes(3, 2, 2), false)
	r := Solve(p, Options{})
	if r.Status != StatusFeasible {
		t.Fatalf("status = %v", r.Status)
	}
	// x-projections must overlap in the solution.
	x := r.Solution.Coords[0]
	if !(x[0] < x[1]+3 && x[1] < x[0]+3) {
		t.Fatalf("size rule not reflected in solution: x = %v", x)
	}
	if r.Stats.ForcedSize == 0 {
		t.Fatal("ForcedSize not counted")
	}
}

func TestCliqueRuleConflict(t *testing.T) {
	// Three boxes of x-size 4 pairwise disjoint in x exceed capacity 10.
	p := prob(3, [3]int{10, 100, 100}, uniformSizes(4, 2, 2), false)
	e := newEngine(p, Options{})
	e.setState(0, e.pidx[0][1], Disjoint, confSize)
	e.propagate()
	e.setState(0, e.pidx[1][2], Disjoint, confSize)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("two disjoint pairs conflicted too early")
	}
	e.setState(0, e.pidx[0][2], Disjoint, confSize)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("overweight disjoint clique not detected")
	}
}

func TestCliqueForcePass(t *testing.T) {
	// Same setup: with {0,1} and {1,2} disjoint, pair {0,2} must be
	// forced to Overlap by the per-node pass.
	p := prob(3, [3]int{10, 100, 100}, uniformSizes(4, 2, 2), false)
	e := newEngine(p, Options{})
	e.setState(0, e.pidx[0][1], Disjoint, confSize)
	e.setState(0, e.pidx[1][2], Disjoint, confSize)
	e.propagate()
	e.cliqueForcePass()
	if e.conflict != noConflict {
		t.Fatal("unexpected conflict")
	}
	if e.state[0][e.pidx[0][2]] != Overlap {
		t.Fatal("cliqueForcePass did not force {0,2} to Overlap")
	}
}

func TestAreaCliqueRule(t *testing.T) {
	// Two boxes whose cross-sections (y×t) cannot coexist: each has
	// cross-area 6×6 = 36, the container cross-section is 8×8 = 64 < 72.
	// Forcing them to overlap in x must conflict.
	p := prob(2, [3]int{20, 8, 8}, uniformSizes(2, 6, 6), false)
	e := newEngine(p, Options{})
	e.setState(0, e.pidx[0][1], Overlap, confSize)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("area clique violation not detected")
	}

	// The force variant: in the full solve the pair must come out
	// x-disjoint.
	r := Solve(p, Options{})
	if r.Status != StatusFeasible {
		t.Fatalf("status = %v", r.Status)
	}
	x := r.Solution.Coords[0]
	if x[0] < x[1]+2 && x[1] < x[0]+2 {
		t.Fatal("cross-over-capacity boxes overlap in x")
	}
}

func TestC4RuleConflictAndForce(t *testing.T) {
	e := freshEngine(4, false)
	d := 0
	// Build the forbidden pattern in dimension 0 on the cycle
	// 0-2-1-3-0 with diagonals {0,1}, {2,3}: cycle edges Overlap…
	for _, pr := range [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 0}} {
		e.setState(d, e.pidx[pr[0]][pr[1]], Overlap, confSize)
		e.propagate()
		if e.conflict != noConflict {
			t.Fatal("cycle edges alone conflicted")
		}
	}
	// …one diagonal Disjoint: the other diagonal must be forced Overlap.
	e.setState(d, e.pidx[0][1], Disjoint, confSize)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("five-edge pattern conflicted")
	}
	if e.state[d][e.pidx[2][3]] != Overlap {
		t.Fatal("C4 rule did not force the last diagonal")
	}
	if e.stats.ForcedC4 == 0 {
		t.Fatal("ForcedC4 not counted")
	}
}

func TestC4RuleDisabled(t *testing.T) {
	p := prob(4, [3]int{100, 100, 100}, uniformSizes(2, 2, 2), false)
	e := newEngine(p, Options{DisableC4Rule: true, DisableHoleRule: true})
	d := 0
	for _, pr := range [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 0}} {
		e.setState(d, e.pidx[pr[0]][pr[1]], Overlap, confSize)
	}
	e.setState(d, e.pidx[0][1], Disjoint, confSize)
	e.propagate()
	if e.state[d][e.pidx[2][3]] == Overlap {
		t.Fatal("C4 rule fired although disabled")
	}
}

func TestHoleRuleRefutesC5Structure(t *testing.T) {
	// A 5-cycle of overlap edges with four chords disjoint is invisible
	// to the C4 rule (disabled here), yet infeasible either way: leaving
	// the fifth chord disjoint completes a C5 hole, and making it
	// overlap creates a C4 hole (cycle 0-1-2-4 with disjoint diagonals).
	// The hole rule must first force the open chord and then refute.
	e := newEngine(prob(5, [3]int{100, 100, 100}, uniformSizes(2, 2, 2), false),
		Options{DisableC4Rule: true})
	d := 0
	for i := 0; i < 5; i++ {
		e.setState(d, e.pidx[i][(i+1)%5], Overlap, confSize)
	}
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("overlap cycle alone conflicted")
	}
	chords := [][2]int{{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 4}}
	for _, ch := range chords[:4] {
		e.setState(d, e.pidx[ch[0]][ch[1]], Disjoint, confSize)
		e.propagate()
		if e.conflict != noConflict {
			t.Fatal("partial chord pattern conflicted early")
		}
	}
	e.holeCheck()
	if e.conflict == noConflict {
		t.Fatal("hole rule failed to refute the C5 structure")
	}
	if e.stats.ForcedHole == 0 {
		t.Fatal("ForcedHole not counted before the refutation")
	}
}

func TestHoleRuleConflictOnDecidedC5(t *testing.T) {
	e := freshEngine(5, false)
	d := 0
	for i := 0; i < 5; i++ {
		e.setState(d, e.pidx[i][(i+1)%5], Overlap, confSize)
	}
	for _, ch := range [][2]int{{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 4}} {
		e.setState(d, e.pidx[ch[0]][ch[1]], Disjoint, confSize)
	}
	e.propagate()
	e.holeCheck()
	if e.conflict == noConflict {
		t.Fatal("fully decided C5 hole not detected")
	}
}

func TestD1PathImplication(t *testing.T) {
	// Figure 6 (D1): {u,a}, {u,b} disjoint in time, {a,b} overlapping.
	// Orienting u before a must force u before b.
	e := distinctEngine(3, true)
	const d = 2
	u, a, b := 0, 1, 2
	e.setState(d, e.pidx[a][b], Overlap, confSize)
	e.setState(d, e.pidx[u][a], Disjoint, confSize)
	e.setState(d, e.pidx[u][b], Disjoint, confSize)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("setup conflicted")
	}
	e.setBefore(d, u, a, confOrient)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("orientation conflicted")
	}
	if !e.orientedBefore(d, u, b) {
		t.Fatal("D1 did not propagate u before b")
	}
}

func TestD1ConflictingOrientations(t *testing.T) {
	// Same configuration, but the two comparability edges are oriented
	// in opposite directions relative to u before the overlap edge is
	// fixed — fixing it must conflict.
	e := distinctEngine(3, true)
	const d = 2
	u, a, b := 0, 1, 2
	e.setState(d, e.pidx[u][a], Disjoint, confSize)
	e.setState(d, e.pidx[u][b], Disjoint, confSize)
	e.setBefore(d, u, a, confOrient) // u before a
	e.setBefore(d, b, u, confOrient) // b before u
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("setup conflicted early")
	}
	e.setState(d, e.pidx[a][b], Overlap, confSize)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("D1 path conflict not detected")
	}
}

func TestD2TransitivityForcesState(t *testing.T) {
	// u→v and v→w force {u,w} disjoint and oriented u→w, even if the
	// pair was previously unknown.
	e := distinctEngine(3, true)
	const d = 2
	e.setBefore(d, 0, 1, confOrient)
	e.propagate()
	e.setBefore(d, 1, 2, confOrient)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("chain conflicted")
	}
	if e.state[d][e.pidx[0][2]] != Disjoint || !e.orientedBefore(d, 0, 2) {
		t.Fatal("D2 did not force 0 before 2")
	}
}

func TestD2TransitivityConflictOnOverlap(t *testing.T) {
	// With {u,w} fixed overlapping, u→v→w is contradictory.
	e := distinctEngine(3, true)
	const d = 2
	e.setState(d, e.pidx[0][2], Overlap, confSize)
	e.propagate()
	e.setBefore(d, 0, 1, confOrient)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("single arc conflicted")
	}
	e.setBefore(d, 1, 2, confOrient)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("transitivity conflict through an overlap edge not detected")
	}
}

func TestD2CycleConflict(t *testing.T) {
	e := distinctEngine(3, true)
	const d = 2
	e.setBefore(d, 0, 1, confOrient)
	e.propagate()
	e.setBefore(d, 1, 2, confOrient)
	e.propagate()
	e.setBefore(d, 2, 0, confOrient)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("directed cycle not detected")
	}
}

func TestOrientRulesDisabled(t *testing.T) {
	e := newEngine(prob(3, [3]int{100, 100, 100}, uniformSizes(2, 2, 2), true),
		Options{DisableOrientRules: true})
	const d = 2
	e.setBefore(d, 0, 1, confOrient)
	e.propagate()
	e.setBefore(d, 1, 2, confOrient)
	e.propagate()
	if e.state[d][e.pidx[0][2]] == Disjoint {
		t.Fatal("D2 fired although orientation rules are disabled")
	}
}

// TestFigure5ThroughEngine replays the paper's Figure 5 obstruction
// inside the engine: a path-shaped comparability structure whose seeds
// cannot be extended. The engine must detect it during propagation.
func TestFigure5ThroughEngine(t *testing.T) {
	// Boxes 0-1-2-3; time pairs {0,1}, {1,2}, {2,3} disjoint; {0,2},
	// {1,3}, {0,3} overlapping; seeds 0→1 and 3→2.
	e := distinctEngine(4, true)
	const d = 2
	for _, pr := range [][2]int{{0, 2}, {1, 3}, {0, 3}} {
		e.setState(d, e.pidx[pr[0]][pr[1]], Overlap, confSize)
	}
	for _, pr := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		e.setState(d, e.pidx[pr[0]][pr[1]], Disjoint, confSize)
	}
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("structure alone conflicted")
	}
	e.setBefore(d, 0, 1, confOrient)
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("first seed conflicted")
	}
	e.setBefore(d, 3, 2, confOrient)
	e.propagate()
	if e.conflict == noConflict {
		t.Fatal("Figure 5 obstruction not detected by D1/D2 closure")
	}
}

func TestOddAntiholeRule(t *testing.T) {
	// An induced C5 of *disjoint* edges is an odd hole of the complement
	// — comparability graphs are perfect, so this violates C1's
	// comparability half. With all chords decided Overlap the engine
	// must refute; capacities are generous so no clique rule interferes.
	e := freshEngine(5, false)
	d := 0
	for i := 0; i < 5; i++ {
		e.setState(d, e.pidx[i][(i+1)%5], Disjoint, confSize)
	}
	for _, ch := range [][2]int{{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 4}} {
		e.setState(d, e.pidx[ch[0]][ch[1]], Overlap, confSize)
	}
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("structure conflicted before the antihole check")
	}
	e.holeCheck()
	if e.conflict == noConflict {
		t.Fatal("odd antihole (C5 of disjoint edges) not refuted")
	}
}

func TestEvenAntiholeIsInconclusive(t *testing.T) {
	// Six disjoint edges forming a C6 in the disjoint graph, all chords
	// still Unknown: the antihole certificate is even, so the oddOnly
	// pass must neither conflict nor force anything. (Note that fully
	// deciding the chords to Overlap would be refuted — correctly — by
	// the chordality hole rule instead: the complement of C6 contains an
	// induced C4.)
	e := freshEngine(6, false)
	d := 0
	for i := 0; i < 6; i++ {
		e.setState(d, e.pidx[i][(i+1)%6], Disjoint, confSize)
	}
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("cycle edges alone conflicted")
	}
	before := append([]EdgeState(nil), e.state[d]...)
	e.holeCheckDim(d, e.disAdj[d], Disjoint, true)
	if e.conflict != noConflict {
		t.Fatal("even antihole pass conflicted")
	}
	for p, s := range e.state[d] {
		if s != before[p] {
			t.Fatalf("even antihole pass changed pair %d", p)
		}
	}
}

func TestComplementC6IsRefutedByChordality(t *testing.T) {
	// The observation behind the previous test: deciding every chord of
	// the C6-of-disjoint-edges to Overlap yields an overlap graph equal
	// to the complement of C6, which contains an induced C4 — the
	// chordality machinery must refute the completed structure.
	e := freshEngine(6, false)
	d := 0
	for i := 0; i < 6; i++ {
		e.setState(d, e.pidx[i][(i+1)%6], Disjoint, confSize)
	}
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			if v != u+1 && !(u == 0 && v == 5) {
				e.setState(d, e.pidx[u][v], Overlap, confSize)
			}
		}
	}
	e.propagate()
	e.holeCheck()
	if e.conflict == noConflict {
		t.Fatal("complement-of-C6 overlap graph not refuted")
	}
}

func TestAntiholeForcing(t *testing.T) {
	// C5 of disjoint edges with four chords Overlap and one Unknown: the
	// open chord must be forced Disjoint (breaking the odd antihole).
	e := newEngine(prob(5, [3]int{100, 100, 100}, uniformSizes(2, 2, 2), false),
		Options{DisableC4Rule: true})
	d := 0
	for i := 0; i < 5; i++ {
		e.setState(d, e.pidx[i][(i+1)%5], Disjoint, confSize)
	}
	chords := [][2]int{{0, 2}, {0, 3}, {1, 3}, {1, 4}}
	for _, ch := range chords {
		e.setState(d, e.pidx[ch[0]][ch[1]], Overlap, confSize)
	}
	e.propagate()
	if e.conflict != noConflict {
		t.Fatal("setup conflicted")
	}
	e.holeCheck()
	if e.conflict != noConflict {
		t.Fatal("conflicted with an open chord")
	}
	if e.state[d][e.pidx[2][4]] != Disjoint {
		t.Fatalf("open chord not forced Disjoint: %v", e.state[d][e.pidx[2][4]])
	}
}
