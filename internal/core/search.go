package core

import (
	"fmt"

	"fpga3d/internal/graph"
	"fpga3d/internal/intgraph"
)

// Solve decides the d-dimensional orthogonal packing problem with
// precedence seeds by branch-and-bound over packing classes.
func Solve(p *Problem, opt Options) Result {
	if err := p.Validate(); err != nil {
		// Invalid problems are reported as infeasible with zero stats;
		// callers construct problems from validated instances, so this
		// is a programming-error guard, not a user-facing path.
		panic(fmt.Sprintf("core: invalid problem: %v", err))
	}
	// A context that is already dead never gets to spend root
	// propagation effort; racing drivers cancel redundant probes before
	// they launch as often as mid-flight.
	if opt.Ctx != nil {
		select {
		case <-opt.Ctx.Done():
			return Result{Status: StatusCanceled}
		default:
		}
	}
	e := newEngine(p, opt)
	if !e.applyRoot() {
		return Result{Status: StatusInfeasible, Stats: e.stats}
	}

	// Workers > 1 hands the propagated root to the work-stealing pool;
	// answers are equal to the sequential search but statistics become
	// sum-of-shards (see Options.Workers). The reference-rules path is
	// never parallelized: it exists to pin down the bit-identical
	// sequential contract.
	if opt.Workers > 1 && !opt.ReferenceRules {
		return solveParallel(e, opt)
	}

	st := e.dfs(0)
	if st == StatusFeasible {
		return Result{Status: StatusFeasible, Solution: e.solution, Stats: e.stats}
	}
	return Result{Status: st, Stats: e.stats}
}

// applyRoot installs the root constraints on a fresh engine and runs
// the root propagation pass; it reports whether the root survived.
//
// Size rule: boxes that cannot sit side by side in a dimension must
// overlap there. This is the cascade starter the paper relies on
// (e.g. two 16×16 multipliers on a 17×17 chip must share both
// spatial dimensions, hence be sequential in time).
func (e *engine) applyRoot() bool {
	p := e.p
	for d := 0; d < e.nd; d++ {
		w := p.Dims[d].Sizes
		cap := p.Dims[d].Cap
		for pr := 0; pr < e.npairs; pr++ {
			u, v := int(e.pairU[pr]), int(e.pairV[pr])
			if w[u]+w[v] > cap {
				e.stats.ForcedSize++
				e.setState(d, pr, Overlap, confSize)
			}
		}
	}
	for _, f := range p.Fixed {
		e.setState(f.Dim, e.pidx[f.U][f.V], f.State, confSize)
	}
	for _, a := range p.Seeds {
		e.setBefore(a.Dim, a.From, a.To, confOrient)
	}
	e.propagate()
	if e.conflict == noConflict && !e.opt.DisableCliqueForce {
		e.cliqueForcePass()
	}
	if e.conflict == noConflict {
		e.holeCheck()
	}
	return e.conflict == noConflict
}

// dfs explores the packing-class tree below the current state. The
// caller guarantees the state is propagated and conflict-free.
func (e *engine) dfs(depth int) Status {
	if !e.checkLimits() {
		return e.aborted
	}
	e.stats.Nodes++
	if depth > e.stats.MaxDepth {
		e.stats.MaxDepth = depth
	}

	d, p := e.pickBranch()
	if d < 0 {
		e.stats.Leaves++
		if sol := e.extract(); sol != nil {
			e.solution = sol
			return StatusFeasible
		}
		e.stats.LeafRejects++
		return StatusInfeasible
	}

	var values [2]EdgeState
	if e.orient[d] != nil && e.opt.TimeOverlapFirst {
		values = [2]EdgeState{Overlap, Disjoint}
	} else {
		values = [2]EdgeState{Disjoint, Overlap}
	}
	// In a parallel search, offer the second branch to an idle worker
	// before descending into the first; the donated clone explores it
	// concurrently. Sequential solves (pool == nil) skip the check, so
	// their exploration order is untouched.
	donated := false
	if e.pool != nil && e.pool.tryDonate(e, depth, d, p, values[1]) {
		donated = true
		e.stats.Steals++
	}
	for i, val := range values {
		if i == 1 && donated {
			break
		}
		m := e.mark()
		// Branch assignments start from Unknown, so the rule tag below
		// is never recorded as a conflict source.
		e.setState(d, p, val, confSize)
		e.propagate()
		if e.conflict == noConflict && !e.opt.DisableCliqueForce {
			e.cliqueForcePass()
		}
		if e.conflict == noConflict {
			e.holeCheck()
		}
		if e.conflict == noConflict {
			st := e.dfs(depth + 1)
			if st != StatusInfeasible {
				return st // feasible or aborted: unwind immediately
			}
		}
		e.undoTo(m)
	}
	return StatusInfeasible
}

// pickBranch selects the next undecided (dimension, pair) variable, or
// (-1, -1) at a leaf. Pair choice is fail-first: pairs of two large
// boxes (by the smaller volume of the pair) come first, so the search
// settles the hard sub-instance of big modules before touching small
// ones; pairs already decided in other dimensions get a bonus because
// they are closer to triggering C3/C4 cascades. Within the chosen pair,
// the dimension where the pair is tightest relative to capacity is
// branched.
func (e *engine) pickBranch() (int, int) {
	if e.opt.ReferenceRules {
		return e.pickBranchRef()
	}
	bestP, bestScore := -1, -1
	for p := 0; p < e.npairs; p++ {
		undecided := int(e.pairUndecided[p])
		if undecided == 0 {
			continue
		}
		// Same value as minVol[p]*4 + (nd-undecided)*minVol[p], with the
		// undecided count read from the trail-maintained array instead of
		// an inner dimension scan.
		score := e.minVol[p] * (4 + e.nd - undecided)
		if score > bestScore {
			bestP, bestScore = p, score
		}
	}
	if bestP < 0 {
		return -1, -1
	}
	return e.pickBranchDim(bestP), bestP
}

// pickBranchDim chooses, among the dimensions where pair p is still
// Unknown, the one where the pair is tightest relative to capacity.
// Shared by the optimized and reference branch pickers so their
// tie-breaking is identical by construction.
func (e *engine) pickBranchDim(p int) int {
	bestD, bestTight := -1, -1
	u, v := int(e.pairU[p]), int(e.pairV[p])
	for d := 0; d < e.nd; d++ {
		if e.state[d][p] != Unknown {
			continue
		}
		w := e.p.Dims[d].Sizes
		tight := (w[u] + w[v]) * 1024 / e.p.Dims[d].Cap
		if tight > bestTight {
			bestD, bestTight = d, tight
		}
	}
	return bestD
}

// extract verifies the fully decided state as a packing class (exact C1
// and C2 checks; C3 is maintained by propagation) and converts it to
// coordinates: for each dimension, a transitive orientation of the
// comparability graph — extending the accumulated orientation on
// ordered dimensions — is realized by longest-path positions.
// It returns nil if the leaf is not a packing class or the orientation
// cannot be extended (Theorem 2 failure).
func (e *engine) extract() *Solution {
	coords := make([][]int, e.nd)
	for d := 0; d < e.nd; d++ {
		g := graph.NewUndirected(e.n)
		for u := 0; u < e.n; u++ {
			e.ovAdj[d][u].ForEach(func(v int) {
				if v > u {
					g.AddEdge(u, v)
				}
			})
		}
		// C1 part 1: chordality.
		if !intgraph.IsChordal(g) {
			e.stats.RejectChordal++
			return nil
		}
		// C2: the heaviest stable set must fit the capacity.
		if _, wt := intgraph.MaxWeightStableSet(g, e.p.Dims[d].Sizes); wt > e.p.Dims[d].Cap {
			e.stats.RejectStable++
			return nil
		}
		// C1 part 2 + precedence: transitively orient the complement,
		// extending the orientation accumulated during the search.
		comp := g.Complement()
		var seeds *graph.Digraph
		if e.orient[d] != nil {
			seeds = graph.NewDigraph(e.n)
			for p := 0; p < e.npairs; p++ {
				if e.state[d][p] != Disjoint || e.orient[d][p] == OrientNone {
					continue
				}
				u, v := int(e.pairU[p]), int(e.pairV[p])
				if e.orient[d][p] == OrientFwd {
					seeds.AddArc(u, v)
				} else {
					seeds.AddArc(v, u)
				}
			}
		}
		or, err := intgraph.ExtendTransitive(comp, seeds)
		if err != nil {
			e.stats.RejectOrient++
			return nil
		}
		pos, ok := or.LongestPathFrom(e.p.Dims[d].Sizes)
		if !ok {
			e.stats.RejectOrient++
			return nil
		}
		for b := 0; b < e.n; b++ {
			if pos[b]+e.p.Dims[d].Sizes[b] > e.p.Dims[d].Cap {
				e.stats.RejectBounds++
				return nil
			}
		}
		coords[d] = pos
	}
	return &Solution{Coords: coords}
}
