package core

import (
	"reflect"
	"strings"
)

// Stats reports search effort and which rules fired. The counter names
// follow a prefix convention the introspection helpers below rely on:
// Conflict* counts conflicts detected by a rule, Forced* counts edge
// states fixed by a rule, Reject* counts leaf rejection reasons.
type Stats struct {
	// Nodes counts search-tree nodes entered. It is deterministic for a
	// given problem and options: the optimized and reference rule paths
	// (Options.ReferenceRules) must report the same value, which is the
	// invariant cmd/fpgabench and the differential tests gate on.
	Nodes int64
	// MaxDepth is the deepest search-tree level reached.
	MaxDepth int
	// Leaves counts fully decided states reaching leaf verification.
	Leaves int64
	// LeafRejects counts leaves that failed exact verification.
	LeafRejects int64
	// Propagations counts events popped from the propagation queue —
	// the engine's unit of constraint-propagation work. Deterministic
	// like Nodes.
	Propagations int64
	// Steals counts subtree hand-offs between the workers of a parallel
	// search (Options.Workers > 1), attributed to the donating shard.
	// Always zero on the sequential path; scheduling-dependent, so it is
	// excluded from the bit-identical contract.
	Steals int64

	ConflictC3     int64
	ConflictSize   int64
	ConflictClique int64
	ConflictArea   int64
	ConflictC4     int64
	ConflictHole   int64
	ConflictOrient int64

	ForcedC3     int64
	ForcedC4     int64
	ForcedHole   int64
	ForcedClique int64
	ForcedArea   int64
	ForcedOrient int64
	ForcedSize   int64

	// Leaf rejection reasons.
	RejectChordal int64
	RejectStable  int64
	RejectOrient  int64
	RejectBounds  int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Nodes += o.Nodes
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.Leaves += o.Leaves
	s.LeafRejects += o.LeafRejects
	s.Propagations += o.Propagations
	s.Steals += o.Steals
	s.ConflictC3 += o.ConflictC3
	s.ConflictSize += o.ConflictSize
	s.ConflictClique += o.ConflictClique
	s.ConflictArea += o.ConflictArea
	s.ConflictC4 += o.ConflictC4
	s.ConflictHole += o.ConflictHole
	s.ConflictOrient += o.ConflictOrient
	s.ForcedC3 += o.ForcedC3
	s.ForcedC4 += o.ForcedC4
	s.ForcedHole += o.ForcedHole
	s.ForcedClique += o.ForcedClique
	s.ForcedArea += o.ForcedArea
	s.ForcedOrient += o.ForcedOrient
	s.ForcedSize += o.ForcedSize
	s.RejectChordal += o.RejectChordal
	s.RejectStable += o.RejectStable
	s.RejectOrient += o.RejectOrient
	s.RejectBounds += o.RejectBounds
}

// ConflictsByRule returns the Conflict* counters keyed by lower-cased
// rule name ("c3", "size", "clique", "area", "c4", "hole", "orient").
// The map is built by reflection over the field names, so counters
// added later can never be silently missing from snapshots.
func (s *Stats) ConflictsByRule() map[string]int64 { return s.byPrefix("Conflict") }

// ForcedByRule returns the Forced* counters keyed by rule name.
func (s *Stats) ForcedByRule() map[string]int64 { return s.byPrefix("Forced") }

// RejectsByReason returns the Reject* leaf-rejection counters keyed by
// reason name.
func (s *Stats) RejectsByReason() map[string]int64 { return s.byPrefix("Reject") }

func (s *Stats) byPrefix(prefix string) map[string]int64 {
	rv := reflect.ValueOf(s).Elem()
	rt := rv.Type()
	out := make(map[string]int64)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if len(name) > len(prefix) && strings.HasPrefix(name, prefix) {
			out[strings.ToLower(name[len(prefix):])] = rv.Field(i).Int()
		}
	}
	return out
}
