package core

import (
	"reflect"
	"testing"
	"time"

	"fpga3d/internal/obs"
)

// TestStatsAddCoversAllFields fills every field of a Stats with a
// distinct nonzero value by reflection and asserts Add carries each of
// them over — so a counter added later (e.g. for a new rule) cannot be
// silently dropped from aggregation.
func TestStatsAddCoversAllFields(t *testing.T) {
	var o Stats
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < ov.NumField(); i++ {
		if ov.Field(i).Kind() != reflect.Int && ov.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("field %s has kind %v; extend this test and Stats.Add for it",
				ov.Type().Field(i).Name, ov.Field(i).Kind())
		}
		ov.Field(i).SetInt(int64(i + 1))
	}

	var s Stats
	s.Add(o)
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		if got, want := sv.Field(i).Int(), int64(i+1); got != want {
			t.Errorf("field %s not accumulated by Add: got %d, want %d",
				sv.Type().Field(i).Name, got, want)
		}
	}

	// A second Add doubles every additive counter; MaxDepth is a
	// maximum and must stay put.
	s.Add(o)
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		want := int64(2 * (i + 1))
		if name == "MaxDepth" {
			want = int64(i + 1)
		}
		if got := sv.Field(i).Int(); got != want {
			t.Errorf("field %s after second Add: got %d, want %d", name, got, want)
		}
	}
}

// TestStatsByRuleMaps: the reflection-built maps cover exactly the
// prefixed counters, with lower-cased rule keys.
func TestStatsByRuleMaps(t *testing.T) {
	s := Stats{ConflictC3: 1, ConflictHole: 2, ForcedSize: 3, RejectChordal: 4, Nodes: 99}
	conf := s.ConflictsByRule()
	if conf["c3"] != 1 || conf["hole"] != 2 {
		t.Errorf("ConflictsByRule = %v", conf)
	}
	if len(conf) != 7 {
		t.Errorf("ConflictsByRule has %d rules, want 7: %v", len(conf), conf)
	}
	if f := s.ForcedByRule(); f["size"] != 3 || len(f) != 7 {
		t.Errorf("ForcedByRule = %v", f)
	}
	if r := s.RejectsByReason(); r["chordal"] != 4 || len(r) != 4 {
		t.Errorf("RejectsByReason = %v", r)
	}
	// Prefixed-field counts must track the struct definition.
	rt := reflect.TypeOf(s)
	counts := map[string]int{}
	for i := 0; i < rt.NumField(); i++ {
		for _, p := range []string{"Conflict", "Forced", "Reject"} {
			n := rt.Field(i).Name
			if len(n) > len(p) && n[:len(p)] == p {
				counts[p]++
			}
		}
	}
	if len(s.ConflictsByRule()) != counts["Conflict"] ||
		len(s.ForcedByRule()) != counts["Forced"] ||
		len(s.RejectsByReason()) != counts["Reject"] {
		t.Errorf("ByRule maps out of sync with Stats fields: %v", counts)
	}
}

// TestProgressHookCadence drives checkLimits directly: the hook fires
// exactly once per 256 ticks, with the engine's counters in the
// snapshot.
func TestProgressHookCadence(t *testing.T) {
	var got []obs.Snapshot
	p := prob(2, [3]int{4, 4, 4}, uniformSizes(2, 2, 2), true)
	e := newEngine(p, Options{Progress: func(s obs.Snapshot) { got = append(got, s) }})
	e.start = time.Now().Add(-time.Second)
	e.stats.Nodes = 512
	e.stats.MaxDepth = 7
	e.stats.ConflictC4 = 3
	e.stats.ConflictClique = 2
	for i := 0; i < 512; i++ {
		if !e.checkLimits() {
			t.Fatal("checkLimits aborted without limits")
		}
	}
	if len(got) != 2 {
		t.Fatalf("hook fired %d times over 512 ticks, want 2", len(got))
	}
	s := got[0]
	if s.Phase != obs.PhaseSearch {
		t.Errorf("phase %q, want search", s.Phase)
	}
	if s.Nodes != 512 || s.MaxDepth != 7 {
		t.Errorf("snapshot counters %+v", s)
	}
	if s.Conflicts["c4"] != 3 || s.Conflicts["clique"] != 2 {
		t.Errorf("snapshot conflicts %v", s.Conflicts)
	}
	if s.Elapsed < time.Second || s.NodesPerSec <= 0 || s.NodesPerSec > 600 {
		t.Errorf("elapsed %v, nodes/s %f", s.Elapsed, s.NodesPerSec)
	}
}

// TestProgressPhaseLabel: ProgressPhase overrides the default label.
func TestProgressPhaseLabel(t *testing.T) {
	var phases []string
	p := prob(2, [3]int{4, 4, 4}, uniformSizes(2, 2, 2), true)
	e := newEngine(p, Options{
		ProgressPhase: "custom",
		Progress:      func(s obs.Snapshot) { phases = append(phases, s.Phase) },
	})
	e.emitProgress()
	if len(phases) != 1 || phases[0] != "custom" {
		t.Fatalf("phases = %v", phases)
	}
}
