package core

import (
	"sync"
	"sync/atomic"
)

// Donation gates. A subtree is only handed off while the branch node is
// shallow enough and enough pairs remain undecided for the subtree to
// amortize the clone; tests override these to force steals on tiny
// trees. Both are read-only while a pool is running.
var (
	// donateMaxDepth is the deepest branch node whose sibling subtree
	// may be donated.
	donateMaxDepth = 64
	// donateMinUnknown is the minimum number of still-undecided
	// (dimension, pair) variables required for a donation.
	donateMinUnknown = 6
)

// task is one unit of pool work: an engine positioned at a propagated,
// conflict-free node, plus (for donated tasks) the branch assignment
// the thief applies before descending.
type task struct {
	e     *engine
	depth int
	// branch marks donated tasks: apply state[dim][pair] = val, then
	// propagate, before exploring. The root task has branch == false —
	// its engine is already at the propagated root.
	branch    bool
	dim, pair int
	val       EdgeState
}

// wspool coordinates a shared-tree parallel search: a fixed set of
// workers drains a task channel; running workers donate unexplored
// sibling subtrees (as engine clones) whenever a worker is idle; the
// first definitive answer sets the stop flag, which every shard
// observes on its 256-node polling cadence.
//
// Termination uses a pending-task count: every enqueued task holds one
// reference, released when its shard returns; the release that drops
// the count to zero closes the channel. Donations take their reference
// before the non-blocking send (rolled back if the channel is full), and
// the donor itself always holds a reference while donating, so the
// count cannot reach zero while work is still being produced.
type wspool struct {
	tasks   chan *task
	pending atomic.Int64
	idle    atomic.Int64
	stop    atomic.Bool
	// nodes is the global node counter for Options.NodeLimit: shards
	// flush their local counts on the polling cadence and once more when
	// they finish, so the limit is enforced within ~256 nodes per worker.
	nodes     atomic.Int64
	nodeLimit int64

	mu          sync.Mutex
	solution    *Solution
	stats       Stats
	abortSet    bool
	abortStatus Status
}

// solveParallel explores the tree below the already-propagated root
// engine with opt.Workers workers and merges the shard outcomes:
// feasible beats any abort (a witness is definitive no matter what
// another shard ran into), a genuine abort (node/time limit, context
// cancellation) beats infeasible, and infeasible requires every shard
// to have exhausted its region.
func solveParallel(root *engine, opt Options) Result {
	w := &wspool{
		tasks:     make(chan *task, opt.Workers*4),
		nodeLimit: opt.NodeLimit,
	}
	root.pool = w
	w.pending.Store(1)
	w.tasks <- &task{e: root, depth: 0}
	var wg sync.WaitGroup
	for i := 0; i < opt.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.worker()
		}()
	}
	wg.Wait()
	switch {
	case w.solution != nil:
		return Result{Status: StatusFeasible, Solution: w.solution, Stats: w.stats}
	case w.abortSet:
		return Result{Status: w.abortStatus, Stats: w.stats}
	default:
		return Result{Status: StatusInfeasible, Stats: w.stats}
	}
}

// worker drains tasks until the channel closes. The idle count is held
// while blocked on the channel; donors consult it to decide whether
// handing off a subtree buys any parallelism.
func (w *wspool) worker() {
	for {
		w.idle.Add(1)
		t, ok := <-w.tasks
		w.idle.Add(-1)
		if !ok {
			return
		}
		w.run(t)
		if w.pending.Add(-1) == 0 {
			close(w.tasks)
		}
	}
}

// run executes one task to completion and records its outcome. Donated
// tasks first apply their branch assignment with the same propagate /
// clique-force / hole-check sequence the sequential loop uses, so the
// shard's per-node work matches what the donor would have done in
// place.
func (w *wspool) run(t *task) {
	e := t.e
	st := StatusInfeasible
	if t.branch {
		e.setState(t.dim, t.pair, t.val, confSize)
		e.propagate()
		if e.conflict == noConflict && !e.opt.DisableCliqueForce {
			e.cliqueForcePass()
		}
		if e.conflict == noConflict {
			e.holeCheck()
		}
		if e.conflict != noConflict {
			w.record(e, StatusInfeasible)
			return
		}
	}
	st = e.dfs(t.depth)
	w.record(e, st)
}

// tryDonate offers the not-yet-explored sibling branch (val at
// state[d][p]) to an idle worker, cloning the engine at the current
// node. It returns false — and the donor keeps the branch — when the
// node is too deep, too little work remains, nobody is idle, the pool
// is stopping, or the queue is momentarily full.
func (w *wspool) tryDonate(e *engine, depth, d, p int, val EdgeState) bool {
	if depth > donateMaxDepth || w.stop.Load() || w.idle.Load() == 0 {
		return false
	}
	if donateMinUnknown > 0 {
		rem := 0
		for dd := 0; dd < e.nd; dd++ {
			rem += e.unknown[dd]
		}
		if rem < donateMinUnknown {
			return false
		}
	}
	t := &task{e: e.cloneForWorker(), depth: depth + 1, branch: true, dim: d, pair: p, val: val}
	w.pending.Add(1)
	select {
	case w.tasks <- t:
		return true
	default:
		w.pending.Add(-1)
		return false
	}
}

// poll is the pool hook on the engine's 256-node checkLimits cadence:
// it observes the stop broadcast, flushes the shard's node count into
// the global counter and enforces the global node limit.
func (w *wspool) poll(e *engine) bool {
	if w.stop.Load() {
		e.aborted = StatusCanceled
		e.poolStopped = true
		return false
	}
	total := w.nodes.Add(e.stats.Nodes - e.nodesFlushed)
	e.nodesFlushed = e.stats.Nodes
	if w.nodeLimit > 0 && total >= w.nodeLimit {
		e.aborted = StatusNodeLimit
		return false
	}
	return true
}

// record merges a finished shard into the pool outcome. Shard statuses
// combine as: first feasible wins (and fires Options.OnSolution);
// genuine aborts — not the pool's own stop broadcast — are remembered
// and stop the pool; infeasible shards only contribute statistics.
func (w *wspool) record(e *engine, st Status) {
	w.nodes.Add(e.stats.Nodes - e.nodesFlushed)
	e.nodesFlushed = e.stats.Nodes
	var fire func(*Solution)
	var sol *Solution
	w.mu.Lock()
	w.stats.Add(e.stats)
	switch st {
	case StatusFeasible:
		if w.solution == nil {
			w.solution = e.solution
			sol = e.solution
			fire = e.opt.OnSolution
		}
		w.stop.Store(true)
	case StatusCanceled:
		if !e.poolStopped {
			if !w.abortSet {
				w.abortSet, w.abortStatus = true, st
			}
			w.stop.Store(true)
		}
	case StatusNodeLimit, StatusTimeLimit:
		if !w.abortSet {
			w.abortSet, w.abortStatus = true, st
		}
		w.stop.Store(true)
	}
	w.mu.Unlock()
	if fire != nil {
		fire(sol)
	}
}
