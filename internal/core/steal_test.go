package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"fpga3d/internal/obs"
)

// forceDonation removes the donation gates so steals happen even on the
// tiny trees the test instances build, restoring the defaults when the
// test ends.
func forceDonation(t *testing.T) {
	t.Helper()
	oldDepth, oldUnknown := donateMaxDepth, donateMinUnknown
	donateMaxDepth, donateMinUnknown = 1<<30, 0
	t.Cleanup(func() { donateMaxDepth, donateMinUnknown = oldDepth, oldUnknown })
}

// descend walks the engine down one branch from the current propagated
// node using the engine's own variable and value ordering, stopping at
// a conflict-free child or when the state is fully decided. It returns
// the new depth, or -1 if no conflict-free child exists.
func descend(t *testing.T, e *engine, depth int) int {
	t.Helper()
	d, p := e.pickBranch()
	if d < 0 {
		return depth
	}
	for _, val := range [2]EdgeState{Disjoint, Overlap} {
		m := e.mark()
		e.setState(d, p, val, confSize)
		e.propagate()
		if e.conflict == noConflict && !e.opt.DisableCliqueForce {
			e.cliqueForcePass()
		}
		if e.conflict == noConflict {
			e.holeCheck()
		}
		if e.conflict == noConflict {
			return depth + 1
		}
		e.undoTo(m)
	}
	return -1
}

// TestCloneExploresIdenticalSubtree is the property test behind the
// parallel hand-off: an engine cloned at an interior node must explore
// exactly the subtree the original would have explored — same status,
// same witness, and bit-identical full statistics (DeepEqual), because
// the clone copies every piece of state that feeds rule decisions.
func TestCloneExploresIdenticalSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	clonedAt := 0
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(rng)
		opt := Options{NodeLimit: 50_000, TimeOverlapFirst: rng.Intn(2) == 0}
		e := newEngine(p, opt)
		if !e.applyRoot() {
			continue // root-infeasible: nothing to clone
		}
		// Walk a random number of levels into the tree before cloning, so
		// clones are exercised at many different frontiers.
		depth := 0
		steps := rng.Intn(4)
		for s := 0; s < steps; s++ {
			nd := descend(t, e, depth)
			if nd < 0 || nd == depth {
				break
			}
			depth = nd
		}
		c := e.cloneForWorker()
		c.pool = nil // both sides run the sequential dfs
		clonedAt++

		// Zero both engines' counters so the comparison covers exactly
		// the subtree exploration below this node.
		e.stats, e.nodeTick = Stats{}, 0
		c.stats, c.nodeTick = Stats{}, 0
		stOrig := e.dfs(depth)
		stClone := c.dfs(depth)
		if stOrig != stClone {
			t.Fatalf("trial %d: status diverges: orig=%v clone=%v", trial, stOrig, stClone)
		}
		if !reflect.DeepEqual(e.stats, c.stats) {
			t.Fatalf("trial %d: stats diverge\norig:  %+v\nclone: %+v", trial, e.stats, c.stats)
		}
		if stOrig == StatusFeasible && !reflect.DeepEqual(e.solution, c.solution) {
			t.Fatalf("trial %d: witnesses diverge", trial)
		}
	}
	if clonedAt < 20 {
		t.Fatalf("only %d trials reached a clonable node; generator degenerate", clonedAt)
	}
}

// TestParallelMatchesSequentialAnswers is the answer-equality gate for
// the work-stealing pool: on random instances the parallel search must
// reach the same feasibility verdict as the sequential one, with a
// geometrically valid witness when feasible. Statistics are only
// sanity-checked (sum-of-shards, not bit-identical).
func TestParallelMatchesSequentialAnswers(t *testing.T) {
	forceDonation(t)
	rng := rand.New(rand.NewSource(20260807))
	var steals int64
	feasible, infeasible := 0, 0
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng)
		opt := Options{NodeLimit: 200_000, TimeOverlapFirst: rng.Intn(2) == 0}
		seq := Solve(p, opt)
		popt := opt
		popt.Workers = 4
		popt.NodeLimit = 0 // shard scheduling must not turn a verdict into a limit
		par := Solve(p, popt)
		if !seq.Status.Decided() {
			continue
		}
		if par.Status != seq.Status {
			t.Fatalf("trial %d: parallel=%v sequential=%v", trial, par.Status, seq.Status)
		}
		switch par.Status {
		case StatusFeasible:
			feasible++
			checkSolution(t, p, par.Solution)
		case StatusInfeasible:
			infeasible++
			// Root-level infeasibility is decided before the pool spins
			// up, with zero search nodes — same as the sequential path.
			if par.Stats.Nodes != seq.Stats.Nodes && par.Stats.Nodes == 0 {
				t.Fatalf("trial %d: parallel lost the root work (seq %d nodes)", trial, seq.Stats.Nodes)
			}
		}
		steals += par.Stats.Steals
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("degenerate instance mix: %d feasible, %d infeasible", feasible, infeasible)
	}
	if steals == 0 {
		t.Fatalf("no subtree was ever donated; the pool never parallelized")
	}
}

// hardInstance is a fixed 11-box instance on a 14×14×14 container
// (sizes drawn once from a seeded stream and embedded) whose
// sequential search takes ≈10k nodes to a feasible verdict — big
// enough for donations at every depth, small enough for -race CI.
func hardInstance(t *testing.T) *Problem {
	t.Helper()
	sizes := [3][]int{
		{4, 4, 7, 4, 7, 4, 6, 7, 5, 6, 5},
		{7, 5, 6, 7, 5, 5, 7, 7, 4, 5, 4},
		{6, 6, 6, 4, 4, 7, 5, 4, 7, 6, 7},
	}
	p := &Problem{N: 11}
	for d := 0; d < 3; d++ {
		p.Dims = append(p.Dims, Dim{Cap: 14, Sizes: sizes[d], Ordered: d == 2})
	}
	return p
}

// TestParallelForcedStealStress hammers the pool with maximal donation
// on a hard instance; under -race this is the data-race gate for the
// clone hand-off, the stop broadcast and the stats merge.
func TestParallelForcedStealStress(t *testing.T) {
	forceDonation(t)
	p := hardInstance(t)
	seq := Solve(p, Options{})
	for _, workers := range []int{2, 8} {
		par := Solve(p, Options{Workers: workers})
		if par.Status != seq.Status {
			t.Fatalf("workers=%d: parallel=%v sequential=%v", workers, par.Status, seq.Status)
		}
		if par.Status == StatusFeasible {
			checkSolution(t, p, par.Solution)
		}
		if par.Stats.Steals == 0 {
			t.Fatalf("workers=%d: expected forced steals, got none (stats %+v)", workers, par.Stats)
		}
	}
}

// TestParallelCancellationMidSteal cancels the context from inside a
// progress callback — i.e. while workers are actively searching with
// donations in flight — and requires the pool to drain and report
// either the cancellation or a verdict it had already reached. This is
// the termination test for the pending-count protocol under abort.
func TestParallelCancellationMidSteal(t *testing.T) {
	forceDonation(t)
	p := hardInstance(t)
	seq := Solve(p, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	res := Solve(p, Options{
		Workers: 4,
		Ctx:     ctx,
		Progress: func(obs.Snapshot) {
			if fired.Add(1) == 1 {
				cancel()
			}
		},
	})
	switch res.Status {
	case StatusCanceled:
		if res.Stats.Nodes == 0 {
			t.Fatal("canceled with zero recorded nodes")
		}
	case seq.Status:
		// A shard may legitimately decide before observing the cancel.
	default:
		t.Fatalf("status %v; want %v or canceled", res.Status, seq.Status)
	}
}

// TestParallelGlobalNodeLimit checks that NodeLimit bounds the summed
// node count of all shards (within the 256-node polling cadence per
// worker), not each shard individually.
func TestParallelGlobalNodeLimit(t *testing.T) {
	forceDonation(t)
	p := hardInstance(t)
	const limit = 2_000
	const workers = 4
	res := Solve(p, Options{Workers: workers, NodeLimit: limit})
	if res.Status != StatusNodeLimit {
		t.Fatalf("status %v; want node-limit", res.Status)
	}
	slack := int64(256*workers + 512)
	if res.Stats.Nodes > limit+slack {
		t.Fatalf("nodes %d overshoot limit %d by more than %d", res.Stats.Nodes, limit, slack)
	}
}

// TestParallelOnSolutionFiresOnce checks the incumbent-broadcast hook:
// exactly one invocation, with the same solution the Result carries,
// before Solve returns.
func TestParallelOnSolutionFiresOnce(t *testing.T) {
	forceDonation(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng)
		var calls atomic.Int64
		var got atomic.Pointer[Solution]
		res := Solve(p, Options{Workers: 4, OnSolution: func(s *Solution) {
			calls.Add(1)
			got.Store(s)
		}})
		if res.Status != StatusFeasible {
			if calls.Load() != 0 {
				t.Fatalf("trial %d: OnSolution fired on %v", trial, res.Status)
			}
			continue
		}
		if calls.Load() != 1 {
			t.Fatalf("trial %d: OnSolution fired %d times", trial, calls.Load())
		}
		if got.Load() != res.Solution {
			t.Fatalf("trial %d: hook saw a different solution than the result", trial)
		}
		return // one feasible case is enough
	}
	t.Fatal("no feasible instance drawn in 200 trials")
}
