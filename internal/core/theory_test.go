package core

import (
	"math/rand"
	"testing"

	"fpga3d/internal/graph"
	"fpga3d/internal/intgraph"
)

// TestSolutionsArePackingClasses closes the loop with the theory: for
// random problems, the component graphs induced by the solver's own
// solution coordinates must satisfy C1 (interval graphs), C2 (stable
// sets within capacity) and C3 (no pair overlapping everywhere), and on
// the ordered dimension the realized interval order must extend the
// seeds. This checks Theorem 1's characterization end to end, not just
// geometric validity.
func TestSolutionsArePackingClasses(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		caps := [3]int{2 + rng.Intn(4), 2 + rng.Intn(4), 2 + rng.Intn(5)}
		p := prob(n, caps, func(b int) [3]int {
			return [3]int{
				1 + rng.Intn(caps[0]),
				1 + rng.Intn(caps[1]),
				1 + rng.Intn(caps[2]),
			}
		}, true)
		// Random forward seeds on the ordered time dimension.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.25 {
					p.Seeds = append(p.Seeds, SeedArc{Dim: 2, From: u, To: v})
				}
			}
		}
		r := Solve(p, Options{})
		if r.Status != StatusFeasible {
			continue
		}
		coords := r.Solution.Coords

		// Build the component graphs from the coordinates.
		var gs [3]*graph.Undirected
		for d := 0; d < 3; d++ {
			gs[d] = graph.NewUndirected(n)
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					pu, su := coords[d][u], p.Dims[d].Sizes[u]
					pv, sv := coords[d][v], p.Dims[d].Sizes[v]
					if pu < pv+sv && pv < pu+su {
						gs[d].AddEdge(u, v)
					}
				}
			}
		}
		for d := 0; d < 3; d++ {
			// C1.
			if !intgraph.IsInterval(gs[d]) {
				t.Fatalf("seed %d: G_%d of the solution is not an interval graph", seed, d)
			}
			// C2.
			if _, wt := intgraph.MaxWeightStableSet(gs[d], p.Dims[d].Sizes); wt > p.Dims[d].Cap {
				t.Fatalf("seed %d: stable set of weight %d exceeds capacity %d in dim %d",
					seed, wt, p.Dims[d].Cap, d)
			}
		}
		// C3.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if gs[0].HasEdge(u, v) && gs[1].HasEdge(u, v) && gs[2].HasEdge(u, v) {
					t.Fatalf("seed %d: pair {%d,%d} overlaps in every dimension", seed, u, v)
				}
			}
		}
		// Seeds realized on the time axis.
		for _, a := range p.Seeds {
			if coords[2][a.From]+p.Dims[2].Sizes[a.From] > coords[2][a.To] {
				t.Fatalf("seed %d: arc %d→%d not realized", seed, a.From, a.To)
			}
		}
	}
}

// TestSearchOnlySolutionsArePackingClasses repeats the theory check with
// every stage-3 helper rule disabled, stressing the leaf verification.
func TestSearchOnlySolutionsArePackingClasses(t *testing.T) {
	opt := Options{
		DisableC4Rule:      true,
		DisableHoleRule:    true,
		DisableCliqueForce: true,
		DisableOrientRules: true,
	}
	for seed := int64(1000); seed < 1200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		caps := [3]int{2 + rng.Intn(3), 2 + rng.Intn(3), 2 + rng.Intn(4)}
		p := prob(n, caps, func(b int) [3]int {
			return [3]int{
				1 + rng.Intn(caps[0]),
				1 + rng.Intn(caps[1]),
				1 + rng.Intn(caps[2]),
			}
		}, true)
		r := Solve(p, opt)
		if r.Status != StatusFeasible {
			continue
		}
		// The coordinates must be in bounds and pairwise conflict-free.
		coords := r.Solution.Coords
		for d := 0; d < 3; d++ {
			for b := 0; b < n; b++ {
				if coords[d][b] < 0 || coords[d][b]+p.Dims[d].Sizes[b] > p.Dims[d].Cap {
					t.Fatalf("seed %d: box %d out of bounds in dim %d", seed, b, d)
				}
			}
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				all := true
				for d := 0; d < 3; d++ {
					pu, su := coords[d][u], p.Dims[d].Sizes[u]
					pv, sv := coords[d][v], p.Dims[d].Sizes[v]
					if pu+su <= pv || pv+sv <= pu {
						all = false
						break
					}
				}
				if all {
					t.Fatalf("seed %d: boxes %d and %d overlap", seed, u, v)
				}
			}
		}
	}
}

// TestDeterminism: the engine is deterministic — identical problems
// produce identical statistics and solutions across runs. Determinism
// matters for reproducible experiments and debugging.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		caps := [3]int{2 + rng.Intn(4), 2 + rng.Intn(4), 2 + rng.Intn(5)}
		p := prob(n, caps, func(b int) [3]int {
			return [3]int{1 + rng.Intn(caps[0]), 1 + rng.Intn(caps[1]), 1 + rng.Intn(caps[2])}
		}, true)
		r1 := Solve(p, Options{})
		r2 := Solve(p, Options{})
		if r1.Status != r2.Status || r1.Stats != r2.Stats {
			t.Fatalf("seed %d: nondeterministic: %+v vs %+v", seed, r1.Stats, r2.Stats)
		}
		if r1.Status == StatusFeasible {
			for d := range r1.Solution.Coords {
				for b := range r1.Solution.Coords[d] {
					if r1.Solution.Coords[d][b] != r2.Solution.Coords[d][b] {
						t.Fatalf("seed %d: solutions differ", seed)
					}
				}
			}
		}
	}
}
