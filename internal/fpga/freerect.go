package fpga

import "fmt"

// Grid is a W×H spatial cell-occupancy bitmap — the instantaneous view
// of a partially reconfigurable array that the online placement layer
// maintains between reconfigurations. Unlike the simulator's full
// space-time replay, a Grid tracks a single moment: which cells are
// currently owned by a configured module.
type Grid struct {
	W, H  int
	cells []bool // row-major: cells[y*W+x]
}

// NewGrid returns an empty W×H occupancy grid.
func NewGrid(w, h int) *Grid {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("fpga: non-positive grid %dx%d", w, h))
	}
	return &Grid{W: w, H: h, cells: make([]bool, w*h)}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	c := &Grid{W: g.W, H: g.H, cells: make([]bool, len(g.cells))}
	copy(c.cells, g.cells)
	return c
}

// Occupied reports whether cell (x, y) is owned by a module.
func (g *Grid) Occupied(x, y int) bool { return g.cells[y*g.W+x] }

// Fill marks the w×h region at (x, y) occupied.
func (g *Grid) Fill(x, y, w, h int) {
	for r := y; r < y+h; r++ {
		for c := x; c < x+w; c++ {
			g.cells[r*g.W+c] = true
		}
	}
}

// Clear marks the w×h region at (x, y) free.
func (g *Grid) Clear(x, y, w, h int) {
	for r := y; r < y+h; r++ {
		for c := x; c < x+w; c++ {
			g.cells[r*g.W+c] = false
		}
	}
}

// RegionFree reports whether the w×h region at (x, y) lies inside the
// grid and every cell of it is free.
func (g *Grid) RegionFree(x, y, w, h int) bool {
	if x < 0 || y < 0 || x+w > g.W || y+h > g.H {
		return false
	}
	for r := y; r < y+h; r++ {
		for c := x; c < x+w; c++ {
			if g.cells[r*g.W+c] {
				return false
			}
		}
	}
	return true
}

// FreeCells counts currently unoccupied cells.
func (g *Grid) FreeCells() int {
	n := 0
	for _, b := range g.cells {
		if !b {
			n++
		}
	}
	return n
}

// Rect is an axis-aligned cell rectangle: the w×h region whose
// lower-left corner is (X, Y).
type Rect struct {
	X, Y, W, H int
}

// Area returns the rectangle's cell count.
func (r Rect) Area() int { return r.W * r.H }

// Fits reports whether a w×h module fits inside the rectangle.
func (r Rect) Fits(w, h int) bool { return w <= r.W && h <= r.H }

// MaximalFreeRects enumerates every maximal free rectangle of the grid:
// free rectangles that cannot be extended in any of the four directions.
// This is the free-space index of Ahmadinia et al. — any module that
// fits somewhere on the grid fits inside at least one maximal free
// rectangle, so admission queries reduce to scanning this (much
// smaller) list instead of the cell array.
//
// The enumeration considers every row band [y1, y2]: the maximal
// horizontal runs of columns free throughout the band are maximal in x
// by construction, and the band is maximal in y exactly when neither
// the row below y1 nor the row above y2 stays free over the run. The
// result is ordered bottom-left first (by Y, then X, then height).
func (g *Grid) MaximalFreeRects() []Rect {
	var out []Rect
	for y1 := 0; y1 < g.H; y1++ {
		// free[x] = columns free throughout rows [y1, y2], updated
		// incrementally as the band grows upward.
		free := make([]bool, g.W)
		for x := 0; x < g.W; x++ {
			free[x] = !g.cells[y1*g.W+x]
		}
		for y2 := y1; y2 < g.H; y2++ {
			if y2 > y1 {
				for x := 0; x < g.W; x++ {
					free[x] = free[x] && !g.cells[y2*g.W+x]
				}
			}
			for x1 := 0; x1 < g.W; {
				if !free[x1] {
					x1++
					continue
				}
				x2 := x1
				for x2+1 < g.W && free[x2+1] {
					x2++
				}
				if g.bandMaximal(x1, x2, y1, y2) {
					out = append(out, Rect{X: x1, Y: y1, W: x2 - x1 + 1, H: y2 - y1 + 1})
				}
				x1 = x2 + 1
			}
		}
	}
	return out
}

// bandMaximal reports whether the free run [x1, x2] × [y1, y2] cannot
// grow downward below y1 or upward above y2 (x-maximality is implied by
// run construction).
func (g *Grid) bandMaximal(x1, x2, y1, y2 int) bool {
	if y1 > 0 && g.rowFree(y1-1, x1, x2) {
		return false
	}
	if y2 < g.H-1 && g.rowFree(y2+1, x1, x2) {
		return false
	}
	return true
}

// rowFree reports whether row y is free over columns [x1, x2].
func (g *Grid) rowFree(y, x1, x2 int) bool {
	for x := x1; x <= x2; x++ {
		if g.cells[y*g.W+x] {
			return false
		}
	}
	return true
}

// BestFit returns the position for a w×h module chosen best-fit over
// the maximal free rectangles: the fitting rectangle of smallest area
// (leaving the largest contiguous regions intact for later arrivals),
// ties broken bottom-left. ok is false when no maximal free rectangle
// fits the module.
func BestFit(rects []Rect, w, h int) (x, y int, ok bool) {
	best := -1
	for i, r := range rects {
		if !r.Fits(w, h) {
			continue
		}
		if best < 0 || less(rects[i], rects[best]) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return rects[best].X, rects[best].Y, true
}

// less orders candidate rectangles for BestFit: smaller area first,
// then bottom-left.
func less(a, b Rect) bool {
	if a.Area() != b.Area() {
		return a.Area() < b.Area()
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// LargestFreeRect returns the maximal free rectangle of greatest area
// (zero Rect when the grid is completely occupied).
func LargestFreeRect(rects []Rect) Rect {
	var best Rect
	for _, r := range rects {
		if r.Area() > best.Area() {
			best = r
		}
	}
	return best
}

// Fragmentation measures how scattered the free space is: 1 minus the
// share of free cells covered by the single largest free rectangle.
// 0 means all free space is one rectangle (or the grid is full); values
// near 1 mean the free area is shredded into slivers no module can use.
func (g *Grid) Fragmentation(rects []Rect) float64 {
	free := g.FreeCells()
	if free == 0 {
		return 0
	}
	return 1 - float64(LargestFreeRect(rects).Area())/float64(free)
}
