package fpga

import (
	"math/rand"
	"testing"
)

func TestMaximalFreeRectsEmptyGrid(t *testing.T) {
	g := NewGrid(8, 5)
	rects := g.MaximalFreeRects()
	if len(rects) != 1 {
		t.Fatalf("empty grid: %d maximal rects, want 1 (%v)", len(rects), rects)
	}
	if rects[0] != (Rect{X: 0, Y: 0, W: 8, H: 5}) {
		t.Fatalf("empty grid: maximal rect %v, want the whole grid", rects[0])
	}
	if g.Fragmentation(rects) != 0 {
		t.Fatalf("empty grid fragmentation %v, want 0", g.Fragmentation(rects))
	}
}

func TestMaximalFreeRectsFullGrid(t *testing.T) {
	g := NewGrid(4, 4)
	g.Fill(0, 0, 4, 4)
	if rects := g.MaximalFreeRects(); len(rects) != 0 {
		t.Fatalf("full grid: %d maximal rects, want 0", len(rects))
	}
	if g.Fragmentation(nil) != 0 {
		t.Fatal("full grid fragmentation should be 0")
	}
}

// A single module in the middle of the grid leaves four maximal free
// rectangles (the bands left, right, below and above it).
func TestMaximalFreeRectsCross(t *testing.T) {
	g := NewGrid(6, 6)
	g.Fill(2, 2, 2, 2)
	rects := g.MaximalFreeRects()
	want := map[Rect]bool{
		{X: 0, Y: 0, W: 6, H: 2}: true, // below
		{X: 0, Y: 4, W: 6, H: 2}: true, // above
		{X: 0, Y: 0, W: 2, H: 6}: true, // left
		{X: 4, Y: 0, W: 2, H: 6}: true, // right
	}
	if len(rects) != len(want) {
		t.Fatalf("got %d rects %v, want %d", len(rects), rects, len(want))
	}
	for _, r := range rects {
		if !want[r] {
			t.Fatalf("unexpected maximal rect %v (all: %v)", r, rects)
		}
	}
}

// Every reported rectangle must be free and maximal, and every free
// cell must be covered by some maximal rectangle.
func TestMaximalFreeRectsRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		w, h := 3+rng.Intn(10), 3+rng.Intn(10)
		g := NewGrid(w, h)
		for i := 0; i < 1+rng.Intn(6); i++ {
			bw, bh := 1+rng.Intn(3), 1+rng.Intn(3)
			g.Fill(rng.Intn(w-bw+1), rng.Intn(h-bh+1), bw, bh)
		}
		rects := g.MaximalFreeRects()
		covered := make(map[[2]int]bool)
		for _, r := range rects {
			if !g.RegionFree(r.X, r.Y, r.W, r.H) {
				t.Fatalf("trial %d: rect %v not free", trial, r)
			}
			for _, ext := range []Rect{
				{r.X - 1, r.Y, r.W + 1, r.H}, {r.X, r.Y, r.W + 1, r.H},
				{r.X, r.Y - 1, r.W, r.H + 1}, {r.X, r.Y, r.W, r.H + 1},
			} {
				if g.RegionFree(ext.X, ext.Y, ext.W, ext.H) {
					t.Fatalf("trial %d: rect %v extensible to %v — not maximal", trial, r, ext)
				}
			}
			for yy := r.Y; yy < r.Y+r.H; yy++ {
				for xx := r.X; xx < r.X+r.W; xx++ {
					covered[[2]int{xx, yy}] = true
				}
			}
		}
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				if !g.Occupied(xx, yy) && !covered[[2]int{xx, yy}] {
					t.Fatalf("trial %d: free cell (%d,%d) covered by no maximal rect", trial, xx, yy)
				}
			}
		}
	}
}

func TestBestFitPrefersSmallestRect(t *testing.T) {
	// Two candidate rects: the narrow 2x8 left band and the big upper
	// region. A 2x2 module should land in the smaller band.
	g := NewGrid(8, 8)
	g.Fill(2, 0, 6, 2) // leaves a 2-wide full-height band at x=0 and the 8x6 top
	rects := g.MaximalFreeRects()
	x, y, ok := BestFit(rects, 2, 2)
	if !ok || x != 0 || y != 0 {
		t.Fatalf("BestFit(2x2) = (%d,%d,%v), want pocket (0,0)", x, y, ok)
	}
	if _, _, ok := BestFit(rects, 9, 1); ok {
		t.Fatal("BestFit should fail for a module wider than the grid")
	}
}

func TestFragmentationSplitSpace(t *testing.T) {
	// A full-height wall splits free space into two 2x4 halves: the
	// largest free rect covers half the free cells.
	g := NewGrid(5, 4)
	g.Fill(2, 0, 1, 4)
	rects := g.MaximalFreeRects()
	if got := g.Fragmentation(rects); got != 0.5 {
		t.Fatalf("fragmentation %v, want 0.5", got)
	}
	if lr := LargestFreeRect(rects); lr.Area() != 8 {
		t.Fatalf("largest free rect %v, want area 8", lr)
	}
}

func TestGridFillClearClone(t *testing.T) {
	g := NewGrid(4, 3)
	g.Fill(1, 1, 2, 2)
	c := g.Clone()
	g.Clear(1, 1, 2, 2)
	if g.FreeCells() != 12 {
		t.Fatalf("after clear: %d free cells, want 12", g.FreeCells())
	}
	if c.FreeCells() != 8 {
		t.Fatalf("clone mutated: %d free cells, want 8", c.FreeCells())
	}
	if c.RegionFree(1, 1, 2, 2) || !c.RegionFree(0, 0, 1, 3) {
		t.Fatal("clone occupancy wrong")
	}
	if c.RegionFree(3, 0, 2, 1) {
		t.Fatal("RegionFree must reject out-of-bounds regions")
	}
}
