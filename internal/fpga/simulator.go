// Package fpga simulates the execution of a placement on a partially
// reconfigurable cell array in the style of the Xilinx XC6200 — the
// architecture the paper assumes (Section 2.1): modules are configured
// onto rectangular cell regions, column by column, and may be loaded or
// unloaded at run time without disturbing other configured regions.
//
// The simulator is an independent, cycle-accurate checker: it replays a
// placement on an explicit cell-occupancy model and fails on any
// conflict, bound violation or precedence violation. On success it
// reports utilization statistics — busy cell-cycles, peak concurrency
// and per-column reconfiguration counts — that the solver itself never
// computes.
package fpga

import (
	"fmt"
	"sort"

	"fpga3d/internal/model"
)

// EventKind discriminates trace events.
type EventKind int

const (
	// Load marks a module being configured onto the array.
	Load EventKind = iota
	// Unload marks a module's region being released.
	Unload
)

func (k EventKind) String() string {
	if k == Load {
		return "load"
	}
	return "unload"
}

// Event is one reconfiguration action in the trace.
type Event struct {
	Cycle int
	Kind  EventKind
	Task  int
}

// Trace is the result of a successful simulation.
type Trace struct {
	// Makespan is the number of simulated cycles.
	Makespan int
	// Events lists every load and unload in cycle order (loads before
	// unloads are not interleaved: at each cycle boundary, finishing
	// modules unload before starting modules load).
	Events []Event
	// BusyCellCycles counts cell×cycle units occupied by computing
	// modules; Utilization is its share of W×H×Makespan.
	BusyCellCycles int
	Utilization    float64
	// PeakCells is the maximum number of simultaneously occupied cells;
	// PeakTasks the maximum number of simultaneously executing modules.
	PeakCells int
	PeakTasks int
	// ColumnLoads[x] counts configuration writes to column x: a module
	// of width w streams w column configurations when it loads
	// (the XC6200 read-in model).
	ColumnLoads []int
	// CellsPerCycle[t] is the number of occupied cells during cycle t.
	CellsPerCycle []int
}

// Simulate replays the placement cycle by cycle. A non-nil error
// describes the first conflict found; the trace is only valid when the
// error is nil. When order is non-nil, precedence constraints are
// enforced as finish(u) ≤ start(v).
func Simulate(in *model.Instance, c model.Container, p *model.Placement, o *model.Order) (*Trace, error) {
	n := in.N()
	if len(p.X) != n || len(p.Y) != n || len(p.S) != n {
		return nil, fmt.Errorf("fpga: placement size mismatch")
	}
	makespan := 0
	for i, t := range in.Tasks {
		if p.X[i] < 0 || p.Y[i] < 0 || p.S[i] < 0 {
			return nil, fmt.Errorf("fpga: task %d at negative coordinates", i)
		}
		if p.X[i]+t.W > c.W || p.Y[i]+t.H > c.H {
			return nil, fmt.Errorf("fpga: task %d exceeds the %dx%d array", i, c.W, c.H)
		}
		if p.S[i]+t.Dur > c.T {
			return nil, fmt.Errorf("fpga: task %d finishes at %d, after the horizon %d", i, p.S[i]+t.Dur, c.T)
		}
		if f := p.S[i] + t.Dur; f > makespan {
			makespan = f
		}
	}
	if o != nil {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && o.Precedes(u, v) && p.S[u]+in.Tasks[u].Dur > p.S[v] {
					return nil, fmt.Errorf("fpga: precedence %d≺%d violated", u, v)
				}
			}
		}
	}

	// Group loads and unloads by cycle.
	starts := make(map[int][]int)
	ends := make(map[int][]int)
	for i, t := range in.Tasks {
		starts[p.S[i]] = append(starts[p.S[i]], i)
		ends[p.S[i]+t.Dur] = append(ends[p.S[i]+t.Dur], i)
	}

	tr := &Trace{
		Makespan:      makespan,
		ColumnLoads:   make([]int, c.W),
		CellsPerCycle: make([]int, makespan),
	}
	owner := make([][]int, c.H) // owner[y][x] = task or -1
	for y := range owner {
		owner[y] = make([]int, c.W)
		for x := range owner[y] {
			owner[y][x] = -1
		}
	}
	busyCells := 0
	busyTasks := 0

	for cycle := 0; cycle <= makespan; cycle++ {
		// Unload finishing modules first: their cells become free for
		// modules starting this very cycle (sequential reuse).
		for _, i := range sorted(ends[cycle]) {
			t := in.Tasks[i]
			for y := p.Y[i]; y < p.Y[i]+t.H; y++ {
				for x := p.X[i]; x < p.X[i]+t.W; x++ {
					if owner[y][x] != i {
						return nil, fmt.Errorf("fpga: task %d unloading cell (%d,%d) it does not own", i, x, y)
					}
					owner[y][x] = -1
				}
			}
			busyCells -= t.W * t.H
			busyTasks--
			tr.Events = append(tr.Events, Event{Cycle: cycle, Kind: Unload, Task: i})
		}
		for _, i := range sorted(starts[cycle]) {
			t := in.Tasks[i]
			for y := p.Y[i]; y < p.Y[i]+t.H; y++ {
				for x := p.X[i]; x < p.X[i]+t.W; x++ {
					if other := owner[y][x]; other != -1 {
						return nil, fmt.Errorf("fpga: cycle %d: tasks %d and %d collide on cell (%d,%d)",
							cycle, i, other, x, y)
					}
					owner[y][x] = i
				}
			}
			busyCells += t.W * t.H
			busyTasks++
			for x := p.X[i]; x < p.X[i]+t.W; x++ {
				tr.ColumnLoads[x]++
			}
			tr.Events = append(tr.Events, Event{Cycle: cycle, Kind: Load, Task: i})
		}
		if cycle < makespan {
			tr.CellsPerCycle[cycle] = busyCells
			tr.BusyCellCycles += busyCells
			if busyCells > tr.PeakCells {
				tr.PeakCells = busyCells
			}
			if busyTasks > tr.PeakTasks {
				tr.PeakTasks = busyTasks
			}
		}
	}
	if makespan > 0 {
		tr.Utilization = float64(tr.BusyCellCycles) / float64(c.W*c.H*makespan)
	}
	return tr, nil
}

func sorted(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

// Reconfigurations returns the total number of column configuration
// writes over the whole trace.
func (t *Trace) Reconfigurations() int {
	total := 0
	for _, c := range t.ColumnLoads {
		total += c
	}
	return total
}
