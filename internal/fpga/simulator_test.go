package fpga

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
	"fpga3d/internal/solver"
)

func demo() (*model.Instance, *model.Placement, model.Container) {
	in := &model.Instance{
		Tasks: []model.Task{
			{Name: "a", W: 2, H: 2, Dur: 2},
			{Name: "b", W: 2, H: 2, Dur: 2},
			{Name: "c", W: 1, H: 1, Dur: 1},
		},
		Prec: []model.Arc{{From: 0, To: 2}},
	}
	p := &model.Placement{X: []int{0, 2, 0}, Y: []int{0, 0, 0}, S: []int{0, 0, 2}}
	return in, p, model.Container{W: 4, H: 4, T: 4}
}

func TestSimulateDemo(t *testing.T) {
	in, p, c := demo()
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(in, c, p, o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan != 3 {
		t.Fatalf("makespan = %d", tr.Makespan)
	}
	// Cells: cycles 0,1 hold a+b (8 cells); cycle 2 holds c (1 cell).
	if tr.BusyCellCycles != 8+8+1 {
		t.Fatalf("busy cell-cycles = %d", tr.BusyCellCycles)
	}
	if tr.PeakCells != 8 || tr.PeakTasks != 2 {
		t.Fatalf("peaks = %d cells / %d tasks", tr.PeakCells, tr.PeakTasks)
	}
	wantUtil := float64(17) / float64(4*4*3)
	if diff := tr.Utilization - wantUtil; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utilization = %v, want %v", tr.Utilization, wantUtil)
	}
	// Column loads: a loads columns 0,1; b loads 2,3; c loads 0.
	want := []int{2, 1, 1, 1}
	for x, w := range want {
		if tr.ColumnLoads[x] != w {
			t.Fatalf("column loads = %v, want %v", tr.ColumnLoads, want)
		}
	}
	if tr.Reconfigurations() != 5 {
		t.Fatalf("reconfigurations = %d", tr.Reconfigurations())
	}
	// Events: 3 loads + 3 unloads in cycle order.
	if len(tr.Events) != 6 {
		t.Fatalf("%d events", len(tr.Events))
	}
	if tr.Events[0].Kind != Load || tr.Events[0].Cycle != 0 {
		t.Fatalf("first event %+v", tr.Events[0])
	}
	if tr.CellsPerCycle[2] != 1 {
		t.Fatalf("cells per cycle = %v", tr.CellsPerCycle)
	}
}

func TestSimulateSequentialReuse(t *testing.T) {
	// Two modules on the same cells back to back: the unload at cycle 2
	// must free the cells for the load at cycle 2.
	in := &model.Instance{Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}}}
	p := &model.Placement{X: []int{0, 0}, Y: []int{0, 0}, S: []int{0, 2}}
	if _, err := Simulate(in, model.Container{W: 2, H: 2, T: 4}, p, nil); err != nil {
		t.Fatalf("sequential reuse rejected: %v", err)
	}
}

func TestSimulateDetectsViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*model.Placement)
	}{
		{"collision", func(p *model.Placement) { p.X[1] = 1 }},
		{"out of array", func(p *model.Placement) { p.X[1] = 3 }},
		{"past horizon", func(p *model.Placement) { p.S[2] = 4 }},
		{"negative", func(p *model.Placement) { p.Y[0] = -1 }},
		{"precedence", func(p *model.Placement) { p.S[2] = 1; p.X[2] = 3; p.Y[2] = 3 }},
		{"size mismatch", func(p *model.Placement) { p.S = p.S[:2] }},
	}
	for _, tc := range cases {
		in, p, c := demo()
		o, _ := in.Order()
		tc.mut(p)
		if _, err := Simulate(in, c, p, o); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSimulateErrorMessages pins the diagnostic of each rejection path:
// a failing replay must say which constraint broke and where, because
// the online defrag planner surfaces these errors verbatim.
func TestSimulateErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*model.Placement)
		want string
	}{
		{"overlap names both tasks and the cell",
			func(p *model.Placement) { p.X[1] = 1 }, "tasks 1 and 0 collide on cell (1,0)"},
		{"out of bounds names the array",
			func(p *model.Placement) { p.X[1] = 3 }, "exceeds the 4x4 array"},
		{"past horizon names the finish time",
			func(p *model.Placement) { p.S[2] = 4 }, "finishes at 5, after the horizon 4"},
		{"negative coordinate",
			func(p *model.Placement) { p.Y[0] = -1 }, "negative coordinates"},
		{"precedence names the arc",
			func(p *model.Placement) { p.S[2] = 1; p.X[2] = 3; p.Y[2] = 3 }, "precedence 0≺2 violated"},
		{"size mismatch",
			func(p *model.Placement) { p.S = p.S[:2] }, "placement size mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, p, c := demo()
			o, _ := in.Order()
			tc.mut(p)
			_, err := Simulate(in, c, p, o)
			if err == nil {
				t.Fatal("invalid placement accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestReconfigurationsCountsColumnWrites: a module of width w streams w
// column configurations when it loads, and every load counts — two
// modules reusing the same columns back to back write them twice.
func TestReconfigurationsCountsColumnWrites(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{
		{Name: "first", W: 2, H: 2, Dur: 2},
		{Name: "second", W: 2, H: 2, Dur: 2}, // same columns, after first
		{Name: "side", W: 3, H: 1, Dur: 1},
	}}
	p := &model.Placement{X: []int{0, 0, 2}, Y: []int{0, 0, 3}, S: []int{0, 2, 0}}
	tr, err := Simulate(in, model.Container{W: 5, H: 4, T: 4}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []int{2, 2, 1, 1, 1}
	for x, want := range wantCols {
		if tr.ColumnLoads[x] != want {
			t.Fatalf("column loads = %v, want %v", tr.ColumnLoads, wantCols)
		}
	}
	if got := tr.Reconfigurations(); got != 2+2+3 {
		t.Fatalf("reconfigurations = %d, want 7 (widths 2+2+3)", got)
	}
	// An empty trace reconfigures nothing.
	empty, err := Simulate(&model.Instance{}, model.Container{W: 2, H: 2, T: 1},
		&model.Placement{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Reconfigurations() != 0 {
		t.Fatalf("empty trace reconfigurations = %d", empty.Reconfigurations())
	}
}

// TestSimulateAgreesWithVerify: on random (often invalid) placements,
// the simulator and the model verifier accept exactly the same set.
func TestSimulateAgreesWithVerify(t *testing.T) {
	for seed := int64(0); seed < 2000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(4), 3, 3, 0.3)
		c := model.Container{W: 4, H: 4, T: 5}
		o, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		p := model.NewPlacement(in.N())
		for i := range in.Tasks {
			p.X[i] = rng.Intn(4)
			p.Y[i] = rng.Intn(4)
			p.S[i] = rng.Intn(5)
		}
		_, simErr := Simulate(in, c, p, o)
		verErr := p.Verify(in, c, o)
		if (simErr == nil) != (verErr == nil) {
			t.Fatalf("seed %d: simulator %v, verifier %v", seed, simErr, verErr)
		}
	}
}

// TestSimulateDEOptimum replays the paper's Table-1 optimum and checks
// the utilization figures the solver never computes.
func TestSimulateDEOptimum(t *testing.T) {
	de := bench.DE()
	r, err := solver.MinBase(de, 6, solver.Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != solver.Feasible {
		t.Fatal("DE optimum not found")
	}
	o, _ := de.Order()
	tr, err := Simulate(de, model.Container{W: 32, H: 32, T: 6}, r.Placement, o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan != 6 {
		t.Fatalf("makespan = %d", tr.Makespan)
	}
	// Total busy cell-cycles equal the instance volume (every module
	// runs exactly once).
	if tr.BusyCellCycles != de.Volume() {
		t.Fatalf("busy = %d, volume = %d", tr.BusyCellCycles, de.Volume())
	}
	// At T = 6 four multipliers must run concurrently at some point.
	if tr.PeakCells < 4*256 {
		t.Fatalf("peak cells = %d, want ≥ 1024", tr.PeakCells)
	}
	// Every module loads exactly once: 11 loads, 11 unloads.
	loads := 0
	for _, e := range tr.Events {
		if e.Kind == Load {
			loads++
		}
	}
	if loads != 11 || len(tr.Events) != 22 {
		t.Fatalf("%d loads, %d events", loads, len(tr.Events))
	}
}

func TestEventKindString(t *testing.T) {
	if Load.String() != "load" || Unload.String() != "unload" {
		t.Fatal("EventKind strings wrong")
	}
}
