// Package geomsearch implements the baseline the paper argues against:
// an exact, purely geometric enumeration that assigns every module an
// explicit grid position (the tree-search equivalent of the 0-1 grid
// ILP models of Beasley and Hadjiconstantinou–Christofides, which "fail
// to solve technical problems of interesting size").
//
// It is used (a) as a trusted oracle on tiny instances in the test
// suite and (b) as the comparison baseline in the ablation benchmarks.
package geomsearch

import (
	"time"

	"fpga3d/internal/model"
)

// Status mirrors the outcome classes of the packing-class engine.
type Status int

const (
	Feasible Status = iota
	Infeasible
	NodeLimit
	TimeLimit
)

func (s Status) String() string {
	switch s {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	case TimeLimit:
		return "time-limit"
	}
	return "unknown"
}

// Result reports the outcome of a geometric search.
type Result struct {
	Status    Status
	Placement *model.Placement // non-nil iff Status == Feasible
	Nodes     int64
}

// Options bounds the search effort.
type Options struct {
	NodeLimit int64     // 0 = unlimited
	Deadline  time.Time // zero = none
}

type searcher struct {
	in    *model.Instance
	c     model.Container
	o     *model.Order
	opt   Options
	order []int // task placement order (topological)
	place *model.Placement
	nodes int64
	abort Status // Feasible used as "not aborted" sentinel
}

// Solve decides feasibility by depth-first enumeration of all integer
// positions, task by task in a topological order.
func Solve(in *model.Instance, c model.Container, o *model.Order, opt Options) Result {
	if !c.Fits(in) {
		return Result{Status: Infeasible}
	}
	if in.Volume() > c.Volume() {
		return Result{Status: Infeasible}
	}
	s := &searcher{in: in, c: c, o: o, opt: opt, abort: Feasible}
	s.place = model.NewPlacement(in.N())
	topo, ok := o.Closure().TopoSort()
	if !ok {
		return Result{Status: Infeasible}
	}
	s.order = topo
	if s.dfs(0) {
		return Result{Status: Feasible, Placement: s.place, Nodes: s.nodes}
	}
	if s.abort != Feasible {
		return Result{Status: s.abort, Nodes: s.nodes}
	}
	return Result{Status: Infeasible, Nodes: s.nodes}
}

func (s *searcher) dfs(depth int) bool {
	if s.abort != Feasible {
		return false
	}
	s.nodes++
	if s.opt.NodeLimit > 0 && s.nodes > s.opt.NodeLimit {
		s.abort = NodeLimit
		return false
	}
	if !s.opt.Deadline.IsZero() && s.nodes%4096 == 0 && time.Now().After(s.opt.Deadline) {
		s.abort = TimeLimit
		return false
	}
	if depth == s.in.N() {
		return true
	}
	v := s.order[depth]
	t := s.in.Tasks[v]
	// Earliest start from already placed predecessors (the topological
	// placement order guarantees they are all placed).
	est := 0
	for d := 0; d < depth; d++ {
		u := s.order[d]
		if s.o.Precedes(u, v) {
			if f := s.place.S[u] + s.in.Tasks[u].Dur; f > est {
				est = f
			}
		}
	}
	// The longest chain after v must still fit behind it.
	lastStart := s.c.T - t.Dur - s.o.Tail(v)
	for st := est; st <= lastStart; st++ {
		for y := 0; y+t.H <= s.c.H; y++ {
			for x := 0; x+t.W <= s.c.W; x++ {
				if !s.freeAt(depth, v, x, y, st) {
					continue
				}
				s.place.X[v], s.place.Y[v], s.place.S[v] = x, y, st
				if s.dfs(depth + 1) {
					return true
				}
				if s.abort != Feasible {
					return false
				}
			}
		}
	}
	return false
}

// freeAt reports whether task v at (x, y, st) avoids every task placed
// at depths < depth.
func (s *searcher) freeAt(depth, v, x, y, st int) bool {
	t := s.in.Tasks[v]
	for d := 0; d < depth; d++ {
		u := s.order[d]
		tu := s.in.Tasks[u]
		if s.place.X[u] < x+t.W && x < s.place.X[u]+tu.W &&
			s.place.Y[u] < y+t.H && y < s.place.Y[u]+tu.H &&
			s.place.S[u] < st+t.Dur && st < s.place.S[u]+tu.Dur {
			return false
		}
	}
	return true
}
