package geomsearch

import (
	"math/rand"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func mustOrder(t *testing.T, in *model.Instance) *model.Order {
	t.Helper()
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSolveHandCases(t *testing.T) {
	two := &model.Instance{
		Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}},
	}
	o := mustOrder(t, two)
	// Side by side.
	r := Solve(two, model.Container{W: 4, H: 2, T: 2}, o, Options{})
	if r.Status != Feasible {
		t.Fatalf("side-by-side: %v", r.Status)
	}
	// Too tight in every direction.
	r = Solve(two, model.Container{W: 3, H: 3, T: 3}, o, Options{})
	if r.Status != Infeasible {
		t.Fatalf("3x3x3 for two 2x2x2: %v", r.Status)
	}
	// Sequential reuse.
	r = Solve(two, model.Container{W: 2, H: 2, T: 4}, o, Options{})
	if r.Status != Feasible {
		t.Fatalf("sequential: %v", r.Status)
	}
}

func TestSolveRespectsPrecedence(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 2}, {W: 1, H: 1, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	o := mustOrder(t, in)
	// Spatially trivial, but the chain needs 4 cycles.
	if r := Solve(in, model.Container{W: 4, H: 4, T: 3}, o, Options{}); r.Status != Infeasible {
		t.Fatalf("T=3 for a 4-cycle chain: %v", r.Status)
	}
	r := Solve(in, model.Container{W: 4, H: 4, T: 4}, o, Options{})
	if r.Status != Feasible {
		t.Fatalf("T=4: %v", r.Status)
	}
	if err := r.Placement.Verify(in, model.Container{W: 4, H: 4, T: 4}, o); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePlacementsVerify(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.3)
		c := model.Container{W: 3, H: 3, T: 4}
		if !c.Fits(in) {
			continue
		}
		o := mustOrder(t, in)
		r := Solve(in, c, o, Options{NodeLimit: 1_000_000})
		if r.Status == Feasible {
			if err := r.Placement.Verify(in, c, o); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A hard infeasible instance: many unit tasks that almost fit.
	in := &model.Instance{}
	for i := 0; i < 9; i++ {
		in.Tasks = append(in.Tasks, model.Task{W: 2, H: 2, Dur: 2})
	}
	o := mustOrder(t, in)
	r := Solve(in, model.Container{W: 5, H: 5, T: 3}, o, Options{NodeLimit: 50})
	if r.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", r.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Feasible: "feasible", Infeasible: "infeasible",
		NodeLimit: "node-limit", TimeLimit: "time-limit", Status(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestQuickRejects(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{{W: 5, H: 1, Dur: 1}}}
	o := mustOrder(t, in)
	if r := Solve(in, model.Container{W: 4, H: 4, T: 4}, o, Options{}); r.Status != Infeasible {
		t.Fatal("misfit not rejected")
	}
	in2 := &model.Instance{Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}}}
	o2 := mustOrder(t, in2)
	if r := Solve(in2, model.Container{W: 2, H: 2, T: 3}, o2, Options{}); r.Status != Infeasible {
		t.Fatal("volume overflow not rejected")
	}
}
