// Package graph provides small, dense graph primitives used by the
// packing-class machinery: bitset vertex sets, undirected graphs with
// bitset adjacency, and directed graphs with reachability utilities.
//
// All graphs are over the fixed vertex set {0, …, n−1}. The instances
// handled by the solver are small (tens of vertices), so the package
// favours simplicity and cache-friendly bitset operations over
// asymptotically optimal data structures.
package graph

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a fixed-capacity bitset over vertices 0..n-1.
// The zero value of a Set is unusable; create one with NewSet.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set with capacity for n vertices.
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the vertex capacity the set was created with.
func (s Set) Cap() int { return s.n }

// Add inserts v into the set.
func (s Set) Add(v int) { s.words[v>>6] |= 1 << uint(v&63) }

// Remove deletes v from the set.
func (s Set) Remove(v int) { s.words[v>>6] &^= 1 << uint(v&63) }

// Has reports whether v is in the set.
func (s Set) Has(v int) bool { return s.words[v>>6]&(1<<uint(v&63)) != 0 }

// Count returns the number of vertices in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set contains no vertices.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the receiver with the contents of o.
// Both sets must have been created with the same capacity.
func (s Set) CopyFrom(o Set) { copy(s.words, o.words) }

// Clear removes all vertices.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith adds every vertex of o to s.
func (s Set) UnionWith(o Set) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectWith removes from s every vertex not in o.
func (s Set) IntersectWith(o Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// SubtractWith removes from s every vertex of o.
func (s Set) SubtractWith(o Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// IntersectOf overwrites s with a ∩ b in one pass, without allocating.
// All three sets must share the same capacity. The receiver may alias
// either operand.
func (s Set) IntersectOf(a, b Set) {
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// SumAndMax returns the total weight of the set's members under w,
// together with the heaviest member and its weight. Ties go to the
// smallest vertex. An empty set yields (0, -1, -1). It exists for the
// engine's weighted-clique bound, which needs both quantities in a
// single pass over the candidate set without the per-member closure
// calls ForEach would cost.
func (s Set) SumAndMax(w []int) (sum, argmax, max int) {
	argmax, max = -1, -1
	for i, word := range s.words {
		base := i << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			wv := w[v]
			sum += wv
			if wv > max {
				argmax, max = v, wv
			}
		}
	}
	return sum, argmax, max
}

// Some calls f for the set's vertices in increasing order until f
// returns true, and reports whether any call did. It is the
// early-exit counterpart of ForEach.
func (s Set) Some(f func(v int) bool) bool {
	for i, word := range s.words {
		base := i << 6
		for word != 0 {
			if f(base + bits.TrailingZeros64(word)) {
				return true
			}
			word &= word - 1
		}
	}
	return false
}

// Equal reports whether s and o contain the same vertices.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every vertex of s is in o.
func (s Set) SubsetOf(o Set) bool {
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one vertex.
func (s Set) Intersects(o Set) bool {
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Min returns the smallest vertex in the set, or -1 if the set is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls f for every vertex in the set, in increasing order.
func (s Set) ForEach(f func(v int)) {
	for i, w := range s.words {
		base := i << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Slice returns the vertices of the set in increasing order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(v int) { out = append(out, v) })
	return out
}

// String renders the set as "{v1 v2 ...}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(strconv.Itoa(v))
	})
	b.WriteByte('}')
	return b.String()
}
