package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(130) // force multiple words
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(v) {
			t.Fatalf("fresh set has %d", v)
		}
		s.Add(v)
		if !s.Has(v) {
			t.Fatalf("set missing %d after Add", v)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if s.Min() != 0 {
		t.Fatalf("Min = %d, want 0", s.Min())
	}
	s.Remove(0)
	if s.Has(0) || s.Min() != 1 {
		t.Fatalf("Remove(0) failed: min=%d", s.Min())
	}
	if s.Cap() != 130 {
		t.Fatalf("Cap = %d", s.Cap())
	}
}

func TestSetAddIdempotent(t *testing.T) {
	s := NewSet(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("double Add changed count: %d", s.Count())
	}
	s.Remove(7) // removing an absent vertex is a no-op
	if s.Count() != 1 {
		t.Fatalf("Remove of absent vertex changed count: %d", s.Count())
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(100)
	b := NewSet(100)
	for _, v := range []int{1, 5, 70} {
		a.Add(v)
	}
	for _, v := range []int{5, 70, 99} {
		b.Add(v)
	}

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Slice(); len(got) != 4 || got[0] != 1 || got[3] != 99 {
		t.Fatalf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Slice(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Fatalf("intersection = %v", got)
	}

	d := a.Clone()
	d.SubtractWith(b)
	if got := d.Slice(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("difference = %v", got)
	}

	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Fatal("intersection not subset of operands")
	}
	if a.SubsetOf(b) {
		t.Fatal("a should not be subset of b")
	}
	if !a.Intersects(b) {
		t.Fatal("a and b share 5, 70")
	}
	if d.Intersects(b) {
		t.Fatal("difference should not intersect b")
	}
}

func TestSetCloneIndependence(t *testing.T) {
	a := NewSet(64)
	a.Add(10)
	b := a.Clone()
	b.Add(20)
	if a.Has(20) {
		t.Fatal("Clone shares storage with original")
	}
	b.CopyFrom(a)
	if b.Has(20) || !b.Has(10) {
		t.Fatal("CopyFrom failed")
	}
}

func TestSetEqualAndClear(t *testing.T) {
	a, b := NewSet(70), NewSet(70)
	a.Add(69)
	if a.Equal(b) {
		t.Fatal("unequal sets compare equal")
	}
	b.Add(69)
	if !a.Equal(b) {
		t.Fatal("equal sets compare unequal")
	}
	if a.Equal(NewSet(71)) {
		t.Fatal("sets of different capacity compare equal")
	}
	a.Clear()
	if !a.Empty() {
		t.Fatal("Clear left elements")
	}
	if a.Min() != -1 {
		t.Fatalf("Min of empty = %d, want -1", a.Min())
	}
}

func TestSetForEachOrder(t *testing.T) {
	s := NewSet(200)
	want := []int{0, 63, 64, 100, 199}
	for _, v := range want {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(v int) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch: got %v, want %v", got, want)
		}
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(10)
	if s.String() != "{}" {
		t.Fatalf("empty String = %q", s.String())
	}
	s.Add(2)
	s.Add(7)
	if s.String() != "{2 7}" {
		t.Fatalf("String = %q", s.String())
	}
}

// TestSetQuickAgainstMap cross-checks the bitset against a map reference
// under random operation sequences.
func TestSetQuickAgainstMap(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 150
		s := NewSet(n)
		ref := map[int]bool{}
		for i := 0; i < int(nOps); i++ {
			v := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(v)
				ref[v] = true
			case 1:
				s.Remove(v)
				delete(ref, v)
			case 2:
				if s.Has(v) != ref[v] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, v := range s.Slice() {
			if !ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetIntersectOf(t *testing.T) {
	a, b, dst := NewSet(130), NewSet(130), NewSet(130)
	for _, v := range []int{1, 63, 64, 100, 129} {
		a.Add(v)
	}
	for _, v := range []int{63, 64, 99, 129} {
		b.Add(v)
	}
	dst.Add(7) // stale content must be overwritten
	dst.IntersectOf(a, b)
	want := NewSet(130)
	for _, v := range []int{63, 64, 129} {
		want.Add(v)
	}
	if !dst.Equal(want) {
		t.Fatalf("IntersectOf = %v, want %v", dst, want)
	}
	// Receiver aliasing an operand.
	a.IntersectOf(a, b)
	if !a.Equal(want) {
		t.Fatalf("aliased IntersectOf = %v, want %v", a, want)
	}
}

func TestSetSumAndMax(t *testing.T) {
	s := NewSet(70)
	w := make([]int, 70)
	if sum, arg, max := s.SumAndMax(w); sum != 0 || arg != -1 || max != -1 {
		t.Fatalf("empty SumAndMax = (%d,%d,%d)", sum, arg, max)
	}
	w[3], w[64], w[69] = 5, 9, 9
	for _, v := range []int{3, 64, 69} {
		s.Add(v)
	}
	sum, arg, max := s.SumAndMax(w)
	if sum != 23 || max != 9 {
		t.Fatalf("SumAndMax = (%d,%d,%d), want sum 23 max 9", sum, arg, max)
	}
	if arg != 64 { // ties break to the smallest vertex
		t.Fatalf("SumAndMax argmax = %d, want 64", arg)
	}
}

func TestSetSome(t *testing.T) {
	s := NewSet(130)
	for _, v := range []int{2, 64, 128} {
		s.Add(v)
	}
	var seen []int
	if s.Some(func(v int) bool { seen = append(seen, v); return v >= 64 }) != true {
		t.Fatal("Some returned false despite a match")
	}
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 64 {
		t.Fatalf("Some visited %v, want [2 64]", seen)
	}
	if s.Some(func(v int) bool { return v > 1000 }) {
		t.Fatal("Some returned true without a match")
	}
}
