package graph

// Digraph is a simple directed graph on vertices 0..n-1 with bitset
// out- and in-adjacency rows.
type Digraph struct {
	n    int
	out  []Set
	in   []Set
	arcs int
}

// NewDigraph returns an arcless digraph on n vertices.
func NewDigraph(n int) *Digraph {
	d := &Digraph{n: n, out: make([]Set, n), in: make([]Set, n)}
	for i := 0; i < n; i++ {
		d.out[i] = NewSet(n)
		d.in[i] = NewSet(n)
	}
	return d
}

// N returns the number of vertices.
func (d *Digraph) N() int { return d.n }

// Arcs returns the number of arcs.
func (d *Digraph) Arcs() int { return d.arcs }

// AddArc inserts the arc u→v. Adding an existing arc is a no-op.
func (d *Digraph) AddArc(u, v int) {
	if u == v || d.out[u].Has(v) {
		return
	}
	d.out[u].Add(v)
	d.in[v].Add(u)
	d.arcs++
}

// HasArc reports whether u→v is an arc.
func (d *Digraph) HasArc(u, v int) bool { return d.out[u].Has(v) }

// Out returns the out-neighborhood of v (shared storage; do not modify).
func (d *Digraph) Out(v int) Set { return d.out[v] }

// In returns the in-neighborhood of v (shared storage; do not modify).
func (d *Digraph) In(v int) Set { return d.in[v] }

// Clone returns a deep copy.
func (d *Digraph) Clone() *Digraph {
	c := NewDigraph(d.n)
	for u := 0; u < d.n; u++ {
		c.out[u].CopyFrom(d.out[u])
		c.in[u].CopyFrom(d.in[u])
	}
	c.arcs = d.arcs
	return c
}

// TopoSort returns a topological order of the vertices and true, or nil
// and false if the digraph contains a directed cycle.
func (d *Digraph) TopoSort() ([]int, bool) {
	indeg := make([]int, d.n)
	for v := 0; v < d.n; v++ {
		indeg[v] = d.in[v].Count()
	}
	queue := make([]int, 0, d.n)
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, d.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		d.out[v].ForEach(func(w int) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		})
	}
	if len(order) != d.n {
		return nil, false
	}
	return order, true
}

// IsAcyclic reports whether the digraph has no directed cycle.
func (d *Digraph) IsAcyclic() bool {
	_, ok := d.TopoSort()
	return ok
}

// TransitiveClosure returns a new digraph with an arc u→v whenever v is
// reachable from u by a nonempty directed path in d.
// It requires d to be acyclic only in the sense that cycles yield arcs in
// both directions; callers that need a partial order should check
// IsAcyclic first.
func (d *Digraph) TransitiveClosure() *Digraph {
	c := d.Clone()
	// Floyd–Warshall style closure on bitset rows.
	for k := 0; k < d.n; k++ {
		for u := 0; u < d.n; u++ {
			if c.out[u].Has(k) {
				c.out[u].UnionWith(c.out[k])
			}
		}
	}
	// Rebuild in-sets and arc count.
	res := NewDigraph(d.n)
	for u := 0; u < d.n; u++ {
		c.out[u].ForEach(func(v int) {
			if v != u {
				res.AddArc(u, v)
			}
		})
	}
	return res
}

// IsTransitive reports whether for every pair of arcs u→v, v→w the arc
// u→w is also present.
func (d *Digraph) IsTransitive() bool {
	for u := 0; u < d.n; u++ {
		ok := true
		d.out[u].ForEach(func(v int) {
			if ok && !d.out[v].SubsetOf(d.out[u]) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// LongestPathFrom computes, for every vertex v, the maximum total weight
// of the vertices on a directed path ending just before v (v excluded).
// In scheduling terms with weight = duration this is the earliest start
// time of v. The digraph must be acyclic; ok is false otherwise.
func (d *Digraph) LongestPathFrom(weight []int) (dist []int, ok bool) {
	order, ok := d.TopoSort()
	if !ok {
		return nil, false
	}
	dist = make([]int, d.n)
	for _, v := range order {
		d.out[v].ForEach(func(w int) {
			if c := dist[v] + weight[v]; c > dist[w] {
				dist[w] = c
			}
		})
	}
	return dist, true
}

// LongestPathTo computes, for every vertex v, the maximum total weight of
// the vertices on a directed path starting just after v (v excluded).
// In scheduling terms this is the "tail" of v. The digraph must be
// acyclic; ok is false otherwise.
func (d *Digraph) LongestPathTo(weight []int) (tail []int, ok bool) {
	order, ok := d.TopoSort()
	if !ok {
		return nil, false
	}
	tail = make([]int, d.n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		d.out[v].ForEach(func(w int) {
			if c := tail[w] + weight[w]; c > tail[v] {
				tail[v] = c
			}
		})
	}
	return tail, true
}

// CriticalPath returns the maximum total vertex weight over all directed
// paths (the makespan lower bound of the order). ok is false if cyclic.
func (d *Digraph) CriticalPath(weight []int) (int, bool) {
	est, ok := d.LongestPathFrom(weight)
	if !ok {
		return 0, false
	}
	best := 0
	for v := 0; v < d.n; v++ {
		if c := est[v] + weight[v]; c > best {
			best = c
		}
	}
	return best, true
}
