package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	d := NewDigraph(4)
	d.AddArc(0, 1)
	d.AddArc(0, 1) // duplicate
	d.AddArc(1, 1) // self arc ignored
	if d.Arcs() != 1 {
		t.Fatalf("Arcs = %d, want 1", d.Arcs())
	}
	if !d.HasArc(0, 1) || d.HasArc(1, 0) {
		t.Fatal("arc direction wrong")
	}
	if !d.Out(0).Has(1) || !d.In(1).Has(0) {
		t.Fatal("out/in sets inconsistent")
	}
}

func TestTopoSort(t *testing.T) {
	d := NewDigraph(5)
	d.AddArc(0, 2)
	d.AddArc(1, 2)
	d.AddArc(2, 3)
	d.AddArc(3, 4)
	order, ok := d.TopoSort()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 5; u++ {
		d.Out(u).ForEach(func(v int) {
			if pos[u] >= pos[v] {
				t.Fatalf("topo order violates arc %d→%d", u, v)
			}
		})
	}

	d.AddArc(4, 0) // close a cycle
	if _, ok := d.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
	if d.IsAcyclic() {
		t.Fatal("IsAcyclic true on cyclic digraph")
	}
}

func TestTransitiveClosure(t *testing.T) {
	d := NewDigraph(4)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(2, 3)
	c := d.TransitiveClosure()
	want := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if c.Arcs() != len(want) {
		t.Fatalf("closure has %d arcs, want %d", c.Arcs(), len(want))
	}
	for _, a := range want {
		if !c.HasArc(a[0], a[1]) {
			t.Fatalf("closure missing %v", a)
		}
	}
	if !c.IsTransitive() {
		t.Fatal("closure not transitive")
	}
	if d.IsTransitive() {
		t.Fatal("chain 0→1→2→3 reported transitive")
	}
}

func TestClosureQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		d := NewDigraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					d.AddArc(u, v) // forward arcs only: always a DAG
				}
			}
		}
		c := d.TransitiveClosure()
		// Closure is idempotent and transitive.
		if !c.IsTransitive() {
			return false
		}
		cc := c.TransitiveClosure()
		for v := 0; v < n; v++ {
			if !cc.Out(v).Equal(c.Out(v)) {
				return false
			}
		}
		// Reachability agrees with BFS on the original.
		for s := 0; s < n; s++ {
			reach := NewSet(n)
			stack := []int{s}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				d.Out(x).ForEach(func(y int) {
					if !reach.Has(y) {
						reach.Add(y)
						stack = append(stack, y)
					}
				})
			}
			if !reach.Equal(c.Out(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLongestPaths(t *testing.T) {
	// Diamond: 0→1→3, 0→2→3 with weights 2,5,3,1.
	d := NewDigraph(4)
	d.AddArc(0, 1)
	d.AddArc(0, 2)
	d.AddArc(1, 3)
	d.AddArc(2, 3)
	w := []int{2, 5, 3, 1}

	est, ok := d.LongestPathFrom(w)
	if !ok {
		t.Fatal("acyclic digraph rejected")
	}
	if est[0] != 0 || est[1] != 2 || est[2] != 2 || est[3] != 7 {
		t.Fatalf("EST = %v", est)
	}
	tail, _ := d.LongestPathTo(w)
	if tail[3] != 0 || tail[1] != 1 || tail[2] != 1 || tail[0] != 6 {
		t.Fatalf("tails = %v", tail)
	}
	cp, _ := d.CriticalPath(w)
	if cp != 8 { // 0(2) → 1(5) → 3(1)
		t.Fatalf("critical path = %d, want 8", cp)
	}

	d.AddArc(3, 0)
	if _, ok := d.LongestPathFrom(w); ok {
		t.Fatal("cycle accepted by LongestPathFrom")
	}
	if _, ok := d.LongestPathTo(w); ok {
		t.Fatal("cycle accepted by LongestPathTo")
	}
	if _, ok := d.CriticalPath(w); ok {
		t.Fatal("cycle accepted by CriticalPath")
	}
}

func TestDigraphClone(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1)
	c := d.Clone()
	c.AddArc(1, 2)
	if d.HasArc(1, 2) || d.Arcs() != 1 || c.Arcs() != 2 {
		t.Fatal("clone shares storage")
	}
}
