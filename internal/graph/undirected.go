package graph

import "fmt"

// Undirected is a simple undirected graph on vertices 0..n-1 with bitset
// adjacency rows. Self-loops are not allowed.
type Undirected struct {
	n   int
	adj []Set
	m   int // number of edges
}

// NewUndirected returns an edgeless graph on n vertices.
func NewUndirected(n int) *Undirected {
	g := &Undirected{n: n, adj: make([]Set, n)}
	for i := range g.adj {
		g.adj[i] = NewSet(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// M returns the number of edges.
func (g *Undirected) M() int { return g.m }

// AddEdge inserts the edge {u, v}. Adding an existing edge is a no-op;
// adding a self-loop panics (it always indicates a logic error upstream).
func (g *Undirected) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if g.adj[u].Has(v) {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
	g.m++
}

// RemoveEdge deletes the edge {u, v} if present.
func (g *Undirected) RemoveEdge(u, v int) {
	if !g.adj[u].Has(v) {
		return
	}
	g.adj[u].Remove(v)
	g.adj[v].Remove(u)
	g.m--
}

// HasEdge reports whether {u, v} is an edge.
func (g *Undirected) HasEdge(u, v int) bool { return u != v && g.adj[u].Has(v) }

// Neighbors returns the adjacency set of v. The returned set is shared
// with the graph; callers must not modify it.
func (g *Undirected) Neighbors(v int) Set { return g.adj[v] }

// Degree returns the number of neighbors of v.
func (g *Undirected) Degree(v int) int { return g.adj[v].Count() }

// Clone returns a deep copy of the graph.
func (g *Undirected) Clone() *Undirected {
	c := &Undirected{n: g.n, adj: make([]Set, g.n), m: g.m}
	for i := range g.adj {
		c.adj[i] = g.adj[i].Clone()
	}
	return c
}

// Complement returns the complement graph: {u,v} is an edge of the result
// iff u ≠ v and {u,v} is not an edge of g.
func (g *Undirected) Complement() *Undirected {
	c := NewUndirected(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Edges calls f for every edge {u, v} with u < v.
func (g *Undirected) Edges(f func(u, v int)) {
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) {
			if v > u {
				f(u, v)
			}
		})
	}
}

// IsStableSet reports whether the vertices of s are pairwise non-adjacent.
func (g *Undirected) IsStableSet(s Set) bool {
	ok := true
	s.ForEach(func(v int) {
		if ok && g.adj[v].Intersects(s) {
			ok = false
		}
	})
	return ok
}

// IsClique reports whether the vertices of s are pairwise adjacent.
func (g *Undirected) IsClique(s Set) bool {
	vs := s.Slice()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}
