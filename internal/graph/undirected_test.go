package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("fresh graph: n=%d m=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	if g.M() != 1 {
		t.Fatalf("M = %d after duplicate add", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self loop reported")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree wrong")
	}
	g.RemoveEdge(0, 1)
	if g.M() != 0 || g.HasEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
	g.RemoveEdge(0, 1) // removing absent edge is a no-op
	if g.M() != 0 {
		t.Fatal("RemoveEdge of absent edge changed count")
	}
}

func TestUndirectedSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(2,2) did not panic")
		}
	}()
	NewUndirected(5).AddEdge(2, 2)
}

func TestUndirectedComplement(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Complement()
	if c.M() != 4 { // K4 has 6 edges; 6-2=4
		t.Fatalf("complement M = %d, want 4", c.M())
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if g.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Fatalf("edge {%d,%d} in both or neither", u, v)
			}
		}
	}
	cc := c.Complement()
	for u := 0; u < 4; u++ {
		if !cc.Neighbors(u).Equal(g.Neighbors(u)) {
			t.Fatal("double complement differs from original")
		}
	}
}

func TestUndirectedCloneIndependence(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone shares adjacency with original")
	}
	if c.M() != 2 || g.M() != 1 {
		t.Fatal("edge counts wrong after clone mutation")
	}
}

func TestUndirectedEdgesIteration(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1)
	count := 0
	g.Edges(func(u, v int) {
		if u >= v {
			t.Fatalf("Edges emitted (%d,%d) with u >= v", u, v)
		}
		if !g.HasEdge(u, v) {
			t.Fatalf("Edges emitted non-edge (%d,%d)", u, v)
		}
		count++
	})
	if count != 3 {
		t.Fatalf("Edges emitted %d, want 3", count)
	}
}

func TestStableAndClique(t *testing.T) {
	g := NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2) // triangle 0-1-2; vertices 3,4 isolated

	tri := NewSet(5)
	tri.Add(0)
	tri.Add(1)
	tri.Add(2)
	if !g.IsClique(tri) {
		t.Fatal("triangle not recognized as clique")
	}
	if g.IsStableSet(tri) {
		t.Fatal("triangle reported stable")
	}

	iso := NewSet(5)
	iso.Add(3)
	iso.Add(4)
	iso.Add(0)
	if !g.IsStableSet(iso) {
		t.Fatal("{0,3,4} should be stable")
	}
	if g.IsClique(iso) {
		t.Fatal("{0,3,4} reported clique")
	}
}

// TestComplementQuick: stable sets of g are cliques of the complement.
func TestComplementQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := NewUndirected(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		c := g.Complement()
		s := NewSet(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				s.Add(v)
			}
		}
		return g.IsStableSet(s) == c.IsClique(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
