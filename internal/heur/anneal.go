package heur

import (
	"context"
	"math"
	"math/rand"

	"fpga3d/internal/model"
)

// AnnealOptions configure the randomized annealing placer. The zero
// value is ready to use: seed 1, a default iteration budget, and one
// restart per priority rule.
type AnnealOptions struct {
	// Seed drives every random choice. Runs are deterministic per
	// seed: the same (instance, chip, options) always yields the same
	// schedule and the same OnImprove sequence. Zero means seed 1.
	Seed int64
	// Iterations is the number of perturbation proposals per restart.
	// Zero means DefaultAnnealIterations.
	Iterations int
	// Restarts is the number of independent annealing walks; restart i
	// starts from the ordering of Rules()[i mod len(Rules())], with
	// random jitter after the first cycle through the rules. Zero
	// means one restart per rule.
	Restarts int
	// Target, when positive, stops the search as soon as the best
	// makespan is ≤ Target (typically a proven lower bound: reaching
	// it certifies optimality, so further effort is wasted).
	Target int
	// OnImprove, when non-nil, is called with each new best placement
	// as it is found, including the initial greedy schedule. The
	// placement must not be mutated by the callback.
	OnImprove func(p *model.Placement, makespan int)
}

// DefaultAnnealIterations is the per-restart proposal budget used when
// AnnealOptions.Iterations is zero.
const DefaultAnnealIterations = 256

// AnnealMinMakespan minimizes the makespan of in on a W×H chip by
// simulated annealing over task-priority permutations, decoding each
// permutation with the same occupancy-grid list scheduler the greedy
// rules use. It starts from the best greedy schedule (so the result is
// never worse than MinMakespan's) and is deterministic per
// opt.Seed. ok is false only if some task does not fit the chip
// spatially. A canceled ctx stops the walk early and returns the best
// schedule found so far; ctx may be nil.
func AnnealMinMakespan(ctx context.Context, in *model.Instance, W, H int, o *model.Order, opt AnnealOptions) (*model.Placement, int, bool) {
	best, bestMk, ok := MinMakespan(in, W, H, o)
	if !ok {
		return nil, 0, false
	}
	if opt.OnImprove != nil {
		opt.OnImprove(best, bestMk)
	}
	n := in.N()
	if n < 2 || (opt.Target > 0 && bestMk <= opt.Target) {
		return best, bestMk, true
	}

	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	iters := opt.Iterations
	if iters <= 0 {
		iters = DefaultAnnealIterations
	}
	restarts := opt.Restarts
	if restarts <= 0 {
		restarts = len(ruleNames)
	}
	rng := rand.New(rand.NewSource(seed))

	// The walk is clipped at the greedy makespan: schedules that do
	// not fit the greedy horizon are rejected outright, which keeps
	// the occupancy grids small and the landscape bounded.
	horizon := bestMk
	prio := make([]int, n)

	for r := 0; r < restarts; r++ {
		if canceled(ctx) {
			break
		}
		initPriorities(prio, in, o, Rule(r%len(ruleNames)))
		if r >= len(ruleNames) {
			// Later restarts jitter the base ordering so they explore
			// a different basin.
			for k := 0; k < n/2+1; k++ {
				i, j := rng.Intn(n), rng.Intn(n)
				prio[i], prio[j] = prio[j], prio[i]
			}
		}
		cur, curMk, okr := scheduleByPriority(in, W, H, horizon, o, prio)
		if !okr {
			continue
		}
		if curMk < bestMk {
			best, bestMk = cur, curMk
			report(opt, best, bestMk)
		}
		for it := 0; it < iters; it++ {
			if canceled(ctx) {
				return best, bestMk, true
			}
			if opt.Target > 0 && bestMk <= opt.Target {
				return best, bestMk, true
			}
			// Geometric cooling from temp 2.0 down to ~0.04: early
			// proposals accept makespan regressions of a few cycles,
			// late ones are nearly pure descent.
			temp := 2.0 * math.Pow(0.02, float64(it)/float64(iters))
			i, j := rng.Intn(n), rng.Intn(n)
			for i == j {
				j = rng.Intn(n)
			}
			prio[i], prio[j] = prio[j], prio[i]
			cand, mk, okc := scheduleByPriority(in, W, H, horizon, o, prio)
			if !okc || !accept(mk-curMk, temp, rng) {
				prio[i], prio[j] = prio[j], prio[i] // revert
				continue
			}
			cur, curMk = cand, mk
			if curMk < bestMk {
				best, bestMk = cur, curMk
				report(opt, best, bestMk)
			}
		}
	}
	return best, bestMk, true
}

// accept implements the Metropolis criterion: improving or lateral
// moves always pass, worsening moves pass with probability e^(−Δ/T).
func accept(delta int, temp float64, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	return rng.Float64() < math.Exp(-float64(delta)/temp)
}

func report(opt AnnealOptions, p *model.Placement, mk int) {
	if opt.OnImprove != nil {
		opt.OnImprove(p, mk)
	}
}

func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// initPriorities fills prio with each task's rank under the rule's
// static ordering (ignoring readiness), so the first decode of the
// permutation reproduces the rule's greedy schedule.
func initPriorities(prio []int, in *model.Instance, o *model.Order, r Rule) {
	n := in.N()
	idx := make([]int, n)
	for v := range idx {
		idx[v] = v
	}
	sortByKey(idx, func(v int) (int, int, int) { return r.key(in, o, v) })
	for rank, v := range idx {
		prio[v] = rank
	}
}

// scheduleByPriority decodes a priority permutation into a schedule:
// among ready tasks, the one with the smallest priority value goes
// first.
func scheduleByPriority(in *model.Instance, W, H, T int, o *model.Order, prio []int) (*model.Placement, int, bool) {
	return listScheduleKeyed(in, W, H, T, o, func(v int) (int, int, int) {
		return prio[v], v, 0
	})
}
