package heur

import (
	"context"
	"math/rand"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// TestAnnealDeterministicPerSeed: the same seed must reproduce the
// identical schedule and the identical improvement sequence; the
// annealer is part of the anytime tier's reproducibility story.
func TestAnnealDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := bench.Random(rng, 12, 4, 6, 0.3)
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) (*model.Placement, int, []int) {
		var trace []int
		p, mk, ok := AnnealMinMakespan(context.Background(), in, 8, 8, o, AnnealOptions{
			Seed:       seed,
			Iterations: 150,
			OnImprove:  func(_ *model.Placement, m int) { trace = append(trace, m) },
		})
		if !ok {
			t.Fatal("anneal failed")
		}
		return p, mk, trace
	}
	p1, mk1, tr1 := run(42)
	p2, mk2, tr2 := run(42)
	if mk1 != mk2 {
		t.Fatalf("same seed gave makespans %d and %d", mk1, mk2)
	}
	for v := 0; v < in.N(); v++ {
		if p1.X[v] != p2.X[v] || p1.Y[v] != p2.Y[v] || p1.S[v] != p2.S[v] {
			t.Fatalf("same seed gave different placements at task %d", v)
		}
	}
	if len(tr1) != len(tr2) {
		t.Fatalf("same seed gave improvement traces of length %d and %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("improvement traces diverge at step %d: %d vs %d", i, tr1[i], tr2[i])
		}
	}
}

// TestAnnealNeverWorseThanGreedy: the annealer starts from the greedy
// schedule, so across many random instances it must never regress,
// every improvement must be strictly decreasing starting at the
// greedy makespan, and every returned placement must verify.
func TestAnnealNeverWorseThanGreedy(t *testing.T) {
	W, H := 6, 6
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 5+rng.Intn(8), 4, 5, 0.3)
		if in.MaxW() > W || in.MaxH() > H {
			continue
		}
		o, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		_, greedy, ok := MinMakespan(in, W, H, o)
		if !ok {
			t.Fatalf("seed %d: greedy failed", seed)
		}
		var trace []int
		p, mk, ok := AnnealMinMakespan(context.Background(), in, W, H, o, AnnealOptions{
			Seed:      seed + 1,
			OnImprove: func(_ *model.Placement, m int) { trace = append(trace, m) },
		})
		if !ok {
			t.Fatalf("seed %d: anneal failed", seed)
		}
		if mk > greedy {
			t.Fatalf("seed %d: anneal makespan %d worse than greedy %d", seed, mk, greedy)
		}
		if err := p.Verify(in, model.Container{W: W, H: H, T: mk}, o); err != nil {
			t.Fatalf("seed %d: anneal placement invalid: %v", seed, err)
		}
		if len(trace) == 0 || trace[0] != greedy || trace[len(trace)-1] != mk {
			t.Fatalf("seed %d: improvement trace %v does not run greedy %d → best %d",
				seed, trace, greedy, mk)
		}
		for i := 1; i < len(trace); i++ {
			if trace[i] >= trace[i-1] {
				t.Fatalf("seed %d: improvements not strictly decreasing: %v", seed, trace)
			}
		}
	}
}

// TestAnnealTargetStopsEarly: once the best makespan reaches Target
// (a proven lower bound in real use), the walk must stop rather than
// burn the remaining budget.
func TestAnnealTargetStopsEarly(t *testing.T) {
	in := &model.Instance{
		Name: "target",
		Tasks: []model.Task{
			{Name: "a", W: 2, H: 2, Dur: 4},
			{Name: "b", W: 2, H: 2, Dur: 4},
		},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	_, greedy, _ := MinMakespan(in, 4, 4, o)
	calls := 0
	_, mk, ok := AnnealMinMakespan(context.Background(), in, 4, 4, o, AnnealOptions{
		Target:    greedy,
		OnImprove: func(*model.Placement, int) { calls++ },
	})
	if !ok || mk != greedy {
		t.Fatalf("target run: mk=%d ok=%v, want greedy %d", mk, ok, greedy)
	}
	if calls != 1 {
		t.Fatalf("target already met by greedy: want exactly 1 improvement callback, got %d", calls)
	}
}

// TestAnnealCanceledContext: a canceled context must still return the
// greedy-quality schedule (the anytime tier treats it as "best so
// far"), not fail.
func TestAnnealCanceledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := bench.Random(rng, 10, 4, 5, 0.3)
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, greedy, _ := MinMakespan(in, 8, 8, o)
	p, mk, ok := AnnealMinMakespan(ctx, in, 8, 8, o, AnnealOptions{Seed: 1})
	if !ok || p == nil || mk != greedy {
		t.Fatalf("canceled anneal: mk=%d ok=%v, want greedy %d", mk, ok, greedy)
	}
}

// TestAnnealSpatialInfeasible: a task wider than the chip fails the
// same way MinMakespan does.
func TestAnnealSpatialInfeasible(t *testing.T) {
	in := &model.Instance{
		Name:  "toowide",
		Tasks: []model.Task{{Name: "a", W: 9, H: 1, Dur: 1}},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := AnnealMinMakespan(context.Background(), in, 8, 8, o, AnnealOptions{}); ok {
		t.Fatal("anneal accepted a spatially infeasible instance")
	}
}
