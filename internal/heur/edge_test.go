package heur

import (
	"testing"

	"fpga3d/internal/model"
)

// TestZeroDurationTasks: zero-duration tasks occupy no grid cells but
// still participate in precedence. The scheduler must place them
// without inflating the makespan and without corrupting the grid.
// (model.Validate rejects Dur ≤ 0, so the instance is built directly —
// the heuristic layer itself must stay robust to it.)
func TestZeroDurationTasks(t *testing.T) {
	in := &model.Instance{
		Name: "zero-dur",
		Tasks: []model.Task{
			{Name: "real1", W: 2, H: 2, Dur: 3},
			{Name: "ghost", W: 2, H: 2, Dur: 0},
			{Name: "real2", W: 2, H: 2, Dur: 2},
		},
		// real1 → ghost → real2: the ghost must not add time between
		// them.
		Prec: []model.Arc{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	p, mk, ok := MinMakespan(in, 2, 2, o)
	if !ok {
		t.Fatal("MinMakespan failed on zero-duration instance")
	}
	// The chain is fully serialized on a 2×2 chip: 3 + 0 + 2 cycles.
	if mk != 5 {
		t.Fatalf("makespan = %d, want 5", mk)
	}
	// Precedence holds even through the zero-duration link.
	if p.S[1] < p.S[0]+3 || p.S[2] < p.S[1] {
		t.Fatalf("precedence violated through zero-duration task: starts %v", p.S)
	}
}

// TestAllZeroDurations: an instance of only zero-duration tasks has
// makespan 0 and must not loop or fail.
func TestAllZeroDurations(t *testing.T) {
	in := &model.Instance{
		Name: "all-zero",
		Tasks: []model.Task{
			{Name: "a", W: 1, H: 1, Dur: 0},
			{Name: "b", W: 1, H: 1, Dur: 0},
		},
		Prec: []model.Arc{{From: 0, To: 1}},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	_, mk, ok := MinMakespan(in, 1, 1, o)
	if !ok || mk != 0 {
		t.Fatalf("MinMakespan = %d (ok=%v), want 0", mk, ok)
	}
}

// TestChipFillingTask: a task spanning the whole chip forces full
// serialization around it; the greedy placer must find that schedule
// rather than fail.
func TestChipFillingTask(t *testing.T) {
	for _, W := range []int{4, 64, 70} { // word fast path, 64-bit edge, bool fallback
		in := &model.Instance{
			Name: "chip-filler",
			Tasks: []model.Task{
				{Name: "small1", W: 1, H: 1, Dur: 2},
				{Name: "filler", W: W, H: 3, Dur: 4},
				{Name: "small2", W: 2, H: 2, Dur: 3},
			},
		}
		o, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		p, mk, ok := MinMakespan(in, W, 3, o)
		if !ok {
			t.Fatalf("W=%d: MinMakespan failed", W)
		}
		if err := p.Verify(in, model.Container{W: W, H: 3, T: mk}, o); err != nil {
			t.Fatalf("W=%d: invalid placement: %v", W, err)
		}
		// The filler shares no cycle with anything, but the two small
		// tasks can overlap in time: 4 + max(2,3) = 7.
		if mk != 7 {
			t.Fatalf("W=%d: makespan = %d, want 7", W, mk)
		}
		// Exactly-filling means the filler must sit at the origin.
		if p.X[1] != 0 || p.Y[1] != 0 {
			t.Fatalf("W=%d: filler placed at (%d,%d), want origin", W, p.X[1], p.Y[1])
		}
	}
}

// TestAllRulesTie: identical independent tasks make every rule's
// primary and secondary keys tie; the index tiebreak must still yield
// a deterministic, optimal schedule.
func TestAllRulesTie(t *testing.T) {
	tasks := make([]model.Task, 4)
	for i := range tasks {
		tasks[i] = model.Task{Name: "t", W: 2, H: 2, Dur: 5}
	}
	in := &model.Instance{Name: "ties", Tasks: tasks}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	// All four 2×2 tasks fit one 4×4 chip concurrently.
	p1, mk, ok := MinMakespan(in, 4, 4, o)
	if !ok || mk != 5 {
		t.Fatalf("MinMakespan = %d (ok=%v), want 5", mk, ok)
	}
	// Determinism: a second run reproduces the same coordinates.
	p2, _, _ := MinMakespan(in, 4, 4, o)
	for v := range tasks {
		if p1.X[v] != p2.X[v] || p1.Y[v] != p2.Y[v] || p1.S[v] != p2.S[v] {
			t.Fatalf("tie-broken schedule not deterministic at task %d", v)
		}
	}
	// On a 2×2 chip they serialize: 4 × 5 cycles.
	if _, mk, ok = MinMakespan(in, 2, 2, o); !ok || mk != 20 {
		t.Fatalf("serialized MinMakespan = %d (ok=%v), want 20", mk, ok)
	}
}
