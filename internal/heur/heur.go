// Package heur implements stage 2 of the paper's framework: fast
// heuristics that try to find a feasible packing before the
// branch-and-bound search is started.
//
// The greedy placer is a precedence-respecting list scheduler over an
// occupancy grid: tasks are taken in priority order (every Rule is
// tried) and each is placed at the earliest start time and bottom-left
// spatial position where its w×h×dur box is free.
//
// The randomized annealing placer (AnnealMinMakespan) searches the
// space of priority permutations around the same scheduling core: it
// restarts from each rule's ordering, perturbs priorities by swaps,
// and accepts worsening moves with a cooling Metropolis criterion.
// It is deterministic per seed and never returns a schedule worse
// than the greedy placer's.
package heur

import (
	"math/bits"
	"sort"

	"fpga3d/internal/model"
)

// Place attempts to find a feasible placement of in inside c under o.
// It returns the placement and true on success; a false result is
// inconclusive (the instance may still be feasible).
func Place(in *model.Instance, c model.Container, o *model.Order) (*model.Placement, bool) {
	best, makespan := bestPlacement(in, c.W, c.H, c.T, o)
	if best == nil || makespan > c.T {
		return nil, false
	}
	return best, true
}

// MinMakespan greedily minimizes the makespan of in on a W×H chip under
// o, returning the placement and its makespan. ok is false only if some
// task does not fit the chip spatially.
func MinMakespan(in *model.Instance, W, H int, o *model.Order) (*model.Placement, int, bool) {
	if in.MaxW() > W || in.MaxH() > H {
		return nil, 0, false
	}
	// A fully serialized schedule always fits, so TotalDuration is a
	// safe horizon.
	horizon := in.TotalDuration()
	p, makespan := bestPlacement(in, W, H, horizon, o)
	if p == nil {
		return nil, 0, false
	}
	return p, makespan, true
}

// bestPlacement runs every priority rule and keeps the placement with
// the smallest makespan that fits the horizon; returns nil if none fits.
func bestPlacement(in *model.Instance, W, H, T int, o *model.Order) (*model.Placement, int) {
	var best *model.Placement
	bestMk := T + 1
	for _, r := range Rules() {
		p, mk, ok := listSchedule(in, W, H, T, o, r)
		if ok && mk < bestMk {
			best, bestMk = p, mk
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestMk
}

// listSchedule performs one greedy pass with the given priority rule.
func listSchedule(in *model.Instance, W, H, T int, o *model.Order, rule Rule) (*model.Placement, int, bool) {
	return listScheduleKeyed(in, W, H, T, o, func(v int) (int, int, int) {
		return rule.key(in, o, v)
	})
}

// listScheduleKeyed is the scheduling core shared by the greedy rules
// and the annealing placer: a precedence-respecting list scheduler
// that repeatedly picks the ready task with the smallest key and
// places it at the earliest-start bottom-left free position of the
// occupancy grid. It fails (ok=false) when some task cannot be placed
// within the T-cycle horizon.
func listScheduleKeyed(in *model.Instance, W, H, T int, o *model.Order, key func(v int) (int, int, int)) (*model.Placement, int, bool) {
	n := in.N()
	occ := newOccGrid(W, H, T)
	place := model.NewPlacement(n)
	done := make([]bool, n)
	finish := make([]int, n)

	for placed := 0; placed < n; placed++ {
		// Ready tasks: all predecessors placed.
		ready := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			ok := true
			o.Closure().In(v).ForEach(func(u int) {
				if !done[u] {
					ok = false
				}
			})
			if ok {
				ready = append(ready, v)
			}
		}
		sortByKey(ready, key)
		v := ready[0]
		t := in.Tasks[v]
		est := 0
		o.Closure().In(v).ForEach(func(u int) {
			if finish[u] > est {
				est = finish[u]
			}
		})
		x, y, s, ok := occ.findSlot(t.W, t.H, t.Dur, est)
		if !ok {
			return nil, 0, false
		}
		occ.fill(x, y, s, t.W, t.H, t.Dur)
		place.X[v], place.Y[v], place.S[v] = x, y, s
		finish[v] = s + t.Dur
		done[v] = true
	}
	return place, place.Makespan(in), true
}

// sortByKey sorts idx ascending by a 3-part lexicographic key. Every
// key in this package ends in a distinct component, so the order is
// total and the sort deterministic.
func sortByKey(idx []int, key func(v int) (int, int, int)) {
	sort.Slice(idx, func(a, b int) bool {
		a1, a2, a3 := key(idx[a])
		b1, b2, b3 := key(idx[b])
		if a1 != b1 {
			return a1 < b1
		}
		if a2 != b2 {
			return a2 < b2
		}
		return a3 < b3
	})
}

// occGrid is a W×H×T occupancy bitmap. When W ≤ 64 each (cycle, row) is
// a single uint64 word and region queries use run-of-free-bits masks;
// wider chips fall back to a boolean grid.
type occGrid struct {
	W, H, T int
	words   [][]uint64 // [cycle][row], W ≤ 64 fast path
	cells   [][]bool   // [cycle][row*W+x], fallback
}

func newOccGrid(W, H, T int) *occGrid {
	g := &occGrid{W: W, H: H, T: T}
	if W <= 64 {
		g.words = make([][]uint64, T)
		for t := range g.words {
			g.words[t] = make([]uint64, H)
		}
	} else {
		g.cells = make([][]bool, T)
		for t := range g.cells {
			g.cells[t] = make([]bool, H*W)
		}
	}
	return g
}

// runMask returns a bitmask of the x positions at which w consecutive
// free bits start within the free-mask, restricted to x ≤ W−w.
func runMask(free uint64, w, W int) uint64 {
	m := free
	for i := 1; i < w; i++ {
		m &= free >> uint(i)
	}
	if W-w+1 < 64 {
		m &= (1 << uint(W-w+1)) - 1
	}
	return m
}

// findSlot returns the earliest-start, bottom-left free position for a
// w×h×dur box with start ≥ est.
func (g *occGrid) findSlot(w, h, dur, est int) (x, y, s int, ok bool) {
	for s = est; s+dur <= g.T; s++ {
		for y = 0; y+h <= g.H; y++ {
			if g.words != nil {
				m := ^uint64(0)
				for t := s; t < s+dur && m != 0; t++ {
					for r := y; r < y+h && m != 0; r++ {
						m &= runMask(^g.words[t][r], w, g.W)
					}
				}
				if m != 0 {
					return bits.TrailingZeros64(m), y, s, true
				}
			} else {
				for x = 0; x+w <= g.W; x++ {
					if g.regionFree(x, y, s, w, h, dur) {
						return x, y, s, true
					}
				}
			}
		}
	}
	return 0, 0, 0, false
}

func (g *occGrid) regionFree(x, y, s, w, h, dur int) bool {
	for t := s; t < s+dur; t++ {
		for r := y; r < y+h; r++ {
			for c := x; c < x+w; c++ {
				if g.cells[t][r*g.W+c] {
					return false
				}
			}
		}
	}
	return true
}

func (g *occGrid) fill(x, y, s, w, h, dur int) {
	if g.words != nil {
		mask := (uint64(1)<<uint(w) - 1) << uint(x)
		if w == 64 {
			mask = ^uint64(0)
		}
		for t := s; t < s+dur; t++ {
			for r := y; r < y+h; r++ {
				g.words[t][r] |= mask
			}
		}
		return
	}
	for t := s; t < s+dur; t++ {
		for r := y; r < y+h; r++ {
			for c := x; c < x+w; c++ {
				g.cells[t][r*g.W+c] = true
			}
		}
	}
}
