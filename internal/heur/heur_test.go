package heur

import (
	"math/rand"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func mustOrder(t *testing.T, in *model.Instance) *model.Order {
	t.Helper()
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestPlacementsAlwaysValid: whatever the heuristic returns must verify
// geometrically and against the precedence order.
func TestPlacementsAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 1500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(6), 4, 4, 0.3)
		c := model.Container{W: 3 + rng.Intn(4), H: 3 + rng.Intn(4), T: 3 + rng.Intn(6)}
		o := mustOrder(t, in)
		p, ok := Place(in, c, o)
		if !ok {
			continue
		}
		if err := p.Verify(in, c, o); err != nil {
			t.Fatalf("seed %d: heuristic placement invalid: %v", seed, err)
		}
	}
}

func TestMinMakespanProperties(t *testing.T) {
	for seed := int64(0); seed < 800; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(5), 3, 4, 0.4)
		W, H := 4, 4
		o := mustOrder(t, in)
		p, mk, ok := MinMakespan(in, W, H, o)
		if !ok {
			t.Fatalf("seed %d: MinMakespan failed although tasks fit", seed)
		}
		if mk < o.CriticalPath() {
			t.Fatalf("seed %d: makespan %d below critical path %d", seed, mk, o.CriticalPath())
		}
		if mk > in.TotalDuration() {
			t.Fatalf("seed %d: makespan %d above serialization %d", seed, mk, in.TotalDuration())
		}
		if err := p.Verify(in, model.Container{W: W, H: H, T: mk}, o); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.Makespan(in) != mk {
			t.Fatalf("seed %d: reported makespan %d differs from placement %d", seed, mk, p.Makespan(in))
		}
	}
}

func TestMinMakespanSpatialMisfit(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{{W: 9, H: 1, Dur: 1}}}
	if _, _, ok := MinMakespan(in, 8, 8, mustOrder(t, in)); ok {
		t.Fatal("oversized task placed")
	}
}

func TestPlaceRespectsHorizon(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	o := mustOrder(t, in)
	if _, ok := Place(in, model.Container{W: 2, H: 2, T: 3}, o); ok {
		t.Fatal("chain of length 4 placed in horizon 3")
	}
	p, ok := Place(in, model.Container{W: 2, H: 2, T: 4}, o)
	if !ok {
		t.Fatal("chain of length 4 not placed in horizon 4")
	}
	if p.S[1] < 2 {
		t.Fatal("successor started before predecessor finished")
	}
}

func TestHeuristicFindsDEOptimum(t *testing.T) {
	de := bench.DE()
	o := mustOrder(t, de)
	// The greedy placer with tail priority finds the paper's optimal
	// T=6 schedule on the 32×32 chip.
	if _, ok := Place(de, model.Container{W: 32, H: 32, T: 6}, o); !ok {
		t.Fatal("heuristic misses the DE optimum at 32x32x6")
	}
	_, mk, ok := MinMakespan(de, 64, 64, o)
	if !ok || mk != 6 {
		t.Fatalf("MinMakespan(64x64) = %d, want 6", mk)
	}
}

// TestWideChipFallback exercises the W > 64 boolean-grid code path.
func TestWideChipFallback(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{
			{W: 70, H: 3, Dur: 2},
			{W: 70, H: 3, Dur: 2},
			{W: 10, H: 2, Dur: 1},
		},
		Prec: []model.Arc{{From: 0, To: 2}},
	}
	o := mustOrder(t, in)
	c := model.Container{W: 80, H: 6, T: 4}
	p, ok := Place(in, c, o)
	if !ok {
		t.Fatal("wide-chip placement failed")
	}
	if err := p.Verify(in, c, o); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathMatchesFallback: the bitmask path and the boolean-grid
// path must produce placements of the same quality class (both succeed
// or both fail) on mirrored instances.
func TestFastPathMatchesFallback(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(4), 4, 3, 0.3)
		o := mustOrder(t, in)
		cNarrow := model.Container{W: 5, H: 5, T: 5}
		// The same instance on a ≥65-wide chip cannot be harder.
		cWide := model.Container{W: 65, H: 5, T: 5}
		_, okNarrow := Place(in, cNarrow, o)
		_, okWide := Place(in, cWide, o)
		if okNarrow && !okWide {
			t.Fatalf("seed %d: wider chip failed where narrow succeeded", seed)
		}
	}
}

func TestRunMask(t *testing.T) {
	// free = bits 0..7 set except bit 3: runs are [0,3) and [4,8).
	free := uint64(0b11110111)
	if m := runMask(free, 3, 8); m&(1<<0) == 0 || m&(1<<1) != 0 || m&(1<<4) == 0 || m&(1<<5) == 0 {
		t.Fatalf("runMask(3) = %b", m)
	}
	// Width-respecting: w=4 in W=8 allows starts 0..4 only.
	if m := runMask(^uint64(0), 4, 8); m != 0b11111 {
		t.Fatalf("runMask(full, 4, 8) = %b", m)
	}
	// Full-width w=64.
	if m := runMask(^uint64(0), 64, 64); m != 1 {
		t.Fatalf("runMask(full, 64, 64) = %b", m)
	}
}

func TestOccGridFill(t *testing.T) {
	g := newOccGrid(8, 4, 3)
	g.fill(2, 1, 0, 3, 2, 2)
	// The filled region must be rejected, a disjoint one accepted.
	if _, _, _, ok := g.findSlot(3, 2, 2, 0); !ok {
		t.Fatal("no slot found on a mostly empty grid")
	}
	x, y, s, ok := g.findSlot(8, 4, 1, 0)
	if !ok {
		t.Fatal("full-footprint slot not found")
	}
	if s != 2 || x != 0 || y != 0 {
		t.Fatalf("full-footprint slot at (%d,%d,%d), want (0,0,2)", x, y, s)
	}
}
