package heur

// Occupancy is the exported face of the list scheduler's occupancy
// grid, for callers outside the heuristic that need the same
// earliest-start bottom-left slot queries — the online placement layer
// seeds its free-space management with it. Coordinates are relative to
// the grid's own origin: time 0 is the first tracked cycle.
type Occupancy struct {
	g *occGrid
}

// NewOccupancy returns an empty W×H×T space-time occupancy grid.
func NewOccupancy(w, h, t int) *Occupancy {
	return &Occupancy{g: newOccGrid(w, h, t)}
}

// Fill marks the w×h×dur box at (x, y, s) occupied.
func (o *Occupancy) Fill(x, y, s, w, h, dur int) { o.g.fill(x, y, s, w, h, dur) }

// FindSlot returns the earliest-start, bottom-left position at which a
// w×h×dur box fits entirely in free cells with start ≥ est, using the
// same run-of-free-bits fast path as the greedy placer. ok is false
// when no slot exists within the grid's horizon.
func (o *Occupancy) FindSlot(w, h, dur, est int) (x, y, s int, ok bool) {
	return o.g.findSlot(w, h, dur, est)
}

// Horizon returns the grid's time extent T.
func (o *Occupancy) Horizon() int { return o.g.T }
