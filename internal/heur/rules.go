package heur

import "fpga3d/internal/model"

// Rule identifies one task-priority rule of the list scheduler. The
// rules are shared by the greedy placer (which tries every rule and
// keeps the best schedule, see MinMakespan) and the annealing placer
// (which uses each rule's ordering as a restart seed, see
// AnnealMinMakespan).
//
// The set and its order are part of the determinism contract: greedy
// results are reproducible byte-for-byte across runs, so rules must
// not be reordered, removed, or silently renumbered. New rules may be
// appended, which changes greedy answers only when the new rule
// strictly improves on all existing ones.
type Rule int

const (
	// RuleTail orders by longest remaining precedence chain first
	// (critical-path pressure), footprint area as tiebreak.
	RuleTail Rule = iota
	// RuleArea orders by biggest spatial footprint first, remaining
	// chain length as tiebreak.
	RuleArea
	// RuleVolume orders by biggest w×h×dur volume first, remaining
	// chain length as tiebreak.
	RuleVolume
	// RuleDuration orders by longest execution time first, footprint
	// area as tiebreak.
	RuleDuration
)

// ruleNames is indexed by Rule; its length pins the size of the set.
var ruleNames = [...]string{
	RuleTail:     "tail",
	RuleArea:     "area",
	RuleVolume:   "volume",
	RuleDuration: "duration",
}

// Rules returns every priority rule in its fixed, documented trial
// order. The greedy placer tries them in exactly this order; callers
// must not rely on the returned slice being private (it is a fresh
// copy).
func Rules() []Rule {
	rs := make([]Rule, len(ruleNames))
	for i := range rs {
		rs[i] = Rule(i)
	}
	return rs
}

// String returns the rule's stable lowercase name ("tail", "area",
// "volume", "duration").
func (r Rule) String() string {
	if r < 0 || int(r) >= len(ruleNames) {
		return "unknown"
	}
	return ruleNames[r]
}

// key returns the rule's ascending 3-part sort key for task v: the
// ready task with the lexicographically smallest key is scheduled
// next. The final component is always the task index, making every
// rule a total order (deterministic even when all tasks are
// identical).
func (r Rule) key(in *model.Instance, o *model.Order, v int) (int, int, int) {
	t := in.Tasks[v]
	switch r {
	case RuleTail:
		return -o.Tail(v) - t.Dur, -t.W * t.H, v
	case RuleArea:
		return -t.W * t.H, -o.Tail(v), v
	case RuleVolume:
		return -t.Volume(), -o.Tail(v), v
	default: // RuleDuration
		return -t.Dur, -t.W * t.H, v
	}
}
