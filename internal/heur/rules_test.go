package heur

import (
	"testing"

	"fpga3d/internal/model"
)

// TestRuleOrderPinned pins the priority-rule set: its size, its trial
// order, and its names. The greedy placer's answers depend on this
// order (ties between rules are broken by whichever ran first), so a
// reorder silently changes reproducible results — this test makes
// that a loud failure instead.
func TestRuleOrderPinned(t *testing.T) {
	want := []Rule{RuleTail, RuleArea, RuleVolume, RuleDuration}
	got := Rules()
	if len(got) != len(want) {
		t.Fatalf("Rules() has %d entries, want %d", len(got), len(want))
	}
	names := []string{"tail", "area", "volume", "duration"}
	for i, r := range got {
		if r != want[i] {
			t.Errorf("Rules()[%d] = %v, want %v", i, r, want[i])
		}
		if r.String() != names[i] {
			t.Errorf("Rules()[%d].String() = %q, want %q", i, r.String(), names[i])
		}
	}
	if Rule(-1).String() != "unknown" || Rule(len(got)).String() != "unknown" {
		t.Errorf("out-of-range rules must stringify as unknown")
	}
}

// TestRulesReturnsCopy: mutating the returned slice must not corrupt
// later calls.
func TestRulesReturnsCopy(t *testing.T) {
	a := Rules()
	a[0] = Rule(99)
	if b := Rules(); b[0] != RuleTail {
		t.Fatalf("Rules() shares state across calls: got %v", b[0])
	}
}

// TestRuleKeysMatchGreedy checks each exported rule drives the list
// scheduler to a valid schedule on a small precedence-bearing
// instance, and that bestPlacement equals the minimum over rules —
// i.e. the exported table is exactly the set the greedy placer tries.
func TestRuleKeysMatchGreedy(t *testing.T) {
	in := &model.Instance{
		Name: "rules-greedy",
		Tasks: []model.Task{
			{Name: "a", W: 2, H: 2, Dur: 3},
			{Name: "b", W: 3, H: 1, Dur: 2},
			{Name: "c", W: 1, H: 3, Dur: 4},
			{Name: "d", W: 2, H: 1, Dur: 1},
		},
		Prec: []model.Arc{{From: 0, To: 2}, {From: 1, To: 3}},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	W, H := 4, 4
	horizon := in.TotalDuration()
	bestOver := horizon + 1
	for _, r := range Rules() {
		p, mk, ok := listSchedule(in, W, H, horizon, o, r)
		if !ok {
			t.Fatalf("rule %v: schedule failed", r)
		}
		if err := p.Verify(in, model.Container{W: W, H: H, T: horizon}, o); err != nil {
			t.Fatalf("rule %v: invalid schedule: %v", r, err)
		}
		if mk < bestOver {
			bestOver = mk
		}
	}
	_, mk, ok := MinMakespan(in, W, H, o)
	if !ok || mk != bestOver {
		t.Fatalf("MinMakespan = %d (ok=%v), want best-over-rules %d", mk, ok, bestOver)
	}
}
