// Package intgraph implements the structural graph algorithms behind
// packing classes: chordality testing, interval-graph recognition,
// exact maximum-weight cliques and stable sets, and — central to the
// paper's precedence extension — transitive orientations of
// comparability graphs that extend a given partial order, computed by
// closing the path (D1) and transitivity (D2) implication rules.
package intgraph

import "fpga3d/internal/graph"

// MCSOrder returns a maximum-cardinality-search order of g: vertices are
// visited one at a time, always picking a vertex with the largest number
// of already-visited neighbors.
func MCSOrder(g *graph.Undirected) []int {
	n := g.N()
	weight := make([]int, n)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestW := -1, -1
		for v := 0; v < n; v++ {
			if !visited[v] && weight[v] > bestW {
				best, bestW = v, weight[v]
			}
		}
		visited[best] = true
		order = append(order, best)
		g.Neighbors(best).ForEach(func(u int) {
			if !visited[u] {
				weight[u]++
			}
		})
	}
	return order
}

// IsChordal reports whether g is chordal (every cycle of length ≥ 4 has a
// chord), using the Tarjan–Yannakakis test: a graph is chordal iff the
// reverse of a maximum-cardinality-search order is a perfect elimination
// order.
func IsChordal(g *graph.Undirected) bool {
	n := g.N()
	mcs := MCSOrder(g)
	// Elimination order = reverse of MCS order.
	pos := make([]int, n) // position in elimination order
	for i, v := range mcs {
		pos[v] = n - 1 - i
	}
	later := graph.NewSet(n)
	for v := 0; v < n; v++ {
		// later = neighbors of v eliminated after v.
		later.Clear()
		p, pPos := -1, n
		g.Neighbors(v).ForEach(func(u int) {
			if pos[u] > pos[v] {
				later.Add(u)
				if pos[u] < pPos {
					p, pPos = u, pos[u]
				}
			}
		})
		if p < 0 {
			continue
		}
		later.Remove(p)
		if !later.SubsetOf(g.Neighbors(p)) {
			return false
		}
	}
	return true
}

// FindChordlessC4 searches g for an induced chordless 4-cycle
// a–b–c–d–a (edges ab, bc, cd, da present; chords ac, bd absent).
// It returns the four vertices in cycle order and true, or false if none
// exists. Used by tests to cross-check the C4 propagation rule.
func FindChordlessC4(g *graph.Undirected) ([4]int, bool) {
	n := g.N()
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			if g.HasEdge(a, c) {
				continue
			}
			// common neighbors of a and c
			common := g.Neighbors(a).Clone()
			common.IntersectWith(g.Neighbors(c))
			vs := common.Slice()
			for i := 0; i < len(vs); i++ {
				for j := i + 1; j < len(vs); j++ {
					if !g.HasEdge(vs[i], vs[j]) {
						return [4]int{a, vs[i], c, vs[j]}, true
					}
				}
			}
		}
	}
	return [4]int{}, false
}
