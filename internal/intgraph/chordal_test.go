package intgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpga3d/internal/graph"
)

func cycle(n int) *graph.Undirected {
	g := graph.NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func complete(n int) *graph.Undirected {
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func path(n int) *graph.Undirected {
	g := graph.NewUndirected(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// intervalGraph builds the intersection graph of the given closed-open
// intervals [s, s+l).
func intervalGraph(starts, lengths []int) *graph.Undirected {
	n := len(starts)
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if starts[u] < starts[v]+lengths[v] && starts[v] < starts[u]+lengths[u] {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestIsChordalKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Undirected
		want bool
	}{
		{"empty", graph.NewUndirected(5), true},
		{"single", graph.NewUndirected(1), true},
		{"path5", path(5), true},
		{"K5", complete(5), true},
		{"triangle", cycle(3), true},
		{"C4", cycle(4), false},
		{"C5", cycle(5), false},
		{"C6", cycle(6), false},
		{"C7", cycle(7), false},
	}
	for _, tc := range cases {
		if got := IsChordal(tc.g); got != tc.want {
			t.Errorf("IsChordal(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestChordedCycleIsChordal(t *testing.T) {
	// C5 plus chords from vertex 0 to everything: a fan — chordal.
	g := cycle(5)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if !IsChordal(g) {
		t.Fatal("fan over C5 should be chordal")
	}
	// C6 with one long chord still contains a C4 and a C4': not chordal.
	g6 := cycle(6)
	g6.AddEdge(0, 3)
	if IsChordal(g6) {
		t.Fatal("C6 + one chord is not chordal")
	}
}

// bruteForceChordal checks chordality by enumerating vertex subsets and
// testing whether any induces a cycle without chords (subsets of size ≥ 4
// inducing a connected 2-regular graph).
func bruteForceChordal(g *graph.Undirected) bool {
	n := g.N()
	for mask := 0; mask < 1<<n; mask++ {
		var vs []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) < 4 {
			continue
		}
		// Induced subgraph is a chordless cycle iff every vertex has
		// induced degree exactly 2 and the subgraph is connected.
		deg := map[int]int{}
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if g.HasEdge(vs[i], vs[j]) {
					deg[vs[i]]++
					deg[vs[j]]++
				}
			}
		}
		ok := true
		for _, v := range vs {
			if deg[v] != 2 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// connectivity
		seen := map[int]bool{vs[0]: true}
		stack := []int{vs[0]}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range vs {
				if !seen[y] && g.HasEdge(x, y) {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		if len(seen) == len(vs) {
			return false // found an induced chordless cycle
		}
	}
	return true
}

func TestIsChordalQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5) // 4..8
		g := graph.NewUndirected(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		return IsChordal(g) == bruteForceChordal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalGraphsAreChordalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		starts := make([]int, n)
		lengths := make([]int, n)
		for i := range starts {
			starts[i] = rng.Intn(20)
			lengths[i] = 1 + rng.Intn(8)
		}
		g := intervalGraph(starts, lengths)
		return IsChordal(g) && IsInterval(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsIntervalKnownGraphs(t *testing.T) {
	if IsInterval(cycle(4)) {
		t.Fatal("C4 is not an interval graph")
	}
	if !IsInterval(path(6)) {
		t.Fatal("P6 is an interval graph")
	}
	if !IsInterval(complete(6)) {
		t.Fatal("K6 is an interval graph")
	}
	// The claw K1,3 is interval; the net and the 3-sun are not needed
	// here, but the asteroidal-triple witness T2 (subdivided claw) is a
	// chordal non-interval graph: center 0, legs 1-4, 2-5, 3-6.
	at := graph.NewUndirected(7)
	at.AddEdge(0, 1)
	at.AddEdge(0, 2)
	at.AddEdge(0, 3)
	at.AddEdge(1, 4)
	at.AddEdge(2, 5)
	at.AddEdge(3, 6)
	if !IsChordal(at) {
		t.Fatal("subdivided claw is chordal (a tree)")
	}
	if IsInterval(at) {
		t.Fatal("subdivided claw is not an interval graph")
	}
}

func TestFindChordlessC4(t *testing.T) {
	g := cycle(4)
	c, ok := FindChordlessC4(g)
	if !ok {
		t.Fatal("C4 not found in C4")
	}
	// verify the witness: consecutive edges, diagonals absent
	for i := 0; i < 4; i++ {
		if !g.HasEdge(c[i], c[(i+1)%4]) {
			t.Fatalf("witness %v not a cycle", c)
		}
	}
	if g.HasEdge(c[0], c[2]) || g.HasEdge(c[1], c[3]) {
		t.Fatalf("witness %v has chords", c)
	}

	if _, ok := FindChordlessC4(complete(5)); ok {
		t.Fatal("found C4 in K5")
	}
	if _, ok := FindChordlessC4(cycle(5)); ok {
		t.Fatal("found chordless C4 in C5")
	}
}

func TestMCSOrderIsPermutation(t *testing.T) {
	g := cycle(6)
	order := MCSOrder(g)
	seen := make([]bool, 6)
	for _, v := range order {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("MCS order %v is not a permutation", order)
		}
		seen[v] = true
	}
}
