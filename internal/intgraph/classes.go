package intgraph

import "fpga3d/internal/graph"

// Edge is an undirected edge {U, V} with U < V.
type Edge struct{ U, V int }

// ImplicationClasses partitions the edges of g into the path implication
// classes of Section 4.3 of the paper (Gallai's color classes): two
// edges belong to the same class iff a sequence of path implications
// (rule D1: edges {a,b}, {a,c} with {b,c} a non-edge force each other's
// orientation relative to a) connects them. Orienting any edge of a
// class forces the orientation of the entire class.
//
// Classes are returned with edges sorted by (U, V) and the classes
// sorted by their first edge.
func ImplicationClasses(g *graph.Undirected) [][]Edge {
	n := g.N()
	idx := func(u, v int) int {
		if u > v {
			u, v = v, u
		}
		return u*n + v
	}
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	g.Edges(func(u, v int) {
		parent[idx(u, v)] = idx(u, v)
	})
	// D1 at every vertex a: edges {a,b}, {a,c} with {b,c} a non-edge are
	// in the same class.
	for a := 0; a < n; a++ {
		nb := g.Neighbors(a).Slice()
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if !g.HasEdge(nb[i], nb[j]) {
					union(idx(a, nb[i]), idx(a, nb[j]))
				}
			}
		}
	}
	groups := map[int][]Edge{}
	g.Edges(func(u, v int) {
		r := find(idx(u, v))
		groups[r] = append(groups[r], Edge{U: u, V: v})
	})
	out := make([][]Edge, 0, len(groups))
	for _, es := range groups {
		sortEdges(es)
		out = append(out, es)
	}
	// Sort classes by first edge for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && edgeLess(out[j][0], out[j-1][0]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && edgeLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func edgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}
