package intgraph

import (
	"math/rand"
	"testing"

	"fpga3d/internal/graph"
)

func TestImplicationClassesP4(t *testing.T) {
	// On the path 0-1-2-3 every edge forces the next (the Figure 5
	// situation): a single class.
	cs := ImplicationClasses(path(4))
	if len(cs) != 1 || len(cs[0]) != 3 {
		t.Fatalf("P4 classes = %v", cs)
	}
}

func TestImplicationClassesC4(t *testing.T) {
	// C4 = K2,2 is uniquely partially orderable up to reversal: every
	// edge forces every other through the missing diagonals — a single
	// class of all four edges (and hence exactly two transitive
	// orientations).
	cs := ImplicationClasses(cycle(4))
	if len(cs) != 1 || len(cs[0]) != 4 {
		t.Fatalf("C4 classes = %v", cs)
	}
}

func TestImplicationClassesTriangle(t *testing.T) {
	// In a triangle no path implication fires (every third pair is an
	// edge): three singleton classes.
	cs := ImplicationClasses(cycle(3))
	if len(cs) != 3 {
		t.Fatalf("K3 classes = %v", cs)
	}
}

func TestImplicationClassesC5(t *testing.T) {
	// The odd hole C5 collapses into one class — the algebraic reason it
	// has no transitive orientation (the class forces a circular chain).
	cs := ImplicationClasses(cycle(5))
	if len(cs) != 1 || len(cs[0]) != 5 {
		t.Fatalf("C5 classes = %v", cs)
	}
}

func TestImplicationClassesStar(t *testing.T) {
	// A star K1,4: all edges share the center with pairwise non-adjacent
	// leaves — one class.
	g := graph.NewUndirected(5)
	for leaf := 1; leaf < 5; leaf++ {
		g.AddEdge(0, leaf)
	}
	cs := ImplicationClasses(g)
	if len(cs) != 1 || len(cs[0]) != 4 {
		t.Fatalf("star classes = %v", cs)
	}
}

func TestImplicationClassesPartition(t *testing.T) {
	// The classes form a partition of the edge set, on random graphs.
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 3+rng.Intn(6), 0.5)
		cs := ImplicationClasses(g)
		seen := map[Edge]bool{}
		total := 0
		for _, c := range cs {
			for _, e := range c {
				if seen[e] {
					t.Fatalf("seed %d: edge %v in two classes", seed, e)
				}
				seen[e] = true
				if !g.HasEdge(e.U, e.V) {
					t.Fatalf("seed %d: non-edge %v in a class", seed, e)
				}
				total++
			}
		}
		if total != g.M() {
			t.Fatalf("seed %d: %d edges classified of %d", seed, total, g.M())
		}
	}
}

// TestImplicationClassesRespectOrientation: in a comparability graph,
// orienting one edge of a class and closing under D1/D2 must orient at
// least the whole class (Gallai). Checked via ExtendTransitive with a
// single seed.
func TestImplicationClassesRespectOrientation(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := randomPosetGraph(rng, 3+rng.Intn(5), 0.4)
		if g.M() == 0 {
			continue
		}
		cs := ImplicationClasses(g)
		// Seed the first edge of the largest class.
		best := 0
		for i := range cs {
			if len(cs[i]) > len(cs[best]) {
				best = i
			}
		}
		e := cs[best][0]
		seeds := graph.NewDigraph(g.N())
		seeds.AddArc(e.U, e.V)
		o, err := ExtendTransitive(g, seeds)
		if err != nil {
			// The seed direction may be unextendable; the reverse must
			// work since g is a comparability graph.
			seeds2 := graph.NewDigraph(g.N())
			seeds2.AddArc(e.V, e.U)
			if o2, err2 := ExtendTransitive(g, seeds2); err2 != nil || o2 == nil {
				t.Fatalf("seed %d: neither direction extendable on a comparability graph", seed)
			}
			continue
		}
		// Every edge of the class must be oriented (trivially true — the
		// orientation is total) and the class structure is consistent:
		// re-running with the forced direction of another class edge
		// must stay extendable.
		e2 := cs[best][len(cs[best])-1]
		dir := graph.NewDigraph(g.N())
		dir.AddArc(e.U, e.V)
		if o.HasArc(e2.U, e2.V) {
			dir.AddArc(e2.U, e2.V)
		} else {
			dir.AddArc(e2.V, e2.U)
		}
		if _, err := ExtendTransitive(g, dir); err != nil {
			t.Fatalf("seed %d: class-consistent seeds rejected", seed)
		}
	}
}
