package intgraph

import (
	"sort"

	"fpga3d/internal/graph"
)

// MaxWeightClique returns a maximum-weight clique of g under the given
// non-negative vertex weights, together with its total weight.
// Exact branch-and-bound; intended for the small graphs (n ≲ 40) that
// arise from module sets.
func MaxWeightClique(g *graph.Undirected, w []int) (graph.Set, int) {
	s := newCliqueSearch(g, w)
	s.target = -1 // find the true maximum
	cand := graph.NewSet(g.N())
	for v := 0; v < g.N(); v++ {
		cand.Add(v)
	}
	s.expand(graph.NewSet(g.N()), cand, 0)
	return s.best, s.bestW
}

// MaxWeightStableSet returns a maximum-weight stable (independent) set of
// g, computed as a maximum-weight clique of the complement.
func MaxWeightStableSet(g *graph.Undirected, w []int) (graph.Set, int) {
	return MaxWeightClique(g.Complement(), w)
}

// CliqueHeavierThan reports whether g contains a clique that includes all
// vertices of must (which callers guarantee to be a clique) and whose
// total weight exceeds cap. The search stops as soon as one is found.
func CliqueHeavierThan(g *graph.Undirected, w []int, cap int, must graph.Set) bool {
	base := 0
	cand := graph.NewSet(g.N())
	for v := 0; v < g.N(); v++ {
		cand.Add(v)
	}
	must.ForEach(func(v int) {
		base += w[v]
		cand.IntersectWith(g.Neighbors(v))
	})
	if base > cap {
		return true
	}
	s := newCliqueSearch(g, w)
	s.target = cap // succeed on weight > cap
	s.bestW = cap  // prune anything not exceeding cap
	s.expand(must.Clone(), cand, base)
	return s.found
}

type cliqueSearch struct {
	g      *graph.Undirected
	w      []int
	order  []int // vertices sorted by weight descending
	best   graph.Set
	bestW  int
	target int // if ≥ 0, stop once a clique with weight > target is found
	found  bool
}

func newCliqueSearch(g *graph.Undirected, w []int) *cliqueSearch {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return w[order[a]] > w[order[b]] })
	return &cliqueSearch{g: g, w: w, order: order, best: graph.NewSet(g.N()), bestW: 0}
}

func (s *cliqueSearch) expand(cur, cand graph.Set, curW int) {
	if s.found {
		return
	}
	if curW > s.bestW {
		s.bestW = curW
		s.best = cur.Clone()
		if s.target >= 0 && curW > s.target {
			s.found = true
			return
		}
	}
	// Bound: current weight plus all remaining candidates.
	rem := 0
	cand.ForEach(func(v int) { rem += s.w[v] })
	if curW+rem <= s.bestW {
		return
	}
	for _, v := range s.order {
		if s.found {
			return
		}
		if !cand.Has(v) {
			continue
		}
		cand.Remove(v)
		// Re-check bound after removal: v might have carried the slack.
		newCand := cand.Clone()
		newCand.IntersectWith(s.g.Neighbors(v))
		cur.Add(v)
		s.expand(cur, newCand, curW+s.w[v])
		cur.Remove(v)
	}
}
