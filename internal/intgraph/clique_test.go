package intgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpga3d/internal/graph"
)

// bruteMaxWeightClique enumerates all subsets.
func bruteMaxWeightClique(g *graph.Undirected, w []int) int {
	n := g.N()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		sum := 0
		ok := true
		for u := 0; u < n && ok; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			sum += w[u]
			for v := u + 1; v < n; v++ {
				if mask&(1<<v) != 0 && !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
		}
		if ok && sum > best {
			best = sum
		}
	}
	return best
}

func randGraph(rng *rand.Rand, n int, p float64) *graph.Undirected {
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestMaxWeightCliqueQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := randGraph(rng, n, 0.5)
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(10)
		}
		set, got := MaxWeightClique(g, w)
		if got != bruteMaxWeightClique(g, w) {
			return false
		}
		// The returned set must itself be a clique of the right weight.
		if !g.IsClique(set) {
			return false
		}
		sum := 0
		set.ForEach(func(v int) { sum += w[v] })
		return sum == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightStableSetQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		g := randGraph(rng, n, 0.5)
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(10)
		}
		set, got := MaxWeightStableSet(g, w)
		if !g.IsStableSet(set) {
			return false
		}
		return got == bruteMaxWeightClique(g.Complement(), w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueHeavierThan(t *testing.T) {
	// Triangle 0-1-2 with weights 5, 6, 7 plus isolated heavy vertex 3.
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	w := []int{5, 6, 7, 100}

	must := graph.NewSet(4)
	must.Add(0)
	must.Add(1)
	if !CliqueHeavierThan(g, w, 17, must) { // 5+6+7 = 18 > 17
		t.Fatal("triangle of weight 18 not found above 17")
	}
	if CliqueHeavierThan(g, w, 18, must) { // nothing beats 18 through {0,1}
		t.Fatal("claimed clique heavier than 18 through {0,1}")
	}
	// Vertex 3 is isolated: through it only itself.
	must3 := graph.NewSet(4)
	must3.Add(3)
	if !CliqueHeavierThan(g, w, 99, must3) {
		t.Fatal("singleton clique of weight 100 not found above 99")
	}
	if CliqueHeavierThan(g, w, 100, must3) {
		t.Fatal("nothing heavier than 100 exists through vertex 3")
	}
}

func TestCliqueHeavierThanQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := randGraph(rng, n, 0.6)
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(8)
		}
		// Pick a random edge as the mandatory part (or a single vertex).
		must := graph.NewSet(n)
		u := rng.Intn(n)
		must.Add(u)
		cap := rng.Intn(30)

		// Reference: max clique weight through u.
		best := 0
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<u) == 0 {
				continue
			}
			sum, ok := 0, true
			for a := 0; a < n && ok; a++ {
				if mask&(1<<a) == 0 {
					continue
				}
				sum += w[a]
				for b := a + 1; b < n; b++ {
					if mask&(1<<b) != 0 && !g.HasEdge(a, b) {
						ok = false
						break
					}
				}
			}
			if ok && sum > best {
				best = sum
			}
		}
		return CliqueHeavierThan(g, w, cap, must) == (best > cap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
