package intgraph

import (
	"fmt"

	"fpga3d/internal/graph"
)

// IsInterval reports whether g is an interval graph, using the
// Gilmore–Hoffman characterization: g is an interval graph iff g is
// chordal and its complement is a comparability graph.
func IsInterval(g *graph.Undirected) bool {
	return IsChordal(g) && IsComparability(g.Complement())
}

// Realize computes start coordinates for intervals of the given lengths
// such that intervals u and v overlap whenever {u,v} is an edge of g...
// more precisely: whenever {u,v} is NOT an edge, the intervals are
// disjoint and ordered according to a transitive orientation of the
// complement that extends seeds (seeds may be nil). Coordinates are the
// longest-path positions over that orientation, so the maximum endpoint
// equals the maximum weight of a stable set of g.
//
// This is exactly the packing-class-to-packing construction of Theorem 1:
// pairs joined by a component edge are free to overlap; pairs joined by a
// comparability edge are laid out disjointly along the axis.
func Realize(g *graph.Undirected, lengths []int, seeds *graph.Digraph) ([]int, error) {
	if len(lengths) != g.N() {
		return nil, fmt.Errorf("intgraph: %d lengths for %d vertices", len(lengths), g.N())
	}
	comp := g.Complement()
	orient, err := ExtendTransitive(comp, seeds)
	if err != nil {
		return nil, err
	}
	pos, ok := orient.LongestPathFrom(lengths)
	if !ok {
		return nil, fmt.Errorf("intgraph: orientation is cyclic")
	}
	return pos, nil
}
