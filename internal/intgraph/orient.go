package intgraph

import (
	"errors"
	"fmt"

	"fpga3d/internal/graph"
)

// ErrNotExtendable is returned when no transitive orientation of the
// graph extends the given seed arcs — either because the graph is not a
// comparability graph at all, or because the seeds conflict with every
// transitive orientation (Figure 5 of the paper shows such a case).
var ErrNotExtendable = errors.New("intgraph: no transitive orientation extends the seed arcs")

// orientState tracks a partial orientation of the edges of a graph.
// dir[u][v] == 1 means the edge {u,v} is oriented u→v.
type orientState struct {
	g   *graph.Undirected
	dir [][]int8
	// queue of arcs whose implications still need processing
	queue [][2]int
}

func newOrientState(g *graph.Undirected) *orientState {
	n := g.N()
	dir := make([][]int8, n)
	for i := range dir {
		dir[i] = make([]int8, n)
	}
	return &orientState{g: g, dir: dir}
}

func (s *orientState) snapshot() [][]int8 {
	n := len(s.dir)
	cp := make([][]int8, n)
	for i := range cp {
		cp[i] = append([]int8(nil), s.dir[i]...)
	}
	return cp
}

func (s *orientState) restore(snap [][]int8) {
	for i := range snap {
		copy(s.dir[i], snap[i])
	}
	s.queue = s.queue[:0]
}

// orient fixes the edge {u,v} as u→v, returning an error on a direct
// orientation conflict. The arc is queued for implication processing.
func (s *orientState) orient(u, v int) error {
	if s.dir[v][u] == 1 {
		return fmt.Errorf("%w: edge {%d,%d} forced in both directions", ErrNotExtendable, u, v)
	}
	if s.dir[u][v] == 1 {
		return nil
	}
	if !s.g.HasEdge(u, v) {
		return fmt.Errorf("%w: transitivity forces orientation of non-edge {%d,%d}", ErrNotExtendable, u, v)
	}
	s.dir[u][v] = 1
	s.queue = append(s.queue, [2]int{u, v})
	return nil
}

// close processes the implication queue to a fixpoint, applying the
// paper's two rules:
//
//	D1 (path implication): edges {u,v}, {u,w} with {v,w} a non-edge must
//	    point the same way relative to u.
//	D2 (transitivity implication): u→v and v→w force u→w; if {u,w} is a
//	    non-edge this is a transitivity conflict.
func (s *orientState) close() error {
	n := s.g.N()
	for len(s.queue) > 0 {
		arc := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		u, v := arc[0], arc[1]

		// D1 around u: edges {u,w} with {v,w} a non-edge follow u→v.
		var err error
		s.g.Neighbors(u).ForEach(func(w int) {
			if err == nil && w != v && !s.g.HasEdge(v, w) {
				err = s.orient(u, w)
			}
		})
		if err != nil {
			return err
		}
		// D1 around v: edges {v,w} with {u,w} a non-edge follow u→v
		// (both must point towards v).
		s.g.Neighbors(v).ForEach(func(w int) {
			if err == nil && w != u && !s.g.HasEdge(u, w) {
				err = s.orient(w, v)
			}
		})
		if err != nil {
			return err
		}
		// D2: u→v plus v→w forces u→w; w→u plus u→v forces w→v.
		for w := 0; w < n; w++ {
			if s.dir[v][w] == 1 {
				if err := s.orient(u, w); err != nil {
					return err
				}
			}
			if s.dir[w][u] == 1 {
				if err := s.orient(w, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ExtendTransitive computes a transitive orientation of g that extends
// the seed arcs (each seed arc must be an edge of g). It returns
// ErrNotExtendable if none exists.
//
// Algorithm: seed orientations are closed under D1/D2. Then, while an
// unoriented edge remains, it is oriented tentatively and the closure is
// recomputed; by Theorem 2 of the paper, if the closure of the current
// partial order is conflict-free, at least one of the two orientations
// of any remaining edge closes without conflict, so a single retry per
// edge suffices — no backtracking across edges is needed.
func ExtendTransitive(g *graph.Undirected, seeds *graph.Digraph) (*graph.Digraph, error) {
	s := newOrientState(g)
	if seeds != nil {
		var err error
		for u := 0; u < seeds.N() && err == nil; u++ {
			seeds.Out(u).ForEach(func(v int) {
				if err == nil {
					err = s.orient(u, v)
				}
			})
		}
		if err != nil {
			return nil, err
		}
	}
	if err := s.close(); err != nil {
		return nil, err
	}

	n := g.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) || s.dir[u][v] == 1 || s.dir[v][u] == 1 {
				continue
			}
			snap := s.snapshot()
			err := s.orient(u, v)
			if err == nil {
				err = s.close()
			}
			if err != nil {
				s.restore(snap)
				if err := s.orient(v, u); err != nil {
					return nil, err
				}
				if err := s.close(); err != nil {
					return nil, err
				}
			}
		}
	}

	out := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if s.dir[u][v] == 1 {
				out.AddArc(u, v)
			}
		}
	}
	// Defensive verification: a successful run must produce a transitive
	// acyclic orientation; anything else is a bug, but we fail soft.
	if !out.IsTransitive() || !out.IsAcyclic() {
		return nil, fmt.Errorf("%w: internal closure produced a non-transitive orientation", ErrNotExtendable)
	}
	return out, nil
}

// TransitiveOrient computes any transitive orientation of g, or
// ErrNotExtendable if g is not a comparability graph.
func TransitiveOrient(g *graph.Undirected) (*graph.Digraph, error) {
	return ExtendTransitive(g, nil)
}

// IsComparability reports whether g admits a transitive orientation.
func IsComparability(g *graph.Undirected) bool {
	_, err := TransitiveOrient(g)
	return err == nil
}
