package intgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fpga3d/internal/graph"
)

func TestTransitiveOrientKnownGraphs(t *testing.T) {
	// Paths, complete graphs, even cycles and bipartite graphs are
	// comparability graphs; odd holes are not.
	for _, tc := range []struct {
		name string
		g    *graph.Undirected
		want bool
	}{
		{"P4", path(4), true},
		{"K4", complete(4), true},
		{"C4", cycle(4), true},
		{"C6", cycle(6), true},
		{"C5", cycle(5), false},
		{"C7", cycle(7), false},
		{"empty", graph.NewUndirected(4), true},
	} {
		if got := IsComparability(tc.g); got != tc.want {
			t.Errorf("IsComparability(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTransitiveOrientProducesValidOrientation(t *testing.T) {
	g := cycle(6)
	o, err := TransitiveOrient(g)
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsTransitive() || !o.IsAcyclic() {
		t.Fatal("orientation not a strict partial order")
	}
	// Every edge oriented exactly once, every non-edge untouched.
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			cnt := 0
			if o.HasArc(u, v) {
				cnt++
			}
			if o.HasArc(v, u) {
				cnt++
			}
			want := 0
			if g.HasEdge(u, v) {
				want = 1
			}
			if cnt != want {
				t.Fatalf("edge {%d,%d}: %d orientations, want %d", u, v, cnt, want)
			}
		}
	}
}

// TestExtendTransitiveFigure5 reproduces the obstruction of Figure 5 /
// Section 4.1: the path v1–v2–v3–v4 is a comparability graph, but the
// partial order {v1→v2, v4→v3} cannot be extended — the path implication
// class forces v1→v2 ⟹ v3→v2 ⟹ v3→v4, contradicting v4→v3.
func TestExtendTransitiveFigure5(t *testing.T) {
	g := path(4) // edges {0,1}, {1,2}, {2,3}
	seeds := graph.NewDigraph(4)
	seeds.AddArc(0, 1)
	seeds.AddArc(3, 2)
	if _, err := ExtendTransitive(g, seeds); !errors.Is(err, ErrNotExtendable) {
		t.Fatalf("expected ErrNotExtendable, got %v", err)
	}

	// A single seed is always extendable on a path.
	seeds1 := graph.NewDigraph(4)
	seeds1.AddArc(0, 1)
	o, err := ExtendTransitive(g, seeds1)
	if err != nil {
		t.Fatal(err)
	}
	if !o.HasArc(0, 1) {
		t.Fatal("orientation does not extend the seed")
	}
	// The forced implications of the path.
	if !o.HasArc(2, 1) || !o.HasArc(2, 3) {
		t.Fatalf("path implications not honored: arcs %v %v", o.HasArc(2, 1), o.HasArc(2, 3))
	}
}

func TestExtendTransitiveSeedOnNonEdge(t *testing.T) {
	g := path(3) // edges {0,1}, {1,2}; {0,2} is a non-edge
	seeds := graph.NewDigraph(3)
	seeds.AddArc(0, 2)
	if _, err := ExtendTransitive(g, seeds); !errors.Is(err, ErrNotExtendable) {
		t.Fatalf("seed on non-edge must fail, got %v", err)
	}
}

func TestExtendTransitiveConflictingSeeds(t *testing.T) {
	g := complete(3)
	seeds := graph.NewDigraph(3)
	seeds.AddArc(0, 1)
	seeds.AddArc(1, 2)
	seeds.AddArc(2, 0) // cycle in a triangle: transitivity conflict
	if _, err := ExtendTransitive(g, seeds); !errors.Is(err, ErrNotExtendable) {
		t.Fatalf("cyclic seeds must fail, got %v", err)
	}
}

// randomPosetGraph builds a comparability graph from a random DAG with
// forward arcs, returning the graph and the full transitive orientation.
func randomPosetGraph(rng *rand.Rand, n int, p float64) (*graph.Undirected, *graph.Digraph) {
	d := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				d.AddArc(u, v)
			}
		}
	}
	c := d.TransitiveClosure()
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		c.Out(u).ForEach(func(v int) { g.AddEdge(u, v) })
	}
	return g, c
}

func TestExtendTransitiveQuickOnPosets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g, full := randomPosetGraph(rng, n, 0.4)
		// Seed with a random sub-order of the known valid orientation:
		// extension must succeed and honor every seed.
		seeds := graph.NewDigraph(n)
		for u := 0; u < n; u++ {
			uu := u
			full.Out(uu).ForEach(func(v int) {
				if rng.Intn(2) == 0 {
					seeds.AddArc(uu, v)
				}
			})
		}
		o, err := ExtendTransitive(g, seeds)
		if err != nil {
			return false
		}
		if !o.IsTransitive() || !o.IsAcyclic() {
			return false
		}
		ok := true
		for u := 0; u < n && ok; u++ {
			seeds.Out(u).ForEach(func(v int) {
				if !o.HasArc(u, v) {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsComparabilityQuickAgainstBruteForce(t *testing.T) {
	// Brute force: try all orientations of the edges (≤ 2^10).
	brute := func(g *graph.Undirected) bool {
		type edge struct{ u, v int }
		var edges []edge
		g.Edges(func(u, v int) { edges = append(edges, edge{u, v}) })
		if len(edges) > 12 {
			return true // skip, too big (caller restricts)
		}
		for mask := 0; mask < 1<<len(edges); mask++ {
			d := graph.NewDigraph(g.N())
			for i, e := range edges {
				if mask&(1<<i) != 0 {
					d.AddArc(e.u, e.v)
				} else {
					d.AddArc(e.v, e.u)
				}
			}
			if d.IsTransitive() {
				return true
			}
		}
		return false
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5) // up to 6 vertices
		g := randGraph(rng, n, 0.45)
		if g.M() > 12 {
			return true
		}
		return IsComparability(g) == brute(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRealize(t *testing.T) {
	// Three mutually overlapping intervals plus one after them.
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	lengths := []int{3, 4, 5, 2}
	seeds := graph.NewDigraph(4)
	seeds.AddArc(0, 3) // 3 comes after 0

	pos, err := Realize(g, lengths, seeds)
	if err != nil {
		t.Fatal(err)
	}
	check := func(u, v int) bool { // intervals overlap?
		return pos[u] < pos[v]+lengths[v] && pos[v] < pos[u]+lengths[u]
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if !g.HasEdge(u, v) && check(u, v) {
				t.Fatalf("non-edge {%d,%d} realized overlapping (pos=%v)", u, v, pos)
			}
		}
	}
	if pos[3] < pos[0]+lengths[0] {
		t.Fatalf("seed 0→3 violated: pos=%v", pos)
	}
}

func TestRealizeQuickOnIntervalGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		starts := make([]int, n)
		lengths := make([]int, n)
		for i := range starts {
			starts[i] = rng.Intn(15)
			lengths[i] = 1 + rng.Intn(6)
		}
		g := intervalGraph(starts, lengths)
		pos, err := Realize(g, lengths, nil)
		if err != nil {
			return false
		}
		// Non-edges must be realized disjoint.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				overlap := pos[u] < pos[v]+lengths[v] && pos[v] < pos[u]+lengths[u]
				if !g.HasEdge(u, v) && overlap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRealizeLengthMismatch(t *testing.T) {
	if _, err := Realize(graph.NewUndirected(3), []int{1, 2}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
