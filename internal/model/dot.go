package model

import (
	"fmt"
	"io"
)

// WriteDOT renders the instance's dependency graph in Graphviz DOT
// format, in the style of the paper's Figure 2: one node per module,
// labeled with its name and geometry, one edge per precedence arc.
func WriteDOT(w io.Writer, in *Instance) error {
	var err error
	pr := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("digraph %q {\n", nonEmpty(in.Name, "instance"))
	pr("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for i, t := range in.Tasks {
		pr("  t%d [label=\"%s\\n%dx%dx%d\"];\n", i, nonEmpty(t.Name, fmt.Sprintf("task%d", i)), t.W, t.H, t.Dur)
	}
	for _, a := range in.Prec {
		pr("  t%d -> t%d;\n", a.From, a.To)
	}
	pr("}\n")
	return err
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
