package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// CanonicalHash returns a hex-encoded SHA-256 digest of a canonical
// encoding of the instance: the same module set with the same
// precedence structure hashes identically no matter in which order
// tasks or arcs were inserted (or serialized), while any change to a
// task dimension, duration, name, or precedence edge yields a
// different digest. The instance Name is deliberately excluded — it
// labels the problem but does not change it.
//
// The canonical form is built by Weisfeiler–Leman color refinement on
// the precedence digraph: each task starts from a color derived from
// its (name, w, h, dur) label and is iteratively re-colored with the
// sorted color multisets of its predecessors and successors until the
// partition stabilizes. The digest then covers the sorted multiset of
// final task colors and the sorted multiset of arc color pairs, both
// of which are independent of task numbering. Instances that are
// WL-equivalent but not isomorphic can in principle collide; such
// pairs are vanishingly rare in practice, and callers that cache
// placements by hash can (and should) verify a cached placement
// against the requesting instance before serving it.
func (in *Instance) CanonicalHash() string {
	colors := in.canonicalColors()
	h := sha256.New()
	h.Write([]byte("fpga3d-instance-v1\n"))

	// Task section: the multiset of (label, final color) pairs.
	taskLines := make([]string, len(in.Tasks))
	for i, t := range in.Tasks {
		taskLines[i] = fmt.Sprintf("task|%s|%x\n", taskLabel(t), colors[i])
	}
	sort.Strings(taskLines)
	h.Write([]byte("tasks\n"))
	for _, l := range taskLines {
		h.Write([]byte(l))
	}

	// Arc section: the multiset of (from-color, to-color) pairs.
	arcLines := make([]string, len(in.Prec))
	for i, a := range in.Prec {
		arcLines[i] = fmt.Sprintf("arc|%x|%x\n", colors[a.From], colors[a.To])
	}
	sort.Strings(arcLines)
	h.Write([]byte("prec\n"))
	for _, l := range arcLines {
		h.Write([]byte(l))
	}

	return hex.EncodeToString(h.Sum(nil))
}

// taskLabel is the order-free identity of a task: everything that
// defines it except its position in the task list.
func taskLabel(t Task) string {
	return fmt.Sprintf("%q|%d|%d|%d", t.Name, t.W, t.H, t.Dur)
}

// canonicalColors runs WL color refinement on the precedence digraph.
// Colors are full SHA-256 digests, so distinct refinement histories
// cannot merge short of a SHA-256 collision. Refinement stops when the
// number of color classes stops growing (at most n rounds).
func (in *Instance) canonicalColors() [][32]byte {
	n := len(in.Tasks)
	colors := make([][32]byte, n)
	for i, t := range in.Tasks {
		colors[i] = sha256.Sum256([]byte("label|" + taskLabel(t)))
	}
	if n == 0 || len(in.Prec) == 0 {
		return colors
	}

	preds := make([][]int, n)
	succs := make([][]int, n)
	for _, a := range in.Prec {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
			// Out-of-range arcs cannot be attributed to a task; fold
			// them into every color so the hash still changes. Validate
			// rejects such instances before they reach a solver.
			bad := sha256.Sum256([]byte(fmt.Sprintf("badarc|%d|%d", a.From, a.To)))
			for i := range colors {
				colors[i] = combine(colors[i], bad[:])
			}
			continue
		}
		succs[a.From] = append(succs[a.From], a.To)
		preds[a.To] = append(preds[a.To], a.From)
	}

	next := make([][32]byte, n)
	classes := countClasses(colors)
	for round := 0; round < n; round++ {
		for i := range colors {
			h := sha256.New()
			h.Write(colors[i][:])
			h.Write([]byte("|preds|"))
			writeSortedColors(h, colors, preds[i])
			h.Write([]byte("|succs|"))
			writeSortedColors(h, colors, succs[i])
			copy(next[i][:], h.Sum(nil))
		}
		colors, next = next, colors
		if c := countClasses(colors); c == classes || c == n {
			break
		} else {
			classes = c
		}
	}
	return colors
}

// writeSortedColors hashes the color multiset of the given neighbor
// set in a deterministic order.
func writeSortedColors(h interface{ Write([]byte) (int, error) }, colors [][32]byte, nbrs []int) {
	sorted := make([][32]byte, len(nbrs))
	for i, j := range nbrs {
		sorted[i] = colors[j]
	}
	sort.Slice(sorted, func(a, b int) bool {
		return string(sorted[a][:]) < string(sorted[b][:])
	})
	var count [8]byte
	binary.BigEndian.PutUint64(count[:], uint64(len(sorted)))
	h.Write(count[:])
	for _, c := range sorted {
		h.Write(c[:])
	}
}

// combine folds extra bytes into a color.
func combine(c [32]byte, extra []byte) [32]byte {
	h := sha256.New()
	h.Write(c[:])
	h.Write(extra)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// countClasses returns the number of distinct colors.
func countClasses(colors [][32]byte) int {
	seen := make(map[[32]byte]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}
