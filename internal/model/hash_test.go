package model

import (
	"bytes"
	"math/rand"
	"testing"
)

// hashDemoInstance builds a small instance with asymmetric structure:
// two tasks share a footprint so only the precedence DAG tells them
// apart, which exercises the WL refinement.
func hashDemoInstance() *Instance {
	return &Instance{
		Name: "hash-demo",
		Tasks: []Task{
			{Name: "a", W: 2, H: 3, Dur: 4},
			{Name: "b", W: 1, H: 1, Dur: 2},
			{Name: "b", W: 1, H: 1, Dur: 2},
			{Name: "c", W: 3, H: 2, Dur: 1},
			{Name: "d", W: 2, H: 2, Dur: 3},
		},
		Prec: []Arc{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4}},
	}
}

// permuted returns the instance with tasks reordered by perm (task i
// moves to position perm[i]) and the precedence arcs remapped to the
// new numbering — the same problem under a different insertion order.
func permuted(in *Instance, perm []int) *Instance {
	out := &Instance{Name: in.Name, Tasks: make([]Task, len(in.Tasks))}
	for i, t := range in.Tasks {
		out.Tasks[perm[i]] = t
	}
	for _, a := range in.Prec {
		out.Prec = append(out.Prec, Arc{From: perm[a.From], To: perm[a.To]})
	}
	return out
}

func TestCanonicalHashInvariantUnderInsertionOrder(t *testing.T) {
	in := hashDemoInstance()
	want := in.CanonicalHash()
	if want == "" || len(want) != 64 {
		t.Fatalf("hash %q is not a hex SHA-256", want)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(in.Tasks))
		shuffled := permuted(in, perm)
		rng.Shuffle(len(shuffled.Prec), func(i, j int) {
			shuffled.Prec[i], shuffled.Prec[j] = shuffled.Prec[j], shuffled.Prec[i]
		})
		if got := shuffled.CanonicalHash(); got != want {
			t.Fatalf("trial %d: hash changed under task permutation %v: %s vs %s",
				trial, perm, got, want)
		}
	}
}

func TestCanonicalHashSurvivesJSONRoundTrip(t *testing.T) {
	in := hashDemoInstance()
	want := in.CanonicalHash()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.CanonicalHash(); got != want {
		t.Fatalf("hash changed across JSON round trip: %s vs %s", got, want)
	}
}

func TestCanonicalHashIgnoresInstanceName(t *testing.T) {
	in := hashDemoInstance()
	renamed := in.Clone()
	renamed.Name = "something else"
	if in.CanonicalHash() != renamed.CanonicalHash() {
		t.Fatal("instance name should not affect the canonical hash")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := hashDemoInstance()
	want := base.CanonicalHash()

	mutations := map[string]func(*Instance){
		"width":       func(in *Instance) { in.Tasks[1].W++ },
		"height":      func(in *Instance) { in.Tasks[3].H++ },
		"duration":    func(in *Instance) { in.Tasks[0].Dur++ },
		"task name":   func(in *Instance) { in.Tasks[4].Name = "e" },
		"extra task":  func(in *Instance) { in.Tasks = append(in.Tasks, Task{Name: "f", W: 1, H: 1, Dur: 1}) },
		"extra arc":   func(in *Instance) { in.Prec = append(in.Prec, Arc{From: 1, To: 4}) },
		"dropped arc": func(in *Instance) { in.Prec = in.Prec[:len(in.Prec)-1] },
		"flipped arc": func(in *Instance) { in.Prec[0] = Arc{From: in.Prec[0].To, To: in.Prec[0].From} },
		"rewired arc": func(in *Instance) { in.Prec[1].To = 3 },
	}
	for name, mutate := range mutations {
		m := base.Clone()
		mutate(m)
		if got := m.CanonicalHash(); got == want {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

// TestCanonicalHashSeparatesTwinTasks pins the case plain label
// hashing cannot tell apart: two tasks with identical footprints whose
// precedence roles differ only through refinement depth.
func TestCanonicalHashSeparatesTwinTasks(t *testing.T) {
	// chain: x -> y -> z where x and z share a label.
	chain := &Instance{
		Tasks: []Task{{W: 1, H: 1, Dur: 1}, {W: 2, H: 2, Dur: 2}, {W: 1, H: 1, Dur: 1}},
		Prec:  []Arc{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	// fan: x -> y, x -> z. Same task multiset, same arc count from the
	// same label pair classes at round zero.
	fan := &Instance{
		Tasks: []Task{{W: 1, H: 1, Dur: 1}, {W: 2, H: 2, Dur: 2}, {W: 1, H: 1, Dur: 1}},
		Prec:  []Arc{{From: 0, To: 1}, {From: 0, To: 2}},
	}
	if chain.CanonicalHash() == fan.CanonicalHash() {
		t.Fatal("chain and fan precedence structures hash identically")
	}
}

func TestCanonicalHashEmptyAndNoPrec(t *testing.T) {
	empty := &Instance{}
	if empty.CanonicalHash() == "" {
		t.Fatal("empty instance should still hash")
	}
	in := hashDemoInstance()
	if in.CanonicalHash() == in.WithoutPrec().CanonicalHash() {
		t.Fatal("dropping all precedence arcs should change the hash")
	}
}
