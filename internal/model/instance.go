// Package model defines the problem data of the paper: module tasks with
// spatial footprints and durations, precedence orders, chip containers,
// schedules and placements, along with validation, geometric
// verification, and a JSON interchange format.
package model

import (
	"fmt"

	"fpga3d/internal/graph"
)

// Task is a hardware module: a w×h block of FPGA cells that computes for
// Dur clock cycles. In the three-dimensional packing view it is the box
// W × H × Dur.
type Task struct {
	Name string `json:"name"`
	W    int    `json:"w"`   // spatial extent in x (cells)
	H    int    `json:"h"`   // spatial extent in y (cells)
	Dur  int    `json:"dur"` // execution time (clock cycles)
}

// Volume returns the space-time volume of the task's box.
func (t Task) Volume() int { return t.W * t.H * t.Dur }

// Arc is a precedence constraint: task From must finish before task To
// starts. Indices refer to Instance.Tasks.
type Arc struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Instance is a module placement problem: a set of tasks plus a partial
// order of temporal precedence constraints (a DAG over the tasks).
type Instance struct {
	Name  string `json:"name,omitempty"`
	Tasks []Task `json:"tasks"`
	Prec  []Arc  `json:"prec,omitempty"`
}

// N returns the number of tasks.
func (in *Instance) N() int { return len(in.Tasks) }

// Volume returns the total space-time volume of all tasks.
func (in *Instance) Volume() int {
	v := 0
	for _, t := range in.Tasks {
		v += t.Volume()
	}
	return v
}

// TotalDuration returns the sum of all task durations (the makespan of a
// fully serialized schedule).
func (in *Instance) TotalDuration() int {
	d := 0
	for _, t := range in.Tasks {
		d += t.Dur
	}
	return d
}

// Durations returns the slice of task durations indexed by task.
func (in *Instance) Durations() []int {
	d := make([]int, len(in.Tasks))
	for i, t := range in.Tasks {
		d[i] = t.Dur
	}
	return d
}

// MaxW returns the largest task width, MaxH the largest height.
func (in *Instance) MaxW() int {
	m := 0
	for _, t := range in.Tasks {
		if t.W > m {
			m = t.W
		}
	}
	return m
}

// MaxH returns the largest task height.
func (in *Instance) MaxH() int {
	m := 0
	for _, t := range in.Tasks {
		if t.H > m {
			m = t.H
		}
	}
	return m
}

// Validate checks structural sanity: at least one task, strictly positive
// dimensions, in-range precedence arcs, no self-arcs, and an acyclic
// precedence relation.
func (in *Instance) Validate() error {
	if len(in.Tasks) == 0 {
		return fmt.Errorf("model: instance %q has no tasks", in.Name)
	}
	for i, t := range in.Tasks {
		if t.W <= 0 || t.H <= 0 || t.Dur <= 0 {
			return fmt.Errorf("model: task %d (%q) has non-positive dimensions %dx%dx%d",
				i, t.Name, t.W, t.H, t.Dur)
		}
	}
	for _, a := range in.Prec {
		if a.From < 0 || a.From >= len(in.Tasks) || a.To < 0 || a.To >= len(in.Tasks) {
			return fmt.Errorf("model: precedence arc %d→%d out of range", a.From, a.To)
		}
		if a.From == a.To {
			return fmt.Errorf("model: self-precedence on task %d", a.From)
		}
	}
	if !in.PrecDigraph().IsAcyclic() {
		return fmt.Errorf("model: precedence constraints contain a cycle")
	}
	return nil
}

// PrecDigraph returns the precedence arcs as a digraph.
func (in *Instance) PrecDigraph() *graph.Digraph {
	d := graph.NewDigraph(len(in.Tasks))
	for _, a := range in.Prec {
		d.AddArc(a.From, a.To)
	}
	return d
}

// Order returns the precedence relation of the instance prepared for the
// solver: transitively closed, with cached earliest-start and tail data.
func (in *Instance) Order() (*Order, error) {
	return NewOrder(in.PrecDigraph(), in.Durations())
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	c := &Instance{Name: in.Name}
	c.Tasks = append([]Task(nil), in.Tasks...)
	c.Prec = append([]Arc(nil), in.Prec...)
	return c
}

// WithoutPrec returns a copy of the instance with all precedence
// constraints removed (the unconstrained baseline of Figure 7b).
func (in *Instance) WithoutPrec() *Instance {
	c := in.Clone()
	c.Prec = nil
	if c.Name != "" {
		c.Name += " (no precedence)"
	}
	return c
}

// Container is the available chip and time budget: a W×H cell array and
// an overall allowable time T.
type Container struct {
	W int `json:"w"`
	H int `json:"h"`
	T int `json:"t"`
}

// Volume returns the space-time volume of the container.
func (c Container) Volume() int { return c.W * c.H * c.T }

func (c Container) String() string { return fmt.Sprintf("%dx%dx%d", c.W, c.H, c.T) }

// Fits reports whether every task individually fits inside the container.
func (c Container) Fits(in *Instance) bool {
	for _, t := range in.Tasks {
		if t.W > c.W || t.H > c.H || t.Dur > c.T {
			return false
		}
	}
	return true
}
