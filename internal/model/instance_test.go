package model

import (
	"bytes"
	"strings"
	"testing"
)

func demoInstance() *Instance {
	return &Instance{
		Name: "demo",
		Tasks: []Task{
			{Name: "a", W: 2, H: 3, Dur: 4},
			{Name: "b", W: 1, H: 1, Dur: 2},
			{Name: "c", W: 5, H: 2, Dur: 1},
		},
		Prec: []Arc{{From: 0, To: 1}, {From: 1, To: 2}},
	}
}

func TestInstanceValidateOK(t *testing.T) {
	if err := demoInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Instance)
	}{
		{"no tasks", func(in *Instance) { in.Tasks = nil }},
		{"zero width", func(in *Instance) { in.Tasks[0].W = 0 }},
		{"negative height", func(in *Instance) { in.Tasks[1].H = -2 }},
		{"zero duration", func(in *Instance) { in.Tasks[2].Dur = 0 }},
		{"arc from out of range", func(in *Instance) { in.Prec[0].From = 9 }},
		{"arc to negative", func(in *Instance) { in.Prec[0].To = -1 }},
		{"self arc", func(in *Instance) { in.Prec[0] = Arc{From: 1, To: 1} }},
		{"cycle", func(in *Instance) { in.Prec = append(in.Prec, Arc{From: 2, To: 0}) }},
	}
	for _, tc := range cases {
		in := demoInstance()
		tc.mut(in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid instance", tc.name)
		}
	}
}

func TestInstanceAggregates(t *testing.T) {
	in := demoInstance()
	if got := in.Volume(); got != 2*3*4+1*1*2+5*2*1 {
		t.Fatalf("Volume = %d", got)
	}
	if got := in.TotalDuration(); got != 7 {
		t.Fatalf("TotalDuration = %d", got)
	}
	if in.MaxW() != 5 || in.MaxH() != 3 {
		t.Fatalf("MaxW/MaxH = %d/%d", in.MaxW(), in.MaxH())
	}
	d := in.Durations()
	if len(d) != 3 || d[0] != 4 || d[2] != 1 {
		t.Fatalf("Durations = %v", d)
	}
	if got := (Task{W: 2, H: 3, Dur: 4}).Volume(); got != 24 {
		t.Fatalf("Task.Volume = %d", got)
	}
}

func TestInstanceCloneAndWithoutPrec(t *testing.T) {
	in := demoInstance()
	c := in.Clone()
	c.Tasks[0].W = 99
	c.Prec[0].From = 2
	if in.Tasks[0].W == 99 || in.Prec[0].From == 2 {
		t.Fatal("Clone shares storage")
	}
	np := in.WithoutPrec()
	if len(np.Prec) != 0 {
		t.Fatal("WithoutPrec kept arcs")
	}
	if len(in.Prec) != 2 {
		t.Fatal("WithoutPrec mutated original")
	}
	if !strings.Contains(np.Name, "no precedence") {
		t.Fatalf("WithoutPrec name = %q", np.Name)
	}
}

func TestContainer(t *testing.T) {
	c := Container{W: 4, H: 5, T: 6}
	if c.Volume() != 120 {
		t.Fatalf("Volume = %d", c.Volume())
	}
	if c.String() != "4x5x6" {
		t.Fatalf("String = %q", c.String())
	}
	in := demoInstance()
	if !(Container{W: 5, H: 3, T: 4}).Fits(in) {
		t.Fatal("instance should fit 5x3x4 per task")
	}
	if (Container{W: 4, H: 3, T: 4}).Fits(in) {
		t.Fatal("task c (w=5) cannot fit width 4")
	}
	if (Container{W: 5, H: 3, T: 3}).Fits(in) {
		t.Fatal("task a (dur=4) cannot fit horizon 3")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := demoInstance()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != in.Name || len(back.Tasks) != len(in.Tasks) || len(back.Prec) != len(in.Prec) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := range in.Tasks {
		if back.Tasks[i] != in.Tasks[i] {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, back.Tasks[i], in.Tasks[i])
		}
	}
}

func TestReadInstanceRejectsBadInput(t *testing.T) {
	for _, src := range []string{
		`{"tasks": []}`,                                     // no tasks
		`{"tasks": [{"w":1,"h":1,"dur":0}]}`,                // zero duration
		`{"tasks": [{"w":1,"h":1,"dur":1}], "bogus": true}`, // unknown field
		`not json`,
		`{"tasks":[{"w":1,"h":1,"dur":1},{"w":1,"h":1,"dur":1}],"prec":[{"from":0,"to":1},{"from":1,"to":0}]}`, // cycle
	} {
		if _, err := ReadInstance(strings.NewReader(src)); err == nil {
			t.Errorf("ReadInstance accepted %q", src)
		}
	}
}

func TestReadInstanceOK(t *testing.T) {
	src := `{"name":"x","tasks":[{"name":"m","w":16,"h":16,"dur":2}],"prec":[]}`
	in, err := ReadInstance(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 1 || in.Tasks[0].Name != "m" {
		t.Fatalf("parsed %+v", in)
	}
}
