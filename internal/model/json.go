package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadInstance decodes an Instance from JSON and validates it.
func ReadInstance(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// LoadInstance reads an instance from a JSON file.
func LoadInstance(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInstance(f)
}

// WriteInstance encodes the instance as indented JSON.
func WriteInstance(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}
