package model

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadInstanceErrorMessages pins the error-path contract of the
// JSON decoder: every malformed input is rejected before it can reach
// a solver, with a message naming what is wrong.
func TestReadInstanceErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error message
	}{
		{"malformed json", `{"tasks": [`, "decoding instance"},
		{"not json at all", `hello world`, "decoding instance"},
		{"wrong type", `{"tasks": 7}`, "decoding instance"},
		{"empty object", `{}`, "no tasks"},
		{"empty task list", `{"name":"x","tasks":[]}`, "no tasks"},
		{"negative width", `{"tasks":[{"name":"m","w":-2,"h":1,"dur":1}]}`, "non-positive dimensions"},
		{"negative height", `{"tasks":[{"w":1,"h":-1,"dur":1}]}`, "non-positive dimensions"},
		{"negative duration", `{"tasks":[{"w":1,"h":1,"dur":-3}]}`, "non-positive dimensions"},
		{"zero width", `{"tasks":[{"w":0,"h":1,"dur":1}]}`, "non-positive dimensions"},
		{"dangling prec to", `{"tasks":[{"w":1,"h":1,"dur":1}],"prec":[{"from":0,"to":3}]}`, "out of range"},
		{"dangling prec from", `{"tasks":[{"w":1,"h":1,"dur":1}],"prec":[{"from":-1,"to":0}]}`, "out of range"},
		{"self precedence", `{"tasks":[{"w":1,"h":1,"dur":1}],"prec":[{"from":0,"to":0}]}`, "self-precedence"},
		{"precedence cycle", `{"tasks":[{"w":1,"h":1,"dur":1},{"w":1,"h":1,"dur":1}],"prec":[{"from":0,"to":1},{"from":1,"to":0}]}`, "cycle"},
		{"unknown field", `{"tasks":[{"w":1,"h":1,"dur":1}],"typo":1}`, "decoding instance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := ReadInstance(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("accepted %q as %+v", tc.src, in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	if _, err := LoadInstance(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("LoadInstance accepted a missing file")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tasks":[{"w":1,"h":1,"dur":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInstance(bad); err == nil || !strings.Contains(err.Error(), "non-positive dimensions") {
		t.Fatalf("LoadInstance on invalid file: err=%v", err)
	}

	good := filepath.Join(t.TempDir(), "good.json")
	if err := os.WriteFile(good, []byte(`{"tasks":[{"name":"m","w":2,"h":3,"dur":4}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := LoadInstance(good)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 1 || in.Tasks[0].W != 2 {
		t.Fatalf("loaded %+v", in)
	}
}
