package model

import (
	"fmt"

	"fpga3d/internal/graph"
)

// Order is a precedence partial order prepared for the solver: the
// transitive closure of the input arcs together with cached longest-path
// data (earliest start times and tails) under the task durations.
//
// The paper's first preprocessing step — "we compute the transitive
// closure of all data dependencies to allow our algorithm to find
// contradictions to feasible packings already in the input" — happens in
// NewOrder.
type Order struct {
	n       int
	closure *graph.Digraph
	dur     []int
	est     []int // earliest start = longest duration path strictly before v
	tail    []int // longest duration path strictly after v
	crit    int   // critical path length
}

// NewOrder builds an Order from precedence arcs and task durations.
// The arcs must form a DAG.
func NewOrder(prec *graph.Digraph, dur []int) (*Order, error) {
	if prec.N() != len(dur) {
		return nil, fmt.Errorf("model: %d durations for %d tasks", len(dur), prec.N())
	}
	if !prec.IsAcyclic() {
		return nil, fmt.Errorf("model: precedence constraints contain a cycle")
	}
	cl := prec.TransitiveClosure()
	est, _ := cl.LongestPathFrom(dur)
	tail, _ := cl.LongestPathTo(dur)
	crit := 0
	for v := 0; v < cl.N(); v++ {
		if c := est[v] + dur[v] + tail[v]; c > crit {
			crit = c
		}
	}
	return &Order{n: prec.N(), closure: cl, dur: append([]int(nil), dur...), est: est, tail: tail, crit: crit}, nil
}

// EmptyOrder returns the trivial order with no constraints over n tasks
// with the given durations.
func EmptyOrder(dur []int) *Order {
	o, err := NewOrder(graph.NewDigraph(len(dur)), dur)
	if err != nil {
		panic(err) // empty digraph is always acyclic
	}
	return o
}

// N returns the number of tasks.
func (o *Order) N() int { return o.n }

// Precedes reports whether u must finish before v starts (in the
// transitive closure).
func (o *Order) Precedes(u, v int) bool { return o.closure.HasArc(u, v) }

// Comparable reports whether u and v are related in either direction.
func (o *Order) Comparable(u, v int) bool {
	return o.closure.HasArc(u, v) || o.closure.HasArc(v, u)
}

// Closure returns the transitive closure digraph (shared; do not modify).
func (o *Order) Closure() *graph.Digraph { return o.closure }

// Empty reports whether the order has no constraints.
func (o *Order) Empty() bool { return o.closure.Arcs() == 0 }

// EST returns the earliest start time of v implied by the chains ending
// at v (the head of v).
func (o *Order) EST(v int) int { return o.est[v] }

// Tail returns the total duration of the longest chain starting strictly
// after v.
func (o *Order) Tail(v int) int { return o.tail[v] }

// LFT returns the latest finish time of v for a horizon T: T minus the
// tail of v.
func (o *Order) LFT(v int, T int) int { return T - o.tail[v] }

// CriticalPath returns the maximum total duration over all chains — a
// lower bound on any feasible makespan.
func (o *Order) CriticalPath() int { return o.crit }
