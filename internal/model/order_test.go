package model

import (
	"testing"

	"fpga3d/internal/graph"
)

func TestOrderChain(t *testing.T) {
	// 0(3) → 1(2) → 2(5)
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	o, err := NewOrder(d, []int{3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if o.CriticalPath() != 10 {
		t.Fatalf("critical path = %d, want 10", o.CriticalPath())
	}
	if o.EST(0) != 0 || o.EST(1) != 3 || o.EST(2) != 5 {
		t.Fatalf("EST = %d %d %d", o.EST(0), o.EST(1), o.EST(2))
	}
	if o.Tail(0) != 7 || o.Tail(1) != 5 || o.Tail(2) != 0 {
		t.Fatalf("tails = %d %d %d", o.Tail(0), o.Tail(1), o.Tail(2))
	}
	if o.LFT(0, 12) != 5 || o.LFT(2, 12) != 12 {
		t.Fatalf("LFT = %d %d", o.LFT(0, 12), o.LFT(2, 12))
	}
	// Transitive closure: 0 precedes 2.
	if !o.Precedes(0, 2) || o.Precedes(2, 0) {
		t.Fatal("closure wrong")
	}
	if !o.Comparable(0, 2) || !o.Comparable(2, 0) {
		t.Fatal("Comparable should be symmetric")
	}
	if o.Empty() {
		t.Fatal("non-empty order reported empty")
	}
	if o.N() != 3 {
		t.Fatalf("N = %d", o.N())
	}
}

func TestOrderRejectsCycle(t *testing.T) {
	d := graph.NewDigraph(2)
	d.AddArc(0, 1)
	d.AddArc(1, 0)
	if _, err := NewOrder(d, []int{1, 1}); err == nil {
		t.Fatal("cyclic order accepted")
	}
}

func TestOrderDurationMismatch(t *testing.T) {
	if _, err := NewOrder(graph.NewDigraph(3), []int{1, 2}); err == nil {
		t.Fatal("duration mismatch accepted")
	}
}

func TestEmptyOrder(t *testing.T) {
	o := EmptyOrder([]int{4, 7, 2})
	if !o.Empty() {
		t.Fatal("empty order reported non-empty")
	}
	// With no constraints the critical path is the longest single task.
	if o.CriticalPath() != 7 {
		t.Fatalf("critical path = %d, want 7", o.CriticalPath())
	}
	for v := 0; v < 3; v++ {
		if o.EST(v) != 0 || o.Tail(v) != 0 {
			t.Fatalf("task %d has nonzero window", v)
		}
	}
	if o.Comparable(0, 1) {
		t.Fatal("empty order relates tasks")
	}
}

func TestInstanceOrderDiamond(t *testing.T) {
	in := &Instance{
		Tasks: []Task{
			{W: 1, H: 1, Dur: 2}, // 0
			{W: 1, H: 1, Dur: 3}, // 1
			{W: 1, H: 1, Dur: 4}, // 2
			{W: 1, H: 1, Dur: 1}, // 3
		},
		Prec: []Arc{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	if o.CriticalPath() != 2+4+1 {
		t.Fatalf("critical path = %d", o.CriticalPath())
	}
	if o.EST(3) != 6 {
		t.Fatalf("EST(3) = %d", o.EST(3))
	}
	if !o.Precedes(0, 3) {
		t.Fatal("closure missing 0→3")
	}
}
