package model

// ComponentGraphs extracts the packing class of a placement: for each
// dimension d ∈ {x, y, t}, the component graph G_d has an edge {u, v}
// iff the projections of tasks u and v onto axis d overlap. This is the
// characterization at the heart of the paper (Section 3.2): the triple
// satisfies C1 (interval graphs), C2 (stable sets fit the capacity) and
// C3 (no pair overlaps everywhere) for every feasible placement.
//
// The result is returned as three adjacency matrices indexed by task.
func (p *Placement) ComponentGraphs(in *Instance) [3][][]bool {
	n := in.N()
	var out [3][][]bool
	for d := range out {
		out[d] = make([][]bool, n)
		for i := range out[d] {
			out[d][i] = make([]bool, n)
		}
	}
	coord := func(d, i int) (pos, size int) {
		switch d {
		case 0:
			return p.X[i], in.Tasks[i].W
		case 1:
			return p.Y[i], in.Tasks[i].H
		default:
			return p.S[i], in.Tasks[i].Dur
		}
	}
	for d := 0; d < 3; d++ {
		for u := 0; u < n; u++ {
			pu, su := coord(d, u)
			for v := u + 1; v < n; v++ {
				pv, sv := coord(d, v)
				if pu < pv+sv && pv < pu+su {
					out[d][u][v] = true
					out[d][v][u] = true
				}
			}
		}
	}
	return out
}

// IntervalOrder extracts, for one dimension (0 = x, 1 = y, 2 = t), the
// interval order realized by the placement: before[u][v] is true iff
// task u's interval ends no later than task v's begins. On the time
// axis this is the "executes strictly before" relation; it always
// extends the instance's precedence order for a feasible placement.
func (p *Placement) IntervalOrder(in *Instance, dim int) [][]bool {
	n := in.N()
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
	}
	coord := func(i int) (pos, size int) {
		switch dim {
		case 0:
			return p.X[i], in.Tasks[i].W
		case 1:
			return p.Y[i], in.Tasks[i].H
		default:
			return p.S[i], in.Tasks[i].Dur
		}
	}
	for u := 0; u < n; u++ {
		pu, su := coord(u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			pv, _ := coord(v)
			if pu+su <= pv {
				out[u][v] = true
			}
		}
	}
	return out
}
