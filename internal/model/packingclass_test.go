package model

import "testing"

func TestComponentGraphs(t *testing.T) {
	in, p, _ := placedDemo()
	// a at (0,0,0) 2×2×2; b at (2,0,0) 2×2×2; c at (0,0,2) 1×1×1.
	g := p.ComponentGraphs(in)

	// x: a=[0,2), b=[2,4), c=[0,1): a–c overlap, a–b disjoint, b–c disjoint.
	if g[0][0][1] || !g[0][0][2] || g[0][1][2] {
		t.Fatalf("G_x wrong: %v", g[0])
	}
	// y: a=[0,2), b=[0,2), c=[0,1): all overlap.
	if !g[1][0][1] || !g[1][0][2] || !g[1][1][2] {
		t.Fatalf("G_y wrong: %v", g[1])
	}
	// t: a=[0,2), b=[0,2), c=[2,3): a–b overlap, c after both.
	if !g[2][0][1] || g[2][0][2] || g[2][1][2] {
		t.Fatalf("G_t wrong: %v", g[2])
	}
	// Symmetry and empty diagonal.
	for d := 0; d < 3; d++ {
		for u := 0; u < 3; u++ {
			if g[d][u][u] {
				t.Fatal("self loop")
			}
			for v := 0; v < 3; v++ {
				if g[d][u][v] != g[d][v][u] {
					t.Fatal("asymmetric")
				}
			}
		}
	}
	// C3: no pair overlaps in all three dimensions (the placement is
	// feasible).
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			if g[0][u][v] && g[1][u][v] && g[2][u][v] {
				t.Fatalf("pair {%d,%d} overlaps everywhere", u, v)
			}
		}
	}
}

func TestIntervalOrder(t *testing.T) {
	in, p, _ := placedDemo()
	before := p.IntervalOrder(in, 2)
	// c (task 2) starts at 2; a and b end at 2: both before c.
	if !before[0][2] || !before[1][2] {
		t.Fatalf("a,b should precede c: %v", before)
	}
	if before[2][0] || before[0][1] || before[1][0] {
		t.Fatalf("spurious order: %v", before)
	}
	// The time interval order must extend the precedence order.
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < in.N(); u++ {
		for v := 0; v < in.N(); v++ {
			if u != v && o.Precedes(u, v) && !before[u][v] {
				t.Fatalf("precedence %d≺%d not realized", u, v)
			}
		}
	}
	// x-axis order: a=[0,2) ends where b=[2,4) starts.
	bx := p.IntervalOrder(in, 0)
	if !bx[0][1] || bx[1][0] {
		t.Fatalf("x order wrong: %v", bx)
	}
	// y-axis: everything overlaps, no order at all.
	by := p.IntervalOrder(in, 1)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if by[u][v] {
				t.Fatalf("y order nonempty: %v", by)
			}
		}
	}
}
