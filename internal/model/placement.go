package model

import (
	"fmt"
	"strings"
)

// Placement assigns every task a lower-left-front corner: spatial cell
// (X, Y) and start time S. Task i occupies cells
// [X[i], X[i]+W) × [Y[i], Y[i]+H) during cycles [S[i], S[i]+Dur).
type Placement struct {
	X []int `json:"x"`
	Y []int `json:"y"`
	S []int `json:"s"`
}

// NewPlacement returns a zeroed placement for n tasks.
func NewPlacement(n int) *Placement {
	return &Placement{X: make([]int, n), Y: make([]int, n), S: make([]int, n)}
}

// Clone returns a deep copy.
func (p *Placement) Clone() *Placement {
	return &Placement{
		X: append([]int(nil), p.X...),
		Y: append([]int(nil), p.Y...),
		S: append([]int(nil), p.S...),
	}
}

// Makespan returns the latest finish time over all tasks.
func (p *Placement) Makespan(in *Instance) int {
	m := 0
	for i, t := range in.Tasks {
		if f := p.S[i] + t.Dur; f > m {
			m = f
		}
	}
	return m
}

// Schedule returns just the start times (the FixedS view of a placement).
func (p *Placement) Schedule() []int { return append([]int(nil), p.S...) }

// Table renders the placement as a human-readable table.
func (p *Placement) Table(in *Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %6s %6s %6s %6s %6s\n", "task", "x", "y", "start", "w", "h", "dur")
	for i, t := range in.Tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("task%d", i)
		}
		fmt.Fprintf(&b, "%-10s %6d %6d %6d %6d %6d %6d\n", name, p.X[i], p.Y[i], p.S[i], t.W, t.H, t.Dur)
	}
	return b.String()
}

// overlap1D reports whether [a, a+la) and [b, b+lb) intersect.
func overlap1D(a, la, b, lb int) bool { return a < b+lb && b < a+la }

// Verify checks that the placement is feasible for the instance inside
// the container: every box within bounds, no two boxes overlapping in
// all three dimensions, and (when order is non-nil) every precedence
// constraint u ≺ v satisfied as finish(u) ≤ start(v).
func (p *Placement) Verify(in *Instance, c Container, order *Order) error {
	n := in.N()
	if len(p.X) != n || len(p.Y) != n || len(p.S) != n {
		return fmt.Errorf("model: placement size mismatch (%d/%d/%d coords for %d tasks)",
			len(p.X), len(p.Y), len(p.S), n)
	}
	for i, t := range in.Tasks {
		if p.X[i] < 0 || p.Y[i] < 0 || p.S[i] < 0 {
			return fmt.Errorf("model: task %d placed at negative coordinate (%d,%d,%d)", i, p.X[i], p.Y[i], p.S[i])
		}
		if p.X[i]+t.W > c.W || p.Y[i]+t.H > c.H || p.S[i]+t.Dur > c.T {
			return fmt.Errorf("model: task %d (%dx%dx%d at %d,%d,%d) exceeds container %s",
				i, t.W, t.H, t.Dur, p.X[i], p.Y[i], p.S[i], c)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ti, tj := in.Tasks[i], in.Tasks[j]
			if overlap1D(p.X[i], ti.W, p.X[j], tj.W) &&
				overlap1D(p.Y[i], ti.H, p.Y[j], tj.H) &&
				overlap1D(p.S[i], ti.Dur, p.S[j], tj.Dur) {
				return fmt.Errorf("model: tasks %d and %d overlap in space and time", i, j)
			}
		}
	}
	if order != nil {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && order.Precedes(u, v) && p.S[u]+in.Tasks[u].Dur > p.S[v] {
					return fmt.Errorf("model: precedence %d≺%d violated: finish(%d)=%d > start(%d)=%d",
						u, v, u, p.S[u]+in.Tasks[u].Dur, v, p.S[v])
				}
			}
		}
	}
	return nil
}

// VerifySchedule checks a bare schedule (start times) against the order
// and horizon only — no spatial information.
func VerifySchedule(in *Instance, starts []int, T int, order *Order) error {
	if len(starts) != in.N() {
		return fmt.Errorf("model: %d start times for %d tasks", len(starts), in.N())
	}
	for i, t := range in.Tasks {
		if starts[i] < 0 || starts[i]+t.Dur > T {
			return fmt.Errorf("model: task %d runs [%d,%d) outside horizon %d", i, starts[i], starts[i]+t.Dur, T)
		}
	}
	if order != nil {
		for u := 0; u < in.N(); u++ {
			for v := 0; v < in.N(); v++ {
				if u != v && order.Precedes(u, v) && starts[u]+in.Tasks[u].Dur > starts[v] {
					return fmt.Errorf("model: precedence %d≺%d violated in schedule", u, v)
				}
			}
		}
	}
	return nil
}
