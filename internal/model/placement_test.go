package model

import (
	"strings"
	"testing"
)

func placedDemo() (*Instance, *Placement, Container) {
	in := &Instance{
		Tasks: []Task{
			{Name: "a", W: 2, H: 2, Dur: 2},
			{Name: "b", W: 2, H: 2, Dur: 2},
			{Name: "c", W: 1, H: 1, Dur: 1},
		},
		Prec: []Arc{{From: 0, To: 2}},
	}
	p := &Placement{
		X: []int{0, 2, 0},
		Y: []int{0, 0, 0},
		S: []int{0, 0, 2},
	}
	return in, p, Container{W: 4, H: 4, T: 4}
}

func order(t *testing.T, in *Instance) *Order {
	t.Helper()
	o, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestVerifyOK(t *testing.T) {
	in, p, c := placedDemo()
	if err := p.Verify(in, c, order(t, in)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Placement, *Instance, *Container)
	}{
		{"size mismatch", func(p *Placement, in *Instance, c *Container) { p.X = p.X[:2] }},
		{"negative coordinate", func(p *Placement, in *Instance, c *Container) { p.Y[1] = -1 }},
		{"out of width", func(p *Placement, in *Instance, c *Container) { p.X[1] = 3 }},
		{"out of horizon", func(p *Placement, in *Instance, c *Container) { p.S[2] = 4 }},
		{"spatial+temporal overlap", func(p *Placement, in *Instance, c *Container) { p.X[1] = 1 }},
		{"precedence violated", func(p *Placement, in *Instance, c *Container) { p.S[2] = 1; p.X[2] = 3; p.Y[2] = 3 }},
	}
	for _, tc := range cases {
		in, p, c := placedDemo()
		tc.mut(p, in, &c)
		if err := p.Verify(in, c, order(t, in)); err == nil {
			t.Errorf("%s: Verify accepted invalid placement", tc.name)
		}
	}
}

func TestVerifyNilOrderSkipsPrecedence(t *testing.T) {
	in, p, c := placedDemo()
	p.S[2] = 1
	p.X[2] = 3
	p.Y[2] = 3 // violates 0→2 but is geometrically fine
	if err := p.Verify(in, c, nil); err != nil {
		t.Fatalf("nil order should skip precedence: %v", err)
	}
}

func TestTimeOnlyOverlapIsFine(t *testing.T) {
	// Two tasks sharing time but not space, and sharing space but not time.
	in := &Instance{Tasks: []Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}}}
	p := &Placement{X: []int{0, 0}, Y: []int{0, 0}, S: []int{0, 2}}
	if err := p.Verify(in, Container{W: 2, H: 2, T: 4}, nil); err != nil {
		t.Fatalf("sequential reuse of the same cells rejected: %v", err)
	}
	p = &Placement{X: []int{0, 2}, Y: []int{0, 0}, S: []int{0, 0}}
	if err := p.Verify(in, Container{W: 4, H: 2, T: 2}, nil); err != nil {
		t.Fatalf("side-by-side concurrent tasks rejected: %v", err)
	}
}

func TestMakespanAndSchedule(t *testing.T) {
	in, p, _ := placedDemo()
	if got := p.Makespan(in); got != 3 {
		t.Fatalf("Makespan = %d, want 3", got)
	}
	s := p.Schedule()
	s[0] = 99
	if p.S[0] == 99 {
		t.Fatal("Schedule shares storage")
	}
}

func TestVerifySchedule(t *testing.T) {
	in, p, _ := placedDemo()
	o := order(t, in)
	if err := VerifySchedule(in, p.S, 4, o); err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(in, []int{0, 0}, 4, o); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := VerifySchedule(in, []int{0, 0, 1}, 4, o); err == nil {
		t.Fatal("precedence violation accepted")
	}
	if err := VerifySchedule(in, []int{0, 3, 2}, 4, o); err == nil {
		t.Fatal("horizon violation accepted")
	}
}

func TestCloneAndNewPlacement(t *testing.T) {
	p := NewPlacement(3)
	if len(p.X) != 3 || len(p.Y) != 3 || len(p.S) != 3 {
		t.Fatal("NewPlacement sizes wrong")
	}
	p.X[0] = 7
	c := p.Clone()
	c.X[0] = 8
	if p.X[0] != 7 {
		t.Fatal("Clone shares storage")
	}
}

func TestRenderers(t *testing.T) {
	in, p, c := placedDemo()
	table := p.Table(in)
	for _, want := range []string{"a", "b", "c", "start"} {
		if !strings.Contains(table, want) {
			t.Fatalf("Table missing %q:\n%s", want, table)
		}
	}
	g := p.Gantt(in)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 4 { // header + 3 tasks
		t.Fatalf("Gantt has %d lines:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "##.") {
		t.Fatalf("task a bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "..#") {
		t.Fatalf("task c bar wrong: %q", lines[3])
	}

	f := p.FrameAt(in, c, 0)
	if !strings.Contains(f, "aabb") {
		t.Fatalf("FrameAt(0) missing concurrent a and b:\n%s", f)
	}
	f2 := p.FrameAt(in, c, 2)
	if strings.Contains(f2, "a") || !strings.Contains(f2, "c") {
		t.Fatalf("FrameAt(2) wrong:\n%s", f2)
	}

	// Unnamed tasks get synthetic names.
	anon := &Instance{Tasks: []Task{{W: 1, H: 1, Dur: 1}}}
	pt := NewPlacement(1)
	if !strings.Contains(pt.Table(anon), "task0") || !strings.Contains(pt.Gantt(anon), "task0") {
		t.Fatal("anonymous task not labeled")
	}
}
