package model

import "fmt"

// Reconfiguration overhead, Section 2.1 of the paper: "The time needed
// for carrying out reconfigurations may be modeled by a constant
// (possibly a different number for each task) … this may be considered
// part of the execution time of a task." The helpers below fold such
// constants into the task durations, producing a new instance that the
// exact solver handles unchanged.

// WithReconfigOverhead returns a copy of the instance in which task i's
// duration is extended by overhead[i] cycles (the time to stream task
// i's configuration onto the chip before it can compute).
func (in *Instance) WithReconfigOverhead(overhead []int) (*Instance, error) {
	if len(overhead) != len(in.Tasks) {
		return nil, fmt.Errorf("model: %d overheads for %d tasks", len(overhead), len(in.Tasks))
	}
	c := in.Clone()
	for i := range c.Tasks {
		if overhead[i] < 0 {
			return nil, fmt.Errorf("model: negative reconfiguration overhead for task %d", i)
		}
		c.Tasks[i].Dur += overhead[i]
	}
	if c.Name != "" {
		c.Name += " (+reconfig)"
	}
	return c, nil
}

// WithUniformReconfigOverhead extends every task duration by the same
// per-reconfiguration constant.
func (in *Instance) WithUniformReconfigOverhead(delta int) (*Instance, error) {
	ov := make([]int, len(in.Tasks))
	for i := range ov {
		ov[i] = delta
	}
	return in.WithReconfigOverhead(ov)
}
