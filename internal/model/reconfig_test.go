package model

import (
	"strings"
	"testing"
)

func TestWithReconfigOverhead(t *testing.T) {
	in := demoInstance() // durations 4, 2, 1
	out, err := in.WithReconfigOverhead([]int{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks[0].Dur != 5 || out.Tasks[1].Dur != 2 || out.Tasks[2].Dur != 4 {
		t.Fatalf("durations = %v", out.Durations())
	}
	if in.Tasks[0].Dur != 4 {
		t.Fatal("original mutated")
	}
	if !strings.Contains(out.Name, "+reconfig") {
		t.Fatalf("name = %q", out.Name)
	}
	// Precedence structure carries over.
	if len(out.Prec) != len(in.Prec) {
		t.Fatal("arcs lost")
	}
}

func TestWithReconfigOverheadErrors(t *testing.T) {
	in := demoInstance()
	if _, err := in.WithReconfigOverhead([]int{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := in.WithReconfigOverhead([]int{1, -1, 0}); err == nil {
		t.Fatal("negative overhead accepted")
	}
}

func TestWithUniformReconfigOverhead(t *testing.T) {
	in := demoInstance()
	out, err := in.WithUniformReconfigOverhead(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Tasks {
		if out.Tasks[i].Dur != in.Tasks[i].Dur+2 {
			t.Fatalf("task %d duration %d", i, out.Tasks[i].Dur)
		}
	}
	// Overhead stretches the critical path accordingly: the demo chain
	// 0→1→2 has durations 4+2+1 = 7, plus 3 tasks × 2 cycles.
	o, err := out.Order()
	if err != nil {
		t.Fatal(err)
	}
	if o.CriticalPath() != 7+6 {
		t.Fatalf("critical path = %d, want 13", o.CriticalPath())
	}
}

func TestWriteSVG(t *testing.T) {
	in, p, c := placedDemo()
	var b strings.Builder
	if err := p.WriteSVG(&b, in, c); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"cycle 0", "cycle 2", "makespan 3", ">a<", ">b<", ">c<"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Three frame outlines (event times 0, 1?, 2 — starts {0,0,2},
	// finishes {2,2,3}: events 0, 2, 3 → frames at 0 and 2) plus task
	// rectangles plus Gantt bars.
	if got := strings.Count(svg, "<rect"); got < 7 {
		t.Fatalf("only %d rects", got)
	}
}

func TestSVGEscapesNames(t *testing.T) {
	in := &Instance{Tasks: []Task{{Name: "a<&>b", W: 1, H: 1, Dur: 1}}}
	p := NewPlacement(1)
	var b strings.Builder
	if err := p.WriteSVG(&b, in, Container{W: 2, H: 2, T: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "a<&>b") {
		t.Fatal("unescaped task name in SVG")
	}
	if !strings.Contains(b.String(), "a&lt;&amp;&gt;b") {
		t.Fatal("escaped name missing")
	}
}

func TestWriteDOT(t *testing.T) {
	in := demoInstance()
	var b strings.Builder
	if err := WriteDOT(&b, in); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{"digraph", "t0 -> t1", "t1 -> t2", "2x3x4", "a\\n"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Anonymous instance and tasks get fallback names.
	anon := &Instance{Tasks: []Task{{W: 1, H: 1, Dur: 1}}}
	b.Reset()
	if err := WriteDOT(&b, anon); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "task0") || !strings.Contains(b.String(), `"instance"`) {
		t.Fatalf("fallback names missing:\n%s", b.String())
	}
}
