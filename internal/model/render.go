package model

import (
	"fmt"
	"strings"
)

// Gantt renders the schedule of a placement as an ASCII chart: one row
// per task, one column per clock cycle.
func (p *Placement) Gantt(in *Instance) string {
	makespan := p.Makespan(in)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s ", "cycle")
	for t := 0; t < makespan; t++ {
		b.WriteByte("0123456789"[t%10])
	}
	b.WriteByte('\n')
	for i, task := range in.Tasks {
		name := task.Name
		if name == "" {
			name = fmt.Sprintf("task%d", i)
		}
		fmt.Fprintf(&b, "%-10s ", name)
		for t := 0; t < makespan; t++ {
			switch {
			case t >= p.S[i] && t < p.S[i]+task.Dur:
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FrameAt renders the chip occupancy at clock cycle t as an ASCII grid:
// each cell shows the letter of the task running on it ('.' when idle).
// Tasks are lettered a, b, c, … by index (wrapping after 52).
func (p *Placement) FrameAt(in *Instance, c Container, t int) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	grid := make([][]byte, c.H)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", c.W))
	}
	for i, task := range in.Tasks {
		if t < p.S[i] || t >= p.S[i]+task.Dur {
			continue
		}
		ch := letters[i%len(letters)]
		for y := p.Y[i]; y < p.Y[i]+task.H; y++ {
			for x := p.X[i]; x < p.X[i]+task.W; x++ {
				grid[y][x] = ch
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d:\n", t)
	// Render with y increasing upward, like the paper's figures.
	for y := c.H - 1; y >= 0; y-- {
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	return b.String()
}
