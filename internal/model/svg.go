package model

import (
	"fmt"
	"io"
	"sort"
)

// WriteSVG renders a placement as an SVG document: one chip frame per
// event time (every instant where some task starts or finishes), with
// tasks drawn as colored, labeled rectangles, plus a Gantt strip along
// the bottom. The output is self-contained and viewable in any browser.
func (p *Placement) WriteSVG(w io.Writer, in *Instance, c Container) error {
	events := map[int]bool{0: true}
	for i, t := range in.Tasks {
		events[p.S[i]] = true
		events[p.S[i]+t.Dur] = true
	}
	times := make([]int, 0, len(events))
	for t := range events {
		times = append(times, t)
	}
	sort.Ints(times)
	if len(times) > 1 {
		times = times[:len(times)-1] // the final instant shows an empty chip
	}

	const (
		cell    = 6  // pixels per FPGA cell
		pad     = 24 // padding around each frame
		ganttH  = 14
		ganttPx = 10 // pixels per cycle in the Gantt strip
	)
	frameW := c.W*cell + pad
	frameH := c.H*cell + pad + 16
	makespan := p.Makespan(in)
	totalW := frameW * len(times)
	ganttTop := frameH + 8
	totalH := ganttTop + (len(in.Tasks)+1)*ganttH + 24

	var err error
	pr := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	pr(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n",
		totalW, totalH)
	pr(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")

	for fi, t0 := range times {
		ox := fi * frameW
		pr(`<text x="%d" y="12">cycle %d</text>`+"\n", ox+4, t0)
		pr(`<rect x="%d" y="16" width="%d" height="%d" fill="#f8f8f8" stroke="#444"/>`+"\n",
			ox+4, c.W*cell, c.H*cell)
		for i, task := range in.Tasks {
			if t0 < p.S[i] || t0 >= p.S[i]+task.Dur {
				continue
			}
			// y grows upward in the paper's figures; SVG y grows down.
			x := ox + 4 + p.X[i]*cell
			y := 16 + (c.H-p.Y[i]-task.H)*cell
			pr(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#222" fill-opacity="0.85"/>`+"\n",
				x, y, task.W*cell, task.H*cell, taskColor(i))
			pr(`<text x="%d" y="%d">%s</text>`+"\n", x+2, y+11, svgEscape(taskName(in, i)))
		}
	}

	// Gantt strip.
	pr(`<text x="4" y="%d">schedule (1 column = 1 cycle, makespan %d)</text>`+"\n", ganttTop+10, makespan)
	for i, task := range in.Tasks {
		y := ganttTop + (i+1)*ganttH
		pr(`<text x="4" y="%d">%s</text>`+"\n", y+10, svgEscape(taskName(in, i)))
		pr(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#222"/>`+"\n",
			90+p.S[i]*ganttPx, y+2, task.Dur*ganttPx, ganttH-4, taskColor(i))
	}
	pr("</svg>\n")
	return err
}

// taskColor cycles a fixed qualitative palette by task index.
func taskColor(i int) string {
	palette := []string{
		"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
		"#86bcb6", "#d37295",
	}
	return palette[i%len(palette)]
}

func taskName(in *Instance, i int) string {
	if in.Tasks[i].Name != "" {
		return in.Tasks[i].Name
	}
	return fmt.Sprintf("task%d", i)
}

func svgEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
