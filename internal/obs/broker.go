package obs

import "sync"

// ProgressEvent is one item delivered to a progress subscriber: a
// search snapshot, and Done=true exactly once as the terminal event of
// a finished stream (its Snapshot is the final state of the solve).
type ProgressEvent struct {
	// Snapshot is the progress snapshot carried by the event.
	Snapshot Snapshot
	// Done marks the terminal event of the stream.
	Done bool
}

// subBuffer is the per-subscriber channel capacity. Publishes to a full
// subscriber coalesce by dropping its oldest undelivered event — a slow
// SSE client sees fewer intermediate snapshots, never a stalled solver.
const subBuffer = 8

// ProgressBroker fans solver progress out to live subscribers, keyed by
// request ID. A serving layer Opens a stream per request and feeds it
// from the solve's ProgressFunc; any number of clients Subscribe to
// watch. The broker is bounded: it retains at most maxStreams streams
// (finished ones included, so a client that connects just after
// completion still gets the terminal event), evicting the oldest —
// preferring finished over live — when a new Open would exceed the cap.
//
// A nil *ProgressBroker is valid: Open returns a nil hook and a no-op
// closer, Subscribe reports no such stream.
type ProgressBroker struct {
	mu         sync.Mutex
	maxStreams int
	streams    map[string]*progressStream
	order      []string // insertion order, for bounded eviction
}

// progressStream is one request's fan-out state.
type progressStream struct {
	mu   sync.Mutex
	last Snapshot
	seen bool // at least one snapshot published
	done bool
	subs map[chan ProgressEvent]struct{}
}

// NewProgressBroker returns a broker retaining at most maxStreams
// concurrent or recently finished streams (default 64 when
// maxStreams <= 0).
func NewProgressBroker(maxStreams int) *ProgressBroker {
	if maxStreams <= 0 {
		maxStreams = 64
	}
	return &ProgressBroker{
		maxStreams: maxStreams,
		streams:    make(map[string]*progressStream),
	}
}

// Open registers a progress stream for id and returns the publish hook
// to install as the solve's ProgressFunc plus a closer that marks the
// stream finished, delivering the terminal Done event to every
// subscriber. The closer is idempotent. Opening an id that already
// exists restarts its stream.
func (b *ProgressBroker) Open(id string) (ProgressFunc, func()) {
	if b == nil {
		return nil, func() {}
	}
	st := &progressStream{subs: make(map[chan ProgressEvent]struct{})}
	b.mu.Lock()
	if _, exists := b.streams[id]; !exists {
		if len(b.streams) >= b.maxStreams {
			b.evictLocked()
		}
		b.order = append(b.order, id)
	}
	b.streams[id] = st
	b.mu.Unlock()
	return st.publish, func() { st.close() }
}

// evictLocked removes one stream to make room: the oldest finished one,
// or the oldest outright if every stream is still live. Callers hold
// b.mu.
func (b *ProgressBroker) evictLocked() {
	victim := -1
	for i, id := range b.order {
		st := b.streams[id]
		st.mu.Lock()
		done := st.done
		st.mu.Unlock()
		if done {
			victim = i
			break
		}
	}
	if victim < 0 {
		if len(b.order) == 0 {
			return
		}
		victim = 0
	}
	id := b.order[victim]
	b.order = append(b.order[:victim], b.order[victim+1:]...)
	// A live victim's publisher keeps feeding its existing subscribers;
	// the stream is only no longer reachable for new Subscribes.
	delete(b.streams, id)
}

// Subscribe attaches to the stream for id. It returns a channel of
// events (the latest snapshot is replayed immediately so subscribers
// start with current state; on a finished stream the terminal event
// follows and the channel closes), a cancel function releasing the
// subscription, and ok=false when no such stream exists.
func (b *ProgressBroker) Subscribe(id string) (<-chan ProgressEvent, func(), bool) {
	if b == nil {
		return nil, nil, false
	}
	b.mu.Lock()
	st := b.streams[id]
	b.mu.Unlock()
	if st == nil {
		return nil, nil, false
	}
	ch := make(chan ProgressEvent, subBuffer)
	st.mu.Lock()
	if st.seen {
		ch <- ProgressEvent{Snapshot: st.last}
	}
	if st.done {
		ch <- ProgressEvent{Snapshot: st.last, Done: true}
		close(ch)
		st.mu.Unlock()
		return ch, func() {}, true
	}
	st.subs[ch] = struct{}{}
	st.mu.Unlock()
	cancel := func() {
		st.mu.Lock()
		if _, live := st.subs[ch]; live {
			delete(st.subs, ch)
			close(ch)
		}
		st.mu.Unlock()
	}
	return ch, cancel, true
}

// publish delivers a snapshot to every subscriber, coalescing on slow
// ones. It is the stream's ProgressFunc.
func (st *progressStream) publish(s Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return
	}
	st.last = s
	st.seen = true
	for ch := range st.subs {
		send(ch, ProgressEvent{Snapshot: s})
	}
}

// close marks the stream done, emits the terminal event and closes all
// subscriber channels. Idempotent.
func (st *progressStream) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return
	}
	st.done = true
	for ch := range st.subs {
		send(ch, ProgressEvent{Snapshot: st.last, Done: true})
		close(ch)
		delete(st.subs, ch)
	}
}

// send delivers ev without blocking: when the subscriber's buffer is
// full its oldest undelivered event is dropped first, so the channel
// always holds the freshest events and a stalled reader cannot back up
// the solver.
func send(ch chan ProgressEvent, ev ProgressEvent) {
	for {
		select {
		case ch <- ev:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}
