package obs

import (
	"testing"
	"time"
)

func TestBrokerPublishSubscribe(t *testing.T) {
	b := NewProgressBroker(4)
	pub, done := b.Open("r1")

	ch, cancel, ok := b.Subscribe("r1")
	if !ok {
		t.Fatal("Subscribe failed on open stream")
	}
	defer cancel()

	pub(Snapshot{Phase: PhaseSearch, Nodes: 100})
	ev := recvEvent(t, ch)
	if ev.Done || ev.Snapshot.Nodes != 100 {
		t.Fatalf("first event = %+v", ev)
	}

	pub(Snapshot{Phase: PhaseSearch, Nodes: 200})
	done()
	ev = recvEvent(t, ch)
	if ev.Snapshot.Nodes != 200 {
		t.Fatalf("second event = %+v", ev)
	}
	ev = recvEvent(t, ch)
	if !ev.Done || ev.Snapshot.Nodes != 200 {
		t.Fatalf("terminal event = %+v", ev)
	}
	if _, open := <-ch; open {
		t.Error("channel not closed after terminal event")
	}
}

func TestBrokerReplaysLastSnapshot(t *testing.T) {
	b := NewProgressBroker(4)
	pub, done := b.Open("r1")
	pub(Snapshot{Nodes: 7})

	// Late subscriber immediately gets current state.
	ch, cancel, ok := b.Subscribe("r1")
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer cancel()
	if ev := recvEvent(t, ch); ev.Snapshot.Nodes != 7 || ev.Done {
		t.Fatalf("replayed event = %+v", ev)
	}

	// Subscriber after completion gets the last snapshot, the terminal
	// event, and a closed channel.
	done()
	ch2, _, ok := b.Subscribe("r1")
	if !ok {
		t.Fatal("Subscribe failed on finished stream")
	}
	if ev := recvEvent(t, ch2); ev.Snapshot.Nodes != 7 || ev.Done {
		t.Fatalf("finished replay = %+v", ev)
	}
	if ev := recvEvent(t, ch2); !ev.Done {
		t.Fatalf("no terminal event on finished stream: %+v", ev)
	}
	if _, open := <-ch2; open {
		t.Error("finished stream channel not closed")
	}
}

func TestBrokerCoalescesSlowSubscriber(t *testing.T) {
	b := NewProgressBroker(4)
	pub, done := b.Open("r1")
	ch, cancel, _ := b.Subscribe("r1")
	defer cancel()

	// Publish far more than the buffer without reading: the oldest
	// events are dropped, the solver never blocks, and the terminal
	// event still arrives.
	for i := 1; i <= subBuffer*5; i++ {
		pub(Snapshot{Nodes: int64(i)})
	}
	done()

	var got []ProgressEvent
	for ev := range ch {
		got = append(got, ev)
	}
	if len(got) > subBuffer {
		t.Fatalf("slow subscriber got %d events, buffer is %d", len(got), subBuffer)
	}
	last := got[len(got)-1]
	if !last.Done || last.Snapshot.Nodes != subBuffer*5 {
		t.Fatalf("terminal event lost under coalescing: %+v", last)
	}
}

func TestBrokerBoundedEviction(t *testing.T) {
	b := NewProgressBroker(2)
	_, done1 := b.Open("old")
	done1() // finished: preferred eviction victim
	b.Open("live")
	b.Open("new") // exceeds cap of 2: evicts "old"

	if _, _, ok := b.Subscribe("old"); ok {
		t.Error("finished stream not evicted at cap")
	}
	if _, _, ok := b.Subscribe("live"); !ok {
		t.Error("live stream evicted while a finished one existed")
	}
	if _, _, ok := b.Subscribe("new"); !ok {
		t.Error("new stream missing")
	}

	// With only live streams, the oldest live one goes.
	b2 := NewProgressBroker(1)
	b2.Open("a")
	b2.Open("b")
	if _, _, ok := b2.Subscribe("a"); ok {
		t.Error("oldest live stream not evicted")
	}
	if _, _, ok := b2.Subscribe("b"); !ok {
		t.Error("newest stream missing")
	}
}

func TestBrokerUnknownStream(t *testing.T) {
	b := NewProgressBroker(4)
	if _, _, ok := b.Subscribe("nope"); ok {
		t.Error("Subscribe succeeded on unknown stream")
	}
}

func TestBrokerNilSafe(t *testing.T) {
	var b *ProgressBroker
	pub, done := b.Open("x")
	if pub != nil {
		t.Error("nil broker returned a publish hook")
	}
	done() // must not panic
	if _, _, ok := b.Subscribe("x"); ok {
		t.Error("nil broker has streams")
	}
}

func TestBrokerCancelStopsDelivery(t *testing.T) {
	b := NewProgressBroker(4)
	pub, done := b.Open("r1")
	ch, cancel, _ := b.Subscribe("r1")
	cancel()
	cancel() // idempotent
	pub(Snapshot{Nodes: 1})
	done()
	// Channel was closed by cancel; no events beyond what was buffered.
	for ev := range ch {
		t.Fatalf("event after cancel: %+v", ev)
	}
}

// recvEvent reads one event with a timeout so broker bugs fail fast
// instead of hanging the test binary.
func recvEvent(t *testing.T, ch <-chan ProgressEvent) ProgressEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("channel closed while expecting an event")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for progress event")
	}
	panic("unreachable")
}
