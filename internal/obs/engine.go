package obs

// Metric names published by the solving layer (internal/solver) for the
// packing-class engine. Counters accumulate across OPP decisions;
// live gauges are refreshed on the engine's node cadence while a search
// is running.
const (
	// MetricSearchNodes counts branch-and-bound nodes entered, summed
	// over all OPP decisions of a run. Deterministic per instance —
	// cmd/fpgabench diffs it exactly against its committed baseline.
	MetricSearchNodes = "search.nodes"
	// MetricSearchPropagations counts constraint-propagation events
	// processed (Stats.Propagations), summed over all OPP decisions.
	MetricSearchPropagations = "search.propagations"
	// MetricSearchLiveNodes gauges the node count of the search in
	// flight, updated once per 256 nodes.
	MetricSearchLiveNodes = "search.live_nodes"
	// MetricSearchLiveDepth gauges the deepest level reached by the
	// search in flight.
	MetricSearchLiveDepth = "search.live_depth"
)
