package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets is the histogram bucket layout used when a
// histogram is created without an explicit one: log-scaled upper bounds
// in seconds from 100µs to 100s, chosen so that sub-millisecond cache
// lookups, millisecond heuristic solves and multi-second exact searches
// all land in well-separated buckets. The implicit final bucket is
// +Inf.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50, 100,
}

// Histogram is a lock-free fixed-bucket histogram for latency-style
// observations. Bucket upper bounds are set at construction (log-scaled
// by default) and never change, so Observe is a linear scan over a
// handful of float comparisons plus two atomic adds — cheap enough for
// per-request recording on a serving hot path.
//
// Counts follow the Prometheus histogram convention: bucket i counts
// observations ≤ bounds[i] (non-cumulative internally; the exporters
// accumulate), with one extra overflow bucket for +Inf. The sum is kept
// in integer nanoseconds, so concurrent Observe calls need no
// compare-and-swap loop; the drift against a true float sum is below
// one nanosecond per observation.
type Histogram struct {
	bounds []float64      // sorted upper bounds, in seconds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Int64
	sumNS  atomic.Int64
}

// newHistogram builds a histogram over the given sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// nopHistogram absorbs writes from nil registries. It is shared and
// never read.
var nopHistogram = newHistogram(DefaultLatencyBuckets)

// Observe records one observation, in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(seconds * 1e9))
}

// ObserveSince records the time elapsed since start — the idiomatic
// call at the end of a request or stage.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values, in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNS.Load()) / 1e9 }

// HistogramSnapshot is a point-in-time copy of a histogram: the bucket
// upper bounds (seconds), the cumulative count at or below each bound
// (Prometheus _bucket semantics; the final entry, for +Inf, equals
// Count), the total count and the sum of observations in seconds.
type HistogramSnapshot struct {
	// Bounds holds the bucket upper bounds in seconds.
	Bounds []float64
	// Cumulative[i] counts observations ≤ Bounds[i]; the final extra
	// entry counts everything (the +Inf bucket).
	Cumulative []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observations, in seconds.
	Sum float64
}

// Snapshot copies the current histogram state. The per-bucket loads are
// individually atomic; a snapshot taken while observations race may be
// off by in-flight increments, never torn.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.counts)),
		Count:      h.count.Load(),
		Sum:        h.Sum(),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. Returns 0 with no
// observations; observations beyond the last finite bound clamp to it.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var lo float64 // lower edge of the current bucket
	var below int64
	for i, ub := range s.Bounds {
		c := s.Cumulative[i]
		if float64(c) >= rank {
			in := c - below // observations inside this bucket
			if in == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-float64(below))/float64(in)
		}
		below = c
		lo = ub
	}
	// Target rank sits in the +Inf bucket: the finite bounds are all we
	// know, so clamp to the largest one.
	if n := len(s.Bounds); n > 0 {
		return s.Bounds[n-1]
	}
	return 0
}
