package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req.latency")
	h.Observe(0.0002) // bucket ≤ 0.00025
	h.Observe(0.003)  // bucket ≤ 0.005
	h.Observe(0.003)
	h.Observe(2.0)   // bucket ≤ 2.5
	h.Observe(500.0) // +Inf overflow

	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.0002+0.003+0.003+2.0+500.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %g, want %g", got, want)
	}

	s := h.Snapshot()
	if len(s.Cumulative) != len(s.Bounds)+1 {
		t.Fatalf("cumulative len %d, bounds len %d", len(s.Cumulative), len(s.Bounds))
	}
	// Cumulative counts are monotone and end at Count.
	prev := int64(0)
	for i, c := range s.Cumulative {
		if c < prev {
			t.Fatalf("cumulative[%d] = %d < previous %d", i, c, prev)
		}
		prev = c
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Errorf("final cumulative %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
	// The 0.0002 observation must land at or below the 0.00025 bound.
	for i, ub := range s.Bounds {
		if ub >= 0.00025 {
			if s.Cumulative[i] < 1 {
				t.Errorf("cumulative at bound %g = %d, want >= 1", ub, s.Cumulative[i])
			}
			break
		}
		if s.Cumulative[i] != 0 {
			t.Errorf("cumulative at bound %g = %d, want 0", ub, s.Cumulative[i])
		}
	}
}

func TestHistogramExactBoundaryInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: counts as ≤ 1 (Prometheus le semantics)
	s := h.Snapshot()
	if s.Cumulative[0] != 1 {
		t.Errorf("observation on the bound fell in bucket %v", s.Cumulative)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3, 4})
	// 100 uniform observations in (0,1]: p50 should interpolate near 0.5.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 0.01 {
		t.Errorf("p50 = %g, want ~0.5", got)
	}
	if got := s.Quantile(1.0); got != 1.0 {
		t.Errorf("p100 = %g, want 1.0", got)
	}

	// Overflow observations clamp to the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want clamp to 2", got)
	}

	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets)
	h.ObserveSince(time.Now().Add(-50 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if s := h.Sum(); s < 0.05 || s > 5 {
		t.Errorf("Sum = %g, want ~0.05", s)
	}
}

func TestHistogramNilRegistry(t *testing.T) {
	var r *Registry
	r.Histogram("x").Observe(1) // must not panic
	r.Histogram("x").ObserveSince(time.Now())
	if len(r.SnapshotHistograms()) != 0 {
		t.Error("nil registry histogram snapshot not empty")
	}
}

func TestHistogramRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while snapshots are taken. Run under -race in CI.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	var wg sync.WaitGroup
	const workers, each = 8, 2000
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i%7) / 100)
				if i%500 == 0 {
					_ = h.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Errorf("Count = %d, want %d", h.Count(), workers*each)
	}
	s := h.Snapshot()
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Errorf("cumulative tail %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
}
