package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight expvar-style metrics registry: named
// monotone counters and settable gauges, all atomic, exported as a
// JSON object over HTTP for long-running processes.
//
// A nil *Registry is valid: Counter and Gauge return shared no-op
// sinks, so instrumentation call sites need no guards. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative d decrements) and returns the
// new value — the up/down counterpart of Counter.Add for tracking
// occupancy-style quantities (in-flight requests, queue depth).
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// nopCounter and nopGauge absorb writes from nil registries. They are
// shared and never read.
var (
	nopCounter = &Counter{}
	nopGauge   = &Gauge{}
)

// Counter returns the counter with the given name, creating it on
// first use. On a nil registry it returns a shared discard counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nopCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use. On a nil registry it returns a shared discard gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nopGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns the current value of every counter and gauge, keyed
// by name. Counters and gauges share the namespace.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// ServeHTTP writes the registry as a JSON object with sorted keys, so
// a Registry can be mounted directly as an HTTP handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, giving a stable export.
	_ = enc.Encode(r.Snapshot())
}
