package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight expvar-style metrics registry: named
// monotone counters, settable gauges and fixed-bucket latency
// histograms, all atomic, exported as a JSON object (the default) or
// Prometheus text exposition over HTTP for long-running processes.
//
// A nil *Registry is valid: Counter, Gauge and Histogram return shared
// no-op sinks, so instrumentation call sites need no guards. All
// methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative d decrements) and returns the
// new value — the up/down counterpart of Counter.Add for tracking
// occupancy-style quantities (in-flight requests, queue depth).
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// nopCounter and nopGauge absorb writes from nil registries. They are
// shared and never read.
var (
	nopCounter = &Counter{}
	nopGauge   = &Gauge{}
)

// Counter returns the counter with the given name, creating it on
// first use. On a nil registry it returns a shared discard counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nopCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use. On a nil registry it returns a shared discard gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nopGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the latency histogram with the given name (default
// log-scaled buckets, see DefaultLatencyBuckets), creating it on first
// use. On a nil registry it returns a shared discard histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nopHistogram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram(DefaultLatencyBuckets)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns the current value of every counter and gauge, keyed
// by name. Counters and gauges share the namespace; on a name collision
// the counter wins deterministically (historically the map iterated
// second silently overwrote the other kind, so the winner depended on
// range order). Histograms are not part of the scalar snapshot — see
// SnapshotHistograms.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	// Counters written second: a same-named counter deterministically
	// shadows the gauge regardless of map iteration order.
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// SnapshotHistograms returns a point-in-time copy of every histogram,
// keyed by name.
func (r *Registry) SnapshotHistograms() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// JSONSnapshot flattens the whole registry — counters, gauges and
// histogram summaries — into one JSON-encodable map of numbers.
// Histograms contribute derived scalar series (<name>.count,
// <name>.sum_ms, <name>.p50_ms, <name>.p99_ms), so existing consumers
// that decode /metrics as a flat map of numbers keep working.
func (r *Registry) JSONSnapshot() map[string]any {
	out := make(map[string]any)
	for name, v := range r.Snapshot() {
		out[name] = v
	}
	for name, h := range r.SnapshotHistograms() {
		out[name+".count"] = h.Count
		out[name+".sum_ms"] = h.Sum * 1e3
		out[name+".p50_ms"] = h.Quantile(0.50) * 1e3
		out[name+".p99_ms"] = h.Quantile(0.99) * 1e3
	}
	return out
}

// ServeHTTP exports the registry. The default is a JSON object with
// sorted keys (counters, gauges and flattened histogram summaries, see
// JSONSnapshot); with ?format=prom, or when the Accept header prefers
// text/plain, the Prometheus text exposition format is written instead
// (see WritePrometheus), so the same endpoint serves dashboards and a
// stock Prometheus scraper.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if wantsPrometheus(req) {
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = r.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, giving a stable export.
	_ = enc.Encode(r.JSONSnapshot())
}
