package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("opp.calls").Inc()
	r.Counter("opp.calls").Add(2)
	r.Gauge("incumbent").Set(17)
	r.Gauge("incumbent").Set(13)
	snap := r.Snapshot()
	if snap["opp.calls"] != 3 {
		t.Errorf("opp.calls = %d, want 3", snap["opp.calls"])
	}
	if snap["incumbent"] != 13 {
		t.Errorf("incumbent = %d, want 13", snap["incumbent"])
	}
	// Same name returns the same counter.
	if r.Counter("opp.calls") != r.Counter("opp.calls") {
		t.Error("Counter not idempotent")
	}
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge(MetricInflight)
	if got := g.Add(2); got != 2 {
		t.Errorf("Add(2) = %d, want 2", got)
	}
	if got := g.Add(-1); got != 1 {
		t.Errorf("Add(-1) = %d, want 1", got)
	}
	if g.Value() != 1 {
		t.Errorf("Value = %d, want 1", g.Value())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc() // must not panic
	r.Gauge("y").Set(5)
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestRegistryConcurrent hammers the registry from many goroutines
// while snapshots are taken — the scenario of a Pareto sweep running
// OPP calls in parallel. Run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 16, 1000
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("nodes").Inc()
				r.Counter("opp.calls").Add(1)
				r.Gauge("depth").Set(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("nodes").Value(); got != workers*each {
		t.Errorf("nodes = %d, want %d", got, workers*each)
	}
	if got := r.Counter("opp.calls").Value(); got != workers*each {
		t.Errorf("opp.calls = %d, want %d", got, workers*each)
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("opp.calls").Add(7)
	r.Gauge("incumbent").Set(32)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON %q: %v", rec.Body.String(), err)
	}
	if got["opp.calls"] != 7 || got["incumbent"] != 32 {
		t.Errorf("export = %v", got)
	}
}
