// Package obs is the observability layer of the solver stack: live
// progress snapshots from the branch-and-bound engine, a structured
// JSONL event tracer for offline replay and analysis of whole
// optimization runs, and a lightweight expvar-style metrics registry
// for long-running processes.
//
// The package is dependency-free (standard library only) and sits
// below every other internal package: core invokes the progress hook,
// solver emits trace events and bumps metrics, and cmd/fpgaplace wires
// all three to flags. All entry points are nil-safe — a nil *Tracer or
// nil *Registry turns the corresponding instrumentation into no-ops,
// so call sites need no guards and the untraced hot path stays free of
// branches beyond a single nil check.
package obs

import "time"

// Phase names the stage of the three-stage framework (Section 3.1 of
// the paper) a snapshot or trace event originates from.
const (
	// PhaseBounds is stage 1: fast lower bounds trying to disprove
	// feasibility.
	PhaseBounds = "bounds"
	// PhaseHeuristic is stage 2: the greedy placer trying to prove
	// feasibility.
	PhaseHeuristic = "heuristic"
	// PhaseSearch is stage 3: the exact branch-and-bound over packing
	// classes.
	PhaseSearch = "search"
	// PhaseAnneal is the randomized annealing placer: stage 2½ of the
	// Anneal strategy and the incumbent producer of anytime runs.
	PhaseAnneal = "anneal"
)

// Snapshot is a point-in-time view of search effort, delivered to a
// ProgressFunc on the engine's node-count cadence (every 256 nodes,
// piggybacking on the deadline poll) and at stage transitions.
type Snapshot struct {
	// Phase is the stage the solver is in ("bounds", "heuristic",
	// "search"). Stage-transition snapshots carry zero counters.
	Phase string
	// Nodes is the number of branch-and-bound nodes expanded so far in
	// the current search.
	Nodes int64
	// NodesPerSec is the average expansion rate since the search began.
	NodesPerSec float64
	// MaxDepth is the deepest tree level reached.
	MaxDepth int
	// Elapsed is the wall-clock time since the search began.
	Elapsed time.Duration
	// Conflicts holds the per-rule conflict counters keyed by rule name
	// ("c3", "size", "clique", "area", "c4", "hole", "orient"). The map
	// is freshly built per snapshot; callbacks may retain it.
	Conflicts map[string]int64

	// Anytime marks snapshots of an anytime run that carry incumbent
	// state in the three fields below; when false those fields are
	// meaningless (zero).
	Anytime bool
	// BestMakespan is the best-known incumbent makespan (the upper
	// bound); 0 while no witness exists yet.
	BestMakespan int
	// LowerBound is the best proven makespan lower bound so far.
	LowerBound int
	// Gap is the relative optimality gap (BestMakespan −
	// LowerBound)/BestMakespan: non-increasing over a run, exactly 0
	// once the incumbent is proven optimal.
	Gap float64
}

// TotalConflicts sums the per-rule conflict counters.
func (s Snapshot) TotalConflicts() int64 {
	var t int64
	for _, v := range s.Conflicts {
		t += v
	}
	return t
}

// ProgressFunc receives search progress snapshots. Implementations
// must be fast — the engine invokes them from the hot search loop —
// and safe for concurrent use if the same hook is shared by solver
// calls running in multiple goroutines.
type ProgressFunc func(Snapshot)
