package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// NewPrinter returns a ProgressFunc that renders snapshots as a live
// single-line ticker on w (typically stderr): the line is rewritten in
// place with carriage returns, at most once per interval. Snapshots
// that change the phase always print immediately. The returned hook is
// safe for concurrent use.
//
// Callers that enable the ticker should emit a final "\n" to w once
// the solve returns, to move past the ticker line.
func NewPrinter(w io.Writer, interval time.Duration) ProgressFunc {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	p := &printer{w: w, interval: interval}
	return p.observe
}

type printer struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	last     time.Time
	phase    string
}

func (p *printer) observe(s Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if s.Phase == p.phase && now.Sub(p.last) < p.interval {
		return
	}
	p.phase = s.Phase
	p.last = now
	// Fixed-width fields so successive lines fully overwrite each other.
	fmt.Fprintf(p.w, "\r[%-9s] nodes %-12d depth %-4d %10.0f nodes/s  conflicts %-10d %8s",
		s.Phase, s.Nodes, s.MaxDepth, s.NodesPerSec, s.TotalConflicts(),
		s.Elapsed.Round(time.Millisecond))
}
