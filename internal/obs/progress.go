package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Printer renders progress snapshots as a live single-line ticker: the
// line is rewritten in place with carriage returns, at most once per
// interval. Snapshots that change the phase always print immediately,
// and Flush forces the most recent snapshot out regardless of the
// throttle, so the terminal state of a solve is never lost to the rate
// limit. All methods are safe for concurrent use.
type Printer struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	now      func() time.Time
	last     time.Time
	phase    string
	pending  Snapshot // most recent snapshot, rendered or not
	seen     bool     // at least one snapshot arrived
	flushed  bool     // pending has been rendered
}

// NewPrinter returns a ProgressFunc that renders snapshots on w
// (typically stderr) through a new Printer with the given interval.
// Callers that need the final snapshot flushed keep the *Printer via
// NewProgressTicker instead and call Flush once the solve returns.
func NewPrinter(w io.Writer, interval time.Duration) ProgressFunc {
	return NewProgressTicker(w, interval).Observe
}

// NewProgressTicker returns a Printer writing to w, rendering at most
// once per interval (default 200ms when interval <= 0).
func NewProgressTicker(w io.Writer, interval time.Duration) *Printer {
	return newPrinterWithClock(w, interval, time.Now)
}

// newPrinterWithClock is NewProgressTicker with an injectable clock,
// for deterministic throttle tests.
func newPrinterWithClock(w io.Writer, interval time.Duration, now func() time.Time) *Printer {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	return &Printer{w: w, interval: interval, now: now}
}

// Observe is the ProgressFunc of the printer: it records s as the
// latest snapshot and renders it unless a same-phase render happened
// less than one interval ago.
func (p *Printer) Observe(s Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = s
	p.seen = true
	now := p.now()
	if s.Phase == p.phase && !p.last.IsZero() && now.Sub(p.last) < p.interval {
		p.flushed = false
		return
	}
	p.phase = s.Phase
	p.last = now
	p.render(s)
}

// Flush renders the most recent snapshot if the throttle suppressed it,
// guaranteeing the final state of a solve reaches the terminal. It is a
// no-op when nothing was suppressed or no snapshot ever arrived.
func (p *Printer) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.seen || p.flushed {
		return
	}
	p.render(p.pending)
}

// render writes one ticker line. Callers hold p.mu.
func (p *Printer) render(s Snapshot) {
	p.flushed = true
	// Fixed-width fields so successive lines fully overwrite each other.
	fmt.Fprintf(p.w, "\r[%-9s] nodes %-12d depth %-4d %10.0f nodes/s  conflicts %-10d %8s",
		s.Phase, s.Nodes, s.MaxDepth, s.NodesPerSec, s.TotalConflicts(),
		s.Elapsed.Round(time.Millisecond))
}
