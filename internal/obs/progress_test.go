package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPrinterThrottlesAndPrintsPhaseChanges(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf, time.Hour) // throttle everything but phase changes
	p(Snapshot{Phase: PhaseBounds})
	p(Snapshot{Phase: PhaseSearch, Nodes: 512, MaxDepth: 9,
		NodesPerSec: 1000, Elapsed: time.Second,
		Conflicts: map[string]int64{"c4": 2, "clique": 3}})
	p(Snapshot{Phase: PhaseSearch, Nodes: 1024}) // throttled: same phase, too soon
	out := buf.String()
	if got := strings.Count(out, "\r"); got != 2 {
		t.Fatalf("printed %d lines, want 2:\n%q", got, out)
	}
	if !strings.Contains(out, "bounds") || !strings.Contains(out, "search") {
		t.Errorf("missing phases in %q", out)
	}
	if !strings.Contains(out, "512") || !strings.Contains(out, "conflicts 5") {
		t.Errorf("missing counters in %q", out)
	}
	if strings.Contains(out, "1024") {
		t.Errorf("throttled snapshot leaked into %q", out)
	}
}

// TestPrinterThrottleWithClock drives the throttle with an injected
// clock: at most one render per interval, same-phase snapshots inside
// the window are suppressed, and the first snapshot past the window
// renders again.
func TestPrinterThrottleWithClock(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(0, 0)
	p := newPrinterWithClock(&buf, time.Second, func() time.Time { return now })

	p.Observe(Snapshot{Phase: PhaseSearch, Nodes: 1}) // renders: first snapshot
	now = now.Add(300 * time.Millisecond)
	p.Observe(Snapshot{Phase: PhaseSearch, Nodes: 2}) // suppressed: inside interval
	now = now.Add(300 * time.Millisecond)
	p.Observe(Snapshot{Phase: PhaseSearch, Nodes: 3}) // suppressed
	now = now.Add(500 * time.Millisecond)             // 1.1s since last render
	p.Observe(Snapshot{Phase: PhaseSearch, Nodes: 4}) // renders

	out := buf.String()
	if got := strings.Count(out, "\r"); got != 2 {
		t.Fatalf("rendered %d lines in one interval + one, want 2:\n%q", got, out)
	}
	if !strings.Contains(out, "nodes 1") || !strings.Contains(out, "nodes 4") {
		t.Errorf("wrong snapshots rendered: %q", out)
	}
	if strings.Contains(out, "nodes 2") || strings.Contains(out, "nodes 3") {
		t.Errorf("throttled snapshot leaked: %q", out)
	}
}

// TestPrinterFlush asserts the final snapshot is always recoverable:
// when the throttle suppressed the last Observe, Flush renders it; when
// the last Observe already rendered, Flush adds nothing.
func TestPrinterFlush(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(0, 0)
	p := newPrinterWithClock(&buf, time.Hour, func() time.Time { return now })

	p.Observe(Snapshot{Phase: PhaseSearch, Nodes: 10}) // renders
	p.Observe(Snapshot{Phase: PhaseSearch, Nodes: 99}) // suppressed: the final state
	p.Flush()
	out := buf.String()
	if !strings.Contains(out, "nodes 99") {
		t.Fatalf("final snapshot not flushed: %q", out)
	}
	if got := strings.Count(out, "\r"); got != 2 {
		t.Fatalf("rendered %d lines, want 2: %q", got, out)
	}

	p.Flush() // nothing pending: no extra line
	if got := strings.Count(buf.String(), "\r"); got != 2 {
		t.Errorf("idle Flush rendered a line: %q", buf.String())
	}

	// Flush on a printer that never observed anything is silent.
	var empty bytes.Buffer
	newPrinterWithClock(&empty, time.Second, func() time.Time { return now }).Flush()
	if empty.Len() != 0 {
		t.Errorf("empty printer flushed %q", empty.String())
	}
}

func TestSnapshotTotalConflicts(t *testing.T) {
	s := Snapshot{Conflicts: map[string]int64{"c3": 1, "hole": 4}}
	if s.TotalConflicts() != 5 {
		t.Errorf("TotalConflicts = %d", s.TotalConflicts())
	}
	if (Snapshot{}).TotalConflicts() != 0 {
		t.Error("empty snapshot has conflicts")
	}
}
