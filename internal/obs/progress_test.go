package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPrinterThrottlesAndPrintsPhaseChanges(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf, time.Hour) // throttle everything but phase changes
	p(Snapshot{Phase: PhaseBounds})
	p(Snapshot{Phase: PhaseSearch, Nodes: 512, MaxDepth: 9,
		NodesPerSec: 1000, Elapsed: time.Second,
		Conflicts: map[string]int64{"c4": 2, "clique": 3}})
	p(Snapshot{Phase: PhaseSearch, Nodes: 1024}) // throttled: same phase, too soon
	out := buf.String()
	if got := strings.Count(out, "\r"); got != 2 {
		t.Fatalf("printed %d lines, want 2:\n%q", got, out)
	}
	if !strings.Contains(out, "bounds") || !strings.Contains(out, "search") {
		t.Errorf("missing phases in %q", out)
	}
	if !strings.Contains(out, "512") || !strings.Contains(out, "conflicts 5") {
		t.Errorf("missing counters in %q", out)
	}
	if strings.Contains(out, "1024") {
		t.Errorf("throttled snapshot leaked into %q", out)
	}
}

func TestSnapshotTotalConflicts(t *testing.T) {
	s := Snapshot{Conflicts: map[string]int64{"c3": 1, "hole": 4}}
	if s.TotalConflicts() != 5 {
		t.Errorf("TotalConflicts = %d", s.TotalConflicts())
	}
	if (Snapshot{}).TotalConflicts() != 0 {
		t.Error("empty snapshot has conflicts")
	}
}
