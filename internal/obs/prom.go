package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format version this package writes.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus decides the /metrics representation: the explicit
// ?format=prom query parameter wins, otherwise an Accept header that
// asks for text/plain (what a stock Prometheus scraper sends) selects
// the exposition format. Everything else stays JSON.
func wantsPrometheus(req *http.Request) bool {
	if req == nil {
		return false
	}
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	return strings.Contains(req.Header.Get("Accept"), "text/plain")
}

// promName sanitizes a dot-separated metric name into the Prometheus
// identifier charset [a-zA-Z0-9_:]: every other rune becomes '_', and
// a leading digit gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a sample value the way Prometheus expects:
// shortest-round-trip decimal, with +Inf for the overflow bucket bound.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every counter, gauge and histogram in the
// Prometheus text exposition format (version 0.0.4): one # TYPE line
// per family, counter/gauge samples verbatim, histograms as cumulative
// <name>_bucket{le="…"} series (ending in le="+Inf") plus <name>_sum
// and <name>_count. Dots in registry names become underscores
// (server.cache.hits → server_cache_hits). Families are emitted in
// sorted order, so the export of a quiesced process is byte-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	scalars := r.Snapshot()
	hists := r.SnapshotHistograms()

	// Split the scalar snapshot back into counters and gauges for the
	// TYPE declarations. Snapshot already resolved collisions in favor
	// of counters, so a name typed "counter" here carries that value.
	r.mu.Lock()
	kind := make(map[string]string, len(scalars))
	for name := range r.gauges {
		kind[name] = "gauge"
	}
	for name := range r.counters {
		kind[name] = "counter"
	}
	r.mu.Unlock()

	names := make([]string, 0, len(scalars))
	for name := range scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", pn, kind[name], pn, scalars[name]); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := hists[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for i, ub := range h.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(ub), h.Cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
