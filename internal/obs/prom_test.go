package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line: name, optional le label,
// value.
type promSample struct {
	name string
	le   string
	val  float64
}

// parseExposition is a minimal parser for the text exposition format:
// it validates the overall line shape (# TYPE declarations, then
// name[{le="…"}] value) and returns samples plus the declared family
// types. It fails the test on any malformed line, standing in for
// promtool without the dependency.
func parseExposition(t *testing.T, b []byte) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown family type in %q", line)
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		s := promSample{name: fields[0]}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			label := s.name[i:]
			s.name = s.name[:i]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("malformed label set in %q", line)
			}
			s.le = label[len(`{le="`) : len(label)-len(`"}`)]
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s.val = v
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func TestWritePrometheusFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests.solve").Add(7)
	r.Gauge("server.inflight").Set(2)
	h := r.Histogram("server.latency.solve")
	h.Observe(0.002)
	h.Observe(0.004)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, buf.Bytes())

	if types["server_requests_solve"] != "counter" {
		t.Errorf("counter family missing: %v", types)
	}
	if types["server_inflight"] != "gauge" {
		t.Errorf("gauge family missing: %v", types)
	}
	if types["server_latency_solve"] != "histogram" {
		t.Errorf("histogram family missing: %v", types)
	}

	byName := make(map[string]float64)
	var buckets []promSample
	for _, s := range samples {
		if s.le != "" {
			buckets = append(buckets, s)
			continue
		}
		byName[s.name] = s.val
	}
	if byName["server_requests_solve"] != 7 {
		t.Errorf("counter sample = %v", byName["server_requests_solve"])
	}
	if byName["server_inflight"] != 2 {
		t.Errorf("gauge sample = %v", byName["server_inflight"])
	}

	// Histogram round-trip invariants: _count equals the +Inf bucket and
	// the recorded observation count; _sum equals the histogram's sum;
	// bucket series are cumulative (monotone in le order as written).
	if got := byName["server_latency_solve_count"]; got != 3 {
		t.Errorf("_count = %v, want 3", got)
	}
	if got, want := byName["server_latency_solve_sum"], h.Sum(); got != want {
		t.Errorf("_sum = %v, want %v", got, want)
	}
	var lastVal float64
	var sawInf bool
	for _, b := range buckets {
		if b.name != "server_latency_solve_bucket" {
			t.Fatalf("unexpected bucket series %q", b.name)
		}
		if b.val < lastVal {
			t.Errorf("bucket series not cumulative: le=%s value %v after %v", b.le, b.val, lastVal)
		}
		lastVal = b.val
		if b.le == "+Inf" {
			sawInf = true
			if b.val != float64(h.Count()) {
				t.Errorf("+Inf bucket = %v, want %d", b.val, h.Count())
			}
		}
	}
	if !sawInf {
		t.Error("no +Inf bucket emitted")
	}
	if want := len(DefaultLatencyBuckets) + 1; len(buckets) != want {
		t.Errorf("bucket series count = %d, want %d", len(buckets), want)
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("c").Set(1)
	var first, second bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("export not byte-stable:\n%q\n%q", first.String(), second.String())
	}
	if ai, bi := strings.Index(first.String(), "\na 1"), strings.Index(first.String(), "\nb 1"); ai > bi {
		t.Errorf("families not sorted:\n%s", first.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.cache.hits": "server_cache_hits",
		"already_fine":      "already_fine",
		"with:colon":        "with:colon",
		"9lead":             "_9lead",
		"dash-y":            "dash_y",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWantsPrometheus(t *testing.T) {
	mk := func(url, accept string) bool {
		req := httptest.NewRequest("GET", url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		return wantsPrometheus(req)
	}
	if !mk("/metrics?format=prom", "") {
		t.Error("?format=prom not honored")
	}
	if !mk("/metrics?format=prometheus", "") {
		t.Error("?format=prometheus not honored")
	}
	if mk("/metrics?format=json", "text/plain") {
		t.Error("?format=json must beat the Accept header")
	}
	if !mk("/metrics", "text/plain;version=0.0.4") {
		t.Error("Accept: text/plain not honored")
	}
	if mk("/metrics", "application/json") {
		t.Error("JSON Accept header misrouted")
	}
	if mk("/metrics", "") {
		t.Error("default must stay JSON")
	}
}

func TestServeHTTPNegotiationAndHeaders(t *testing.T) {
	r := NewRegistry()
	r.Counter("opp.calls").Add(2)
	r.Histogram("lat").Observe(0.01)

	// Prometheus representation.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("prom Content-Type = %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("prom Cache-Control = %q", cc)
	}
	if !strings.Contains(rec.Body.String(), "lat_bucket{le=") {
		t.Errorf("no bucket series in %q", rec.Body.String())
	}

	// JSON stays the default and stays flat: every value a number, with
	// histogram summary scalars alongside the counters.
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("json Cache-Control = %q", cc)
	}
	var flat map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatalf("JSON export no longer flat numbers: %v\n%s", err, rec.Body.String())
	}
	if flat["opp.calls"] != 2 || flat["lat.count"] != 1 {
		t.Errorf("export = %v", flat)
	}
	if _, ok := flat["lat.p99_ms"]; !ok {
		t.Errorf("no p99 summary in %v", flat)
	}
}

// TestSnapshotCollisionDeterministic is the regression test for the
// historical Snapshot hazard where a gauge could silently overwrite a
// same-named counter depending on map iteration order: the counter must
// win, in the scalar snapshot and in both exports.
func TestSnapshotCollisionDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ { // 20 rounds to shake out map-order luck
		r := NewRegistry()
		r.Gauge("dup").Set(111)
		r.Counter("dup").Add(42)
		if got := r.Snapshot()["dup"]; got != 42 {
			t.Fatalf("round %d: snapshot[dup] = %d, want counter value 42", i, got)
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "# TYPE dup counter") || !strings.Contains(out, fmt.Sprintf("dup %d", 42)) {
			t.Fatalf("round %d: prom export lost the counter:\n%s", i, out)
		}
	}
}
