package obs

// Metric names published by the fpgad serving layer (internal/server)
// into its Registry, alongside the solver's own opp.* and search.*
// series. Naming convention: dot-separated, lower-case, counters are
// cumulative since process start, gauges are instantaneous.
const (
	// MetricRequests counts HTTP requests accepted by the API,
	// suffixed per endpoint as server.requests.<endpoint>
	// (e.g. server.requests.solve).
	MetricRequests = "server.requests"
	// MetricRejectedQueueFull counts requests rejected with 429
	// because the admission queue was at -queue-depth.
	MetricRejectedQueueFull = "server.rejected.queue_full"
	// MetricDeadlineExpired counts solves cut off by their request
	// deadline and answered 504 with a partial result.
	MetricDeadlineExpired = "server.deadline_expired"
	// MetricSolveErrors counts requests that failed with a solver or
	// decode error (4xx/5xx other than 429/504).
	MetricSolveErrors = "server.errors"

	// MetricInflight gauges the number of solves currently running.
	MetricInflight = "server.inflight"
	// MetricQueueDepth gauges the number of admitted requests waiting
	// for a solve slot.
	MetricQueueDepth = "server.queue.depth"

	// MetricCacheHits counts canonical-instance cache hits (responses
	// served without invoking the solver).
	MetricCacheHits = "server.cache.hits"
	// MetricCacheMisses counts cache lookups that fell through to the
	// solver.
	MetricCacheMisses = "server.cache.misses"
	// MetricCacheEvictions counts LRU evictions from the result cache.
	MetricCacheEvictions = "server.cache.evictions"
	// MetricCacheSize gauges the number of entries resident in the
	// result cache.
	MetricCacheSize = "server.cache.size"
	// MetricStrategyRequests is the prefix of the per-strategy request
	// counters: "server.strategy.staged", "server.strategy.portfolio".
	MetricStrategyRequests = "server.strategy"

	// MetricRequestLatency is the prefix of the per-endpoint
	// request-latency histograms: server.latency.solve,
	// server.latency.minimize_time, … (seconds, log-scaled buckets).
	MetricRequestLatency = "server.latency"
	// MetricQueueWait histograms the time admitted requests spent
	// waiting for a solve slot.
	MetricQueueWait = "server.queue.wait"
	// MetricCacheLookup histograms result-cache lookup latency
	// (hits and misses alike).
	MetricCacheLookup = "server.cache.lookup"
	// MetricStageLatency is the prefix of the per-stage solve-duration
	// histograms: server.stage.bounds, server.stage.heuristic,
	// server.stage.search.
	MetricStageLatency = "server.stage"
	// MetricProgressSubscribers gauges currently connected SSE progress
	// subscribers (GET /v1/progress/{id}).
	MetricProgressSubscribers = "server.progress.subscribers"

	// MetricSessionsActive gauges currently resident online placement
	// sessions (POST /v1/sessions).
	MetricSessionsActive = "server.session.active"
	// MetricSessionsCreated counts sessions created over the process
	// lifetime.
	MetricSessionsCreated = "server.session.created"
	// MetricSessionsExpired counts sessions evicted by TTL idleness.
	MetricSessionsExpired = "server.session.expired"
	// MetricSessionsDeleted counts sessions removed by client DELETE.
	MetricSessionsDeleted = "server.session.deleted"
	// MetricSessionAdmits is the prefix of the per-outcome admission
	// counters: server.session.admit.placed, server.session.admit.defrag,
	// server.session.admit.rejected, server.session.admit.unknown.
	MetricSessionAdmits = "server.session.admit"
	// MetricSessionDefragMoves counts modules relocated by session
	// defragmentation plans (admission-triggered and explicit alike).
	MetricSessionDefragMoves = "server.session.defrag.moves"
	// MetricSessionAdmitLatency histograms admission decision latency
	// (seconds, log-scaled buckets).
	MetricSessionAdmitLatency = "server.session.admit_latency"

	// MetricJobsSubmitted counts async jobs accepted by POST /v1/jobs.
	MetricJobsSubmitted = "server.jobs.submitted"
	// MetricJobsRejected is the prefix of the 429 job-submission
	// rejection counters: server.jobs.rejected.table_full (job table at
	// -max-jobs with no evictable terminal job) and
	// server.jobs.rejected.client_cap (submitter at -jobs-per-client
	// active jobs).
	MetricJobsRejected = "server.jobs.rejected"
	// MetricJobsState is the prefix of the per-state job-table gauges:
	// server.jobs.state.queued, .running, .done, .failed, .canceled —
	// how many jobs are currently resident in each lifecycle state
	// (terminal states drain via TTL eviction and client DELETE).
	MetricJobsState = "server.jobs.state"
	// MetricJobLatency histograms job end-to-end latency from
	// submission to terminal state (seconds, log-scaled buckets) —
	// queue wait included, which is what an async client experiences.
	MetricJobLatency = "server.jobs.latency"
	// MetricBatchEntries counts instances received inside
	// POST /v1/solve-batch bodies (one batch request counts N entries).
	MetricBatchEntries = "server.batch.entries"
	// MetricBatchDeduped counts batch entries answered by another
	// entry's solve because they shared the canonical cache key.
	MetricBatchDeduped = "server.batch.deduped"
)
