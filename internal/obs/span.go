package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Span is one node of a request-scoped trace tree: a named unit of work
// with a unique ID, a link to its parent, the request ID shared by the
// whole tree, attributes, and a start/duration. Spans are carried
// through context.Context (StartSpan / SpanFromContext) and emitted as
// "span" events through the Tracer when ended, so one JSONL trace
// reconstructs exactly where a slow request spent its time:
//
//	{"ev":"span","name":"request","span_id":"…","request_id":"…","dur_ms":…}
//	{"ev":"span","name":"opp","span_id":"…","parent_id":"…","request_id":"…",…}
//
// A nil *Span is valid and ignores every call, so instrumentation sites
// need no guards; StartSpan returns nil (and the context unchanged)
// when no tracer is reachable, keeping the untraced hot path free of
// allocations.
type Span struct {
	tr    *Tracer
	name  string
	id    string
	par   string // parent span ID, "" for a root span
	req   string // request ID shared by the tree
	start time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// spanKey and requestIDKey are the context keys for the active span and
// the request ID.
type spanKey struct{}
type requestIDKey struct{}

// NewRequestID returns a fresh 16-hex-digit request identifier. IDs are
// random, not sequential, so IDs from multiple replicas can be mixed in
// one log stream without collisions.
func NewRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// newSpanID returns a short unique span identifier.
func newSpanID() string {
	return fmt.Sprintf("%08x", rand.Uint32())
}

// ContextWithRequestID attaches a request ID to ctx; spans started
// under it inherit the ID as their tree's request_id.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID attached to ctx ("" if
// none): either set explicitly with ContextWithRequestID or inherited
// from an active span.
func RequestIDFromContext(ctx context.Context) string {
	if s, ok := ctx.Value(spanKey{}).(*Span); ok && s != nil {
		return s.req
	}
	if id, ok := ctx.Value(requestIDKey{}).(string); ok {
		return id
	}
	return ""
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name as a child of the span active in
// ctx (a root span if there is none) and returns a context carrying it.
// tr selects the tracer for a root span; child spans inherit their
// parent's tracer, so passing nil deep in the stack still traces when a
// caller higher up attached one. With no tracer reachable at all the
// original context and a nil span are returned — the disabled path
// costs one context lookup and nothing else.
//
// End the returned span exactly once; the "span" event is emitted at
// End time, carrying the final duration and attributes.
func StartSpan(ctx context.Context, tr *Tracer, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent != nil && tr == nil {
		tr = parent.tr
	}
	if tr == nil {
		return ctx, nil
	}
	s := &Span{
		tr:    tr,
		name:  name,
		id:    newSpanID(),
		start: time.Now(),
	}
	if parent != nil {
		s.par = parent.id
		s.req = parent.req
	} else if id, ok := ctx.Value(requestIDKey{}).(string); ok {
		s.req = id
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// ID returns the span's unique identifier ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// RequestID returns the request ID the span's tree belongs to.
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.req
}

// SetAttr attaches an attribute to the span; it is merged into the
// emitted "span" event. No-op on a nil span or after End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End closes the span and emits its "span" event with the final
// duration. Idempotent and nil-safe, so deferred Ends compose with
// early-exit paths that already ended the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	f := map[string]any{
		"name":    s.name,
		"span_id": s.id,
		"dur_ms":  float64(time.Since(s.start)) / float64(time.Millisecond),
	}
	if s.par != "" {
		f["parent_id"] = s.par
	}
	if s.req != "" {
		f["request_id"] = s.req
	}
	for k, v := range s.attrs {
		f[k] = v
	}
	s.mu.Unlock()
	s.tr.Emit("span", f)
}
