package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// decodeSpans parses JSONL trace output and returns the span events.
func decodeSpans(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var spans []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev["ev"] == "span" {
			spans = append(spans, ev)
		}
	}
	return spans
}

func TestSpanTreeConnected(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	ctx := ContextWithRequestID(context.Background(), "req-abc")
	ctx, root := StartSpan(ctx, tr, "request")
	root.SetAttr("endpoint", "solve")

	// Child inherits the tracer from its parent: nil tr deep in the stack.
	cctx, stage := StartSpan(ctx, nil, "stage")
	_, probe := StartSpan(cctx, nil, "probe")
	probe.End()
	stage.End()
	root.End()

	spans := decodeSpans(t, buf.Bytes())
	if len(spans) != 3 {
		t.Fatalf("got %d span events, want 3:\n%s", len(spans), buf.String())
	}
	byName := make(map[string]map[string]any)
	for _, s := range spans {
		byName[s["name"].(string)] = s
	}
	for _, name := range []string{"request", "stage", "probe"} {
		s := byName[name]
		if s == nil {
			t.Fatalf("missing span %q", name)
		}
		if s["request_id"] != "req-abc" {
			t.Errorf("span %q request_id = %v", name, s["request_id"])
		}
		if _, ok := s["dur_ms"].(float64); !ok {
			t.Errorf("span %q has no duration", name)
		}
	}
	if byName["stage"]["parent_id"] != byName["request"]["span_id"] {
		t.Errorf("stage not parented to request: %v", byName["stage"])
	}
	if byName["probe"]["parent_id"] != byName["stage"]["span_id"] {
		t.Errorf("probe not parented to stage: %v", byName["probe"])
	}
	if byName["request"]["parent_id"] != nil {
		t.Errorf("root has a parent: %v", byName["request"])
	}
	if byName["request"]["endpoint"] != "solve" {
		t.Errorf("attr lost: %v", byName["request"])
	}
}

func TestStartSpanNoTracerIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, nil, "x")
	if s != nil {
		t.Fatal("got a span with no tracer reachable")
	}
	if ctx2 != ctx {
		t.Error("context rewrapped on the disabled path")
	}
	// All methods nil-safe.
	s.SetAttr("k", 1)
	s.End()
	s.End()
	if s.ID() != "" || s.RequestID() != "" {
		t.Error("nil span leaked identity")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	_, s := StartSpan(context.Background(), tr, "once")
	s.End()
	s.End()
	s.End()
	if got := strings.Count(buf.String(), `"ev":"span"`); got != 1 {
		t.Errorf("End emitted %d events, want 1:\n%s", got, buf.String())
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ctx := context.Background()
	if RequestIDFromContext(ctx) != "" {
		t.Error("empty context has a request ID")
	}
	ctx = ContextWithRequestID(ctx, "r1")
	if RequestIDFromContext(ctx) != "r1" {
		t.Error("request ID lost")
	}
	var buf bytes.Buffer
	ctx, s := StartSpan(ctx, NewTracer(&buf), "root")
	if s.RequestID() != "r1" {
		t.Errorf("span request ID = %q", s.RequestID())
	}
	if RequestIDFromContext(ctx) != "r1" {
		t.Error("request ID not readable through the span")
	}
	if SpanFromContext(ctx) != s {
		t.Error("SpanFromContext mismatch")
	}
}

func TestNewRequestIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("request ID %q not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}
