package obs

// Metric names published by the strategy layer (internal/strategy)
// into the run's Registry, alongside the solver's opp.* and search.*
// series. The stage-2 memo counters make heuristic reuse observable:
// in a sweep, computes stays at one per chip footprint while hits
// grows with the probes — the historical pipeline recomputed the
// greedy placement on every probe instead.
const (
	// MetricStrategyHeurComputes counts stage-2 minimum-makespan
	// computations actually performed (incumbent-store memo misses).
	MetricStrategyHeurComputes = "strategy.heur.computes"
	// MetricStrategyHeurHits counts stage-2 lookups answered from the
	// incumbent store's memo without recomputing the heuristic.
	MetricStrategyHeurHits = "strategy.heur.hits"
	// MetricStrategyIncumbentHits counts probes answered outright by a
	// dominating stored witness (Portfolio mode; zero search nodes).
	MetricStrategyIncumbentHits = "strategy.incumbent.hits"
)
