package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Tracer emits structured search events as JSON Lines: one JSON object
// per event, with two reserved keys — "ev" (the event type) and "t"
// (seconds since the first event, microsecond precision) — merged with
// the caller's fields. Keys are emitted in sorted order (encoding/json
// map semantics), so traces of deterministic runs are byte-stable
// modulo timing fields.
//
// A nil *Tracer is valid and discards every event, so instrumentation
// call sites need no guards. All methods are safe for concurrent use;
// events from parallel solver calls interleave line-atomically.
//
// Event types emitted by the solver stack:
//
//	solve_start / solve_end   an optimization run (spp, bmp, pareto, …)
//	opp_start / opp_end       one OPP decision call
//	stage                     a stage transition inside an OPP call
//	lower_bound               the stage-1 bound report of a run
//	probe                     one probe of an optimization loop
//	incumbent                 a new best value with a witness
//	pareto_point              one point of the trade-off curve
//	progress                  a periodic engine snapshot (optional)
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	now    func() time.Time
	start  time.Time
	events int64
	err    error
}

// NewTracer returns a Tracer writing JSONL events to w. The caller
// retains ownership of w and closes it after the last Emit.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// NewTracerWithClock is NewTracer with an injectable clock, for
// deterministic tests.
func NewTracerWithClock(w io.Writer, now func() time.Time) *Tracer {
	return &Tracer{w: w, now: now}
}

// Emit writes one event. The reserved keys "ev" and "t" override any
// homonymous caller fields. Emit is a no-op on a nil Tracer and after
// the first write error.
func (t *Tracer) Emit(ev string, fields map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	now := t.now()
	if t.start.IsZero() {
		t.start = now
	}
	obj := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		obj[k] = v
	}
	obj["ev"] = ev
	obj["t"] = math.Round(now.Sub(t.start).Seconds()*1e6) / 1e6
	b, err := json.Marshal(obj)
	if err != nil {
		t.err = fmt.Errorf("obs: marshal %s event: %w", ev, err)
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = fmt.Errorf("obs: write %s event: %w", ev, err)
		return
	}
	t.events++
}

// Events returns the number of events successfully written.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write or marshal error, if any. Once an error
// occurs the tracer drops all further events.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
