package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerGolden pins the exact JSONL bytes for a fixed clock: one
// object per line, sorted keys, reserved "ev"/"t" fields, microsecond
// time precision relative to the first event.
func TestTracerGolden(t *testing.T) {
	var buf bytes.Buffer
	base := time.Unix(1000, 0)
	tick := 0
	tr := NewTracerWithClock(&buf, func() time.Time {
		now := base.Add(time.Duration(tick) * 1500 * time.Microsecond)
		tick++
		return now
	})

	tr.Emit("solve_start", map[string]any{"mode": "spp", "instance": "de", "W": 17, "H": 17})
	tr.Emit("probe", map[string]any{"T": 13, "outcome": "feasible"})
	tr.Emit("solve_end", map[string]any{"decision": "feasible", "value": 13})

	want := strings.Join([]string{
		`{"H":17,"W":17,"ev":"solve_start","instance":"de","mode":"spp","t":0}`,
		`{"T":13,"ev":"probe","outcome":"feasible","t":0.0015}`,
		`{"decision":"feasible","ev":"solve_end","t":0.003,"value":13}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("trace mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	if tr.Events() != 3 {
		t.Errorf("Events() = %d, want 3", tr.Events())
	}
	if tr.Err() != nil {
		t.Errorf("Err() = %v", tr.Err())
	}
}

func TestTracerReservedKeysWin(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracerWithClock(&buf, func() time.Time { return time.Unix(0, 0) })
	tr.Emit("real", map[string]any{"ev": "fake", "t": 99})
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["ev"] != "real" || obj["t"] != float64(0) {
		t.Errorf("reserved keys overridden: %v", obj)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// TestTracerStopsAfterError: the first write error latches; later
// events are dropped rather than interleaving partial lines.
func TestTracerStopsAfterError(t *testing.T) {
	tr := NewTracer(&failWriter{n: 1})
	tr.Emit("a", nil)
	tr.Emit("b", nil)
	tr.Emit("c", nil)
	if tr.Err() == nil {
		t.Fatal("write error not reported")
	}
	if tr.Events() != 1 {
		t.Errorf("Events() = %d, want 1", tr.Events())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("anything", map[string]any{"x": 1}) // must not panic
	if tr.Events() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer not inert")
	}
}

// TestTracerConcurrent: parallel emitters produce whole, parseable
// lines (run under -race in CI).
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit("tick", map[string]any{"worker": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != workers*each {
		t.Fatalf("%d lines, want %d", len(lines), workers*each)
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("corrupt line %q: %v", ln, err)
		}
	}
	if tr.Events() != workers*each {
		t.Errorf("Events() = %d, want %d", tr.Events(), workers*each)
	}
}
