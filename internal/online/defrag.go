package online

import (
	"fmt"
	"sort"

	"fpga3d/internal/fpga"
	"fpga3d/internal/model"
)

// Plan is a validated defragmentation schedule. Moves lists the
// relocations of loaded modules in reconfiguration order; Replans
// counts reserved (not yet loaded) modules whose position changed at
// zero cost. Every plan handed out by a Session has already been
// replayed through fpga.Simulate; Validate re-runs that replay so
// callers (and tests) can check independently.
type Plan struct {
	Moves   []Move `json:"moves"`
	Replans int    `json:"replans,omitempty"`

	// Cycle-accurate replay encoding of the plan (see buildPlan).
	inst  *model.Instance
	cont  model.Container
	place *model.Placement
	order *model.Order
}

// Validate replays the plan's reconfiguration schedule cycle-accurately
// through fpga.Simulate: movers are precedence-chained unload/load box
// pairs, every other module a fixed box, so any ordering error —
// writing a destination before it is free, colliding with a resident,
// leaving the array — surfaces as a simulation error. An empty plan
// validates trivially.
func (p *Plan) Validate() error {
	if p.inst == nil {
		return nil
	}
	_, err := fpga.Simulate(p.inst, p.cont, p.place, p.order)
	return err
}

// mover is one loaded module scheduled to relocate.
type mover struct {
	idx      int // task index in the static problem
	id       int
	name     string
	w, h     int
	from, to [2]int
	unloadAt int
	loadAt   int
}

// applyWitnessLocked turns a feasible witness into the admission
// answer: moves are minimized against the current layout, ordered into
// a reconfiguration schedule, validated by simulation, and applied to
// the session state. Callers hold s.mu; tasks is the static problem
// the witness solves (candidate last).
func (s *Session) applyWitnessLocked(req AdmitRequest, tasks []staticTask, w *model.Placement, tier string, nodes int64) (*AdmitResult, error) {
	final := make([][2]int, len(tasks))
	for i := range tasks {
		final[i] = [2]int{w.X[i], w.Y[i]}
	}
	minimizeMoves(tasks, final)
	movers, replans := diffLayout(tasks, final)
	if len(movers) > s.cfg.MaxMoves {
		return &AdmitResult{Decision: DecisionRejected, DecidedBy: "move-bound", Nodes: nodes}, nil
	}

	plan, err := s.buildPlanLocked(tasks, final, movers, true)
	if err != nil {
		return nil, err
	}
	plan.Replans = replans

	// Apply: relocate movers, re-plan reserved modules, admit the
	// candidate at its witness position.
	ci := len(tasks) - 1
	for i, t := range tasks {
		if t.relID < 0 {
			continue
		}
		s.res[t.relID].X, s.res[t.relID].Y = final[i][0], final[i][1]
	}
	r := &Resident{ID: s.nextID, Name: req.Name, W: req.W, H: req.H, Dur: req.Dur,
		X: final[ci][0], Y: final[ci][1], Start: s.now}
	s.nextID++
	s.res[r.ID] = r
	s.rebuildGridLocked()

	res := &AdmitResult{
		Decision: DecisionPlaced, DecidedBy: tier,
		ID: r.ID, X: r.X, Y: r.Y, Start: r.Start,
		Moves: plan.Moves, Replans: replans, Nodes: nodes, Plan: plan,
	}
	if len(movers) > 0 {
		res.Decision = DecisionDefrag
		s.count.Defrags++
		s.count.Moves += int64(len(movers))
	}
	return res, nil
}

// rebuildGridLocked recomputes the occupancy bitmap from the residents
// active at the current clock.
func (s *Session) rebuildGridLocked() {
	s.grid = fpga.NewGrid(s.cfg.W, s.cfg.H)
	s.rects = nil
	for _, r := range s.res {
		if r.active(s.now) {
			s.grid.Fill(r.X, r.Y, r.W, r.H)
		}
	}
}

// minimizeMoves greedily reverts relocated modules back to their
// current positions whenever that stays conflict-free against the
// final positions of everything else, processing loaded modules first
// (their moves carry reconfiguration cost; reserved modules re-plan for
// free). Each accepted revert keeps the layout valid, so the result is
// a feasible final layout that relocates a (locally) minimal set.
func minimizeMoves(tasks []staticTask, final [][2]int) {
	var order []int
	for i, t := range tasks {
		if t.relID >= 0 && t.start == 0 {
			order = append(order, i)
		}
	}
	for i, t := range tasks {
		if t.relID >= 0 && t.start > 0 {
			order = append(order, i)
		}
	}
	for _, i := range order {
		cur := [2]int{tasks[i].curX, tasks[i].curY}
		if final[i] == cur {
			continue
		}
		ok := true
		for j := range tasks {
			if j != i && boxesConflict(tasks[i], cur, tasks[j], final[j]) {
				ok = false
				break
			}
		}
		if ok {
			final[i] = cur
		}
	}
}

// boxesConflict reports whether two placed tasks overlap in space and
// time simultaneously.
func boxesConflict(a staticTask, pa [2]int, b staticTask, pb [2]int) bool {
	if pa[0]+a.w <= pb[0] || pb[0]+b.w <= pa[0] {
		return false
	}
	if pa[1]+a.h <= pb[1] || pb[1]+b.h <= pa[1] {
		return false
	}
	return a.start < b.start+b.dur && b.start < a.start+a.dur
}

// diffLayout extracts the movers (loaded modules whose final position
// differs from their current one) and counts reserved re-plans.
func diffLayout(tasks []staticTask, final [][2]int) ([]*mover, int) {
	var movers []*mover
	replans := 0
	for i, t := range tasks {
		if t.relID < 0 || final[i] == [2]int{t.curX, t.curY} {
			continue
		}
		if t.start > 0 {
			replans++
			continue
		}
		movers = append(movers, &mover{
			idx: i, id: t.relID, name: t.name, w: t.w, h: t.h,
			from: [2]int{t.curX, t.curY}, to: final[i],
		})
	}
	return movers, replans
}

// orderMoves schedules the movers into reconfiguration cycles 1..K on a
// scratch copy of the current occupancy: a mover whose destination is
// free moves directly (unload and load in one cycle — the destination
// may overlap its own source); when no one can move directly, one mover
// is unloaded and parked off-array until later moves free its
// destination. Because the final layout is overlap-free, every parked
// module eventually loads, so the loop terminates in at most 3·len
// steps. Returns K.
func orderMoves(g *fpga.Grid, movers []*mover) (int, error) {
	cycle := 0
	pending := append([]*mover(nil), movers...)
	var parked []*mover
	for len(pending) > 0 || len(parked) > 0 {
		progress := false
		for i := 0; i < len(pending); {
			m := pending[i]
			g.Clear(m.from[0], m.from[1], m.w, m.h)
			if g.RegionFree(m.to[0], m.to[1], m.w, m.h) {
				g.Fill(m.to[0], m.to[1], m.w, m.h)
				cycle++
				m.unloadAt, m.loadAt = cycle, cycle
				pending = append(pending[:i], pending[i+1:]...)
				progress = true
			} else {
				g.Fill(m.from[0], m.from[1], m.w, m.h)
				i++
			}
		}
		for i := 0; i < len(parked); {
			m := parked[i]
			if g.RegionFree(m.to[0], m.to[1], m.w, m.h) {
				g.Fill(m.to[0], m.to[1], m.w, m.h)
				cycle++
				m.loadAt = cycle
				parked = append(parked[:i], parked[i+1:]...)
				progress = true
			} else {
				i++
			}
		}
		if !progress {
			if len(pending) == 0 {
				return 0, fmt.Errorf("online: move ordering deadlocked with %d parked modules", len(parked))
			}
			m := pending[0]
			g.Clear(m.from[0], m.from[1], m.w, m.h)
			cycle++
			m.unloadAt = cycle
			parked = append(parked, m)
			pending = pending[1:]
		}
	}
	return cycle, nil
}

// buildPlanLocked orders the movers and encodes the full plan as a
// synthetic instance replayed through fpga.Simulate. The encoding maps
// reconfiguration steps to cycles 1..K and real time now+τ to cycle
// K+1+τ: a mover becomes an unload box [0, unloadAt) at its source plus
// a load box [loadAt, K+1+remaining) at its destination with a
// precedence arc between them; a stationary loaded module spans the
// whole window at its position; reserved modules and the candidate
// (withCand) load at their shifted real starts. Simulate then checks
// every cell ownership cycle-accurately, so the returned plan is only
// handed out if the move schedule is physically executable. Callers
// hold s.mu.
func (s *Session) buildPlanLocked(tasks []staticTask, final [][2]int, movers []*mover, withCand bool) (*Plan, error) {
	plan := &Plan{Moves: []Move{}}
	K, err := orderMoves(s.grid.Clone(), movers)
	if err != nil {
		return nil, err
	}
	byIdx := make(map[int]*mover, len(movers))
	for _, m := range movers {
		byIdx[m.idx] = m
		plan.Moves = append(plan.Moves, Move{
			ID: m.id, Name: m.name,
			FromX: m.from[0], FromY: m.from[1], ToX: m.to[0], ToY: m.to[1],
			UnloadAt: m.unloadAt, LoadAt: m.loadAt,
		})
	}
	if len(movers) == 0 && !withCand {
		return plan, nil
	}

	base := K + 1
	maxFin := 1
	for _, t := range tasks {
		if f := t.start + t.dur; f > maxFin {
			maxFin = f
		}
	}
	inst := &model.Instance{Name: "online-defrag"}
	var xs, ys, starts []int
	add := func(name string, w, h, dur, x, y, start int) int {
		inst.Tasks = append(inst.Tasks, model.Task{Name: name, W: w, H: h, Dur: dur})
		xs, ys, starts = append(xs, x), append(ys, y), append(starts, start)
		return len(inst.Tasks) - 1
	}
	for i, t := range tasks {
		name := t.name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		switch {
		case t.relID < 0: // candidate: loads once the moves are done
			add(name+"#new", t.w, t.h, t.dur, final[i][0], final[i][1], base)
		case t.start > 0: // reserved: loads at its shifted real start
			add(name+"#resv", t.w, t.h, t.dur, final[i][0], final[i][1], base+t.start)
		default:
			if m := byIdx[i]; m != nil {
				a := add(name+"#out", t.w, t.h, m.unloadAt, m.from[0], m.from[1], 0)
				b := add(name+"#in", t.w, t.h, base+t.dur-m.loadAt, m.to[0], m.to[1], m.loadAt)
				inst.Prec = append(inst.Prec, model.Arc{From: a, To: b})
			} else {
				add(name+"#res", t.w, t.h, base+t.dur, final[i][0], final[i][1], 0)
			}
		}
	}
	order, err := inst.Order()
	if err != nil {
		return nil, fmt.Errorf("online: plan encoding: %w", err)
	}
	p := model.NewPlacement(len(inst.Tasks))
	copy(p.X, xs)
	copy(p.Y, ys)
	copy(p.S, starts)
	plan.inst, plan.cont, plan.place, plan.order = inst, s.device(base+maxFin), p, order
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("online: defrag plan failed simulation: %w", err)
	}
	return plan, nil
}

// Defrag proactively compacts the layout at cycle at: loaded modules
// are greedily repacked bottom-left (area-descending) around the
// reserved modules' timing, moves are minimized and ordered, and the
// plan is applied only when it strictly grows the largest free
// rectangle. The returned plan is empty when compaction cannot improve
// the layout (or there is nothing to move).
func (s *Session) Defrag(at int) (*Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(at)
	tasks, _ := s.staticProblem(nil)
	if len(tasks) == 0 {
		return &Plan{Moves: []Move{}}, nil
	}

	// No move-minimization revert pass here: for an explicit compaction
	// the relocations are the point, and reverting modules to their old
	// positions would undo exactly the packing the caller asked for.
	// The improvement gate below keeps the plan from moving modules
	// without growing the largest free rectangle.
	final, ok := compactLayout(tasks, s.cfg.W, s.cfg.H)
	if !ok || !s.improvesLocked(tasks, final) {
		s.emit("defrag:noop", 0)
		return &Plan{Moves: []Move{}}, nil
	}
	movers, replans := diffLayout(tasks, final)
	if len(movers) == 0 || len(movers) > s.cfg.MaxMoves {
		s.emit("defrag:noop", 0)
		return &Plan{Moves: []Move{}}, nil
	}
	plan, err := s.buildPlanLocked(tasks, final, movers, false)
	if err != nil {
		return nil, err
	}
	plan.Replans = replans
	for i, t := range tasks {
		s.res[t.relID].X, s.res[t.relID].Y = final[i][0], final[i][1]
	}
	s.rebuildGridLocked()
	s.count.Defrags++
	s.count.Moves += int64(len(movers))
	s.emit("defrag", 0)
	return plan, nil
}

// compactLayout greedily re-places every task bottom-left — loaded
// modules area-descending first, then reserved modules by start — each
// at its fixed start time, checking space-time conflicts against the
// boxes placed so far. ok is false when the greedy order fails (the
// current layout then stands).
func compactLayout(tasks []staticTask, w, h int) ([][2]int, bool) {
	order := make([]int, 0, len(tasks))
	for i, t := range tasks {
		if t.start == 0 {
			order = append(order, i)
		}
	}
	sortByArea(order, tasks)
	resv := make([]int, 0)
	for i, t := range tasks {
		if t.start > 0 {
			resv = append(resv, i)
		}
	}
	sortByStart(resv, tasks)
	order = append(order, resv...)

	final := make([][2]int, len(tasks))
	placed := make([]int, 0, len(tasks))
	for _, i := range order {
		t := tasks[i]
		x, y, ok := bottomLeft3D(tasks, final, placed, t, w, h)
		if !ok {
			return nil, false
		}
		final[i] = [2]int{x, y}
		placed = append(placed, i)
	}
	return final, true
}

// bottomLeft3D scans positions bottom-left for a spot where task t fits
// the device and conflicts with none of the already placed tasks.
func bottomLeft3D(tasks []staticTask, final [][2]int, placed []int, t staticTask, w, h int) (int, int, bool) {
	for y := 0; y+t.h <= h; y++ {
	next:
		for x := 0; x+t.w <= w; x++ {
			for _, j := range placed {
				if boxesConflict(t, [2]int{x, y}, tasks[j], final[j]) {
					continue next
				}
			}
			return x, y, true
		}
	}
	return 0, 0, false
}

// sortByArea orders task indices by descending footprint, then index.
func sortByArea(order []int, tasks []staticTask) {
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		aa, ab := tasks[a].w*tasks[a].h, tasks[b].w*tasks[b].h
		if aa != ab {
			return aa > ab
		}
		return a < b
	})
}

// sortByStart orders task indices by start time, then index.
func sortByStart(order []int, tasks []staticTask) {
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if tasks[a].start != tasks[b].start {
			return tasks[a].start < tasks[b].start
		}
		return a < b
	})
}

// improvesLocked reports whether the proposed final layout strictly
// grows the largest free rectangle of the *instantaneous* occupancy
// (loaded modules only). Callers hold s.mu.
func (s *Session) improvesLocked(tasks []staticTask, final [][2]int) bool {
	g := fpga.NewGrid(s.cfg.W, s.cfg.H)
	for i, t := range tasks {
		if t.relID >= 0 && t.start == 0 {
			g.Fill(final[i][0], final[i][1], t.w, t.h)
		}
	}
	after := fpga.LargestFreeRect(g.MaximalFreeRects()).Area()
	before := fpga.LargestFreeRect(s.freeRectsLocked()).Area()
	return after > before
}
