package online

import (
	"context"
	"fmt"
	"testing"

	"fpga3d/internal/model"
	"fpga3d/internal/solver"
	"fpga3d/internal/strategy"
)

// staticFeasible answers "could this module start right now?" from
// scratch: it rebuilds the equivalent fixed-schedule instance from the
// session snapshot alone and runs the exact solver with no limits —
// the ground truth the incremental admission ladder must agree with.
func staticFeasible(t *testing.T, snap *Snapshot, ev Event) bool {
	t.Helper()
	in := &model.Instance{Name: "differential"}
	var starts []int
	T := ev.Dur
	for i, r := range snap.Residents {
		st, dur := 0, r.Finish()-snap.Now
		if r.Start > snap.Now {
			st, dur = r.Start-snap.Now, r.Dur
		}
		in.Tasks = append(in.Tasks, model.Task{Name: fmt.Sprintf("r%d", i), W: r.W, H: r.H, Dur: dur})
		starts = append(starts, st)
		if st+dur > T {
			T = st + dur
		}
	}
	in.Tasks = append(in.Tasks, model.Task{Name: "cand", W: ev.W, H: ev.H, Dur: ev.Dur})
	starts = append(starts, 0)
	res, err := solver.FeasibleFixedSchedule(in, model.Container{W: snap.W, H: snap.H, T: T}, starts, solver.Options{})
	if err != nil {
		t.Fatalf("static solve: %v", err)
	}
	if res.Decision == strategy.Unknown {
		t.Fatal("unlimited static solve answered Unknown")
	}
	return res.Decision == strategy.Feasible
}

// TestDifferentialAdmitMatchesStatic drives ~100 random event scripts
// through sessions and checks, for every single arrival, that the
// incremental answer (any ladder tier) equals an unlimited from-scratch
// FeasibleFixedSchedule solve on the equivalent static instance — and
// that every defragmentation plan handed out replays cleanly through
// fpga.Simulate.
func TestDifferentialAdmitMatchesStatic(t *testing.T) {
	scripts := 100
	if testing.Short() {
		scripts = 15
	}
	for seed := 0; seed < scripts; seed++ {
		// DeadlineSlack 0 makes every arrival admit-now, the shape where
		// "admitted" and "static instance feasible" must coincide
		// exactly. Half the scripts interleave proactive defrags to
		// diversify the layouts the admissions run against.
		defragEvery := 0
		if seed%2 == 0 {
			defragEvery = 5
		}
		sc := Generate(GenParams{
			Seed: int64(seed), W: 10, H: 10,
			Events: 16, MaxSize: 4, MaxDur: 10, MaxGap: 3,
			DepartFrac: 0.35, DefragEvery: defragEvery,
		})
		s := mustSession(t, Config{W: 10, H: 10, MaxMoves: 1000})
		live := make(map[string]int)
		for evIdx, ev := range sc.Events {
			tag := fmt.Sprintf("seed %d event %d (%s %q at %d)", seed, evIdx, ev.Kind, ev.Name, ev.At)
			switch ev.Kind {
			case EventArrive:
				snap := s.State(ev.At)
				res := mustAdmit(t, s, AdmitRequest{Name: ev.Name, W: ev.W, H: ev.H, Dur: ev.Dur, At: ev.At})
				if res.Decision == DecisionUnknown {
					t.Fatalf("%s: unlimited admission answered unknown", tag)
				}
				admitted := res.Decision == DecisionPlaced || res.Decision == DecisionDefrag
				if want := staticFeasible(t, snap, ev); admitted != want {
					t.Fatalf("%s: online says admitted=%v (%s by %s), from-scratch solve says feasible=%v",
						tag, admitted, res.Decision, res.DecidedBy, want)
				}
				if admitted {
					if res.Start != ev.At {
						t.Fatalf("%s: admit-now placed at start %d", tag, res.Start)
					}
					live[ev.Name] = res.ID
				}
				if res.Plan != nil {
					if err := res.Plan.Validate(); err != nil {
						t.Fatalf("%s: defrag plan failed simulation: %v", tag, err)
					}
				}
			case EventDepart:
				if id, ok := live[ev.Name]; ok {
					delete(live, ev.Name)
					_ = s.Depart(id, ev.At) // may already have expired
				} else {
					s.Advance(ev.At)
				}
			case EventDefrag:
				plan, err := s.Defrag(ev.At)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if err := plan.Validate(); err != nil {
					t.Fatalf("%s: defrag plan failed simulation: %v", tag, err)
				}
			}
		}
	}
}

// TestDifferentialReplayMatchesCounters cross-checks Replay's stats
// against the session's own counters on one richer script.
func TestDifferentialReplayMatchesCounters(t *testing.T) {
	sc := Generate(GenParams{Seed: 99, W: 12, H: 12, Events: 40, MaxSize: 4, MaxDur: 14, DepartFrac: 0.4, DefragEvery: 10})
	s := mustSession(t, Config{W: 12, H: 12, MaxMoves: 1000})
	stats, err := Replay(context.Background(), s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if int64(stats.Admitted) != c.Admitted || int64(stats.Rejected) != c.Rejected {
		t.Fatalf("replay stats %+v disagree with session counters %+v", stats, c)
	}
	if int64(stats.DefragMoves) != c.Moves {
		t.Fatalf("replay moves %d, session moves %d", stats.DefragMoves, c.Moves)
	}
	if c.ByFreeRect+c.BySlot+c.ByCache+c.ByRepack+c.ByProbe != c.Admitted+c.Rejected {
		t.Fatalf("tier counters don't partition the decided admissions: %+v", c)
	}
}
