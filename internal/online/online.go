// Package online is the dynamic placement subsystem: a stateful
// session that manages one partially reconfigurable device under an
// *online* workload, where modules arrive and depart over time and
// every admission must be answered incrementally against the current
// layout — the operating regime of van der Veen et al.
// ("Defragmenting the Module Layout of a Partially Reconfigurable
// Device") and Ahmadinia et al. ("Optimal Free-Space Management and
// Routing-Conscious Dynamic Placement"), layered on this repository's
// exact solver.
//
// A Session maintains a logical clock, the set of resident modules
// (loaded now, or scheduled to load at a reserved future start), and a
// free-space index over the occupancy grid. Admission runs a decision
// ladder from cheapest to most expensive tier:
//
//  1. free-rect — best-fit into a maximal free rectangle of the
//     current occupancy (fpga.MaximalFreeRects), O(free rects).
//  2. slot — the greedy scheduler's space-time slot finder
//     (heur.Occupancy) searches reserved future starts up to the
//     admission deadline without relocating anyone.
//  3. cached witness — the equivalent static fixed-schedule instance
//     is canonically hashed and looked up in the session's probe
//     cache; a stored incumbent witness is remapped and re-verified,
//     a stored infeasibility answers the rejection outright.
//  4. exact probe — solver.FeasibleFixedScheduleCtx decides the static
//     instance (all residents relocatable), preceded by a greedy
//     bottom-left repack that often finds the witness without search.
//  5. defrag — a feasible witness that requires relocation becomes a
//     bounded-move defragmentation plan: moved modules are minimized
//     greedily, the moves are ordered so every destination is free
//     when written, and the whole schedule is replayed cycle-accurate
//     through fpga.Simulate before it is applied or returned.
//
// An admission rejected by tier 4 is *proven* infeasible at the
// current time: no relocation of the resident modules can make room.
package online

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fpga3d/internal/fpga"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// Decision strings of an admission answer.
const (
	// DecisionPlaced means the module was admitted without moving any
	// resident (possibly at a reserved future start ≤ its deadline).
	DecisionPlaced = "placed"
	// DecisionDefrag means the module was admitted after applying a
	// defragmentation plan that relocated resident modules.
	DecisionDefrag = "defrag"
	// DecisionRejected means admission at the current time is proven
	// infeasible even with full relocation freedom.
	DecisionRejected = "rejected"
	// DecisionUnknown means the exact probe was cut off by a node
	// limit or context cancellation before deciding.
	DecisionUnknown = "unknown"
)

// Config tunes a session; W and H are required, everything else has a
// usable zero value.
type Config struct {
	// W, H are the device's spatial cell dimensions.
	W, H int
	// Strategy selects the solve strategy for exact probes ("",
	// "staged" or "portfolio" — see solver.Options.Strategy).
	Strategy string
	// Workers is forwarded to solver.Options.Workers for exact probes.
	Workers int
	// ProbeNodeLimit bounds branch-and-bound nodes per exact probe
	// (0 = unlimited). A probe that hits the limit answers
	// DecisionUnknown and is never cached.
	ProbeNodeLimit int64
	// CacheSize bounds the probe cache (canonical static instances →
	// decisions and incumbent witnesses); 0 means 128, negative
	// disables caching.
	CacheSize int
	// MaxMoves bounds the modules a defragmentation plan may relocate
	// (0 means 16). An admission that is feasible but whose minimized
	// plan would move more modules answers DecisionRejected with
	// DecidedBy "move-bound" — reconfiguration bandwidth is the scarce
	// resource the bound protects.
	MaxMoves int
	// Metrics, when non-nil, accumulates probe and cache counters (and
	// is forwarded to the solver).
	Metrics *obs.Registry
	// Events, when non-nil, receives one obs.Snapshot per session
	// mutation (admit, depart, defrag); Phase carries the event kind,
	// Nodes the exact-probe effort, Elapsed the session age. The fpgad
	// serving layer points this at an obs.ProgressBroker stream.
	Events obs.ProgressFunc
}

// Resident is one module currently managed by a session: loaded on the
// array when Start ≤ now, or scheduled for a reserved future start.
type Resident struct {
	ID    int    `json:"id"`
	Name  string `json:"name,omitempty"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Dur   int    `json:"dur"`
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Start int    `json:"start"`
}

// Finish returns the cycle at which the module unloads.
func (r *Resident) Finish() int { return r.Start + r.Dur }

// active reports whether the module occupies cells at cycle t.
func (r *Resident) active(t int) bool { return r.Start <= t && t < r.Finish() }

// Counters accumulates a session's lifetime statistics.
type Counters struct {
	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	Unknown    int64 `json:"unknown,omitempty"`
	Departed   int64 `json:"departed"`
	Expired    int64 `json:"expired"`
	Defrags    int64 `json:"defrags"`
	Moves      int64 `json:"moves"`
	ByFreeRect int64 `json:"by_free_rect"`
	BySlot     int64 `json:"by_slot"`
	ByCache    int64 `json:"by_cache"`
	ByRepack   int64 `json:"by_repack"`
	ByProbe    int64 `json:"by_probe"`
	ProbeNodes int64 `json:"probe_nodes"`
}

// Session is a long-lived online placement engine for one device. All
// methods are safe for concurrent use; operations are serialized on an
// internal lock, so a session behaves as a linearizable state machine.
type Session struct {
	mu      sync.Mutex
	cfg     Config
	now     int
	nextID  int
	res     map[int]*Resident
	grid    *fpga.Grid  // occupancy of residents active at s.now
	rects   []fpga.Rect // cached maximal free rects; nil = dirty
	cache   *probeCache
	count   Counters
	created time.Time
}

// NewSession returns an empty session for a W×H device.
func NewSession(cfg Config) (*Session, error) {
	if cfg.W < 1 || cfg.H < 1 {
		return nil, fmt.Errorf("online: non-positive device %dx%d", cfg.W, cfg.H)
	}
	if cfg.MaxMoves == 0 {
		cfg.MaxMoves = 16
	}
	return &Session{
		cfg:     cfg,
		res:     make(map[int]*Resident),
		grid:    fpga.NewGrid(cfg.W, cfg.H),
		cache:   newProbeCache(cfg.CacheSize),
		created: time.Now(),
	}, nil
}

// Now returns the session's logical clock.
func (s *Session) Now() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AdmitRequest asks the session to place one arriving module.
type AdmitRequest struct {
	// Name labels the module (informational; departures go by ID).
	Name string `json:"name,omitempty"`
	// W, H, Dur are the module's footprint and execution time.
	W   int `json:"w"`
	H   int `json:"h"`
	Dur int `json:"dur"`
	// At advances the session clock to this cycle before deciding
	// (ignored when behind the clock).
	At int `json:"at,omitempty"`
	// Deadline is the latest admissible start cycle; 0 (or anything at
	// or below the clock) means the module must start immediately —
	// and immediate admission is the only tier where relocation is
	// considered.
	Deadline int `json:"deadline,omitempty"`
}

// Move is one relocation of a defragmentation plan: module ID moves
// from (FromX, FromY) to (ToX, ToY). UnloadAt and LoadAt order the
// plan's reconfiguration steps; a direct move (UnloadAt == LoadAt)
// reads out and writes back in one step, UnloadAt < LoadAt means the
// module is parked off-array while other moves free its destination.
type Move struct {
	ID       int    `json:"id"`
	Name     string `json:"name,omitempty"`
	FromX    int    `json:"from_x"`
	FromY    int    `json:"from_y"`
	ToX      int    `json:"to_x"`
	ToY      int    `json:"to_y"`
	UnloadAt int    `json:"unload_at"`
	LoadAt   int    `json:"load_at"`
}

// AdmitResult is the session's answer to one admission.
type AdmitResult struct {
	// Decision is DecisionPlaced, DecisionDefrag, DecisionRejected or
	// DecisionUnknown.
	Decision string `json:"decision"`
	// DecidedBy names the ladder tier that settled the admission:
	// "free-rect", "slot", "cache", "repack" or "probe".
	DecidedBy string `json:"decided_by"`
	// ID, X, Y, Start locate the admitted module (admissions only).
	ID    int `json:"id,omitempty"`
	X     int `json:"x"`
	Y     int `json:"y"`
	Start int `json:"start"`
	// Moves is the applied defragmentation plan (DecisionDefrag only).
	Moves []Move `json:"moves,omitempty"`
	// Replans counts scheduled (not yet loaded) modules whose reserved
	// position changed at zero reconfiguration cost.
	Replans int `json:"replans,omitempty"`
	// Nodes is the branch-and-bound effort of the exact probe, when
	// one ran.
	Nodes int64 `json:"nodes,omitempty"`
	// Plan carries the validated defragmentation schedule backing
	// Moves; its Validate replays it through fpga.Simulate.
	Plan *Plan `json:"-"`
}

// ErrNotFound reports a departure for a module the session does not
// hold (already finished, departed, or never admitted).
var ErrNotFound = errors.New("online: no such module")

// Admit decides one arriving module against the current layout,
// walking the admission ladder (see the package comment). ctx bounds
// the exact probe; cancellation answers DecisionUnknown.
func (s *Session) Admit(ctx context.Context, req AdmitRequest) (*AdmitResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.W < 1 || req.H < 1 || req.Dur < 1 {
		return nil, fmt.Errorf("online: module %q has non-positive dimensions %dx%dx%d", req.Name, req.W, req.H, req.Dur)
	}
	if req.W > s.cfg.W || req.H > s.cfg.H {
		return nil, fmt.Errorf("online: module %q (%dx%d) exceeds the %dx%d device", req.Name, req.W, req.H, s.cfg.W, s.cfg.H)
	}
	s.advanceLocked(req.At)
	deadline := req.Deadline
	if deadline < s.now {
		deadline = s.now
	}

	res, err := s.admitLocked(ctx, req, deadline)
	if err != nil {
		return nil, err
	}
	switch res.Decision {
	case DecisionPlaced, DecisionDefrag:
		s.count.Admitted++
	case DecisionRejected:
		s.count.Rejected++
	default:
		s.count.Unknown++
	}
	s.emit("admit:"+res.Decision, res.Nodes)
	return res, nil
}

// admitLocked runs the admission ladder. Callers hold s.mu.
func (s *Session) admitLocked(ctx context.Context, req AdmitRequest, deadline int) (*AdmitResult, error) {
	// Tier 1: best-fit into a maximal free rectangle of the current
	// occupancy. Sound for an immediate start only when no reserved
	// future start could collide with the module's execution window.
	if !s.hasScheduledLocked() {
		if x, y, ok := fpga.BestFit(s.freeRectsLocked(), req.W, req.H); ok {
			s.count.ByFreeRect++
			return s.placeLocked(req, x, y, s.now, "free-rect"), nil
		}
	}

	// Tier 2: the space-time slot finder — looks past currently
	// finishing modules for the earliest admissible start ≤ deadline,
	// still without relocating anyone. Also the sound immediate check
	// when reserved future starts exist.
	if x, y, start, ok := s.findSlotLocked(req.W, req.H, req.Dur, deadline); ok {
		s.count.BySlot++
		return s.placeLocked(req, x, y, start, "slot"), nil
	}

	// Tiers 3–5 consider relocation, which the session only performs
	// for an immediate start: the equivalent static instance fixes
	// every start time, so its feasibility is exactly "can the module
	// start now after some relocation of the residents".
	return s.probeLocked(ctx, req)
}

// placeLocked admits the module at (x, y, start) without relocation.
func (s *Session) placeLocked(req AdmitRequest, x, y, start int, tier string) *AdmitResult {
	r := &Resident{ID: s.nextID, Name: req.Name, W: req.W, H: req.H, Dur: req.Dur, X: x, Y: y, Start: start}
	s.nextID++
	s.res[r.ID] = r
	if r.active(s.now) {
		s.grid.Fill(r.X, r.Y, r.W, r.H)
		s.rects = nil
	}
	return &AdmitResult{Decision: DecisionPlaced, DecidedBy: tier, ID: r.ID, X: x, Y: y, Start: start}
}

// Depart unloads the module with the given ID (early termination of a
// loaded module, or cancellation of a reserved future start), after
// advancing the clock to at.
func (s *Session) Depart(id, at int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(at)
	r, ok := s.res[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if r.active(s.now) {
		s.grid.Clear(r.X, r.Y, r.W, r.H)
		s.rects = nil
	}
	delete(s.res, id)
	s.count.Departed++
	s.emit("depart", 0)
	return nil
}

// Advance moves the logical clock forward to cycle `to` (no-op when
// behind), unloading modules that finish and loading reserved ones
// whose start arrives.
func (s *Session) Advance(to int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(to)
}

// advanceLocked is Advance under the session lock.
func (s *Session) advanceLocked(to int) {
	if to <= s.now {
		return
	}
	s.now = to
	// Rebuild occupancy from scratch: expire finished modules, then
	// mark everything active at the new clock. Simple and immune to
	// ordering bugs between expiry and activation.
	for id, r := range s.res {
		if r.Finish() <= to {
			delete(s.res, id)
			s.count.Expired++
		}
	}
	s.grid = fpga.NewGrid(s.cfg.W, s.cfg.H)
	s.rects = nil
	for _, r := range s.res {
		if r.active(to) {
			s.grid.Fill(r.X, r.Y, r.W, r.H)
		}
	}
}

// freeRectsLocked returns the maximal-free-rectangle index, recomputed
// lazily after any occupancy change.
func (s *Session) freeRectsLocked() []fpga.Rect {
	if s.rects == nil {
		s.rects = s.grid.MaximalFreeRects()
	}
	return s.rects
}

// hasScheduledLocked reports whether any resident has a reserved
// future start.
func (s *Session) hasScheduledLocked() bool {
	for _, r := range s.res {
		if r.Start > s.now {
			return true
		}
	}
	return false
}

// findSlotLocked searches the space-time occupancy for the earliest
// bottom-left slot for a w×h×dur box starting in [now, deadline].
func (s *Session) findSlotLocked(w, h, dur, deadline int) (x, y, start int, ok bool) {
	// The start window never needs to extend past the last resident's
	// finish — the array is empty from then on, so the earliest
	// feasible start is at most maxFin. Clamping also keeps the
	// occupancy allocation bounded by the workload, not the deadline.
	maxFin := 0
	for _, r := range s.res {
		if f := r.Finish() - s.now; f > maxFin {
			maxFin = f
		}
	}
	window := deadline - s.now
	if window > maxFin {
		window = maxFin
	}
	// The horizon covers every candidate start in the window plus the
	// module's own execution; resident boxes beyond it are clamped —
	// they cannot affect a slot inside the window.
	T := window + dur
	occ := heur.NewOccupancy(s.cfg.W, s.cfg.H, T)
	for _, r := range s.res {
		rs := r.Start - s.now
		if rs < 0 {
			rs = 0
		}
		rf := r.Finish() - s.now
		if rf > T {
			rf = T
		}
		if rf > rs {
			occ.Fill(r.X, r.Y, rs, r.W, r.H, rf-rs)
		}
	}
	x, y, rel, found := occ.FindSlot(w, h, dur, 0)
	if !found || s.now+rel > deadline {
		return 0, 0, 0, false
	}
	return x, y, s.now + rel, true
}

// residentsLocked returns the residents sorted by ID — the canonical
// construction order for static instances and snapshots.
func (s *Session) residentsLocked() []*Resident {
	out := make([]*Resident, 0, len(s.res))
	for _, r := range s.res {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// emit publishes one session event to the Events hook.
func (s *Session) emit(phase string, nodes int64) {
	if s.cfg.Events != nil {
		s.cfg.Events(obs.Snapshot{Phase: phase, Nodes: nodes, Elapsed: time.Since(s.created)})
	}
}

// FreeStats summarizes the free space of a layout.
type FreeStats struct {
	FreeCells     int     `json:"free_cells"`
	FreeRects     int     `json:"free_rects"`
	LargestW      int     `json:"largest_w"`
	LargestH      int     `json:"largest_h"`
	Fragmentation float64 `json:"fragmentation"`
}

// Snapshot is a point-in-time view of a session.
type Snapshot struct {
	Now       int        `json:"now"`
	W         int        `json:"w"`
	H         int        `json:"h"`
	Residents []Resident `json:"residents"`
	Free      FreeStats  `json:"free"`
	Counters  Counters   `json:"counters"`
}

// State returns a snapshot of the session, advancing the clock to at
// first (no-op when behind).
func (s *Session) State(at int) *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(at)
	rects := s.freeRectsLocked()
	largest := fpga.LargestFreeRect(rects)
	snap := &Snapshot{
		Now: s.now, W: s.cfg.W, H: s.cfg.H,
		Free: FreeStats{
			FreeCells:     s.grid.FreeCells(),
			FreeRects:     len(rects),
			LargestW:      largest.W,
			LargestH:      largest.H,
			Fragmentation: s.grid.Fragmentation(rects),
		},
		Counters: s.count,
	}
	for _, r := range s.residentsLocked() {
		snap.Residents = append(snap.Residents, *r)
	}
	return snap
}

// Counters returns the session's lifetime counters.
func (s *Session) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// device returns the spatial container of the session (T set per use).
func (s *Session) device(t int) model.Container {
	return model.Container{W: s.cfg.W, H: s.cfg.H, T: t}
}
