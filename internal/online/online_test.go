package online

import (
	"context"
	"sync"
	"testing"

	"fpga3d/internal/obs"
)

func mustSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustAdmit(t *testing.T, s *Session, req AdmitRequest) *AdmitResult {
	t.Helper()
	res, err := s.Admit(context.Background(), req)
	if err != nil {
		t.Fatalf("Admit(%+v): %v", req, err)
	}
	return res
}

func TestAdmitDepartLifecycle(t *testing.T) {
	s := mustSession(t, Config{W: 8, H: 8})

	a := mustAdmit(t, s, AdmitRequest{Name: "a", W: 4, H: 8, Dur: 10})
	if a.Decision != DecisionPlaced || a.DecidedBy != "free-rect" {
		t.Fatalf("first admit = %s by %s, want placed by free-rect", a.Decision, a.DecidedBy)
	}
	b := mustAdmit(t, s, AdmitRequest{Name: "b", W: 4, H: 8, Dur: 4})
	if b.Decision != DecisionPlaced {
		t.Fatalf("second admit = %s, want placed", b.Decision)
	}
	snap := s.State(0)
	if len(snap.Residents) != 2 || snap.Free.FreeCells != 0 {
		t.Fatalf("snapshot: %d residents, %d free cells, want 2 and 0", len(snap.Residents), snap.Free.FreeCells)
	}

	// b finishes at cycle 4; the vacated half must be coalesced back
	// into one maximal free rectangle.
	s.Advance(5)
	snap = s.State(5)
	if len(snap.Residents) != 1 || snap.Free.FreeCells != 32 {
		t.Fatalf("after expiry: %d residents, %d free cells, want 1 and 32", len(snap.Residents), snap.Free.FreeCells)
	}
	if snap.Free.Fragmentation != 0 {
		t.Fatalf("after expiry fragmentation %v, want 0 (one coalesced rect)", snap.Free.Fragmentation)
	}
	if snap.Counters.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", snap.Counters.Expired)
	}

	// Early departure of a frees the whole array.
	if err := s.Depart(a.ID, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.Depart(a.ID, 6); err == nil {
		t.Fatal("double departure should fail with ErrNotFound")
	}
	if free := s.State(6).Free.FreeCells; free != 64 {
		t.Fatalf("after departures: %d free cells, want 64", free)
	}
}

func TestAdmitValidation(t *testing.T) {
	s := mustSession(t, Config{W: 4, H: 4})
	if _, err := s.Admit(context.Background(), AdmitRequest{W: 0, H: 2, Dur: 1}); err == nil {
		t.Fatal("zero width must be rejected with an error")
	}
	if _, err := s.Admit(context.Background(), AdmitRequest{W: 5, H: 2, Dur: 1}); err == nil {
		t.Fatal("module wider than the device must be rejected with an error")
	}
	if _, err := NewSession(Config{W: 0, H: 3}); err == nil {
		t.Fatal("non-positive device must be rejected")
	}
}

// fragmentSession loads three full-height columns (3+2+3 wide) and
// departs the outer two, leaving the 2-wide column stranded in the
// middle of an 8×8 array: 6 columns free, but no 4-wide rectangle.
func fragmentSession(t *testing.T, dur int) (*Session, int) {
	t.Helper()
	s := mustSession(t, Config{W: 8, H: 8})
	a := mustAdmit(t, s, AdmitRequest{Name: "a", W: 3, H: 8, Dur: dur})
	b := mustAdmit(t, s, AdmitRequest{Name: "b", W: 2, H: 8, Dur: dur})
	c := mustAdmit(t, s, AdmitRequest{Name: "c", W: 3, H: 8, Dur: dur})
	if err := s.Depart(a.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Depart(c.ID, 0); err != nil {
		t.Fatal(err)
	}
	if lw := s.State(0).Free.LargestW; lw != 3 {
		t.Fatalf("fragmented layout: largest free width %d, want 3", lw)
	}
	return s, b.ID
}

func TestAdmitDefragRelocation(t *testing.T) {
	s, bID := fragmentSession(t, 20)

	// A 4×8 module fits only after relocating b: the admission must
	// come back as a validated single-move defrag.
	res := mustAdmit(t, s, AdmitRequest{Name: "d", W: 4, H: 8, Dur: 10})
	if res.Decision != DecisionDefrag {
		t.Fatalf("admit = %s by %s, want defrag", res.Decision, res.DecidedBy)
	}
	if len(res.Moves) != 1 || res.Moves[0].ID != bID {
		t.Fatalf("moves %+v, want exactly one move of b (id %d)", res.Moves, bID)
	}
	if res.Plan == nil {
		t.Fatal("defrag admission must carry its plan")
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("plan replay through fpga.Simulate failed: %v", err)
	}
	snap := s.State(0)
	if len(snap.Residents) != 2 {
		t.Fatalf("%d residents after defrag admit, want 2", len(snap.Residents))
	}
	if snap.Counters.Defrags != 1 || snap.Counters.Moves != 1 {
		t.Fatalf("counters defrags=%d moves=%d, want 1/1", snap.Counters.Defrags, snap.Counters.Moves)
	}
}

func TestAdmitRejectedProvenAndCached(t *testing.T) {
	s := mustSession(t, Config{W: 8, H: 8})
	mustAdmit(t, s, AdmitRequest{Name: "big", W: 8, H: 7, Dur: 50})

	res := mustAdmit(t, s, AdmitRequest{Name: "x", W: 2, H: 2, Dur: 5})
	if res.Decision != DecisionRejected || res.DecidedBy != "probe" {
		t.Fatalf("first reject = %s by %s, want rejected by probe", res.Decision, res.DecidedBy)
	}
	// The identical static problem must now be answered from the probe
	// cache without searching again.
	res = mustAdmit(t, s, AdmitRequest{Name: "x", W: 2, H: 2, Dur: 5})
	if res.Decision != DecisionRejected || res.DecidedBy != "cache" {
		t.Fatalf("second reject = %s by %s, want rejected by cache", res.Decision, res.DecidedBy)
	}
	if c := s.Counters(); c.ByCache != 1 || c.Rejected != 2 {
		t.Fatalf("counters %+v, want ByCache 1 and Rejected 2", c)
	}
}

func TestMoveBoundRejectsAndCachesWitness(t *testing.T) {
	s, _ := fragmentSession(t, 20)
	s.cfg.MaxMoves = -1 // forbid relocation entirely

	res := mustAdmit(t, s, AdmitRequest{Name: "d", W: 4, H: 8, Dur: 10})
	if res.Decision != DecisionRejected || res.DecidedBy != "move-bound" {
		t.Fatalf("admit = %s by %s, want rejected by move-bound", res.Decision, res.DecidedBy)
	}
	// The feasibility witness was cached anyway: the retry must reach
	// the same verdict through the cache tier's witness remap.
	res = mustAdmit(t, s, AdmitRequest{Name: "d", W: 4, H: 8, Dur: 10})
	if res.Decision != DecisionRejected {
		t.Fatalf("retry = %s, want rejected", res.Decision)
	}
	if c := s.Counters(); c.ByCache != 1 {
		t.Fatalf("ByCache %d, want 1 (witness served from cache)", c.ByCache)
	}
	// Restoring the budget admits with exactly one move.
	s.cfg.MaxMoves = 16
	res = mustAdmit(t, s, AdmitRequest{Name: "d", W: 4, H: 8, Dur: 10})
	if res.Decision != DecisionDefrag || len(res.Moves) != 1 {
		t.Fatalf("admit = %s with %d moves, want defrag with 1", res.Decision, len(res.Moves))
	}
	if res.DecidedBy != "cache" {
		t.Fatalf("decided by %s, want cache (witness reuse)", res.DecidedBy)
	}
}

func TestDeadlineReservesFutureStart(t *testing.T) {
	s := mustSession(t, Config{W: 8, H: 8})
	mustAdmit(t, s, AdmitRequest{Name: "a", W: 8, H: 8, Dur: 5})

	// No room now; with slack the slot finder reserves the start right
	// after a finishes.
	res := mustAdmit(t, s, AdmitRequest{Name: "b", W: 2, H: 2, Dur: 3, Deadline: 10})
	if res.Decision != DecisionPlaced || res.DecidedBy != "slot" {
		t.Fatalf("admit = %s by %s, want placed by slot", res.Decision, res.DecidedBy)
	}
	if res.Start != 5 {
		t.Fatalf("reserved start %d, want 5 (right after a finishes)", res.Start)
	}
	// Without slack the same module is rejected outright — and the
	// rejection is exact, not a heuristic miss.
	res = mustAdmit(t, s, AdmitRequest{Name: "c", W: 2, H: 2, Dur: 3})
	if res.Decision != DecisionRejected {
		t.Fatalf("admit-now = %s, want rejected", res.Decision)
	}
	// Advance past a's finish: the reservation activates.
	snap := s.State(6)
	if len(snap.Residents) != 1 || snap.Free.FreeCells != 60 {
		t.Fatalf("after activation: %d residents, %d free, want 1 and 60", len(snap.Residents), snap.Free.FreeCells)
	}
}

func TestExplicitDefragCompacts(t *testing.T) {
	s, bID := fragmentSession(t, 20)

	plan, err := s.Defrag(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].ID != bID {
		t.Fatalf("defrag moves %+v, want one move of id %d", plan.Moves, bID)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("defrag plan replay failed: %v", err)
	}
	snap := s.State(0)
	if snap.Free.LargestW != 6 {
		t.Fatalf("largest free width after defrag %d, want 6", snap.Free.LargestW)
	}
	// A second defrag on the compact layout must be a no-op.
	plan, err = s.Defrag(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Fatalf("second defrag moved %d modules, want no-op", len(plan.Moves))
	}
	if c := s.Counters(); c.Defrags != 1 {
		t.Fatalf("defrag counter %d, want 1", c.Defrags)
	}
}

func TestSessionEventsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var phases []string
	s := mustSession(t, Config{W: 8, H: 8, Metrics: reg, Events: func(sn obs.Snapshot) {
		mu.Lock()
		phases = append(phases, sn.Phase)
		mu.Unlock()
	}})
	a := mustAdmit(t, s, AdmitRequest{Name: "a", W: 8, H: 8, Dur: 9})
	mustAdmit(t, s, AdmitRequest{Name: "b", W: 1, H: 1, Dur: 2})
	if err := s.Depart(a.ID, 1); err != nil {
		t.Fatal(err)
	}
	want := []string{"admit:placed", "admit:rejected", "depart"}
	mu.Lock()
	defer mu.Unlock()
	if len(phases) != len(want) {
		t.Fatalf("event phases %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("event phases %v, want %v", phases, want)
		}
	}
	if reg.Snapshot()["online.probe.exact"] != 1 {
		t.Fatalf("metrics %v, want one exact probe", reg.Snapshot())
	}
}

func TestConcurrentSessionAccess(t *testing.T) {
	// The node limit keeps saturated-array probes cheap: this test is
	// about locking, not about exact answers.
	s := mustSession(t, Config{W: 16, H: 16, ProbeNodeLimit: 500})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := s.Admit(context.Background(), AdmitRequest{W: 1 + i%4, H: 1 + (i+g)%4, Dur: 2 + i%5})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Decision == DecisionPlaced && i%3 == 0 {
					_ = s.Depart(res.ID, 0)
				}
				_ = s.State(0)
			}
		}(g)
	}
	wg.Wait()
	s.Advance(1 << 20)
	if n := len(s.State(1 << 20).Residents); n != 0 {
		t.Fatalf("%d residents after the far future, want 0", n)
	}
}
