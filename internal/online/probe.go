package online

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fpga3d/internal/fpga"
	"fpga3d/internal/model"
	"fpga3d/internal/solver"
	"fpga3d/internal/strategy"
)

// staticTask is one entry of the equivalent static instance: a resident
// (relID ≥ 0) or the candidate module (relID < 0), with its start time
// relative to the session clock and its current position (meaningful
// for residents only).
type staticTask struct {
	relID int // resident ID, or -1 for the candidate
	name  string
	w, h  int
	dur   int // remaining duration for active residents
	start int // relative to s.now (0 for active residents and candidate)
	curX  int
	curY  int
}

// staticProblem builds the static fixed-schedule instance equivalent to
// "can this module start now": active residents contribute their
// remaining duration at start 0, reserved residents their full duration
// at their reserved relative start, and the candidate (when non-nil)
// starts at 0. Construction order is residents by ascending ID, then
// the candidate; T is the maximum relative finish.
func (s *Session) staticProblem(cand *AdmitRequest) (tasks []staticTask, T int) {
	for _, r := range s.residentsLocked() {
		t := staticTask{relID: r.ID, name: r.Name, w: r.W, h: r.H, curX: r.X, curY: r.Y}
		if r.Start <= s.now {
			t.start, t.dur = 0, r.Finish()-s.now
		} else {
			t.start, t.dur = r.Start-s.now, r.Dur
		}
		tasks = append(tasks, t)
		if f := t.start + t.dur; f > T {
			T = f
		}
	}
	if cand != nil {
		tasks = append(tasks, staticTask{relID: -1, name: cand.Name, w: cand.W, h: cand.H, dur: cand.Dur})
		if cand.Dur > T {
			T = cand.Dur
		}
	}
	return tasks, T
}

// instanceOf materializes the model instance and start vector for a
// static problem, in construction order.
func instanceOf(tasks []staticTask) (*model.Instance, []int) {
	in := &model.Instance{Name: "online-probe", Tasks: make([]model.Task, len(tasks))}
	starts := make([]int, len(tasks))
	for i, t := range tasks {
		name := t.name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		in.Tasks[i] = model.Task{Name: fmt.Sprintf("%s#%d", name, i), W: t.w, H: t.h, Dur: t.dur}
		starts[i] = t.start
	}
	return in, starts
}

// probeKey returns a sound cache key for a static problem. The
// instance's order-independent CanonicalHash alone is not enough: start
// times live in a separate positional vector, so two different
// problems (same task multiset, starts attached to different tasks)
// could share a hash. Appending the (w,h,dur,start) tuples in sorted
// order closes that hole — the sorted tuple list determines feasibility
// exactly, because tasks with identical tuples are interchangeable.
func probeKey(in *model.Instance, tasks []staticTask, c model.Container) (string, []int) {
	rank := sortedRanks(tasks)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%dx%dx%d", in.CanonicalHash(), c.W, c.H, c.T)
	for _, i := range rank {
		t := tasks[i]
		fmt.Fprintf(&b, "|%d:%d:%d:%d", t.w, t.h, t.dur, t.start)
	}
	return b.String(), rank
}

// sortedRanks returns task indices ordered by (w, h, dur, start), with
// construction index as the stable tiebreak. Tasks with equal tuples
// are interchangeable boxes, so a cached witness stored in this order
// can be remapped onto any session whose problem sorts identically.
func sortedRanks(tasks []staticTask) []int {
	rank := make([]int, len(tasks))
	for i := range rank {
		rank[i] = i
	}
	sort.Slice(rank, func(a, b int) bool {
		x, y := tasks[rank[a]], tasks[rank[b]]
		if x.w != y.w {
			return x.w < y.w
		}
		if x.h != y.h {
			return x.h < y.h
		}
		if x.dur != y.dur {
			return x.dur < y.dur
		}
		if x.start != y.start {
			return x.start < y.start
		}
		return rank[a] < rank[b]
	})
	return rank
}

// probeEntry is one cached probe answer. For feasible answers, coords
// holds the witness positions aligned with the sorted tuple order.
type probeEntry struct {
	feasible bool
	coords   [][2]int
}

// probeCache is a bounded FIFO map from probe keys to decisions and
// incumbent witnesses. Unknown answers are never stored.
type probeCache struct {
	cap     int
	entries map[string]*probeEntry
	order   []string
	hits    int64
	misses  int64
}

// newProbeCache returns a cache holding up to size entries (0 = 128,
// negative disables caching).
func newProbeCache(size int) *probeCache {
	if size == 0 {
		size = 128
	}
	if size < 0 {
		return &probeCache{}
	}
	return &probeCache{cap: size, entries: make(map[string]*probeEntry)}
}

func (c *probeCache) get(key string) *probeEntry {
	if c.entries == nil {
		return nil
	}
	e := c.entries[key]
	if e == nil {
		c.misses++
		return nil
	}
	c.hits++
	return e
}

func (c *probeCache) put(key string, e *probeEntry) {
	if c.entries == nil {
		return
	}
	if _, ok := c.entries[key]; ok {
		c.entries[key] = e
		return
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = e
	c.order = append(c.order, key)
}

// probeLocked runs ladder tiers 3–5: cached witness, greedy repack,
// exact probe — and turns a relocating witness into a validated,
// applied defragmentation plan. Callers hold s.mu.
func (s *Session) probeLocked(ctx context.Context, req AdmitRequest) (*AdmitResult, error) {
	tasks, T := s.staticProblem(&req)
	in, starts := instanceOf(tasks)
	c := s.device(T)
	key, rank := probeKey(in, tasks, c)

	// Tier 3: cached answer. A stored infeasibility is order-invariant
	// and final; a stored witness is remapped through the sorted ranks
	// and re-verified positionally before trust (verify-on-hit, like
	// the serving cache).
	if e := s.cache.get(key); e != nil {
		s.metric("online.probe.cache.hits")
		if !e.feasible {
			s.count.ByCache++
			return &AdmitResult{Decision: DecisionRejected, DecidedBy: "cache"}, nil
		}
		if p := remapWitness(e, rank, len(tasks), in, c, starts); p != nil {
			s.count.ByCache++
			return s.applyWitnessLocked(req, tasks, p, "cache", 0)
		}
	} else {
		s.metric("online.probe.cache.misses")
	}

	// Tier 4a: greedy bottom-left repack. Only sound when every task
	// starts at 0 (pure 2D packing); with reserved future starts the
	// exact probe handles the general case.
	if allZeroStarts(tasks) {
		if p := repack2D(tasks, s.cfg.W, s.cfg.H); p != nil {
			s.cache.put(key, entryFor(p, rank))
			s.count.ByRepack++
			return s.applyWitnessLocked(req, tasks, p, "repack", 0)
		}
	}

	// Tier 4b: exact fixed-schedule probe with full relocation freedom.
	s.metric("online.probe.exact")
	res, err := solver.FeasibleFixedScheduleCtx(ctx, in, c, starts, solver.Options{
		NodeLimit: s.cfg.ProbeNodeLimit,
		Workers:   s.cfg.Workers,
		Strategy:  s.cfg.Strategy,
		Metrics:   s.cfg.Metrics,
	})
	if err != nil {
		// The static instance is session-constructed, so a validation
		// error here is an internal invariant violation, not an
		// admission answer.
		return nil, fmt.Errorf("online: static probe rejected its own instance: %w", err)
	}
	s.count.ProbeNodes += res.Stats.Nodes
	switch res.Decision {
	case strategy.Feasible:
		s.cache.put(key, entryFor(res.Placement, rank))
		s.count.ByProbe++
		return s.applyWitnessLocked(req, tasks, res.Placement, "probe", res.Stats.Nodes)
	case strategy.Infeasible:
		s.cache.put(key, &probeEntry{feasible: false})
		s.count.ByProbe++
		return &AdmitResult{Decision: DecisionRejected, DecidedBy: "probe", Nodes: res.Stats.Nodes}, nil
	default:
		return &AdmitResult{Decision: DecisionUnknown, DecidedBy: "probe", Nodes: res.Stats.Nodes}, nil
	}
}

// entryFor stores a witness in sorted tuple order.
func entryFor(p *model.Placement, rank []int) *probeEntry {
	e := &probeEntry{feasible: true, coords: make([][2]int, len(rank))}
	for k, i := range rank {
		e.coords[k] = [2]int{p.X[i], p.Y[i]}
	}
	return e
}

// remapWitness reconstructs a placement for the current construction
// order from a cached witness: sorted rank k of the current problem
// takes the stored coordinates of rank k. Equal tuples are
// interchangeable, so the assignment is valid whenever the cached
// problem really matches — which the positional re-verification
// confirms (nil on any mismatch).
func remapWitness(e *probeEntry, rank []int, n int, in *model.Instance, c model.Container, starts []int) *model.Placement {
	if len(e.coords) != n {
		return nil
	}
	p := model.NewPlacement(n)
	for k, i := range rank {
		p.X[i], p.Y[i] = e.coords[k][0], e.coords[k][1]
	}
	copy(p.S, starts)
	order, err := in.Order()
	if err != nil {
		return nil
	}
	if err := p.Verify(in, c, order); err != nil {
		return nil
	}
	return p
}

// allZeroStarts reports whether every task starts at relative time 0.
func allZeroStarts(tasks []staticTask) bool {
	for _, t := range tasks {
		if t.start != 0 {
			return false
		}
	}
	return true
}

// repack2D greedily packs all tasks (area-descending, bottom-left
// first-fit) onto an empty grid. It returns a full witness placement in
// construction order, or nil when the greedy order fails — in which
// case the exact probe decides.
func repack2D(tasks []staticTask, w, h int) *model.Placement {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		aa, ab := ta.w*ta.h, tb.w*tb.h
		if aa != ab {
			return aa > ab
		}
		return order[a] < order[b]
	})
	g := fpga.NewGrid(w, h)
	p := model.NewPlacement(len(tasks))
	for _, i := range order {
		t := tasks[i]
		x, y, ok := bottomLeft(g, t.w, t.h)
		if !ok {
			return nil
		}
		g.Fill(x, y, t.w, t.h)
		p.X[i], p.Y[i] = x, y
	}
	return p
}

// bottomLeft scans for the lowest, then leftmost position where a w×h
// module fits on the grid.
func bottomLeft(g *fpga.Grid, w, h int) (int, int, bool) {
	for y := 0; y+h <= g.H; y++ {
		for x := 0; x+w <= g.W; x++ {
			if g.RegionFree(x, y, w, h) {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

// metric bumps a counter on the session registry (nil-safe).
func (s *Session) metric(name string) { s.cfg.Metrics.Counter(name).Inc() }
