package online

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// ScriptSchema stamps serialized event scripts. The format is a single
// JSON object:
//
//	{
//	  "schema": "fpga3d/online-script/v1",
//	  "name":   "mixed-42",
//	  "device": {"w": 16, "h": 16},
//	  "seed":   42,
//	  "events": [
//	    {"at": 0, "kind": "arrive", "name": "m0", "w": 4, "h": 3,
//	     "dur": 20, "deadline": 2},
//	    {"at": 9, "kind": "depart", "name": "m0"},
//	    {"at": 12, "kind": "defrag"}
//	  ]
//	}
//
// Events are ordered by non-decreasing "at" (the logical cycle the
// event fires). "arrive" admits a w×h×dur module; "deadline" is the
// latest admissible start, defaulting to "at" (admit-now). "depart"
// removes the named module early; departing a module that was rejected
// or already finished is tolerated and skipped. "defrag" triggers a
// proactive compaction.
const ScriptSchema = "fpga3d/online-script/v1"

// Event kinds of a script.
const (
	// EventArrive admits a module.
	EventArrive = "arrive"
	// EventDepart removes a module by name.
	EventDepart = "depart"
	// EventDefrag triggers proactive compaction.
	EventDefrag = "defrag"
)

// Device is the spatial footprint a script targets.
type Device struct {
	W int `json:"w"`
	H int `json:"h"`
}

// Event is one step of an online workload script.
type Event struct {
	At       int    `json:"at"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	W        int    `json:"w,omitempty"`
	H        int    `json:"h,omitempty"`
	Dur      int    `json:"dur,omitempty"`
	Deadline int    `json:"deadline,omitempty"`
}

// Script is a reproducible arrival/departure workload for one device.
type Script struct {
	Schema string  `json:"schema"`
	Name   string  `json:"name,omitempty"`
	Device Device  `json:"device"`
	Seed   int64   `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Validate checks the script's schema stamp, device and event shapes.
func (s *Script) Validate() error {
	if s.Schema != ScriptSchema {
		return fmt.Errorf("online: script schema %q, want %q", s.Schema, ScriptSchema)
	}
	if s.Device.W < 1 || s.Device.H < 1 {
		return fmt.Errorf("online: script device %dx%d is not positive", s.Device.W, s.Device.H)
	}
	prev := 0
	for i, e := range s.Events {
		if e.At < prev {
			return fmt.Errorf("online: event %d fires at %d, before its predecessor at %d", i, e.At, prev)
		}
		prev = e.At
		switch e.Kind {
		case EventArrive:
			if e.Name == "" || e.W < 1 || e.H < 1 || e.Dur < 1 {
				return fmt.Errorf("online: arrive event %d needs a name and positive w/h/dur", i)
			}
		case EventDepart:
			if e.Name == "" {
				return fmt.Errorf("online: depart event %d needs a name", i)
			}
		case EventDefrag:
		default:
			return fmt.Errorf("online: event %d has unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// WriteScript serializes the script as indented JSON.
func WriteScript(w io.Writer, s *Script) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadScript parses and validates a script.
func ReadScript(r io.Reader) (*Script, error) {
	var s Script
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("online: parse script: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// GenParams tunes the seeded script generator.
type GenParams struct {
	// Name labels the script (defaults to "online-<seed>").
	Name string
	// Seed drives the deterministic generator.
	Seed int64
	// W, H are the device dimensions.
	W, H int
	// Events is the number of arrival events (departures and defrags
	// are added on top). Default 32.
	Events int
	// MaxSize bounds module side lengths (default max(2, W/3)).
	MaxSize int
	// MaxDur bounds module execution times (default 24).
	MaxDur int
	// MaxGap bounds the cycles between consecutive arrivals
	// (default 4).
	MaxGap int
	// DepartFrac is the fraction of admitted modules that also get an
	// explicit early departure event (default 0.3).
	DepartFrac float64
	// DefragEvery inserts a defrag event after every n-th arrival
	// (0 disables).
	DefragEvery int
	// DeadlineSlack bounds the extra cycles granted past the arrival
	// for the admission deadline (0 = admit-now scripts, the shape the
	// differential test needs).
	DeadlineSlack int
}

// Generate builds a reproducible workload script from the seed: module
// sizes, durations, inter-arrival gaps, departures and deadlines are
// all drawn from one rand stream, so equal params give byte-equal
// scripts.
func Generate(p GenParams) *Script {
	if p.Events <= 0 {
		p.Events = 32
	}
	if p.MaxSize <= 0 {
		p.MaxSize = p.W / 3
		if p.MaxSize < 2 {
			p.MaxSize = 2
		}
	}
	if p.MaxDur <= 0 {
		p.MaxDur = 24
	}
	if p.MaxGap <= 0 {
		p.MaxGap = 4
	}
	if p.DepartFrac == 0 {
		p.DepartFrac = 0.3
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("online-%d", p.Seed)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Script{Schema: ScriptSchema, Name: p.Name, Device: Device{W: p.W, H: p.H}, Seed: p.Seed}
	clamp := func(v, hi int) int {
		if v > hi {
			return hi
		}
		return v
	}
	at := 0
	var pending []Event // departure events awaiting their slot
	for i := 0; i < p.Events; i++ {
		w := clamp(1+rng.Intn(p.MaxSize), p.W)
		h := clamp(1+rng.Intn(p.MaxSize), p.H)
		dur := 2 + rng.Intn(p.MaxDur-1)
		ev := Event{At: at, Kind: EventArrive, Name: fmt.Sprintf("m%d", i), W: w, H: h, Dur: dur}
		if p.DeadlineSlack > 0 {
			ev.Deadline = at + rng.Intn(p.DeadlineSlack+1)
		}
		s.Events = append(s.Events, ev)
		if rng.Float64() < p.DepartFrac && dur > 2 {
			pending = append(pending, Event{
				At:   at + 1 + rng.Intn(dur-1),
				Kind: EventDepart, Name: ev.Name,
			})
		}
		if p.DefragEvery > 0 && (i+1)%p.DefragEvery == 0 {
			s.Events = append(s.Events, Event{At: at, Kind: EventDefrag})
		}
		at += 1 + rng.Intn(p.MaxGap)
		// Flush departures whose time has come, keeping the event list
		// sorted by At.
		for i := 0; i < len(pending); {
			if pending[i].At <= at {
				s.Events = append(s.Events, pending[i])
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
	}
	s.Events = append(s.Events, pending...)
	sortEventsByAt(s.Events)
	return s
}

// sortEventsByAt stably orders events by firing cycle.
func sortEventsByAt(events []Event) {
	// Insertion sort keeps generation order among same-cycle events
	// (stable) without importing sort for a trivially small slice.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// ReplayStats summarizes one script replay.
type ReplayStats struct {
	Events       int             `json:"events"`
	Admitted     int             `json:"admitted"`
	Rejected     int             `json:"rejected"`
	Unknown      int             `json:"unknown,omitempty"`
	Departed     int             `json:"departed"`
	SkippedDeps  int             `json:"skipped_departs,omitempty"`
	Defrags      int             `json:"defrags"`
	DefragMoves  int             `json:"defrag_moves"`
	AdmitLatency []time.Duration `json:"-"`
}

// ReplayObserver, when non-nil, sees every event outcome during Replay:
// res is nil for non-arrival events, plan is nil except for defrag
// events.
type ReplayObserver func(ev Event, res *AdmitResult, plan *Plan)

// Replay drives a session through a script and collects workload
// statistics, including the wall-clock latency of every admission
// decision. Departures of unknown (rejected, finished or never
// admitted) modules are skipped, so generated scripts replay cleanly
// regardless of admission outcomes.
func Replay(ctx context.Context, s *Session, sc *Script, obs ReplayObserver) (*ReplayStats, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	stats := &ReplayStats{Events: len(sc.Events)}
	live := make(map[string]int) // module name → session ID
	for _, ev := range sc.Events {
		switch ev.Kind {
		case EventArrive:
			req := AdmitRequest{Name: ev.Name, W: ev.W, H: ev.H, Dur: ev.Dur, At: ev.At, Deadline: ev.Deadline}
			t0 := time.Now()
			res, err := s.Admit(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("online: replay %q at %d: %w", ev.Name, ev.At, err)
			}
			stats.AdmitLatency = append(stats.AdmitLatency, time.Since(t0))
			switch res.Decision {
			case DecisionPlaced, DecisionDefrag:
				stats.Admitted++
				live[ev.Name] = res.ID
				if res.Decision == DecisionDefrag {
					stats.Defrags++
					stats.DefragMoves += len(res.Moves)
				}
			case DecisionRejected:
				stats.Rejected++
			default:
				stats.Unknown++
			}
			if obs != nil {
				obs(ev, res, nil)
			}
		case EventDepart:
			id, ok := live[ev.Name]
			if !ok {
				stats.SkippedDeps++
				continue
			}
			delete(live, ev.Name)
			if err := s.Depart(id, ev.At); err != nil {
				// The module ran to completion before the departure
				// fired — the session already expired it.
				stats.SkippedDeps++
				continue
			}
			stats.Departed++
			if obs != nil {
				obs(ev, nil, nil)
			}
		case EventDefrag:
			plan, err := s.Defrag(ev.At)
			if err != nil {
				return nil, fmt.Errorf("online: replay defrag at %d: %w", ev.At, err)
			}
			if len(plan.Moves) > 0 {
				stats.Defrags++
				stats.DefragMoves += len(plan.Moves)
			}
			if obs != nil {
				obs(ev, nil, plan)
			}
		}
	}
	return stats, nil
}
