package online

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Seed: 7, W: 12, H: 12, Events: 20, DefragEvery: 6, DeadlineSlack: 4}
	a, b := Generate(p), Generate(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal params must generate identical scripts")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated script invalid: %v", err)
	}
	arrivals := 0
	for _, ev := range a.Events {
		if ev.Kind == EventArrive {
			arrivals++
			if ev.W > 12 || ev.H > 12 || ev.Dur < 2 {
				t.Fatalf("arrival out of bounds: %+v", ev)
			}
		}
	}
	if arrivals != 20 {
		t.Fatalf("%d arrivals, want 20", arrivals)
	}
	if c := Generate(GenParams{Seed: 8, W: 12, H: 12, Events: 20}); reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds must generate different scripts")
	}
}

func TestScriptRoundTrip(t *testing.T) {
	s := Generate(GenParams{Seed: 3, W: 8, H: 8, Events: 12, DepartFrac: 0.5})
	var buf bytes.Buffer
	if err := WriteScript(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatal("script did not survive the JSON round trip")
	}
}

func TestScriptValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Script)
	}{
		{"bad schema", func(s *Script) { s.Schema = "nope/v9" }},
		{"bad device", func(s *Script) { s.Device.W = 0 }},
		{"unsorted", func(s *Script) { s.Events[0].At = 99 }},
		{"nameless arrive", func(s *Script) { s.Events[0].Name = "" }},
		{"zero dur", func(s *Script) { s.Events[0].Dur = 0 }},
		{"unknown kind", func(s *Script) { s.Events[0].Kind = "explode" }},
	}
	for _, tc := range cases {
		s := Generate(GenParams{Seed: 1, W: 8, H: 8, Events: 4})
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a broken script", tc.name)
		}
	}
	if _, err := ReadScript(strings.NewReader(`{"schema":"x"}`)); err == nil {
		t.Fatal("ReadScript accepted a wrong schema")
	}
	if _, err := ReadScript(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("ReadScript accepted malformed JSON")
	}
}

func TestReplayAccountsForEveryEvent(t *testing.T) {
	sc := Generate(GenParams{Seed: 5, W: 10, H: 10, Events: 24, MaxSize: 4, MaxDur: 12, DepartFrac: 0.4, DefragEvery: 8})
	s := mustSession(t, Config{W: 10, H: 10})
	seen := 0
	stats, err := Replay(context.Background(), s, sc, func(ev Event, res *AdmitResult, plan *Plan) {
		seen++
		if ev.Kind == EventArrive && res == nil {
			t.Error("arrival observed without a result")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admitted+stats.Rejected+stats.Unknown != 24 {
		t.Fatalf("admit outcomes %d+%d+%d don't cover 24 arrivals",
			stats.Admitted, stats.Rejected, stats.Unknown)
	}
	if got := len(stats.AdmitLatency); got != 24 {
		t.Fatalf("%d admit latencies recorded, want 24", got)
	}
	if stats.Departed+stats.SkippedDeps == 0 && stats.Events > 24 {
		t.Fatal("script had departures but none were accounted for")
	}
	// Replaying on a mismatched device must fail validation up front.
	bad := *sc
	bad.Device.W = 0
	if _, err := Replay(context.Background(), s, &bad, nil); err == nil {
		t.Fatal("Replay accepted an invalid script")
	}
}
