package server

import (
	"net/http"
	"testing"
	"time"
)

// TestAnytimeSyncMinimizeTime: an anytime minimize-time request that
// runs to completion answers with the same optimum as the plain
// request, a proven gap of exactly 0, and best_bound equal to the
// value.
func TestAnytimeSyncMinimizeTime(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	plainBody := solveBody(t, easyInstance(), `null`, `"w": 4, "h": 4, "no_cache": true`)
	code, plain, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", plainBody)
	if code != http.StatusOK || plain.Value == nil {
		t.Fatalf("plain minimize-time: code=%d resp=%+v", code, plain)
	}
	if plain.Gap != nil || plain.BestBound != nil {
		t.Fatalf("plain response carries anytime fields: %+v", plain)
	}

	anyBody := solveBody(t, easyInstance(), `null`, `"w": 4, "h": 4, "no_cache": true, "anytime": true`)
	code, any, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", anyBody)
	if code != http.StatusOK || any.Value == nil {
		t.Fatalf("anytime minimize-time: code=%d resp=%+v", code, any)
	}
	if *any.Value != *plain.Value {
		t.Fatalf("anytime optimum %d ≠ plain optimum %d", *any.Value, *plain.Value)
	}
	if any.Gap == nil || *any.Gap != 0 {
		t.Fatalf("completed anytime response gap = %v, want 0", any.Gap)
	}
	if any.BestBound == nil || *any.BestBound != *any.Value {
		t.Fatalf("completed anytime response best_bound = %v, want value %d", any.BestBound, *any.Value)
	}
}

// TestAnytimeRejectedOutsideMinimizeTime: "anytime" is a minimize-time
// refinement; on every other question it is a 400, synchronous or
// async.
func TestAnytimeRejectedOutsideMinimizeTime(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	solve := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"anytime": true`)
	if code, _, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", solve); code != http.StatusBadRequest {
		t.Errorf("anytime on /v1/solve: want 400, got %d", code)
	}
	chip := solveBody(t, easyInstance(), `null`, `"t": 6, "anytime": true`)
	if code, _, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-chip", chip); code != http.StatusBadRequest {
		t.Errorf("anytime on /v1/minimize-chip: want 400, got %d", code)
	}
	job := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"mode":"solve", "anytime": true`)
	if code, _, _ := postJob(t, ts.Client(), ts.URL, job); code != http.StatusBadRequest {
		t.Errorf("anytime solve job: want 400, got %d", code)
	}
}

// TestAnytimeCacheHitSynthesizesGap: the cache stores gap-stripped
// completed answers; an anytime request served from it re-synthesizes
// the proven gap-0 pair instead of omitting the fields.
func TestAnytimeCacheHitSynthesizesGap(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	warm := solveBody(t, easyInstance(), `null`, `"w": 4, "h": 4`)
	code, first, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", warm)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("warming solve: code=%d cached=%v", code, first.Cached)
	}

	before := oppWork(s.Registry())
	anyBody := solveBody(t, easyInstance(), `null`, `"w": 4, "h": 4, "anytime": true`)
	code, hit, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", anyBody)
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("anytime request not served from cache: code=%d resp=%+v", code, hit)
	}
	if after := oppWork(s.Registry()); after != before {
		t.Fatalf("cache hit still invoked the solver: opp work %d -> %d", before, after)
	}
	if hit.Gap == nil || *hit.Gap != 0 {
		t.Fatalf("anytime cache hit gap = %v, want synthesized 0", hit.Gap)
	}
	if hit.BestBound == nil || hit.Value == nil || *hit.BestBound != *hit.Value {
		t.Fatalf("anytime cache hit best_bound = %v, want value %v", hit.BestBound, hit.Value)
	}
}

// TestAnytimePartial504CarriesGap: a deadline that expires mid-
// refinement must still answer with the best incumbent and a positive
// gap — the entire point of the anytime tier.
func TestAnytimePartial504CarriesGap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	body := solveBody(t, hardInstance(), `null`,
		`"w": 6, "h": 6, "timeout_ms": 300, "no_cache": true, "anytime": true`)
	code, resp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", body)
	switch code {
	case http.StatusGatewayTimeout:
		if resp.Decision != "unknown" {
			t.Fatalf("504 decision = %q, want unknown", resp.Decision)
		}
		if resp.Value == nil || *resp.Value <= 0 || resp.Placement == nil {
			t.Fatalf("partial anytime answer carries no incumbent: %+v", resp)
		}
		if resp.Gap == nil || *resp.Gap <= 0 || *resp.Gap > 1 {
			t.Fatalf("partial anytime gap = %v, want in (0, 1]", resp.Gap)
		}
		if resp.BestBound == nil || resp.LowerBound == nil || *resp.BestBound < *resp.LowerBound {
			t.Fatalf("refined bound %v below stage-1 bound %v", resp.BestBound, resp.LowerBound)
		}
	case http.StatusOK:
		// The machine outran the deadline; the completed answer must be
		// proven.
		if resp.Gap == nil || *resp.Gap != 0 {
			t.Fatalf("completed anytime gap = %v, want 0", resp.Gap)
		}
	default:
		t.Fatalf("anytime partial request: unexpected status %d (%+v)", code, resp)
	}
}

// TestAnytimeJobStreamsGap: an anytime job surfaces live incumbent
// state on its snapshots and its SSE stream; the gap never increases
// across frames and the terminal frame proves optimality at gap 0.
func TestAnytimeJobStreamsGap(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	body := solveBody(t, easyInstance(), `null`,
		`"mode":"minimize-time", "w": 4, "h": 4, "no_cache": true, "anytime": true`)
	code, submitted, _ := postJob(t, ts.Client(), ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}

	// Attach to the job's SSE stream; even if the job already finished,
	// the retained stream replays the last frame and the terminal done.
	var resp *http.Response
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		resp, err = ts.Client().Get(ts.URL + "/v1/progress/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("job progress stream never appeared (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatalf("SSE stream did not end in done: %d events", len(events))
	}
	prev := 2.0 // above any valid gap
	for i, ev := range events {
		if ev.data.Gap == nil {
			continue
		}
		if *ev.data.Gap > prev+1e-12 {
			t.Fatalf("gap increased across SSE frames at %d: %v → %v", i, prev, *ev.data.Gap)
		}
		prev = *ev.data.Gap
		if ev.data.BestMakespan == nil || ev.data.LowerBound == nil {
			t.Fatalf("anytime frame %d lacks incumbent fields: %+v", i, ev.data)
		}
	}
	last := events[len(events)-1]
	if last.data.Gap == nil || *last.data.Gap != 0 {
		t.Fatalf("terminal SSE frame gap = %v, want 0", last.data.Gap)
	}

	done := pollJob(t, ts.Client(), ts.URL, submitted.ID, func(j *jobWire) bool { return j.State == "done" })
	if done.BestMakespan == nil || done.LowerBound == nil || done.Gap == nil {
		t.Fatalf("done anytime job snapshot lacks incumbent state: %+v", done)
	}
	if *done.Gap != 0 || *done.BestMakespan != *done.LowerBound {
		t.Fatalf("done anytime job gap = %v (best %v, lower %v), want proven 0",
			*done.Gap, *done.BestMakespan, *done.LowerBound)
	}
	if done.Result == nil || done.Result.Gap == nil || *done.Result.Gap != 0 {
		t.Fatalf("done anytime job result lacks gap 0: %+v", done.Result)
	}
	if done.Result.BestBound == nil || done.Result.Value == nil || *done.Result.BestBound != *done.Result.Value {
		t.Fatalf("done anytime job result best_bound %v ≠ value %v", done.Result.BestBound, done.Result.Value)
	}
	waitExecutors(t, s, 5*time.Second)
}
