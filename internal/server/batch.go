package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"fpga3d"
	"fpga3d/internal/obs"
)

// maxBatchDefault bounds entries per /v1/solve-batch request when
// Config.MaxBatch is zero.
const maxBatchDefault = 64

// batchEntry is one instance inside a batch body: a solveRequest plus
// the question kind ("solve" by default, or "minimize-time" /
// "minimize-chip"). Entry-level timeout_ms/strategy/no_cache override
// the batch-level defaults.
type batchEntry struct {
	Mode string `json:"mode,omitempty"`
	solveRequest
}

// batchRequest is the JSON body of POST /v1/solve-batch: up to
// -max-batch entries answered in one round trip. TimeoutMS and
// Strategy are per-entry defaults for entries that do not set their
// own; each entry still runs under its own deadline and admission
// slot, so one slow instance cannot time out its siblings.
type batchRequest struct {
	Requests  []batchEntry `json:"requests"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
	Strategy  string       `json:"strategy,omitempty"`
}

// batchError reports one failed batch entry: its position in the
// request, its canonical hash when the instance was parseable, and
// what went wrong. Entries that hit their deadline or the admission
// queue land here (batch results carry definitive answers only).
type batchError struct {
	Index int    `json:"index"`
	Hash  string `json:"canonical_hash,omitempty"`
	Error string `json:"error"`
}

// batchResponse is the JSON answer of POST /v1/solve-batch. Results
// are keyed by each instance's CanonicalHash; Order maps request
// positions to those keys ("" for entries that produced no result).
// The request as a whole succeeds (200) whenever the body was
// well-formed — per-entry failures are partial by design and reported
// in Errors.
type batchResponse struct {
	// Count is the number of entries received.
	Count int `json:"count"`
	// Succeeded is the number of entries with a result in Results.
	Succeeded int `json:"succeeded"`
	// Failed is the number of entries in Errors.
	Failed int `json:"failed"`
	// Deduped counts entries answered by another entry's solve because
	// they asked the identical question of a canonically identical
	// instance.
	Deduped int `json:"deduped,omitempty"`
	// Results maps canonical instance hashes to their answers.
	Results map[string]*solveResponse `json:"results"`
	// Order lists the canonical hash of each entry, in request order.
	Order []string `json:"order"`
	// Errors lists the entries that produced no result.
	Errors []batchError `json:"errors,omitempty"`
	// RequestID echoes the batch request's X-Request-Id.
	RequestID string `json:"request_id,omitempty"`
}

// batchItem is the per-entry working state of one batch request.
type batchItem struct {
	index  int
	mode   *solveMode
	req    *solveRequest
	in     *fpga3d.Instance
	strat  string
	hash   string
	key    string
	leader *batchItem // non-nil on deduped followers
	resp   *solveResponse
	errMsg string
}

// modeByName maps a batch/job "mode" field to its solveMode; the empty
// string means "solve".
func modeByName(name string) (*solveMode, error) {
	switch name {
	case "", "solve":
		return modeSolve, nil
	case "minimize-time":
		return modeMinTime, nil
	case "minimize-chip":
		return modeMinChip, nil
	}
	return nil, fmt.Errorf("unknown mode %q (valid: solve, minimize-time, minimize-chip)", name)
}

// handleSolveBatch serves POST /v1/solve-batch: N instances in one
// request, answered through the same cache, admission pool and
// strategy selection as the synchronous endpoints. Entries asking the
// identical question of canonically identical instances are solved
// once; distinct questions about the same instance in one batch are
// rejected per entry, because results are keyed by canonical hash.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.reg.Counter(obs.MetricRequests + ".solve_batch").Inc()

	var req batchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	maxBatch := s.cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = maxBatchDefault
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, `batch needs a non-empty "requests" array`)
		return
	}
	if len(req.Requests) > maxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d entries exceeds the %d-entry limit", len(req.Requests), maxBatch))
		return
	}
	s.reg.Counter(obs.MetricBatchEntries).Add(int64(len(req.Requests)))

	resp := &batchResponse{
		Count:     len(req.Requests),
		Results:   make(map[string]*solveResponse),
		Order:     make([]string, len(req.Requests)),
		RequestID: obs.RequestIDFromContext(r.Context()),
	}

	// Prepare every entry, dedup identical questions, and reject
	// hash-key collisions (two different questions about one instance
	// cannot share the response map).
	items := make([]*batchItem, 0, len(req.Requests))
	byKey := make(map[string]*batchItem)  // cache key → leader
	byHash := make(map[string]*batchItem) // canonical hash → first holder
	for i := range req.Requests {
		e := &req.Requests[i]
		if e.TimeoutMS == 0 {
			e.TimeoutMS = req.TimeoutMS
		}
		if e.Strategy == "" {
			e.Strategy = req.Strategy
		}
		it := &batchItem{index: i}
		m, err := modeByName(e.Mode)
		if err == nil {
			it.mode = m
			it.in, it.strat, err = s.prepareSolve(&e.solveRequest, m)
		}
		if err != nil {
			it.errMsg = err.Error()
			items = append(items, it)
			continue
		}
		it.req = &e.solveRequest
		it.hash = it.in.CanonicalHash()
		it.key = it.mode.key(it.req, it.hash, it.strat)
		resp.Order[i] = it.hash
		if leader, ok := byKey[it.key]; ok {
			it.leader = leader
			resp.Deduped++
			s.reg.Counter(obs.MetricBatchDeduped).Inc()
		} else if prev, ok := byHash[it.hash]; ok {
			it.errMsg = fmt.Sprintf(
				"entry %d asks a different question of the same instance as entry %d; batch results are keyed by canonical hash — split them across batches",
				i, prev.index)
			resp.Order[i] = ""
		} else {
			byKey[it.key] = it
			byHash[it.hash] = it
		}
		items = append(items, it)
	}

	// Solve every leader concurrently; the admission pool is the
	// throttle, exactly as if the entries had arrived as N requests.
	timeout := s.cfg.DefaultTimeout
	var wg sync.WaitGroup
	for _, it := range items {
		if it.errMsg != "" || it.leader != nil {
			continue
		}
		wg.Add(1)
		go func(it *batchItem) {
			defer wg.Done()
			entryTimeout := timeout
			if it.req.TimeoutMS > 0 {
				entryTimeout = time.Duration(it.req.TimeoutMS) * time.Millisecond
			}
			ctx, cancel := context.WithTimeout(r.Context(), entryTimeout)
			defer cancel()
			res, err := s.runSolve(ctx, &solveTask{
				mode: it.mode, req: it.req, in: it.in, strat: it.strat,
			})
			switch {
			case err == nil:
				it.resp = res
			case err == ErrQueueFull:
				it.errMsg = "server at capacity: admission queue full"
			case err == context.DeadlineExceeded:
				it.errMsg = "deadline expired"
			case err == context.Canceled:
				it.errMsg = "canceled"
			default:
				it.errMsg = err.Error()
			}
		}(it)
	}
	wg.Wait()
	if r.Context().Err() != nil {
		return // client went away mid-batch; the connection is gone
	}

	for _, it := range items {
		if it.leader != nil {
			// Follower: inherit the leader's outcome.
			it.resp, it.errMsg = it.leader.resp, it.leader.errMsg
			if it.errMsg != "" {
				resp.Order[it.index] = ""
			}
		}
		if it.errMsg != "" {
			resp.Errors = append(resp.Errors, batchError{Index: it.index, Hash: it.hash, Error: it.errMsg})
			continue
		}
		resp.Results[it.hash] = it.resp
		resp.Succeeded++
	}
	resp.Failed = len(resp.Errors)
	s.writeJSON(w, http.StatusOK, resp)
}
