package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// postBatch sends a raw batch body and decodes the batch response.
func postBatch(t *testing.T, client *http.Client, url, body string) (int, *batchResponse) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp.StatusCode, &out
}

// batchEntryJSON renders one batch entry from an instance, chip JSON
// and optional extra fields ("mode":"solve" style fragments).
func batchEntryJSON(t *testing.T, in *model.Instance, chipJSON string, extra string) string {
	t.Helper()
	body := solveBody(t, in, chipJSON, extra)
	return body
}

// shiftedInstance returns easyInstance with one duration nudged so its
// canonical hash differs from the plain easy instance.
func shiftedInstance() *model.Instance {
	in := easyInstance()
	in.Tasks[0].Dur++
	return in
}

func TestBatchDedupAndResults(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	e1 := batchEntryJSON(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")
	e3 := batchEntryJSON(t, shiftedInstance(), `{"w":4,"h":4,"t":7}`, "")
	body := fmt.Sprintf(`{"requests": [%s, %s, %s]}`, e1, e1, e3)

	code, out := postBatch(t, ts.Client(), ts.URL+"/v1/solve-batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch: code=%d resp=%+v", code, out)
	}
	if out.Count != 3 || out.Succeeded != 3 || out.Failed != 0 {
		t.Fatalf("counts: %+v", out)
	}
	if out.Deduped != 1 {
		t.Fatalf("identical entries not deduped: %+v", out)
	}
	if len(out.Results) != 2 {
		t.Fatalf("want 2 distinct results, got %d", len(out.Results))
	}
	if out.Order[0] == "" || out.Order[0] != out.Order[1] || out.Order[0] == out.Order[2] {
		t.Fatalf("order keys wrong: %v", out.Order)
	}
	for hash, r := range out.Results {
		if r.Decision != "feasible" || r.Placement == nil {
			t.Fatalf("result %s not feasible: %+v", hash, r)
		}
	}
	snap := s.Registry().Snapshot()
	if snap[obs.MetricBatchEntries] != 3 || snap[obs.MetricBatchDeduped] != 1 {
		t.Fatalf("batch counters: entries=%d deduped=%d",
			snap[obs.MetricBatchEntries], snap[obs.MetricBatchDeduped])
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	good := batchEntryJSON(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")
	bad := `{"instance": {"name":"broken","tasks":[]}, "chip": {"w":4,"h":4,"t":6}}`
	body := fmt.Sprintf(`{"requests": [%s, %s]}`, good, bad)

	code, out := postBatch(t, ts.Client(), ts.URL+"/v1/solve-batch", body)
	if code != http.StatusOK {
		t.Fatalf("partial failure must still answer 200, got %d", code)
	}
	if out.Succeeded != 1 || out.Failed != 1 || len(out.Errors) != 1 {
		t.Fatalf("partial outcome wrong: %+v", out)
	}
	if out.Errors[0].Index != 1 || out.Errors[0].Error == "" {
		t.Fatalf("error entry wrong: %+v", out.Errors[0])
	}
	if out.Order[1] != "" {
		t.Fatalf("failed entry must have no order key: %v", out.Order)
	}
}

func TestBatchRejectsSameInstanceDifferentQuestion(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	in := easyInstance()
	solve := batchEntryJSON(t, in, `{"w":4,"h":4,"t":6}`, "")
	minTime := solveBody(t, in, `{"w":4,"h":4,"t":6}`, `"mode":"minimize-time", "w":4, "h":4`)
	body := fmt.Sprintf(`{"requests": [%s, %s]}`, solve, minTime)

	code, out := postBatch(t, ts.Client(), ts.URL+"/v1/solve-batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch: code=%d", code)
	}
	if out.Succeeded != 1 || out.Failed != 1 {
		t.Fatalf("want the second question rejected: %+v", out)
	}
	if !strings.Contains(out.Errors[0].Error, "different question") {
		t.Fatalf("rejection should explain the hash-key collision: %q", out.Errors[0].Error)
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxBatch: 2})
	e := batchEntryJSON(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")
	cases := map[string]string{
		"empty":     `{"requests": []}`,
		"oversized": fmt.Sprintf(`{"requests": [%s, %s, %s]}`, e, e, e),
		"undecoded": `{"requests": [`,
		"unknown":   `{"nope": true}`,
	}
	for name, body := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve-batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", name, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/solve-batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: want 405, got %d", resp.StatusCode)
	}
}

func TestBatchSharesResultCacheWithSync(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")
	if code, r, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body); code != http.StatusOK || r.Cached {
		t.Fatalf("priming solve: code=%d cached=%v", code, r.Cached)
	}
	before := oppWork(s.Registry())
	code, out := postBatch(t, ts.Client(), ts.URL+"/v1/solve-batch", fmt.Sprintf(`{"requests": [%s]}`, body))
	if code != http.StatusOK || out.Succeeded != 1 {
		t.Fatalf("batch after sync: code=%d %+v", code, out)
	}
	for _, r := range out.Results {
		if !r.Cached {
			t.Fatalf("batch entry should hit the cache primed by /v1/solve: %+v", r)
		}
	}
	if after := oppWork(s.Registry()); after != before {
		t.Fatalf("cache hit still invoked the solver: %d -> %d", before, after)
	}
}
