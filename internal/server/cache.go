package server

import (
	"container/list"
	"sync"

	"fpga3d/internal/obs"
)

// Cache is the canonical-instance result cache: a thread-safe LRU from
// canonical cache keys (Instance.CanonicalHash plus the question asked
// of the solver — see cacheKey in handlers.go) to finished responses.
// Repeated placements of the same module set are served from memory
// without touching the solver.
//
// Only definitive answers are stored: handlers never cache Unknown
// results (deadline/limit cutoffs), and cached placements are
// re-verified against the requesting instance before being served
// (the canonical hash identifies instances up to task renumbering, so
// a permuted resubmission must not inherit coordinates by index — see
// Server.lookupCache).
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry

	evictions *obs.Counter
	size      *obs.Gauge
}

// cacheEntry is one stored response.
type cacheEntry struct {
	key   string
	value *solveResponse
}

// NewCache returns an LRU result cache holding up to capacity entries;
// capacity < 1 disables caching (every Get misses, Put is a no-op).
// Hit/miss/eviction counters and the size gauge are registered on reg.
func NewCache(capacity int, reg *obs.Registry) *Cache {
	return &Cache{
		cap:       capacity,
		order:     list.New(),
		entries:   make(map[string]*list.Element),
		evictions: reg.Counter(obs.MetricCacheEvictions),
		size:      reg.Gauge(obs.MetricCacheSize),
	}
}

// Get returns the cached response for key and marks it most recently
// used. The hit/miss counters are owned by the handler layer, which
// knows whether a looked-up entry was actually servable.
func (c *Cache) Get(key string) (*solveResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores the response under key, replacing any previous entry and
// evicting the least recently used entry when over capacity.
func (c *Cache) Put(key string, v *solveResponse) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: v})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(int64(c.order.Len()))
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
