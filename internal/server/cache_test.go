package server

import (
	"fmt"
	"testing"

	"fpga3d/internal/obs"
)

func respWithNodes(n int64) *solveResponse {
	return &solveResponse{Decision: "feasible", Nodes: n}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(2, reg)

	c.Put("a", respWithNodes(1))
	c.Put("b", respWithNodes(2))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", respWithNodes(3)) // evicts b

	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should be resident", k)
		}
	}
	if got := reg.Counter(obs.MetricCacheEvictions).Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge(obs.MetricCacheSize).Value(); got != 2 {
		t.Fatalf("size gauge = %d, want 2", got)
	}
}

func TestCacheReplaceExisting(t *testing.T) {
	c := NewCache(4, obs.NewRegistry())
	c.Put("k", respWithNodes(1))
	c.Put("k", respWithNodes(2))
	if c.Len() != 1 {
		t.Fatalf("len = %d after double put", c.Len())
	}
	v, ok := c.Get("k")
	if !ok || v.Nodes != 2 {
		t.Fatalf("got %+v, want replaced entry", v)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, obs.NewRegistry())
	c.Put("k", respWithNodes(1))
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache served an entry")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache retained an entry")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8, obs.NewRegistry())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%16)
				c.Put(k, respWithNodes(int64(i)))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}
