package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fpga3d"
	"fpga3d/internal/obs"
	"fpga3d/internal/strategy"
)

// maxRequestBytes bounds a request body; a placement instance is a few
// KB, so 8 MiB leaves room for very large generated workloads while
// keeping a misbehaving client from ballooning the heap.
const maxRequestBytes = 8 << 20

// solveMode describes one /v1/* endpoint: how to validate its
// parameters, the cache key it owns, how to invoke the solver, and
// which chip a cached witness placement must be re-verified against.
// invoke also reports the per-stage wall-clock split of the solve so
// serveSolve can feed the server.stage.* histograms.
type solveMode struct {
	name     string // metric suffix and cache-key prefix
	validate func(*solveRequest) error
	key      func(*solveRequest, string, string) string
	invoke   func(context.Context, *fpga3d.Instance, *solveRequest, *fpga3d.Options) (*solveResponse, fpga3d.StageTimings, error)
	// verifyChip returns the container a cached placement for this
	// request must verify against, or ok=false when the cached entry
	// carries no usable value.
	verifyChip func(*solveRequest, *solveResponse) (fpga3d.Chip, bool)
}

// modeSolve answers the paper's OPP decision (FeasAT&FindS).
var modeSolve = &solveMode{
	name: "solve",
	validate: func(req *solveRequest) error {
		if req.Chip == nil {
			return errors.New(`solve needs "chip": {"w":…,"h":…,"t":…}`)
		}
		if req.Chip.W < 1 || req.Chip.H < 1 || req.Chip.T < 1 {
			return fmt.Errorf("chip %v has non-positive dimensions", *req.Chip)
		}
		return nil
	},
	key: func(req *solveRequest, hash, strat string) string {
		return cacheKey("solve", hash, strat, req.Chip.W, req.Chip.H, req.Chip.T)
	},
	invoke: func(ctx context.Context, in *fpga3d.Instance, req *solveRequest, o *fpga3d.Options) (*solveResponse, fpga3d.StageTimings, error) {
		r, err := fpga3d.SolveCtx(ctx, in, *req.Chip, o)
		if err != nil {
			return nil, fpga3d.StageTimings{}, err
		}
		resp := &solveResponse{
			Decision:  r.Decision.String(),
			DecidedBy: r.DecidedBy,
			Nodes:     r.Nodes,
			ElapsedMS: r.Elapsed.Milliseconds(),
			Placement: r.Placement,
		}
		resp.fillMakespan(in)
		return resp, r.Stages, nil
	},
	verifyChip: func(req *solveRequest, _ *solveResponse) (fpga3d.Chip, bool) {
		return *req.Chip, true
	},
}

// modeMinTime answers the paper's SPP optimization (MinT&FindS).
var modeMinTime = &solveMode{
	name: "minimize_time",
	validate: func(req *solveRequest) error {
		if req.W < 1 || req.H < 1 {
			return errors.New(`minimize-time needs positive "w" and "h" chip dimensions`)
		}
		return nil
	},
	key: func(req *solveRequest, hash, strat string) string {
		return cacheKey("minimize_time", hash, strat, req.W, req.H, 0)
	},
	invoke: func(ctx context.Context, in *fpga3d.Instance, req *solveRequest, o *fpga3d.Options) (*solveResponse, fpga3d.StageTimings, error) {
		o.Anytime = req.Anytime
		r, err := fpga3d.MinimizeTimeCtx(ctx, in, req.W, req.H, o)
		resp := optimizeResponse(in, r)
		if req.Anytime && resp != nil && r != nil {
			bb, gap := r.BestBound, r.Gap
			resp.BestBound = &bb
			resp.Gap = &gap
		}
		return resp, optimizeStages(r), err
	},
	verifyChip: func(req *solveRequest, resp *solveResponse) (fpga3d.Chip, bool) {
		if resp.Value == nil {
			return fpga3d.Chip{}, false
		}
		return fpga3d.Chip{W: req.W, H: req.H, T: *resp.Value}, true
	},
}

// modeMinChip answers the paper's BMP optimization (MinA&FindS).
var modeMinChip = &solveMode{
	name: "minimize_chip",
	validate: func(req *solveRequest) error {
		if req.T < 1 {
			return errors.New(`minimize-chip needs a positive "t" time budget`)
		}
		return nil
	},
	key: func(req *solveRequest, hash, strat string) string {
		return cacheKey("minimize_chip", hash, strat, req.T, 0, 0)
	},
	invoke: func(ctx context.Context, in *fpga3d.Instance, req *solveRequest, o *fpga3d.Options) (*solveResponse, fpga3d.StageTimings, error) {
		r, err := fpga3d.MinimizeChipCtx(ctx, in, req.T, o)
		return optimizeResponse(in, r), optimizeStages(r), err
	},
	verifyChip: func(req *solveRequest, resp *solveResponse) (fpga3d.Chip, bool) {
		if resp.Value == nil {
			return fpga3d.Chip{}, false
		}
		return fpga3d.Chip{W: *resp.Value, H: *resp.Value, T: req.T}, true
	},
}

// optimizeStages extracts the stage split from an OptimizeResult,
// tolerating the nil result of a canceled run.
func optimizeStages(r *fpga3d.OptimizeResult) fpga3d.StageTimings {
	if r == nil {
		return fpga3d.StageTimings{}
	}
	return r.Stages
}

// optimizeResponse converts an OptimizeResult (possibly the partial
// result of a canceled run, possibly nil) into the wire shape.
func optimizeResponse(in *fpga3d.Instance, r *fpga3d.OptimizeResult) *solveResponse {
	if r == nil {
		return nil
	}
	value, lb := r.Value, r.LowerBound
	resp := &solveResponse{
		Decision:   r.Decision.String(),
		Value:      &value,
		LowerBound: &lb,
		Nodes:      r.Nodes,
		ElapsedMS:  r.Elapsed.Milliseconds(),
		Placement:  r.Placement,
	}
	resp.fillMakespan(in)
	return resp
}

// fillMakespan annotates a witness placement with its makespan.
func (resp *solveResponse) fillMakespan(in *fpga3d.Instance) {
	if resp.Placement == nil || len(resp.Placement.S) != in.NumTasks() {
		return
	}
	m := resp.Placement.Makespan(in.Model())
	resp.Makespan = &m
}

// prepareSolve turns a decoded solveRequest into an executable task:
// it parses and validates the instance payload, checks the mode's own
// parameters, and resolves the effective strategy (request field, else
// the daemon default). Any error is a client error (400).
func (s *Server) prepareSolve(req *solveRequest, m *solveMode) (*fpga3d.Instance, string, error) {
	if len(req.Instance) == 0 {
		return nil, "", errors.New(`request needs an "instance"`)
	}
	in, err := fpga3d.ReadInstance(bytes.NewReader(req.Instance))
	if err != nil {
		return nil, "", err
	}
	if err := m.validate(req); err != nil {
		return nil, "", err
	}
	if req.Anytime && m != modeMinTime {
		return nil, "", fmt.Errorf(`"anytime" applies to minimize-time only, not %s`, m.name)
	}
	strat := req.Strategy
	if strat == "" {
		strat = s.cfg.Strategy
	}
	if !strategy.Valid(strat) {
		return nil, "", fmt.Errorf("unknown strategy %q (valid: %s)", strat, strings.Join(strategy.Names(), ", "))
	}
	if strat == "" {
		strat = strategy.NameStaged
	}
	return in, strat, nil
}

// solveTask is one prepared solve headed into runSolve — the shared
// execution core behind the synchronous endpoints, every batch entry,
// and every async job.
type solveTask struct {
	mode  *solveMode
	req   *solveRequest
	in    *fpga3d.Instance
	strat string
	// progress, when non-nil, receives the solve's progress snapshots
	// (wired to a broker stream by the caller, who owns closing it).
	progress obs.ProgressFunc
	// info, when non-nil, is annotated with the cache outcome for the
	// access log (synchronous requests only).
	info *requestInfo
	// onRunning, when non-nil, fires once when the task acquires its
	// solve slot — after any queue wait, before the solver is invoked.
	// A cache hit answers without a slot, so it may never fire.
	onRunning func()
	// onImprove, when non-nil, receives every anytime improvement of
	// the solve (anytime minimize-time requests only). Async jobs wire
	// it to the job store so 202 snapshots carry live incumbent state.
	onImprove func(fpga3d.AnytimeUpdate)
}

// runSolve executes one prepared solve through the shared lifecycle:
// cache lookup → admission → deadline → solve → cache fill. It is the
// single path every solve takes — synchronous, batch entry, or async
// job — so admission control, caching, metrics and strategy selection
// behave identically no matter how the work arrived.
//
// The error reports how the task ended:
//
//	nil                      definitive answer (resp non-nil, cached or solved)
//	ErrQueueFull             rejected, admission queue at capacity (resp nil)
//	context.DeadlineExceeded deadline expired; resp carries the partial
//	                         result when the solve started, nil when the
//	                         deadline fell while queued
//	context.Canceled         canceled; resp may carry a partial result
//	other                    solver/input failure (a 422 for sync callers)
func (s *Server) runSolve(ctx context.Context, t *solveTask) (*solveResponse, error) {
	s.reg.Counter(obs.MetricStrategyRequests + "." + t.strat).Inc()
	key := t.mode.key(t.req, t.in.CanonicalHash(), t.strat)
	if !t.req.NoCache {
		lookup := time.Now()
		cached, ok := s.cache.Get(key)
		s.reg.Histogram(obs.MetricCacheLookup).ObserveSince(lookup)
		if ok && s.servable(t.in, t.req, t.mode, cached) {
			s.reg.Counter(obs.MetricCacheHits).Inc()
			if t.info != nil {
				t.info.cache = "hit"
			}
			out := *cached
			out.Cached = true
			// The cache holds only completed answers, so an anytime
			// request served from it is trivially proven optimal:
			// synthesize the gap-0 pair the solver would have reported.
			if t.req.Anytime && out.Value != nil {
				bb, gap := *out.Value, 0.0
				out.BestBound = &bb
				out.Gap = &gap
			}
			return &out, nil
		}
		s.reg.Counter(obs.MetricCacheMisses).Inc()
		if t.info != nil {
			t.info.cache = "miss"
		}
	} else if t.info != nil {
		t.info.cache = "bypass"
	}

	enqueued := time.Now()
	release, err := s.pool.Acquire(ctx)
	s.reg.Histogram(obs.MetricQueueWait).ObserveSince(enqueued)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.reg.Counter(obs.MetricRejectedQueueFull).Inc()
		case errors.Is(err, context.DeadlineExceeded):
			s.reg.Counter(obs.MetricDeadlineExpired).Inc()
		}
		return nil, err
	}
	defer release()
	if t.onRunning != nil {
		t.onRunning()
	}

	o := &fpga3d.Options{
		Workers:       s.cfg.Workers,
		Metrics:       s.reg,
		Strategy:      t.strat,
		Progress:      t.progress,
		Trace:         s.tracer,
		OnImprovement: t.onImprove,
	}
	resp, stages, err := t.mode.invoke(ctx, t.in, t.req, o)
	s.observeStages(stages)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		s.reg.Counter(obs.MetricSolveErrors).Inc()
		return nil, err
	}
	if resp == nil {
		resp = &solveResponse{Decision: fpga3d.Unknown.String(), DecidedBy: "canceled"}
	}
	resp.Strategy = t.strat
	if resp.Decision == fpga3d.Unknown.String() {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The deadline cut the solve short: the partial result
			// travels with the error. Never cached.
			s.reg.Counter(obs.MetricDeadlineExpired).Inc()
			resp.Error = "deadline expired; partial result"
			return resp, context.DeadlineExceeded
		}
		if ctx.Err() != nil {
			return resp, context.Canceled
		}
	}
	if !t.req.NoCache && resp.Decision != fpga3d.Unknown.String() {
		stored := *resp
		stored.Cached = false
		stored.RequestID = "" // per-request identity; never cached
		// Gap state is per-request refinement history; the cache stores
		// the canonical completed answer and hits re-synthesize gap 0.
		stored.BestBound = nil
		stored.Gap = nil
		s.cache.Put(key, &stored)
	}
	return resp, nil
}

// serveSolve is the request lifecycle of the three synchronous solve
// endpoints: decode → validate → runSolve (cache/admission/solve) →
// respond. See ARCHITECTURE.md, "Serving".
func (s *Server) serveSolve(w http.ResponseWriter, r *http.Request, m *solveMode) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.reg.Counter(obs.MetricRequests + "." + m.name).Inc()

	var req solveRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	in, strat, err := s.prepareSolve(&req, m)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	reqID := obs.RequestIDFromContext(r.Context())
	info := infoFromContext(r.Context())
	if info != nil {
		info.strategy = strat
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	// The live-progress stream opens before cache and admission so a
	// subscriber holding the request ID can attach while this request
	// is still queued; even a cache hit then yields a terminal event.
	var progress obs.ProgressFunc
	if s.broker != nil && reqID != "" {
		pub, closeStream := s.broker.Open(reqID)
		progress = pub
		defer closeStream()
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp, err := s.runSolve(ctx, &solveTask{
		mode: m, req: &req, in: in, strat: strat,
		progress: progress, info: info,
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter(timeout))
		s.writeError(w, http.StatusTooManyRequests, "server at capacity: admission queue full")
		return
	case errors.Is(err, context.DeadlineExceeded):
		if resp == nil {
			resp = &solveResponse{
				Decision: fpga3d.Unknown.String(),
				Error:    "deadline expired while queued for a solve slot",
			}
		}
		resp.RequestID = reqID
		s.writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	case errors.Is(err, context.Canceled):
		return // client canceled; the connection is gone
	case err != nil:
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp.RequestID = reqID
	s.writeJSON(w, http.StatusOK, resp)
}

// observeStages feeds the per-stage solve-duration histograms; stages
// the solve never entered (zero duration) are not recorded.
func (s *Server) observeStages(st fpga3d.StageTimings) {
	if st.Bounds > 0 {
		s.reg.Histogram(obs.MetricStageLatency + "." + obs.PhaseBounds).Observe(st.Bounds.Seconds())
	}
	if st.Heuristic > 0 {
		s.reg.Histogram(obs.MetricStageLatency + "." + obs.PhaseHeuristic).Observe(st.Heuristic.Seconds())
	}
	if st.Anneal > 0 {
		s.reg.Histogram(obs.MetricStageLatency + "." + obs.PhaseAnneal).Observe(st.Anneal.Seconds())
	}
	if st.Search > 0 {
		s.reg.Histogram(obs.MetricStageLatency + "." + obs.PhaseSearch).Observe(st.Search.Seconds())
	}
}

// servable decides whether a cached entry may answer this request. A
// value-only entry (infeasible, or an optimum with no witness) is
// always servable — the canonical hash identifies the problem. An
// entry with a witness placement is only servable if that placement
// verifies against the requesting instance's own task numbering: the
// hash is invariant under task reordering, but placement coordinates
// are positional, so a renumbered resubmission of the same module set
// must re-solve rather than inherit coordinates by index.
func (s *Server) servable(in *fpga3d.Instance, req *solveRequest, m *solveMode, cached *solveResponse) bool {
	if cached.Placement == nil {
		return true
	}
	if len(cached.Placement.X) != in.NumTasks() {
		return false
	}
	chip, ok := m.verifyChip(req, cached)
	if !ok {
		return false
	}
	return in.VerifyPlacement(cached.Placement, chip) == nil
}

// handleHealthz reports liveness and occupancy; during a drain it
// flips to 503 so load balancers stop routing new work here. The body
// is a point-in-time reading, so caches must not hold it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	h := healthResponse{
		Status:       "ok",
		Inflight:     s.pool.Inflight(),
		Queued:       s.pool.Queued(),
		CacheEntries: s.cache.Len(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// retryAfter suggests when a rejected client should try again: the
// request's own deadline is the natural horizon for a slot to free up.
func retryAfter(timeout time.Duration) string {
	secs := int(timeout.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeJSON writes v as the response body with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("writing response: %v", err)
	}
}

// writeError writes a JSON error body with the given status.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, errorResponse{Error: msg})
}
