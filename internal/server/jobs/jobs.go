// Package jobs is the bounded asynchronous job table behind fpgad's
// POST /v1/jobs API: submissions are tracked through the states
// queued → running → done/failed, with client-initiated cancellation
// possible from either active state. The table is bounded three ways —
// a global capacity, a per-client active-submission cap, and TTL-based
// retention of terminal jobs — so a daemon absorbing heavy async
// traffic holds a predictable amount of job state no matter how many
// clients submit or how few collect their results.
//
// The store tracks state only; executing a job (acquiring a solve
// slot, running the solver, publishing progress) is the serving
// layer's business. Store methods hand out snapshot copies, never
// internal records, so callers can read job fields without locks.
package jobs

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// State is a job's position in its lifecycle.
type State string

// The five job states. Queued and Running are active; Done, Failed and
// Canceled are terminal (retained for TTL, then evicted lazily).
const (
	// StateQueued marks a job accepted but not yet holding a solve slot.
	StateQueued State = "queued"
	// StateRunning marks a job whose solve is executing.
	StateRunning State = "running"
	// StateDone marks a job that finished with a result.
	StateDone State = "done"
	// StateFailed marks a job whose solve errored or hit its deadline.
	StateFailed State = "failed"
	// StateCanceled marks a job stopped by client request.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (done, failed, canceled).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// States lists every job state, in lifecycle order. Serving layers use
// it to pre-register one gauge per state so all five series exist in
// the metric expositions from the first scrape.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
}

// Sentinel errors returned by Create; the serving layer maps both to
// 429 Too Many Requests.
var (
	// ErrTableFull reports that the job table holds its maximum number
	// of jobs and none is terminal (evictable) — the daemon is at its
	// async capacity.
	ErrTableFull = errors.New("jobs: table full of active jobs")
	// ErrClientCap reports that the submitting client already has its
	// maximum number of active (queued or running) jobs.
	ErrClientCap = errors.New("jobs: per-client active-job cap reached")
)

// Job is the public snapshot of one asynchronous solve. All fields are
// copies taken under the store lock; a Job never aliases mutable state.
type Job struct {
	// ID names the job (and its progress stream).
	ID string
	// Client is the submitter identity the per-client cap is keyed on.
	Client string
	// State is the lifecycle position at snapshot time.
	State State
	// Created is the submission time.
	Created time.Time
	// Started is when the job acquired its solve slot (zero while queued).
	Started time.Time
	// Finished is when the job reached a terminal state (zero while active).
	Finished time.Time
	// Meta is the serving layer's submission payload (question asked,
	// canonical hash, …), set at Create and immutable afterwards.
	Meta any
	// Result is the serving layer's result payload, set on Finish. It
	// may accompany a failed job too (a deadline-expired solve keeps
	// its partial result).
	Result any
	// Progress is the serving layer's latest live-progress payload
	// (anytime incumbent state), updated through SetProgress while the
	// job is active and frozen at its last value once terminal.
	Progress any
	// Err is the failure (or cancellation) message of a non-done
	// terminal job.
	Err string
}

// record is the internal mutable job entry.
type record struct {
	snap   Job
	cancel context.CancelFunc
}

// Store is the bounded, TTL-retained job table. All methods are safe
// for concurrent use.
type Store struct {
	mu        sync.Mutex
	jobs      map[string]*record
	order     []string // creation order, for eviction and List
	max       int
	perClient int
	ttl       time.Duration
	now       func() time.Time
	observer  func(State, int64)
}

// NewStore returns a job table holding at most max jobs (default 256
// when max <= 0), at most perClient active jobs per client identity
// (default 16 when perClient <= 0), and retaining terminal jobs for
// ttl (default 10m when ttl <= 0) before lazy eviction.
func NewStore(max, perClient int, ttl time.Duration) *Store {
	if max <= 0 {
		max = 256
	}
	if perClient <= 0 {
		perClient = 16
	}
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &Store{
		jobs:      make(map[string]*record),
		max:       max,
		perClient: perClient,
		ttl:       ttl,
		now:       time.Now,
	}
}

// SetObserver installs a hook receiving (state, delta) on every change
// to the number of jobs resident in a state — +1 entering, -1 leaving
// (including eviction and removal). The serving layer points it at its
// per-state gauges. Must be called before the store is shared.
func (s *Store) SetObserver(fn func(State, int64)) { s.observer = fn }

// SetClock replaces the store's time source (tests drive TTL expiry
// with a fake clock). Must be called before the store is shared.
func (s *Store) SetClock(now func() time.Time) { s.now = now }

// observe reports a state-residency delta to the observer, if any.
func (s *Store) observe(st State, delta int64) {
	if s.observer != nil {
		s.observer(st, delta)
	}
}

// sweepLocked evicts terminal jobs whose Finished time is older than
// the TTL. Callers hold s.mu.
func (s *Store) sweepLocked() {
	cutoff := s.now().Add(-s.ttl)
	s.evictLocked(func(r *record) bool {
		return r.snap.State.Terminal() && r.snap.Finished.Before(cutoff)
	})
}

// evictLocked removes every job matching keep==true from the table,
// preserving creation order. Callers hold s.mu.
func (s *Store) evictLocked(match func(*record) bool) {
	kept := s.order[:0]
	for _, id := range s.order {
		r := s.jobs[id]
		if match(r) {
			delete(s.jobs, id)
			s.observe(r.snap.State, -1)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// activeForLocked counts the client's queued+running jobs; callers
// hold s.mu.
func (s *Store) activeForLocked(client string) int {
	n := 0
	for _, r := range s.jobs {
		if r.snap.Client == client && !r.snap.State.Terminal() {
			n++
		}
	}
	return n
}

// Create registers a new queued job under id for client, carrying the
// caller's meta payload and holding the cancel function that stops its
// execution context. When the table is full it first drops TTL-expired
// jobs, then the oldest terminal job; if every resident job is still
// active it fails with ErrTableFull. A client at its active-job cap
// fails with ErrClientCap. Both map to 429 at the API layer.
func (s *Store) Create(id, client string, meta any, cancel context.CancelFunc) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	if s.activeForLocked(client) >= s.perClient {
		return Job{}, ErrClientCap
	}
	if len(s.jobs) >= s.max {
		// Make room by retiring the oldest terminal job early; results
		// are a cache, capacity is for active work.
		evicted := false
		s.evictLocked(func(r *record) bool {
			if evicted || !r.snap.State.Terminal() {
				return false
			}
			evicted = true
			return true
		})
		if !evicted {
			return Job{}, ErrTableFull
		}
	}
	r := &record{
		snap: Job{
			ID:      id,
			Client:  client,
			State:   StateQueued,
			Created: s.now(),
			Meta:    meta,
		},
		cancel: cancel,
	}
	s.jobs[id] = r
	s.order = append(s.order, id)
	s.observe(StateQueued, 1)
	return r.snap, nil
}

// Get returns a snapshot of the job, after a TTL sweep.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	r, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return r.snap, true
}

// List returns snapshots of every resident job in creation order.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snap)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Created.Before(out[j].Created) })
	return out
}

// Len returns the number of resident jobs (terminal included).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Start transitions the job from queued to running, reporting whether
// the transition happened — false means the job was canceled (or
// removed) while waiting for its slot, and the executor should stop.
func (s *Store) Start(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok || r.snap.State != StateQueued {
		return false
	}
	r.snap.State = StateRunning
	r.snap.Started = s.now()
	s.observe(StateQueued, -1)
	s.observe(StateRunning, 1)
	return true
}

// SetProgress attaches the latest live-progress payload to an active
// job, so GET /v1/jobs/{id} can report incumbent state mid-solve. It
// reports whether the payload was recorded — false means the job is
// unknown or already terminal (a terminal job keeps the last payload
// recorded while it ran).
func (s *Store) SetProgress(id string, p any) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok || r.snap.State.Terminal() {
		return false
	}
	r.snap.Progress = p
	return true
}

// Finish moves an active job to done (errMsg == "") or failed,
// attaching the result payload (which may be a partial result even on
// failure). Finishing an already-terminal job is a no-op — a job the
// client canceled stays canceled even if its executor completes the
// solve before noticing. It returns the post-transition snapshot.
func (s *Store) Finish(id string, result any, errMsg string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	if r.snap.State.Terminal() {
		return r.snap, true
	}
	from := r.snap.State
	if errMsg == "" {
		r.snap.State = StateDone
	} else {
		r.snap.State = StateFailed
		r.snap.Err = errMsg
	}
	r.snap.Result = result
	r.snap.Finished = s.now()
	s.observe(from, -1)
	s.observe(r.snap.State, 1)
	return r.snap, true
}

// Cancel stops an active job: its execution context is canceled and
// the job is marked canceled immediately (the executor's late Finish
// becomes a no-op). Canceling a terminal job changes nothing; either
// way the current snapshot is returned.
func (s *Store) Cancel(id string) (Job, bool) {
	s.mu.Lock()
	r, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, false
	}
	if r.snap.State.Terminal() {
		snap := r.snap
		s.mu.Unlock()
		return snap, true
	}
	from := r.snap.State
	r.snap.State = StateCanceled
	r.snap.Err = "canceled by client"
	r.snap.Finished = s.now()
	s.observe(from, -1)
	s.observe(StateCanceled, 1)
	snap := r.snap
	cancel := r.cancel
	s.mu.Unlock()
	// Cancel outside the lock: the executor's reaction (Finish, stream
	// close) may call back into the store.
	if cancel != nil {
		cancel()
	}
	return snap, true
}

// Remove deletes a terminal job from the table (client DELETE of a
// finished job). Active jobs are not removable — cancel them first —
// so an executor never finishes into a vanished record unobserved.
func (s *Store) Remove(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok || !r.snap.State.Terminal() {
		return Job{}, false
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.observe(r.snap.State, -1)
	return r.snap, true
}
