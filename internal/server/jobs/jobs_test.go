package jobs

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is an adjustable time source for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newStore(max, per int, ttl time.Duration) (*Store, *fakeClock) {
	s := NewStore(max, per, ttl)
	c := newFakeClock()
	s.SetClock(c.now)
	return s, c
}

func TestLifecycle(t *testing.T) {
	s, _ := newStore(4, 4, time.Minute)
	j, err := s.Create("a", "c1", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID != "a" || j.Created.IsZero() {
		t.Fatalf("created job %+v", j)
	}
	if !s.Start("a") {
		t.Fatal("Start refused a queued job")
	}
	if j, _ := s.Get("a"); j.State != StateRunning || j.Started.IsZero() {
		t.Fatalf("after Start: %+v", j)
	}
	if s.Start("a") {
		t.Fatal("Start accepted a running job")
	}
	got, ok := s.Finish("a", "payload", "")
	if !ok || got.State != StateDone || got.Result != "payload" || got.Finished.IsZero() {
		t.Fatalf("after Finish: %+v ok=%v", got, ok)
	}
	// Finishing again must not flip the state or clobber the result.
	if again, _ := s.Finish("a", "other", "boom"); again.State != StateDone || again.Result != "payload" {
		t.Fatalf("re-Finish mutated terminal job: %+v", again)
	}
}

func TestSetProgress(t *testing.T) {
	s, _ := newStore(4, 4, time.Minute)
	s.Create("a", "c1", nil, nil)
	if !s.SetProgress("a", "p1") {
		t.Fatal("SetProgress refused a queued job")
	}
	s.Start("a")
	if !s.SetProgress("a", "p2") {
		t.Fatal("SetProgress refused a running job")
	}
	if j, _ := s.Get("a"); j.Progress != "p2" {
		t.Fatalf("progress = %v, want p2", j.Progress)
	}
	s.Finish("a", nil, "")
	if s.SetProgress("a", "late") {
		t.Fatal("SetProgress accepted a terminal job")
	}
	// The last in-flight payload stays readable on the terminal snapshot.
	if j, _ := s.Get("a"); j.Progress != "p2" {
		t.Fatalf("terminal progress = %v, want frozen p2", j.Progress)
	}
	if s.SetProgress("nope", "x") {
		t.Fatal("SetProgress accepted an unknown job")
	}
}

func TestFinishFailed(t *testing.T) {
	s, _ := newStore(4, 4, time.Minute)
	s.Create("a", "c1", nil, nil)
	s.Start("a")
	j, _ := s.Finish("a", "partial", "deadline expired")
	if j.State != StateFailed || j.Err != "deadline expired" || j.Result != "partial" {
		t.Fatalf("failed job: %+v", j)
	}
}

func TestCancelWhileQueuedInvokesCancelFunc(t *testing.T) {
	s, _ := newStore(4, 4, time.Minute)
	called := false
	s.Create("a", "c1", nil, func() { called = true })
	j, ok := s.Cancel("a")
	if !ok || j.State != StateCanceled || !called {
		t.Fatalf("cancel: %+v ok=%v called=%v", j, ok, called)
	}
	// The executor waking up later must not resurrect the job.
	if s.Start("a") {
		t.Fatal("Start accepted a canceled job")
	}
	if j, _ := s.Finish("a", "late", ""); j.State != StateCanceled {
		t.Fatalf("late Finish resurrected canceled job: %+v", j)
	}
}

func TestCancelTerminalIsNoop(t *testing.T) {
	s, _ := newStore(4, 4, time.Minute)
	called := false
	s.Create("a", "c1", nil, func() { called = true })
	s.Start("a")
	s.Finish("a", 42, "")
	j, ok := s.Cancel("a")
	if !ok || j.State != StateDone || called {
		t.Fatalf("cancel of done job: %+v ok=%v called=%v", j, ok, called)
	}
}

func TestTTLExpiry(t *testing.T) {
	s, c := newStore(8, 8, time.Minute)
	s.Create("done", "c1", nil, nil)
	s.Start("done")
	s.Finish("done", nil, "")
	s.Create("live", "c1", nil, nil)

	c.advance(2 * time.Minute)
	if _, ok := s.Get("done"); ok {
		t.Fatal("terminal job survived TTL")
	}
	// Active jobs never expire, no matter how old.
	if _, ok := s.Get("live"); !ok {
		t.Fatal("active job evicted by TTL")
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestOverflowEvictsOldestTerminalFirst(t *testing.T) {
	s, _ := newStore(2, 8, time.Hour)
	s.Create("old", "c1", nil, nil)
	s.Finish("old", nil, "")
	s.Create("active", "c1", nil, nil)
	// Table full (old terminal + active): the terminal one is retired.
	if _, err := s.Create("new", "c1", nil, nil); err != nil {
		t.Fatalf("overflow with evictable terminal job: %v", err)
	}
	if _, ok := s.Get("old"); ok {
		t.Fatal("oldest terminal job not evicted on overflow")
	}
	// Now both residents are active: the table is genuinely full.
	if _, err := s.Create("blocked", "c1", nil, nil); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestPerClientCap(t *testing.T) {
	s, _ := newStore(16, 2, time.Hour)
	s.Create("a", "alice", nil, nil)
	s.Create("b", "alice", nil, nil)
	if _, err := s.Create("c", "alice", nil, nil); !errors.Is(err, ErrClientCap) {
		t.Fatalf("err = %v, want ErrClientCap", err)
	}
	// Other clients are unaffected.
	if _, err := s.Create("c", "bob", nil, nil); err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
	// Terminal jobs stop counting against the cap.
	s.Finish("a", nil, "")
	if _, err := s.Create("d", "alice", nil, nil); err != nil {
		t.Fatalf("cap counted a terminal job: %v", err)
	}
}

func TestRemove(t *testing.T) {
	s, _ := newStore(4, 4, time.Hour)
	s.Create("a", "c1", nil, nil)
	if _, ok := s.Remove("a"); ok {
		t.Fatal("Remove deleted an active job")
	}
	s.Finish("a", nil, "")
	if j, ok := s.Remove("a"); !ok || j.State != StateDone {
		t.Fatalf("Remove: %+v ok=%v", j, ok)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("job resident after Remove")
	}
}

func TestObserverBalances(t *testing.T) {
	s, c := newStore(4, 4, time.Minute)
	counts := map[State]int64{}
	s.SetObserver(func(st State, d int64) { counts[st] += d })
	s.Create("a", "c1", nil, nil)
	s.Start("a")
	s.Finish("a", nil, "")
	s.Create("b", "c1", nil, nil)
	s.Cancel("b")
	if counts[StateQueued] != 0 || counts[StateRunning] != 0 {
		t.Fatalf("active residency should net to zero: %v", counts)
	}
	if counts[StateDone] != 1 || counts[StateCanceled] != 1 {
		t.Fatalf("terminal residency: %v", counts)
	}
	c.advance(2 * time.Minute)
	s.List()
	if counts[StateDone] != 0 || counts[StateCanceled] != 0 {
		t.Fatalf("TTL eviction must decrement terminal gauges: %v", counts)
	}
}

func TestListOrder(t *testing.T) {
	s, c := newStore(8, 8, time.Hour)
	s.Create("a", "c1", nil, nil)
	c.advance(time.Second)
	s.Create("b", "c1", nil, nil)
	c.advance(time.Second)
	s.Create("c", "c1", nil, nil)
	l := s.List()
	if len(l) != 3 || l[0].ID != "a" || l[1].ID != "b" || l[2].ID != "c" {
		t.Fatalf("List order: %+v", l)
	}
}
