package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"fpga3d"
	"fpga3d/internal/obs"
	"fpga3d/internal/server/jobs"
)

// jobRequest is the JSON body of POST /v1/jobs: one solve submitted
// for asynchronous execution. Mode picks the question ("solve" by
// default, "minimize-time" or "minimize-chip"); Client names the
// submitter for the per-client active-job cap (defaulting to the
// connection's remote address). The embedded solveRequest fields mean
// exactly what they mean on the synchronous endpoints — timeout_ms
// bounds the solve once it starts running, no_cache bypasses the
// result cache, strategy picks the pipeline.
type jobRequest struct {
	Mode   string `json:"mode,omitempty"`
	Client string `json:"client,omitempty"`
	solveRequest
}

// jobMeta is what the serving layer pins to a job at submission time.
type jobMeta struct {
	mode  string
	hash  string
	strat string
}

// anytimeProgress is the live incumbent state an anytime job records
// in the store on every improvement, surfaced on job snapshots.
type anytimeProgress struct {
	best, lower int
	gap         float64
}

// jobWire is the JSON shape of one job on GET /v1/jobs[/{id}] and in
// the 202 submission answer. Result appears once the job is done (or
// carries the partial result of a failed, deadline-expired solve);
// ProgressURL names the job's live SSE stream while it runs.
// BestMakespan, LowerBound and Gap carry the live incumbent state of
// an anytime minimize-time job: the best-known makespan, the proven
// lower bound, and their relative gap (non-increasing over the job's
// life, 0 once the incumbent is proven optimal).
type jobWire struct {
	ID            string         `json:"id"`
	State         string         `json:"state"`
	Mode          string         `json:"mode"`
	Strategy      string         `json:"strategy,omitempty"`
	Client        string         `json:"client,omitempty"`
	CanonicalHash string         `json:"canonical_hash"`
	CreatedUnixMS int64          `json:"created_unix_ms"`
	QueueWaitMS   *int64         `json:"queue_wait_ms,omitempty"`
	RunMS         *int64         `json:"run_ms,omitempty"`
	BestMakespan  *int           `json:"best_makespan,omitempty"`
	LowerBound    *int           `json:"lower_bound,omitempty"`
	Gap           *float64       `json:"gap,omitempty"`
	Result        *solveResponse `json:"result,omitempty"`
	Error         string         `json:"error,omitempty"`
	ProgressURL   string         `json:"progress_url,omitempty"`
}

// jobListResponse is the body of GET /v1/jobs.
type jobListResponse struct {
	Jobs []jobWire `json:"jobs"`
}

// wireJob converts a store snapshot to the API shape.
func (s *Server) wireJob(j jobs.Job) jobWire {
	w := jobWire{
		ID:            j.ID,
		State:         string(j.State),
		Client:        j.Client,
		CreatedUnixMS: j.Created.UnixMilli(),
		Error:         j.Err,
	}
	if m, ok := j.Meta.(jobMeta); ok {
		w.Mode = m.mode
		w.CanonicalHash = m.hash
		w.Strategy = m.strat
	}
	if resp, ok := j.Result.(*solveResponse); ok {
		w.Result = resp
	}
	if p, ok := j.Progress.(anytimeProgress); ok {
		best, lower, gap := p.best, p.lower, p.gap
		w.BestMakespan = &best
		w.LowerBound = &lower
		w.Gap = &gap
	}
	if !j.Started.IsZero() {
		wait := j.Started.Sub(j.Created).Milliseconds()
		w.QueueWaitMS = &wait
		end := j.Finished
		if end.IsZero() {
			end = time.Now()
		}
		run := end.Sub(j.Started).Milliseconds()
		w.RunMS = &run
	}
	if s.broker != nil && !j.State.Terminal() {
		w.ProgressURL = "/v1/progress/" + j.ID
	}
	return w
}

// clientIdentity resolves the identity the per-client job cap is keyed
// on: the request's own "client" field when set, else the remote host.
func clientIdentity(r *http.Request, requested string) string {
	if requested != "" {
		return requested
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// handleJobs serves the job collection: POST /v1/jobs submits an
// asynchronous solve (202 Accepted with the job snapshot; Location
// names the job URL), GET /v1/jobs lists resident jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(obs.MetricRequests + ".jobs").Inc()
	switch r.Method {
	case http.MethodGet:
		l := s.jobs.List()
		out := jobListResponse{Jobs: make([]jobWire, 0, len(l))}
		for _, j := range l {
			out.Jobs = append(out.Jobs, s.wireJob(j))
		}
		s.writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "use POST or GET")
	}
}

// handleJobSubmit accepts one async solve: validate now (submission
// errors are synchronous 400s), then queue the job and answer 202
// immediately. Execution flows through runSolve — the same admission
// pool, result cache and strategy selection as every synchronous
// request — with progress published on the broker stream named by the
// job ID, so GET /v1/progress/{job_id} works exactly like it does for
// synchronous request IDs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining; not accepting new jobs")
		return
	}
	var req jobRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	m, err := modeByName(req.Mode)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	in, strat, err := s.prepareSolve(&req.solveRequest, m)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	client := clientIdentity(r, req.Client)

	id := obs.NewRequestID()
	jctx, cancel := context.WithCancel(context.Background())
	meta := jobMeta{mode: m.name, hash: in.CanonicalHash(), strat: strat}
	job, err := s.jobs.Create(id, client, meta, cancel)
	if err != nil {
		cancel()
		reason := "table_full"
		if errors.Is(err, jobs.ErrClientCap) {
			reason = "client_cap"
		}
		s.reg.Counter(obs.MetricJobsRejected + "." + reason).Inc()
		w.Header().Set("Retry-After", retryAfter(s.cfg.DefaultTimeout))
		s.writeError(w, http.StatusTooManyRequests, jobRejectMessage(reason, client))
		return
	}
	s.reg.Counter(obs.MetricJobsSubmitted).Inc()

	// The job's progress stream lives under the job ID (nil broker →
	// nil publish hook, no stream).
	publish, closeStream := s.broker.Open(id)
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	task := &solveTask{
		mode: m, req: &req.solveRequest, in: in, strat: strat,
		progress:  publish,
		onRunning: func() { s.jobs.Start(id) },
	}
	if req.Anytime {
		task.onImprove = func(u fpga3d.AnytimeUpdate) {
			s.jobs.SetProgress(id, anytimeProgress{best: u.Best, lower: u.LowerBound, gap: u.Gap})
		}
	}
	s.jobsWG.Add(1)
	go s.executeJob(jctx, id, task, timeout, closeStream)

	w.Header().Set("Location", "/v1/jobs/"+id)
	s.writeJSON(w, http.StatusAccepted, s.wireJob(job))
}

// jobRejectMessage phrases the two 429 submission rejections.
func jobRejectMessage(reason, client string) string {
	if reason == "client_cap" {
		return fmt.Sprintf("client %q is at its active-job cap; wait for a job to finish or cancel one", client)
	}
	return "job table full of active jobs; retry after some finish"
}

// executeJob drives one async job through runSolve and records its
// terminal state. A job the client canceled keeps its canceled state —
// the store's Finish is a no-op on terminal jobs — and every outcome
// lands in the job-latency histogram.
func (s *Server) executeJob(ctx context.Context, id string, t *solveTask, timeout time.Duration, closeStream func()) {
	defer s.jobsWG.Done()
	defer closeStream()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	resp, err := s.runSolve(ctx, t)
	var snap jobs.Job
	var ok bool
	switch {
	case err == nil:
		snap, ok = s.jobs.Finish(id, resp, "")
	case errors.Is(err, ErrQueueFull):
		snap, ok = s.jobs.Finish(id, nil, "server at capacity: admission queue full")
	case errors.Is(err, context.DeadlineExceeded):
		snap, ok = s.jobs.Finish(id, resp, "deadline expired; partial result")
	case errors.Is(err, context.Canceled):
		// Usually the store already marked the job canceled; if the
		// execution context died for another reason, record it.
		snap, ok = s.jobs.Finish(id, resp, "canceled")
	default:
		snap, ok = s.jobs.Finish(id, nil, err.Error())
	}
	if ok {
		s.reg.Histogram(obs.MetricJobLatency).Observe(snap.Finished.Sub(snap.Created).Seconds())
		s.logf("job %s %s after %s", id, snap.State, snap.Finished.Sub(snap.Created).Round(time.Millisecond))
	}
}

// handleJobOp routes the per-job endpoints:
//
//	GET    /v1/jobs/{id}  → snapshot (result included once terminal)
//	DELETE /v1/jobs/{id}  → cancel an active job (it stays resident,
//	                        state "canceled", until TTL or a second
//	                        DELETE); remove a terminal job
func (s *Server) handleJobOp(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(obs.MetricRequests + ".jobs").Inc()
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, http.StatusBadRequest, "use /v1/jobs/{id}")
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, ok := s.jobs.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "no such job "+id)
			return
		}
		s.writeJSON(w, http.StatusOK, s.wireJob(j))
	case http.MethodDelete:
		j, ok := s.jobs.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "no such job "+id)
			return
		}
		if j.State.Terminal() {
			if removed, ok := s.jobs.Remove(id); ok {
				s.writeJSON(w, http.StatusOK, map[string]string{"deleted": id, "state": string(removed.State)})
				return
			}
			// Raced with another DELETE; treat as gone.
			s.writeError(w, http.StatusNotFound, "no such job "+id)
			return
		}
		snap, _ := s.jobs.Cancel(id)
		s.logf("job %s canceled by client (was %s)", id, j.State)
		s.writeJSON(w, http.StatusOK, s.wireJob(snap))
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

// jobStateGauges pre-registers one gauge per job state and returns the
// store observer keeping them current, so all five series exist in
// both metric expositions from the first scrape.
func jobStateGauges(reg *obs.Registry) func(jobs.State, int64) {
	gauges := make(map[jobs.State]*obs.Gauge, len(jobs.States()))
	for _, st := range jobs.States() {
		gauges[st] = reg.Gauge(obs.MetricJobsState + "." + string(st))
	}
	return func(st jobs.State, delta int64) {
		if g, ok := gauges[st]; ok {
			g.Add(delta)
		}
	}
}
