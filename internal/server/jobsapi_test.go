package server

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"fpga3d/internal/obs"
)

// postJob submits a job body and decodes the job snapshot.
func postJob(t *testing.T, client *http.Client, url, body string) (int, *jobWire, http.Header) {
	t.Helper()
	resp, err := client.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out jobWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding job response: %v", err)
	}
	return resp.StatusCode, &out, resp.Header
}

// getJob fetches one job snapshot; found=false means 404.
func getJob(t *testing.T, client *http.Client, url, id string) (*jobWire, bool) {
	t.Helper()
	resp, err := client.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var out jobWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding job snapshot: %v", err)
	}
	return &out, true
}

// pollJob re-fetches the job until pred holds or the deadline passes.
func pollJob(t *testing.T, client *http.Client, url, id string, pred func(*jobWire) bool) *jobWire {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := getJob(t, client, url, id)
		if ok && pred(j) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the awaited state", id)
	return nil
}

// deleteJob issues DELETE /v1/jobs/{id} and returns the status code.
func deleteJob(t *testing.T, client *http.Client, url, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("DELETE /v1/jobs/%s: %v", id, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// waitExecutors fails the test if job executor goroutines are still
// alive after d — the teeth behind cancellation propagating into the
// solver context.
func waitExecutors(t *testing.T, s *Server, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { s.jobsWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("job executors still running; cancellation did not propagate")
	}
}

// normalized strips the per-request fields (request ID, wall time,
// cache flag) so two answers to the same question compare equal.
func normalized(r *solveResponse) solveResponse {
	out := *r
	out.RequestID = ""
	out.ElapsedMS = 0
	out.Cached = false
	return out
}

// TestJobMatchesSynchronousSolve is the differential check: an async
// job must return the identical result a synchronous /v1/solve
// produces for the same instance. Both bypass the cache so both truly
// run the solver.
func TestJobMatchesSynchronousSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8, Workers: 1})
	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"no_cache": true`)

	syncCode, syncResp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body)
	if syncCode != http.StatusOK || syncResp.Decision != "feasible" {
		t.Fatalf("sync solve: code=%d resp=%+v", syncCode, syncResp)
	}

	jobBody := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"mode":"solve", "no_cache": true`)
	code, submitted, hdr := postJob(t, ts.Client(), ts.URL, jobBody)
	if code != http.StatusAccepted {
		t.Fatalf("job submit: code=%d resp=%+v", code, submitted)
	}
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+submitted.ID {
		t.Fatalf("Location header %q does not name the job", loc)
	}
	done := pollJob(t, ts.Client(), ts.URL, submitted.ID, func(j *jobWire) bool { return j.State == "done" })
	if done.Result == nil {
		t.Fatalf("done job carries no result: %+v", done)
	}
	if got, want := normalized(done.Result), normalized(syncResp); !reflect.DeepEqual(got, want) {
		t.Fatalf("async job result diverges from synchronous solve:\n  job:  %+v\n  sync: %+v", got, want)
	}
	if done.QueueWaitMS == nil || done.RunMS == nil {
		t.Fatalf("done job lacks timing fields: %+v", done)
	}

	// Collect it: DELETE on a terminal job removes it.
	if code := deleteJob(t, ts.Client(), ts.URL, submitted.ID); code != http.StatusOK {
		t.Fatalf("DELETE done job: %d", code)
	}
	if _, ok := getJob(t, ts.Client(), ts.URL, submitted.ID); ok {
		t.Fatal("deleted job still resident")
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 8})
	// Hold the single solve slot so the job stays queued in admission.
	release, err := s.pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	holding := true
	defer func() {
		if holding {
			release()
		}
	}()

	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"no_cache": true`)
	code, submitted, _ := postJob(t, ts.Client(), ts.URL, body)
	if code != http.StatusAccepted || submitted.State != "queued" {
		t.Fatalf("submit: code=%d state=%q", code, submitted.State)
	}

	if code := deleteJob(t, ts.Client(), ts.URL, submitted.ID); code != http.StatusOK {
		t.Fatalf("DELETE queued job: %d", code)
	}
	snap, ok := getJob(t, ts.Client(), ts.URL, submitted.ID)
	if !ok || snap.State != "canceled" {
		t.Fatalf("after cancel: %+v (found=%v)", snap, ok)
	}
	// The executor was blocked in pool.Acquire; cancellation must free
	// it without ever starting the solve — even with the slot still held.
	waitExecutors(t, s, 2*time.Second)
	if snap.QueueWaitMS != nil {
		t.Fatalf("canceled-while-queued job claims to have started: %+v", snap)
	}
	release()
	holding = false
}

func TestJobCancelWhileRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 8})
	body := solveBody(t, hardInstance(), hardChipJSON, `"no_cache": true`)
	code, submitted, _ := postJob(t, ts.Client(), ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}
	running := pollJob(t, ts.Client(), ts.URL, submitted.ID, func(j *jobWire) bool { return j.State == "running" })
	if running.ProgressURL != "/v1/progress/"+submitted.ID {
		t.Fatalf("running job should advertise its progress stream: %+v", running)
	}

	if code := deleteJob(t, ts.Client(), ts.URL, submitted.ID); code != http.StatusOK {
		t.Fatalf("DELETE running job: %d", code)
	}
	// The hard instance needs seconds of search; the executor exiting
	// well before that proves the cancel reached the solver context.
	waitExecutors(t, s, 2*time.Second)
	snap, ok := getJob(t, ts.Client(), ts.URL, submitted.ID)
	if !ok || snap.State != "canceled" {
		t.Fatalf("after cancel: %+v (found=%v)", snap, ok)
	}
}

func TestJobTTLExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8, JobTTL: 10 * time.Minute})
	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")
	code, submitted, _ := postJob(t, ts.Client(), ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}
	pollJob(t, ts.Client(), ts.URL, submitted.ID, func(j *jobWire) bool { return j.State == "done" })
	waitExecutors(t, s, 5*time.Second)

	// Jump the store's clock past the TTL; the next API call sweeps.
	s.jobs.SetClock(func() time.Time { return time.Now().Add(11 * time.Minute) })
	if _, ok := getJob(t, ts.Client(), ts.URL, submitted.ID); ok {
		t.Fatal("done job survived past its TTL")
	}
}

func TestJobTableOverflow429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 8, MaxJobs: 1, JobsPerClient: 8})
	release, err := s.pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"client": "a"`)
	if code, _, _ := postJob(t, ts.Client(), ts.URL, body); code != http.StatusAccepted {
		t.Fatalf("first job: code=%d", code)
	}
	body2 := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"client": "b"`)
	code, _, hdr := postJob(t, ts.Client(), ts.URL, body2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflowing the job table: want 429, got %d", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.Registry().Snapshot()[obs.MetricJobsRejected+".table_full"] != 1 {
		t.Fatal("table-full rejection not counted")
	}
}

func TestJobPerClientCap429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 8, MaxJobs: 8, JobsPerClient: 1})
	release, err := s.pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"client": "greedy"`)
	if code, _, _ := postJob(t, ts.Client(), ts.URL, body); code != http.StatusAccepted {
		t.Fatalf("first job: code=%d", code)
	}
	code, _, _ := postJob(t, ts.Client(), ts.URL, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("per-client cap: want 429, got %d", code)
	}
	if s.Registry().Snapshot()[obs.MetricJobsRejected+".client_cap"] != 1 {
		t.Fatal("client-cap rejection not counted")
	}
	// A different client still gets in.
	other := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"client": "patient"`)
	if code, _, _ := postJob(t, ts.Client(), ts.URL, other); code != http.StatusAccepted {
		t.Fatalf("other client should be admitted: code=%d", code)
	}
}

func TestJobListAndStateGauges(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 8})
	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")
	code, submitted, _ := postJob(t, ts.Client(), ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}
	pollJob(t, ts.Client(), ts.URL, submitted.ID, func(j *jobWire) bool { return j.State == "done" })

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list jobListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID {
		t.Fatalf("job list: %+v", list)
	}

	snap := s.Registry().Snapshot()
	if snap[obs.MetricJobsSubmitted] != 1 {
		t.Fatalf("submitted counter: %d", snap[obs.MetricJobsSubmitted])
	}
	if snap[obs.MetricJobsState+".done"] != 1 || snap[obs.MetricJobsState+".queued"] != 0 || snap[obs.MetricJobsState+".running"] != 0 {
		t.Fatalf("state gauges wrong: done=%d queued=%d running=%d",
			snap[obs.MetricJobsState+".done"], snap[obs.MetricJobsState+".queued"], snap[obs.MetricJobsState+".running"])
	}
	// All five state gauges exist from the first scrape, even untouched.
	for _, st := range []string{"queued", "running", "done", "failed", "canceled"} {
		if _, ok := snap[obs.MetricJobsState+"."+st]; !ok {
			t.Errorf("gauge %s.%s missing from exposition", obs.MetricJobsState, st)
		}
	}
}

func TestJobBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	cases := map[string]string{
		"no instance":  `{"mode":"solve"}`,
		"bad mode":     solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"mode":"nope"`),
		"undecodable":  `{"instance": [`,
		"unknown keys": `{"wat": 1}`,
	}
	for name, body := range cases {
		code, _, _ := postJob(t, ts.Client(), ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", name, code)
		}
	}
	if _, ok := getJob(t, ts.Client(), ts.URL, "nonexistent"); ok {
		t.Error("GET of a nonexistent job should 404")
	}
	if code := deleteJob(t, ts.Client(), ts.URL, "nonexistent"); code != http.StatusNotFound {
		t.Errorf("DELETE of a nonexistent job: want 404, got %d", code)
	}
}
