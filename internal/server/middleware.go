package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"fpga3d/internal/obs"
)

// requestInfo is the per-request record the instrument middleware
// shares with the handlers: the middleware fills the endpoint, handlers
// fill what they learn (strategy, cache outcome), and the middleware
// reads everything back for the access-log line.
type requestInfo struct {
	endpoint string
	strategy string
	cache    string // "hit", "miss", "bypass", or "" when no lookup ran
}

// requestInfoKey is the context key for the requestInfo record.
type requestInfoKey struct{}

// infoFromContext returns the request's info record, or nil outside the
// instrument middleware (direct handler tests).
func infoFromContext(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return ri
}

// statusRecorder captures the response status for metrics and logs. It
// forwards Flush so SSE streaming keeps working through the middleware
// chain.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer, keeping the progress SSE
// endpoint streamable behind the middleware.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// endpointName maps a request path to the label used in per-endpoint
// metric names and log lines.
func endpointName(path string) string {
	switch {
	case path == "/v1/solve":
		return "solve"
	case path == "/v1/minimize-time":
		return "minimize_time"
	case path == "/v1/minimize-chip":
		return "minimize_chip"
	case path == "/v1/solve-batch":
		return "solve_batch"
	case path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/"):
		return "jobs"
	case strings.HasPrefix(path, "/v1/progress/"):
		return "progress"
	case path == "/v1/sessions" || strings.HasPrefix(path, "/v1/sessions/"):
		return "sessions"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	}
	return "other"
}

// maxRequestIDLen bounds a client-supplied X-Request-Id.
const maxRequestIDLen = 64

// sanitizeRequestID accepts a client-supplied request ID when it is
// short and plain (letters, digits, '.', '_', '-'); anything else is
// discarded so log lines and SSE paths stay unambiguous.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for _, r := range id {
		ok := r == '.' || r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return ""
		}
	}
	return id
}

// instrument is the outermost middleware: it assigns the request ID
// (honoring a well-formed client X-Request-Id, so clients can subscribe
// to /v1/progress/{id} while their solve is in flight), echoes it back
// as a header, opens the request span, records per-endpoint latency in
// a histogram, and emits one structured access-log line per request. It
// wraps recoverPanics, so a panicking handler still gets its 500
// logged.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)

		info := &requestInfo{endpoint: endpointName(r.URL.Path)}
		ctx := context.WithValue(obs.ContextWithRequestID(r.Context(), id), requestInfoKey{}, info)
		ctx, span := obs.StartSpan(ctx, s.tracer, "request")
		if span != nil {
			span.SetAttr("method", r.Method)
			span.SetAttr("endpoint", info.endpoint)
		}

		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(ctx))

		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.reg.Histogram(obs.MetricRequestLatency + "." + info.endpoint).Observe(elapsed.Seconds())
		if span != nil {
			span.SetAttr("status", status)
			span.End()
		}
		if s.log != nil {
			attrs := []slog.Attr{
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("endpoint", info.endpoint),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Float64("elapsed_ms", float64(elapsed)/float64(time.Millisecond)),
			}
			if info.strategy != "" {
				attrs = append(attrs, slog.String("strategy", info.strategy))
			}
			if info.cache != "" {
				attrs = append(attrs, slog.String("cache", info.cache))
			}
			s.log.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
		}
	})
}

// recoverPanics sits just inside instrument: a panicking handler must
// cost one request, not the daemon. The panic is logged with its stack
// and counted under server.errors, and the client gets a 500 if no
// body was started.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.reg.Counter(obs.MetricSolveErrors).Inc()
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				s.writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
