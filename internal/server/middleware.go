package server

import (
	"net/http"
	"runtime/debug"

	"fpga3d/internal/obs"
)

// recoverPanics is the outermost middleware: a panicking handler must
// cost one request, not the daemon. The panic is logged with its stack
// and counted under server.errors, and the client gets a 500 if no
// body was started.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.reg.Counter(obs.MetricSolveErrors).Inc()
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				s.writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
