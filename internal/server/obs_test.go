package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"fpga3d/internal/obs"
)

// TestMetricsHeadersAndNegotiation: /metrics answers flat JSON by
// default and Prometheus exposition when asked, both uncacheable; the
// exposition carries at least one histogram family.
func TestMetricsHeadersAndNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One solve so histograms have data.
	postSolve(t, ts.Client(), ts.URL+"/v1/solve", solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, ""))

	get := func(url, accept string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get(ts.URL+"/metrics", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default /metrics Content-Type = %q, want application/json", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("default /metrics Cache-Control = %q, want no-store", cc)
	}
	var flat map[string]float64
	if err := json.Unmarshal([]byte(body), &flat); err != nil {
		t.Fatalf("default /metrics is not a flat JSON map: %v", err)
	}

	for _, q := range []struct{ url, accept string }{
		{ts.URL + "/metrics?format=prom", ""},
		{ts.URL + "/metrics", "text/plain"},
	} {
		resp, body := get(q.url, q.accept)
		if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
			t.Errorf("%s Accept=%q: Content-Type = %q, want %q", q.url, q.accept, ct, obs.PrometheusContentType)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", q.url, cc)
		}
		if !strings.Contains(body, "_bucket{le=") {
			t.Errorf("%s: exposition has no histogram bucket series", q.url)
		}
		if !strings.Contains(body, "server_latency_solve_count") {
			t.Errorf("%s: exposition missing solve latency count", q.url)
		}
	}
}

// TestHealthzHeaders: the liveness reading must not be cached.
func TestHealthzHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("healthz Content-Type = %q, want application/json", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("healthz Cache-Control = %q, want no-store", cc)
	}
}

// TestRequestIDAssignment: the server assigns a request ID, echoes a
// well-formed client-supplied one, and discards a malformed one; the
// response body carries the same ID as the X-Request-Id header, and a
// cache hit gets the hitting request's ID, not the filler's.
func TestRequestIDAssignment(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")

	_, first, hdr := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body)
	id := hdr.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("assigned X-Request-Id = %q, want 16 hex digits", id)
	}
	if first.RequestID != id {
		t.Fatalf("body request_id %q != header %q", first.RequestID, id)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "my-chosen.id_42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var second solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-chosen.id_42" {
		t.Fatalf("client-supplied ID not echoed: %q", got)
	}
	if !second.Cached {
		t.Fatal("second identical request should be a cache hit")
	}
	if second.RequestID != "my-chosen.id_42" {
		t.Fatalf("cache hit carries request_id %q, want the hitting request's ID", second.RequestID)
	}

	req, err = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "not ok: spaces and é")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("malformed client ID should be replaced, got %q", got)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data progressWire
}

// readSSE consumes a text/event-stream body until the terminal "done"
// event, EOF, or the deadline.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("SSE data is not valid JSON: %v in %q", err, line)
			}
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestProgressSSE: a subscriber holding the request ID of an in-flight
// slow solve observes at least one live progress snapshot and the
// terminal done event, with correct streaming headers.
func TestProgressSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	const reqID = "sse-slow-solve"

	solveDone := make(chan struct{})
	go func() {
		defer close(solveDone)
		body := solveBody(t, hardInstance(), hardChipJSON, `"timeout_ms": 3000, "no_cache": true`)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", reqID)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	// The stream opens once the handler passes validation; retry until
	// it exists (or the solve finished, leaving a replayable stream).
	var resp *http.Response
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		resp, err = ts.Client().Get(ts.URL + "/v1/progress/" + reqID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("progress stream never appeared (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}

	events := readSSE(t, resp.Body)
	<-solveDone
	if len(events) == 0 {
		t.Fatal("no SSE events observed")
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event %q, want terminal done; events=%d", last.name, len(events))
	}
	var sawProgress bool
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected event name %q", ev.name)
		}
		if ev.data.Phase != "" {
			sawProgress = true
		}
	}
	if !sawProgress && last.data.Phase == "" {
		t.Fatal("no snapshot with a phase observed")
	}

	// The stream is finished but retained: a late subscriber gets the
	// last snapshot and the terminal event immediately.
	resp2, err := ts.Client().Get(ts.URL + "/v1/progress/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("late subscribe: status %d", resp2.StatusCode)
	}
	replay := readSSE(t, resp2.Body)
	if len(replay) == 0 || replay[len(replay)-1].name != "done" {
		t.Fatalf("late subscriber events = %+v, want terminal done", replay)
	}

	// The handler decrements the gauge in a deferred call that may
	// still be running when the client sees the terminal event.
	waitFor(t, func() bool {
		return s.Registry().Snapshot()[obs.MetricProgressSubscribers] == 0
	})
}

// TestProgressNotFound: unknown IDs and malformed paths are rejected.
func TestProgressNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/progress/never-seen")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream: status %d, want 404", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/progress/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ID: status %d, want 400", resp.StatusCode)
	}
}

// syncBuffer is a goroutine-safe writer for capturing trace output
// that is still being appended when the test starts reading.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSpanTreeOverHTTP: a span-enabled fpgad request emits a connected
// span tree — request → opp → stage — all sharing the request ID that
// the response echoed.
func TestSpanTreeOverHTTP(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Tracer: obs.NewTracer(&buf)})
	_, _, hdr := postSolve(t, ts.Client(), ts.URL+"/v1/solve",
		solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"no_cache": true`))
	reqID := hdr.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id on response")
	}

	// The request span ends after the response is written; wait for it.
	waitFor(t, func() bool {
		return strings.Contains(buf.String(), `"name":"request"`)
	})

	type span struct {
		id, parent, name, reqID string
	}
	spans := map[string]span{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev["ev"] != "span" {
			continue
		}
		sp := span{}
		sp.id, _ = ev["span_id"].(string)
		sp.parent, _ = ev["parent_id"].(string)
		sp.name, _ = ev["name"].(string)
		sp.reqID, _ = ev["request_id"].(string)
		spans[sp.id] = sp
	}

	var root span
	var haveRoot bool
	counts := map[string]int{}
	for _, sp := range spans {
		counts[sp.name]++
		if sp.name == "request" {
			root, haveRoot = sp, true
		}
		if sp.reqID != reqID {
			t.Errorf("span %q carries request_id %q, want %q", sp.name, sp.reqID, reqID)
		}
	}
	if !haveRoot {
		t.Fatal("no request span emitted")
	}
	if root.parent != "" {
		t.Fatalf("request span has parent %q, want none", root.parent)
	}
	if counts["opp"] == 0 {
		t.Fatal("no opp span emitted")
	}
	if counts["stage"] == 0 {
		t.Fatal("no stage span emitted")
	}
	// Every span must reach the request root through parent links.
	for _, sp := range spans {
		cur := sp
		for hops := 0; cur.id != root.id; hops++ {
			if hops > 10 {
				t.Fatalf("span %q does not reach the request root", sp.name)
			}
			parent, ok := spans[cur.parent]
			if !ok {
				t.Fatalf("span %q has dangling parent %q", cur.name, cur.parent)
			}
			cur = parent
		}
	}
}
