package server

import (
	"context"
	"errors"
	"sync/atomic"

	"fpga3d/internal/obs"
)

// ErrQueueFull is returned by Pool.Acquire when the admission queue is
// at capacity; the API layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("server: admission queue full")

// Pool is the solve admission controller: at most maxConcurrent solves
// run at once, and at most queueDepth admitted requests may wait for a
// slot. Anything beyond that is rejected immediately, keeping the
// daemon's memory and tail latency bounded no matter the offered load.
//
// Occupancy is exported through the registry's server.inflight and
// server.queue.depth gauges.
type Pool struct {
	slots      chan struct{}
	queueDepth int64
	waiting    atomic.Int64

	inflight *obs.Gauge
	queued   *obs.Gauge
}

// NewPool returns a pool admitting maxConcurrent concurrent solves and
// queueDepth waiters. Non-positive maxConcurrent means 1; negative
// queueDepth means 0 (reject as soon as every slot is busy).
func NewPool(maxConcurrent, queueDepth int, reg *obs.Registry) *Pool {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Pool{
		slots:      make(chan struct{}, maxConcurrent),
		queueDepth: int64(queueDepth),
		inflight:   reg.Gauge(obs.MetricInflight),
		queued:     reg.Gauge(obs.MetricQueueDepth),
	}
}

// Acquire admits the request and blocks until a solve slot is free or
// ctx is done. It returns a release function that must be called
// exactly once when the solve finishes. If every slot is busy and the
// queue already holds queueDepth waiters, it fails fast with
// ErrQueueFull; if ctx expires while queued, it returns ctx.Err().
func (p *Pool) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a slot is free right now.
	select {
	case p.slots <- struct{}{}:
		p.inflight.Add(1)
		return p.release, nil
	default:
	}

	// Queue path: claim a waiter ticket, bounded by queueDepth.
	if p.waiting.Add(1) > p.queueDepth {
		p.waiting.Add(-1)
		return nil, ErrQueueFull
	}
	p.queued.Add(1)
	defer func() {
		p.waiting.Add(-1)
		p.queued.Add(-1)
	}()

	select {
	case p.slots <- struct{}{}:
		p.inflight.Add(1)
		return p.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release frees a slot taken by Acquire.
func (p *Pool) release() {
	p.inflight.Add(-1)
	<-p.slots
}

// Inflight returns the number of solves currently holding a slot.
func (p *Pool) Inflight() int64 { return p.inflight.Value() }

// Queued returns the number of admitted requests waiting for a slot.
func (p *Pool) Queued() int64 { return p.waiting.Load() }
