package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpga3d/internal/obs"
)

func TestPoolCapsConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(3, 100, reg)

	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := p.Acquire(context.Background())
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := inflight.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds cap 3", got)
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("inflight gauge %d after drain", got)
	}
	if got := p.Queued(); got != 0 {
		t.Fatalf("queued gauge %d after drain", got)
	}
}

func TestPoolRejectsBeyondQueueDepth(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(1, 1, reg)

	holdSlot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer holdSlot()

	// One waiter fits in the queue…
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiterErr := make(chan error, 1)
	go func() {
		release, err := p.Acquire(ctx)
		if err == nil {
			release()
		}
		waiterErr <- err
	}()
	waitFor(t, func() bool { return p.Queued() == 1 })

	// …the next request must be rejected immediately.
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire beyond queue depth: err=%v, want ErrQueueFull", err)
	}

	// A queued waiter whose context dies gets the context error.
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter err=%v, want context.Canceled", err)
	}
	if got := p.Queued(); got != 0 {
		t.Fatalf("queued gauge %d after waiter gave up", got)
	}
}

func TestPoolQueuedWaiterGetsSlot(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(1, 4, reg)

	release, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan func(), 1)
	go func() {
		r2, err := p.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
			close(got)
			return
		}
		got <- r2
	}()
	waitFor(t, func() bool { return p.Queued() == 1 })
	release()
	select {
	case r2 := <-got:
		if r2 == nil {
			t.Fatal("queued waiter failed")
		}
		r2()
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never got the freed slot")
	}
	if reg.Gauge(obs.MetricInflight).Value() != 0 {
		t.Fatal("inflight gauge not back to zero")
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
