package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"fpga3d/internal/obs"
)

// progressWire is the JSON body of one SSE "progress" (or terminal
// "done") event on GET /v1/progress/{request-id}: a point-in-time
// reading of the solve identified by the request ID. On anytime
// minimize-time solves every frame additionally carries the current
// incumbent state — best_makespan, lower_bound and their relative gap
// (non-increasing across a run; 0 exactly when the incumbent is proven
// optimal, so a stream ending in gap 0 delivered a proven answer).
type progressWire struct {
	Phase        string   `json:"phase"`
	Nodes        int64    `json:"nodes"`
	NodesPerSec  float64  `json:"nodes_per_sec"`
	MaxDepth     int      `json:"max_depth"`
	Conflicts    int64    `json:"conflicts"`
	ElapsedMS    float64  `json:"elapsed_ms"`
	BestMakespan *int     `json:"best_makespan,omitempty"`
	LowerBound   *int     `json:"lower_bound,omitempty"`
	Gap          *float64 `json:"gap,omitempty"`
}

// wireSnapshot converts an obs.Snapshot to the SSE body.
func wireSnapshot(s obs.Snapshot) progressWire {
	w := progressWire{
		Phase:       s.Phase,
		Nodes:       s.Nodes,
		NodesPerSec: s.NodesPerSec,
		MaxDepth:    s.MaxDepth,
		Conflicts:   s.TotalConflicts(),
		ElapsedMS:   float64(s.Elapsed) / float64(time.Millisecond),
	}
	if s.Anytime {
		best, lower, gap := s.BestMakespan, s.LowerBound, s.Gap
		w.BestMakespan = &best
		w.LowerBound = &lower
		w.Gap = &gap
	}
	return w
}

// handleProgress streams live solve progress for one request as
// Server-Sent Events: GET /v1/progress/{request-id}, where the ID is
// the X-Request-Id of an in-flight solve (client-chosen, or read from
// a previous response). Each solver progress snapshot arrives as an
// "event: progress" frame; when the solve finishes the stream ends
// with a terminal "event: done" frame carrying the last snapshot.
// Unknown (or already-evicted) request IDs answer 404.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/progress/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, http.StatusBadRequest, "use /v1/progress/{request-id}")
		return
	}
	if s.broker == nil {
		s.writeError(w, http.StatusNotFound, "progress streaming disabled")
		return
	}
	ch, cancel, ok := s.broker.Subscribe(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no progress stream for request "+id)
		return
	}
	defer cancel()
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // keep reverse proxies from buffering the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	gauge := s.reg.Gauge(obs.MetricProgressSubscribers)
	gauge.Add(1)
	defer gauge.Add(-1)

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			name := "progress"
			if ev.Done {
				name = "done"
			}
			body, err := json.Marshal(wireSnapshot(ev.Snapshot))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, body); err != nil {
				return
			}
			flusher.Flush()
			if ev.Done {
				return
			}
		}
	}
}
