// Package server is the fpgad serving subsystem: an HTTP JSON API over
// the root fpga3d solver with bounded-concurrency admission control, a
// canonical-instance result cache, per-request deadlines, and graceful
// drain — the long-lived counterpart of the one-shot fpgaplace CLI for
// online reconfigurable-device management.
//
// Request lifecycle (see ARCHITECTURE.md, "Serving"):
//
//	decode → validate → cache lookup → admission (429 beyond the
//	queue) → deadline (504 with the partial result) → SolveCtx /
//	MinimizeTimeCtx / MinimizeChipCtx → cache fill → response
//
// All serving counters and gauges live in the same obs.Registry as the
// solver's own metrics and are exported verbatim on GET /metrics.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"fpga3d/internal/obs"
	"fpga3d/internal/server/jobs"
)

// Config tunes the daemon; the zero value is usable (one solve at a
// time, no queue, 30s default deadline, 256-entry cache).
type Config struct {
	// MaxConcurrent bounds simultaneously running solves (<1 means 1).
	MaxConcurrent int
	// QueueDepth bounds admitted requests waiting for a slot; beyond
	// it requests are rejected with 429 (+Retry-After).
	QueueDepth int
	// DefaultTimeout is the per-request solve deadline when the
	// request does not set timeout_ms (<=0 means 30s).
	DefaultTimeout time.Duration
	// CacheSize is the canonical-instance result cache capacity in
	// entries (0 means 256; negative disables caching).
	CacheSize int
	// Workers is forwarded to Options.Workers for every solve
	// (0 = GOMAXPROCS).
	Workers int
	// Strategy is the default solve strategy ("staged" or "portfolio",
	// "" = staged) applied when a request does not carry its own
	// "strategy" field. An unknown name is rejected per request with a
	// 400, so callers should validate it up front (fpgad does).
	Strategy string
	// Registry receives serving and solver metrics; nil means a fresh
	// private registry.
	Registry *obs.Registry
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives one structured access-log record
	// per request (request ID, endpoint, strategy, cache outcome,
	// status, latency) plus the notable-event lines that would
	// otherwise go to Logf.
	Logger *slog.Logger
	// Tracer, when non-nil, receives request/driver/stage span events
	// for every request, connected by the request ID.
	Tracer *obs.Tracer
	// ProgressStreams bounds concurrently tracked live-progress streams
	// for GET /v1/progress/{id} (0 means 64; negative disables the
	// endpoint's backing broker).
	ProgressStreams int
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ for live profiling of a running daemon. Off by
	// default: the profile endpoints expose goroutine stacks and heap
	// contents, so they are opt-in (fpgad -pprof) and should stay
	// unreachable from untrusted networks.
	EnablePprof bool
	// SessionTTL evicts online placement sessions idle longer than
	// this (0 means 15m). Eviction is lazy: it runs on the next
	// session-API call, not on a timer.
	SessionTTL time.Duration
	// MaxSessions caps concurrently resident online placement sessions
	// (0 means 64); beyond it POST /v1/sessions answers 429.
	MaxSessions int
	// MaxBatch bounds instances per POST /v1/solve-batch request
	// (0 means 64).
	MaxBatch int
	// MaxJobs bounds jobs resident in the async job table (0 means
	// 256). When the table is full of active jobs, POST /v1/jobs
	// answers 429.
	MaxJobs int
	// JobsPerClient bounds active (queued or running) jobs per client
	// identity (0 means 16); beyond it POST /v1/jobs answers 429 for
	// that client.
	JobsPerClient int
	// JobTTL retains terminal jobs for this long before lazy eviction
	// (0 means 10m). Eviction runs on the next job-API call, not on a
	// timer.
	JobTTL time.Duration
}

// Server wires the admission pool, the result cache and the HTTP
// handlers together. Create it with New; it is ready to serve via
// Handler, Serve or ListenAndServe, and drains with Shutdown.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	pool     *Pool
	cache    *Cache
	broker   *obs.ProgressBroker
	sessions *sessionManager
	jobs     *jobs.Store
	jobsWG   sync.WaitGroup
	log      *slog.Logger
	tracer   *obs.Tracer
	handler  http.Handler
	httpSrv  *http.Server
	draining atomic.Bool
}

// New builds a Server from cfg, normalizing zero values.
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = 256
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0 // NewCache treats <1 as disabled
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		pool:   NewPool(cfg.MaxConcurrent, cfg.QueueDepth, reg),
		cache:  NewCache(cfg.CacheSize, reg),
		log:    cfg.Logger,
		tracer: cfg.Tracer,
	}
	if cfg.ProgressStreams >= 0 {
		s.broker = obs.NewProgressBroker(cfg.ProgressStreams)
	}
	s.sessions = newSessionManager(cfg.SessionTTL, cfg.MaxSessions)
	s.jobs = jobs.NewStore(cfg.MaxJobs, cfg.JobsPerClient, cfg.JobTTL)
	s.jobs.SetObserver(jobStateGauges(reg))

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) { s.serveSolve(w, r, modeSolve) })
	mux.HandleFunc("/v1/minimize-time", func(w http.ResponseWriter, r *http.Request) { s.serveSolve(w, r, modeMinTime) })
	mux.HandleFunc("/v1/minimize-chip", func(w http.ResponseWriter, r *http.Request) { s.serveSolve(w, r, modeMinChip) })
	mux.HandleFunc("/v1/solve-batch", s.handleSolveBatch)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobOp)
	mux.HandleFunc("/v1/progress/", s.handleProgress)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSessionOp)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", reg)
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.instrument(s.recoverPanics(mux))

	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the daemon's HTTP API, for mounting under a custom
// http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Serve accepts connections on l until Shutdown; a Shutdown-initiated
// stop returns nil.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown. ready,
// when non-nil, is called once with the bound address (useful with
// ":0" ports).
func (s *Server) ListenAndServe(addr string, ready func(addr string)) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(l.Addr().String())
	}
	return s.Serve(l)
}

// Shutdown drains the daemon: new connections are refused, /healthz
// flips to 503, in-flight solves run to completion, and async job
// executors finish their current jobs (each within ctx's remaining
// budget — an expired ctx closes connections and abandons job
// goroutines to the process exit).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.logf("draining: %d in flight, %d queued", s.pool.Inflight(), s.pool.Queued())
	err := s.httpSrv.Shutdown(ctx)
	jobsDone := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(jobsDone)
	}()
	select {
	case <-jobsDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// logf forwards notable-event lines to Config.Logf when set, else to
// the structured Logger.
func (s *Server) logf(format string, args ...any) {
	switch {
	case s.cfg.Logf != nil:
		s.cfg.Logf(format, args...)
	case s.log != nil:
		s.log.Info(fmt.Sprintf(format, args...))
	}
}
