package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// easyInstance is solved by the heuristic in well under a millisecond.
func easyInstance() *model.Instance {
	return &model.Instance{
		Name: "easy",
		Tasks: []model.Task{
			{Name: "a", W: 2, H: 2, Dur: 2},
			{Name: "b", W: 2, H: 1, Dur: 1},
			{Name: "c", W: 1, H: 2, Dur: 2},
		},
		Prec: []model.Arc{{From: 0, To: 1}, {From: 1, To: 2}},
	}
}

// hardInstance forces the exact search into an exponential region:
// 14 random-shaped tasks in a volume-tight 6×6×8 container take the
// engine well over two seconds (tens of thousands of nodes), so a
// request deadline of a few hundred milliseconds reliably expires
// while the solve is in flight.
func hardInstance() *model.Instance {
	dims := [][3]int{
		{2, 4, 4}, {4, 2, 3}, {2, 1, 1}, {1, 3, 4}, {3, 2, 1}, {3, 4, 2}, {2, 3, 4},
		{3, 1, 3}, {4, 4, 4}, {1, 3, 4}, {2, 1, 4}, {4, 2, 1}, {2, 4, 2}, {3, 2, 3},
	}
	in := &model.Instance{Name: "hard"}
	for i, d := range dims {
		in.Tasks = append(in.Tasks, model.Task{Name: fmt.Sprintf("t%d", i), W: d[0], H: d[1], Dur: d[2]})
	}
	return in
}

const hardChipJSON = `{"w":6,"h":6,"t":8}`

// postSolve sends body to path and decodes the response.
func postSolve(t *testing.T, client *http.Client, url, body string) (int, *solveResponse, http.Header) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, &out, resp.Header
}

func solveBody(t *testing.T, in *model.Instance, chipJSON string, extra string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"instance": %s, "chip": %s`, buf.String(), chipJSON)
	if extra != "" {
		body += ", " + extra
	}
	return body + "}"
}

// oppWork sums every solver-side opp.* counter: unchanged between two
// requests means the second one never invoked the solver.
func oppWork(reg *obs.Registry) int64 {
	var sum int64
	for k, v := range reg.Snapshot() {
		if strings.HasPrefix(k, "opp.") {
			sum += v
		}
	}
	return sum
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestSolveCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 2})
	body := solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, "")

	code, first, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body)
	if code != http.StatusOK || first.Decision != "feasible" {
		t.Fatalf("first solve: code=%d resp=%+v", code, first)
	}
	if first.Cached {
		t.Fatal("first response claims to be cached")
	}
	if first.Placement == nil || first.Makespan == nil {
		t.Fatalf("feasible response lacks placement/makespan: %+v", first)
	}

	before := oppWork(s.Registry())
	code, second, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second solve not served from cache: code=%d resp=%+v", code, second)
	}
	if after := oppWork(s.Registry()); after != before {
		t.Fatalf("cache hit still invoked the solver: opp work %d -> %d", before, after)
	}
	snap := s.Registry().Snapshot()
	if snap[obs.MetricCacheHits] != 1 || snap[obs.MetricCacheMisses] != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d, want 1/1", snap[obs.MetricCacheHits], snap[obs.MetricCacheMisses])
	}
	if second.Placement == nil || second.Decision != first.Decision {
		t.Fatalf("cached response differs: %+v vs %+v", second, first)
	}
}

// TestCacheHitPermutedInstance: a renumbered resubmission of the same
// module set shares the canonical hash, but its positional placement
// indices differ — the server must re-verify and fall back to a fresh
// solve rather than serve coordinates attached to the wrong tasks.
func TestCacheHitPermutedInstance(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 2})
	in := easyInstance()
	body := solveBody(t, in, `{"w":4,"h":4,"t":6}`, "")
	if code, _, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body); code != http.StatusOK {
		t.Fatalf("seed solve failed: %d", code)
	}

	// Reverse the task order (and remap the precedence arcs).
	perm := []int{2, 1, 0}
	permuted := &model.Instance{Name: in.Name, Tasks: make([]model.Task, len(in.Tasks))}
	for i, task := range in.Tasks {
		permuted.Tasks[perm[i]] = task
	}
	for _, a := range in.Prec {
		permuted.Prec = append(permuted.Prec, model.Arc{From: perm[a.From], To: perm[a.To]})
	}
	if in.CanonicalHash() != permuted.CanonicalHash() {
		t.Fatal("permuted instance should share the canonical hash")
	}

	code, resp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", solveBody(t, permuted, `{"w":4,"h":4,"t":6}`, ""))
	if code != http.StatusOK || resp.Decision != "feasible" {
		t.Fatalf("permuted solve: code=%d resp=%+v", code, resp)
	}
	// Served answer must be valid for the permuted numbering, whether
	// it came from cache (re-verified) or a fresh solve.
	o, err := permuted.Order()
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Placement.Verify(permuted, model.Container{W: 4, H: 4, T: 6}, o); err != nil {
		t.Fatalf("served placement invalid for permuted instance: %v", err)
	}
}

func TestMinimizeEndpointsAndCache(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 2})
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, easyInstance()); err != nil {
		t.Fatal(err)
	}

	mt := fmt.Sprintf(`{"instance": %s, "w": 4, "h": 4}`, buf.String())
	code, resp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", mt)
	if code != http.StatusOK || resp.Decision != "feasible" || resp.Value == nil {
		t.Fatalf("minimize-time: code=%d resp=%+v", code, resp)
	}
	optT := *resp.Value
	code, resp, _ = postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", mt)
	if code != http.StatusOK || !resp.Cached || *resp.Value != optT {
		t.Fatalf("minimize-time second call: code=%d resp=%+v", code, resp)
	}

	mc := fmt.Sprintf(`{"instance": %s, "t": %d}`, buf.String(), optT)
	code, resp, _ = postSolve(t, ts.Client(), ts.URL+"/v1/minimize-chip", mc)
	if code != http.StatusOK || resp.Decision != "feasible" || resp.Value == nil {
		t.Fatalf("minimize-chip: code=%d resp=%+v", code, resp)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not json":        `{`,
		"no instance":     `{"chip":{"w":4,"h":4,"t":4}}`,
		"unknown field":   `{"instance":{"tasks":[{"w":1,"h":1,"dur":1}]},"chip":{"w":4,"h":4,"t":4},"bogus":1}`,
		"no chip":         `{"instance":{"tasks":[{"w":1,"h":1,"dur":1}]}}`,
		"bad chip":        `{"instance":{"tasks":[{"w":1,"h":1,"dur":1}]},"chip":{"w":0,"h":4,"t":4}}`,
		"invalid inst":    `{"instance":{"tasks":[{"w":-1,"h":1,"dur":1}]},"chip":{"w":4,"h":4,"t":4}}`,
		"cyclic prec":     `{"instance":{"tasks":[{"w":1,"h":1,"dur":1},{"w":1,"h":1,"dur":1}],"prec":[{"from":0,"to":1},{"from":1,"to":0}]},"chip":{"w":4,"h":4,"t":4}}`,
		"dangling prec":   `{"instance":{"tasks":[{"w":1,"h":1,"dur":1}],"prec":[{"from":0,"to":5}]},"chip":{"w":4,"h":4,"t":4}}`,
		"empty task list": `{"instance":{"tasks":[]},"chip":{"w":4,"h":4,"t":4}}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decoding error body: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: status=%d error=%q, want 400 with message", name, resp.StatusCode, e.Error)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on solve endpoint: %d, want 405", resp.StatusCode)
	}
}

func TestDeadlineReturns504WithPartialResult(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 2})
	body := solveBody(t, hardInstance(), hardChipJSON, `"timeout_ms": 300`)

	start := time.Now()
	code, resp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code=%d resp=%+v, want 504 (solve finished in %v?)", code, resp, time.Since(start))
	}
	if resp.Decision != "unknown" || resp.Error == "" {
		t.Fatalf("partial result body: %+v", resp)
	}
	if resp.Nodes == 0 {
		t.Fatalf("partial result carries no search statistics: %+v", resp)
	}
	if s.Registry().Snapshot()[obs.MetricDeadlineExpired] != 1 {
		t.Fatal("deadline metric not bumped")
	}

	// A cut-off result must not populate the cache.
	code, resp2, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", body)
	if code != http.StatusGatewayTimeout || resp2.Cached {
		t.Fatalf("second deadline run: code=%d cached=%v", code, resp2.Cached)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 0})
	slow := solveBody(t, hardInstance(), hardChipJSON, `"timeout_ms": 2000, "no_cache": true`)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postSolve(t, ts.Client(), ts.URL+"/v1/solve", slow)
	}()
	waitFor(t, func() bool { return s.pool.Inflight() == 1 })

	code, _, hdr := postSolve(t, ts.Client(), ts.URL+"/v1/solve",
		solveBody(t, easyInstance(), `{"w":4,"h":4,"t":6}`, `"timeout_ms": 1000`))
	if code != http.StatusTooManyRequests {
		t.Fatalf("code=%d, want 429", code)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After=%q, want %q", hdr.Get("Retry-After"), "1")
	}
	if s.Registry().Snapshot()[obs.MetricRejectedQueueFull] != 1 {
		t.Fatal("queue-full metric not bumped")
	}
	<-done
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if _, ok := m[obs.MetricRequestLatency+".healthz.count"]; !ok {
		t.Fatalf("flat JSON metrics missing request-latency histogram summary; got keys %v", len(m))
	}
}

// TestGracefulDrain proves Shutdown lets an in-flight solve run to its
// own completion (here: its deadline) and deliver its response before
// the server exits.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	type answer struct {
		code int
		resp *solveResponse
	}
	got := make(chan answer, 1)
	go func() {
		code, resp, _ := postSolve(t, http.DefaultClient, url+"/v1/solve",
			solveBody(t, hardInstance(), hardChipJSON, `"timeout_ms": 800, "no_cache": true`))
		got <- answer{code, resp}
	}()
	waitFor(t, func() bool { return s.pool.Inflight() == 1 })

	shutdownDone := make(chan error, 1)
	shutdownStart := time.Now()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	select {
	case a := <-got:
		if a.code != http.StatusGatewayTimeout {
			t.Fatalf("drained request: code=%d resp=%+v", a.code, a.resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if waited := time.Since(shutdownStart); waited < 200*time.Millisecond {
		t.Fatalf("Shutdown returned after %v — before the in-flight solve could finish", waited)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// After drain, new connections are refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestPprofEndpointGated(t *testing.T) {
	_, off := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: %d", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with EnablePprof: %d, want 200", resp.StatusCode)
	}
}
