package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fpga3d/internal/obs"
	"fpga3d/internal/online"
	"fpga3d/internal/strategy"
)

// sessionHandle pairs one online placement session with its serving
// bookkeeping. The engine serializes its own operations; lastUsed is
// guarded by the manager lock.
type sessionHandle struct {
	id          string
	eng         *online.Session
	created     time.Time
	lastUsed    time.Time
	closeStream func() // ends the SSE event stream (terminal done frame)
}

// sessionManager owns the live sessions of a daemon: creation against
// the MaxSessions cap, lookup with lazy TTL eviction (an idle session
// is dropped the next time any session call runs), and explicit
// deletion. No background janitor — eviction piggybacks on traffic, so
// an idle daemon holds at most the sessions its TTL already admitted.
type sessionManager struct {
	mu       sync.Mutex
	sessions map[string]*sessionHandle
	ttl      time.Duration
	max      int
	now      func() time.Time // injectable clock for TTL tests
}

func newSessionManager(ttl time.Duration, max int) *sessionManager {
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	if max <= 0 {
		max = 64
	}
	return &sessionManager{
		sessions: make(map[string]*sessionHandle),
		ttl:      ttl,
		max:      max,
		now:      time.Now,
	}
}

// sweepLocked evicts sessions idle past the TTL; callers hold m.mu.
func (m *sessionManager) sweepLocked(s *Server) {
	cutoff := m.now().Add(-m.ttl)
	for id, h := range m.sessions {
		if h.lastUsed.Before(cutoff) {
			delete(m.sessions, id)
			h.closeStream()
			s.reg.Counter(obs.MetricSessionsExpired).Inc()
			s.reg.Gauge(obs.MetricSessionsActive).Add(-1)
			s.logf("session %s expired after %s idle", id, m.ttl)
		}
	}
}

// add registers a new session, answering false when the cap is reached.
func (m *sessionManager) add(s *Server, h *sessionHandle) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(s)
	if len(m.sessions) >= m.max {
		return false
	}
	h.lastUsed = m.now()
	m.sessions[h.id] = h
	return true
}

// get looks a session up, refreshing its idle timer.
func (m *sessionManager) get(s *Server, id string) (*sessionHandle, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(s)
	h, ok := m.sessions[id]
	if ok {
		h.lastUsed = m.now()
	}
	return h, ok
}

// remove deletes a session by ID (client DELETE).
func (m *sessionManager) remove(id string) (*sessionHandle, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	return h, ok
}

// createSessionRequest is the wire body of POST /v1/sessions.
type createSessionRequest struct {
	W int `json:"w"`
	H int `json:"h"`
	// Strategy overrides the daemon default for this session's exact
	// probes.
	Strategy string `json:"strategy,omitempty"`
	// ProbeNodeLimit bounds branch-and-bound nodes per exact admission
	// probe (0 = unlimited; limited probes may answer "unknown").
	ProbeNodeLimit int64 `json:"probe_node_limit,omitempty"`
	// MaxMoves bounds relocations per defragmentation plan (0 = 16).
	MaxMoves int `json:"max_moves,omitempty"`
}

// sessionResponse is the wire shape of a session snapshot, shared by
// create, GET and the mutation endpoints' "state" echo.
type sessionResponse struct {
	ID string `json:"id"`
	*online.Snapshot
}

// admitWire is the wire body of POST /v1/sessions/{id}/admit.
type admitWire struct {
	online.AdmitRequest
	// TimeoutMS bounds the exact probe's wall clock (0 = the daemon's
	// default request timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// departWire is the wire body of POST /v1/sessions/{id}/depart.
type departWire struct {
	ID int `json:"id"`
	At int `json:"at,omitempty"`
}

// defragWire is the wire body of POST /v1/sessions/{id}/defrag.
type defragWire struct {
	At int `json:"at,omitempty"`
}

// defragResponse answers an explicit defrag with its validated plan.
type defragResponse struct {
	Moves   []online.Move `json:"moves"`
	Replans int           `json:"replans,omitempty"`
}

// handleSessions serves the collection endpoint: POST /v1/sessions
// creates a session and answers 201 with its snapshot (the Location
// header carries the canonical URL).
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.reg.Counter(obs.MetricRequests + ".sessions").Inc()
	var req createSessionRequest
	if err := json.NewDecoder(io64k(r)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	strat := req.Strategy
	if strat == "" {
		strat = s.cfg.Strategy
	}
	if strat != "" && !strategy.Valid(strat) {
		s.writeError(w, http.StatusBadRequest,
			`unknown strategy `+strconvQuote(strat)+` (use one of: `+strings.Join(strategy.Names(), ", ")+`)`)
		return
	}

	id := obs.NewRequestID()
	publish, closeStream := s.broker.Open(sessionStreamID(id))
	eng, err := online.NewSession(online.Config{
		W: req.W, H: req.H,
		Strategy:       strat,
		Workers:        s.cfg.Workers,
		ProbeNodeLimit: req.ProbeNodeLimit,
		MaxMoves:       req.MaxMoves,
		Metrics:        s.reg,
		Events:         publish,
	})
	if err != nil {
		closeStream()
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	h := &sessionHandle{id: id, eng: eng, created: time.Now(), closeStream: closeStream}
	if !s.sessions.add(s, h) {
		closeStream()
		s.writeError(w, http.StatusTooManyRequests, "session limit reached")
		return
	}
	s.reg.Counter(obs.MetricSessionsCreated).Inc()
	s.reg.Gauge(obs.MetricSessionsActive).Add(1)
	s.logf("session %s created: %dx%d device, strategy %s", id, req.W, req.H, strat)
	w.Header().Set("Location", "/v1/sessions/"+id)
	s.writeJSON(w, http.StatusCreated, &sessionResponse{ID: id, Snapshot: eng.State(0)})
}

// handleSessionOp routes the per-session endpoints:
//
//	GET    /v1/sessions/{id}         → snapshot
//	DELETE /v1/sessions/{id}         → remove
//	POST   /v1/sessions/{id}/admit   → admission decision
//	POST   /v1/sessions/{id}/depart  → early departure
//	POST   /v1/sessions/{id}/defrag  → explicit compaction
//	GET    /v1/sessions/{id}/events  → SSE event stream
func (s *Server) handleSessionOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, op, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(op, "/") {
		s.writeError(w, http.StatusBadRequest, "use /v1/sessions/{id}[/admit|depart|defrag|events]")
		return
	}
	s.reg.Counter(obs.MetricRequests + ".sessions").Inc()
	if op == "events" {
		s.handleSessionEvents(w, r, id)
		return
	}
	h, ok := s.sessions.get(s, id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such session "+id)
		return
	}
	switch {
	case op == "" && r.Method == http.MethodGet:
		s.writeJSON(w, http.StatusOK, &sessionResponse{ID: id, Snapshot: h.eng.State(0)})
	case op == "" && r.Method == http.MethodDelete:
		if h, ok := s.sessions.remove(id); ok {
			h.closeStream()
			s.reg.Counter(obs.MetricSessionsDeleted).Inc()
			s.reg.Gauge(obs.MetricSessionsActive).Add(-1)
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	case op == "":
		s.writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	case r.Method != http.MethodPost:
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
	case op == "admit":
		s.handleSessionAdmit(w, r, h)
	case op == "depart":
		s.handleSessionDepart(w, r, h)
	case op == "defrag":
		s.handleSessionDefrag(w, r, h)
	default:
		s.writeError(w, http.StatusNotFound, "unknown session operation "+op)
	}
}

// handleSessionAdmit decides one admission. The exact probe runs under
// the request context bounded by timeout_ms (default: the daemon's
// request timeout), so a slow probe answers "unknown" rather than
// hanging the session.
func (s *Server) handleSessionAdmit(w http.ResponseWriter, r *http.Request, h *sessionHandle) {
	var req admitWire
	if err := json.NewDecoder(io64k(r)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, err := h.eng.Admit(ctx, req.AdmitRequest)
	s.reg.Histogram(obs.MetricSessionAdmitLatency).Observe(time.Since(start).Seconds())
	if err != nil {
		s.reg.Counter(obs.MetricSolveErrors).Inc()
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.reg.Counter(obs.MetricSessionAdmits + "." + res.Decision).Inc()
	if n := len(res.Moves); n > 0 {
		s.reg.Counter(obs.MetricSessionDefragMoves).Add(int64(n))
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleSessionDepart removes one module early.
func (s *Server) handleSessionDepart(w http.ResponseWriter, r *http.Request, h *sessionHandle) {
	var req departWire
	if err := json.NewDecoder(io64k(r)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if err := h.eng.Depart(req.ID, req.At); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, online.ErrNotFound) {
			code = http.StatusNotFound
		}
		s.writeError(w, code, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, &sessionResponse{ID: h.id, Snapshot: h.eng.State(0)})
}

// handleSessionDefrag triggers an explicit compaction and answers with
// the validated (possibly empty) plan.
func (s *Server) handleSessionDefrag(w http.ResponseWriter, r *http.Request, h *sessionHandle) {
	var req defragWire
	if err := json.NewDecoder(io64k(r)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	plan, err := h.eng.Defrag(req.At)
	if err != nil {
		s.reg.Counter(obs.MetricSolveErrors).Inc()
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if n := len(plan.Moves); n > 0 {
		s.reg.Counter(obs.MetricSessionDefragMoves).Add(int64(n))
	}
	s.writeJSON(w, http.StatusOK, &defragResponse{Moves: plan.Moves, Replans: plan.Replans})
}

// handleSessionEvents streams a session's lifecycle events as SSE
// frames through the shared progress broker: each admit/depart/defrag
// arrives as an "event: progress" frame whose phase field carries the
// event kind (e.g. "admit:defrag"); deleting or expiring the session
// ends the stream with a terminal "event: done" frame. The stream
// outlives individual operations — it is the session-scoped analogue of
// GET /v1/progress/{request-id}.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if _, ok := s.sessions.get(s, id); !ok {
		s.writeError(w, http.StatusNotFound, "no such session "+id)
		return
	}
	// Reuse the progress SSE loop by rewriting to the broker stream ID.
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/progress/" + sessionStreamID(id)
	s.handleProgress(w, r2)
}

// sessionStreamID namespaces a session's broker stream away from
// request-ID progress streams.
func sessionStreamID(id string) string { return "session-" + id }

// io64k bounds a session-API request body; session operations are tiny
// compared to solve instances, so 64 KiB is generous.
func io64k(r *http.Request) io.Reader { return io.LimitReader(r.Body, 64<<10) }

// strconvQuote quotes a user-supplied string for an error message.
func strconvQuote(s string) string { return strconv.Quote(s) }
