package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpga3d/internal/obs"
	"fpga3d/internal/online"
)

// sessionWire decodes the session snapshot responses.
type sessionWire struct {
	ID        string            `json:"id"`
	Now       int               `json:"now"`
	W         int               `json:"w"`
	H         int               `json:"h"`
	Residents []online.Resident `json:"residents"`
	Free      online.FreeStats  `json:"free"`
	Counters  online.Counters   `json:"counters"`
}

// postJSON sends body to url and decodes the response into out (out may
// be nil to discard).
func postJSON(t *testing.T, client *http.Client, url, body string, out any) int {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding POST %s response: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// createSession makes a session over the wire and returns its ID.
func createSession(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	var out sessionWire
	code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", body, &out)
	if code != http.StatusCreated {
		t.Fatalf("create session: code=%d resp=%+v", code, out)
	}
	if out.ID == "" {
		t.Fatal("create session: empty id")
	}
	return out.ID
}

// admit sends one admission and returns the decoded result.
func admit(t *testing.T, ts *httptest.Server, id, body string) *online.AdmitResult {
	t.Helper()
	var res online.AdmitResult
	code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+id+"/admit", body, &res)
	if code != http.StatusOK {
		t.Fatalf("admit: code=%d res=%+v", code, res)
	}
	return &res
}

func TestSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := createSession(t, ts, `{"w":8,"h":8}`)

	// The Location header points at the canonical session URL.
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"w":4,"h":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var second sessionWire
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != "/v1/sessions/"+second.ID {
		t.Errorf("Location = %q, want /v1/sessions/%s", loc, second.ID)
	}

	res := admit(t, ts, id, `{"name":"m0","w":3,"h":3,"dur":10}`)
	if res.Decision != online.DecisionPlaced {
		t.Fatalf("admit decision = %q (by %q), want placed", res.Decision, res.DecidedBy)
	}

	var snap sessionWire
	resp, err = ts.Client().Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Residents) != 1 || snap.Residents[0].Name != "m0" {
		t.Fatalf("snapshot residents = %+v, want one m0", snap.Residents)
	}
	if snap.Counters.Admitted != 1 {
		t.Fatalf("snapshot counters = %+v, want admitted 1", snap.Counters)
	}

	var after sessionWire
	code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+id+"/depart",
		fmt.Sprintf(`{"id":%d,"at":2}`, res.ID), &after)
	if code != http.StatusOK || len(after.Residents) != 0 {
		t.Fatalf("depart: code=%d residents=%+v, want empty layout", code, after.Residents)
	}

	// Departing an unknown module is a 404, not a 400.
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+id+"/depart", `{"id":99}`, nil); code != http.StatusNotFound {
		t.Fatalf("depart unknown module: code=%d, want 404", code)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: code=%d, want 200", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: code=%d, want 404", resp.StatusCode)
	}

	got := s.Registry().Snapshot()
	for name, want := range map[string]int64{
		obs.MetricSessionsCreated:           2,
		obs.MetricSessionsDeleted:           1,
		obs.MetricSessionsActive:            1, // `second` is still resident
		obs.MetricSessionAdmits + ".placed": 1,
		obs.MetricRequests + ".sessions":    8,
	} {
		if got[name] != want {
			t.Errorf("metric %s = %d, want %d", name, got[name], want)
		}
	}
	if _, ok := s.Registry().SnapshotHistograms()[obs.MetricSessionAdmitLatency]; !ok {
		t.Errorf("histogram %s missing", obs.MetricSessionAdmitLatency)
	}
}

func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"create bad dims", http.MethodPost, "/v1/sessions", `{"w":0,"h":8}`, http.StatusBadRequest},
		{"create bad strategy", http.MethodPost, "/v1/sessions", `{"w":8,"h":8,"strategy":"nope"}`, http.StatusBadRequest},
		{"create bad json", http.MethodPost, "/v1/sessions", `{`, http.StatusBadRequest},
		{"collection GET", http.MethodGet, "/v1/sessions", "", http.StatusMethodNotAllowed},
		{"unknown session", http.MethodGet, "/v1/sessions/deadbeef", "", http.StatusNotFound},
		{"unknown op", http.MethodPost, "/v1/sessions/deadbeef/admit", `{}`, http.StatusNotFound},
		{"deep path", http.MethodGet, "/v1/sessions/a/b/c", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: code=%d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// An admit with invalid dims is a 400 against a real session.
	id := createSession(t, ts, `{"w":8,"h":8}`)
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+id+"/admit", `{"name":"m","w":0,"h":2,"dur":3}`, nil); code != http.StatusBadRequest {
		t.Fatalf("admit bad dims: code=%d, want 400", code)
	}
}

// TestSessionDefragEndpoint drives the fragmentation scenario over the
// wire: three full-height columns, the outer two depart, and an
// explicit defrag relocates the stranded middle column.
func TestSessionDefragEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := createSession(t, ts, `{"w":8,"h":8}`)

	a := admit(t, ts, id, `{"name":"a","w":3,"h":8,"dur":100}`)
	b := admit(t, ts, id, `{"name":"b","w":2,"h":8,"dur":100}`)
	c := admit(t, ts, id, `{"name":"c","w":3,"h":8,"dur":100}`)
	for _, r := range []*online.AdmitResult{a, b, c} {
		if r.Decision != online.DecisionPlaced {
			t.Fatalf("setup admit = %q (by %q), want placed", r.Decision, r.DecidedBy)
		}
	}
	for _, rid := range []int{a.ID, c.ID} {
		if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+id+"/depart",
			fmt.Sprintf(`{"id":%d,"at":1}`, rid), nil); code != http.StatusOK {
			t.Fatalf("depart %d: code=%d", rid, code)
		}
	}

	var plan defragResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+id+"/defrag", `{"at":2}`, &plan); code != http.StatusOK {
		t.Fatalf("defrag: code=%d", code)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].ID != b.ID {
		t.Fatalf("defrag moves = %+v, want exactly one move of %d", plan.Moves, b.ID)
	}
	if got := s.Registry().Snapshot()[obs.MetricSessionDefragMoves]; got != 1 {
		t.Errorf("metric %s = %d, want 1", obs.MetricSessionDefragMoves, got)
	}

	var snap sessionWire
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Free.LargestW != 6 {
		t.Fatalf("largest free width after defrag = %d, want 6 (free=%+v)", snap.Free.LargestW, snap.Free)
	}
}

func TestSessionCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	createSession(t, ts, `{"w":4,"h":4}`)
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", `{"w":4,"h":4}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second create with MaxSessions=1: code=%d, want 429", code)
	}
}

// TestSessionTTLEviction moves the manager's clock past the TTL and
// checks the lazy sweep drops the idle session on the next lookup.
func TestSessionTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	id := createSession(t, ts, `{"w":4,"h":4}`)

	s.sessions.mu.Lock()
	s.sessions.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	s.sessions.mu.Unlock()

	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after TTL: code=%d, want 404", resp.StatusCode)
	}
	got := s.Registry().Snapshot()
	if got[obs.MetricSessionsExpired] != 1 {
		t.Errorf("metric %s = %d, want 1", obs.MetricSessionsExpired, got[obs.MetricSessionsExpired])
	}
	if got[obs.MetricSessionsActive] != 0 {
		t.Errorf("metric %s = %d, want 0", obs.MetricSessionsActive, got[obs.MetricSessionsActive])
	}
}

// TestSessionEventsSSE subscribes to a session's event stream, sees the
// admit event replayed, then observes the terminal done frame when the
// session is deleted.
func TestSessionEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts, `{"w":8,"h":8}`)
	admit(t, ts, id, `{"name":"m0","w":2,"h":2,"dur":5}`)

	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: code=%d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}

	// Read frames incrementally: the subscription replays the latest
	// event first, and deleting the session must end the stream.
	type frame struct {
		name  string
		phase string
	}
	frames := make(chan frame)
	go func() {
		defer close(frames)
		var cur frame
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var pw progressWire
				if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &pw) == nil {
					cur.phase = pw.Phase
				}
			case line == "":
				if cur.name != "" {
					frames <- cur
					if cur.name == "done" {
						return
					}
					cur = frame{}
				}
			}
		}
	}()

	wait := func(what string) frame {
		t.Helper()
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("stream ended before %s", what)
			}
			return f
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		panic("unreachable")
	}

	first := wait("replayed admit event")
	if first.name != "progress" || first.phase != "admit:placed" {
		t.Fatalf("first frame = %+v, want progress/admit:placed", first)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	for {
		f := wait("terminal done frame")
		if f.name == "done" {
			break
		}
	}

	// The stream of a session that never existed is a 404.
	missing, err := ts.Client().Get(ts.URL + "/v1/sessions/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, missing.Body)
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown session: code=%d, want 404", missing.StatusCode)
	}
}
