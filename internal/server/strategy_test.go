package server

import (
	"strings"
	"testing"

	"fpga3d/internal/obs"
)

// TestSolveStrategyField exercises the request-level strategy
// selection: the default is staged, a valid "strategy" field is
// honored and echoed (and counted in the server.strategy.* metrics),
// an unknown name is a 400 with a message naming the valid choices,
// and cached entries are keyed per strategy so a portfolio answer
// never masquerades as a staged one.
func TestSolveStrategyField(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	in := easyInstance()

	// Default: no field means staged.
	code, resp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/solve", solveBody(t, in, `{"w":4,"h":4,"t":8}`, ""))
	if code != 200 {
		t.Fatalf("default solve: status %d (%s)", code, resp.Error)
	}
	if resp.Strategy != "staged" {
		t.Fatalf("default strategy echoed as %q, want staged", resp.Strategy)
	}
	if got := reg.Counter(obs.MetricStrategyRequests + ".staged").Value(); got != 1 {
		t.Fatalf("server.strategy.staged = %d, want 1", got)
	}

	// Explicit portfolio: honored, echoed, counted — and a fresh cache
	// entry (the staged answer above must not be served for it).
	code, resp, _ = postSolve(t, ts.Client(), ts.URL+"/v1/solve", solveBody(t, in, `{"w":4,"h":4,"t":8}`, `"strategy": "portfolio"`))
	if code != 200 {
		t.Fatalf("portfolio solve: status %d (%s)", code, resp.Error)
	}
	if resp.Strategy != "portfolio" {
		t.Fatalf("portfolio strategy echoed as %q", resp.Strategy)
	}
	if resp.Cached {
		t.Fatal("portfolio request served from the staged cache entry")
	}
	if got := reg.Counter(obs.MetricStrategyRequests + ".portfolio").Value(); got != 1 {
		t.Fatalf("server.strategy.portfolio = %d, want 1", got)
	}

	// Repeats hit their own per-strategy cache entries.
	for _, strat := range []string{"", `"strategy": "portfolio"`} {
		_, resp, _ = postSolve(t, ts.Client(), ts.URL+"/v1/solve", solveBody(t, in, `{"w":4,"h":4,"t":8}`, strat))
		if !resp.Cached {
			t.Fatalf("repeat request (%s) missed the cache", strat)
		}
	}

	// Unknown name: 400 naming the valid strategies, before any solve.
	code, resp, _ = postSolve(t, ts.Client(), ts.URL+"/v1/solve", solveBody(t, in, `{"w":4,"h":4,"t":8}`, `"strategy": "greedy"`))
	if code != 400 {
		t.Fatalf("unknown strategy: status %d, want 400", code)
	}
	if !strings.Contains(resp.Error, "greedy") || !strings.Contains(resp.Error, "staged") || !strings.Contains(resp.Error, "portfolio") {
		t.Fatalf("unknown-strategy error %q does not name the offender and the valid choices", resp.Error)
	}
}

// TestServerDefaultStrategy checks that Config.Strategy sets the
// daemon-wide default and that requests still override it per call.
func TestServerDefaultStrategy(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg, Strategy: "portfolio"})
	in := easyInstance()

	_, resp, _ := postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", solveBody(t, in, `null`, `"w": 4, "h": 4`))
	if resp.Strategy != "portfolio" {
		t.Fatalf("daemon default not applied: strategy %q", resp.Strategy)
	}
	_, resp, _ = postSolve(t, ts.Client(), ts.URL+"/v1/minimize-time", solveBody(t, in, `null`, `"w": 4, "h": 4, "strategy": "staged"`))
	if resp.Strategy != "staged" {
		t.Fatalf("request override not applied: strategy %q", resp.Strategy)
	}
}
