package server

import (
	"encoding/json"
	"fmt"

	"fpga3d"
)

// solveRequest is the JSON body of every /v1/* solve endpoint. The
// instance payload uses the same schema as the instances/*.json files
// (model.Instance); which of the remaining fields are required depends
// on the endpoint:
//
//	POST /v1/solve          — chip {w,h,t}: is the instance feasible on it?
//	POST /v1/minimize-time  — w, h: minimal T on a fixed w×h chip
//	POST /v1/minimize-chip  — t: minimal square chip side within T cycles
//
// timeout_ms overrides the daemon's -default-timeout for this request;
// no_cache bypasses the result cache (neither read nor written);
// strategy ("staged", "portfolio" or "anneal") overrides the daemon's
// -strategy default for this request — an unknown name is a 400.
// anytime (minimize-time only; a 400 elsewhere) runs the solve in
// anytime mode: improvements stream on the progress channel with
// best_makespan/lower_bound/gap, and a deadline-expired request still
// carries its best incumbent and optimality gap.
type solveRequest struct {
	Instance  json.RawMessage `json:"instance"`
	Chip      *fpga3d.Chip    `json:"chip,omitempty"`
	W         int             `json:"w,omitempty"`
	H         int             `json:"h,omitempty"`
	T         int             `json:"t,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	NoCache   bool            `json:"no_cache,omitempty"`
	Strategy  string          `json:"strategy,omitempty"`
	Anytime   bool            `json:"anytime,omitempty"`
}

// solveResponse is the JSON answer of every /v1/* solve endpoint.
// Decision is "feasible", "infeasible" or "unknown" (the latter only
// on a 504, carrying the partial result produced before the deadline).
// Value and LowerBound are set by the minimize endpoints; Makespan
// accompanies any witness placement. Strategy echoes the solve
// strategy that produced the answer. Cached reports whether the
// response was served from the canonical-instance cache without
// invoking the solver. RequestID echoes the request's X-Request-Id
// (assigned by the server when the client sent none); it also names
// the live-progress stream at GET /v1/progress/{request_id}, and is
// per-request, so it is blanked before a response is cached.
// BestBound and Gap appear on anytime minimize-time answers only: the
// best proven lower bound at exit and the relative optimality gap
// (0 exactly when the value is proven optimal; positive on a 504
// partial result). They are stripped before a response is cached —
// the cache stores only completed, gap-0 answers — and re-synthesized
// on anytime cache hits.
type solveResponse struct {
	Decision   string            `json:"decision"`
	DecidedBy  string            `json:"decided_by,omitempty"`
	Strategy   string            `json:"strategy,omitempty"`
	RequestID  string            `json:"request_id,omitempty"`
	Value      *int              `json:"value,omitempty"`
	LowerBound *int              `json:"lower_bound,omitempty"`
	BestBound  *int              `json:"best_bound,omitempty"`
	Gap        *float64          `json:"gap,omitempty"`
	Nodes      int64             `json:"nodes"`
	ElapsedMS  int64             `json:"elapsed_ms"`
	Makespan   *int              `json:"makespan,omitempty"`
	Placement  *fpga3d.Placement `json:"placement,omitempty"`
	Cached     bool              `json:"cached"`
	Error      string            `json:"error,omitempty"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status       string `json:"status"` // "ok" or "draining"
	Inflight     int64  `json:"inflight"`
	Queued       int64  `json:"queued"`
	CacheEntries int    `json:"cache_entries"`
}

// errorResponse is the body of every non-2xx answer that is not a
// partial solve result.
type errorResponse struct {
	Error string `json:"error"`
}

// cacheKey builds the result-cache key: the question (endpoint), the
// canonical instance identity, the numeric parameters that complete
// it, and the solve strategy. Options that cannot change the response
// (worker count, per-request deadline) are deliberately excluded — the
// solver's optimum is deterministic — but the strategy is part of the
// key because it changes the reported provenance (decided_by, node
// counts) even though the answers agree.
func cacheKey(mode, hash, strat string, a, b, c int) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%d", mode, hash, strat, a, b, c)
}
