package solver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// AnytimeUpdate is one improvement notification of an anytime MinTime
// run: a new best incumbent, a raised proven lower bound, or the
// final proof of optimality. Best only decreases and LowerBound only
// increases across a run, so Gap is non-increasing and the Final
// update carries Gap 0.
type AnytimeUpdate struct {
	// Best is the best-known makespan (the incumbent upper bound).
	Best int
	// LowerBound is the best proven makespan lower bound so far.
	LowerBound int
	// Gap is bounds.Gap(Best, LowerBound): 0 exactly when the
	// incumbent is proven optimal.
	Gap float64
	// Source names what produced the update: "heuristic" (the greedy
	// incumbent), "anneal" (an annealing improvement), "search" or
	// another probe verdict (an exact-probe witness), "bound" (an
	// infeasibility proof raised the lower bound), or "proved" (the
	// Final update).
	Source string
	// Placement is the current best witness. It is shared with the
	// solver — callers must Clone before retaining or mutating it.
	Placement *model.Placement
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Final marks the terminal update of a completed run.
	Final bool
}

// anytimeState tracks the (incumbent, bound) pair of a running
// anytime solve and stamps it onto every progress snapshot, so SSE
// streams and live tickers see the current gap on each frame — not
// just on the frames that announce an improvement. Progress hooks may
// be invoked from engine worker goroutines, hence the lock.
type anytimeState struct {
	mu       sync.Mutex
	best, lo int
	seen     bool
}

func (a *anytimeState) set(best, lo int) {
	a.mu.Lock()
	a.best, a.lo, a.seen = best, lo, true
	a.mu.Unlock()
}

// annotate wraps a progress hook so every snapshot carries the
// current anytime fields; a nil hook stays nil.
func (a *anytimeState) annotate(prev obs.ProgressFunc) obs.ProgressFunc {
	if prev == nil {
		return nil
	}
	return func(s obs.Snapshot) {
		a.mu.Lock()
		if a.seen {
			s.Anytime = true
			s.BestMakespan = a.best
			s.LowerBound = a.lo
			s.Gap = bounds.Gap(a.best, a.lo)
		}
		a.mu.Unlock()
		prev(s)
	}
}

// minTimeAnytime is the anytime continuation of minTime, entered with
// the stage-1 bound and the verified greedy incumbent in hand. It
// streams every improvement of the (incumbent, bound) pair —
// annealing improvements first, then exact binary-search refinement —
// and terminates with a Final update once the gap is proven closed.
// The refinement is the same monotone predicate over the same
// interval the staged sweep converges on, so the final Value equals
// the staged pipeline's; only intermediate effort differs.
func minTimeAnytime(ctx context.Context, in *model.Instance, W, H int, order *model.Order, opt Options, res *OptResult, start time.Time, lb, best int, bestPlace *model.Placement) (*OptResult, error) {
	state := &anytimeState{}
	state.set(best, lb)
	opt.Progress = state.annotate(opt.Progress)

	emit := func(best, lo int, source string, pl *model.Placement, final bool) {
		state.set(best, lo)
		g := bounds.Gap(best, lo)
		opt.Metrics.Gauge("anytime.best").Set(int64(best))
		opt.Metrics.Gauge("anytime.lower_bound").Set(int64(lo))
		opt.Trace.Emit("anytime", map[string]any{
			"best": best, "lower_bound": lo, "gap": g, "source": source, "final": final,
		})
		if opt.OnImprovement != nil {
			opt.OnImprovement(AnytimeUpdate{
				Best: best, LowerBound: lo, Gap: g, Source: source,
				Placement: pl, Elapsed: time.Since(start), Final: final,
			})
		}
		// A fresh snapshot per improvement keeps pull-based consumers
		// (SSE streams, tickers) current even between node-cadence
		// frames.
		if opt.Progress != nil {
			opt.Progress(obs.Snapshot{Phase: obs.PhaseAnneal, Elapsed: time.Since(start)})
		}
	}

	lo, hi := lb, best
	emit(best, lo, "heuristic", bestPlace, false)

	// Annealing tier: tighten the incumbent before any exact probe,
	// streaming improvements as they land. Target lo stops the walk as
	// soon as an incumbent matches the proven bound.
	opt.notifyPhase(obs.PhaseAnneal)
	tAnneal := time.Now()
	ap, amk, aok := heur.AnnealMinMakespan(ctx, in, W, H, order, heur.AnnealOptions{
		Seed:   opt.AnnealSeed,
		Target: lo,
		OnImprove: func(p *model.Placement, mk int) {
			if mk < best {
				best, bestPlace = mk, p.Clone()
				hi = mk
				opt.incumbent("spp", mk, "anneal")
				emit(best, lo, "anneal", bestPlace, false)
			}
		},
	})
	res.Stages.Anneal += time.Since(tAnneal)
	if aok && amk < hi {
		// Defensive: OnImprove should already have delivered this.
		best, bestPlace, hi = amk, ap.Clone(), amk
	}
	if aok && bestPlace != nil {
		if err := bestPlace.Verify(in, model.Container{W: W, H: H, T: best}, order); err != nil {
			return nil, fmt.Errorf("solver: annealer produced invalid schedule: %w", err)
		}
		opt.inc.RecordWitness(in, bestPlace, "anneal")
	}

	// Exact refinement: sequential binary search on the monotone
	// predicate "fits within T". Every infeasibility proof raises the
	// proven bound, every witness lowers the incumbent; the interval
	// converges on the same optimum the staged sweep finds.
	for lo < hi {
		mid := (lo + hi) / 2
		r, err := solveOPP(ctx, in, model.Container{W: W, H: H, T: mid}, order, opt)
		if err != nil {
			return nil, err
		}
		res.mergeProbe(r)
		opt.probe("spp", map[string]any{"T": mid, "outcome": probeOutcomeLabel(r)})
		switch r.Decision {
		case Feasible:
			hi = mid
			best, bestPlace = mid, r.Placement
			// The witness may finish earlier than the probed budget;
			// its makespan is a certified feasible point.
			if mk := r.Placement.Makespan(in); mk < hi {
				hi = mk
				best = mk
			}
			opt.incumbent("spp", best, r.DecidedBy)
			emit(best, lo, r.DecidedBy, bestPlace, false)
		case Infeasible:
			lo = mid + 1
			emit(best, lo, "bound", bestPlace, false)
		default:
			res.Decision = Unknown
			res.Value = best
			res.Placement = bestPlace
			res.BestBound = lo
			res.Gap = bounds.Gap(best, lo)
			res.Elapsed = time.Since(start)
			opt.traceSolveEnd("spp", res)
			return res, ctx.Err()
		}
	}
	res.Decision = Feasible
	res.Value = best
	res.Placement = bestPlace
	res.BestBound = best
	res.Gap = 0
	res.Elapsed = time.Since(start)
	emit(best, best, "proved", bestPlace, true)
	opt.traceSolveEnd("spp", res)
	return res, nil
}
