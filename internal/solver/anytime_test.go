package solver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// checkAnytimeUpdates asserts the streamed update contract: the
// incumbent never worsens, the proven bound never loosens, the gap is
// non-increasing, and a completed run ends with a Final update at gap
// exactly 0.
func checkAnytimeUpdates(t *testing.T, label string, ups []AnytimeUpdate, completed bool) {
	t.Helper()
	if len(ups) == 0 {
		t.Fatalf("%s: no anytime updates streamed", label)
	}
	for i := 1; i < len(ups); i++ {
		if ups[i].Best > ups[i-1].Best {
			t.Fatalf("%s: incumbent worsened at update %d: %d → %d", label, i, ups[i-1].Best, ups[i].Best)
		}
		if ups[i].LowerBound < ups[i-1].LowerBound {
			t.Fatalf("%s: bound loosened at update %d: %d → %d", label, i, ups[i-1].LowerBound, ups[i].LowerBound)
		}
		if ups[i].Gap > ups[i-1].Gap+1e-12 {
			t.Fatalf("%s: gap increased at update %d: %v → %v", label, i, ups[i-1].Gap, ups[i].Gap)
		}
	}
	last := ups[len(ups)-1]
	if completed {
		if !last.Final {
			t.Fatalf("%s: last update not Final", label)
		}
		if last.Gap != 0 {
			t.Fatalf("%s: final gap = %v, want 0", label, last.Gap)
		}
		if last.Source != "proved" {
			t.Fatalf("%s: final source = %q, want proved", label, last.Source)
		}
	}
	for i, u := range ups[:len(ups)-1] {
		if u.Final {
			t.Fatalf("%s: non-terminal update %d marked Final", label, i)
		}
	}
}

// TestAnytimeMatchesStagedRandom is the differential gate of the
// anytime tier: on 100+ random instances the fully refined anytime
// answer must equal the staged pipeline's answer, the witness must
// verify, and the streamed updates must obey the monotone-gap
// contract.
func TestAnytimeMatchesStagedRandom(t *testing.T) {
	W, H := 5, 5
	cases := 0
	for seed := int64(0); cases < 110; seed++ {
		if seed > 2000 {
			t.Fatalf("exhausted seeds with only %d cases", cases)
		}
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 3+rng.Intn(6), 3, 4, 0.3)
		if in.MaxW() > W || in.MaxH() > H {
			continue
		}
		cases++

		staged, err := MinTime(in, W, H, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ups []AnytimeUpdate
		any, err := MinTime(in, W, H, Options{
			Anytime:       true,
			AnnealSeed:    seed + 1,
			OnImprovement: func(u AnytimeUpdate) { ups = append(ups, u) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if staged.Decision != Feasible || any.Decision != Feasible {
			t.Fatalf("seed %d: staged=%v anytime=%v, want both feasible", seed, staged.Decision, any.Decision)
		}
		if any.Value != staged.Value {
			t.Fatalf("seed %d: anytime optimum %d ≠ staged optimum %d", seed, any.Value, staged.Value)
		}
		if any.Gap != 0 || any.BestBound != any.Value {
			t.Fatalf("seed %d: completed anytime run has gap %v bound %d", seed, any.Gap, any.BestBound)
		}
		c := model.Container{W: W, H: H, T: any.Value}
		order, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		if err := any.Placement.Verify(in, c, order); err != nil {
			t.Fatalf("seed %d: anytime witness invalid: %v", seed, err)
		}
		checkAnytimeUpdates(t, in.Name, ups, true)
	}
}

// TestAnytimeMatchesStagedPaper runs the same differential gate on the
// paper instances the test tier can afford (DE at two chips, the HLS
// biquad filters).
func TestAnytimeMatchesStagedPaper(t *testing.T) {
	cases := []struct {
		in   *model.Instance
		W, H int
	}{
		{bench.DE(), 17, 17},
		{bench.DE(), 33, 16},
		{bench.Biquad(2), 32, 32},
		{bench.Biquad(3), 17, 17},
	}
	for _, tc := range cases {
		staged, err := MinTime(tc.in, tc.W, tc.H, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ups []AnytimeUpdate
		any, err := MinTime(tc.in, tc.W, tc.H, Options{
			Anytime:       true,
			OnImprovement: func(u AnytimeUpdate) { ups = append(ups, u) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if any.Decision != staged.Decision || any.Value != staged.Value {
			t.Fatalf("%s %dx%d: anytime (%v, %d) ≠ staged (%v, %d)",
				tc.in.Name, tc.W, tc.H, any.Decision, any.Value, staged.Decision, staged.Value)
		}
		order, err := tc.in.Order()
		if err != nil {
			t.Fatal(err)
		}
		c := model.Container{W: tc.W, H: tc.H, T: any.Value}
		if err := any.Placement.Verify(tc.in, c, order); err != nil {
			t.Fatalf("%s: anytime witness invalid: %v", tc.in.Name, err)
		}
		checkAnytimeUpdates(t, tc.in.Name, ups, true)
	}
}

// TestAnytimeDeterministicPerSeed: two anytime runs with the same
// AnnealSeed must stream identical update sequences and return the
// same witness.
func TestAnytimeDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := bench.Random(rng, 9, 3, 4, 0.3)
	run := func() (*OptResult, []AnytimeUpdate) {
		var ups []AnytimeUpdate
		r, err := MinTime(in, 6, 6, Options{
			Anytime:       true,
			AnnealSeed:    99,
			OnImprovement: func(u AnytimeUpdate) { ups = append(ups, u) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return r, ups
	}
	r1, u1 := run()
	r2, u2 := run()
	if r1.Value != r2.Value || len(u1) != len(u2) {
		t.Fatalf("same seed diverged: values %d/%d, updates %d/%d", r1.Value, r2.Value, len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i].Best != u2[i].Best || u1[i].LowerBound != u2[i].LowerBound || u1[i].Source != u2[i].Source {
			t.Fatalf("update %d diverged: %+v vs %+v", i, u1[i], u2[i])
		}
	}
	for v := 0; v < in.N(); v++ {
		if r1.Placement.X[v] != r2.Placement.X[v] || r1.Placement.Y[v] != r2.Placement.Y[v] || r1.Placement.S[v] != r2.Placement.S[v] {
			t.Fatalf("same seed gave different witnesses at task %d", v)
		}
	}
}

// TestAnytimePartialCarriesGap: a deadline that expires mid-refinement
// must still return the best-known witness with a coherent
// (BestBound, Gap) pair rather than nothing.
func TestAnytimePartialCarriesGap(t *testing.T) {
	// A deliberately hard random instance keeps the exact refinement
	// busy long enough for a microscopic deadline to hit.
	rng := rand.New(rand.NewSource(4))
	in := bench.Random(rng, 16, 4, 6, 0.35)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	var ups []AnytimeUpdate
	res, _ := MinTimeCtx(ctx, in, 8, 8, Options{
		Anytime:       true,
		OnImprovement: func(u AnytimeUpdate) { ups = append(ups, u) },
	})
	if res == nil {
		t.Fatal("partial anytime run returned nil result")
	}
	if res.Decision == Unknown {
		if res.Placement == nil || res.Value <= 0 {
			t.Fatalf("partial result carries no witness: %+v", res)
		}
		if res.BestBound < res.LowerBound {
			t.Fatalf("refined bound %d below stage-1 bound %d", res.BestBound, res.LowerBound)
		}
		if res.Gap <= 0 || res.Gap > 1 {
			t.Fatalf("partial gap = %v, want in (0, 1]", res.Gap)
		}
		if len(ups) > 0 && ups[len(ups)-1].Final {
			t.Fatal("partial run emitted a Final update")
		}
	} else if res.Gap != 0 || res.BestBound != res.Value {
		// The machine outran the deadline — the completed result must
		// still be coherent.
		t.Fatalf("completed run has gap %v bound %d value %d", res.Gap, res.BestBound, res.Value)
	}
	checkAnytimeUpdates(t, in.Name, ups, res.Decision == Feasible)
}

// TestAnytimeExactPathUntouched: with Anytime off, the new fields stay
// coherent and the sequential answer is byte-stable — the bit-identical
// exact-path contract (BENCH_core's node-count gate is the stronger
// version of this check).
func TestAnytimeExactPathUntouched(t *testing.T) {
	de := bench.DE()
	r1, err := MinTime(de, 17, 17, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MinTime(de, 17, 17, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value || r1.Stats.Nodes != r2.Stats.Nodes || r1.Probes != r2.Probes {
		t.Fatalf("sequential exact path not reproducible: (%d,%d,%d) vs (%d,%d,%d)",
			r1.Value, r1.Stats.Nodes, r1.Probes, r2.Value, r2.Stats.Nodes, r2.Probes)
	}
	if r1.Gap != 0 || r1.BestBound != r1.Value {
		t.Fatalf("completed staged run: gap %v bound %d value %d", r1.Gap, r1.BestBound, r1.Value)
	}
}
