package solver

import (
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/heur"
)

// TestHeuristicGap evaluates stage 2 of the framework: how close the
// greedy list-scheduling placer comes to the exact optimum on random
// instances. The heuristic must never beat the proven optimum (that
// would be a soundness bug on one of the two sides), and its mean gap
// is reported for EXPERIMENTS.md.
func TestHeuristicGap(t *testing.T) {
	opt := Options{TimeLimit: 30 * time.Second}
	W, H := 4, 4
	cases, optimal := 0, 0
	var ratioSum float64
	worst := 1.0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 3+rng.Intn(4), 3, 3, 0.3)
		if in.MaxW() > W || in.MaxH() > H {
			continue
		}
		order, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		_, heurT, ok := heur.MinMakespan(in, W, H, order)
		if !ok {
			t.Fatalf("seed %d: heuristic failed", seed)
		}
		exact, err := MinTime(in, W, H, opt)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Decision != Feasible {
			t.Fatalf("seed %d: exact solver undecided", seed)
		}
		if heurT < exact.Value {
			t.Fatalf("seed %d: heuristic makespan %d beats the proven optimum %d",
				seed, heurT, exact.Value)
		}
		cases++
		if heurT == exact.Value {
			optimal++
		}
		ratio := float64(heurT) / float64(exact.Value)
		ratioSum += ratio
		if ratio > worst {
			worst = ratio
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases evaluated", cases)
	}
	t.Logf("heuristic gap over %d random instances: optimal in %d (%.0f%%), mean ratio %.3f, worst %.2f",
		cases, optimal, 100*float64(optimal)/float64(cases), ratioSum/float64(cases), worst)
	// The greedy placer should be optimal on a healthy majority of easy
	// random instances; a collapse below 60% signals a regression.
	if float64(optimal)/float64(cases) < 0.6 {
		t.Errorf("heuristic optimality rate dropped to %d/%d", optimal, cases)
	}
}
