package solver

import (
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// TestMinTimeHeuristicMemoOnDE is the regression test for the sweep
// incumbent bugfix: a MinTime run on the DE instance must compute the
// greedy minimum-makespan placement exactly once per chip footprint
// and serve every later probe's stage 2 from the memo. The historical
// pipeline restarted stage 2 on every probe, so computes grew with the
// probe count.
func TestMinTimeHeuristicMemoOnDE(t *testing.T) {
	de := bench.DE()
	reg := obs.NewRegistry()
	r, err := MinTime(de, 33, 16, Options{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	computes := reg.Counter(obs.MetricStrategyHeurComputes).Value()
	hits := reg.Counter(obs.MetricStrategyHeurHits).Value()
	if computes != 1 {
		t.Errorf("heuristic computed %d times on one 33x16 footprint, want 1", computes)
	}
	if hits < 1 {
		t.Errorf("heuristic memo hits = %d, want ≥ 1 (every probe shares the sweep's stage-2 run)", hits)
	}
	// Total stage-2 invocations = computes: strictly fewer than the
	// 1 + probes the historical per-probe pipeline performed.
	if legacy := int64(1 + r.Probes); computes >= legacy {
		t.Errorf("stage-2 invocations %d not reduced versus legacy %d", computes, legacy)
	}
	t.Logf("DE 33x16: probes=%d heur computes=%d hits=%d", r.Probes, computes, hits)
}

// TestParetoHeuristicMemoAcrossSteps checks cross-step incumbent
// reuse: the Pareto walk's BMP ascents probe the same square chips at
// successive time budgets, so the per-footprint memo must be shared
// across the whole run, not rebuilt per step.
func TestParetoHeuristicMemoAcrossSteps(t *testing.T) {
	// Five independent 2×2 unit-duration blocks: the minimal square
	// side decreases slowly in T (6, 4, 4, 3, 2, …), so successive BMP
	// ascents re-probe chips the previous step already visited.
	in := &model.Instance{
		Name: "pareto-memo",
		Tasks: []model.Task{
			{W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1},
			{W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1},
		},
	}
	reg := obs.NewRegistry()
	r, err := ParetoFront(in, Options{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("empty frontier")
	}
	computes := reg.Counter(obs.MetricStrategyHeurComputes).Value()
	hits := reg.Counter(obs.MetricStrategyHeurHits).Value()
	// Distinct square footprints probed across the whole walk are few;
	// every repeat visit (same h at a later T) must come from the memo.
	if hits < 1 {
		t.Errorf("pareto walk recorded %d memo hits, want ≥ 1 (computes=%d)", hits, computes)
	}
	t.Logf("pareto: probes=%d computes=%d hits=%d", r.Probes, computes, hits)
}
