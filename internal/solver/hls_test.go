package solver

import (
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// TestHLSWorkloads pins the exact optima of the scalable HLS workload
// families on several chip sizes. MinTime certifies optimality on every
// run (it refutes T−1 exactly), so these are regression anchors for the
// beyond-the-paper experiments in EXPERIMENTS.md.
func TestHLSWorkloads(t *testing.T) {
	opt := Options{TimeLimit: 120 * time.Second}
	cases := []struct {
		in    *model.Instance
		w, h  int
		wantT int
	}{
		{bench.FIR(8), 16, 16, 19}, // multipliers fully serialized
		{bench.FIR(8), 17, 17, 19}, // the spare row does not help FIR
		{bench.FIR(8), 32, 32, 7},  // 4 multipliers in parallel
		{bench.FIR(16), 48, 48, 8}, // 9 multipliers in parallel
		{bench.Biquad(2), 32, 32, 14},
		{bench.Biquad(3), 17, 17, 31},
		{bench.Biquad(3), 32, 32, 20},
		{bench.FFT(4), 32, 32, 6},
		{bench.FFT(8), 32, 32, 9}, // critical-path-limited even at 32×32
	}
	for _, tc := range cases {
		r, err := MinTime(tc.in, tc.w, tc.h, opt)
		if err != nil {
			t.Fatalf("%s on %dx%d: %v", tc.in.Name, tc.w, tc.h, err)
		}
		if r.Decision != Feasible || r.Value != tc.wantT {
			t.Errorf("%s on %dx%d: T=%d (%v), want %d",
				tc.in.Name, tc.w, tc.h, r.Value, r.Decision, tc.wantT)
		}
	}
}

// TestHLSReconfigOverhead folds a per-task reconfiguration constant into
// the durations (the paper's Section 2.1 model) and checks the optimum
// moves consistently: with one extra cycle per module, the serialized
// FIR-8 multipliers cost 8 extra cycles plus the lengthened tree.
func TestHLSReconfigOverhead(t *testing.T) {
	fir := bench.FIR(8)
	loaded, err := fir.WithUniformReconfigOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{TimeLimit: 120 * time.Second}
	base, err := MinTime(fir, 16, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	with, err := MinTime(loaded, 16, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Decision != Feasible || with.Decision != Feasible {
		t.Fatal("undecided")
	}
	if with.Value <= base.Value {
		t.Fatalf("overhead did not increase the optimum: %d vs %d", with.Value, base.Value)
	}
	// On a 16×16 chip everything serializes against the multipliers:
	// 8 muls × 3 cycles = 24, plus the (now 2-cycle) adder chain of the
	// tree tail… the exact value is pinned to guard against regressions.
	if with.Value != 30 {
		t.Fatalf("FIR-8 with overhead 1 on 16x16: T=%d, want 30", with.Value)
	}
}
