package solver

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/model"
)

// MinArea is an extension of the paper's BMP: instead of restricting the
// chip to a square, it finds a rectangular chip W×H of minimal area
// (ties broken towards the squarer shape) on which the instance
// completes within T cycles. The paper's MinA&FindS is the special case
// W = H.
//
// Algorithm: sweep the width from the widest module upwards; for each
// width, the minimal feasible height is monotone, so a binary search
// with a known-feasible upper bound applies. Widths whose best possible
// area (width × largest module height) cannot beat the incumbent are
// pruned, and the sweep stops when width × maxH alone exceeds the best
// area found.
func MinArea(in *model.Instance, T int, opt Options) (*OptRectResult, error) {
	return MinAreaCtx(context.Background(), in, T, opt)
}

// MinAreaCtx is MinArea under a context. The width sweep prunes on the
// incumbent area, so it stays sequential; cancellation aborts the
// current probe on the engine's node cadence and returns the partial
// result together with ctx.Err().
func MinAreaCtx(ctx context.Context, in *model.Instance, T int, opt Options) (*OptRectResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &OptRectResult{}
	if order.CriticalPath() > T {
		res.Decision = Infeasible
		res.Elapsed = time.Since(start)
		return res, nil
	}

	minW, minH := in.MaxW(), in.MaxH()
	// A generous width cap: at that width every pair can sit side by
	// side, so H = maxH works whenever the schedule alone is feasible.
	maxW := 0
	for _, t := range in.Tasks {
		maxW += t.W
	}
	volume := in.Volume()

	feasibleAt := func(w, h int) (Decision, *model.Placement, error) {
		r, err := solveOPP(ctx, in, model.Container{W: w, H: h, T: T}, order, opt)
		if err != nil {
			return Unknown, nil, err
		}
		res.Probes++
		res.Stats.Add(r.Stats)
		res.Stages.Add(r.Stages)
		opt.probe("minarea", map[string]any{"W": w, "H": h, "outcome": probeOutcomeLabel(r)})
		return r.Decision, r.Placement, nil
	}

	bestArea := -1
	for w := minW; w <= maxW; w++ {
		if bestArea >= 0 && w*minH >= bestArea {
			break // no width this large can improve the area
		}
		// Height lower bound for this width from volume and geometry.
		hLo := minH
		for w*hLo*T < volume {
			hLo++
		}
		// Find a feasible height by doubling, bounded by ΣH.
		hHi := hLo
		sumH := 0
		for _, t := range in.Tasks {
			sumH += t.H
		}
		var hiPlace *model.Placement
		for {
			if bestArea >= 0 && w*hHi >= bestArea {
				hiPlace = nil
				break
			}
			d, p, err := feasibleAt(w, hHi)
			if err != nil {
				return nil, err
			}
			if d == Unknown {
				res.Decision = Unknown
				res.Elapsed = time.Since(start)
				return res, ctx.Err()
			}
			if d == Feasible {
				hiPlace = p
				break
			}
			if hHi >= sumH {
				hiPlace = nil
				break
			}
			hHi *= 2
			if hHi > sumH {
				hHi = sumH
			}
		}
		if hiPlace == nil {
			continue // this width cannot beat the incumbent
		}
		// Binary search the minimal feasible height in [hLo, hHi].
		lo, hi := hLo, hHi
		bestH, bestP := hHi, hiPlace
		for lo < hi {
			mid := (lo + hi) / 2
			d, p, err := feasibleAt(w, mid)
			if err != nil {
				return nil, err
			}
			if d == Unknown {
				res.Decision = Unknown
				res.Elapsed = time.Since(start)
				return res, ctx.Err()
			}
			if d == Feasible {
				hi, bestH, bestP = mid, mid, p
			} else {
				lo = mid + 1
			}
		}
		area := w * bestH
		better := bestArea < 0 || area < bestArea
		if !better && area == bestArea {
			// Prefer the squarer chip on equal area.
			if diff(w, bestH) < diff(res.W, res.H) {
				better = true
			}
		}
		if better {
			bestArea = area
			res.W, res.H = w, bestH
			res.Placement = bestP
		}
	}
	if bestArea < 0 {
		return nil, fmt.Errorf("solver: no feasible rectangle found for %q (internal bound error)", in.Name)
	}
	res.Decision = Feasible
	res.Area = bestArea
	res.Elapsed = time.Since(start)
	return res, nil
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// OptRectResult is the outcome of a rectangular chip minimization.
type OptRectResult struct {
	Decision  Decision
	W, H      int
	Area      int
	Placement *model.Placement
	Probes    int
	Stats     core.Stats
	Stages    StageTimings
	Elapsed   time.Duration
}
