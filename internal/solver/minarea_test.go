package solver

import (
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func TestMinAreaSimple(t *testing.T) {
	// Two concurrent 2×2×2 blocks at T=2: minimal rectangle is 4×2 or
	// 2×4 (area 8); a square would need 4×4 = 16.
	in := &model.Instance{
		Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}},
	}
	r, err := MinArea(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Area != 8 {
		t.Fatalf("area = %d (%v), want 8", r.Area, r.Decision)
	}
	if err := r.Placement.Verify(in, model.Container{W: r.W, H: r.H, T: 2}, nil); err != nil {
		t.Fatal(err)
	}
	sq, err := MinBase(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sq.Value != 4 {
		t.Fatalf("square side = %d, want 4", sq.Value)
	}
}

func TestMinAreaBelowCriticalPath(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 2}, {W: 1, H: 1, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	r, err := MinArea(in, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("decision %v", r.Decision)
	}
}

func TestMinAreaDE(t *testing.T) {
	de := bench.DE()
	opt := Options{TimeLimit: 120 * time.Second}
	r, err := MinArea(de, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	t.Logf("DE T=6 minimal rectangle: %dx%d area=%d probes=%d elapsed=%v", r.W, r.H, r.Area, r.Probes, r.Elapsed)
	// The rectangle beats the square optimum 32×32 = 1024: three
	// multipliers stack in a 16-wide column, so 16×48 = 768 suffices.
	if r.Area != 768 {
		t.Fatalf("area = %d, want 768", r.Area)
	}
	order, _ := de.Order()
	if err := r.Placement.Verify(de, model.Container{W: r.W, H: r.H, T: 6}, order); err != nil {
		t.Fatal(err)
	}
	// T=13: square optimum 17×17=289; a 16-wide rectangle should do
	// better (the multipliers serialize, the ALUs share rows).
	r13, err := MinArea(de, 13, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DE T=13 minimal rectangle: %dx%d area=%d probes=%d elapsed=%v", r13.W, r13.H, r13.Area, r13.Probes, r13.Elapsed)
	// 16×17 = 272 beats the square optimum 17×17 = 289.
	if r13.Area != 272 {
		t.Fatalf("area = %d, want 272", r13.Area)
	}
}
