package solver

import (
	"context"
	"time"

	"fpga3d/internal/model"
)

// MinTimeWithRotation computes the smallest execution time on a W×H
// chip when modules may rotate by 90°. Feasibility is monotone in T
// for any fixed orientation assignment, hence also for the best one, so
// binary search applies.
func MinTimeWithRotation(in *model.Instance, W, H int, opt Options) (*OptResult, []bool, error) {
	return MinTimeWithRotationCtx(context.Background(), in, W, H, opt)
}

// MinTimeWithRotationCtx is MinTimeWithRotation under a context;
// cancellation aborts the binary search promptly and returns the
// partial result together with ctx.Err().
func MinTimeWithRotationCtx(ctx context.Context, in *model.Instance, W, H int, opt Options) (*OptResult, []bool, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, nil, err
	}
	if err := opt.validateStrategy(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	res := &OptResult{}
	// A module fits (in some orientation) iff its smaller side fits the
	// smaller chip side and its larger side the larger one.
	for _, t := range in.Tasks {
		lo, hi := t.W, t.H
		if lo > hi {
			lo, hi = hi, lo
		}
		cLo, cHi := W, H
		if cLo > cHi {
			cLo, cHi = cHi, cLo
		}
		if lo > cLo || hi > cHi {
			res.Decision = Infeasible
			res.Elapsed = time.Since(start)
			return res, nil, nil
		}
	}
	lb := order.CriticalPath()
	res.LowerBound = lb
	ub := in.TotalDuration() // serialization always fits once each task does

	lo, hi := lb, ub
	probe := func(T int) (Decision, *model.Placement, []bool, error) {
		r, err := SolveOPPWithRotationCtx(ctx, in, model.Container{W: W, H: H, T: T}, opt)
		if err != nil {
			return Unknown, nil, nil, err
		}
		res.Probes++
		res.Stats.Add(r.Stats)
		res.Stages.Add(r.Stages)
		opt.probe("spp_rotate", map[string]any{"T": T, "outcome": probeOutcomeLabel(&r.OPPResult)})
		return r.Decision, r.Placement, r.Rotations, nil
	}
	// Establish the upper end.
	d, p, rots, err := probe(ub)
	if err != nil {
		return nil, nil, err
	}
	if d != Feasible {
		res.Decision = Unknown
		res.Elapsed = time.Since(start)
		return res, nil, ctx.Err()
	}
	best, bestPlace, bestRot := ub, p, rots
	for lo < hi {
		mid := (lo + hi) / 2
		d, p, rots, err := probe(mid)
		if err != nil {
			return nil, nil, err
		}
		switch d {
		case Feasible:
			hi, best, bestPlace, bestRot = mid, mid, p, rots
		case Infeasible:
			lo = mid + 1
		default:
			res.Decision = Unknown
			res.Elapsed = time.Since(start)
			return res, nil, ctx.Err()
		}
	}
	res.Decision = Feasible
	res.Value = best
	res.Placement = bestPlace
	res.Elapsed = time.Since(start)
	return res, bestRot, nil
}

// MinTimeMultiChip computes the smallest execution time on k identical
// W×H chips.
func MinTimeMultiChip(in *model.Instance, chipW, chipH, k int, opt Options) (*MultiChipResult, error) {
	return MinTimeMultiChipCtx(context.Background(), in, chipW, chipH, k, opt)
}

// MinTimeMultiChipCtx is MinTimeMultiChip under a context; cancellation
// aborts the binary search promptly and returns the partial result
// together with ctx.Err().
func MinTimeMultiChipCtx(ctx context.Context, in *model.Instance, chipW, chipH, k int, opt Options) (*MultiChipResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	if err := opt.validateStrategy(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &MultiChipResult{Chips: k}
	if in.MaxW() > chipW || in.MaxH() > chipH || k < 1 {
		res.Decision = Infeasible
		res.Elapsed = time.Since(start)
		return res, nil
	}
	lo, hi := order.CriticalPath(), in.TotalDuration()
	// The serialized horizon is feasible on a single chip, a fortiori
	// on k.
	var best *MultiChipResult
	r, err := solveMultiChip(ctx, in, chipW, chipH, hi, k, order, opt)
	if err != nil {
		return nil, err
	}
	res.Probes++
	res.Stats.Add(r.Stats)
	res.Stages.Add(r.Stages)
	if r.Decision != Feasible {
		res.Decision = Unknown
		res.Elapsed = time.Since(start)
		return res, ctx.Err()
	}
	best = r
	bestT := hi
	// Multi-chip probes have no bounds or heuristic stage: every probe is
	// pure exact search, so the sweep-level incumbent mechanisms carry the
	// whole pruning burden. Under the portfolio strategy a feasible
	// witness tightens the upper end to its own makespan — the engine's
	// first solution within a budget of T cycles typically finishes well
	// before T, so each feasible probe skips the budgets in between.
	if opt.portfolio() {
		if mk := r.Placement.Makespan(in); mk < hi {
			hi, bestT = mk, mk
			opt.incumbent("spp_multichip", mk, "witness")
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		r, err := solveMultiChip(ctx, in, chipW, chipH, mid, k, order, opt)
		if err != nil {
			return nil, err
		}
		res.Probes++
		res.Stats.Add(r.Stats)
		res.Stages.Add(r.Stages)
		opt.probe("spp_multichip", map[string]any{"T": mid, "outcome": r.Decision.String()})
		switch r.Decision {
		case Feasible:
			hi, best, bestT = mid, r, mid
			if opt.portfolio() {
				if mk := r.Placement.Makespan(in); mk < hi {
					hi, bestT = mk, mk
					opt.incumbent("spp_multichip", mk, "witness")
				}
			}
		case Infeasible:
			lo = mid + 1
		default:
			res.Decision = Unknown
			res.Elapsed = time.Since(start)
			return res, ctx.Err()
		}
	}
	best.Probes = res.Probes
	best.Stats = res.Stats
	best.Stages = res.Stages
	best.Elapsed = time.Since(start)
	best.MinTime = bestT
	return best, nil
}
