package solver

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// Multi-FPGA partitioning is an extension built on the engine's
// dimension-genericity: a system of k identical W×H chips is modeled as
// a fourth packing dimension of capacity k in which every task has
// extent 1 — two tasks overlap in the chip dimension iff they are
// assigned to the same chip, and only then must they separate in space
// or time. Precedence constraints stay on the time axis and hold across
// chips (the task model's memory-based communication needs no
// modification: results travel via the external memory interface).

// MultiChipResult reports a multi-chip feasibility or minimization
// outcome.
type MultiChipResult struct {
	Decision Decision
	// Chips is the number of chips used (the minimized value for
	// MinChips, the given k for SolveMultiChip).
	Chips int
	// Chip[i] is the chip index assigned to task i; Placement holds the
	// per-chip spatial coordinates and start times.
	Chip      []int
	Placement *model.Placement
	// MinTime is the minimized makespan (set by MinTimeMultiChip only).
	MinTime int
	Probes  int
	Stats   core.Stats
	Stages  StageTimings
	Elapsed time.Duration
}

// SolveMultiChip decides whether the instance fits k identical W×H
// chips within T cycles under its precedence constraints.
func SolveMultiChip(in *model.Instance, chipW, chipH, T, k int, opt Options) (*MultiChipResult, error) {
	return SolveMultiChipCtx(context.Background(), in, chipW, chipH, T, k, opt)
}

// SolveMultiChipCtx is SolveMultiChip under a context; cancellation
// semantics match SolveOPPCtx (Decision Unknown, partial statistics,
// nil error).
func SolveMultiChipCtx(ctx context.Context, in *model.Instance, chipW, chipH, T, k int, opt Options) (*MultiChipResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("solver: %d chips", k)
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	if err := opt.validateStrategy(); err != nil {
		return nil, err
	}
	return solveMultiChip(ctx, in, chipW, chipH, T, k, order, opt)
}

func solveMultiChip(ctx context.Context, in *model.Instance, chipW, chipH, T, k int, order *model.Order, opt Options) (*MultiChipResult, error) {
	start := time.Now()
	res := &MultiChipResult{Chips: k}
	n := in.N()
	if in.MaxW() > chipW || in.MaxH() > chipH {
		res.Decision = Infeasible
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if order.CriticalPath() > T {
		res.Decision = Infeasible
		res.Elapsed = time.Since(start)
		return res, nil
	}

	ws := make([]int, n)
	hs := make([]int, n)
	ds := make([]int, n)
	ones := make([]int, n)
	for i, t := range in.Tasks {
		ws[i], hs[i], ds[i] = t.W, t.H, t.Dur
		ones[i] = 1
	}
	prob := &core.Problem{
		N: n,
		Dims: []core.Dim{
			{Cap: chipW, Sizes: ws},
			{Cap: chipH, Sizes: hs},
			{Cap: T, Sizes: ds, Ordered: true},
			{Cap: k, Sizes: ones},
		},
	}
	const timeDim = 2
	cl := order.Closure()
	for u := 0; u < n; u++ {
		uu := u
		cl.Out(uu).ForEach(func(v int) {
			prob.Seeds = append(prob.Seeds, core.SeedArc{Dim: timeDim, From: uu, To: v})
		})
	}
	opt.Metrics.Counter("opp.calls").Inc()
	opt.Trace.Emit("opp_start", map[string]any{
		"instance": in.Name, "n": n, "W": chipW, "H": chipH, "T": T, "chips": k,
	})
	opt.notifyPhase(obs.PhaseSearch)
	r := core.Solve(prob, opt.searchOptions(ctx))
	res.Stats = r.Stats
	res.Elapsed = time.Since(start)
	res.Stages.Search = res.Elapsed
	opt.Metrics.Counter(obs.MetricSearchNodes).Add(r.Stats.Nodes)
	opt.Metrics.Counter(obs.MetricSearchPropagations).Add(r.Stats.Propagations)
	decidedBy := "search"
	switch r.Status {
	case core.StatusFeasible:
		res.Decision = Feasible
		res.Placement = &model.Placement{
			X: append([]int(nil), r.Solution.Coords[0]...),
			Y: append([]int(nil), r.Solution.Coords[1]...),
			S: append([]int(nil), r.Solution.Coords[2]...),
		}
		res.Chip = append([]int(nil), r.Solution.Coords[3]...)
		if err := verifyMultiChip(in, chipW, chipH, T, k, res, order); err != nil {
			return nil, fmt.Errorf("solver: multi-chip placement invalid: %w", err)
		}
	case core.StatusInfeasible:
		res.Decision = Infeasible
	case core.StatusCanceled:
		res.Decision = Unknown
		decidedBy = "canceled"
	default:
		res.Decision = Unknown
		decidedBy = "limit"
	}
	opt.Metrics.Counter("opp." + res.Decision.String()).Inc()
	if opt.Trace != nil {
		opt.Trace.Emit("opp_end", map[string]any{
			"decision":   res.Decision.String(),
			"decided_by": decidedBy,
			"chips":      k,
			"nodes":      res.Stats.Nodes,
			"elapsed_ms": ms(res.Elapsed),
			"stages_ms":  stagesMS(res.Stages),
			"stats":      res.Stats,
		})
	}
	return res, nil
}

// MinChips finds the minimal number of identical W×H chips on which the
// instance completes within T cycles. Feasibility is monotone in k, so
// a linear ascent from the volume bound is exact.
func MinChips(in *model.Instance, chipW, chipH, T int, opt Options) (*MultiChipResult, error) {
	return MinChipsCtx(context.Background(), in, chipW, chipH, T, opt)
}

// MinChipsCtx is MinChips under a context: cancellation aborts the
// k-ascent promptly and returns the partial aggregate together with
// ctx.Err().
func MinChipsCtx(ctx context.Context, in *model.Instance, chipW, chipH, T int, opt Options) (*MultiChipResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	if err := opt.validateStrategy(); err != nil {
		return nil, err
	}
	start := time.Now()
	if in.MaxW() > chipW || in.MaxH() > chipH || order.CriticalPath() > T {
		return &MultiChipResult{Decision: Infeasible, Elapsed: time.Since(start)}, nil
	}
	// Lower bound: total volume over one chip's space-time volume.
	kLo := (in.Volume() + chipW*chipH*T - 1) / (chipW * chipH * T)
	if kLo < 1 {
		kLo = 1
	}
	// Upper bound: one chip per task always works (critical path fits).
	probes := 0
	var agg core.Stats
	var aggStages StageTimings
	for k := kLo; k <= in.N(); k++ {
		r, err := solveMultiChip(ctx, in, chipW, chipH, T, k, order, opt)
		if err != nil {
			return nil, err
		}
		probes++
		agg.Add(r.Stats)
		aggStages.Add(r.Stages)
		opt.probe("multichip", map[string]any{"chips": k, "outcome": r.Decision.String()})
		switch r.Decision {
		case Feasible:
			r.Probes = probes
			r.Stats = agg
			r.Stages = aggStages
			r.Elapsed = time.Since(start)
			opt.incumbent("multichip", k, "search")
			return r, nil
		case Unknown:
			return &MultiChipResult{Decision: Unknown, Probes: probes, Stats: agg,
				Stages: aggStages, Elapsed: time.Since(start)}, ctx.Err()
		}
	}
	return nil, fmt.Errorf("solver: %q infeasible even with one chip per task (internal error)", in.Name)
}

// verifyMultiChip checks bounds, same-chip non-overlap and precedence.
func verifyMultiChip(in *model.Instance, chipW, chipH, T, k int, r *MultiChipResult, order *model.Order) error {
	n := in.N()
	p := r.Placement
	for i, t := range in.Tasks {
		if r.Chip[i] < 0 || r.Chip[i] >= k {
			return fmt.Errorf("task %d on chip %d of %d", i, r.Chip[i], k)
		}
		if p.X[i] < 0 || p.Y[i] < 0 || p.S[i] < 0 ||
			p.X[i]+t.W > chipW || p.Y[i]+t.H > chipH || p.S[i]+t.Dur > T {
			return fmt.Errorf("task %d out of bounds", i)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Chip[u] != r.Chip[v] {
				continue
			}
			tu, tv := in.Tasks[u], in.Tasks[v]
			if p.X[u] < p.X[v]+tv.W && p.X[v] < p.X[u]+tu.W &&
				p.Y[u] < p.Y[v]+tv.H && p.Y[v] < p.Y[u]+tu.H &&
				p.S[u] < p.S[v]+tv.Dur && p.S[v] < p.S[u]+tu.Dur {
				return fmt.Errorf("tasks %d and %d collide on chip %d", u, v, r.Chip[u])
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && order.Precedes(u, v) && p.S[u]+in.Tasks[u].Dur > p.S[v] {
				return fmt.Errorf("precedence %d≺%d violated", u, v)
			}
		}
	}
	return nil
}
