package solver

import (
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func TestMultiChipSimple(t *testing.T) {
	// Two concurrent full-chip modules need two chips.
	in := &model.Instance{
		Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}},
	}
	opt := Options{TimeLimit: 30 * time.Second}
	r, err := SolveMultiChip(in, 2, 2, 2, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("one chip: %v, want infeasible", r.Decision)
	}
	r, err = SolveMultiChip(in, 2, 2, 2, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("two chips: %v", r.Decision)
	}
	if r.Chip[0] == r.Chip[1] {
		t.Fatalf("both tasks on chip %d", r.Chip[0])
	}
}

func TestMinChipsDE(t *testing.T) {
	// The DE benchmark at the critical-path latency on 16×16 chips:
	// a multiplier fills a whole chip, six of them must finish within 6
	// cycles (2 cycles each, chains of two), and the ALUs interleave —
	// three chips are necessary and sufficient.
	de := bench.DE()
	opt := Options{TimeLimit: 120 * time.Second}
	r, err := MinChips(de, 16, 16, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Chips != 3 {
		t.Fatalf("MinChips = %d (%v), want 3", r.Chips, r.Decision)
	}
	// With a relaxed horizon of 14 cycles, one chip suffices (Table 1).
	r14, err := MinChips(de, 16, 16, 14, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r14.Decision != Feasible || r14.Chips != 1 {
		t.Fatalf("MinChips(T=14) = %d (%v), want 1", r14.Chips, r14.Decision)
	}
}

func TestMinChipsMonotoneInT(t *testing.T) {
	de := bench.DE()
	opt := Options{TimeLimit: 120 * time.Second}
	prev := -1
	for _, T := range []int{6, 8, 10, 14} {
		r, err := MinChips(de, 16, 16, T, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Decision != Feasible {
			t.Fatalf("T=%d undecided", T)
		}
		if prev >= 0 && r.Chips > prev {
			t.Fatalf("more chips needed at a looser horizon: T=%d needs %d > %d", T, r.Chips, prev)
		}
		prev = r.Chips
	}
}

func TestMultiChipInfeasibleCases(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 3, H: 1, Dur: 1}},
	}
	opt := Options{}
	// Module wider than the chip: no k helps.
	r, err := SolveMultiChip(in, 2, 2, 4, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("misfit: %v", r.Decision)
	}
	// Horizon below the critical path: no k helps.
	chain := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 2}, {W: 1, H: 1, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	r, err = SolveMultiChip(chain, 2, 2, 3, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("short horizon: %v", r.Decision)
	}
	if _, err := SolveMultiChip(chain, 2, 2, 4, 0, opt); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestMultiChipPrecedenceAcrossChips: a chain may span chips, but the
// time order must hold globally.
func TestMultiChipPrecedenceAcrossChips(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{
			{W: 2, H: 2, Dur: 2}, // full chip
			{W: 2, H: 2, Dur: 2}, // full chip, depends on task 0
			{W: 2, H: 2, Dur: 2}, // independent, full chip
		},
		Prec: []model.Arc{{From: 0, To: 1}},
	}
	// T=4 on two chips: the chain occupies cycles 0-4 (either chip),
	// task 2 runs anywhere on the other chip.
	r, err := SolveMultiChip(in, 2, 2, 4, 2, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	if r.Placement.S[0]+2 > r.Placement.S[1] {
		t.Fatal("cross-chip precedence violated")
	}
	// On one chip, T=4 cannot host 6 cycles of full-chip work.
	r1, err := SolveMultiChip(in, 2, 2, 4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Decision != Infeasible {
		t.Fatalf("one chip: %v", r1.Decision)
	}
}

// TestMultiChipAgainstSingleChip: with k = 1 the multi-chip solver must
// agree with the plain solver on random instances.
func TestMultiChipAgainstSingleChip(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.3)
		c := model.Container{W: 3, H: 3, T: 4}
		if !c.Fits(in) {
			continue
		}
		plain, err := SolveOPP(in, c, opt)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := SolveMultiChip(in, c.W, c.H, c.T, 1, opt)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Decision != multi.Decision {
			t.Fatalf("seed %d: plain=%v multi(k=1)=%v", seed, plain.Decision, multi.Decision)
		}
	}
}

func TestMinTimeMultiChip(t *testing.T) {
	de := bench.DE()
	opt := Options{TimeLimit: 120 * time.Second}
	// One 16×16 chip: Table 1 says 14 cycles.
	r1, err := MinTimeMultiChip(de, 16, 16, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Decision != Feasible || r1.MinTime != 14 {
		t.Fatalf("k=1: T=%d (%v), want 14", r1.MinTime, r1.Decision)
	}
	// Three chips reach the critical path.
	r3, err := MinTimeMultiChip(de, 16, 16, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Decision != Feasible || r3.MinTime != 6 {
		t.Fatalf("k=3: T=%d (%v), want 6", r3.MinTime, r3.Decision)
	}
	// Two chips land in between and cannot beat the k=3 value.
	r2, err := MinTimeMultiChip(de, 16, 16, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Decision != Feasible || r2.MinTime < r3.MinTime || r2.MinTime > r1.MinTime {
		t.Fatalf("k=2: T=%d (%v), want between %d and %d", r2.MinTime, r2.Decision, r3.MinTime, r1.MinTime)
	}
	t.Logf("DE on 16x16 chips: k=1→T=%d, k=2→T=%d, k=3→T=%d", r1.MinTime, r2.MinTime, r3.MinTime)
}
