package solver

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/core"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
	"fpga3d/internal/strategy"
)

// OptResult is the outcome of an optimization run (MinTime / MinBase).
type OptResult struct {
	Decision  Decision
	Value     int              // the optimal T (MinTime) or h (MinBase)
	Placement *model.Placement // a witness for the optimum
	// LowerBound is the stage-1 bound the search started from.
	LowerBound int
	// BestBound is the best proven lower bound on the objective at
	// exit: the optimum itself once the run completes, the refined
	// bound (≥ LowerBound) on a partial MinTime exit.
	BestBound int
	// Gap is the relative optimality gap at exit (see bounds.Gap):
	// 0 on a completed run, (Value − BestBound)/Value on a partial
	// MinTime result. Meaningful for MinTime; 0 elsewhere.
	Gap float64
	// Probes counts the OPP decision calls made (with Workers > 1 this
	// includes probes that were canceled as redundant mid-flight).
	Probes int
	// Stats accumulates engine statistics over all probes, including
	// the partial effort of canceled ones, so the merged node count
	// equals the sum of the per-probe shards.
	Stats core.Stats
	// Stages accumulates per-stage wall-clock durations over all probes.
	Stages  StageTimings
	Elapsed time.Duration
}

// MinTime solves MinT&FindS (the strip packing problem SPP): the
// smallest execution time T such that the instance fits a W×H chip
// while satisfying its precedence constraints.
func MinTime(in *model.Instance, W, H int, opt Options) (*OptResult, error) {
	return MinTimeCtx(context.Background(), in, W, H, opt)
}

// MinTimeCtx is MinTime under a context: the T-sweep's OPP decisions
// are raced on Options.Workers goroutines, ctx cancellation aborts the
// run promptly (on the engine's node cadence), and on cancellation the
// partial result — merged statistics of every probe — is returned
// together with ctx.Err().
func MinTimeCtx(ctx context.Context, in *model.Instance, W, H int, opt Options) (*OptResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	return minTime(ctx, in, W, H, order, opt)
}

// heurMinMakespan computes the greedy minimum-makespan placement for a
// W×H chip through the run's incumbent store, so every later probe on
// the same chip shares the single stage-2 computation instead of
// redoing it (the returned placement is a private copy).
func (o Options) heurMinMakespan(in *model.Instance, W, H int, order *model.Order) (*model.Placement, int, bool) {
	if o.inc == nil {
		return heur.MinMakespan(in, W, H, order)
	}
	p, mk, ok, hit := o.inc.MinMakespan(in, W, H, order)
	if hit {
		o.Metrics.Counter(obs.MetricStrategyHeurHits).Inc()
	} else {
		o.Metrics.Counter(obs.MetricStrategyHeurComputes).Inc()
	}
	if p != nil {
		p = p.Clone()
	}
	return p, mk, ok
}

func minTime(ctx context.Context, in *model.Instance, W, H int, order *model.Order, opt Options) (*OptResult, error) {
	start := time.Now()
	res := &OptResult{}
	ctx, dspan := opt.driverSpan(ctx, "spp", in.Name)
	defer func() { opt.endDriverSpan(dspan, res) }()
	opt.Trace.Emit("solve_start", map[string]any{
		"mode": "spp", "instance": in.Name, "n": in.N(), "W": W, "H": H,
	})
	if in.MaxW() > W || in.MaxH() > H {
		res.Decision = Infeasible
		res.Elapsed = time.Since(start)
		opt.traceSolveEnd("spp", res)
		return res, nil
	}
	// With a tracer attached, compute the full per-bound breakdown (and
	// its per-bound timings) instead of just the maximum.
	opt.notifyPhase(obs.PhaseBounds)
	tBounds := time.Now()
	var lb int
	if opt.Trace != nil {
		rep := bounds.MinTimeReport(in, W, H, order)
		lb = rep.Best
		opt.Trace.Emit("lower_bound", map[string]any{"mode": "spp", "value": rep.Best, "report": rep})
	} else {
		lb = bounds.MinTimeLB(in, W, H, order)
	}
	res.LowerBound = lb
	res.Stages.Bounds += time.Since(tBounds)

	// Upper bound from the greedy placer; a serialized schedule always
	// exists, so this cannot fail given the spatial fit check above.
	opt.notifyPhase(obs.PhaseHeuristic)
	tHeur := time.Now()
	ubPlace, ub, ok := opt.heurMinMakespan(in, W, H, order)
	res.Stages.Heuristic += time.Since(tHeur)
	if !ok {
		return nil, fmt.Errorf("solver: heuristic failed to serialize instance %q", in.Name)
	}
	if err := ubPlace.Verify(in, model.Container{W: W, H: H, T: ub}, order); err != nil {
		return nil, fmt.Errorf("solver: heuristic produced invalid schedule: %w", err)
	}
	best, bestPlace := ub, ubPlace
	opt.incumbent("spp", ub, "heuristic")
	if opt.portfolio() {
		opt.inc.RecordWitness(in, ubPlace, "heuristic")
	}

	// The anytime tier takes over from here: annealing tightens the
	// incumbent, then a sequential exact refinement streams every
	// improvement of the (incumbent, bound) pair until the gap closes.
	if opt.Anytime {
		return minTimeAnytime(ctx, in, W, H, order, opt, res, start, lb, best, bestPlace)
	}

	if workers := opt.effectiveWorkers(); workers > 1 {
		probe := oppProbe(in, order, opt, func(T int) model.Container {
			return model.Container{W: W, H: H, T: T}
		})
		onProbe := func(T int, r *OPPResult) {
			res.mergeProbe(r)
			opt.probe("spp", map[string]any{"T": T, "outcome": probeOutcomeLabel(r)})
		}
		d, value, witness, err := raceBinary(ctx, workers, lb, ub, probe, onProbe)
		if err != nil {
			res.Decision = Unknown
			res.Value = best
			res.Placement = bestPlace
			res.BestBound = lb
			res.Gap = bounds.Gap(best, lb)
			res.Elapsed = time.Since(start)
			opt.traceSolveEnd("spp", res)
			return res, err
		}
		if d == Feasible && witness != nil {
			best, bestPlace = value, witness.Placement
		} else if d == Feasible {
			best = value // == ub; the heuristic witness stands
		}
		res.Decision = d
		res.Value = best
		res.Placement = bestPlace
		res.Elapsed = time.Since(start)
		if d == Feasible {
			res.BestBound = best
			opt.incumbent("spp", best, "search")
		} else {
			res.BestBound = lb
			res.Gap = bounds.Gap(best, lb)
		}
		opt.traceSolveEnd("spp", res)
		return res, nil
	}

	// Binary search on the monotone predicate "fits within T".
	lo, hi := lb, ub // hi is known feasible
	firstProbe := true
	for lo < hi {
		mid := (lo + hi) / 2
		if opt.portfolio() && firstProbe && mid < hi-1 {
			// Incumbent-optimality probe: attack the point directly
			// below the heuristic incumbent first. If it is infeasible,
			// monotonicity of "fits within T" closes the whole interval
			// in one probe; otherwise the witness tightens hi below.
			mid = hi - 1
		}
		firstProbe = false
		r, err := solveOPP(ctx, in, model.Container{W: W, H: H, T: mid}, order, opt)
		if err != nil {
			return nil, err
		}
		res.mergeProbe(r)
		opt.probe("spp", map[string]any{"T": mid, "outcome": probeOutcomeLabel(r)})
		switch r.Decision {
		case Feasible:
			hi = mid
			best, bestPlace = mid, r.Placement
			opt.incumbent("spp", mid, r.DecidedBy)
			if opt.portfolio() {
				// The witness may finish earlier than the probed budget;
				// its makespan is a certified feasible point, so the
				// sweep jumps straight down to it.
				if mk := r.Placement.Makespan(in); mk < hi {
					hi = mk
					best, bestPlace = mk, r.Placement
					opt.incumbent("spp", mk, r.DecidedBy)
				}
			}
		case Infeasible:
			lo = mid + 1
		default:
			res.Decision = Unknown
			res.Value = best
			res.Placement = bestPlace
			res.BestBound = lo
			res.Gap = bounds.Gap(best, lo)
			res.Elapsed = time.Since(start)
			opt.traceSolveEnd("spp", res)
			return res, ctx.Err()
		}
	}
	res.Decision = Feasible
	res.Value = best
	res.Placement = bestPlace
	res.BestBound = best
	res.Elapsed = time.Since(start)
	opt.traceSolveEnd("spp", res)
	return res, nil
}

// driverSpan opens the span of one optimization run (mode "spp",
// "bmp", "bmp_fixed", …) as a child of the span carried by ctx — in
// fpgad, the request span — rooted in the run's tracer otherwise. Nil
// (and free beyond one context lookup) when no tracer is reachable.
func (o Options) driverSpan(ctx context.Context, mode, instance string) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, o.Trace, mode)
	if sp != nil {
		sp.SetAttr("instance", instance)
	}
	return ctx, sp
}

// endDriverSpan finishes an optimization run's span with its outcome.
func (o Options) endDriverSpan(sp *obs.Span, res *OptResult) {
	if sp == nil {
		return
	}
	sp.SetAttr("decision", res.Decision.String())
	sp.SetAttr("value", res.Value)
	sp.SetAttr("probes", res.Probes)
	sp.End()
}

// probe records one optimization-loop probe in the trace.
func (o Options) probe(mode string, fields map[string]any) {
	if o.Trace == nil {
		return
	}
	f := map[string]any{"mode": mode}
	for k, v := range fields {
		f[k] = v
	}
	o.Trace.Emit("probe", f)
	o.Metrics.Counter("probes").Inc()
}

// incumbent records a new best objective value with its source stage.
func (o Options) incumbent(mode string, value int, source string) {
	o.Metrics.Gauge("incumbent." + mode).Set(int64(value))
	o.Trace.Emit("incumbent", map[string]any{"mode": mode, "value": value, "source": source})
}

// traceSolveEnd closes an optimization run in the trace with its
// aggregated effort.
func (o Options) traceSolveEnd(mode string, res *OptResult) {
	if o.Trace == nil {
		return
	}
	o.Trace.Emit("solve_end", map[string]any{
		"mode":        mode,
		"decision":    res.Decision.String(),
		"value":       res.Value,
		"lower_bound": res.LowerBound,
		"best_bound":  res.BestBound,
		"gap":         res.Gap,
		"probes":      res.Probes,
		"nodes":       res.Stats.Nodes,
		"elapsed_ms":  ms(res.Elapsed),
		"stages_ms":   stagesMS(res.Stages),
		"stats":       res.Stats,
	})
}

// MinBase solves MinA&FindS (the base minimization problem BMP): the
// smallest square chip h×h on which the instance completes within time T
// while satisfying its precedence constraints.
func MinBase(in *model.Instance, T int, opt Options) (*OptResult, error) {
	return MinBaseCtx(context.Background(), in, T, opt)
}

// MinBaseCtx is MinBase under a context: the h-sweep's OPP decisions
// are raced on Options.Workers goroutines with first-useful-answer
// pruning — a feasibility proof at h cancels all probes at h' > h, an
// infeasibility proof at h cancels all probes at h' ≤ h — and ctx
// cancellation aborts the run promptly with the partial merged
// statistics and ctx.Err().
func MinBaseCtx(ctx context.Context, in *model.Instance, T int, opt Options) (*OptResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	return minBase(ctx, in, T, order, opt)
}

func minBase(ctx context.Context, in *model.Instance, T int, order *model.Order, opt Options) (*OptResult, error) {
	start := time.Now()
	res := &OptResult{}
	ctx, dspan := opt.driverSpan(ctx, "bmp", in.Name)
	defer func() { opt.endDriverSpan(dspan, res) }()
	opt.Trace.Emit("solve_start", map[string]any{
		"mode": "bmp", "instance": in.Name, "n": in.N(), "T": T,
	})
	if order.CriticalPath() > T {
		// No chip of any size can beat the dependency chains.
		res.Decision = Infeasible
		res.Elapsed = time.Since(start)
		opt.traceSolveEnd("bmp", res)
		return res, nil
	}
	opt.notifyPhase(obs.PhaseBounds)
	tBounds := time.Now()
	lb := bounds.MinBaseLB(in, T, order)
	res.LowerBound = lb
	res.Stages.Bounds += time.Since(tBounds)
	opt.Trace.Emit("lower_bound", map[string]any{"mode": "bmp", "value": lb})

	// With every task spatially disjoint (a huge chip), only the
	// critical path matters, so a finite upper bound always exists.
	hMax := 0
	for _, t := range in.Tasks {
		m := t.W
		if t.H > m {
			m = t.H
		}
		hMax += m
	}

	if workers := opt.effectiveWorkers(); workers > 1 {
		probe := oppProbe(in, order, opt, func(h int) model.Container {
			return model.Container{W: h, H: h, T: T}
		})
		onProbe := func(h int, r *OPPResult) {
			res.mergeProbe(r)
			opt.probe("bmp", map[string]any{"h": h, "outcome": probeOutcomeLabel(r)})
		}
		d, value, witness, err := raceAscending(ctx, workers, lb, hMax, probe, onProbe)
		res.Elapsed = time.Since(start)
		if err != nil {
			res.Decision = Unknown
			opt.traceSolveEnd("bmp", res)
			return res, err
		}
		switch d {
		case Feasible:
			res.Decision = Feasible
			res.Value = value
			res.Placement = witness.Placement
			opt.incumbent("bmp", value, witness.DecidedBy)
			opt.traceSolveEnd("bmp", res)
			return res, nil
		case Unknown:
			res.Decision = Unknown
			opt.traceSolveEnd("bmp", res)
			return res, nil
		}
		return nil, fmt.Errorf("solver: no feasible chip up to %dx%d for instance %q (internal bound error)",
			hMax, hMax, in.Name)
	}

	for h := lb; h <= hMax; h++ {
		r, err := solveOPP(ctx, in, model.Container{W: h, H: h, T: T}, order, opt)
		if err != nil {
			return nil, err
		}
		res.mergeProbe(r)
		opt.probe("bmp", map[string]any{"h": h, "outcome": probeOutcomeLabel(r)})
		switch r.Decision {
		case Feasible:
			res.Decision = Feasible
			res.Value = h
			res.Placement = r.Placement
			res.Elapsed = time.Since(start)
			opt.incumbent("bmp", h, r.DecidedBy)
			opt.traceSolveEnd("bmp", res)
			return res, nil
		case Infeasible:
			// keep growing h
		default:
			res.Decision = Unknown
			res.Elapsed = time.Since(start)
			opt.traceSolveEnd("bmp", res)
			return res, ctx.Err()
		}
	}
	return nil, fmt.Errorf("solver: no feasible chip up to %dx%d for instance %q (internal bound error)",
		hMax, hMax, in.Name)
}

// FeasibleFixedSchedule solves FeasA&FixedS: given start times for every
// task, decide whether a non-overlapping spatial placement on the W×H
// chip exists. With the time dimension fully decided, the packing-class
// search degenerates to the two spatial dimensions — the simplification
// highlighted in Section 4 of the paper.
func FeasibleFixedSchedule(in *model.Instance, c model.Container, starts []int, opt Options) (*OPPResult, error) {
	return FeasibleFixedScheduleCtx(context.Background(), in, c, starts, opt)
}

// FeasibleFixedScheduleCtx is FeasibleFixedSchedule under a context;
// cancellation semantics match SolveOPPCtx.
func FeasibleFixedScheduleCtx(ctx context.Context, in *model.Instance, c model.Container, starts []int, opt Options) (*OPPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	if err := model.VerifySchedule(in, starts, c.T, order); err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	return opt.pipeline().Solve(ctx, &strategy.Problem{In: in, C: c, Order: order, FixedStarts: starts})
}

// MinBaseFixedSchedule solves MinA&FixedS: the smallest square chip that
// admits a spatial placement for the prescribed start times.
func MinBaseFixedSchedule(in *model.Instance, starts []int, opt Options) (*OptResult, error) {
	return MinBaseFixedScheduleCtx(context.Background(), in, starts, opt)
}

// MinBaseFixedScheduleCtx is MinBaseFixedSchedule under a context,
// racing the h-ascent on Options.Workers goroutines like MinBaseCtx.
func MinBaseFixedScheduleCtx(ctx context.Context, in *model.Instance, starts []int, opt Options) (*OptResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	T := 0
	for i, t := range in.Tasks {
		if f := starts[i] + t.Dur; f > T {
			T = f
		}
	}
	if err := model.VerifySchedule(in, starts, T, order); err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &OptResult{}
	ctx, dspan := opt.driverSpan(ctx, "bmp_fixed", in.Name)
	defer func() { opt.endDriverSpan(dspan, res) }()
	lb := in.MaxW()
	if h := in.MaxH(); h > lb {
		lb = h
	}
	res.LowerBound = lb
	hMax := 0
	for _, t := range in.Tasks {
		m := t.W
		if t.H > m {
			m = t.H
		}
		hMax += m
	}

	if workers := opt.effectiveWorkers(); workers > 1 {
		probe := func(pctx context.Context, h int) (*OPPResult, error) {
			return FeasibleFixedScheduleCtx(pctx, in, model.Container{W: h, H: h, T: T}, starts, opt)
		}
		onProbe := func(h int, r *OPPResult) {
			res.mergeProbe(r)
			opt.probe("bmp_fixed", map[string]any{"h": h, "outcome": probeOutcomeLabel(r)})
		}
		d, value, witness, err := raceAscending(ctx, workers, lb, hMax, probe, onProbe)
		res.Elapsed = time.Since(start)
		if err != nil {
			res.Decision = Unknown
			opt.traceSolveEnd("bmp_fixed", res)
			return res, err
		}
		switch d {
		case Feasible:
			res.Decision = Feasible
			res.Value = value
			res.Placement = witness.Placement
			opt.incumbent("bmp_fixed", value, witness.DecidedBy)
			opt.traceSolveEnd("bmp_fixed", res)
			return res, nil
		case Unknown:
			res.Decision = Unknown
			opt.traceSolveEnd("bmp_fixed", res)
			return res, nil
		}
		return nil, fmt.Errorf("solver: no feasible chip for fixed schedule of %q", in.Name)
	}

	for h := lb; h <= hMax; h++ {
		r, err := FeasibleFixedScheduleCtx(ctx, in, model.Container{W: h, H: h, T: T}, starts, opt)
		if err != nil {
			return nil, err
		}
		res.mergeProbe(r)
		opt.probe("bmp_fixed", map[string]any{"h": h, "outcome": probeOutcomeLabel(r)})
		switch r.Decision {
		case Feasible:
			res.Decision = Feasible
			res.Value = h
			res.Placement = r.Placement
			res.Elapsed = time.Since(start)
			opt.incumbent("bmp_fixed", h, r.DecidedBy)
			opt.traceSolveEnd("bmp_fixed", res)
			return res, nil
		case Infeasible:
		default:
			res.Decision = Unknown
			res.Elapsed = time.Since(start)
			opt.traceSolveEnd("bmp_fixed", res)
			return res, ctx.Err()
		}
	}
	return nil, fmt.Errorf("solver: no feasible chip for fixed schedule of %q", in.Name)
}
