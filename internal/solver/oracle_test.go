package solver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/geomsearch"
	"fpga3d/internal/model"
)

// oracleCase solves one random instance with both the packing-class
// solver and the exhaustive geometric baseline and demands agreement.
func oracleCase(t *testing.T, seed int64, withPrec bool, opt Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4) // 2..5 tasks: keeps the oracle exhaustive yet fast
	pArc := 0.0
	if withPrec {
		pArc = 0.35
	}
	in := bench.Random(rng, n, 3, 3, pArc)
	c := model.Container{W: 2 + rng.Intn(3), H: 2 + rng.Intn(3), T: 2 + rng.Intn(4)}

	// Clamp task sizes so each fits individually; the interesting
	// disagreements are about combinations, not trivial misfits.
	for i := range in.Tasks {
		if in.Tasks[i].W > c.W {
			in.Tasks[i].W = c.W
		}
		if in.Tasks[i].H > c.H {
			in.Tasks[i].H = c.H
		}
		if in.Tasks[i].Dur > c.T {
			in.Tasks[i].Dur = c.T
		}
	}
	order, err := in.Order()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	want := geomsearch.Solve(in, c, order, geomsearch.Options{NodeLimit: 3_000_000})
	if want.Status != geomsearch.Feasible && want.Status != geomsearch.Infeasible {
		return // oracle hit its cap; skip this case
	}
	got, err := solveOPP(context.Background(), in, c, order, opt)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if got.Decision == Unknown {
		t.Fatalf("seed %d: packing-class solver hit limits on a tiny case", seed)
	}
	wantFeasible := want.Status == geomsearch.Feasible
	if (got.Decision == Feasible) != wantFeasible {
		t.Fatalf("seed %d: disagreement on %v (prec=%v): core=%v oracle=%v\ninstance: %+v",
			seed, c, withPrec, got.Decision, want.Status, in)
	}
	if got.Decision == Feasible {
		if err := got.Placement.Verify(in, c, order); err != nil {
			t.Fatalf("seed %d: returned placement invalid: %v", seed, err)
		}
	}
}

func TestOracleNoPrecedence(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	for seed := int64(0); seed < 4000; seed++ {
		oracleCase(t, seed, false, opt)
	}
}

func TestOracleWithPrecedence(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	for seed := int64(10000); seed < 14000; seed++ {
		oracleCase(t, seed, true, opt)
	}
}

// TestOracleSearchOnly repeats the comparison with bounds and heuristic
// disabled, so the branch-and-bound engine itself answers every case.
func TestOracleSearchOnly(t *testing.T) {
	opt := Options{SkipBounds: true, SkipHeuristic: true, TimeLimit: 20 * time.Second}
	for seed := int64(20000); seed < 22500; seed++ {
		oracleCase(t, seed, true, opt)
		oracleCase(t, seed+5000, false, opt)
	}
}

// TestOracleAblations repeats the comparison with each propagation rule
// disabled in turn — every configuration must stay exact.
func TestOracleAblations(t *testing.T) {
	base := Options{SkipBounds: true, SkipHeuristic: true, TimeLimit: 20 * time.Second}
	variants := map[string]func(*Options){
		"no-c4":           func(o *Options) { o.DisableC4Rule = true },
		"no-hole":         func(o *Options) { o.DisableHoleRule = true },
		"no-clique":       func(o *Options) { o.DisableCliqueRule = true },
		"no-clique-force": func(o *Options) { o.DisableCliqueForce = true },
		"no-orient":       func(o *Options) { o.DisableOrientRules = true },
		"disjoint-first":  func(o *Options) { o.TimeDisjointFirst = true },
		"everything-off": func(o *Options) {
			o.DisableC4Rule = true
			o.DisableHoleRule = true
			o.DisableCliqueRule = true
			o.DisableCliqueForce = true
			o.DisableOrientRules = true
		},
	}
	for name, mut := range variants {
		t.Run(name, func(t *testing.T) {
			opt := base
			mut(&opt)
			for seed := int64(30000); seed < 30800; seed++ {
				oracleCase(t, seed, true, opt)
			}
		})
	}
}

// TestFixedScheduleAgainstFreeSolve: a schedule produced by the solver
// itself must be accepted by the fixed-schedule variant on the same
// chip.
func TestFixedScheduleAgainstFreeSolve(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	found := 0
	for seed := int64(4000); seed < 4200 && found < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.3)
		c := model.Container{W: 3, H: 3, T: 4}
		for i := range in.Tasks {
			if in.Tasks[i].W > c.W {
				in.Tasks[i].W = c.W
			}
			if in.Tasks[i].H > c.H {
				in.Tasks[i].H = c.H
			}
			if in.Tasks[i].Dur > c.T {
				in.Tasks[i].Dur = c.T
			}
		}
		r, err := SolveOPP(in, c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Decision != Feasible {
			continue
		}
		found++
		fr, err := FeasibleFixedSchedule(in, c, r.Placement.S, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fr.Decision != Feasible {
			t.Fatalf("seed %d: fixed-schedule rejected the solver's own schedule %v", seed, r.Placement.S)
		}
		if err := fr.Placement.Verify(in, c, nil); err != nil {
			t.Fatalf("seed %d: fixed-schedule placement invalid: %v", seed, err)
		}
		// Start times must be exactly the prescribed ones.
		for i := range fr.Placement.S {
			if fr.Placement.S[i] != r.Placement.S[i] {
				t.Fatalf("seed %d: fixed-schedule changed start times", seed)
			}
		}
	}
	if found < 20 {
		t.Fatalf("only %d feasible cases sampled; oracle too weak", found)
	}
}

// TestOracleStructuredDAGs repeats the oracle comparison with layered
// and series-parallel precedence structures, which exercise much denser
// transitive closures than uniform arc sampling.
func TestOracleStructuredDAGs(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	for seed := int64(50000); seed < 50400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var in *model.Instance
		if seed%2 == 0 {
			in = bench.RandomLayered(rng, 1+rng.Intn(3), 2, 3, 2, 0.5)
		} else {
			in = bench.RandomSeriesParallel(rng, 2+rng.Intn(4), 3, 2)
		}
		if in.N() > 6 {
			continue // keep the exhaustive oracle fast
		}
		c := model.Container{W: 2 + rng.Intn(3), H: 2 + rng.Intn(3), T: 2 + rng.Intn(5)}
		for i := range in.Tasks {
			if in.Tasks[i].W > c.W {
				in.Tasks[i].W = c.W
			}
			if in.Tasks[i].H > c.H {
				in.Tasks[i].H = c.H
			}
			if in.Tasks[i].Dur > c.T {
				in.Tasks[i].Dur = c.T
			}
		}
		order, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		want := geomsearch.Solve(in, c, order, geomsearch.Options{NodeLimit: 3_000_000})
		if want.Status != geomsearch.Feasible && want.Status != geomsearch.Infeasible {
			continue
		}
		got, err := solveOPP(context.Background(), in, c, order, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantFeasible := want.Status == geomsearch.Feasible
		if got.Decision == Unknown || (got.Decision == Feasible) != wantFeasible {
			t.Fatalf("seed %d: core=%v oracle=%v\ninstance %+v in %v", seed, got.Decision, want.Status, in, c)
		}
		if got.Decision == Feasible {
			if err := got.Placement.Verify(in, c, order); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}
