package solver

import (
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// The tests in this file pin the solver to the published results of the
// paper's evaluation section (Section 5): Table 1, Table 2 and Figure 7.

func TestTable1DE(t *testing.T) {
	de := bench.DE()
	opt := Options{TimeLimit: 120 * time.Second}
	for _, row := range []struct{ T, wantH int }{
		{6, 32},
		{13, 17},
		{14, 16},
	} {
		r, err := MinBase(de, row.T, opt)
		if err != nil {
			t.Fatalf("T=%d: %v", row.T, err)
		}
		if r.Decision != Feasible || r.Value != row.wantH {
			t.Errorf("T=%d: chip %d (%v), want %d", row.T, r.Value, r.Decision, row.wantH)
		}
		if r.Placement == nil {
			t.Errorf("T=%d: no witness placement", row.T)
		}
	}
}

// TestTable1DESearchOnly proves the same optima with bounds and
// heuristic disabled: every decision comes from the packing-class
// branch and bound.
func TestTable1DESearchOnly(t *testing.T) {
	de := bench.DE()
	opt := Options{SkipBounds: true, SkipHeuristic: true, TimeLimit: 120 * time.Second}
	cases := []struct {
		c    model.Container
		want Decision
	}{
		{model.Container{W: 16, H: 16, T: 14}, Feasible},
		{model.Container{W: 16, H: 16, T: 13}, Infeasible},
		{model.Container{W: 17, H: 17, T: 13}, Feasible},
		{model.Container{W: 17, H: 17, T: 12}, Infeasible},
		{model.Container{W: 31, H: 31, T: 12}, Infeasible},
		{model.Container{W: 32, H: 32, T: 6}, Feasible},
		{model.Container{W: 32, H: 32, T: 5}, Infeasible},
		{model.Container{W: 31, H: 31, T: 6}, Infeasible},
	}
	for _, tc := range cases {
		r, err := SolveOPP(de, tc.c, opt)
		if err != nil {
			t.Fatalf("%v: %v", tc.c, err)
		}
		if r.Decision != tc.want {
			t.Errorf("%v: %v, want %v", tc.c, r.Decision, tc.want)
		}
	}
}

func TestTable2VideoCodec(t *testing.T) {
	vc := bench.VideoCodec()
	opt := Options{TimeLimit: 120 * time.Second}

	// Minimal latency on the 64×64 chip is 59 (Table 2).
	r, err := MinTime(vc, 64, 64, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Value != 59 {
		t.Errorf("MinTime(64x64) = %d (%v), want 59", r.Value, r.Decision)
	}

	// "There is no solution for container sizes smaller than 64x64."
	rb, err := MinBase(vc, 59, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Decision != Feasible || rb.Value != 64 {
		t.Errorf("MinBase(T=59) = %d (%v), want 64", rb.Value, rb.Decision)
	}
	small, err := SolveOPP(vc, model.Container{W: 63, H: 63, T: 1000}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if small.Decision != Infeasible {
		t.Errorf("63x63 chip should be infeasible at any horizon, got %v", small.Decision)
	}
}

func TestFigure7Pareto(t *testing.T) {
	de := bench.DE()
	opt := Options{TimeLimit: 120 * time.Second}

	withPrec, err := ParetoFront(de, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantSolid := []ParetoPoint{{T: 6, H: 32}, {T: 13, H: 17}, {T: 14, H: 16}}
	if !samePoints(withPrec.Points, wantSolid) {
		t.Errorf("Figure 7(a) = %v, want %v", withPrec.Points, wantSolid)
	}

	noPrec, err := ParetoFront(de.WithoutPrec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	wantDashed := []ParetoPoint{{T: 2, H: 48}, {T: 4, H: 32}, {T: 12, H: 17}, {T: 13, H: 16}}
	if !samePoints(noPrec.Points, wantDashed) {
		t.Errorf("Figure 7(b) = %v, want %v", noPrec.Points, wantDashed)
	}

	// The curves must be staircases: strictly decreasing h over points,
	// non-increasing h over the full probe sequence.
	for _, res := range []*ParetoResult{withPrec, noPrec} {
		for i := 1; i < len(res.Points); i++ {
			if res.Points[i].H >= res.Points[i-1].H || res.Points[i].T <= res.Points[i-1].T {
				t.Errorf("points not strictly improving: %v", res.Points)
			}
		}
		for i := 1; i < len(res.Curve); i++ {
			if res.Curve[i].H > res.Curve[i-1].H {
				t.Errorf("curve not monotone: %v", res.Curve)
			}
		}
	}
}

func samePoints(a, b []ParetoPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDEWithoutPrecedenceIsEasier: dropping the partial order can only
// shrink the minimal time for every chip (Figure 7's two curves never
// cross).
func TestDEWithoutPrecedenceIsEasier(t *testing.T) {
	de := bench.DE()
	free := de.WithoutPrec()
	opt := Options{TimeLimit: 120 * time.Second}
	for _, h := range []int{16, 17, 32, 48} {
		a, err := MinTime(de, h, h, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinTime(free, h, h, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Decision != Feasible || b.Decision != Feasible {
			t.Fatalf("h=%d undecided", h)
		}
		if b.Value > a.Value {
			t.Errorf("h=%d: unconstrained optimum %d worse than constrained %d", h, b.Value, a.Value)
		}
	}
}

// TestVideoCodecSinglePareto reproduces the paper's remark that the
// video codec has "only one Pareto-point": the minimal chip (64×64,
// forced by the block matcher) already achieves the minimal latency
// (59, the dependency critical path), so the trade-off curve collapses.
func TestVideoCodecSinglePareto(t *testing.T) {
	vc := bench.VideoCodec()
	r, err := ParetoFront(vc, Options{TimeLimit: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 || r.Points[0] != (ParetoPoint{T: 59, H: 64}) {
		t.Fatalf("codec Pareto = %v, want exactly {59 64}", r.Points)
	}
}
