package solver

import (
	"context"

	"fpga3d/internal/model"
)

// Concurrent optimization sweeps.
//
// Every optimization driver in this package answers its question by a
// sequence of independent OPP decisions over a monotone feasibility
// predicate: the BMP ascent probes chip sides h = lb, lb+1, … until the
// first feasible one, the SPP binary search probes time budgets inside
// a shrinking interval, and the Pareto walk strings BMP ascents
// together. Each decision is a self-contained certificate — a fresh
// engine over an immutable instance — so the probes of one sweep can
// race on a worker pool without communicating.
//
// The racers below keep the answer bit-identical to the sequential
// sweep by construction rather than by locking:
//
//   - Monotonicity makes completed probes compose: a feasibility proof
//     at value v bounds the optimum from above (every larger container
//     also fits), an infeasibility proof bounds it from below (every
//     smaller container also fails). The optimum is pinned exactly
//     when the two frontiers meet, independent of arrival order.
//   - First-useful-answer pruning cancels probes whose outcome has
//     become redundant — probes above a feasibility proof, probes
//     below an infeasibility proof. The probe at the optimum is never
//     redundant in either direction, so it always runs to completion,
//     and since each probe is deterministic, the witness placement at
//     the optimum is the same one the sequential sweep returns.
//
// Statistics of every probe — including partial statistics of canceled
// ones — are merged into the caller's aggregate with Stats.Add, so the
// merged node count equals the sum over the per-probe shards reported
// in the trace (the opp_end events).

// probeFunc runs one raced OPP decision at sweep value v. It must be
// deterministic given v; ctx cancellation makes it return a result
// with DecidedBy "canceled" rather than an error.
type probeFunc func(ctx context.Context, v int) (*OPPResult, error)

// proberesult couples a finished probe with its sweep value.
type probeOutcome struct {
	v   int
	res *OPPResult
	err error
}

// racer is the shared worker-pool plumbing of the two sweep shapes:
// it tracks in-flight probes, launches them on demand, cancels them
// selectively, and guarantees that every launched probe is drained and
// merged (via onProbe) before the racer is abandoned.
type racer struct {
	ctx     context.Context
	workers int
	probe   probeFunc
	onProbe func(v int, r *OPPResult)

	results chan probeOutcome
	cancels map[int]context.CancelFunc
}

func newRacer(ctx context.Context, workers int, probe probeFunc, onProbe func(int, *OPPResult)) *racer {
	return &racer{
		ctx:     ctx,
		workers: workers,
		probe:   probe,
		onProbe: onProbe,
		results: make(chan probeOutcome, workers),
		cancels: make(map[int]context.CancelFunc),
	}
}

// launch starts the probe at v on a fresh goroutine under a child
// context, so it can be canceled individually.
func (r *racer) launch(v int) {
	cctx, cancel := context.WithCancel(r.ctx)
	r.cancels[v] = cancel
	go func() {
		res, err := r.probe(cctx, v)
		r.results <- probeOutcome{v: v, res: res, err: err}
	}()
}

// next blocks for the next finished probe, releases its cancel func
// and merges its effort.
func (r *racer) next() probeOutcome {
	out := <-r.results
	r.cancels[out.v]()
	delete(r.cancels, out.v)
	if out.res != nil {
		r.onProbe(out.v, out.res)
	}
	return out
}

// cancelWhere cancels every in-flight probe whose value satisfies the
// predicate. The probes still deliver (partial-effort) results, which
// next/drain merge.
func (r *racer) cancelWhere(pred func(v int) bool) {
	for v, cancel := range r.cancels {
		if pred(v) {
			cancel()
		}
	}
}

// drain cancels and collects every remaining in-flight probe so no
// goroutine outlives the sweep and no shard of statistics is lost.
func (r *racer) drain() {
	for _, cancel := range r.cancels {
		cancel()
	}
	for len(r.cancels) > 0 {
		r.next()
	}
}

// raceAscending races the ascending sweep v = lo, lo+1, …, hi of a
// predicate that is monotone in v (infeasible below the optimum,
// feasible at and above it) and returns the decision the sequential
// ascent would reach: (Feasible, v*, witness) for the smallest
// feasible v*, Infeasible if the whole range is refuted, or Unknown if
// a node/time limit blocked the frontier probe. On parent-context
// cancellation it returns ctx.Err() after merging all partial shards.
//
// Because an infeasibility proof at v implies infeasibility for every
// v' ≤ v, such probes are canceled as redundant; a feasibility proof
// at v likewise cancels every probe above v. The frontier probe at v*
// is never redundant, so its (deterministic) witness is bit-identical
// to the sequential one.
func raceAscending(ctx context.Context, workers, lo, hi int, probe probeFunc, onProbe func(int, *OPPResult)) (Decision, int, *OPPResult, error) {
	r := newRacer(ctx, workers, probe, onProbe)
	defer r.drain()

	next := lo       // high-water mark of launched values
	maxInf := lo - 1 // all v ≤ maxInf are proven or implied infeasible
	bestFeas := hi + 1
	var bestRes *OPPResult
	unknown := make(map[int]bool) // genuine limit hits, by value

	for {
		// Keep the window full, ascending from the open frontier.
		for len(r.cancels) < r.workers {
			if next <= maxInf {
				next = maxInf + 1
			}
			if next > hi || next >= bestFeas {
				break
			}
			r.launch(next)
			next++
		}

		// Resolved? The frontier value just above the infeasible prefix
		// decides the sweep the moment it is known.
		frontier := maxInf + 1
		switch {
		case bestFeas <= hi && frontier == bestFeas:
			return Feasible, bestFeas, bestRes, nil
		case frontier > hi:
			return Infeasible, 0, nil, nil
		case unknown[frontier]:
			// The sequential ascent gives up at its first undecided
			// probe; mirror that once the undecided value is frontal.
			return Unknown, 0, nil, nil
		}

		out := r.next()
		if out.err != nil {
			return Unknown, 0, nil, out.err
		}
		if err := ctx.Err(); err != nil {
			return Unknown, 0, nil, err
		}
		switch out.res.Decision {
		case Feasible:
			if out.v < bestFeas {
				bestFeas, bestRes = out.v, out.res
				r.cancelWhere(func(v int) bool { return v > bestFeas })
			}
		case Infeasible:
			if out.v > maxInf {
				maxInf = out.v
				r.cancelWhere(func(v int) bool { return v <= maxInf })
			}
		default:
			if out.res.DecidedBy != "canceled" {
				unknown[out.v] = true
			}
		}
	}
}

// raceBinary races the binary search for the smallest feasible value
// in [lo, hi], where hi is already known feasible. With one worker it
// probes exactly the sequential bisection points; with more it
// speculatively probes the bisection points of the sub-intervals so a
// slow probe never serializes the whole search. Narrowing is sound for
// any arrival order (monotone predicate), so the optimum is the
// sequential one; the returned witness is non-nil iff the optimum was
// proven by a probe (it stays nil when hi itself is optimal, in which
// case the caller's pre-existing witness for hi stands).
func raceBinary(ctx context.Context, workers, lo, hi int, probe probeFunc, onProbe func(int, *OPPResult)) (Decision, int, *OPPResult, error) {
	r := newRacer(ctx, workers, probe, onProbe)
	defer r.drain()

	var bestRes *OPPResult // witness at hi, once a probe proves one

	for lo < hi {
		for _, v := range bisectPoints(lo, hi, r.cancels, r.workers-len(r.cancels)) {
			r.launch(v)
		}
		out := r.next()
		if out.err != nil {
			return Unknown, 0, nil, out.err
		}
		if err := ctx.Err(); err != nil {
			return Unknown, 0, nil, err
		}
		switch out.res.Decision {
		case Feasible:
			if out.v < hi {
				hi, bestRes = out.v, out.res
				r.cancelWhere(func(v int) bool { return v > hi })
			}
		case Infeasible:
			if out.v+1 > lo {
				lo = out.v + 1
				r.cancelWhere(func(v int) bool { return v < lo })
			}
		default:
			if out.res.DecidedBy != "canceled" {
				// A genuine limit: like the sequential search, stop and
				// report the best proven point.
				return Unknown, hi, bestRes, nil
			}
		}
	}
	return Feasible, hi, bestRes, nil
}

// bisectPoints yields up to k probe targets for the live interval
// [lo, hi): the bisection midpoint first, then the midpoints of the
// halves it splits off, breadth-first — the speculative generalization
// of binary search to k concurrent probes. Values already in flight
// are skipped.
func bisectPoints(lo, hi int, running map[int]context.CancelFunc, k int) []int {
	type iv struct{ a, b int }
	queue := []iv{{lo, hi}}
	var out []int
	for len(queue) > 0 && len(out) < k {
		c := queue[0]
		queue = queue[1:]
		if c.b <= c.a {
			continue
		}
		mid := (c.a + c.b) / 2
		if _, inFlight := running[mid]; !inFlight {
			out = append(out, mid)
		}
		queue = append(queue, iv{c.a, mid}, iv{mid + 1, c.b})
	}
	return out
}

// probeOutcomeLabel names a probe's outcome for trace events,
// distinguishing pruned probes from genuine limit hits.
func probeOutcomeLabel(r *OPPResult) string {
	if r.DecidedBy == "canceled" {
		return "canceled"
	}
	return r.Decision.String()
}

// mergeProbe is the standard onProbe hook: it accumulates one probe's
// effort (full or partial) into the aggregate optimization result.
func (res *OptResult) mergeProbe(r *OPPResult) {
	res.Probes++
	res.Stats.Add(r.Stats)
	res.Stages.Add(r.Stages)
}

// oppProbe builds the probeFunc for a plain FeasAT&FindS sweep where
// the sweep value selects the container. The sweep already saturates
// the worker pool, so each probe's strategy runs sequentially — a
// portfolio probe keeps its incumbent dominance but does not also race
// internally.
func oppProbe(in *model.Instance, order *model.Order, opt Options, container func(v int) model.Container) probeFunc {
	opt.Workers = 1
	return func(ctx context.Context, v int) (*OPPResult, error) {
		return solveOPP(ctx, in, container(v), order, opt)
	}
}
